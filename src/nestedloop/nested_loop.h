#ifndef BRYQL_NESTEDLOOP_NESTED_LOOP_H_
#define BRYQL_NESTEDLOOP_NESTED_LOOP_H_

#include <map>
#include <string>

#include "calculus/parser.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/stats.h"
#include "storage/database.h"

namespace bryql {

/// The paper's Figure 1 baseline: one-tuple-at-a-time nested-loop
/// evaluation performed directly on the calculus, with the loop nesting
/// reflecting the quantifier nesting. Existential loops stop at the first
/// witness, universal loops at the first counterexample — the symmetry the
/// paper builds Rules 4/5 on.
///
/// This evaluator also serves as the reference semantics for testing the
/// algebraic translators: it interprets the formula directly, sharing no
/// code with them.
class NestedLoopEvaluator {
 public:
  /// `db` must outlive the evaluator. `governor` is borrowed and may be
  /// null (ungoverned). Every row the innermost loops touch is admitted
  /// through it, so deadlines/budgets interrupt even a deeply nested
  /// cartesian enumeration between any two tuples.
  explicit NestedLoopEvaluator(const Database* db,
                               ResourceGovernor* governor = nullptr)
      : db_(db),
        governor_(governor != nullptr ? governor : &default_governor_) {}

  /// Evaluates a closed formula to a truth value. The formula must have
  /// restricted quantifications (Definition 2); kUnsupported otherwise.
  Result<bool> EvaluateClosed(const FormulaPtr& formula);

  /// Evaluates an open query, returning a relation whose columns follow
  /// `query.targets`.
  Result<Relation> EvaluateOpen(const Query& query);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  const Database* db_;
  ExecStats stats_;
  ResourceGovernor default_governor_;
  ResourceGovernor* governor_;
};

}  // namespace bryql

#endif  // BRYQL_NESTEDLOOP_NESTED_LOOP_H_
