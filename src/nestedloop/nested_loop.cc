#include "nestedloop/nested_loop.h"

#include <functional>
#include <optional>

#include "algebra/predicate.h"  // CompareValues
#include "calculus/range_analysis.h"
#include "common/failpoints.h"

namespace bryql {

namespace {

/// Variable bindings of the current loop nest.
using Env = std::map<std::string, Value>;

/// Resolves a term under `env`; nullopt for an unbound variable.
std::optional<Value> Resolve(const Term& t, const Env& env) {
  if (t.is_constant()) return t.constant();
  auto it = env.find(t.var());
  if (it == env.end()) return std::nullopt;
  return it->second;
}

std::vector<FormulaPtr> Conjuncts(const FormulaPtr& f) {
  if (f->kind() == FormulaKind::kAnd) return f->children();
  return {f};
}

std::set<std::string> BoundVars(const Env& env) {
  std::set<std::string> out;
  for (const auto& [k, v] : env) out.insert(k);
  return out;
}

/// A solution callback: returns true to stop the enumeration early (closed
/// queries stop at the first witness / counterexample, Figure 1a/1b).
using SolutionCallback = std::function<bool(const Env&)>;

class Interpreter {
 public:
  Interpreter(const Database* db, ExecStats* stats,
              ResourceGovernor* governor)
      : db_(db), stats_(stats), governor_(governor) {}

  /// Truth of a formula all of whose free variables are bound in `env`.
  Result<bool> EvalTruth(const FormulaPtr& f, Env& env) {
    switch (f->kind()) {
      case FormulaKind::kAtom: {
        BRYQL_ASSIGN_OR_RETURN(const Relation* rel, db_->Get(f->predicate()));
        if (rel->arity() != f->terms().size()) {
          return Status::InvalidArgument("atom arity mismatch for '" +
                                         f->predicate() + "'");
        }
        std::vector<Value> values;
        values.reserve(f->terms().size());
        for (const Term& t : f->terms()) {
          std::optional<Value> v = Resolve(t, env);
          if (!v) {
            return Status::Unsupported("unbound variable '" + t.var() +
                                       "' in negated or closed context");
          }
          values.push_back(std::move(*v));
        }
        ++stats_->hash_probes;
        stats_->comparisons += values.size();
        return rel->Contains(Tuple(std::move(values)));
      }
      case FormulaKind::kCompare: {
        std::optional<Value> l = Resolve(f->lhs(), env);
        std::optional<Value> r = Resolve(f->rhs(), env);
        if (!l || !r) {
          return Status::Unsupported("unbound variable in comparison " +
                                     f->ToString());
        }
        ++stats_->comparisons;
        return CompareValues(f->compare_op(), *l, *r);
      }
      case FormulaKind::kNot: {
        BRYQL_ASSIGN_OR_RETURN(bool v, EvalTruth(f->child(), env));
        return !v;
      }
      case FormulaKind::kAnd: {
        for (const FormulaPtr& c : f->children()) {
          BRYQL_ASSIGN_OR_RETURN(bool v, EvalTruth(c, env));
          if (!v) return false;
        }
        return true;
      }
      case FormulaKind::kOr: {
        for (const FormulaPtr& c : f->children()) {
          BRYQL_ASSIGN_OR_RETURN(bool v, EvalTruth(c, env));
          if (v) return true;
        }
        return false;
      }
      case FormulaKind::kImplies: {
        BRYQL_ASSIGN_OR_RETURN(bool a, EvalTruth(f->children()[0], env));
        if (!a) return true;
        return EvalTruth(f->children()[1], env);
      }
      case FormulaKind::kIff: {
        BRYQL_ASSIGN_OR_RETURN(bool a, EvalTruth(f->children()[0], env));
        BRYQL_ASSIGN_OR_RETURN(bool b, EvalTruth(f->children()[1], env));
        return a == b;
      }
      case FormulaKind::kExists: {
        // Figure 1a: loop over the range, stop at the first witness.
        bool found = false;
        BRYQL_RETURN_NOT_OK(
            ForEachSolution(f->vars(), f->child(), env, [&](const Env&) {
              found = true;
              return true;  // stop
            }));
        return found;
      }
      case FormulaKind::kForall: {
        // Figure 1b: loop over the range, stop at the first
        // counterexample. ∀x̄ (R ⇒ F) fails iff ∃x̄ (R ∧ ¬F) succeeds —
        // the symmetry the paper's Rules 4/5 formalize.
        const FormulaPtr& body = f->child();
        FormulaPtr as_exists;
        if (body->kind() == FormulaKind::kImplies) {
          as_exists = Formula::And(body->children()[0],
                                   Formula::Not(body->children()[1]));
        } else if (body->kind() == FormulaKind::kNot) {
          as_exists = body->child();
        } else {
          as_exists = Formula::Not(body);
        }
        bool counterexample = false;
        BRYQL_RETURN_NOT_OK(
            ForEachSolution(f->vars(), as_exists, env, [&](const Env&) {
              counterexample = true;
              return true;  // stop
            }));
        return !counterexample;
      }
    }
    return Status::Internal("unreachable formula kind");
  }

  /// Enumerates all bindings of `vars` satisfying `body`, invoking `cb`
  /// for each complete solution.
  Status ForEachSolution(const std::vector<std::string>& vars,
                         const FormulaPtr& body, Env& env,
                         const SolutionCallback& cb) {
    BRYQL_FAILPOINT("nestedloop.enumerate");
    BRYQL_RETURN_NOT_OK(governor_->CheckNow());
    std::set<std::string> required(vars.begin(), vars.end());
    auto split =
        SplitProducersAndFilters(Conjuncts(body), required, BoundVars(env));
    if (!split) {
      return Status::Unsupported("no range found for variables in: " +
                                 body->ToString());
    }
    bool stop = false;
    return EvalBlock(*split, 0, env, cb, &stop);
  }

 private:
  /// Evaluates a producer/filter chain depth-first: producers drive loops,
  /// filters test, the callback fires on complete bindings. `*stop`
  /// propagates early termination outward through all loop levels.
  Status EvalBlock(const ProducerFilterSplit& split, size_t index, Env& env,
                   const SolutionCallback& cb, bool* stop) {
    if (index == split.ordered.size()) {
      *stop = cb(env);
      return Status::Ok();
    }
    const FormulaPtr& c = split.ordered[index];
    // A conjunct whose variables were all produced by earlier conjuncts
    // acts as a filter even if the split classified it as a producer.
    bool all_bound = true;
    for (const std::string& v : c->FreeVariableSet()) {
      if (!env.count(v)) {
        all_bound = false;
        break;
      }
    }
    if (!split.is_producer[index] || all_bound) {
      BRYQL_ASSIGN_OR_RETURN(bool pass, EvalTruth(c, env));
      if (!pass) return Status::Ok();
      return EvalBlock(split, index + 1, env, cb, stop);
    }
    return Enumerate(c, env,
                     [&](const Env&) {
                       Status st = EvalBlock(split, index + 1, env, cb, stop);
                       if (!st.ok()) {
                         error_ = st;
                         return true;
                       }
                       return *stop;
                     },
                     stop);
  }

  /// Enumerates the bindings a producer generates, binding into `env`
  /// around each callback. Errors raised inside callbacks are carried in
  /// error_ and rethrown here.
  Status Enumerate(const FormulaPtr& f, Env& env, const SolutionCallback& cb,
                   bool* stop) {
    BRYQL_RETURN_NOT_OK(EnumerateImpl(f, env, cb, stop));
    if (!error_.ok()) {
      Status st = error_;
      error_ = Status::Ok();
      return st;
    }
    return Status::Ok();
  }

  Status EnumerateImpl(const FormulaPtr& f, Env& env,
                       const SolutionCallback& cb, bool* stop) {
    switch (f->kind()) {
      case FormulaKind::kAtom: {
        BRYQL_ASSIGN_OR_RETURN(const Relation* rel, db_->Get(f->predicate()));
        if (rel->arity() != f->terms().size()) {
          return Status::InvalidArgument("atom arity mismatch for '" +
                                         f->predicate() + "'");
        }
        // When an argument is already bound and its column is indexed,
        // loop only over the matching rows.
        const std::vector<size_t>* index_rows = nullptr;
        for (size_t i = 0; i < f->terms().size(); ++i) {
          if (!rel->HasIndex(i)) continue;
          std::optional<Value> bound = Resolve(f->terms()[i], env);
          if (!bound) continue;
          ++stats_->hash_probes;
          index_rows = &rel->Matches(i, *bound);
          break;
        }
        size_t row_count =
            index_rows != nullptr ? index_rows->size() : rel->rows().size();
        for (size_t r = 0; r < row_count; ++r) {
          // Innermost loop of the whole Figure 1 interpreter: every row of
          // every loop level passes through here, so the admission check
          // bounds total work regardless of nesting depth.
          if (!governor_->AdmitScan()) return governor_->status();
          const Tuple& row = index_rows != nullptr
                                 ? rel->rows()[(*index_rows)[r]]
                                 : rel->rows()[r];
          ++stats_->tuples_scanned;
          std::vector<std::string> newly_bound;
          bool match = true;
          for (size_t i = 0; i < f->terms().size() && match; ++i) {
            const Term& t = f->terms()[i];
            std::optional<Value> bound = Resolve(t, env);
            if (bound) {
              ++stats_->comparisons;
              match = *bound == row.at(i);
            } else {
              env.emplace(t.var(), row.at(i));
              newly_bound.push_back(t.var());
            }
          }
          bool do_stop = match && cb(env);
          for (const std::string& v : newly_bound) env.erase(v);
          if (do_stop || !error_.ok()) {
            *stop = do_stop;
            return Status::Ok();
          }
        }
        return Status::Ok();
      }
      case FormulaKind::kCompare: {
        // Producer equality x = c (or c = x): a single binding.
        const Term& l = f->lhs();
        const Term& r = f->rhs();
        std::optional<Value> lv = Resolve(l, env);
        std::optional<Value> rv = Resolve(r, env);
        if (lv && rv) {
          ++stats_->comparisons;
          if (CompareValues(f->compare_op(), *lv, *rv)) *stop = cb(env);
          return Status::Ok();
        }
        if (f->compare_op() != CompareOp::kEq || (!lv && !rv)) {
          return Status::Unsupported("cannot enumerate " + f->ToString());
        }
        const std::string& var = lv ? r.var() : l.var();
        env.emplace(var, lv ? *lv : *rv);
        *stop = cb(env);
        env.erase(var);
        return Status::Ok();
      }
      case FormulaKind::kAnd: {
        std::set<std::string> required;
        for (const std::string& v : f->FreeVariableSet()) {
          if (!env.count(v)) required.insert(v);
        }
        auto split =
            SplitProducersAndFilters(f->children(), required, BoundVars(env));
        if (!split) {
          return Status::Unsupported("no range order for: " + f->ToString());
        }
        return EvalBlock(*split, 0, env, cb, stop);
      }
      case FormulaKind::kOr: {
        // A disjunctive range: enumerate each branch in turn. Duplicate
        // bindings may repeat across branches; callers deduplicate (open
        // queries insert into a set; closed queries stop at the first).
        for (const FormulaPtr& d : f->children()) {
          BRYQL_RETURN_NOT_OK(EnumerateImpl(d, env, cb, stop));
          if (*stop || !error_.ok()) return Status::Ok();
        }
        return Status::Ok();
      }
      case FormulaKind::kExists: {
        // Range with local projection (Definition 1 case 5): enumerate the
        // body; the extra variables are bound during cb but invisible to
        // the caller afterwards.
        return EnumerateImpl(f->child(), env, cb, stop);
      }
      default:
        return Status::Unsupported("cannot enumerate bindings from: " +
                                   f->ToString());
    }
  }

  const Database* db_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
  Status error_;
};

}  // namespace

Result<bool> NestedLoopEvaluator::EvaluateClosed(const FormulaPtr& formula) {
  if (!formula->FreeVariables().empty()) {
    return Status::InvalidArgument(
        "EvaluateClosed requires a closed formula, got: " +
        formula->ToString());
  }
  Interpreter interp(db_, &stats_, governor_);
  Env env;
  Result<bool> truth = interp.EvalTruth(formula, env);
  // Existential/universal loops swallow the stop signal; surface a trip.
  if (truth.ok()) BRYQL_RETURN_NOT_OK(governor_->status());
  return truth;
}

Result<Relation> NestedLoopEvaluator::EvaluateOpen(const Query& query) {
  if (query.closed()) {
    return Status::InvalidArgument("EvaluateOpen requires target variables");
  }
  Interpreter interp(db_, &stats_, governor_);
  Env env;
  Relation result(query.targets.size());
  // Figure 1c: enumerate all bindings of the producers; every binding
  // passing the filters contributes an answer. Top-level disjunctions
  // (Definition 3 case 2) enumerate each branch.
  std::vector<FormulaPtr> branches;
  if (query.formula->kind() == FormulaKind::kOr) {
    branches = query.formula->children();
  } else {
    branches = {query.formula};
  }
  for (const FormulaPtr& branch : branches) {
    BRYQL_RETURN_NOT_OK(interp.ForEachSolution(
        query.targets, branch, env, [&](const Env& done) {
          if (!governor_->AdmitMaterialize()) return true;  // stop: tripped
          std::vector<Value> values;
          values.reserve(query.targets.size());
          for (const std::string& t : query.targets) {
            values.push_back(done.at(t));
          }
          result.Insert(Tuple(std::move(values)));
          return false;  // collect all answers
        }));
    BRYQL_RETURN_NOT_OK(governor_->status());
  }
  return result;
}

}  // namespace bryql
