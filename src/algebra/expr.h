#ifndef BRYQL_ALGEBRA_EXPR_H_
#define BRYQL_ALGEBRA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "common/result.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace bryql {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One equi-join condition `left column = right column` ("i = j" in the
/// paper's conj notation, 0-indexed).
struct JoinKey {
  size_t left;
  size_t right;
};

/// Relational algebra operators. Arity-0 relations encode booleans
/// ({()} = true, {} = false), so closed queries are algebra expressions
/// too — the paper's "non-emptiness test" extension of §3.2.
enum class ExprKind {
  kScan,      // base relation by name
  kLiteral,   // inline relation (tests, generated data)
  kSelect,    // σ_pred
  kProject,   // π_cols (set semantics: duplicates collapse)
  kProduct,   // ×
  kJoin,      // ⋈_keys (inner equi-join, concatenated output)
  kSemiJoin,  // ⋉_keys (left tuples with a partner)
  kAntiJoin,  // the paper's complement-join ⊼_keys (Definition 6):
              // left tuples with no partner
  kOuterJoin,  // unidirectional (left) outer join: arity p+q, unmatched
               // left tuples padded with ∅; an optional constraint
               // predicate on the left tuple guards probing (Definition 7
               // generalized to keep right values, cf. Figures 2/3)
  kMarkJoin,   // the paper's constrained outer-join (Definition 7) exactly:
               // arity p+1; last column ⊥ when the constraint holds and a
               // partner exists, ∅ otherwise
  kDivision,   // ÷: child0 arity p, child1 arity q; result = tuples t of
               // the first p-q columns with {t}×child1 ⊆ child0
  kGroupDivision,  // per-group division — the exact form of the paper's
                   // case-5 expression when the inner range depends on
                   // outer variables. Dividend D = [keep..., group...,
                   // value...], divisor T = [group..., value...]; result =
                   // {(keep, group) | group ∈ π(T) ∧ ∀ value: (group,
                   // value) ∈ T → (keep, group, value) ∈ D}
  kGroupCount,  // γ: groups the input by its first `group_arity` columns
                // and appends the per-group row count; arity g+1. With
                // group_arity 0, one row holding the total count. Exists
                // for the Quel baseline of §1, which expresses universal
                // quantification by comparing counts.
  kUnion,
  kDifference,
  kIntersect,
  kNonEmpty,  // relation → boolean: {()} iff child is non-empty; evaluated
              // with early termination (§3.2)
  kBoolNot,   // boolean complement (arity-0 child)
  kBoolAnd,   // short-circuit conjunction of booleans
  kBoolOr,    // short-circuit disjunction of booleans
};

const char* ExprKindName(ExprKind kind);

/// An immutable algebra expression tree. Build via the factories; evaluate
/// with exec::Evaluate; print with ToString() (an EXPLAIN-style tree).
class Expr {
 public:
  static ExprPtr Scan(std::string relation_name);
  static ExprPtr Literal(Relation relation);
  static ExprPtr Select(ExprPtr child, PredicatePtr predicate);
  static ExprPtr Project(ExprPtr child, std::vector<size_t> columns);
  static ExprPtr Product(ExprPtr left, ExprPtr right);
  /// `residual` (optional) is evaluated on the concatenated tuple.
  static ExprPtr Join(ExprPtr left, ExprPtr right, std::vector<JoinKey> keys,
                      PredicatePtr residual = nullptr);
  static ExprPtr SemiJoin(ExprPtr left, ExprPtr right,
                          std::vector<JoinKey> keys);
  static ExprPtr AntiJoin(ExprPtr left, ExprPtr right,
                          std::vector<JoinKey> keys);
  /// `constraint` (optional) is evaluated on the left tuple; rows failing
  /// it are not probed and pad with ∅ (third clause of Definition 7).
  static ExprPtr OuterJoin(ExprPtr left, ExprPtr right,
                           std::vector<JoinKey> keys,
                           PredicatePtr constraint = nullptr);
  static ExprPtr MarkJoin(ExprPtr left, ExprPtr right,
                          std::vector<JoinKey> keys,
                          PredicatePtr constraint = nullptr);
  static ExprPtr Division(ExprPtr dividend, ExprPtr divisor);
  /// `group_arity` leading columns of the divisor (and the matching
  /// middle columns of the dividend) are the group key.
  static ExprPtr GroupDivision(ExprPtr dividend, ExprPtr divisor,
                               size_t group_arity);
  static ExprPtr GroupCount(ExprPtr child, size_t group_arity);
  static ExprPtr Union(ExprPtr left, ExprPtr right);
  static ExprPtr Difference(ExprPtr left, ExprPtr right);
  static ExprPtr Intersect(ExprPtr left, ExprPtr right);
  static ExprPtr NonEmpty(ExprPtr child);
  static ExprPtr BoolNot(ExprPtr child);
  static ExprPtr BoolAnd(std::vector<ExprPtr> children);
  static ExprPtr BoolOr(std::vector<ExprPtr> children);

  ExprKind kind() const { return kind_; }
  const std::string& relation_name() const { return name_; }
  const Relation& literal() const { return literal_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child() const { return children_[0]; }
  const ExprPtr& left() const { return children_[0]; }
  const ExprPtr& right() const { return children_[1]; }
  const PredicatePtr& predicate() const { return predicate_; }
  const PredicatePtr& constraint() const { return predicate_; }
  const std::vector<size_t>& columns() const { return columns_; }
  const std::vector<JoinKey>& keys() const { return keys_; }
  size_t group_arity() const { return group_arity_; }

  /// Output arity given the catalog; validates column/key bounds along the
  /// way, returning kInvalidArgument on any inconsistency.
  Result<size_t> Arity(const Database& db) const;

  /// Multi-line EXPLAIN-style tree, two-space indented.
  std::string ToString() const;

  /// Number of operator nodes.
  size_t Size() const;

  /// Nesting depth of the plan: 1 for a leaf, 1 + max child depth
  /// otherwise. Iterative (explicit stack), so callers can bound the
  /// depth of untrusted plans before any recursive walk (Arity,
  /// iterator construction) touches them.
  size_t Depth() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind), literal_(0) {}

  void AppendTree(std::string* out, int indent) const;

  ExprKind kind_;
  std::string name_;
  Relation literal_;
  std::vector<ExprPtr> children_;
  PredicatePtr predicate_;
  std::vector<size_t> columns_;
  std::vector<JoinKey> keys_;
  size_t group_arity_ = 0;
};

}  // namespace bryql

#endif  // BRYQL_ALGEBRA_EXPR_H_
