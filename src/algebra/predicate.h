#ifndef BRYQL_ALGEBRA_PREDICATE_H_
#define BRYQL_ALGEBRA_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "calculus/formula.h"  // for CompareOp
#include "common/value.h"
#include "storage/tuple.h"

namespace bryql {

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// A boolean condition over one tuple, used by selections and as the
/// residual/constraint conditions of joins. Columns are positional, as in
/// the paper's algebra (attributes 1..n; we index from 0).
class Predicate {
 public:
  enum class Kind {
    kTrue,
    kCompareColCol,  // tuple[lhs] op tuple[rhs_col]
    kCompareColVal,  // tuple[lhs] op value
    kIsNull,         // tuple[lhs] = ∅   (Definition 7 constraints)
    kIsNotNull,      // tuple[lhs] ≠ ∅
    kAnd,
    kOr,
    kNot,
  };

  static PredicatePtr True();
  static PredicatePtr ColCol(CompareOp op, size_t lhs, size_t rhs);
  static PredicatePtr ColVal(CompareOp op, size_t lhs, Value value);
  static PredicatePtr IsNull(size_t col);
  static PredicatePtr IsNotNull(size_t col);
  static PredicatePtr And(std::vector<PredicatePtr> children);
  static PredicatePtr Or(std::vector<PredicatePtr> children);
  static PredicatePtr Not(PredicatePtr child);

  Kind kind() const { return kind_; }
  size_t lhs() const { return lhs_; }
  size_t rhs_col() const { return rhs_col_; }
  const Value& value() const { return value_; }
  CompareOp op() const { return op_; }
  const std::vector<PredicatePtr>& children() const { return children_; }

  /// Evaluates against `tuple`. `comparisons`, when non-null, is
  /// incremented once per value comparison performed — the cost metric the
  /// paper argues about.
  bool Eval(const Tuple& tuple, size_t* comparisons) const;

  /// Largest column index referenced, or -1 when none (kTrue).
  int MaxColumn() const;

  /// Renders e.g. "($0 = 'db' & $2 != ∅)".
  std::string ToString() const;

 private:
  explicit Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  size_t lhs_ = 0;
  size_t rhs_col_ = 0;
  Value value_;
  CompareOp op_ = CompareOp::kEq;
  std::vector<PredicatePtr> children_;
};

/// Applies `op` to two values, counting one comparison.
bool CompareValues(CompareOp op, const Value& a, const Value& b);

}  // namespace bryql

#endif  // BRYQL_ALGEBRA_PREDICATE_H_
