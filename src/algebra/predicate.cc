#include "algebra/predicate.h"

#include <algorithm>

namespace bryql {

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

PredicatePtr Predicate::True() {
  return std::shared_ptr<Predicate>(new Predicate(Kind::kTrue));
}

PredicatePtr Predicate::ColCol(CompareOp op, size_t lhs, size_t rhs) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kCompareColCol));
  p->op_ = op;
  p->lhs_ = lhs;
  p->rhs_col_ = rhs;
  return p;
}

PredicatePtr Predicate::ColVal(CompareOp op, size_t lhs, Value value) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kCompareColVal));
  p->op_ = op;
  p->lhs_ = lhs;
  p->value_ = std::move(value);
  return p;
}

PredicatePtr Predicate::IsNull(size_t col) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kIsNull));
  p->lhs_ = col;
  return p;
}

PredicatePtr Predicate::IsNotNull(size_t col) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kIsNotNull));
  p->lhs_ = col;
  return p;
}

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  if (children.size() == 1) return children.front();
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kAnd));
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  if (children.size() == 1) return children.front();
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kOr));
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr child) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kNot));
  p->children_ = {std::move(child)};
  return p;
}

bool Predicate::Eval(const Tuple& tuple, size_t* comparisons) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompareColCol:
      if (comparisons != nullptr) ++*comparisons;
      return CompareValues(op_, tuple.at(lhs_), tuple.at(rhs_col_));
    case Kind::kCompareColVal:
      if (comparisons != nullptr) ++*comparisons;
      return CompareValues(op_, tuple.at(lhs_), value_);
    case Kind::kIsNull:
      return tuple.at(lhs_).is_null();
    case Kind::kIsNotNull:
      return !tuple.at(lhs_).is_null();
    case Kind::kAnd:
      for (const PredicatePtr& c : children_) {
        if (!c->Eval(tuple, comparisons)) return false;
      }
      return true;
    case Kind::kOr:
      for (const PredicatePtr& c : children_) {
        if (c->Eval(tuple, comparisons)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_[0]->Eval(tuple, comparisons);
  }
  return false;
}

int Predicate::MaxColumn() const {
  switch (kind_) {
    case Kind::kTrue:
      return -1;
    case Kind::kCompareColCol:
      return static_cast<int>(std::max(lhs_, rhs_col_));
    case Kind::kCompareColVal:
    case Kind::kIsNull:
    case Kind::kIsNotNull:
      return static_cast<int>(lhs_);
    default: {
      int max_col = -1;
      for (const PredicatePtr& c : children_) {
        max_col = std::max(max_col, c->MaxColumn());
      }
      return max_col;
    }
  }
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompareColCol:
      return "$" + std::to_string(lhs_) + " " + CompareOpName(op_) + " $" +
             std::to_string(rhs_col_);
    case Kind::kCompareColVal:
      return "$" + std::to_string(lhs_) + " " + CompareOpName(op_) + " " +
             value_.ToString();
    case Kind::kIsNull:
      return "$" + std::to_string(lhs_) + " = ∅";
    case Kind::kIsNotNull:
      return "$" + std::to_string(lhs_) + " != ∅";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind_ == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "!(" + children_[0]->ToString() + ")";
  }
  return "?";
}

}  // namespace bryql
