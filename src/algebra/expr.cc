#include "algebra/expr.h"

#include <algorithm>

namespace bryql {

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kScan:
      return "Scan";
    case ExprKind::kLiteral:
      return "Literal";
    case ExprKind::kSelect:
      return "Select";
    case ExprKind::kProject:
      return "Project";
    case ExprKind::kProduct:
      return "Product";
    case ExprKind::kJoin:
      return "Join";
    case ExprKind::kSemiJoin:
      return "SemiJoin";
    case ExprKind::kAntiJoin:
      return "ComplementJoin";
    case ExprKind::kOuterJoin:
      return "OuterJoin";
    case ExprKind::kMarkJoin:
      return "ConstrainedOuterJoin";
    case ExprKind::kDivision:
      return "Division";
    case ExprKind::kGroupDivision:
      return "GroupDivision";
    case ExprKind::kGroupCount:
      return "GroupCount";
    case ExprKind::kUnion:
      return "Union";
    case ExprKind::kDifference:
      return "Difference";
    case ExprKind::kIntersect:
      return "Intersect";
    case ExprKind::kNonEmpty:
      return "NonEmpty";
    case ExprKind::kBoolNot:
      return "BoolNot";
    case ExprKind::kBoolAnd:
      return "BoolAnd";
    case ExprKind::kBoolOr:
      return "BoolOr";
  }
  return "?";
}

// Factory helpers. Expr's constructor is private, so each factory builds
// through a local shared_ptr.
#define BRYQL_MAKE_EXPR(var, kind) \
  auto var = std::shared_ptr<Expr>(new Expr(kind))

ExprPtr Expr::Scan(std::string relation_name) {
  BRYQL_MAKE_EXPR(e, ExprKind::kScan);
  e->name_ = std::move(relation_name);
  return e;
}

ExprPtr Expr::Literal(Relation relation) {
  BRYQL_MAKE_EXPR(e, ExprKind::kLiteral);
  e->literal_ = std::move(relation);
  return e;
}

ExprPtr Expr::Select(ExprPtr child, PredicatePtr predicate) {
  BRYQL_MAKE_EXPR(e, ExprKind::kSelect);
  e->children_ = {std::move(child)};
  e->predicate_ = std::move(predicate);
  return e;
}

ExprPtr Expr::Project(ExprPtr child, std::vector<size_t> columns) {
  BRYQL_MAKE_EXPR(e, ExprKind::kProject);
  e->children_ = {std::move(child)};
  e->columns_ = std::move(columns);
  return e;
}

ExprPtr Expr::Product(ExprPtr left, ExprPtr right) {
  BRYQL_MAKE_EXPR(e, ExprKind::kProduct);
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Join(ExprPtr left, ExprPtr right, std::vector<JoinKey> keys,
                   PredicatePtr residual) {
  BRYQL_MAKE_EXPR(e, ExprKind::kJoin);
  e->children_ = {std::move(left), std::move(right)};
  e->keys_ = std::move(keys);
  e->predicate_ = std::move(residual);
  return e;
}

ExprPtr Expr::SemiJoin(ExprPtr left, ExprPtr right,
                       std::vector<JoinKey> keys) {
  BRYQL_MAKE_EXPR(e, ExprKind::kSemiJoin);
  e->children_ = {std::move(left), std::move(right)};
  e->keys_ = std::move(keys);
  return e;
}

ExprPtr Expr::AntiJoin(ExprPtr left, ExprPtr right,
                       std::vector<JoinKey> keys) {
  BRYQL_MAKE_EXPR(e, ExprKind::kAntiJoin);
  e->children_ = {std::move(left), std::move(right)};
  e->keys_ = std::move(keys);
  return e;
}

ExprPtr Expr::OuterJoin(ExprPtr left, ExprPtr right,
                        std::vector<JoinKey> keys, PredicatePtr constraint) {
  BRYQL_MAKE_EXPR(e, ExprKind::kOuterJoin);
  e->children_ = {std::move(left), std::move(right)};
  e->keys_ = std::move(keys);
  e->predicate_ = std::move(constraint);
  return e;
}

ExprPtr Expr::MarkJoin(ExprPtr left, ExprPtr right, std::vector<JoinKey> keys,
                       PredicatePtr constraint) {
  BRYQL_MAKE_EXPR(e, ExprKind::kMarkJoin);
  e->children_ = {std::move(left), std::move(right)};
  e->keys_ = std::move(keys);
  e->predicate_ = std::move(constraint);
  return e;
}

ExprPtr Expr::Division(ExprPtr dividend, ExprPtr divisor) {
  BRYQL_MAKE_EXPR(e, ExprKind::kDivision);
  e->children_ = {std::move(dividend), std::move(divisor)};
  return e;
}

ExprPtr Expr::GroupDivision(ExprPtr dividend, ExprPtr divisor,
                            size_t group_arity) {
  BRYQL_MAKE_EXPR(e, ExprKind::kGroupDivision);
  e->children_ = {std::move(dividend), std::move(divisor)};
  e->group_arity_ = group_arity;
  return e;
}

ExprPtr Expr::GroupCount(ExprPtr child, size_t group_arity) {
  BRYQL_MAKE_EXPR(e, ExprKind::kGroupCount);
  e->children_ = {std::move(child)};
  e->group_arity_ = group_arity;
  return e;
}

ExprPtr Expr::Union(ExprPtr left, ExprPtr right) {
  BRYQL_MAKE_EXPR(e, ExprKind::kUnion);
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Difference(ExprPtr left, ExprPtr right) {
  BRYQL_MAKE_EXPR(e, ExprKind::kDifference);
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Intersect(ExprPtr left, ExprPtr right) {
  BRYQL_MAKE_EXPR(e, ExprKind::kIntersect);
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::NonEmpty(ExprPtr child) {
  BRYQL_MAKE_EXPR(e, ExprKind::kNonEmpty);
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::BoolNot(ExprPtr child) {
  BRYQL_MAKE_EXPR(e, ExprKind::kBoolNot);
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::BoolAnd(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children.front();
  BRYQL_MAKE_EXPR(e, ExprKind::kBoolAnd);
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::BoolOr(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children.front();
  BRYQL_MAKE_EXPR(e, ExprKind::kBoolOr);
  e->children_ = std::move(children);
  return e;
}

#undef BRYQL_MAKE_EXPR

namespace {

Status BadExpr(const std::string& what) {
  return Status::InvalidArgument("malformed algebra expression: " + what);
}

Status CheckKeys(const std::vector<JoinKey>& keys, size_t left_arity,
                 size_t right_arity, const char* op) {
  for (const JoinKey& k : keys) {
    if (k.left >= left_arity || k.right >= right_arity) {
      return BadExpr(std::string(op) + " key (" + std::to_string(k.left) +
                     "," + std::to_string(k.right) + ") out of range for " +
                     std::to_string(left_arity) + "x" +
                     std::to_string(right_arity));
    }
  }
  return Status::Ok();
}

Status CheckPredicate(const PredicatePtr& pred, size_t arity,
                      const char* op) {
  if (pred == nullptr) return Status::Ok();
  if (pred->MaxColumn() >= static_cast<int>(arity)) {
    return BadExpr(std::string(op) + " predicate references column " +
                   std::to_string(pred->MaxColumn()) + " of arity " +
                   std::to_string(arity));
  }
  return Status::Ok();
}

}  // namespace

Result<size_t> Expr::Arity(const Database& db) const {
  switch (kind_) {
    case ExprKind::kScan:
      return db.ArityOf(name_);
    case ExprKind::kLiteral:
      return literal_.arity();
    case ExprKind::kSelect: {
      BRYQL_ASSIGN_OR_RETURN(size_t a, child()->Arity(db));
      BRYQL_RETURN_NOT_OK(CheckPredicate(predicate_, a, "Select"));
      return a;
    }
    case ExprKind::kProject: {
      BRYQL_ASSIGN_OR_RETURN(size_t a, child()->Arity(db));
      for (size_t c : columns_) {
        if (c >= a) {
          return BadExpr("projection column " + std::to_string(c) +
                         " out of range for arity " + std::to_string(a));
        }
      }
      return columns_.size();
    }
    case ExprKind::kProduct: {
      BRYQL_ASSIGN_OR_RETURN(size_t l, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t r, right()->Arity(db));
      return l + r;
    }
    case ExprKind::kJoin: {
      BRYQL_ASSIGN_OR_RETURN(size_t l, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t r, right()->Arity(db));
      BRYQL_RETURN_NOT_OK(CheckKeys(keys_, l, r, "Join"));
      BRYQL_RETURN_NOT_OK(CheckPredicate(predicate_, l + r, "Join"));
      return l + r;
    }
    case ExprKind::kSemiJoin:
    case ExprKind::kAntiJoin: {
      BRYQL_ASSIGN_OR_RETURN(size_t l, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t r, right()->Arity(db));
      BRYQL_RETURN_NOT_OK(CheckKeys(keys_, l, r, ExprKindName(kind_)));
      return l;
    }
    case ExprKind::kOuterJoin: {
      BRYQL_ASSIGN_OR_RETURN(size_t l, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t r, right()->Arity(db));
      BRYQL_RETURN_NOT_OK(CheckKeys(keys_, l, r, "OuterJoin"));
      BRYQL_RETURN_NOT_OK(CheckPredicate(predicate_, l, "OuterJoin"));
      return l + r;
    }
    case ExprKind::kMarkJoin: {
      BRYQL_ASSIGN_OR_RETURN(size_t l, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t r, right()->Arity(db));
      BRYQL_RETURN_NOT_OK(CheckKeys(keys_, l, r, "MarkJoin"));
      BRYQL_RETURN_NOT_OK(CheckPredicate(predicate_, l, "MarkJoin"));
      return l + 1;
    }
    case ExprKind::kDivision: {
      BRYQL_ASSIGN_OR_RETURN(size_t p, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t q, right()->Arity(db));
      // q == p yields an arity-0 (boolean) quotient: divisor ⊆ dividend.
      if (q == 0 || q > p) {
        return BadExpr("division arity " + std::to_string(p) + " ÷ " +
                       std::to_string(q));
      }
      return p - q;
    }
    case ExprKind::kGroupDivision: {
      BRYQL_ASSIGN_OR_RETURN(size_t p, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t q, right()->Arity(db));
      size_t g = group_arity_;
      // value arity k = q - g >= 1; dividend needs keep + group + value.
      if (g == 0 || g >= q || p < q) {
        return BadExpr("group division arity " + std::to_string(p) + " ÷ " +
                       std::to_string(q) + " with group " +
                       std::to_string(g));
      }
      return p - (q - g);
    }
    case ExprKind::kGroupCount: {
      BRYQL_ASSIGN_OR_RETURN(size_t a, child()->Arity(db));
      if (group_arity_ > a) {
        return BadExpr("group count over " + std::to_string(group_arity_) +
                       " columns of arity " + std::to_string(a));
      }
      return group_arity_ + 1;
    }
    case ExprKind::kUnion:
    case ExprKind::kDifference:
    case ExprKind::kIntersect: {
      BRYQL_ASSIGN_OR_RETURN(size_t l, left()->Arity(db));
      BRYQL_ASSIGN_OR_RETURN(size_t r, right()->Arity(db));
      if (l != r) {
        return BadExpr(std::string(ExprKindName(kind_)) +
                       " of mismatched arities " + std::to_string(l) +
                       " and " + std::to_string(r));
      }
      return l;
    }
    case ExprKind::kNonEmpty: {
      BRYQL_ASSIGN_OR_RETURN(size_t a, child()->Arity(db));
      (void)a;
      return 0;
    }
    case ExprKind::kBoolNot:
    case ExprKind::kBoolAnd:
    case ExprKind::kBoolOr: {
      for (const ExprPtr& c : children_) {
        BRYQL_ASSIGN_OR_RETURN(size_t a, c->Arity(db));
        if (a != 0) {
          return BadExpr(std::string(ExprKindName(kind_)) +
                         " over non-boolean child of arity " +
                         std::to_string(a));
        }
      }
      return 0;
    }
  }
  return BadExpr("unknown operator");
}

void Expr::AppendTree(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += ExprKindName(kind_);
  switch (kind_) {
    case ExprKind::kScan:
      *out += " " + name_;
      break;
    case ExprKind::kLiteral:
      *out += " [" + std::to_string(literal_.size()) + " tuples, arity " +
              std::to_string(literal_.arity()) + "]";
      break;
    case ExprKind::kSelect:
      *out += " " + predicate_->ToString();
      break;
    case ExprKind::kProject: {
      *out += " [";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += "$" + std::to_string(columns_[i]);
      }
      *out += "]";
      break;
    }
    case ExprKind::kGroupDivision:
    case ExprKind::kGroupCount:
      *out += " group=" + std::to_string(group_arity_);
      break;
    default:
      break;
  }
  if (!keys_.empty()) {
    *out += " on ";
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0) *out += " & ";
      *out += "$" + std::to_string(keys_[i].left) + "=$" +
              std::to_string(keys_[i].right);
    }
  }
  if (predicate_ != nullptr && kind_ != ExprKind::kSelect) {
    *out += " if " + predicate_->ToString();
  }
  *out += "\n";
  for (const ExprPtr& c : children_) {
    c->AppendTree(out, indent + 1);
  }
}

std::string Expr::ToString() const {
  std::string out;
  AppendTree(&out, 0);
  return out;
}

size_t Expr::Size() const {
  size_t n = 1;
  for (const ExprPtr& c : children_) n += c->Size();
  return n;
}

size_t Expr::Depth() const {
  size_t max_depth = 0;
  std::vector<std::pair<const Expr*, size_t>> stack{{this, 1}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (depth > max_depth) max_depth = depth;
    for (const ExprPtr& c : node->children_) {
      stack.push_back({c.get(), depth + 1});
    }
  }
  return max_depth;
}

}  // namespace bryql
