#ifndef BRYQL_ALGEBRA_SIMPLIFIER_H_
#define BRYQL_ALGEBRA_SIMPLIFIER_H_

#include "algebra/expr.h"
#include "common/result.h"
#include "storage/database.h"

namespace bryql {

/// Algebraic plan cleanup, applied bottom-up until stable:
///
///   * identity projections vanish; nested projections compose;
///   * σ_true vanishes; σ_false folds to an empty literal; nested
///     selections merge into one conjunction;
///   * operators with a statically empty input fold where sound
///     (⋈/⋉/× with an empty side → empty; ⊼/−/∪ with an empty right
///     side → left);
///   * boolean connectives fold over statically known literals.
///
/// Simplification never changes results — exec/simplifier tests verify
/// plans evaluate identically before and after. `db` is used only for
/// arity validation of fabricated empty literals.
Result<ExprPtr> SimplifyPlan(const ExprPtr& expr, const Database& db);

}  // namespace bryql

#endif  // BRYQL_ALGEBRA_SIMPLIFIER_H_
