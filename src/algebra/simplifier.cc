#include "algebra/simplifier.h"

namespace bryql {

namespace {

bool IsEmptyLiteral(const ExprPtr& e) {
  return e->kind() == ExprKind::kLiteral && e->literal().empty();
}

/// True / false when the predicate is statically known.
enum class Truth { kTrue, kFalse, kUnknown };

Truth StaticTruth(const PredicatePtr& p) {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      return Truth::kTrue;
    case Predicate::Kind::kNot: {
      Truth t = StaticTruth(p->children()[0]);
      if (t == Truth::kTrue) return Truth::kFalse;
      if (t == Truth::kFalse) return Truth::kTrue;
      return Truth::kUnknown;
    }
    case Predicate::Kind::kAnd: {
      bool all_true = true;
      for (const PredicatePtr& c : p->children()) {
        Truth t = StaticTruth(c);
        if (t == Truth::kFalse) return Truth::kFalse;
        all_true &= t == Truth::kTrue;
      }
      return all_true ? Truth::kTrue : Truth::kUnknown;
    }
    case Predicate::Kind::kOr: {
      bool all_false = true;
      for (const PredicatePtr& c : p->children()) {
        Truth t = StaticTruth(c);
        if (t == Truth::kTrue) return Truth::kTrue;
        all_false &= t == Truth::kFalse;
      }
      return all_false ? Truth::kFalse : Truth::kUnknown;
    }
    default:
      return Truth::kUnknown;
  }
}

Result<ExprPtr> EmptyOfSameArity(const ExprPtr& e, const Database& db) {
  BRYQL_ASSIGN_OR_RETURN(size_t arity, e->Arity(db));
  return Expr::Literal(Relation(arity));
}

/// One bottom-up pass; sets *changed when a rewrite fired.
Result<ExprPtr> Pass(const ExprPtr& e, const Database& db, bool* changed) {
  // Simplify children first.
  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  bool child_changed = false;
  for (const ExprPtr& c : e->children()) {
    BRYQL_ASSIGN_OR_RETURN(ExprPtr nc, Pass(c, db, &child_changed));
    kids.push_back(std::move(nc));
  }
  auto rebuilt = [&]() -> ExprPtr {
    if (!child_changed) return e;
    switch (e->kind()) {
      case ExprKind::kSelect:
        return Expr::Select(kids[0], e->predicate());
      case ExprKind::kProject:
        return Expr::Project(kids[0], e->columns());
      case ExprKind::kProduct:
        return Expr::Product(kids[0], kids[1]);
      case ExprKind::kJoin:
        return Expr::Join(kids[0], kids[1], e->keys(), e->predicate());
      case ExprKind::kSemiJoin:
        return Expr::SemiJoin(kids[0], kids[1], e->keys());
      case ExprKind::kAntiJoin:
        return Expr::AntiJoin(kids[0], kids[1], e->keys());
      case ExprKind::kOuterJoin:
        return Expr::OuterJoin(kids[0], kids[1], e->keys(), e->constraint());
      case ExprKind::kMarkJoin:
        return Expr::MarkJoin(kids[0], kids[1], e->keys(), e->constraint());
      case ExprKind::kDivision:
        return Expr::Division(kids[0], kids[1]);
      case ExprKind::kGroupDivision:
        return Expr::GroupDivision(kids[0], kids[1], e->group_arity());
      case ExprKind::kGroupCount:
        return Expr::GroupCount(kids[0], e->group_arity());
      case ExprKind::kUnion:
        return Expr::Union(kids[0], kids[1]);
      case ExprKind::kDifference:
        return Expr::Difference(kids[0], kids[1]);
      case ExprKind::kIntersect:
        return Expr::Intersect(kids[0], kids[1]);
      case ExprKind::kNonEmpty:
        return Expr::NonEmpty(kids[0]);
      case ExprKind::kBoolNot:
        return Expr::BoolNot(kids[0]);
      case ExprKind::kBoolAnd:
        return Expr::BoolAnd(kids);
      case ExprKind::kBoolOr:
        return Expr::BoolOr(kids);
      default:
        return e;
    }
  }();
  *changed |= child_changed;

  const ExprPtr& node = rebuilt;
  switch (node->kind()) {
    case ExprKind::kSelect: {
      Truth t = StaticTruth(node->predicate());
      if (t == Truth::kTrue) {
        *changed = true;
        return node->child();
      }
      if (t == Truth::kFalse || IsEmptyLiteral(node->child())) {
        *changed = true;
        return EmptyOfSameArity(node, db);
      }
      if (node->child()->kind() == ExprKind::kSelect) {
        *changed = true;
        return Expr::Select(node->child()->child(),
                            Predicate::And({node->child()->predicate(),
                                            node->predicate()}));
      }
      return node;
    }
    case ExprKind::kProject: {
      // Identity projection.
      BRYQL_ASSIGN_OR_RETURN(size_t child_arity,
                             node->child()->Arity(db));
      bool identity = node->columns().size() == child_arity;
      for (size_t i = 0; identity && i < node->columns().size(); ++i) {
        identity = node->columns()[i] == i;
      }
      if (identity) {
        *changed = true;
        return node->child();
      }
      if (node->child()->kind() == ExprKind::kProject) {
        std::vector<size_t> composed;
        composed.reserve(node->columns().size());
        for (size_t c : node->columns()) {
          composed.push_back(node->child()->columns()[c]);
        }
        *changed = true;
        return Expr::Project(node->child()->child(), std::move(composed));
      }
      if (IsEmptyLiteral(node->child())) {
        *changed = true;
        return EmptyOfSameArity(node, db);
      }
      return node;
    }
    case ExprKind::kProduct:
    case ExprKind::kJoin:
    case ExprKind::kSemiJoin:
    case ExprKind::kIntersect: {
      if (IsEmptyLiteral(node->left()) || IsEmptyLiteral(node->right())) {
        *changed = true;
        return EmptyOfSameArity(node, db);
      }
      return node;
    }
    case ExprKind::kAntiJoin:
    case ExprKind::kDifference: {
      if (IsEmptyLiteral(node->right())) {
        *changed = true;
        return node->left();
      }
      if (IsEmptyLiteral(node->left())) {
        *changed = true;
        return EmptyOfSameArity(node, db);
      }
      return node;
    }
    case ExprKind::kUnion: {
      if (IsEmptyLiteral(node->right())) {
        *changed = true;
        return node->left();
      }
      if (IsEmptyLiteral(node->left())) {
        *changed = true;
        return node->right();
      }
      return node;
    }
    case ExprKind::kNonEmpty: {
      if (IsEmptyLiteral(node->child())) {
        *changed = true;
        return Expr::NonEmpty(Expr::Literal(Relation(0)));
      }
      return node;
    }
    default:
      return node;
  }
}

}  // namespace

Result<ExprPtr> SimplifyPlan(const ExprPtr& expr, const Database& db) {
  BRYQL_RETURN_NOT_OK(expr->Arity(db).status());
  ExprPtr current = expr;
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    BRYQL_ASSIGN_OR_RETURN(ExprPtr next, Pass(current, db, &changed));
    current = std::move(next);
    if (!changed) return current;
  }
  return current;
}

}  // namespace bryql
