#include "algebra/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bryql {

namespace {

/// Selectivity of a predicate under independence assumptions.
double Selectivity(const PredicatePtr& pred) {
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      return 1.0;
    case Predicate::Kind::kCompareColCol:
    case Predicate::Kind::kCompareColVal:
      switch (pred->op()) {
        case CompareOp::kEq:
          return 0.1;
        case CompareOp::kNe:
          return 0.9;
        default:
          return 1.0 / 3.0;
      }
    case Predicate::Kind::kIsNull:
    case Predicate::Kind::kIsNotNull:
      return 0.5;
    case Predicate::Kind::kAnd: {
      double s = 1.0;
      for (const PredicatePtr& c : pred->children()) s *= Selectivity(c);
      return s;
    }
    case Predicate::Kind::kOr: {
      double keep_none = 1.0;
      for (const PredicatePtr& c : pred->children()) {
        keep_none *= 1.0 - Selectivity(c);
      }
      return 1.0 - keep_none;
    }
    case Predicate::Kind::kNot:
      return 1.0 - Selectivity(pred->children()[0]);
  }
  return 1.0;
}

}  // namespace

Result<CostEstimate> CostModel::Estimate(const ExprPtr& expr) const {
  // Validate once at the root.
  BRYQL_RETURN_NOT_OK(expr->Arity(*db_).status());
  struct Walker {
    const Database* db;

    CostEstimate Walk(const ExprPtr& e) {
      switch (e->kind()) {
        case ExprKind::kScan: {
          auto rel = db->Get(e->relation_name());
          double n = rel.ok() ? static_cast<double>((*rel)->size()) : 0.0;
          return {n, n};
        }
        case ExprKind::kLiteral: {
          double n = static_cast<double>(e->literal().size());
          return {n, n};
        }
        case ExprKind::kSelect: {
          CostEstimate c = Walk(e->child());
          double rows = c.rows * Selectivity(e->predicate());
          return {rows, c.cost + c.rows};
        }
        case ExprKind::kProject: {
          CostEstimate c = Walk(e->child());
          // Projection may collapse duplicates; assume it keeps most rows
          // unless it drops to very few columns.
          double keep = e->columns().empty() ? 0.0 : 0.9;
          double rows = std::max(1.0, c.rows * keep);
          return {rows, c.cost + c.rows};
        }
        case ExprKind::kProduct: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          double rows = l.rows * r.rows;
          return {rows, l.cost + r.cost + r.rows + l.rows + rows};
        }
        case ExprKind::kJoin: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          double rows = e->keys().empty()
                            ? l.rows * r.rows
                            : l.rows * r.rows /
                                  std::max(1.0, std::max(l.rows, r.rows));
          rows *= Selectivity(e->predicate());
          return {rows, l.cost + r.cost + r.rows + l.rows + rows};
        }
        case ExprKind::kSemiJoin:
        case ExprKind::kAntiJoin: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          double keep = r.rows == 0
                            ? (e->kind() == ExprKind::kAntiJoin ? 1.0 : 0.0)
                            : 0.5;
          double rows = l.rows * keep;
          return {rows, l.cost + r.cost + r.rows + l.rows + rows};
        }
        case ExprKind::kOuterJoin: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          double rows = std::max(l.rows, l.rows * r.rows /
                                             std::max(1.0, r.rows));
          return {rows, l.cost + r.cost + r.rows + l.rows + rows};
        }
        case ExprKind::kMarkJoin: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          // One output row per input row; the constraint saves probes.
          double probes = l.rows * Selectivity(e->constraint());
          return {l.rows, l.cost + r.cost + r.rows + probes + l.rows};
        }
        case ExprKind::kGroupCount: {
          CostEstimate c = Walk(e->child());
          double rows = std::max(1.0, c.rows * 0.3);  // groups per input
          return {rows, c.cost + c.rows + rows};
        }
        case ExprKind::kDivision:
        case ExprKind::kGroupDivision: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          double rows = l.rows / std::max(1.0, r.rows);
          return {rows, l.cost + r.cost + l.rows + r.rows + rows};
        }
        case ExprKind::kUnion: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          double rows = std::max(l.rows, r.rows) +
                        0.5 * std::min(l.rows, r.rows);
          return {rows, l.cost + r.cost + l.rows + r.rows};
        }
        case ExprKind::kDifference:
        case ExprKind::kIntersect: {
          CostEstimate l = Walk(e->left());
          CostEstimate r = Walk(e->right());
          return {l.rows * 0.5, l.cost + r.cost + l.rows + r.rows};
        }
        case ExprKind::kNonEmpty: {
          CostEstimate c = Walk(e->child());
          // The early-stopping test usually touches a prefix only.
          return {1.0, c.cost * 0.5 + 1.0};
        }
        case ExprKind::kBoolNot: {
          CostEstimate c = Walk(e->child());
          return {1.0, c.cost};
        }
        case ExprKind::kBoolAnd:
        case ExprKind::kBoolOr: {
          double cost = 0;
          for (const ExprPtr& c : e->children()) cost += Walk(c).cost;
          return {1.0, cost};
        }
      }
      return {0, 0};
    }
  };
  Walker walker{db_};
  return walker.Walk(expr);
}

namespace {

Status AnnotateImpl(const CostModel& model, const ExprPtr& e, int indent,
                    std::string* out) {
  // Estimate() validates; here we re-walk per node (plans are small).
  BRYQL_ASSIGN_OR_RETURN(CostEstimate est, model.Estimate(e));
  out->append(static_cast<size_t>(indent) * 2, ' ');
  std::string line = e->ToString();
  *out += line.substr(0, line.find('\n'));
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "  [rows~%.0f cost~%.0f]\n",
                est.rows, est.cost);
  *out += buffer;
  for (const ExprPtr& c : e->children()) {
    BRYQL_RETURN_NOT_OK(AnnotateImpl(model, c, indent + 1, out));
  }
  return Status::Ok();
}

}  // namespace

Result<std::string> CostModel::Annotate(const ExprPtr& expr) const {
  std::string out;
  BRYQL_RETURN_NOT_OK(AnnotateImpl(*this, expr, 0, &out));
  return out;
}

}  // namespace bryql
