#include "algebra/physical_plan.h"

#include <cmath>

#include "common/str_util.h"

namespace bryql {

const char* JoinVariantName(JoinVariant variant) {
  switch (variant) {
    case JoinVariant::kInner:
      return "inner";
    case JoinVariant::kSemi:
      return "semi";
    case JoinVariant::kAnti:
      return "anti";
    case JoinVariant::kLeftOuter:
      return "left-outer";
    case JoinVariant::kMark:
      return "mark";
  }
  return "?";
}

const char* PhysicalKindName(PhysicalKind kind) {
  switch (kind) {
    case PhysicalKind::kTableScan:
      return "TableScan";
    case PhysicalKind::kLiteralScan:
      return "LiteralScan";
    case PhysicalKind::kIndexScan:
      return "IndexScan";
    case PhysicalKind::kColumnarScan:
      return "ColumnarScan";
    case PhysicalKind::kFilter:
      return "Filter";
    case PhysicalKind::kProject:
      return "Project";
    case PhysicalKind::kProduct:
      return "Product";
    case PhysicalKind::kHashJoin:
      return "HashJoin";
    case PhysicalKind::kSortMergeJoin:
      return "SortMergeJoin";
    case PhysicalKind::kDivision:
      return "Division";
    case PhysicalKind::kGroupDivision:
      return "GroupDivision";
    case PhysicalKind::kGroupCount:
      return "GroupCount";
    case PhysicalKind::kUnion:
      return "Union";
    case PhysicalKind::kNonEmpty:
      return "NonEmpty";
    case PhysicalKind::kBoolNot:
      return "BoolNot";
    case PhysicalKind::kBoolAnd:
      return "BoolAnd";
    case PhysicalKind::kBoolOr:
      return "BoolOr";
  }
  return "?";
}

const char* ParallelRoleName(ParallelRole role) {
  switch (role) {
    case ParallelRole::kSerial:
      return "serial";
    case ParallelRole::kPipeline:
      return "pipeline";
    case ParallelRole::kPartition:
      return "partition";
    case ParallelRole::kBuildShared:
      return "build-shared";
    case ParallelRole::kMaterializeShared:
      return "materialize-shared";
  }
  return "?";
}

namespace {

std::string KeysToString(const std::vector<JoinKey>& keys) {
  std::string out = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(keys[i].left) + "=" + std::to_string(keys[i].right);
  }
  return out + "]";
}

std::string Rounded(double v) {
  if (v >= 100) return std::to_string(static_cast<long long>(std::llround(v)));
  // Keep one decimal for small estimates so selectivities stay visible.
  double r = std::round(v * 10) / 10;
  std::string s = std::to_string(r);
  return s.substr(0, s.find('.') + 2);
}

}  // namespace

std::string PhysicalNode::Label() const {
  std::string out = PhysicalKindName(kind);
  switch (kind) {
    case PhysicalKind::kTableScan:
      out += " " + relation_name;
      break;
    case PhysicalKind::kLiteralScan:
      out += " (" + std::to_string(literal != nullptr ? literal->size() : 0) +
             " rows inline)";
      break;
    case PhysicalKind::kIndexScan:
      out += " " + relation_name + " [$" + std::to_string(index_column) +
             " = " + index_value.ToString() + "]";
      if (predicate != nullptr) out += " residual " + predicate->ToString();
      break;
    case PhysicalKind::kColumnarScan:
      out += " " + relation_name;
      if (predicate != nullptr) out += " [" + predicate->ToString() + "]";
      break;
    case PhysicalKind::kFilter:
      out += " " + predicate->ToString();
      break;
    case PhysicalKind::kProject: {
      out += " [";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += "$" + std::to_string(columns[i]);
      }
      out += "]";
      break;
    }
    case PhysicalKind::kHashJoin:
      out += "(" + std::string(JoinVariantName(variant)) +
             ", build=" + (build_left ? "left" : "right") +
             ", keys=" + KeysToString(keys);
      if (predicate != nullptr) {
        out += (variant == JoinVariant::kInner ? ", residual " : ", if ") +
               predicate->ToString();
      }
      out += ")";
      break;
    case PhysicalKind::kSortMergeJoin:
      out += "(" + std::string(JoinVariantName(variant)) +
             ", keys=" + KeysToString(keys);
      if (predicate != nullptr) {
        out += (variant == JoinVariant::kInner ? ", residual " : ", if ") +
               predicate->ToString();
      }
      out += ")";
      break;
    case PhysicalKind::kGroupDivision:
    case PhysicalKind::kGroupCount:
      out += "(group=" + std::to_string(group_arity) + ")";
      break;
    default:
      break;
  }
  return out;
}

namespace {

void AppendTree(const PhysicalNode& node, std::string* out, int indent) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += node.Label();
  *out += "  (arity=" + std::to_string(node.arity) +
          ", rows~" + Rounded(node.est_rows) +
          ", cost~" + Rounded(node.est_cost);
  if (node.parallel_role != ParallelRole::kSerial) {
    *out += ", par=";
    *out += ParallelRoleName(node.parallel_role);
  }
  *out += ")\n";
  for (const PhysicalPlanPtr& child : node.children) {
    AppendTree(*child, out, indent + 1);
  }
}

}  // namespace

std::string PhysicalNode::ToString() const {
  std::string out;
  AppendTree(*this, &out, 0);
  return out;
}

size_t PhysicalNode::Size() const {
  size_t n = 1;
  for (const PhysicalPlanPtr& child : children) n += child->Size();
  return n;
}

}  // namespace bryql
