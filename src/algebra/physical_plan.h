#ifndef BRYQL_ALGEBRA_PHYSICAL_PLAN_H_
#define BRYQL_ALGEBRA_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "common/value.h"
#include "storage/relation.h"

namespace bryql {

/// Which member of the join family to compute. The paper's observation —
/// the complement-join "is easily implemented by modifying any semi-join
/// algorithm" (§3.1), and likewise the constrained outer-join from any
/// join (§3.3) — holds for hash and sort-merge algorithms alike, so the
/// variant is orthogonal to the physical algorithm choice.
enum class JoinVariant {
  kInner,      // ⋈: concatenated matches
  kSemi,       // ⋉: left rows with a partner
  kAnti,       // ⊼: complement-join — left rows without a partner
  kLeftOuter,  // ⟕: matches, or ∅-padding
  kMark,       // constrained outer-join: left row + ⊥/∅ mark column
};

const char* JoinVariantName(JoinVariant variant);

/// Physical operator kinds — what the lowering pass compiles the logical
/// Expr tree into. Where ExprKind says *what* is computed, PhysicalKind
/// says *how*: access path (table vs. index scan), join algorithm (hash
/// vs. sort-merge), and build-side placement are all explicit here.
enum class PhysicalKind {
  kTableScan,      // full scan of a named base relation
  kLiteralScan,    // scan of an inline relation
  kIndexScan,      // hash-index bucket lookup + residual filter
  kColumnarScan,   // column-store scan, zone-pruned, predicate pushed down
  kFilter,         // σ_pred over a stream
  kProject,        // π_cols with streaming dedup
  kProduct,        // ×, right side materialized
  kHashJoin,       // build + probe; covers all five JoinVariants
  kSortMergeJoin,  // sort both sides + merge; covers all five variants
  kDivision,       // ÷
  kGroupDivision,  // per-group ÷
  kGroupCount,     // γ
  kUnion,          // ∪ with streaming dedup
  kNonEmpty,       // relation → boolean, first-witness semantics
  kBoolNot,
  kBoolAnd,
  kBoolOr,
};

const char* PhysicalKindName(PhysicalKind kind);

/// How a node participates in morsel-driven parallel execution
/// (ParallelRuntime, QueryOptions::num_threads > 0). Annotated by the
/// lowering pass as static plan structure — the same plan runs serially
/// or in parallel, so the role describes what the node *would* do at
/// num_threads > 0, and is surfaced by the physical EXPLAIN.
enum class ParallelRole {
  kSerial,             // off the spine; always runs single-threaded
  kPipeline,           // replicated per worker, streams its partition
  kPartition,          // scan fed by a shared morsel dispenser
  kBuildShared,        // join build side, drained once into shared state
  kMaterializeShared,  // materialized once, rows shared by all workers
};

const char* ParallelRoleName(ParallelRole role);

class PhysicalNode;
using PhysicalPlanPtr = std::shared_ptr<const PhysicalNode>;

/// One node of a lowered, executable plan. A PhysicalNode is a pure
/// *description* — it holds no runtime state, so a plan can be cached in a
/// PreparedQuery and instantiated into fresh operator trees many times
/// (src/exec/physical/runtime). Fields are public: the node is a record
/// produced by the lowering pass and consumed by the runtime and the
/// physical EXPLAIN, not an abstraction boundary.
struct PhysicalNode {
  PhysicalKind kind = PhysicalKind::kTableScan;
  std::vector<PhysicalPlanPtr> children;

  /// kTableScan / kIndexScan: base relation name, resolved against the
  /// catalog at instantiation time (never a raw pointer, so cached plans
  /// survive catalog updates).
  std::string relation_name;
  /// kLiteralScan: the inline relation, shared with the logical plan.
  std::shared_ptr<const Relation> literal;
  /// kIndexScan: the indexed equality `column = value`.
  size_t index_column = 0;
  Value index_value;

  /// kFilter predicate; kIndexScan residual; kHashJoin/kSortMergeJoin
  /// residual (kInner, over the concatenated tuple) or probe constraint
  /// (kLeftOuter/kMark, over the left tuple).
  PredicatePtr predicate;

  /// kProject columns.
  std::vector<size_t> columns;
  /// Join-family equi-key pairs (left column = right column).
  std::vector<JoinKey> keys;
  JoinVariant variant = JoinVariant::kInner;
  /// kHashJoin build-side placement: true builds the hash table on the
  /// left child and streams the right (cost-model choice, inner only).
  bool build_left = false;
  /// kGroupDivision / kGroupCount.
  size_t group_arity = 0;

  /// Output arity, fixed at lowering time.
  size_t arity = 0;
  /// kHashJoin(kLeftOuter): width of the ∅ padding (right child arity).
  size_t pad_arity = 0;

  /// Cost-model annotations (CostModel::Estimate at lowering time).
  double est_rows = 0;
  double est_cost = 0;

  /// Parallel-execution role (lowering's exchange/merge placement); see
  /// ParallelRole. kSerial nodes print no annotation.
  ParallelRole parallel_role = ParallelRole::kSerial;

  /// One-line operator description, e.g.
  /// "HashJoin(anti, build=right, keys=[0=0])".
  std::string Label() const;

  /// Multi-line physical EXPLAIN, two-space indented, with cost
  /// annotations — the physical counterpart of Expr::ToString().
  std::string ToString() const;

  /// Number of operator nodes in the subtree.
  size_t Size() const;
};

}  // namespace bryql

#endif  // BRYQL_ALGEBRA_PHYSICAL_PLAN_H_
