#ifndef BRYQL_ALGEBRA_COST_MODEL_H_
#define BRYQL_ALGEBRA_COST_MODEL_H_

#include <string>

#include "algebra/expr.h"
#include "common/result.h"
#include "storage/database.h"

namespace bryql {

/// Per-tuple work of a columnar scan relative to a row scan plus filter.
/// The vectorized kernels touch packed 64-bit payloads instead of Value
/// variants, and zone maps skip whole segments; 1/4 per tuple is the
/// conservative planning estimate the lowering chooser uses when a column
/// store exists (bench_scan measures the real ratio).
inline constexpr double kColumnarScanCostFactor = 0.25;

/// Estimated size and work of a plan.
struct CostEstimate {
  /// Estimated output cardinality.
  double rows = 0;
  /// Estimated total work (tuples touched across the whole subtree).
  double cost = 0;
};

/// A deliberately simple cost model in the spirit of the paper's closing
/// remark (§4): because the improved translation relies "basically on a
/// unique operator" — the join and its variants (semi-, complement-,
/// outer-, constrained outer-join) — one build-plus-probe formula covers
/// almost every operator:
///
///   cost(op over L, R) = cost(L) + cost(R) + rows(R)   [build]
///                                          + rows(L)   [probe]
///                                          + rows(out)  [emit]
///
/// Cardinalities use textbook independence assumptions: equality
/// selections keep 1/10, other comparisons 1/3; an equi-join with k key
/// pairs keeps |L|·|R| / max(|L|,|R|) (foreign-key heuristic); semi-joins
/// keep half of L, complement-joins the other half; divisions keep
/// rows(L)/max(rows(R),1).
///
/// Base cardinalities come from the catalog, so estimates are exact at
/// the leaves and heuristic above them. The model is *not* used to pick
/// plans (the translation is syntax-directed, like the paper's); it
/// powers EXPLAIN output and the cost-model validation tests, which check
/// that it ranks the paper's plan pairs the same way the measured
/// comparison counts do.
class CostModel {
 public:
  /// `db` must outlive the model.
  explicit CostModel(const Database* db) : db_(db) {}

  /// Estimates `expr` bottom-up. Fails on malformed plans (same
  /// validation as Expr::Arity).
  Result<CostEstimate> Estimate(const ExprPtr& expr) const;

  /// EXPLAIN-style tree annotated with per-node row/cost estimates.
  Result<std::string> Annotate(const ExprPtr& expr) const;

 private:
  const Database* db_;
};

}  // namespace bryql

#endif  // BRYQL_ALGEBRA_COST_MODEL_H_
