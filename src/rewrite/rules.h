#ifndef BRYQL_REWRITE_RULES_H_
#define BRYQL_REWRITE_RULES_H_

#include <string>
#include <vector>

namespace bryql {

/// The rewriting rules of the canonical form (§2 of the paper), plus four
/// auxiliary desugaring rules the paper performs implicitly ("in other
/// contexts an expression F1 ⇒ F2 is supposed to be written as ¬F1 ∨ F2").
///
/// Rules 1-3 are named in the paper but their statements fall in a figure
/// missing from the available text; the surrounding prose ("classical
/// rewriting rules" for nested negations that "do not transform negated
/// quantifications") fixes them as double negation elimination and the two
/// De Morgan laws — see DESIGN.md.
///
/// The paper states Rules 8/9 and 10/11 and 12/13 as left/right mirror
/// pairs over binary connectives; on our flattened n-ary And/Or nodes each
/// pair collapses into one rule, and the paper's Rule 9 for θ=∨ coincides
/// with Rule 14.
enum class RuleId {
  kDoubleNegation = 1,       // Rule 1: ¬¬F → F
  kDeMorganAnd = 2,          // Rule 2: ¬(F1 ∧ F2) → ¬F1 ∨ ¬F2
  kDeMorganOr = 3,           // Rule 3: ¬(F1 ∨ F2) → ¬F1 ∧ ¬F2
  kForallImplication = 4,    // Rule 4: ∀x̄ R ⇒ F → ¬(∃x̄ R ∧ ¬F)
  kForallNegation = 5,       // Rule 5: ∀x̄ ¬R → ¬(∃x̄ R)
  kDropQuantifier = 6,       // Rule 6: ∃x̄ F → F, no xi free in F
  kDropVariables = 7,        // Rule 7: ∃x̄ F → ∃(x̄ ∩ free(F)) F
  kMiniscopeConjunction = 8,  // Rules 8/9 (θ=∧): move xi-free conjuncts out
  kDistributeFilter = 10,    // Rules 10/11: distribute over a disjunction
                             // containing an atom free of x̄ and of the
                             // variables governed by x̄ (condition †)
  kDistributeProducer = 12,  // Rules 12/13: distribute a non-filter
                             // (producer) disjunction inside a range
  kSplitDisjunction = 14,    // Rule 14 (and Rules 8/9 for θ=∨):
                             // ∃x̄ (R1 ∨ R2) → (∃.. R1) ∨ (∃.. R2)

  // Auxiliary desugaring (implicit in the paper's conventions):
  kForallGeneric = 15,       // ∀x̄ F → ¬(∃x̄ ¬F) for other body shapes
  kImpliesToOr = 16,         // F1 ⇒ F2 → ¬F1 ∨ F2 outside ∀ ranges
  kIffExpand = 17,           // F1 ⇔ F2 → (¬F1 ∨ F2) ∧ (¬F2 ∨ F1)
  kNegatedComparison = 18,   // ¬(t1 op t2) → t1 op' t2
};

/// Human-readable rule name, e.g. "R4:forall-implication".
const char* RuleName(RuleId rule);

/// A concrete redex: `rule` applies at the node reached from the root by
/// following child indices `path`.
struct RuleApplication {
  RuleId rule;
  std::vector<int> path;

  std::string ToString() const;
};

}  // namespace bryql

#endif  // BRYQL_REWRITE_RULES_H_
