#ifndef BRYQL_REWRITE_DOMAIN_CLOSURE_H_
#define BRYQL_REWRITE_DOMAIN_CLOSURE_H_

#include <set>
#include <string>

#include "calculus/formula.h"
#include "common/result.h"

namespace bryql {

/// Makes an arbitrary (canonical-form) query evaluable under the Domain
/// Closure Assumption (§2.1): wherever a quantified or target variable has
/// no range, a `dom(v)` range atom is inserted — "a query ¬p(x1,...,xn) is
/// in consequence equivalent to dom(x1) ∧ ... ∧ dom(xn) ∧ ¬p(x1,...,xn)".
/// The Database resolves the relation name `dom` to the active domain.
///
/// Only variables that actually lack a range get a dom atom; queries that
/// are already restricted come back unchanged. The input should be in
/// canonical form (no ∀/⇒/⇔); other shapes are left untouched and will
/// still be rejected downstream.
Result<FormulaPtr> ApplyDomainClosure(const FormulaPtr& formula,
                                      const std::set<std::string>& targets);

}  // namespace bryql

#endif  // BRYQL_REWRITE_DOMAIN_CLOSURE_H_
