#ifndef BRYQL_REWRITE_REWRITER_H_
#define BRYQL_REWRITE_REWRITER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "calculus/formula.h"
#include "calculus/parser.h"
#include "common/governor.h"
#include "common/result.h"
#include "rewrite/rules.h"

namespace bryql {

/// Knobs for normalization. The defaults produce the paper's canonical
/// form; switching groups off yields the ablation baselines of DESIGN.md §4.
struct RewriteOptions {
  /// Rules 8/9 (and the miniscope side of 10/11): minimize scopes.
  bool miniscope = true;
  /// Rules 10/11: distribute quantifications over (†)-disjunctions.
  bool distribute_filter_disjunctions = true;
  /// Rules 12/14: distribute producer disjunctions and split quantifiers.
  bool distribute_producer_disjunctions = true;
  /// Safety valve; normalization of any sane query takes far fewer steps.
  /// The system is noetherian (Proposition 1), so hitting the cap means a
  /// rewriter bug — reported as kResourceExhausted, not a hang.
  size_t max_steps = 200000;
  /// Optional resource governor: when set, every rule application ticks
  /// it, so deadlines and cancellation interrupt long normalizations.
  /// Borrowed; must outlive the Normalize call.
  ResourceGovernor* governor = nullptr;
};

/// Outcome of a normalization: the canonical formula plus a full trace.
struct NormalizeResult {
  FormulaPtr formula;
  /// One entry per rule application, in application order.
  std::vector<RuleApplication> trace;
  /// Applications per rule, for reporting.
  std::map<RuleId, size_t> rule_counts;

  size_t steps() const { return trace.size(); }
};

/// Phase 1 of the paper: rewrites a query into canonical form with the
/// 14-rule system of §2. Deterministic: redexes are reduced in
/// leftmost-outermost order, so equal inputs give equal outputs; by the
/// Church-Rosser property (Proposition 2) any other order would converge to
/// the same formula, which tests/rewrite_property_test.cc exercises.
///
/// `outer` holds variables to treat as bound from outside — for an open
/// query, its target variables.
Result<NormalizeResult> Normalize(const FormulaPtr& formula,
                                  const std::set<std::string>& outer = {},
                                  const RewriteOptions& options = {});

/// Normalizes `query.formula` with the targets as outer variables.
Result<NormalizeResult> NormalizeQuery(const Query& query,
                                       const RewriteOptions& options = {});

/// Enumerates every redex of `formula`, in leftmost-outermost order. The
/// low-level API behind Normalize; exposed for the confluence and
/// termination property tests, which apply redexes in randomized orders.
std::vector<RuleApplication> FindApplications(
    const FormulaPtr& formula, const std::set<std::string>& outer = {},
    const RewriteOptions& options = {});

/// Applies one redex found by FindApplications to the same formula.
/// Returns kInternal if the application does not match (e.g. stale path).
Result<FormulaPtr> ApplyRule(const FormulaPtr& formula,
                             const RuleApplication& application,
                             const std::set<std::string>& outer = {});

}  // namespace bryql

#endif  // BRYQL_REWRITE_REWRITER_H_
