#include "rewrite/domain_closure.h"

#include "calculus/range_analysis.h"

namespace bryql {

namespace {

std::vector<FormulaPtr> Conjuncts(const FormulaPtr& f) {
  if (f->kind() == FormulaKind::kAnd) return f->children();
  return {f};
}

FormulaPtr DomAtom(const std::string& var) {
  return Formula::Atom("dom", {Term::Var(var)});
}

Result<FormulaPtr> Fix(const FormulaPtr& f,
                       const std::set<std::string>& outer);

/// Repairs one existential block: recursively fixes the conjuncts, then
/// prepends dom atoms for required variables until a safe order exists.
Result<FormulaPtr> FixBlock(std::vector<FormulaPtr> conjuncts,
                            const std::set<std::string>& required,
                            const std::set<std::string>& outer) {
  std::set<std::string> inner_outer = outer;
  inner_outer.insert(required.begin(), required.end());
  for (FormulaPtr& c : conjuncts) {
    BRYQL_ASSIGN_OR_RETURN(c, Fix(c, inner_outer));
  }
  if (!SplitProducersAndFilters(conjuncts, required, outer)) {
    // Insert dom ranges only for variables that cannot be ranged even
    // with every other required variable assumed bound.
    for (const std::string& v : required) {
      std::set<std::string> others = outer;
      for (const std::string& w : required) {
        if (w != v) others.insert(w);
      }
      if (!SplitProducersAndFilters(conjuncts, {v}, others)) {
        conjuncts.insert(conjuncts.begin(), DomAtom(v));
      }
    }
    // Interdependent leftovers: dom everything still unranged.
    if (!SplitProducersAndFilters(conjuncts, required, outer)) {
      std::vector<FormulaPtr> doms;
      for (const std::string& v : required) doms.push_back(DomAtom(v));
      doms.insert(doms.end(), conjuncts.begin(), conjuncts.end());
      conjuncts = std::move(doms);
    }
  }
  return Formula::And(std::move(conjuncts));
}

Result<FormulaPtr> Fix(const FormulaPtr& f,
                       const std::set<std::string>& outer) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare:
      return f;
    case FormulaKind::kNot: {
      BRYQL_ASSIGN_OR_RETURN(FormulaPtr child, Fix(f->child(), outer));
      if (child.get() == f->child().get()) return f;
      return Formula::Not(std::move(child));
    }
    case FormulaKind::kAnd:
      return FixBlock(f->children(), {}, outer);
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children().size());
      for (const FormulaPtr& c : f->children()) {
        BRYQL_ASSIGN_OR_RETURN(FormulaPtr nc, Fix(c, outer));
        children.push_back(std::move(nc));
      }
      return Formula::Or(std::move(children));
    }
    case FormulaKind::kExists: {
      std::set<std::string> required(f->vars().begin(), f->vars().end());
      BRYQL_ASSIGN_OR_RETURN(
          FormulaPtr body,
          FixBlock(Conjuncts(f->child()), required, outer));
      return Formula::Exists(f->vars(), std::move(body));
    }
    case FormulaKind::kForall:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      // Not canonical; leave for downstream rejection.
      return f;
  }
  return f;
}

}  // namespace

Result<FormulaPtr> ApplyDomainClosure(const FormulaPtr& formula,
                                      const std::set<std::string>& targets) {
  if (!targets.empty()) {
    // The top level of an open query is a block that must range the
    // targets; top-level disjunctions repair each branch.
    if (formula->kind() == FormulaKind::kOr) {
      std::vector<FormulaPtr> branches;
      for (const FormulaPtr& c : formula->children()) {
        BRYQL_ASSIGN_OR_RETURN(FormulaPtr b,
                               FixBlock(Conjuncts(c), targets, {}));
        branches.push_back(std::move(b));
      }
      return Formula::Or(std::move(branches));
    }
    return FixBlock(Conjuncts(formula), targets, {});
  }
  return Fix(formula, {});
}

}  // namespace bryql
