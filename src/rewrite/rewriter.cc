#include "rewrite/rewriter.h"

#include <algorithm>
#include <cassert>

#include "calculus/analysis.h"
#include "calculus/range_analysis.h"
#include "common/failpoints.h"

namespace bryql {

const char* RuleName(RuleId rule) {
  switch (rule) {
    case RuleId::kDoubleNegation:
      return "R1:double-negation";
    case RuleId::kDeMorganAnd:
      return "R2:de-morgan-and";
    case RuleId::kDeMorganOr:
      return "R3:de-morgan-or";
    case RuleId::kForallImplication:
      return "R4:forall-implication";
    case RuleId::kForallNegation:
      return "R5:forall-negation";
    case RuleId::kDropQuantifier:
      return "R6:drop-quantifier";
    case RuleId::kDropVariables:
      return "R7:drop-variables";
    case RuleId::kMiniscopeConjunction:
      return "R8/9:miniscope";
    case RuleId::kDistributeFilter:
      return "R10/11:distribute-filter-disjunction";
    case RuleId::kDistributeProducer:
      return "R12/13:distribute-producer-disjunction";
    case RuleId::kSplitDisjunction:
      return "R14:split-quantified-disjunction";
    case RuleId::kForallGeneric:
      return "A15:forall-generic";
    case RuleId::kImpliesToOr:
      return "A16:implies-to-or";
    case RuleId::kIffExpand:
      return "A17:iff-expand";
    case RuleId::kNegatedComparison:
      return "A18:negated-comparison";
  }
  return "unknown-rule";
}

std::string RuleApplication::ToString() const {
  std::string out = RuleName(rule);
  out += " at [";
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ".";
    out += std::to_string(path[i]);
  }
  out += "]";
  return out;
}

namespace {

bool IntersectsVars(const std::set<std::string>& vars, const FormulaPtr& f) {
  for (const std::string& v : f->FreeVariableSet()) {
    if (vars.count(v)) return true;
  }
  return false;
}

/// Rebuilds ∃vars (And(parts minus index) ∧ replacement-disjunct d).
FormulaPtr RebuildConjunctionWith(const std::vector<FormulaPtr>& parts,
                                  size_t replaced_index, FormulaPtr d) {
  std::vector<FormulaPtr> conjuncts;
  conjuncts.reserve(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    conjuncts.push_back(i == replaced_index ? d : parts[i]);
  }
  return Formula::And(std::move(conjuncts));
}

/// Applies `rule` at `node` (whose enclosing quantifiers bind `outer`).
/// Returns nullptr when the rule does not match there. `is_range_root` is
/// true for the root of an open query, where Rules 12/13 also apply.
FormulaPtr TryRule(RuleId rule, const FormulaPtr& node,
                   const std::set<std::string>& outer, bool is_range_root,
                   bool under_forall, const RewriteOptions& options) {
  switch (rule) {
    case RuleId::kDoubleNegation: {
      if (node->kind() != FormulaKind::kNot) return nullptr;
      const FormulaPtr& inner = node->child();
      if (inner->kind() != FormulaKind::kNot) return nullptr;
      return inner->child();
    }
    case RuleId::kDeMorganAnd:
    case RuleId::kDeMorganOr: {
      if (node->kind() != FormulaKind::kNot) return nullptr;
      const FormulaPtr& inner = node->child();
      FormulaKind want = rule == RuleId::kDeMorganAnd ? FormulaKind::kAnd
                                                      : FormulaKind::kOr;
      if (inner->kind() != want) return nullptr;
      std::vector<FormulaPtr> negated;
      negated.reserve(inner->children().size());
      for (const FormulaPtr& c : inner->children()) {
        negated.push_back(Formula::Not(c));
      }
      return want == FormulaKind::kAnd ? Formula::Or(std::move(negated))
                                       : Formula::And(std::move(negated));
    }
    case RuleId::kForallImplication: {
      if (node->kind() != FormulaKind::kForall) return nullptr;
      const FormulaPtr& body = node->child();
      if (body->kind() != FormulaKind::kImplies) return nullptr;
      return Formula::Not(Formula::Exists(
          node->vars(),
          Formula::And(body->children()[0],
                       Formula::Not(body->children()[1]))));
    }
    case RuleId::kForallNegation: {
      if (node->kind() != FormulaKind::kForall) return nullptr;
      const FormulaPtr& body = node->child();
      if (body->kind() != FormulaKind::kNot) return nullptr;
      return Formula::Not(Formula::Exists(node->vars(), body->child()));
    }
    case RuleId::kForallGeneric: {
      if (node->kind() != FormulaKind::kForall) return nullptr;
      const FormulaPtr& body = node->child();
      // Rules 4/5 take precedence on their shapes.
      if (body->kind() == FormulaKind::kImplies ||
          body->kind() == FormulaKind::kNot) {
        return nullptr;
      }
      return Formula::Not(
          Formula::Exists(node->vars(), Formula::Not(body)));
    }
    case RuleId::kDropQuantifier: {
      if (!node->is_quantifier()) return nullptr;
      std::set<std::string> free = node->child()->FreeVariableSet();
      for (const std::string& v : node->vars()) {
        if (free.count(v)) return nullptr;
      }
      return node->child();
    }
    case RuleId::kDropVariables: {
      if (!node->is_quantifier()) return nullptr;
      std::set<std::string> free = node->child()->FreeVariableSet();
      std::vector<std::string> kept;
      for (const std::string& v : node->vars()) {
        if (free.count(v)) kept.push_back(v);
      }
      if (kept.empty() || kept.size() == node->vars().size()) return nullptr;
      return node->kind() == FormulaKind::kExists
                 ? Formula::Exists(std::move(kept), node->child())
                 : Formula::Forall(std::move(kept), node->child());
    }
    case RuleId::kMiniscopeConjunction: {
      if (!options.miniscope) return nullptr;
      if (node->kind() != FormulaKind::kExists) return nullptr;
      const FormulaPtr& body = node->child();
      if (body->kind() != FormulaKind::kAnd) return nullptr;
      std::set<std::string> vars(node->vars().begin(), node->vars().end());
      std::vector<FormulaPtr> stay, escape;
      for (const FormulaPtr& part : body->children()) {
        (IntersectsVars(vars, part) ? stay : escape).push_back(part);
      }
      if (escape.empty() || stay.empty()) return nullptr;
      std::vector<FormulaPtr> conjuncts = std::move(escape);
      conjuncts.push_back(
          Formula::Exists(node->vars(), Formula::And(std::move(stay))));
      return Formula::And(std::move(conjuncts));
    }
    case RuleId::kDistributeFilter: {
      if (!options.distribute_filter_disjunctions) return nullptr;
      if (node->kind() != FormulaKind::kExists) return nullptr;
      const FormulaPtr& body = node->child();
      if (body->kind() != FormulaKind::kAnd) return nullptr;
      std::set<std::string> vars(node->vars().begin(), node->vars().end());
      // Rules 8/9 take precedence: while some conjunct is entirely free of
      // the quantified variables it must move out *before* any
      // distribution copies it into every branch — otherwise the shared
      // factor can never be re-factored and the normal form would depend
      // on the rule order.
      for (const FormulaPtr& part : body->children()) {
        if (!IntersectsVars(vars, part)) return nullptr;
      }
      // Condition (†) blocks atoms mentioning the quantified variables or
      // the variables they govern; governs is computed over the full body.
      std::set<std::string> blocked = vars;
      std::set<std::string> governed = GovernedVariables(node->vars(), body);
      blocked.insert(governed.begin(), governed.end());
      const std::vector<FormulaPtr>& parts = body->children();
      for (size_t i = 0; i < parts.size(); ++i) {
        const FormulaPtr& d = parts[i];
        if (d->kind() != FormulaKind::kOr) continue;
        // An entirely xi-free disjunction moves out whole via Rules 8/9;
        // distributing it as well would break confluence, so skip it here.
        if (!IntersectsVars(vars, d)) continue;
        // Condition (†): split off each disjunct containing an atom clear
        // of `blocked`; keep the others grouped. (The paper's binary rules
        // preserve sub-disjunction grouping by construction; splitting
        // everything would make the normal form depend on how flattened
        // the ∨ was when the rule fired.)
        std::vector<FormulaPtr> escapable, grouped;
        for (const FormulaPtr& disjunct : d->children()) {
          (HasAtomClearOf(disjunct, blocked) ? escapable : grouped)
              .push_back(disjunct);
        }
        if (escapable.empty()) continue;
        std::vector<FormulaPtr> split;
        for (const FormulaPtr& disjunct : escapable) {
          split.push_back(Formula::Exists(
              node->vars(), RebuildConjunctionWith(parts, i, disjunct)));
        }
        if (!grouped.empty()) {
          split.push_back(Formula::Exists(
              node->vars(),
              RebuildConjunctionWith(parts, i, Formula::Or(grouped))));
        }
        return Formula::Or(std::move(split));
      }
      return nullptr;
    }
    case RuleId::kDistributeProducer: {
      if (!options.distribute_producer_disjunctions) return nullptr;
      // Applies at an ∃ node, or at the root conjunction of an open query.
      const FormulaPtr* body_ptr = nullptr;
      std::set<std::string> local_outer = outer;
      if (node->kind() == FormulaKind::kExists) {
        body_ptr = &node->child();
      } else if (is_range_root && node->kind() == FormulaKind::kAnd) {
        body_ptr = &node;
      } else {
        return nullptr;
      }
      const FormulaPtr& body = *body_ptr;
      if (body->kind() != FormulaKind::kAnd) return nullptr;
      const std::vector<FormulaPtr>& parts = body->children();
      // Choose the producer/filter assignment of the block (Definition 5):
      // conjuncts placed as producers form the range; the rest are
      // filters. A disjunction *used as a producer* distributes (Q2 → Q3
      // in §2.3); disjunctive filters are kept. When the block is
      // ambiguous ("both arguments may be considered as producers"), the
      // split prefers writing order, matching the paper's examples.
      std::set<std::string> required;
      if (node->kind() == FormulaKind::kExists) {
        required.insert(node->vars().begin(), node->vars().end());
      }
      auto split = SplitProducersAndFilters(parts, required, local_outer);
      if (!split) return nullptr;  // unsafe block; reported at translation
      const Formula* chosen = nullptr;
      for (size_t i = 0; i < split->ordered.size(); ++i) {
        if (split->is_producer[i] &&
            split->ordered[i]->kind() == FormulaKind::kOr) {
          chosen = split->ordered[i].get();
          break;
        }
      }
      if (chosen == nullptr) return nullptr;
      size_t index = parts.size();
      for (size_t i = 0; i < parts.size(); ++i) {
        if (parts[i].get() == chosen) {
          index = i;
          break;
        }
      }
      if (index == parts.size()) return nullptr;
      std::vector<FormulaPtr> branches;
      branches.reserve(parts[index]->children().size());
      for (const FormulaPtr& disjunct : parts[index]->children()) {
        branches.push_back(RebuildConjunctionWith(parts, index, disjunct));
      }
      FormulaPtr distributed = Formula::Or(std::move(branches));
      if (node->kind() == FormulaKind::kExists) {
        return Formula::Exists(node->vars(), std::move(distributed));
      }
      return distributed;
    }
    case RuleId::kSplitDisjunction: {
      if (!options.distribute_producer_disjunctions) return nullptr;
      if (node->kind() != FormulaKind::kExists) return nullptr;
      const FormulaPtr& body = node->child();
      if (body->kind() != FormulaKind::kOr) return nullptr;
      std::vector<FormulaPtr> branches;
      branches.reserve(body->children().size());
      for (const FormulaPtr& disjunct : body->children()) {
        std::set<std::string> free = disjunct->FreeVariableSet();
        std::vector<std::string> kept;
        for (const std::string& v : node->vars()) {
          if (free.count(v)) kept.push_back(v);
        }
        branches.push_back(kept.empty()
                               ? disjunct
                               : Formula::Exists(std::move(kept), disjunct));
      }
      return Formula::Or(std::move(branches));
    }
    case RuleId::kImpliesToOr: {
      if (node->kind() != FormulaKind::kImplies) return nullptr;
      // "The connective => will be used only for expressing ranges": an
      // implication directly under a ∀ is that quantifier's range form
      // and belongs to Rule 4.
      if (under_forall) return nullptr;
      return Formula::Or(Formula::Not(node->children()[0]),
                         node->children()[1]);
    }
    case RuleId::kIffExpand: {
      if (node->kind() != FormulaKind::kIff) return nullptr;
      const FormulaPtr& a = node->children()[0];
      const FormulaPtr& b = node->children()[1];
      return Formula::And(Formula::Or(Formula::Not(a), b),
                          Formula::Or(Formula::Not(b), a));
    }
    case RuleId::kNegatedComparison: {
      if (node->kind() != FormulaKind::kNot) return nullptr;
      const FormulaPtr& inner = node->child();
      if (inner->kind() != FormulaKind::kCompare) return nullptr;
      return Formula::Compare(NegateCompareOp(inner->compare_op()),
                              inner->lhs(), inner->rhs());
    }
  }
  return nullptr;
}

constexpr RuleId kAllRules[] = {
    RuleId::kDoubleNegation,     RuleId::kDeMorganAnd,
    RuleId::kDeMorganOr,         RuleId::kForallImplication,
    RuleId::kForallNegation,     RuleId::kDropQuantifier,
    RuleId::kDropVariables,      RuleId::kMiniscopeConjunction,
    RuleId::kDistributeFilter,   RuleId::kDistributeProducer,
    RuleId::kSplitDisjunction,   RuleId::kForallGeneric,
    RuleId::kImpliesToOr,        RuleId::kIffExpand,
    RuleId::kNegatedComparison,
};

/// Enumerates redexes bottom-up. Returns true when the subtree rooted at
/// `node` contains at least one application.
///
/// The distribution rules (10/11 and 12/13) are *gated*: they fire only
/// when no other redex exists below the node. Distribution copies
/// conjuncts and regroups disjuncts, so firing it while a disjunct is
/// still being desugared (⇒/⇔ elimination, ∀ reduction, De Morgan,
/// Rule 14 splits — all of which flatten into the enclosing ∨) would make
/// the final grouping depend on the reduction order, breaking the
/// Church-Rosser property. The gate is a function of the formula alone,
/// so it is order-independent; and since the ungated rules are noetherian,
/// a gated redex always fires eventually.
bool FindApplicationsImpl(const FormulaPtr& node,
                          const std::set<std::string>& outer,
                          bool is_range_root, bool under_forall,
                          const RewriteOptions& options,
                          std::vector<int>* path,
                          std::vector<RuleApplication>* out) {
  // Recurse first. Quantifiers extend the outer-bound set for their
  // bodies.
  std::set<std::string> child_outer = outer;
  if (node->is_quantifier()) {
    child_outer.insert(node->vars().begin(), node->vars().end());
  }
  bool below = false;
  for (size_t i = 0; i < node->children().size(); ++i) {
    path->push_back(static_cast<int>(i));
    below |= FindApplicationsImpl(node->children()[i], child_outer,
                                  /*is_range_root=*/false,
                                  node->kind() == FormulaKind::kForall,
                                  options, path, out);
    path->pop_back();
  }
  bool here = false;
  for (RuleId rule : kAllRules) {
    bool gated = rule == RuleId::kDistributeFilter ||
                 rule == RuleId::kDistributeProducer;
    if (gated && below) continue;
    if (TryRule(rule, node, outer, is_range_root, under_forall, options) !=
        nullptr) {
      out->push_back({rule, *path});
      here = true;
    }
  }
  return below || here;
}

Result<FormulaPtr> ApplyAtPath(const FormulaPtr& node,
                               const RuleApplication& app, size_t depth,
                               const std::set<std::string>& outer,
                               bool is_range_root, bool under_forall,
                               const RewriteOptions& options) {
  if (depth == app.path.size()) {
    FormulaPtr result = TryRule(app.rule, node, outer, is_range_root,
                                under_forall, options);
    if (result == nullptr) {
      return Status::Internal("rule " + app.ToString() +
                              " does not match at its path");
    }
    return result;
  }
  size_t index = static_cast<size_t>(app.path[depth]);
  if (index >= node->children().size()) {
    return Status::Internal("stale path in " + app.ToString());
  }
  std::set<std::string> child_outer = outer;
  if (node->is_quantifier()) {
    child_outer.insert(node->vars().begin(), node->vars().end());
  }
  BRYQL_ASSIGN_OR_RETURN(
      FormulaPtr new_child,
      ApplyAtPath(node->children()[index], app, depth + 1, child_outer,
                  /*is_range_root=*/false,
                  node->kind() == FormulaKind::kForall, options));
  std::vector<FormulaPtr> children = node->children();
  children[index] = std::move(new_child);
  switch (node->kind()) {
    case FormulaKind::kNot:
      return Formula::Not(children[0]);
    case FormulaKind::kAnd:
      return Formula::And(std::move(children));
    case FormulaKind::kOr:
      return Formula::Or(std::move(children));
    case FormulaKind::kImplies:
      return Formula::Implies(children[0], children[1]);
    case FormulaKind::kIff:
      return Formula::Iff(children[0], children[1]);
    case FormulaKind::kExists:
      return Formula::Exists(node->vars(), children[0]);
    case FormulaKind::kForall:
      return Formula::Forall(node->vars(), children[0]);
    default:
      return Status::Internal("path descends into a leaf");
  }
}

}  // namespace

std::vector<RuleApplication> FindApplications(const FormulaPtr& formula,
                                              const std::set<std::string>& outer,
                                              const RewriteOptions& options) {
  std::vector<RuleApplication> out;
  std::vector<int> path;
  FindApplicationsImpl(formula, outer, /*is_range_root=*/true,
                       /*under_forall=*/false, options, &path, &out);
  return out;
}

Result<FormulaPtr> ApplyRule(const FormulaPtr& formula,
                             const RuleApplication& application,
                             const std::set<std::string>& outer) {
  return ApplyAtPath(formula, application, 0, outer, /*is_range_root=*/true,
                     /*under_forall=*/false, RewriteOptions{});
}

Result<NormalizeResult> Normalize(const FormulaPtr& formula,
                                  const std::set<std::string>& outer,
                                  const RewriteOptions& options) {
  NormalizeResult result;
  result.formula = formula;
  while (options.max_steps == 0 || result.trace.size() < options.max_steps) {
    BRYQL_FAILPOINT("rewrite.step");
    if (options.governor != nullptr && !options.governor->Tick()) {
      return options.governor->status();
    }
    std::vector<RuleApplication> apps =
        FindApplications(result.formula, outer, options);
    if (apps.empty()) return result;
    const RuleApplication& app = apps.front();
    BRYQL_ASSIGN_OR_RETURN(FormulaPtr next,
                           ApplyAtPath(result.formula, app, 0, outer,
                                       /*is_range_root=*/true,
                                       /*under_forall=*/false, options));
    result.formula = std::move(next);
    result.trace.push_back(app);
    ++result.rule_counts[app.rule];
  }
  return Status::ResourceExhausted(
      "normalization exceeded max_rewrite_steps (" +
      std::to_string(options.max_steps) +
      ") — non-termination would contradict Proposition 1");
}

Result<NormalizeResult> NormalizeQuery(const Query& query,
                                       const RewriteOptions& options) {
  // Target variables are *produced by* the query, not bound outside it, so
  // they are not "outer" — the root block must range them itself.
  return Normalize(query.formula, {}, options);
}

}  // namespace bryql
