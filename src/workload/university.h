#ifndef BRYQL_WORKLOAD_UNIVERSITY_H_
#define BRYQL_WORKLOAD_UNIVERSITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"

namespace bryql {

/// Scale and selectivity knobs for the synthetic university database —
/// the domain every example in the paper is phrased in.
struct UniversityConfig {
  /// Entity counts.
  size_t students = 200;
  size_t professors = 40;
  size_t lectures = 60;
  size_t departments = 8;
  size_t languages = 6;
  size_t skills = 10;

  /// Behavioural knobs.
  /// Average lectures attended per student.
  double attends_per_student = 6.0;
  /// Probability that a student attends *every* lecture of the "db"
  /// subject (the universal-quantification witnesses).
  double completionist_fraction = 0.05;
  /// Average languages spoken per person.
  double languages_per_person = 1.5;
  /// Average skills per person.
  double skills_per_person = 1.2;
  /// Fraction of students making a PhD.
  double phd_fraction = 0.3;

  uint64_t seed = 42;
};

/// Generates the university database with relations:
///   student(name), professor(name), lecture(id, subject),
///   attends(student, lecture), enrolled(student, dept),
///   member(person, dept), makes(student, degree),
///   speaks(person, language), skill(person, topic),
///   cs-lecture(id)  — lectures of the "cs" subject, as its own relation
///   department(name), language(name)
///
/// Subjects cycle through {"db", "ai", "os", ...}; departments through
/// {"cs", "math", ...}; languages include "french" and "german" so the
/// paper's queries run verbatim.
Database MakeUniversity(const UniversityConfig& config);

/// A named query of the benchmark suite.
struct NamedQuery {
  std::string name;
  std::string text;
  /// Where in the paper the query (or its pattern) comes from.
  std::string source;
};

/// The paper-derived query suite: every example query of §1-§3 plus
/// generalizations, all runnable against MakeUniversity databases.
std::vector<NamedQuery> PaperQuerySuite();

}  // namespace bryql

#endif  // BRYQL_WORKLOAD_UNIVERSITY_H_
