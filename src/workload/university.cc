#include "workload/university.h"

#include <random>

namespace bryql {

namespace {

const char* kSubjects[] = {"db", "ai", "os", "pl", "ir", "hw"};
const char* kDepartments[] = {"cs",      "math",    "physics", "biology",
                              "history", "letters", "law",     "medicine"};
const char* kLanguages[] = {"french", "german", "english",
                            "latin",  "italian", "spanish"};
const char* kSkills[] = {"db", "ai", "math", "stats", "writing",
                         "proofs", "hardware", "networks", "graphics",
                         "logic"};

std::string StudentName(size_t i) { return "s" + std::to_string(i); }
std::string ProfName(size_t i) { return "p" + std::to_string(i); }
std::string LectureName(size_t i) { return "l" + std::to_string(i); }

}  // namespace

Database MakeUniversity(const UniversityConfig& config) {
  std::mt19937_64 rng(config.seed);
  auto pick = [&](size_t n) { return rng() % n; };
  auto coin = [&](double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng) < p;
  };

  Database db;
  Relation student(1), professor(1), lecture(2), cs_lecture(1), attends(2),
      enrolled(2), member(2), makes(2), speaks(2), skill(2), department(1),
      language(1);

  size_t n_depts = std::min<size_t>(config.departments, 8);
  size_t n_langs = std::min<size_t>(config.languages, 6);

  for (size_t d = 0; d < n_depts; ++d) {
    department.Insert(Tuple({Value::String(kDepartments[d])}));
  }
  for (size_t l = 0; l < n_langs; ++l) {
    language.Insert(Tuple({Value::String(kLanguages[l])}));
  }

  std::vector<size_t> db_lectures;  // indices of "db" lectures
  for (size_t i = 0; i < config.lectures; ++i) {
    const char* subject = kSubjects[i % 6];
    lecture.Insert(
        Tuple({Value::String(LectureName(i)), Value::String(subject)}));
    if (std::string(subject) == "db") db_lectures.push_back(i);
    // cs-lecture in the paper's Q1 (§2.2) stands for the lectures of one
    // department; we map it to the "db" subject lectures.
    if (std::string(subject) == "db") {
      cs_lecture.Insert(Tuple({Value::String(LectureName(i))}));
    }
  }

  for (size_t i = 0; i < config.students; ++i) {
    std::string name = StudentName(i);
    student.Insert(Tuple({Value::String(name)}));
    enrolled.Insert(Tuple({Value::String(name),
                           Value::String(kDepartments[pick(n_depts)])}));
    member.Insert(Tuple({Value::String(name),
                         Value::String(kDepartments[pick(n_depts)])}));
    if (coin(config.phd_fraction)) {
      makes.Insert(Tuple({Value::String(name), Value::String("phd")}));
    }
    // Lecture attendance.
    if (coin(config.completionist_fraction)) {
      for (size_t l : db_lectures) {
        attends.Insert(Tuple({Value::String(name),
                              Value::String(LectureName(l))}));
      }
    }
    double expected = config.attends_per_student;
    size_t count = static_cast<size_t>(expected);
    if (coin(expected - static_cast<double>(count))) ++count;
    for (size_t k = 0; k < count && config.lectures > 0; ++k) {
      attends.Insert(Tuple({Value::String(name),
                            Value::String(
                                LectureName(pick(config.lectures)))}));
    }
    // Languages and skills.
    for (size_t l = 0; l < n_langs; ++l) {
      if (coin(config.languages_per_person / static_cast<double>(n_langs))) {
        speaks.Insert(
            Tuple({Value::String(name), Value::String(kLanguages[l])}));
      }
    }
    for (size_t s = 0; s < 10; ++s) {
      if (coin(config.skills_per_person / 10.0)) {
        skill.Insert(Tuple({Value::String(name), Value::String(kSkills[s])}));
      }
    }
  }

  for (size_t i = 0; i < config.professors; ++i) {
    std::string name = ProfName(i);
    professor.Insert(Tuple({Value::String(name)}));
    member.Insert(Tuple({Value::String(name),
                         Value::String(kDepartments[pick(n_depts)])}));
    for (size_t l = 0; l < n_langs; ++l) {
      if (coin(config.languages_per_person / static_cast<double>(n_langs))) {
        speaks.Insert(
            Tuple({Value::String(name), Value::String(kLanguages[l])}));
      }
    }
    for (size_t s = 0; s < 10; ++s) {
      if (coin(config.skills_per_person / 10.0)) {
        skill.Insert(Tuple({Value::String(name), Value::String(kSkills[s])}));
      }
    }
  }

  db.Put("student", std::move(student));
  db.Put("professor", std::move(professor));
  db.Put("lecture", std::move(lecture));
  db.Put("cs-lecture", std::move(cs_lecture));
  db.Put("attends", std::move(attends));
  db.Put("enrolled", std::move(enrolled));
  db.Put("member", std::move(member));
  db.Put("makes", std::move(makes));
  db.Put("speaks", std::move(speaks));
  db.Put("skill", std::move(skill));
  db.Put("department", std::move(department));
  db.Put("language", std::move(language));
  return db;
}

std::vector<NamedQuery> PaperQuerySuite() {
  return {
      // §1 running example.
      {"sec1-running",
       "(exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y)))"
       " & (forall z1: student(z1) -> (exists z2: attends(z1, z2)))",
       "§1 governing example"},
      // §2.2 Q1 — miniscope motivation.
      {"sec22-q1",
       "exists x: student(x) & "
       "(forall y: cs-lecture(y) -> attends(x, y) & ~enrolled(x, cs))",
       "§2.2 Q1"},
      // §2.3 Q1 — producers and filters.
      {"sec23-q1",
       "exists x: ((student(x) & makes(x, phd)) | professor(x)) & "
       "(speaks(x, french) | speaks(x, german))",
       "§2.3 Q1"},
      // §2.3 Q4 — disjunction kept inside the range.
      {"sec23-q4",
       "exists x: professor(x) & (member(x, cs) | skill(x, math)) & "
       "speaks(x, french)",
       "§2.3 Q4"},
      // §3.1 Q1/Q2 — complement-join, open forms.
      {"sec31-q1", "{ x | (exists z: member(x, z)) & ~skill(x, db) }",
       "§3.1 Q1"},
      {"sec31-q2", "{ x, z | member(x, z) & ~skill(x, db) }", "§3.1 Q2"},
      // §3.2 pipelined example.
      {"sec32-pipeline",
       "exists x y: enrolled(x, y) & y != cs & makes(x, phd) & "
       "(exists z: lecture(z, ai) & attends(x, z))",
       "§3.2 Q"},
      // §3.2 boolean combination of closed subqueries.
      {"sec32-boolean",
       "(exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y)))"
       " & ~(exists z1: student(z1) & ~(exists z2: attends(z1, z2)))",
       "§3.2 example"},
      // Open variants exercising every Proposition 4 pattern on the
      // university schema.
      {"open-attenders-all-db",
       "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }",
       "Prop. 4 case 5 pattern"},
      {"open-misses-some-db",
       "{ x | student(x) & (exists y: lecture(y, db) & ~attends(x, y)) }",
       "Prop. 4 case 2b pattern"},
      {"open-phd-or-prof-speakers",
       "{ x | ((student(x) & makes(x, phd)) | professor(x)) & "
       "(speaks(x, french) | speaks(x, german)) }",
       "§2.3 Q1 open"},
      {"open-negated-disjunct",
       "{ x | student(x) & (~enrolled(x, cs) | skill(x, db)) }",
       "§3.3 Q2 pattern"},
      {"open-three-way-filter",
       "{ x | student(x) & (speaks(x, french) | speaks(x, german) | "
       "skill(x, logic)) }",
       "Prop. 5, n = 3"},
      {"open-universal-language",
       "{ x | professor(x) & (forall y: language(y) -> speaks(x, y)) }",
       "§2.3 roman-language pattern"},
      {"open-mixed-quantifiers",
       "{ d | department(d) & (exists x: enrolled(x, d) & "
       "(forall y: cs-lecture(y) -> attends(x, y))) }",
       "nested ∃∀"},
      {"closed-every-phd-attends",
       "forall x: (student(x) & makes(x, phd)) -> "
       "(exists y: attends(x, y))",
       "∀ with conjunctive range"},
  };
}

}  // namespace bryql
