#ifndef BRYQL_TRANSLATE_CLASSICAL_TRANSLATOR_H_
#define BRYQL_TRANSLATE_CLASSICAL_TRANSLATOR_H_

#include "algebra/expr.h"
#include "calculus/parser.h"
#include "common/result.h"
#include "storage/database.h"
#include "translate/translator.h"

namespace bryql {

/// The conventional reduction-based translation the paper improves on
/// [COD 72, PAL 72, JS 82, CG 85]:
///
///   1. the query is put in prenex normal form (negations pushed through
///      quantifiers, quantifiers pulled to a prefix, renaming as needed);
///   2. the cartesian product of the *ranges of all variables* is built —
///      per [JS 82/CG 85], a variable's range is the union of projections
///      of its positive atoms, falling back to the active domain ("dom",
///      Domain Closure Assumption) when it has none;
///   3. the matrix, in disjunctive normal form, is applied to the product
///      (semi/anti-joins for atoms, selections for comparisons, a union
///      per disjunct);
///   4. the prefix is processed innermost-first: projections for ∃,
///      divisions by the variable's range for ∀.
///
/// This is the baseline whose initial cartesian product "usually retains
/// much more tuples than needed" and whose divisions eliminate them "too
/// late" [DAY 83] — the quantity benchmarks E4/E9 measure.
class ClassicalTranslator {
 public:
  /// `db` is used to validate arities and to materialize the active
  /// domain for range-less variables; it must outlive calls.
  explicit ClassicalTranslator(const Database* db) : db_(db) {}

  /// Translates a closed query: NonEmpty over the reduced expression.
  Result<ExprPtr> TranslateClosed(const FormulaPtr& formula) const;

  /// Translates an open query; columns follow `query.targets`.
  Result<TranslatedQuery> TranslateOpen(const Query& query) const;

 private:
  const Database* db_;
};

}  // namespace bryql

#endif  // BRYQL_TRANSLATE_CLASSICAL_TRANSLATOR_H_
