#include "translate/translator.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "algebra/cost_model.h"
#include "calculus/range_analysis.h"
#include "common/failpoints.h"

namespace bryql {

namespace {

/// A relation-in-progress: column i of `expr` holds variable `frame[i]`.
struct Block {
  ExprPtr expr;
  std::vector<std::string> frame;

  int ColOf(const std::string& var) const {
    for (size_t i = 0; i < frame.size(); ++i) {
      if (frame[i] == var) return static_cast<int>(i);
    }
    return -1;
  }
};

std::vector<FormulaPtr> Conjuncts(const FormulaPtr& f) {
  if (f->kind() == FormulaKind::kAnd) return f->children();
  return {f};
}

std::set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::set<std::string>(v.begin(), v.end());
}

/// Equi-join keys pairing equal variables of two frames.
std::vector<JoinKey> SharedKeys(const std::vector<std::string>& left,
                                const std::vector<std::string>& right) {
  std::vector<JoinKey> keys;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      if (left[i] == right[j]) {
        keys.push_back({i, j});
        break;
      }
    }
  }
  return keys;
}

class TranslatorImpl {
 public:
  TranslatorImpl(const Database* db, const TranslateOptions& options)
      : db_(db), options_(options) {}

  /// Translates a closed formula to an arity-0 boolean expression.
  Result<ExprPtr> Closed(const FormulaPtr& f) {
    switch (f->kind()) {
      case FormulaKind::kAnd: {
        std::vector<ExprPtr> parts;
        parts.reserve(f->children().size());
        for (const FormulaPtr& c : f->children()) {
          BRYQL_ASSIGN_OR_RETURN(ExprPtr e, Closed(c));
          parts.push_back(std::move(e));
        }
        return Expr::BoolAnd(std::move(parts));
      }
      case FormulaKind::kOr: {
        std::vector<ExprPtr> parts;
        parts.reserve(f->children().size());
        for (const FormulaPtr& c : f->children()) {
          BRYQL_ASSIGN_OR_RETURN(ExprPtr e, Closed(c));
          parts.push_back(std::move(e));
        }
        return Expr::BoolOr(std::move(parts));
      }
      case FormulaKind::kNot: {
        BRYQL_ASSIGN_OR_RETURN(ExprPtr e, Closed(f->child()));
        return Expr::BoolNot(std::move(e));
      }
      case FormulaKind::kExists: {
        // The §3.2 faithful translation: a non-emptiness test over the
        // block, evaluated with early termination.
        std::set<std::string> required(f->vars().begin(), f->vars().end());
        BRYQL_ASSIGN_OR_RETURN(
            Block block,
            TranslateBlock(Conjuncts(f->child()), required, std::nullopt));
        return Expr::NonEmpty(block.expr);
      }
      case FormulaKind::kAtom: {
        BRYQL_ASSIGN_OR_RETURN(Block source, AtomSource(f));
        return Expr::NonEmpty(source.expr);
      }
      case FormulaKind::kCompare: {
        if (!f->lhs().is_constant() || !f->rhs().is_constant()) {
          return Status::Unsupported("unbound comparison in closed query: " +
                                     f->ToString());
        }
        Relation boolean(0);
        if (CompareValues(f->compare_op(), f->lhs().constant(),
                          f->rhs().constant())) {
          boolean.Insert(Tuple{});
        }
        return Expr::NonEmpty(Expr::Literal(std::move(boolean)));
      }
      default:
        return Status::Unsupported(
            "non-canonical connective in closed query (normalize first): " +
            f->ToString());
    }
  }

  /// Translates an open branch over exactly `targets` (in order).
  Result<ExprPtr> OpenBranch(const FormulaPtr& f,
                             const std::vector<std::string>& targets) {
    std::set<std::string> free = f->FreeVariableSet();
    for (const std::string& t : targets) {
      if (!free.count(t)) {
        return Status::Unsupported("target variable '" + t +
                                   "' is not free in branch: " +
                                   f->ToString());
      }
    }
    BRYQL_ASSIGN_OR_RETURN(
        Block block, TranslateBlock(Conjuncts(f), ToSet(targets),
                                    std::nullopt));
    std::vector<size_t> cols;
    cols.reserve(targets.size());
    for (const std::string& t : targets) {
      int col = block.ColOf(t);
      if (col < 0) {
        return Status::Internal("target '" + t + "' missing from block");
      }
      cols.push_back(static_cast<size_t>(col));
    }
    return Expr::Project(block.expr, std::move(cols));
  }

 private:
  /// A Block scanning one atom: selections for constants and repeated
  /// variables, projected to one column per distinct variable.
  Result<Block> AtomSource(const FormulaPtr& atom) {
    BRYQL_ASSIGN_OR_RETURN(size_t arity, db_->ArityOf(atom->predicate()));
    if (arity != atom->terms().size()) {
      return Status::InvalidArgument(
          "atom '" + atom->predicate() + "' has " +
          std::to_string(atom->terms().size()) + " arguments but relation " +
          "has arity " + std::to_string(arity));
    }
    std::vector<PredicatePtr> conditions;
    std::vector<std::string> frame;
    std::vector<size_t> cols;
    for (size_t i = 0; i < atom->terms().size(); ++i) {
      const Term& t = atom->terms()[i];
      if (t.is_constant()) {
        conditions.push_back(
            Predicate::ColVal(CompareOp::kEq, i, t.constant()));
        continue;
      }
      int first = -1;
      for (size_t j = 0; j < frame.size(); ++j) {
        if (frame[j] == t.var()) {
          first = static_cast<int>(cols[j]);
          break;
        }
      }
      if (first >= 0) {
        conditions.push_back(Predicate::ColCol(
            CompareOp::kEq, static_cast<size_t>(first), i));
      } else {
        frame.push_back(t.var());
        cols.push_back(i);
      }
    }
    ExprPtr e = Expr::Scan(atom->predicate());
    if (!conditions.empty()) {
      e = Expr::Select(std::move(e), Predicate::And(std::move(conditions)));
    }
    if (cols.size() != arity) {
      e = Expr::Project(std::move(e), cols);
    }
    return Block{std::move(e), std::move(frame)};
  }

  /// Translates a producer standalone (no outer context).
  Result<Block> Producer(const FormulaPtr& f) {
    switch (f->kind()) {
      case FormulaKind::kAtom:
        return AtomSource(f);
      case FormulaKind::kAnd:
        return TranslateBlock(f->children(), f->FreeVariableSet(),
                              std::nullopt);
      case FormulaKind::kOr: {
        // Definition 1 case 3: every branch ranges the same variables.
        std::optional<Block> acc;
        for (const FormulaPtr& d : f->children()) {
          BRYQL_ASSIGN_OR_RETURN(Block branch, Producer(d));
          if (!acc) {
            acc = std::move(branch);
            continue;
          }
          BRYQL_ASSIGN_OR_RETURN(ExprPtr aligned,
                                 ProjectToFrame(branch, acc->frame));
          acc->expr = Expr::Union(acc->expr, std::move(aligned));
        }
        if (!acc) return Status::Internal("empty disjunction");
        return *acc;
      }
      case FormulaKind::kExists: {
        // Definition 1 case 5: a range with local projection.
        std::set<std::string> required(f->vars().begin(), f->vars().end());
        std::set<std::string> free = f->FreeVariableSet();
        required.insert(free.begin(), free.end());
        BRYQL_ASSIGN_OR_RETURN(
            Block block,
            TranslateBlock(Conjuncts(f->child()), required, std::nullopt));
        return ProjectToVars(block, free);
      }
      case FormulaKind::kCompare: {
        // x = c: a one-tuple relation.
        const Term& l = f->lhs();
        const Term& r = f->rhs();
        if (f->compare_op() == CompareOp::kEq && l.is_variable() &&
            r.is_constant()) {
          Relation rel(1);
          rel.Insert(Tuple({r.constant()}));
          return Block{Expr::Literal(std::move(rel)), {l.var()}};
        }
        if (f->compare_op() == CompareOp::kEq && r.is_variable() &&
            l.is_constant()) {
          Relation rel(1);
          rel.Insert(Tuple({l.constant()}));
          return Block{Expr::Literal(std::move(rel)), {r.var()}};
        }
        return Status::Unsupported("comparison is not a producer: " +
                                   f->ToString());
      }
      default:
        return Status::Unsupported("not a producer: " + f->ToString());
    }
  }

  /// Projects `block.expr` to the column order given by `frame` (every
  /// variable of `frame` must be in the block).
  Result<ExprPtr> ProjectToFrame(const Block& block,
                                 const std::vector<std::string>& frame) {
    std::vector<size_t> cols;
    cols.reserve(frame.size());
    for (const std::string& v : frame) {
      int col = block.ColOf(v);
      if (col < 0) {
        return Status::Unsupported("disjunctive range branches bind "
                                   "different variables ('" +
                                   v + "' missing)");
      }
      cols.push_back(static_cast<size_t>(col));
    }
    if (cols.size() == block.frame.size()) {
      bool identity = true;
      for (size_t i = 0; i < cols.size(); ++i) identity &= cols[i] == i;
      if (identity) return block.expr;
    }
    return Expr::Project(block.expr, std::move(cols));
  }

  /// Projects a block to the subset `vars` (keeping block order).
  Result<Block> ProjectToVars(const Block& block,
                              const std::set<std::string>& vars) {
    std::vector<std::string> frame;
    for (const std::string& v : block.frame) {
      if (vars.count(v)) frame.push_back(v);
    }
    BRYQL_ASSIGN_OR_RETURN(ExprPtr e, ProjectToFrame(block, frame));
    return Block{std::move(e), std::move(frame)};
  }

  /// The workhorse: translates a conjunction into a Block over the
  /// produced variables. With `ctx`, translation starts from the context
  /// block (correlated subqueries — Proposition 4 cases 2b/5) and the
  /// result's frame begins with ctx->frame.
  Result<Block> TranslateBlock(const std::vector<FormulaPtr>& conjuncts,
                               const std::set<std::string>& required,
                               std::optional<Block> ctx) {
    std::set<std::string> outer =
        ctx ? ToSet(ctx->frame) : std::set<std::string>{};
    auto split = SplitProducersAndFilters(conjuncts, required, outer);
    if (!split) {
      return Status::Unsupported(
          "no range found for the variables of: " +
          Formula::And(conjuncts)->ToString());
    }
    Block block = ctx ? std::move(*ctx)
                      : Block{nullptr, {}};
    for (size_t i = 0; i < split->ordered.size(); ++i) {
      const FormulaPtr& c = split->ordered[i];
      bool adds_vars = false;
      for (const std::string& v : c->FreeVariableSet()) {
        if (block.ColOf(v) < 0) adds_vars = true;
      }
      if (split->is_producer[i] && adds_vars) {
        BRYQL_RETURN_NOT_OK(ExtendWithProducer(&block, c));
      } else {
        BRYQL_RETURN_NOT_OK(ApplyFilter(&block, c));
      }
    }
    if (block.expr == nullptr) {
      // A block of only closed filters: the boolean unit.
      Relation unit(0);
      unit.Insert(Tuple{});
      block.expr = Expr::Literal(std::move(unit));
    }
    return block;
  }

  /// Joins producer `c` onto the block (or starts the block with it).
  Status ExtendWithProducer(Block* block, const FormulaPtr& c) {
    // Aliasing producers: x = y with y already in the frame.
    if (c->kind() == FormulaKind::kCompare) {
      const Term& l = c->lhs();
      const Term& r = c->rhs();
      bool l_new = l.is_variable() && block->ColOf(l.var()) < 0;
      bool r_new = r.is_variable() && block->ColOf(r.var()) < 0;
      if (c->compare_op() == CompareOp::kEq && (l_new != r_new)) {
        const Term& fresh = l_new ? l : r;
        const Term& known = l_new ? r : l;
        if (known.is_variable()) {
          // Append a duplicate of the known column under the new name.
          std::vector<size_t> cols(block->frame.size());
          for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
          cols.push_back(
              static_cast<size_t>(block->ColOf(known.var())));
          block->expr = Expr::Project(block->expr, std::move(cols));
          block->frame.push_back(fresh.var());
          return Status::Ok();
        }
      }
      // x = constant producers (possibly starting the block).
      BRYQL_ASSIGN_OR_RETURN(Block lit, Producer(c));
      MergeDisconnected(block, std::move(lit));
      return Status::Ok();
    }
    // A producer needing context variables beyond what it produces is
    // translated *into* the block (Proposition 4's correlated shapes).
    std::set<std::string> outer = ToSet(block->frame);
    auto produced = ProducedVariables(c, outer);
    bool standalone = produced.has_value();
    if (standalone) {
      for (const std::string& v : c->FreeVariableSet()) {
        if (!produced->count(v)) standalone = false;
      }
    }
    if (standalone) {
      BRYQL_ASSIGN_OR_RETURN(Block sub, Producer(c));
      if (block->expr == nullptr) {
        *block = std::move(sub);
        return Status::Ok();
      }
      std::vector<JoinKey> keys = SharedKeys(block->frame, sub.frame);
      ExprPtr joined = Expr::Join(block->expr, sub.expr, keys);
      // Keep block columns, then the new variables of the producer.
      std::vector<size_t> cols(block->frame.size());
      for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
      std::vector<std::string> frame = block->frame;
      for (size_t j = 0; j < sub.frame.size(); ++j) {
        if (block->ColOf(sub.frame[j]) < 0) {
          cols.push_back(block->frame.size() + j);
          frame.push_back(sub.frame[j]);
        }
      }
      block->expr = Expr::Project(std::move(joined), std::move(cols));
      block->frame = std::move(frame);
      return Status::Ok();
    }
    // Correlated producer: push the block down as context.
    switch (c->kind()) {
      case FormulaKind::kAnd: {
        BRYQL_ASSIGN_OR_RETURN(
            Block extended,
            TranslateBlock(c->children(), c->FreeVariableSet(),
                           std::move(*block)));
        *block = std::move(extended);
        return Status::Ok();
      }
      case FormulaKind::kExists: {
        size_t keep = block->frame.size();
        std::set<std::string> want = c->FreeVariableSet();
        BRYQL_ASSIGN_OR_RETURN(
            Block extended,
            TranslateBlock(Conjuncts(c->child()),
                           std::set<std::string>(c->vars().begin(),
                                                 c->vars().end()),
                           std::move(*block)));
        // Keep the context columns plus c's free variables; the
        // quantified variables project away.
        std::vector<size_t> cols;
        std::vector<std::string> frame;
        for (size_t i = 0; i < extended.frame.size(); ++i) {
          if (i < keep || want.count(extended.frame[i])) {
            cols.push_back(i);
            frame.push_back(extended.frame[i]);
          }
        }
        block->expr = Expr::Project(extended.expr, std::move(cols));
        block->frame = std::move(frame);
        return Status::Ok();
      }
      case FormulaKind::kOr: {
        // Correlated disjunctive producer: extend per branch, union.
        std::optional<Block> acc;
        for (const FormulaPtr& d : c->children()) {
          Block copy = *block;
          BRYQL_RETURN_NOT_OK(ExtendWithProducer(&copy, d));
          if (!acc) {
            acc = std::move(copy);
            continue;
          }
          BRYQL_ASSIGN_OR_RETURN(ExprPtr aligned,
                                 ProjectToFrame(copy, acc->frame));
          acc->expr = Expr::Union(acc->expr, std::move(aligned));
        }
        *block = std::move(*acc);
        return Status::Ok();
      }
      default:
        return Status::Unsupported("cannot translate producer: " +
                                   c->ToString());
    }
  }

  /// Cross-product merge for a producer sharing no variables.
  void MergeDisconnected(Block* block, Block other) {
    if (block->expr == nullptr) {
      *block = std::move(other);
      return;
    }
    block->expr = Expr::Product(block->expr, other.expr);
    block->frame.insert(block->frame.end(), other.frame.begin(),
                        other.frame.end());
  }

  /// Applies a filter to the block (frame unchanged).
  Status ApplyFilter(Block* block, const FormulaPtr& f) {
    if (block->expr == nullptr) {
      // Closed filters ahead of any producer guard the boolean unit.
      Relation unit(0);
      unit.Insert(Tuple{});
      block->expr = Expr::Literal(std::move(unit));
    }
    switch (f->kind()) {
      case FormulaKind::kCompare: {
        BRYQL_ASSIGN_OR_RETURN(PredicatePtr pred,
                               ComparePredicate(*block, f));
        block->expr = Expr::Select(block->expr, std::move(pred));
        return Status::Ok();
      }
      case FormulaKind::kAtom: {
        BRYQL_ASSIGN_OR_RETURN(Block sub, AtomSource(f));
        block->expr = Expr::SemiJoin(block->expr, sub.expr,
                                     SharedKeys(block->frame, sub.frame));
        return Status::Ok();
      }
      case FormulaKind::kAnd: {
        for (const FormulaPtr& c : f->children()) {
          BRYQL_RETURN_NOT_OK(ApplyFilter(block, c));
        }
        return Status::Ok();
      }
      case FormulaKind::kNot: {
        const FormulaPtr& inner = f->child();
        switch (inner->kind()) {
          case FormulaKind::kCompare: {
            FormulaPtr folded =
                Formula::Compare(NegateCompareOp(inner->compare_op()),
                                 inner->lhs(), inner->rhs());
            return ApplyFilter(block, folded);
          }
          case FormulaKind::kAtom: {
            // The complement-join (Definition 6): the negated conjunct
            // costs one anti-probe per block tuple, not a difference plus
            // a join (§3.1).
            BRYQL_ASSIGN_OR_RETURN(Block sub, AtomSource(inner));
            block->expr =
                Expr::AntiJoin(block->expr, sub.expr,
                               SharedKeys(block->frame, sub.frame));
            return Status::Ok();
          }
          case FormulaKind::kExists:
            return ApplyQuantifiedFilter(block, inner, /*negated=*/true);
          default:
            return Status::Unsupported(
                "non-canonical negation (normalize first): " +
                f->ToString());
        }
      }
      case FormulaKind::kExists:
        return ApplyQuantifiedFilter(block, f, /*negated=*/false);
      case FormulaKind::kOr:
        return ApplyDisjunctiveFilter(block, f);
      default:
        return Status::Unsupported("cannot apply filter: " + f->ToString());
    }
  }

  /// Builds a predicate over block columns from a comparison formula.
  Result<PredicatePtr> ComparePredicate(const Block& block,
                                        const FormulaPtr& f) {
    const Term& l = f->lhs();
    const Term& r = f->rhs();
    auto col_of = [&](const Term& t) -> int {
      return t.is_variable() ? block.ColOf(t.var()) : -1;
    };
    if (l.is_variable() && r.is_variable()) {
      int lc = col_of(l);
      int rc = col_of(r);
      if (lc < 0 || rc < 0) {
        return Status::Unsupported("unbound comparison: " + f->ToString());
      }
      return Predicate::ColCol(f->compare_op(), static_cast<size_t>(lc),
                               static_cast<size_t>(rc));
    }
    if (l.is_variable()) {
      int lc = col_of(l);
      if (lc < 0) {
        return Status::Unsupported("unbound comparison: " + f->ToString());
      }
      return Predicate::ColVal(f->compare_op(), static_cast<size_t>(lc),
                               r.constant());
    }
    if (r.is_variable()) {
      int rc = col_of(r);
      if (rc < 0) {
        return Status::Unsupported("unbound comparison: " + f->ToString());
      }
      // c op x  ≡  x op' c with the operator mirrored.
      CompareOp mirrored;
      switch (f->compare_op()) {
        case CompareOp::kLt:
          mirrored = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          mirrored = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          mirrored = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          mirrored = CompareOp::kLe;
          break;
        default:
          mirrored = f->compare_op();
      }
      return Predicate::ColVal(mirrored, static_cast<size_t>(rc),
                               l.constant());
    }
    // Ground comparison: fold to true/false.
    bool truth = CompareValues(f->compare_op(), l.constant(), r.constant());
    return truth ? Predicate::True()
                 : Predicate::Not(Predicate::True());
  }

  /// Applies an (optionally negated) existential subquery as a filter:
  /// Proposition 4. Uncorrelated subqueries become semi-joins (positive)
  /// or complement-joins (negated, cases 3/4); correlated ones push the
  /// block down as context (case 2b), with negated correlated subqueries
  /// (case 5 — universal conditions) using either the double
  /// complement-join or the division strategy.
  Status ApplyQuantifiedFilter(Block* block, const FormulaPtr& f,
                               bool negated) {
    std::vector<FormulaPtr> body = Conjuncts(f->child());
    std::set<std::string> zs(f->vars().begin(), f->vars().end());
    std::set<std::string> shared = f->FreeVariableSet();
    // Try the uncorrelated translation first: the subquery standalone
    // produces both its quantified and its free variables.
    std::set<std::string> standalone_required = zs;
    standalone_required.insert(shared.begin(), shared.end());
    if (SplitProducersAndFilters(body, standalone_required, {})) {
      BRYQL_ASSIGN_OR_RETURN(
          Block sub, TranslateBlock(body, standalone_required, std::nullopt));
      BRYQL_ASSIGN_OR_RETURN(Block projected, ProjectToVars(sub, shared));
      std::vector<JoinKey> keys = SharedKeys(block->frame, projected.frame);
      block->expr =
          negated ? Expr::AntiJoin(block->expr, projected.expr, keys)
                  : Expr::SemiJoin(block->expr, projected.expr, keys);
      return Status::Ok();
    }
    if (negated &&
        options_.universal != TranslateOptions::Universal::kComplementJoin) {
      Status division = TryDivision(block, f);
      if (division.ok()) return Status::Ok();
      if (division.code() != StatusCode::kUnsupported) return division;
      // else fall through to the complement-join rewrite.
    }
    // Correlated: extend the block through the subquery's producers and
    // filters, then project back to the block's columns — the witnesses.
    size_t keep = block->frame.size();
    Block context = *block;
    BRYQL_ASSIGN_OR_RETURN(Block extended,
                           TranslateBlock(body, zs, std::move(context)));
    std::vector<size_t> cols(keep);
    for (size_t i = 0; i < keep; ++i) cols[i] = i;
    ExprPtr witnesses = Expr::Project(extended.expr, std::move(cols));
    if (!negated) {
      // E ⋉ witnesses, with identical frames — the projection itself.
      block->expr = std::move(witnesses);
      return Status::Ok();
    }
    // E ⊼ witnesses over all columns: the second complement-join.
    std::vector<JoinKey> keys;
    keys.reserve(keep);
    for (size_t i = 0; i < keep; ++i) keys.push_back({i, i});
    block->expr = Expr::AntiJoin(block->expr, std::move(witnesses), keys);
    return Status::Ok();
  }

  /// The division-based case-5 translation: ¬∃z̄ (T ∧ ¬G) as a quotient.
  /// With T independent of the outer variables, this is the paper's
  /// literal division G ÷ π(T); when T mentions outer variables (the
  /// "group" variables), the exact per-group form uses GroupDivision.
  /// Either way a vacuous-truth guard re-admits block tuples whose
  /// divisor (group) is empty. Returns kUnsupported when the shape does
  /// not match; the caller then falls back to complement-joins.
  Status TryDivision(Block* block, const FormulaPtr& f) {
    std::vector<FormulaPtr> body = Conjuncts(f->child());
    std::set<std::string> zs(f->vars().begin(), f->vars().end());
    // Partition the body: range parts (producers over z̄ and possibly
    // outer variables) and exactly one negated atom G.
    std::vector<FormulaPtr> range_parts;
    FormulaPtr negated_atom;
    std::set<std::string> group_set;
    for (const FormulaPtr& c : body) {
      if (c->kind() == FormulaKind::kNot) {
        if (c->child()->kind() != FormulaKind::kAtom ||
            negated_atom != nullptr) {
          return Status::Unsupported("division shape mismatch");
        }
        negated_atom = c->child();
        continue;
      }
      for (const std::string& v : c->FreeVariableSet()) {
        if (zs.count(v)) continue;
        if (block->ColOf(v) < 0) {
          return Status::Unsupported("range mentions an unbound variable");
        }
        group_set.insert(v);
      }
      range_parts.push_back(c);
    }
    if (negated_atom == nullptr || range_parts.empty()) {
      return Status::Unsupported("division shape mismatch");
    }
    // The divided atom must mention every quantified and group variable.
    std::set<std::string> g_vars = negated_atom->FreeVariableSet();
    for (const std::string& z : zs) {
      if (!g_vars.count(z)) return Status::Unsupported("z missing from G");
    }
    for (const std::string& v : group_set) {
      if (!g_vars.count(v)) {
        return Status::Unsupported("group variable missing from G");
      }
    }
    // Shared variables: G's non-z variables, all bound in the block.
    // keep = shared ∖ group.
    std::vector<std::string> keep, group(group_set.begin(), group_set.end());
    for (const std::string& v : g_vars) {
      if (zs.count(v) || group_set.count(v)) continue;
      if (block->ColOf(v) < 0) {
        return Status::Unsupported("G mentions an unbound variable");
      }
      keep.push_back(v);
    }
    if (keep.empty() && group.empty()) {
      return Status::Unsupported("closed division");
    }
    // Divisor: the range parts over [group..., z...].
    std::set<std::string> divisor_required = zs;
    divisor_required.insert(group.begin(), group.end());
    auto divisor_split =
        SplitProducersAndFilters(range_parts, divisor_required, {});
    if (!divisor_split) {
      return Status::Unsupported("range is not standalone-translatable");
    }
    BRYQL_ASSIGN_OR_RETURN(
        Block divisor_block,
        TranslateBlock(range_parts, divisor_required, std::nullopt));
    std::vector<std::string> z_order;
    for (const std::string& v : divisor_block.frame) {
      if (zs.count(v)) z_order.push_back(v);
    }
    std::vector<std::string> divisor_frame = group;
    divisor_frame.insert(divisor_frame.end(), z_order.begin(),
                         z_order.end());
    BRYQL_ASSIGN_OR_RETURN(ExprPtr divisor,
                           ProjectToFrame(divisor_block, divisor_frame));
    // Dividend: G over [keep..., group..., z...].
    BRYQL_ASSIGN_OR_RETURN(Block g, AtomSource(negated_atom));
    std::vector<std::string> dividend_frame = keep;
    dividend_frame.insert(dividend_frame.end(), group.begin(), group.end());
    dividend_frame.insert(dividend_frame.end(), z_order.begin(),
                          z_order.end());
    BRYQL_ASSIGN_OR_RETURN(ExprPtr dividend,
                           ProjectToFrame(g, dividend_frame));
    ExprPtr quotient;
    if (options_.universal ==
        TranslateOptions::Universal::kCountComparison) {
      // The Quel baseline: per-group totals of the range vs. per-(keep,
      // group) counts of matched pairs; keep where equal.
      ExprPtr totals = Expr::GroupCount(divisor, group.size());
      std::vector<JoinKey> pair_keys;
      size_t off = keep.size();
      for (size_t j = 0; j < group.size() + z_order.size(); ++j) {
        pair_keys.push_back({off + j, j});
      }
      ExprPtr matched_pairs = Expr::SemiJoin(std::move(dividend), divisor,
                                             pair_keys);
      ExprPtr matched = Expr::GroupCount(std::move(matched_pairs),
                                         keep.size() + group.size());
      // matched = [keep, group, m]; totals = [group, n].
      std::vector<JoinKey> group_keys;
      for (size_t j = 0; j < group.size(); ++j) {
        group_keys.push_back({keep.size() + j, j});
      }
      size_t m_col = keep.size() + group.size();
      size_t n_col = m_col + 1 + group.size();
      ExprPtr joined = Expr::Join(std::move(matched), std::move(totals),
                                  group_keys);
      ExprPtr equal = Expr::Select(
          std::move(joined), Predicate::ColCol(CompareOp::kEq, m_col,
                                               n_col));
      std::vector<size_t> out_cols;
      for (size_t j = 0; j < keep.size() + group.size(); ++j) {
        out_cols.push_back(j);
      }
      quotient = Expr::Project(std::move(equal), std::move(out_cols));
    } else {
      quotient = group.empty()
                     ? Expr::Division(std::move(dividend), divisor)
                     : Expr::GroupDivision(std::move(dividend), divisor,
                                           group.size());
    }
    // Quotient columns follow [keep..., group...].
    std::vector<std::string> quotient_frame = keep;
    quotient_frame.insert(quotient_frame.end(), group.begin(), group.end());
    std::vector<JoinKey> keys;
    for (size_t j = 0; j < quotient_frame.size(); ++j) {
      keys.push_back(
          {static_cast<size_t>(block->ColOf(quotient_frame[j])), j});
    }
    ExprPtr divided = Expr::SemiJoin(block->expr, std::move(quotient), keys);
    // Vacuous-truth guard: block tuples whose divisor group is empty
    // satisfy the ∀ trivially but never reach the quotient. Without
    // groups, a zero-key complement-join keeps everything exactly when
    // the divisor is empty; with groups, tuples whose group key has no
    // divisor row.
    std::vector<JoinKey> guard_keys;
    for (size_t j = 0; j < group.size(); ++j) {
      guard_keys.push_back(
          {static_cast<size_t>(block->ColOf(group[j])), j});
    }
    ExprPtr vacuous =
        Expr::AntiJoin(block->expr, std::move(divisor), guard_keys);
    block->expr = Expr::Union(std::move(divided), std::move(vacuous));
    return Status::Ok();
  }

  /// Proposition 5: a disjunctive filter as a chain of constrained
  /// outer-joins over the block, one mark column per relational disjunct,
  /// followed by one selection and a projection back to the block's
  /// columns. Comparison disjuncts fold into the predicates directly.
  Status ApplyDisjunctiveFilter(Block* block, const FormulaPtr& f) {
    if (options_.disjunction ==
        TranslateOptions::Disjunction::kUnionOfFilters) {
      return DisjunctiveFilterAsUnion(block, f);
    }
    size_t base_arity = block->frame.size();
    // Pre-translate each disjunct; if any cannot become a standalone
    // relation or inline predicate, fall back to the union strategy.
    struct Step {
      bool negated = false;
      // Either an inline predicate on block columns...
      PredicatePtr inline_pred;
      // ...or a relation to probe.
      ExprPtr relation;
      std::vector<std::string> rel_frame;
      size_t mark_col = 0;  // filled while chaining
    };
    std::vector<Step> steps;
    for (const FormulaPtr& d : f->children()) {
      Step step;
      FormulaPtr core = d;
      if (core->kind() == FormulaKind::kNot) {
        step.negated = true;
        core = core->child();
      }
      if (core->kind() == FormulaKind::kCompare) {
        auto pred = ComparePredicate(*block, core);
        if (!pred.ok()) return DisjunctiveFilterAsUnion(block, f);
        step.inline_pred = *pred;
        steps.push_back(std::move(step));
        continue;
      }
      Result<Block> sub = [&]() -> Result<Block> {
        if (core->kind() == FormulaKind::kAtom) return AtomSource(core);
        if (core->kind() == FormulaKind::kExists ||
            core->kind() == FormulaKind::kAnd) {
          std::set<std::string> required = core->FreeVariableSet();
          std::vector<std::string> q_vars;
          if (core->kind() == FormulaKind::kExists) {
            q_vars = core->vars();
          }
          std::set<std::string> all = required;
          all.insert(q_vars.begin(), q_vars.end());
          std::vector<FormulaPtr> body =
              core->kind() == FormulaKind::kExists
                  ? Conjuncts(core->child())
                  : core->children();
          BRYQL_ASSIGN_OR_RETURN(Block b,
                                 TranslateBlock(body, all, std::nullopt));
          return ProjectToVars(b, required);
        }
        return Status::Unsupported("disjunct not relational");
      }();
      if (!sub.ok()) return DisjunctiveFilterAsUnion(block, f);
      // Every free variable of the disjunct must be a block column.
      for (const std::string& v : sub->frame) {
        if (block->ColOf(v) < 0) return DisjunctiveFilterAsUnion(block, f);
      }
      step.relation = sub->expr;
      step.rel_frame = sub->frame;
      steps.push_back(std::move(step));
    }
    if (options_.reorder_disjuncts) {
      // Largest relation first: it accepts the most tuples, so the
      // constraints spare the most downstream probes. Inline predicates
      // are free either way; estimate them as accepting half.
      CostModel model(db_);
      auto estimated_rows = [&](const Step& s) {
        // Inline predicates cost no probe at all: always first.
        if (s.relation == nullptr) {
          return std::numeric_limits<double>::infinity();
        }
        auto est = model.Estimate(s.relation);
        return est.ok() ? est->rows : 0.0;
      };
      std::stable_sort(steps.begin(), steps.end(),
                       [&](const Step& a, const Step& b) {
                         return estimated_rows(a) > estimated_rows(b);
                       });
    }
    // Chain the constrained outer-joins. Block columns stay at their
    // indices; mark columns append.
    ExprPtr chain = block->expr;
    size_t arity = base_arity;
    std::vector<PredicatePtr> accepted;  // per placed step
    std::vector<PredicatePtr> final_condition;
    for (Step& step : steps) {
      if (step.inline_pred != nullptr) {
        PredicatePtr cond = step.negated
                                ? Predicate::Not(step.inline_pred)
                                : step.inline_pred;
        accepted.push_back(cond);
        final_condition.push_back(cond);
        continue;
      }
      // Probe only tuples not accepted by any earlier disjunct
      // (const(i) of Proposition 5).
      PredicatePtr constraint = nullptr;
      if (!accepted.empty()) {
        std::vector<PredicatePtr> nots;
        nots.reserve(accepted.size());
        for (const PredicatePtr& a : accepted) {
          nots.push_back(Predicate::Not(a));
        }
        constraint = Predicate::And(std::move(nots));
      }
      std::vector<JoinKey> keys;
      for (size_t j = 0; j < step.rel_frame.size(); ++j) {
        keys.push_back(
            {static_cast<size_t>(block->ColOf(step.rel_frame[j])), j});
      }
      chain = Expr::MarkJoin(std::move(chain), step.relation, keys,
                             constraint);
      step.mark_col = arity++;
      PredicatePtr cond = step.negated
                              ? Predicate::IsNull(step.mark_col)
                              : Predicate::IsNotNull(step.mark_col);
      accepted.push_back(cond);
      final_condition.push_back(cond);
    }
    chain = Expr::Select(std::move(chain),
                         Predicate::Or(std::move(final_condition)));
    std::vector<size_t> cols(base_arity);
    for (size_t i = 0; i < base_arity; ++i) cols[i] = i;
    block->expr = Expr::Project(std::move(chain), std::move(cols));
    return Status::Ok();
  }

  /// Baseline translation of a disjunctive filter: union of the
  /// independently filtered blocks (the strategy §3.3 improves on).
  Status DisjunctiveFilterAsUnion(Block* block, const FormulaPtr& f) {
    ExprPtr acc;
    for (const FormulaPtr& d : f->children()) {
      Block branch = *block;
      BRYQL_RETURN_NOT_OK(ApplyFilter(&branch, d));
      acc = acc == nullptr ? branch.expr : Expr::Union(acc, branch.expr);
    }
    block->expr = std::move(acc);
    return Status::Ok();
  }

  const Database* db_;
  const TranslateOptions& options_;
};

}  // namespace

Result<ExprPtr> Translator::TranslateClosed(const FormulaPtr& canonical) const {
  BRYQL_FAILPOINT("translate.plan");
  if (!canonical->FreeVariables().empty()) {
    return Status::InvalidArgument(
        "TranslateClosed requires a closed formula, got: " +
        canonical->ToString());
  }
  TranslatorImpl impl(db_, options_);
  return impl.Closed(canonical);
}

Result<TranslatedQuery> Translator::TranslateOpen(const Query& query) const {
  BRYQL_FAILPOINT("translate.plan");
  if (query.closed()) {
    return Status::InvalidArgument("TranslateOpen requires targets");
  }
  TranslatorImpl impl(db_, options_);
  // Top-level disjunctions (Definition 3 case 2 / Rule 14) become unions
  // of branch plans.
  std::vector<FormulaPtr> branches;
  if (query.formula->kind() == FormulaKind::kOr) {
    branches = query.formula->children();
  } else {
    branches = {query.formula};
  }
  ExprPtr plan;
  for (const FormulaPtr& branch : branches) {
    BRYQL_ASSIGN_OR_RETURN(ExprPtr e,
                           impl.OpenBranch(branch, query.targets));
    plan = plan == nullptr ? std::move(e) : Expr::Union(plan, std::move(e));
  }
  return TranslatedQuery{std::move(plan), query.targets};
}

}  // namespace bryql
