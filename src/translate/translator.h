#ifndef BRYQL_TRANSLATE_TRANSLATOR_H_
#define BRYQL_TRANSLATE_TRANSLATOR_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "calculus/parser.h"
#include "common/result.h"
#include "storage/database.h"

namespace bryql {

/// Strategy knobs for the improved translation (§3). The defaults are the
/// paper's method; the alternatives exist for the ablation benchmarks.
struct TranslateOptions {
  /// How a correlated negated existential (Proposition 4 case 5 — a
  /// universal quantification whose inner condition mentions outer
  /// variables beyond its range) is translated.
  enum class Universal {
    /// Rewrite with two complement-joins (the paper: "the division
    /// operator cannot be avoided, except rewritten in terms of difference
    /// or complement-join"). Always applicable.
    kComplementJoin,
    /// The paper's literal case-5 expression with the division operator,
    /// used when the inner range is independent of the outer variables;
    /// the exact per-group division otherwise. Falls back to
    /// kComplementJoin when the shape does not match.
    kDivision,
    /// The Quel baseline of §1: "comparing the numbers of tuples
    /// satisfying Q and P" — per-group counts of the range and of the
    /// matched pairs, kept when equal. The intro criticizes it for
    /// computing "intermediate results — aggregates — that are in
    /// principle not needed"; the benchmarks quantify that.
    kCountComparison,
  };

  /// How a disjunctive filter (§3.3) is translated.
  enum class Disjunction {
    /// Proposition 5: a chain of constrained outer-joins. No union is
    /// built, the producer is scanned once, redundant probes are skipped.
    kConstrainedOuterJoin,
    /// Baseline: the union of the independently filtered producers.
    kUnionOfFilters,
  };

  Universal universal = Universal::kComplementJoin;
  Disjunction disjunction = Disjunction::kConstrainedOuterJoin;

  /// Reorder the disjuncts of a constrained outer-join chain by estimated
  /// cardinality, largest first: the disjunct most likely to accept a
  /// tuple goes first, so the constraints skip the most probes (the §3.3
  /// "it is possible not to search U for those tuples that are in T"
  /// advantage, maximized with the §4 cost model). Off by default — the
  /// paper chains disjuncts in query order.
  bool reorder_disjuncts = false;
};

/// An algebra plan for an open query: `expr` yields a relation whose
/// columns follow `columns` (the query's target order).
struct TranslatedQuery {
  ExprPtr expr;
  std::vector<std::string> columns;
};

/// Phase 2 of the paper: translates canonical-form calculus queries into
/// relational algebra using the improved translation of §3 — semi-joins
/// and complement-joins for quantified filters (Proposition 4), constrained
/// outer-join chains for disjunctive filters (Proposition 5), and
/// non-emptiness tests for closed queries, avoiding the initial cartesian
/// product and (by default) the division operator entirely.
///
/// Inputs are expected in canonical form (Normalize): no ∀, ⇒, ⇔; if a
/// non-canonical shape is seen, kUnsupported suggests normalizing first.
class Translator {
 public:
  /// `db` is used only to validate atom arities; it must outlive calls.
  Translator(const Database* db, TranslateOptions options = {})
      : db_(db), options_(options) {}

  /// Translates a closed (yes/no) query to an arity-0 boolean expression.
  Result<ExprPtr> TranslateClosed(const FormulaPtr& canonical) const;

  /// Translates an open query; `query.formula` must be canonical.
  Result<TranslatedQuery> TranslateOpen(const Query& query) const;

 private:
  const Database* db_;
  TranslateOptions options_;
};

}  // namespace bryql

#endif  // BRYQL_TRANSLATE_TRANSLATOR_H_
