#include "translate/classical_translator.h"

#include <algorithm>
#include <map>

#include "calculus/range_analysis.h"
#include "common/failpoints.h"

namespace bryql {

namespace {

constexpr size_t kMaxDnfDisjuncts = 256;

/// Negation normal form with negations pushed through quantifiers too —
/// the classical methods consider prenex forms, so ¬∃ becomes ∀¬ and
/// conversely (unlike the paper's Rules 1-3, which stop at quantifiers).
FormulaPtr ToNnf(const FormulaPtr& f, bool negated) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
      return negated ? Formula::Not(f) : f;
    case FormulaKind::kCompare:
      return negated ? Formula::Compare(NegateCompareOp(f->compare_op()),
                                        f->lhs(), f->rhs())
                     : f;
    case FormulaKind::kNot:
      return ToNnf(f->child(), !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children().size());
      for (const FormulaPtr& c : f->children()) {
        children.push_back(ToNnf(c, negated));
      }
      bool and_out = (f->kind() == FormulaKind::kAnd) != negated;
      return and_out ? Formula::And(std::move(children))
                     : Formula::Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      FormulaPtr as_or = Formula::Or(Formula::Not(f->children()[0]),
                                     f->children()[1]);
      return ToNnf(as_or, negated);
    }
    case FormulaKind::kIff: {
      const FormulaPtr& a = f->children()[0];
      const FormulaPtr& b = f->children()[1];
      FormulaPtr expanded =
          Formula::And(Formula::Or(Formula::Not(a), b),
                       Formula::Or(Formula::Not(b), a));
      return ToNnf(expanded, negated);
    }
    case FormulaKind::kExists: {
      FormulaPtr body = ToNnf(f->child(), negated);
      return negated ? Formula::Forall(f->vars(), std::move(body))
                     : Formula::Exists(f->vars(), std::move(body));
    }
    case FormulaKind::kForall: {
      FormulaPtr body = ToNnf(f->child(), negated);
      return negated ? Formula::Exists(f->vars(), std::move(body))
                     : Formula::Forall(f->vars(), std::move(body));
    }
  }
  return f;
}

struct PrefixEntry {
  FormulaKind kind;  // kExists or kForall
  std::string var;
};

/// Pulls quantifiers to the front, renaming to fresh names so that every
/// prefix variable is unique and capture-free.
class Prenexer {
 public:
  FormulaPtr Pull(const FormulaPtr& f, std::vector<PrefixEntry>* prefix) {
    switch (f->kind()) {
      case FormulaKind::kAtom:
      case FormulaKind::kCompare:
        return f;
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        std::map<std::string, Term> renaming;
        std::vector<std::string> fresh_vars;
        for (const std::string& v : f->vars()) {
          std::string fresh = v + "@" + std::to_string(counter_++);
          renaming.emplace(v, Term::Var(fresh));
          fresh_vars.push_back(fresh);
        }
        FormulaPtr renamed = Substitute(f->child(), renaming);
        for (const std::string& fresh : fresh_vars) {
          prefix->push_back({f->kind(), fresh});
        }
        return Pull(renamed, prefix);
      }
      case FormulaKind::kNot:
        // NNF guarantees the child is an atom or comparison.
        return f;
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        std::vector<FormulaPtr> children;
        children.reserve(f->children().size());
        for (const FormulaPtr& c : f->children()) {
          children.push_back(Pull(c, prefix));
        }
        return f->kind() == FormulaKind::kAnd
                   ? Formula::And(std::move(children))
                   : Formula::Or(std::move(children));
      }
      default:
        return f;
    }
  }

 private:
  size_t counter_ = 0;
};

/// Distributes ∧ over ∨: the matrix in disjunctive normal form, as a list
/// of literal lists. Returns false when the expansion exceeds the cap.
bool ToDnf(const FormulaPtr& f, std::vector<std::vector<FormulaPtr>>* out) {
  switch (f->kind()) {
    case FormulaKind::kOr: {
      for (const FormulaPtr& c : f->children()) {
        if (!ToDnf(c, out)) return false;
      }
      return out->size() <= kMaxDnfDisjuncts;
    }
    case FormulaKind::kAnd: {
      std::vector<std::vector<FormulaPtr>> acc = {{}};
      for (const FormulaPtr& c : f->children()) {
        std::vector<std::vector<FormulaPtr>> child_dnf;
        if (!ToDnf(c, &child_dnf)) return false;
        std::vector<std::vector<FormulaPtr>> next;
        for (const auto& left : acc) {
          for (const auto& right : child_dnf) {
            std::vector<FormulaPtr> merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
            if (next.size() > kMaxDnfDisjuncts) return false;
          }
        }
        acc = std::move(next);
      }
      out->insert(out->end(), acc.begin(), acc.end());
      return out->size() <= kMaxDnfDisjuncts;
    }
    default:
      out->push_back({f});
      return true;
  }
}

/// Three-valued fold used to decide whether a variable's atom-derived
/// range is sound (see Reduce).
enum class Constant { kTrue, kFalse, kOther };

bool MentionsVarDeep(const FormulaPtr& f, const std::string& v) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare: {
      for (const Term& t : f->terms()) {
        if (t.is_variable() && t.var() == v) return true;
      }
      return false;
    }
    default:
      for (const FormulaPtr& c : f->children()) {
        if (MentionsVarDeep(c, v)) return true;
      }
      return false;
  }
}

/// The truth value of the v-dependent part of the NNF matrix when `v`
/// lies outside every atom mentioning it: positive v-atoms false, negated
/// ones true, comparisons on v never constant. Subformulas not mentioning
/// v are skipped: their value is the same for every v, so (given the
/// nonempty-range guard in RangeOf) they can neither create an
/// out-of-range-only witness (∃ reads kFalse) nor an out-of-range-only
/// counterexample (∀ reads kTrue).
Constant FoldOutside(const FormulaPtr& f, const std::string& v) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
      return Constant::kFalse;  // caller ensures f mentions v
    case FormulaKind::kNot:
      return Constant::kTrue;  // NNF: negation wraps an atom
    case FormulaKind::kCompare:
      return Constant::kOther;
    case FormulaKind::kAnd: {
      bool all_true = true;
      for (const FormulaPtr& c : f->children()) {
        if (!MentionsVarDeep(c, v)) continue;
        Constant t = FoldOutside(c, v);
        if (t == Constant::kFalse) return Constant::kFalse;
        all_true &= t == Constant::kTrue;
      }
      return all_true ? Constant::kTrue : Constant::kOther;
    }
    case FormulaKind::kOr: {
      bool all_false = true;
      for (const FormulaPtr& c : f->children()) {
        if (!MentionsVarDeep(c, v)) continue;
        Constant t = FoldOutside(c, v);
        if (t == Constant::kTrue) return Constant::kTrue;
        all_false &= t == Constant::kFalse;
      }
      return all_false ? Constant::kFalse : Constant::kOther;
    }
    default:
      return Constant::kOther;
  }
}

class ClassicalImpl {
 public:
  explicit ClassicalImpl(const Database* db) : db_(db) {}

  /// Reduces `formula` (free variables = targets, in this order) to an
  /// algebra expression whose columns follow `targets`.
  Result<ExprPtr> Reduce(const FormulaPtr& formula,
                         const std::vector<std::string>& targets) {
    FormulaPtr nnf = ToNnf(formula, /*negated=*/false);
    std::vector<PrefixEntry> prefix;
    Prenexer prenexer;
    FormulaPtr matrix = prenexer.Pull(nnf, &prefix);

    // Column layout: targets first, then the prefix variables in order.
    std::vector<std::string> columns = targets;
    for (const PrefixEntry& e : prefix) columns.push_back(e.var);

    // Collect positive-atom ranges over the matrix.
    CollectRanges(matrix);

    std::vector<std::vector<FormulaPtr>> dnf;
    if (!ToDnf(matrix, &dnf) || dnf.empty()) {
      return Status::Unsupported(
          "classical reduction: DNF expansion too large");
    }

    // The initial cartesian product of all variable ranges. An
    // atom-derived range is sound only when the matrix is *constant*
    // (false for ∃/free variables, true for ∀) once the variable lies
    // outside all of its atoms — otherwise answers could involve domain
    // values no atom reaches and the variable must range over "dom".
    std::map<std::string, FormulaKind> quantifier_of;
    for (const PrefixEntry& e : prefix) quantifier_of[e.var] = e.kind;
    ExprPtr product;
    for (const std::string& v : columns) {
      auto qit = quantifier_of.find(v);
      FormulaKind kind = qit == quantifier_of.end() ? FormulaKind::kExists
                                                    : qit->second;
      Constant outside = FoldOutside(matrix, v);
      bool atoms_sound = kind == FormulaKind::kForall
                             ? outside == Constant::kTrue
                             : outside == Constant::kFalse;
      BRYQL_ASSIGN_OR_RETURN(ExprPtr range,
                             atoms_sound ? RangeOf(v) : Expr::Scan("dom"));
      product = product == nullptr ? std::move(range)
                                   : Expr::Product(product, std::move(range));
    }
    if (product == nullptr) {
      // A closed, variable-free query.
      Relation unit(0);
      unit.Insert(Tuple{});
      product = Expr::Literal(std::move(unit));
    }

    // Apply the matrix: one filtered copy of the product per disjunct.
    ExprPtr applied;
    for (const std::vector<FormulaPtr>& disjunct : dnf) {
      BRYQL_ASSIGN_OR_RETURN(ExprPtr one,
                             ApplyLiterals(product, columns, disjunct));
      applied = applied == nullptr ? std::move(one)
                                   : Expr::Union(applied, std::move(one));
    }

    // Process the prefix innermost-first: ∃ projects the last column out,
    // ∀ divides by the variable's range (the same range that entered the
    // product, so quotient semantics line up).
    ExprPtr plan = std::move(applied);
    size_t width = columns.size();
    for (auto it = prefix.rbegin(); it != prefix.rend(); ++it) {
      if (it->kind == FormulaKind::kExists) {
        std::vector<size_t> cols(width - 1);
        for (size_t i = 0; i + 1 < width; ++i) cols[i] = i;
        plan = Expr::Project(std::move(plan), std::move(cols));
      } else {
        bool atoms_sound = FoldOutside(matrix, it->var) == Constant::kTrue;
        BRYQL_ASSIGN_OR_RETURN(
            ExprPtr divisor,
            atoms_sound ? RangeOf(it->var) : Expr::Scan("dom"));
        plan = Expr::Division(std::move(plan), std::move(divisor));
      }
      --width;
    }
    return plan;
  }

 private:
  /// Registers every atom — of either polarity — as a range source for
  /// its variables. A universally quantified variable's range atom appears
  /// *negated* in the NNF matrix (∀x R ⇒ F becomes ¬R ∨ F), so negative
  /// occurrences must contribute; this matches the typed-range semantics
  /// of [JS 82] and is sound for domain-independent (canonical) queries.
  void CollectRanges(const FormulaPtr& f) {
    switch (f->kind()) {
      case FormulaKind::kAtom: {
        for (size_t i = 0; i < f->terms().size(); ++i) {
          if (f->terms()[i].is_variable()) {
            range_sources_[f->terms()[i].var()].push_back({f, i});
          }
        }
        return;
      }
      case FormulaKind::kCompare:
        return;  // comparisons do not provide ranges
      default:
        for (const FormulaPtr& c : f->children()) CollectRanges(c);
        return;
    }
  }

  /// The range of a variable: the union of projections of its atoms, or
  /// the active domain when it has none — or when every source relation
  /// is empty, since an empty range would wrongly empty the whole product
  /// even for vacuously-true universals.
  Result<ExprPtr> RangeOf(const std::string& var) {
    auto it = range_sources_.find(var);
    bool nonempty_source = false;
    if (it != range_sources_.end()) {
      for (const auto& [atom, index] : it->second) {
        auto rel = db_->Get(atom->predicate());
        if (rel.ok() && !(*rel)->empty()) {
          nonempty_source = true;
          break;
        }
      }
    }
    if (it == range_sources_.end() || it->second.empty() ||
        !nonempty_source) {
      // No atom ranges this variable: fall back to the whole database
      // domain (Codd's original reduction; the "dom" view of §2.1).
      return Expr::Scan("dom");
    }
    ExprPtr acc;
    for (const auto& [atom, index] : it->second) {
      BRYQL_ASSIGN_OR_RETURN(size_t arity, db_->ArityOf(atom->predicate()));
      if (arity != atom->terms().size()) {
        return Status::InvalidArgument("atom arity mismatch for '" +
                                       atom->predicate() + "'");
      }
      ExprPtr one = Expr::Project(Expr::Scan(atom->predicate()), {index});
      acc = acc == nullptr ? std::move(one)
                           : Expr::Union(acc, std::move(one));
    }
    return acc;
  }

  /// Applies one DNF disjunct's literals to the product: semi-joins for
  /// positive atoms, complement-less anti-joins for negative ones,
  /// selections for comparisons.
  Result<ExprPtr> ApplyLiterals(ExprPtr product,
                                const std::vector<std::string>& columns,
                                const std::vector<FormulaPtr>& literals) {
    auto col_of = [&](const std::string& var) -> int {
      for (size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == var) return static_cast<int>(i);
      }
      return -1;
    };
    ExprPtr plan = std::move(product);
    for (const FormulaPtr& lit : literals) {
      bool negated = lit->kind() == FormulaKind::kNot;
      const FormulaPtr& core = negated ? lit->child() : lit;
      if (core->kind() == FormulaKind::kCompare) {
        CompareOp op = negated ? NegateCompareOp(core->compare_op())
                               : core->compare_op();
        const Term& l = core->lhs();
        const Term& r = core->rhs();
        PredicatePtr pred;
        if (l.is_variable() && r.is_variable()) {
          int lc = col_of(l.var());
          int rc = col_of(r.var());
          if (lc < 0 || rc < 0) {
            return Status::Unsupported("free variable in comparison: " +
                                       core->ToString());
          }
          pred = Predicate::ColCol(op, lc, rc);
        } else if (l.is_variable()) {
          int lc = col_of(l.var());
          if (lc < 0) {
            return Status::Unsupported("free variable in comparison");
          }
          pred = Predicate::ColVal(op, lc, r.constant());
        } else if (r.is_variable()) {
          int rc = col_of(r.var());
          if (rc < 0) {
            return Status::Unsupported("free variable in comparison");
          }
          CompareOp mirrored = op;
          if (op == CompareOp::kLt) mirrored = CompareOp::kGt;
          if (op == CompareOp::kLe) mirrored = CompareOp::kGe;
          if (op == CompareOp::kGt) mirrored = CompareOp::kLt;
          if (op == CompareOp::kGe) mirrored = CompareOp::kLe;
          pred = Predicate::ColVal(mirrored, rc, l.constant());
        } else {
          bool truth = CompareValues(op, l.constant(), r.constant());
          pred = truth ? Predicate::True()
                       : Predicate::Not(Predicate::True());
        }
        plan = Expr::Select(std::move(plan), std::move(pred));
        continue;
      }
      if (core->kind() != FormulaKind::kAtom) {
        return Status::Internal("non-literal in DNF matrix: " +
                                lit->ToString());
      }
      // Build the atom source: selections for constants and repeats, and
      // keys pairing product columns with atom argument positions.
      BRYQL_ASSIGN_OR_RETURN(size_t arity, db_->ArityOf(core->predicate()));
      if (arity != core->terms().size()) {
        return Status::InvalidArgument("atom arity mismatch for '" +
                                       core->predicate() + "'");
      }
      std::vector<PredicatePtr> conditions;
      std::vector<JoinKey> keys;
      std::map<std::string, size_t> first_pos;
      for (size_t i = 0; i < core->terms().size(); ++i) {
        const Term& t = core->terms()[i];
        if (t.is_constant()) {
          conditions.push_back(
              Predicate::ColVal(CompareOp::kEq, i, t.constant()));
          continue;
        }
        auto [fit, inserted] = first_pos.emplace(t.var(), i);
        if (!inserted) {
          conditions.push_back(
              Predicate::ColCol(CompareOp::kEq, fit->second, i));
          continue;
        }
        int col = col_of(t.var());
        if (col < 0) {
          return Status::Unsupported("free variable in atom: " +
                                     core->ToString());
        }
        keys.push_back({static_cast<size_t>(col), i});
      }
      ExprPtr source = Expr::Scan(core->predicate());
      if (!conditions.empty()) {
        source = Expr::Select(std::move(source),
                              Predicate::And(std::move(conditions)));
      }
      plan = negated
                 ? Expr::AntiJoin(std::move(plan), std::move(source), keys)
                 : Expr::SemiJoin(std::move(plan), std::move(source), keys);
    }
    return plan;
  }

  const Database* db_;
  std::map<std::string, std::vector<std::pair<FormulaPtr, size_t>>>
      range_sources_;
};

}  // namespace

Result<ExprPtr> ClassicalTranslator::TranslateClosed(
    const FormulaPtr& formula) const {
  BRYQL_FAILPOINT("translate.plan");
  if (!formula->FreeVariables().empty()) {
    return Status::InvalidArgument(
        "TranslateClosed requires a closed formula");
  }
  ClassicalImpl impl(db_);
  BRYQL_ASSIGN_OR_RETURN(ExprPtr plan, impl.Reduce(formula, {}));
  return Expr::NonEmpty(std::move(plan));
}

Result<TranslatedQuery> ClassicalTranslator::TranslateOpen(
    const Query& query) const {
  BRYQL_FAILPOINT("translate.plan");
  if (query.closed()) {
    return Status::InvalidArgument("TranslateOpen requires targets");
  }
  ClassicalImpl impl(db_);
  BRYQL_ASSIGN_OR_RETURN(ExprPtr plan,
                         impl.Reduce(query.formula, query.targets));
  return TranslatedQuery{std::move(plan), query.targets};
}

}  // namespace bryql
