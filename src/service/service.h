#ifndef BRYQL_SERVICE_SERVICE_H_
#define BRYQL_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/governor.h"
#include "common/result.h"
#include "common/status.h"
#include "core/query_processor.h"

namespace bryql {

/// Admission priority of a request. Lower value = more urgent; the
/// admission queue always seats the most urgent waiting caller first
/// (FIFO within a priority). Under sustained overload, batch work is the
/// first to be shed — that is the point of the classes.
enum class Priority {
  kInteractive = 0,
  kNormal = 1,
  kBatch = 2,
};
constexpr size_t kPriorityLevels = 3;

const char* PriorityName(Priority priority);

/// Automatic-retry knobs: exponential backoff with deterministic,
/// seed-derived jitter. Retries apply to the *transient* error class —
/// Status::IsTransient() and kInternal faults tagged by an exception
/// barrier (Status::IsContainedException()) — never to resource verdicts
/// (a budget trip is a property of the query, not of luck), to semantic
/// errors, or to plain kInternal invariant breaches (a deterministic bug
/// retries the same way every time).
struct RetryPolicy {
  /// Total tries including the first. 1 = no retries.
  size_t max_attempts = 4;
  std::chrono::nanoseconds initial_backoff{std::chrono::milliseconds(1)};
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff{std::chrono::milliseconds(50)};
  /// Fraction of each backoff randomized away (0 = none, 1 = full
  /// jitter). The random stream is a pure function of ServiceOptions::seed
  /// and the request ticket, so a fault schedule replays identically.
  double jitter = 0.5;
};

/// Configuration of a QueryService.
struct ServiceOptions {
  /// Queries evaluated concurrently. 0 = size of the shared ThreadPool
  /// (one governed query per hardware worker).
  size_t max_concurrency = 0;
  /// Callers allowed to wait for a slot (all priorities together); the
  /// next caller beyond this is rejected immediately with
  /// kResourceExhausted and a retry-after hint.
  size_t max_queue_depth = 64;
  RetryPolicy retry;
  /// Master switch for the degradation ladder (below). Off = every
  /// attempt runs exactly as requested.
  bool enable_degradation = true;
  /// Queue-occupancy fraction beyond which *new* work starts one rung
  /// down the ladder (serial) so the backlog drains faster.
  double overload_degrade_threshold = 0.5;
  /// Seed of the jitter stream (and nothing else — fault schedules are
  /// seeded at the failpoint layer).
  uint64_t seed = 0x5eed5eed5eed5eedull;
};

/// One query as submitted by a client. The deadline inside `options` is
/// measured from Submit() entry and covers queueing, every attempt and
/// every backoff sleep — a caller that asks for 50ms gets an answer or a
/// clean error within ~50ms regardless of what the fault schedule does.
struct ServiceRequest {
  std::string text;
  Strategy strategy = Strategy::kBry;
  QueryOptions options;
  Priority priority = Priority::kNormal;
};

/// A successful reply: the execution plus how hard the service had to
/// work for it.
struct ServiceReply {
  Execution execution;
  /// Attempts consumed (1 = first try succeeded).
  size_t attempts = 1;
  /// Degradation-ladder rung of the successful attempt: 0 = as
  /// requested, 1 = serial, 2 = serial + plan-cache bypass, 3 = serial +
  /// cache bypass + tuple-at-a-time engine.
  int degradation_level = 0;
};

/// Service-level observability counters. Snapshot via
/// QueryService::stats(); individual counters are exact, the snapshot as
/// a whole is not atomic.
struct ServiceStats {
  size_t submitted = 0;
  size_t admitted = 0;
  size_t completed = 0;
  size_t failed = 0;
  /// Rejections: admission queue at capacity.
  size_t rejected_queue_full = 0;
  /// Rejections: estimated queue wait exceeded the remaining deadline.
  size_t rejected_deadline = 0;
  /// Admitted but the deadline expired while still queued.
  size_t queue_timeouts = 0;
  /// Retry attempts performed (not counting first tries).
  size_t retries = 0;
  /// Attempts that failed with the transient class (kTransient, or
  /// barrier-contained kInternal — Status::IsContainedException()).
  size_t transient_failures = 0;
  /// Attempts run at each degradation rung (an attempt at rung 3 counts
  /// in all three).
  size_t degraded_serial = 0;
  size_t degraded_cache_bypass = 0;
  size_t degraded_tuple_engine = 0;
  /// Requests that *started* degraded because the queue was filling up.
  size_t overload_degraded = 0;
  /// High-water marks of concurrent execution and queue depth.
  size_t peak_running = 0;
  size_t peak_waiting = 0;

  std::string ToString() const;
};

/// A fault-tolerant, concurrency-controlled front door to QueryProcessor,
/// designed for many client threads sharing one processor:
///
///   * admission control — a bounded queue with per-query priorities and
///     deadline-aware rejection: when the queue is full, or the estimated
///     queue wait already exceeds the request's remaining deadline, the
///     caller gets an immediate kResourceExhausted carrying a
///     "retry-after-ms=N" hint (RetryAfterMsHint) instead of a doomed
///     wait;
///   * a concurrency limiter sized to the shared ThreadPool, so a burst
///     of callers queues instead of oversubscribing the machine;
///   * automatic retry with exponential backoff and seeded jitter for the
///     transient error class (kTransient injections, exception-barrier
///     kInternal), honouring the request deadline across attempts;
///   * a graceful-degradation ladder: each retry steps down
///     parallel → serial → plan-cache bypass → tuple-at-a-time engine,
///     and new work starts one rung down while the queue is congested —
///     trading speed for survivability exactly when that trade is right;
///   * an exception backstop: any throw escaping the evaluation pipeline
///     (the engine's own barrier already contains operator throws)
///     becomes a well-formed kInternal, never a dead process.
///
/// Execution happens on the *calling* thread after admission — the
/// service adds no thread hops on the fault-free path (bench_service
/// holds it under 3% overhead) and can never deadlock the ThreadPool,
/// because it never submits work to it.
///
/// Thread-safe; `processor` must be shared-safe too (QueryProcessor is).
class QueryService {
 public:
  /// `processor` must outlive the service.
  explicit QueryService(const QueryProcessor* processor,
                        ServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits, evaluates (with retries/degradation as needed) and replies.
  /// Non-OK outcomes are:
  ///   * kResourceExhausted — shed at admission (retry-after hint) or a
  ///     governor budget verdict from the query itself;
  ///   * kDeadlineExceeded / kCancelled — the caller's own limits;
  ///   * kTransient — every attempt failed with a transient fault; the
  ///     last underlying error is in the message;
  ///   * any other code — the query or the engine is genuinely wrong
  ///     (parse/semantic errors and untagged kInternal invariant breaches
  ///     pass through untouched: retrying or relabelling a deterministic
  ///     failure would only invite client retry loops on a permanent bug).
  Result<ServiceReply> Submit(const ServiceRequest& request);

  /// Convenience wrapper building the request inline.
  Result<ServiceReply> Run(const std::string& text,
                           Strategy strategy = Strategy::kBry,
                           const QueryOptions& options = {},
                           Priority priority = Priority::kNormal);

  ServiceStats stats() const;
  size_t max_concurrency() const { return max_concurrency_; }

 private:
  struct AdmitResult {
    Status status;
    /// True when the caller holds an execution slot and must Release().
    bool admitted = false;
    /// Queue occupancy observed at admission, for overload degradation.
    double occupancy = 0.0;
  };

  AdmitResult Admit(Priority priority, uint64_t ticket,
                    bool has_deadline,
                    std::chrono::steady_clock::time_point deadline);
  void Release();

  /// Estimated ms until a freshly rejected caller would plausibly get a
  /// slot — the retry-after hint.
  uint64_t RetryAfterMsLocked() const;

  /// One evaluation attempt at a degradation rung, with the exception
  /// backstop.
  Result<Execution> RunAttempt(const ServiceRequest& request,
                               const QueryOptions& attempt_options) const;

  void RecordLatency(std::chrono::nanoseconds elapsed);
  std::chrono::nanoseconds EstimatedQueryLatency() const {
    return std::chrono::nanoseconds(
        avg_latency_ns_.load(std::memory_order_relaxed));
  }

  const QueryProcessor* processor_;
  ServiceOptions options_;
  size_t max_concurrency_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t running_ = 0;
  size_t waiting_total_ = 0;
  /// FIFO ticket queues, one per priority; the head of the most urgent
  /// non-empty queue is seated next.
  std::deque<uint64_t> queue_[kPriorityLevels];
  std::atomic<uint64_t> next_ticket_{0};

  /// EWMA of observed attempt latency (ns), the queue-wait estimator.
  std::atomic<uint64_t> avg_latency_ns_;

  /// Counters (relaxed atomics; peaks are maintained under mutex_).
  mutable std::atomic<size_t> submitted_{0}, admitted_{0}, completed_{0},
      failed_{0}, rejected_queue_full_{0}, rejected_deadline_{0},
      queue_timeouts_{0}, retries_{0}, transient_failures_{0},
      degraded_serial_{0}, degraded_cache_bypass_{0},
      degraded_tuple_engine_{0}, overload_degraded_{0};
  size_t peak_running_ = 0;
  size_t peak_waiting_ = 0;
};

/// Extracts the "retry-after-ms=N" hint from a rejection Status message;
/// 0 when absent. Clients use it to pace their retry loops.
uint64_t RetryAfterMsHint(const Status& status);

}  // namespace bryql

#endif  // BRYQL_SERVICE_SERVICE_H_
