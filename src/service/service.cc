#include "service/service.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <new>
#include <thread>
#include <utility>

#include "common/thread_pool.h"

namespace bryql {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0,1) from a 64-bit state (53 mantissa bits).
double ToUnit(uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

/// An attempt error the retry loop may act on: injected transience, or an
/// exception the engine barrier (or our backstop) contained — tagged via
/// Status::ContainedException. A plain kInternal is a deterministic bug
/// ("unknown physical kind", a broken invariant): retrying it is noise and
/// relabelling it transient would invite clients to retry forever, so it
/// passes through verbatim.
bool Retryable(const Status& status) {
  return status.IsTransient() || status.IsContainedException();
}

constexpr uint64_t kInitialLatencyEstimateNs = 500 * 1000;  // 0.5ms

}  // namespace

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kNormal:
      return "normal";
    case Priority::kBatch:
      return "batch";
  }
  return "?";
}

std::string ServiceStats::ToString() const {
  return "submitted=" + std::to_string(submitted) +
         " admitted=" + std::to_string(admitted) +
         " completed=" + std::to_string(completed) +
         " failed=" + std::to_string(failed) +
         " rejected_queue_full=" + std::to_string(rejected_queue_full) +
         " rejected_deadline=" + std::to_string(rejected_deadline) +
         " queue_timeouts=" + std::to_string(queue_timeouts) +
         " retries=" + std::to_string(retries) +
         " transient_failures=" + std::to_string(transient_failures) +
         " degraded_serial=" + std::to_string(degraded_serial) +
         " degraded_cache_bypass=" + std::to_string(degraded_cache_bypass) +
         " degraded_tuple_engine=" + std::to_string(degraded_tuple_engine) +
         " overload_degraded=" + std::to_string(overload_degraded) +
         " peak_running=" + std::to_string(peak_running) +
         " peak_waiting=" + std::to_string(peak_waiting);
}

QueryService::QueryService(const QueryProcessor* processor,
                           ServiceOptions options)
    : processor_(processor),
      options_(options),
      max_concurrency_(options.max_concurrency != 0
                           ? options.max_concurrency
                           : ThreadPool::Shared().size()),
      avg_latency_ns_(kInitialLatencyEstimateNs) {
  if (max_concurrency_ == 0) max_concurrency_ = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  if (options_.retry.max_attempts == 0) options_.retry.max_attempts = 1;
}

uint64_t QueryService::RetryAfterMsLocked() const {
  // Expected time for the backlog (everyone waiting, plus one slot's
  // worth of running work) to drain through max_concurrency_ lanes.
  const uint64_t latency =
      avg_latency_ns_.load(std::memory_order_relaxed);
  const uint64_t backlog = waiting_total_ + 1;
  const uint64_t ns =
      latency * ((backlog + max_concurrency_ - 1) / max_concurrency_);
  return std::max<uint64_t>(1, ns / 1000000);
}

QueryService::AdmitResult QueryService::Admit(
    Priority priority, uint64_t ticket, bool has_deadline,
    std::chrono::steady_clock::time_point deadline) {
  const size_t p = static_cast<size_t>(priority);
  std::unique_lock<std::mutex> lock(mutex_);
  AdmitResult result;
  result.occupancy = static_cast<double>(waiting_total_) /
                     static_cast<double>(options_.max_queue_depth);

  // Fast path: a free slot and nobody waiting — seat immediately without
  // queue traffic. Keeps peak_waiting meaning "callers that actually
  // waited" and the fault-free path at two counter bumps.
  if (running_ < max_concurrency_ && waiting_total_ == 0) {
    ++running_;
    peak_running_ = std::max(peak_running_, running_);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    result.admitted = true;
    return result;
  }

  if (waiting_total_ >= options_.max_queue_depth) {
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    result.status = Status::ResourceExhausted(
        "service overloaded: admission queue full (" +
        std::to_string(waiting_total_) +
        " waiting); retry-after-ms=" + std::to_string(RetryAfterMsLocked()));
    return result;
  }

  // Deadline-aware load shedding: a request whose estimated queue wait
  // already exceeds its remaining deadline is doomed — reject now, while
  // retrying elsewhere is still useful, instead of timing it out later.
  if (has_deadline) {
    const auto now = std::chrono::steady_clock::now();
    size_t ahead = running_ >= max_concurrency_
                       ? running_ - max_concurrency_ + 1
                       : 0;
    for (size_t q = 0; q <= p; ++q) ahead += queue_[q].size();
    const auto est_wait = EstimatedQueryLatency() *
                          ((ahead + max_concurrency_ - 1) / max_concurrency_);
    if (now + est_wait >= deadline) {
      rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
      result.status = Status::ResourceExhausted(
          "estimated queue wait exceeds remaining deadline; retry-after-ms=" +
          std::to_string(RetryAfterMsLocked()));
      return result;
    }
  }

  queue_[p].push_back(ticket);
  ++waiting_total_;
  peak_waiting_ = std::max(peak_waiting_, waiting_total_);

  auto my_turn = [&] {
    if (running_ >= max_concurrency_) return false;
    // The head of the most urgent non-empty queue goes first.
    for (size_t q = 0; q < kPriorityLevels; ++q) {
      if (!queue_[q].empty()) return q == p && queue_[q].front() == ticket;
    }
    return false;
  };

  bool seated;
  if (has_deadline) {
    seated = cv_.wait_until(lock, deadline, my_turn);
  } else {
    cv_.wait(lock, my_turn);
    seated = true;
  }
  if (!seated) {
    // Deadline passed while queued: withdraw the ticket.
    auto& q = queue_[p];
    q.erase(std::find(q.begin(), q.end(), ticket));
    --waiting_total_;
    queue_timeouts_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_all();
    result.status =
        Status::DeadlineExceeded("deadline expired while queued for a slot");
    return result;
  }

  queue_[p].pop_front();
  --waiting_total_;
  ++running_;
  peak_running_ = std::max(peak_running_, running_);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  result.admitted = true;
  // Another slot may be free (max_concurrency_ > 1): let the next head
  // re-check instead of waiting for our Release.
  cv_.notify_all();
  return result;
}

void QueryService::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
  }
  cv_.notify_all();
}

void QueryService::RecordLatency(std::chrono::nanoseconds elapsed) {
  // EWMA, alpha = 1/8; lossy racy updates are fine for an estimator. The
  // delta must be signed: samples below the current average are the common
  // case (the initial estimate is deliberately pessimistic), and an
  // unsigned `sample - old` would wrap to ~2^61 ns and poison every
  // deadline-aware admission decision from then on.
  const int64_t sample = std::max<int64_t>(1, elapsed.count());
  const int64_t old = static_cast<int64_t>(
      avg_latency_ns_.load(std::memory_order_relaxed));
  const int64_t next = old + (sample - old) / 8;
  avg_latency_ns_.store(static_cast<uint64_t>(std::max<int64_t>(1, next)),
                        std::memory_order_relaxed);
}

Result<Execution> QueryService::RunAttempt(
    const ServiceRequest& request,
    const QueryOptions& attempt_options) const {
  // Backstop for throws outside the engine's own operator barrier
  // (parser, rewriter, allocator failures in glue code): the service
  // never lets an exception reach the caller's frame.
  try {
    return processor_->Run(request.text, request.strategy, attempt_options);
  } catch (const std::bad_alloc&) {
    return Status::ContainedException(
        "query evaluation ran out of memory (bad_alloc)");
  } catch (const std::exception& e) {
    return Status::ContainedException(
        std::string("query evaluation threw: ") + e.what());
  } catch (...) {
    return Status::ContainedException(
        "query evaluation threw a non-standard exception");
  }
}

Result<ServiceReply> QueryService::Submit(const ServiceRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  const bool has_deadline = request.options.deadline.count() > 0;
  const auto deadline = start + request.options.deadline;
  const uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);

  AdmitResult admit = Admit(request.priority, ticket, has_deadline, deadline);
  if (!admit.admitted) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return admit.status;
  }

  // The slot is held by a scope guard, not a bare Release() at the end:
  // the attempt loop's own barrier covers processor_->Run, but a throw
  // anywhere else in this frame (bad_alloc building a Status or copying
  // options under memory pressure) must not leak a concurrency slot —
  // that would wedge co-resident clients forever.
  struct SlotGuard {
    QueryService* service;
    ~SlotGuard() { service->Release(); }
  } slot_guard{this};

  // Overload degradation: when the queue was congested at admission, new
  // work starts one rung down (serial) so the backlog drains faster.
  int base_level = 0;
  if (options_.enable_degradation &&
      admit.occupancy >= options_.overload_degrade_threshold) {
    base_level = 1;
    overload_degraded_.fetch_add(1, std::memory_order_relaxed);
  }

  Result<ServiceReply> outcome =
      Status::Internal("service attempt loop never ran");
  Status last;
  for (size_t attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    const int level =
        options_.enable_degradation
            ? std::min(base_level + static_cast<int>(attempt), 3)
            : 0;
    QueryOptions attempt_options = request.options;
    if (has_deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        last = Status::DeadlineExceeded(
            "deadline expired before attempt " + std::to_string(attempt + 1));
        break;
      }
      attempt_options.deadline = deadline - now;
    }
    if (level >= 1) {
      attempt_options.num_threads = 0;
      degraded_serial_.fetch_add(1, std::memory_order_relaxed);
    }
    if (level >= 2) {
      attempt_options.bypass_plan_cache = true;
      degraded_cache_bypass_.fetch_add(1, std::memory_order_relaxed);
    }
    if (level >= 3) {
      attempt_options.force_tuple_engine = true;
      degraded_tuple_engine_.fetch_add(1, std::memory_order_relaxed);
    }

    const auto attempt_start = std::chrono::steady_clock::now();
    Result<Execution> run = RunAttempt(request, attempt_options);
    if (run.ok()) {
      RecordLatency(std::chrono::steady_clock::now() - attempt_start);
      ServiceReply reply;
      reply.execution = std::move(*run);
      reply.attempts = attempt + 1;
      reply.degradation_level = level;
      outcome = std::move(reply);
      break;
    }
    last = run.status();
    if (!Retryable(last)) break;
    transient_failures_.fetch_add(1, std::memory_order_relaxed);
    if (attempt + 1 == options_.retry.max_attempts) break;

    // Exponential backoff with seeded jitter. The stream depends only on
    // (seed, ticket, attempt), so a replayed fault schedule sleeps the
    // same way.
    double scale = 1.0;
    for (size_t i = 0; i < attempt; ++i) {
      scale *= options_.retry.backoff_multiplier;
    }
    auto backoff = std::chrono::nanoseconds(static_cast<int64_t>(
        static_cast<double>(options_.retry.initial_backoff.count()) * scale));
    backoff = std::min(backoff, options_.retry.max_backoff);
    const double u =
        ToUnit(SplitMix64(options_.seed ^ SplitMix64(ticket) ^ attempt));
    auto sleep = std::chrono::nanoseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) *
        (1.0 - options_.retry.jitter * u)));
    if (has_deadline &&
        std::chrono::steady_clock::now() + sleep >= deadline) {
      // No budget left to back off; report the transient failure now.
      break;
    }
    if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
    retries_.fetch_add(1, std::memory_order_relaxed);
  }

  if (outcome.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  if (Retryable(last)) {
    // The fault class the service is *for*: report one uniform transient
    // verdict ("try again later") carrying the last underlying error.
    return Status::Transient(
        "attempts exhausted (" + std::to_string(options_.retry.max_attempts) +
        "); last error: " + last.ToString());
  }
  return last;
}

Result<ServiceReply> QueryService::Run(const std::string& text,
                                       Strategy strategy,
                                       const QueryOptions& options,
                                       Priority priority) {
  ServiceRequest request;
  request.text = text;
  request.strategy = strategy;
  request.options = options;
  request.priority = priority;
  return Submit(request);
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.queue_timeouts = queue_timeouts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.transient_failures =
      transient_failures_.load(std::memory_order_relaxed);
  s.degraded_serial = degraded_serial_.load(std::memory_order_relaxed);
  s.degraded_cache_bypass =
      degraded_cache_bypass_.load(std::memory_order_relaxed);
  s.degraded_tuple_engine =
      degraded_tuple_engine_.load(std::memory_order_relaxed);
  s.overload_degraded = overload_degraded_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.peak_running = peak_running_;
    s.peak_waiting = peak_waiting_;
  }
  return s;
}

uint64_t RetryAfterMsHint(const Status& status) {
  const std::string& message = status.message();
  const std::string tag = "retry-after-ms=";
  size_t pos = message.find(tag);
  if (pos == std::string::npos) return 0;
  return std::strtoull(message.c_str() + pos + tag.size(), nullptr, 10);
}

}  // namespace bryql
