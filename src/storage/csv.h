#ifndef BRYQL_STORAGE_CSV_H_
#define BRYQL_STORAGE_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/relation.h"

namespace bryql {

/// Parses CSV text into a relation. Fields are inferred per cell: integers,
/// then floating-point numbers, otherwise strings (optionally
/// single-quoted). Blank lines and `#` comment lines are skipped. Every
/// data row must have the same number of fields.
Result<Relation> RelationFromCsv(std::string_view text);

/// Loads `path` and parses it with RelationFromCsv.
Result<Relation> RelationFromCsvFile(const std::string& path);

/// Serializes a relation to CSV (strings quoted when needed). ∅ and ⊥ are
/// internal-only symbols and yield InvalidArgument.
Result<std::string> RelationToCsv(const Relation& relation);

class Database;

/// Saves every relation of `db` into `directory` (created if missing):
/// one `<name>.csv` per relation plus a `MANIFEST` listing name, arity
/// and cardinality. Overwrites existing files.
Status SaveDatabase(const Database& db, const std::string& directory);

/// Loads a database saved by SaveDatabase. Relations are read from the
/// MANIFEST, so stray files in the directory are ignored.
Result<Database> LoadDatabase(const std::string& directory);

}  // namespace bryql

#endif  // BRYQL_STORAGE_CSV_H_
