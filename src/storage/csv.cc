#include "storage/csv.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "storage/database.h"

namespace bryql {

namespace {

/// Classifies one trimmed CSV cell.
Value ParseCell(std::string_view cell) {
  if (cell.size() >= 2 && cell.front() == '\'' && cell.back() == '\'') {
    return Value::String(std::string(cell.substr(1, cell.size() - 2)));
  }
  if (!cell.empty()) {
    char* end = nullptr;
    std::string owned(cell);
    long long as_int = std::strtoll(owned.c_str(), &end, 10);
    if (end == owned.c_str() + owned.size()) return Value::Int(as_int);
    double as_double = std::strtod(owned.c_str(), &end);
    if (end == owned.c_str() + owned.size()) return Value::Double(as_double);
  }
  return Value::String(std::string(cell));
}

}  // namespace

Result<Relation> RelationFromCsv(std::string_view text) {
  std::vector<Tuple> rows;
  size_t line_number = 0;
  size_t arity = 0;
  size_t arity_line = 0;
  for (const std::string& line_raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(line_raw);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> cells = Split(line, ',');
    if (rows.empty()) {
      arity = cells.size();
      arity_line = line_number;
    } else if (cells.size() != arity) {
      // Ragged input is a data error the caller must see located: report
      // the offending line, not just the arity clash FromRows would give.
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_number) + ": expected " +
          std::to_string(arity) + " fields (as on line " +
          std::to_string(arity_line) + "), got " +
          std::to_string(cells.size()));
    }
    std::vector<Value> values;
    values.reserve(cells.size());
    for (const std::string& cell : cells) values.push_back(ParseCell(Trim(cell)));
    rows.emplace_back(std::move(values));
  }
  return Relation::FromRows(std::move(rows));
}

Result<Relation> RelationFromCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return RelationFromCsv(buffer.str());
}

Result<std::string> RelationToCsv(const Relation& relation) {
  std::string out;
  for (const Tuple& t : relation.rows()) {
    for (size_t i = 0; i < t.arity(); ++i) {
      if (i > 0) out += ",";
      const Value& v = t.at(i);
      switch (v.kind()) {
        case ValueKind::kNull:
        case ValueKind::kMark:
          return Status::InvalidArgument(
              "cannot serialize internal symbol " + v.ToString());
        case ValueKind::kInt:
          out += std::to_string(v.AsInt());
          break;
        case ValueKind::kDouble: {
          std::ostringstream os;
          os << v.AsDouble();
          out += os.str();
          break;
        }
        case ValueKind::kString:
          out += "'" + v.AsString() + "'";
          break;
      }
    }
    out += "\n";
  }
  return out;
}

Status SaveDatabase(const Database& db, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + directory +
                                   "': " + ec.message());
  }
  std::ofstream manifest(directory + "/MANIFEST");
  if (!manifest) {
    return Status::InvalidArgument("cannot write manifest in '" +
                                   directory + "'");
  }
  for (const std::string& name : db.Names()) {
    BRYQL_ASSIGN_OR_RETURN(const Relation* rel, db.Get(name));
    BRYQL_ASSIGN_OR_RETURN(std::string csv, RelationToCsv(*rel));
    std::string path = directory + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
      return Status::InvalidArgument("cannot write '" + path + "'");
    }
    out << "# relation " << name << ", arity " << rel->arity() << "\n"
        << csv;
    manifest << name << "," << rel->arity() << "," << rel->size() << "\n";
  }
  return Status::Ok();
}

Result<Database> LoadDatabase(const std::string& directory) {
  std::ifstream manifest(directory + "/MANIFEST");
  if (!manifest) {
    return Status::NotFound("no MANIFEST in '" + directory + "'");
  }
  Database db;
  std::string line;
  while (std::getline(manifest, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument("malformed manifest line: " + line);
    }
    const std::string& name = fields[0];
    BRYQL_ASSIGN_OR_RETURN(Relation rel,
                           RelationFromCsvFile(directory + "/" + name +
                                               ".csv"));
    size_t expected_arity = std::strtoul(fields[1].c_str(), nullptr, 10);
    size_t expected_size = std::strtoul(fields[2].c_str(), nullptr, 10);
    if (!rel.empty() && rel.arity() != expected_arity) {
      return Status::InvalidArgument(
          "relation '" + name + "' has arity " +
          std::to_string(rel.arity()) + ", manifest says " +
          std::to_string(expected_arity));
    }
    if (rel.size() != expected_size) {
      return Status::InvalidArgument(
          "relation '" + name + "' has " + std::to_string(rel.size()) +
          " tuples, manifest says " + std::to_string(expected_size));
    }
    if (rel.empty() && expected_arity > 0) {
      // Empty CSV loses the arity; restore it from the manifest.
      rel = Relation(expected_arity);
    }
    db.Put(name, std::move(rel));
  }
  return db;
}

}  // namespace bryql
