#include "storage/tuple.h"

namespace bryql {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> values = values_;
  values.insert(values.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> values;
  values.reserve(indices.size());
  for (size_t i : indices) values.push_back(values_[i]);
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace bryql
