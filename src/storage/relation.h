#ifndef BRYQL_STORAGE_RELATION_H_
#define BRYQL_STORAGE_RELATION_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/columnar/column_store.h"
#include "storage/tuple.h"

namespace bryql {

/// A relation under set semantics: a duplicate-free collection of tuples of
/// one arity. Insertion order is preserved for deterministic iteration and
/// readable test output; membership is hash-indexed.
///
/// The relational model of the paper is pure sets (domain calculus), so the
/// engine works with Relation everywhere — base tables and intermediate
/// results alike.
class Relation {
 public:
  /// An empty relation of the given arity. Arity 0 relations model the two
  /// boolean constants: {} is false, {()} is true.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// Copies deep-copy the optional column store so the copy stays
  /// self-contained (Database hands out copies of cached domains, tests
  /// copy fixtures); moves transfer it.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// Builds a relation from rows; duplicate rows collapse. All rows must
  /// have the same arity.
  static Result<Relation> FromRows(std::vector<Tuple> rows);

  size_t arity() const { return arity_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts a tuple; returns true when the tuple was new. A tuple whose
  /// arity differs from the relation's is rejected with kInvalidArgument —
  /// never inserted, never asserted on — so malformed input cannot corrupt
  /// the row store.
  Result<bool> Insert(Tuple tuple);

  bool Contains(const Tuple& tuple) const {
    return index_.count(tuple) != 0;
  }

  /// Tuples in insertion order.
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Rows sorted by value — canonical order for comparisons in tests.
  std::vector<Tuple> SortedRows() const;

  /// Set equality (order-insensitive).
  friend bool operator==(const Relation& a, const Relation& b);
  friend bool operator!=(const Relation& a, const Relation& b) {
    return !(a == b);
  }

  /// Multi-line rendering, one tuple per line, in insertion order.
  std::string ToString() const;

  /// --- secondary hash indexes -------------------------------------
  /// A per-column hash index maps a value to the row positions holding
  /// it. Indexes are maintained incrementally by Insert. Both evaluation
  /// engines exploit them: the streaming executor turns
  /// σ_{col=val}(scan) into an index lookup, and the Figure 1
  /// interpreter enumerates atoms through the index of a bound argument.

  /// Builds (or rebuilds) the index on `column`; kInvalidArgument when
  /// `column` is out of range for this arity.
  Status BuildIndex(size_t column);
  bool HasIndex(size_t column) const {
    return column_indexes_.count(column) != 0;
  }
  /// Row positions whose `column` equals `value`. Empty when none match —
  /// or when no index exists on `column`, so callers that forgot
  /// BuildIndex degrade to "no index hits", not undefined behaviour.
  const std::vector<size_t>& Matches(size_t column,
                                     const Value& value) const;

  /// --- columnar representation ------------------------------------
  /// An optional column-major mirror of rows(), built on demand and then
  /// maintained incrementally by Insert. The row store stays
  /// authoritative; the column store is an acceleration structure with
  /// the invariant rows()[i] == columnar row i.

  /// Builds (or rebuilds) the column store from the current rows.
  void BuildColumnStore();
  /// The column store, or nullptr when BuildColumnStore was never called.
  const ColumnStore* column_store() const { return columnar_.get(); }

 private:
  using ColumnIndex = std::unordered_map<Value, std::vector<size_t>,
                                         ValueHash>;

  size_t arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> index_;
  std::map<size_t, ColumnIndex> column_indexes_;
  std::unique_ptr<ColumnStore> columnar_;
};

}  // namespace bryql

#endif  // BRYQL_STORAGE_RELATION_H_
