#include "storage/database.h"

namespace bryql {

void Database::Put(const std::string& name, Relation relation) {
  relations_.insert_or_assign(name, std::move(relation));
  ++version_;
}

Status Database::PutRows(const std::string& name, std::vector<Tuple> rows) {
  BRYQL_ASSIGN_OR_RETURN(Relation rel, Relation::FromRows(std::move(rows)));
  Put(name, std::move(rel));
  return Status::Ok();
}

Result<const Relation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it != relations_.end()) return &it->second;
  if (name == "dom") {
    if (domain_cache_version_ != version_) {
      domain_cache_ = ActiveDomain();
      domain_cache_version_ = version_;
    }
    return &domain_cache_;
  }
  return Status::NotFound("no relation named '" + name + "'");
}

Result<size_t> Database::ArityOf(const std::string& name) const {
  BRYQL_ASSIGN_OR_RETURN(const Relation* rel, Get(name));
  return rel->arity();
}

Status Database::BuildIndex(const std::string& name, size_t column) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  if (column >= it->second.arity()) {
    return Status::InvalidArgument(
        "no column " + std::to_string(column) + " in relation '" + name +
        "' of arity " + std::to_string(it->second.arity()));
  }
  // An index changes the best access path, so plans prepared before it
  // must not be reused as-is.
  ++version_;
  return it->second.BuildIndex(column);
}

void Database::BuildAllIndexes() {
  ++version_;
  for (auto& [name, rel] : relations_) {
    for (size_t c = 0; c < rel.arity(); ++c) rel.BuildIndex(c);
  }
}

Status Database::EnableColumnar(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  it->second.BuildColumnStore();
  // A new access path invalidates prepared plans, like BuildIndex does.
  ++version_;
  return Status::Ok();
}

void Database::EnableColumnarAll() {
  bool built = false;
  for (auto& [name, rel] : relations_) {
    if (rel.column_store() == nullptr) {
      rel.BuildColumnStore();
      built = true;
    }
  }
  if (built) ++version_;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

Relation Database::ActiveDomain() const {
  Relation dom(1);
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel.rows()) {
      for (const Value& v : t.values()) dom.Insert(Tuple({v}));
    }
  }
  return dom;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

}  // namespace bryql
