#include "storage/builder.h"

namespace bryql {

Relation UnaryStrings(std::initializer_list<std::string> values) {
  Relation rel(1);
  for (const std::string& v : values) rel.Insert(Tuple({Value::String(v)}));
  return rel;
}

Relation UnaryInts(std::initializer_list<int64_t> values) {
  Relation rel(1);
  for (int64_t v : values) rel.Insert(Tuple({Value::Int(v)}));
  return rel;
}

Relation StringPairs(
    std::initializer_list<std::pair<std::string, std::string>> pairs) {
  Relation rel(2);
  for (const auto& [a, b] : pairs) {
    rel.Insert(Tuple({Value::String(a), Value::String(b)}));
  }
  return rel;
}

Tuple Strs(std::initializer_list<std::string> values) {
  Tuple t;
  for (const std::string& v : values) t.Append(Value::String(v));
  return t;
}

Tuple Ints(std::initializer_list<int64_t> values) {
  Tuple t;
  for (int64_t v : values) t.Append(Value::Int(v));
  return t;
}

}  // namespace bryql
