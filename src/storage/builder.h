#ifndef BRYQL_STORAGE_BUILDER_H_
#define BRYQL_STORAGE_BUILDER_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace bryql {

/// Test/example helpers for writing relation literals tersely.

/// A unary relation of strings: U({"a","b"}).
Relation UnaryStrings(std::initializer_list<std::string> values);

/// A unary relation of ints.
Relation UnaryInts(std::initializer_list<int64_t> values);

/// A binary relation of string pairs: Pairs({{"a","x"},{"b","y"}}).
Relation StringPairs(
    std::initializer_list<std::pair<std::string, std::string>> pairs);

/// A tuple of string values, e.g. Strs({"a", "b"}).
Tuple Strs(std::initializer_list<std::string> values);

/// A tuple of int values.
Tuple Ints(std::initializer_list<int64_t> values);

}  // namespace bryql

#endif  // BRYQL_STORAGE_BUILDER_H_
