#ifndef BRYQL_STORAGE_COLUMNAR_PREDICATE_KERNEL_H_
#define BRYQL_STORAGE_COLUMNAR_PREDICATE_KERNEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "algebra/predicate.h"
#include "storage/columnar/column_store.h"

namespace bryql {

/// Evaluates one Predicate directly on ColumnStore segments.
///
/// Three levels, each a strict refinement of the last:
///
///   1. ZoneTest(seg) consults only the zone maps: kNone means no row of
///      the segment can match (the scan skips it wholesale — zone-map
///      pruning), kAll means every row matches (the scan emits without
///      touching a single value), kMaybe means the rows must be looked at.
///   2. EvalRange(begin, end, sel) runs the vectorized kernels over a row
///      range inside one segment, appending matching row positions to the
///      selection vector. Typed tight loops handle the common uniform
///      cases (int/double comparisons, dictionary-coded string
///      comparisons via a per-predicate match table built once per
///      distinct string); every other case falls back per row to
///      CompareValues on reconstructed Values, so the kernel's verdict is
///      bit-identical to Predicate::Eval by construction.
///   3. EvalRow(row) is the row-at-a-time form used by capacity-1
///      (first-witness) pulls, where evaluating ahead of the consumer
///      would break admission parity with the row engine.
///
/// Comparison accounting is honest about work performed: the typed loops
/// and fallbacks count one comparison per row they touch (like the row
/// engine), dictionary match tables count one comparison per distinct
/// string (built once, then reused per row — the vectorized win the
/// paper's cost metric should see), and zone tests count nothing (they
/// read per-segment metadata, not values).
///
/// A kernel borrows `store` and `pred` (both must outlive it) and holds
/// per-scan scratch (match tables), so instantiate one per operator, not
/// per batch.
class PredicateKernel {
 public:
  PredicateKernel(const ColumnStore* store, const Predicate* pred)
      : store_(store), pred_(pred) {}

  enum class Zone { kNone, kMaybe, kAll };

  /// Zone-map verdict for segment `seg` — conservative: kNone/kAll are
  /// only claimed when the zone maps prove them.
  Zone ZoneTest(size_t seg) const;

  /// Appends the positions of matching rows in [begin, end) — a range
  /// that must lie within one segment — to `*sel`.
  void EvalRange(size_t begin, size_t end, std::vector<size_t>* sel,
                 size_t* comparisons);

  /// Single-row evaluation, identical in result to Predicate::Eval on the
  /// materialized tuple.
  bool EvalRow(size_t row, size_t* comparisons);

 private:
  Zone ZoneTestNode(const Predicate* p, size_t seg) const;
  bool EvalRowNode(const Predicate* p, size_t row, size_t* comparisons);
  /// Evaluates `p` over [begin, end) into mask[0 .. end-begin).
  void EvalMask(const Predicate* p, size_t begin, size_t end,
                std::vector<uint8_t>* mask, size_t* comparisons);
  /// Match table for a ColVal string predicate: entry c answers "does
  /// dictionary code c satisfy the predicate". Built lazily, cached for
  /// the kernel's lifetime.
  const std::vector<uint8_t>& DictMatches(const Predicate* p,
                                          const ColumnStore::Column& col,
                                          size_t* comparisons);

  const ColumnStore* store_;
  const Predicate* pred_;
  std::unordered_map<const Predicate*, std::vector<uint8_t>> dict_match_;
};

}  // namespace bryql

#endif  // BRYQL_STORAGE_COLUMNAR_PREDICATE_KERNEL_H_
