#include "storage/columnar/column_store.h"

#include <bit>
#include <cmath>

namespace bryql {

namespace {

/// The 64-bit payload stored for one value (0 for the payload-free ∅/⊥).
int64_t PayloadOf(const Value& v, ColumnStore::Column* col) {
  switch (v.kind()) {
    case ValueKind::kNull:
    case ValueKind::kMark:
      return 0;
    case ValueKind::kInt:
      return v.AsInt();
    case ValueKind::kDouble:
      return std::bit_cast<int64_t>(v.AsDouble());
    case ValueKind::kString: {
      auto [it, inserted] = col->dict_codes.try_emplace(
          v.AsString(), static_cast<int64_t>(col->dict.size()));
      if (inserted) col->dict.push_back(v.AsString());
      return it->second;
    }
  }
  return 0;
}

void UpdateZone(ZoneMap* zone, const Value& v) {
  if (zone->count == 0) {
    zone->min = v;
    zone->max = v;
    zone->kind = v.kind();
  } else {
    if (v < zone->min) zone->min = v;
    if (zone->max < v) zone->max = v;
    if (v.kind() != zone->kind) zone->uniform = false;
  }
  ++zone->count;
  if (v.is_null()) ++zone->nulls;
  if (v.kind() == ValueKind::kDouble && std::isnan(v.AsDouble())) {
    zone->unordered = true;
  }
}

}  // namespace

void ColumnStore::Append(const Tuple& tuple) {
  const size_t seg = rows_ / kSegmentRows;
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column& col = columns_[c];
    const Value& v = tuple.at(c);
    if (seg == col.zones.size()) col.zones.emplace_back();
    col.kinds.push_back(static_cast<uint8_t>(v.kind()));
    col.data.push_back(PayloadOf(v, &col));
    UpdateZone(&col.zones[seg], v);
  }
  ++rows_;
}

Value ColumnStore::ValueAt(size_t column, size_t row) const {
  const Column& col = columns_[column];
  switch (static_cast<ValueKind>(col.kinds[row])) {
    case ValueKind::kNull:
      return Value::Null();
    case ValueKind::kMark:
      return Value::Mark();
    case ValueKind::kInt:
      return Value::Int(col.data[row]);
    case ValueKind::kDouble:
      return Value::Double(std::bit_cast<double>(col.data[row]));
    case ValueKind::kString:
      return Value::String(col.dict[static_cast<size_t>(col.data[row])]);
  }
  return Value::Null();
}

void ColumnStore::MaterializeRow(size_t row, Tuple* out) const {
  out->Clear();
  for (size_t c = 0; c < columns_.size(); ++c) {
    out->Append(ValueAt(c, row));
  }
}

}  // namespace bryql
