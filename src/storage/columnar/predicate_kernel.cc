#include "storage/columnar/predicate_kernel.h"

#include <bit>
#include <cmath>

namespace bryql {

namespace {

using Zone = PredicateKernel::Zone;

bool IsNumericKind(ValueKind k) {
  return k == ValueKind::kInt || k == ValueKind::kDouble;
}

bool IsNanLiteral(const Value& v) {
  return v.kind() == ValueKind::kDouble && std::isnan(v.AsDouble());
}

Zone Flip(Zone z) {
  if (z == Zone::kNone) return Zone::kAll;
  if (z == Zone::kAll) return Zone::kNone;
  return Zone::kMaybe;
}

/// Verdict for `v op lit` given v ∈ [lo, hi]. The three base ops are
/// derived from the Value order directly; kNe/kLe/kGe are the row-wise
/// negations of kEq/kGt/kLt, so their zone verdicts are the flips.
Zone IntervalVsValue(CompareOp op, const Value& lo, const Value& hi,
                     const Value& lit) {
  switch (op) {
    case CompareOp::kEq:
      if (lit < lo || hi < lit) return Zone::kNone;
      if (lo == lit && hi == lit) return Zone::kAll;
      return Zone::kMaybe;
    case CompareOp::kNe:
      return Flip(IntervalVsValue(CompareOp::kEq, lo, hi, lit));
    case CompareOp::kLt:  // v < lit
      if (hi < lit) return Zone::kAll;
      if (!(lo < lit)) return Zone::kNone;
      return Zone::kMaybe;
    case CompareOp::kGt:  // v > lit  ⇔  lit < v
      if (lit < lo) return Zone::kAll;
      if (!(lit < hi)) return Zone::kNone;
      return Zone::kMaybe;
    case CompareOp::kLe:  // v <= lit ⇔ !(v > lit)
      return Flip(IntervalVsValue(CompareOp::kGt, lo, hi, lit));
    case CompareOp::kGe:  // v >= lit ⇔ !(v < lit)
      return Flip(IntervalVsValue(CompareOp::kLt, lo, hi, lit));
  }
  return Zone::kMaybe;
}

/// Verdict for `va op vb` with va ∈ [a_lo, a_hi], vb ∈ [b_lo, b_hi],
/// paired row-wise.
Zone IntervalVsInterval(CompareOp op, const ZoneMap& a, const ZoneMap& b) {
  switch (op) {
    case CompareOp::kEq:
      if (a.max < b.min || b.max < a.min) return Zone::kNone;
      if (a.min == a.max && b.min == b.max && a.min == b.min) {
        return Zone::kAll;
      }
      return Zone::kMaybe;
    case CompareOp::kNe:
      return Flip(IntervalVsInterval(CompareOp::kEq, a, b));
    case CompareOp::kLt:  // va < vb
      if (a.max < b.min) return Zone::kAll;
      if (!(a.min < b.max)) return Zone::kNone;
      return Zone::kMaybe;
    case CompareOp::kGt:  // va > vb ⇔ vb < va
      if (b.max < a.min) return Zone::kAll;
      if (!(b.min < a.max)) return Zone::kNone;
      return Zone::kMaybe;
    case CompareOp::kLe:
      return Flip(IntervalVsInterval(CompareOp::kGt, a, b));
    case CompareOp::kGe:
      return Flip(IntervalVsInterval(CompareOp::kLt, a, b));
  }
  return Zone::kMaybe;
}

/// One typed comparison, shared by the int and double tight loops. Value
/// derives !=, <=, >, >= from == and < (see value.h), which differs from
/// IEEE for NaN operands (2 <= NaN is !(NaN < 2) = true there); the loops
/// must use the same derivations to stay bit-compatible with the row path.
template <typename T>
inline bool CompareTyped(CompareOp op, T a, T b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return !(a == b);
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return !(b < a);
    case CompareOp::kGt:
      return b < a;
    case CompareOp::kGe:
      return !(a < b);
  }
  return false;
}

inline double AsDoubleAt(const ColumnStore::Column& col, size_t row) {
  return static_cast<ValueKind>(col.kinds[row]) == ValueKind::kInt
             ? static_cast<double>(col.data[row])
             : std::bit_cast<double>(col.data[row]);
}

}  // namespace

PredicateKernel::Zone PredicateKernel::ZoneTest(size_t seg) const {
  if (pred_ == nullptr) return Zone::kAll;
  return ZoneTestNode(pred_, seg);
}

PredicateKernel::Zone PredicateKernel::ZoneTestNode(const Predicate* p,
                                                    size_t seg) const {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      return Zone::kAll;
    case Predicate::Kind::kCompareColVal: {
      const ZoneMap& z = store_->zone(p->lhs(), seg);
      if (z.count == 0) return Zone::kNone;
      if (z.unordered || IsNanLiteral(p->value())) return Zone::kMaybe;
      return IntervalVsValue(p->op(), z.min, z.max, p->value());
    }
    case Predicate::Kind::kCompareColCol: {
      const ZoneMap& a = store_->zone(p->lhs(), seg);
      const ZoneMap& b = store_->zone(p->rhs_col(), seg);
      if (a.count == 0) return Zone::kNone;
      if (a.unordered || b.unordered) return Zone::kMaybe;
      return IntervalVsInterval(p->op(), a, b);
    }
    case Predicate::Kind::kIsNull: {
      const ZoneMap& z = store_->zone(p->lhs(), seg);
      if (z.nulls == 0) return Zone::kNone;
      if (z.nulls == z.count) return Zone::kAll;
      return Zone::kMaybe;
    }
    case Predicate::Kind::kIsNotNull: {
      const ZoneMap& z = store_->zone(p->lhs(), seg);
      if (z.nulls == 0 && z.count > 0) return Zone::kAll;
      if (z.nulls == z.count) return Zone::kNone;
      return Zone::kMaybe;
    }
    case Predicate::Kind::kAnd: {
      bool all = true;
      for (const PredicatePtr& c : p->children()) {
        Zone z = ZoneTestNode(c.get(), seg);
        if (z == Zone::kNone) return Zone::kNone;
        if (z != Zone::kAll) all = false;
      }
      return all ? Zone::kAll : Zone::kMaybe;
    }
    case Predicate::Kind::kOr: {
      bool none = true;
      for (const PredicatePtr& c : p->children()) {
        Zone z = ZoneTestNode(c.get(), seg);
        if (z == Zone::kAll) return Zone::kAll;
        if (z != Zone::kNone) none = false;
      }
      return none ? Zone::kNone : Zone::kMaybe;
    }
    case Predicate::Kind::kNot:
      return Flip(ZoneTestNode(p->children()[0].get(), seg));
  }
  return Zone::kMaybe;
}

const std::vector<uint8_t>& PredicateKernel::DictMatches(
    const Predicate* p, const ColumnStore::Column& col,
    size_t* comparisons) {
  auto it = dict_match_.find(p);
  if (it != dict_match_.end()) return it->second;
  std::vector<uint8_t> match(col.dict.size());
  for (size_t c = 0; c < col.dict.size(); ++c) {
    // One comparison per *distinct* string — the dictionary win: every
    // later row is a table lookup, not a comparison.
    ++*comparisons;
    match[c] = CompareValues(p->op(), Value::String(col.dict[c]),
                             p->value());
  }
  return dict_match_.emplace(p, std::move(match)).first->second;
}

void PredicateKernel::EvalMask(const Predicate* p, size_t begin, size_t end,
                               std::vector<uint8_t>* mask,
                               size_t* comparisons) {
  const size_t n = end - begin;
  const size_t seg = begin / kSegmentRows;
  Zone zone = ZoneTestNode(p, seg);
  if (zone == Zone::kNone) {
    mask->assign(n, 0);
    return;
  }
  if (zone == Zone::kAll) {
    mask->assign(n, 1);
    return;
  }
  mask->assign(n, 0);
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      mask->assign(n, 1);
      return;
    case Predicate::Kind::kCompareColVal: {
      const ColumnStore::Column& col = store_->column(p->lhs());
      const ZoneMap& zm = col.zones[seg];
      const Value& lit = p->value();
      const CompareOp op = p->op();
      if (zm.uniform && zm.kind == ValueKind::kInt &&
          lit.kind() == ValueKind::kInt) {
        const int64_t v = lit.AsInt();
        const int64_t* data = col.data.data();
        for (size_t i = 0; i < n; ++i) {
          (*mask)[i] = CompareTyped(op, data[begin + i], v);
        }
        *comparisons += n;
        return;
      }
      if (zm.uniform && IsNumericKind(zm.kind) &&
          IsNumericKind(lit.kind())) {
        // Mixed int/double pairs compare numerically (Value's order), so
        // a double loop with Value's op derivations reproduces
        // CompareValues exactly — including NaN operands.
        const double v = lit.kind() == ValueKind::kInt
                             ? static_cast<double>(lit.AsInt())
                             : lit.AsDouble();
        for (size_t i = 0; i < n; ++i) {
          (*mask)[i] = CompareTyped(op, AsDoubleAt(col, begin + i), v);
        }
        *comparisons += n;
        return;
      }
      if (zm.uniform && zm.kind == ValueKind::kString &&
          lit.kind() == ValueKind::kString) {
        const std::vector<uint8_t>& match = DictMatches(p, col, comparisons);
        const int64_t* data = col.data.data();
        for (size_t i = 0; i < n; ++i) {
          (*mask)[i] = match[static_cast<size_t>(data[begin + i])];
        }
        return;
      }
      // Mixed-kind segment or cross-kind literal: reconstruct and defer
      // to CompareValues — the guaranteed-parity slow path.
      for (size_t i = 0; i < n; ++i) {
        ++*comparisons;
        (*mask)[i] = CompareValues(op, store_->ValueAt(p->lhs(), begin + i),
                                   lit);
      }
      return;
    }
    case Predicate::Kind::kCompareColCol: {
      const ColumnStore::Column& a = store_->column(p->lhs());
      const ColumnStore::Column& b = store_->column(p->rhs_col());
      const ZoneMap& za = a.zones[seg];
      const ZoneMap& zb = b.zones[seg];
      const CompareOp op = p->op();
      if (za.uniform && zb.uniform && za.kind == ValueKind::kInt &&
          zb.kind == ValueKind::kInt) {
        for (size_t i = 0; i < n; ++i) {
          (*mask)[i] = CompareTyped(op, a.data[begin + i], b.data[begin + i]);
        }
        *comparisons += n;
        return;
      }
      if (za.uniform && zb.uniform && IsNumericKind(za.kind) &&
          IsNumericKind(zb.kind)) {
        for (size_t i = 0; i < n; ++i) {
          (*mask)[i] = CompareTyped(op, AsDoubleAt(a, begin + i),
                                    AsDoubleAt(b, begin + i));
        }
        *comparisons += n;
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        ++*comparisons;
        (*mask)[i] =
            CompareValues(op, store_->ValueAt(p->lhs(), begin + i),
                          store_->ValueAt(p->rhs_col(), begin + i));
      }
      return;
    }
    case Predicate::Kind::kIsNull: {
      const ColumnStore::Column& col = store_->column(p->lhs());
      for (size_t i = 0; i < n; ++i) {
        (*mask)[i] = static_cast<ValueKind>(col.kinds[begin + i]) ==
                     ValueKind::kNull;
      }
      return;
    }
    case Predicate::Kind::kIsNotNull: {
      const ColumnStore::Column& col = store_->column(p->lhs());
      for (size_t i = 0; i < n; ++i) {
        (*mask)[i] = static_cast<ValueKind>(col.kinds[begin + i]) !=
                     ValueKind::kNull;
      }
      return;
    }
    case Predicate::Kind::kAnd: {
      mask->assign(n, 1);
      std::vector<uint8_t> child_mask;
      for (const PredicatePtr& c : p->children()) {
        EvalMask(c.get(), begin, end, &child_mask, comparisons);
        bool any = false;
        for (size_t i = 0; i < n; ++i) {
          (*mask)[i] &= child_mask[i];
          any |= (*mask)[i] != 0;
        }
        if (!any) return;  // conjunction already empty
      }
      return;
    }
    case Predicate::Kind::kOr: {
      std::vector<uint8_t> child_mask;
      for (const PredicatePtr& c : p->children()) {
        EvalMask(c.get(), begin, end, &child_mask, comparisons);
        for (size_t i = 0; i < n; ++i) (*mask)[i] |= child_mask[i];
      }
      return;
    }
    case Predicate::Kind::kNot: {
      EvalMask(p->children()[0].get(), begin, end, mask, comparisons);
      for (size_t i = 0; i < n; ++i) (*mask)[i] ^= 1;
      return;
    }
  }
}

void PredicateKernel::EvalRange(size_t begin, size_t end,
                                std::vector<size_t>* sel,
                                size_t* comparisons) {
  if (pred_ == nullptr) {
    for (size_t r = begin; r < end; ++r) sel->push_back(r);
    return;
  }
  std::vector<uint8_t> mask;
  EvalMask(pred_, begin, end, &mask, comparisons);
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) sel->push_back(begin + i);
  }
}

bool PredicateKernel::EvalRow(size_t row, size_t* comparisons) {
  if (pred_ == nullptr) return true;
  return EvalRowNode(pred_, row, comparisons);
}

bool PredicateKernel::EvalRowNode(const Predicate* p, size_t row,
                                  size_t* comparisons) {
  // Mirrors Predicate::Eval — same short-circuiting, same comparison
  // counts — reading values out of the column store instead of a tuple.
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompareColVal:
      ++*comparisons;
      return CompareValues(p->op(), store_->ValueAt(p->lhs(), row),
                           p->value());
    case Predicate::Kind::kCompareColCol:
      ++*comparisons;
      return CompareValues(p->op(), store_->ValueAt(p->lhs(), row),
                           store_->ValueAt(p->rhs_col(), row));
    case Predicate::Kind::kIsNull:
      return static_cast<ValueKind>(
                 store_->column(p->lhs()).kinds[row]) == ValueKind::kNull;
    case Predicate::Kind::kIsNotNull:
      return static_cast<ValueKind>(
                 store_->column(p->lhs()).kinds[row]) != ValueKind::kNull;
    case Predicate::Kind::kAnd:
      for (const PredicatePtr& c : p->children()) {
        if (!EvalRowNode(c.get(), row, comparisons)) return false;
      }
      return true;
    case Predicate::Kind::kOr:
      for (const PredicatePtr& c : p->children()) {
        if (EvalRowNode(c.get(), row, comparisons)) return true;
      }
      return false;
    case Predicate::Kind::kNot:
      return !EvalRowNode(p->children()[0].get(), row, comparisons);
  }
  return false;
}

}  // namespace bryql
