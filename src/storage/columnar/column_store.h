#ifndef BRYQL_STORAGE_COLUMNAR_COLUMN_STORE_H_
#define BRYQL_STORAGE_COLUMNAR_COLUMN_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/tuple.h"

namespace bryql {

/// Rows per column segment. Deliberately equal to kDefaultBatchSize and to
/// the morsel size (exec/physical/parallel.h): one segment is one batch is
/// one morsel, so a parallel worker's claim is always segment-aligned and
/// the vectorized kernels never straddle a segment boundary.
inline constexpr size_t kSegmentRows = 1024;

/// Per-segment statistics over one column, maintained incrementally on
/// Append. min/max use the engine's total Value order (kind-first, with
/// the int/double numeric exception), which is exactly the order
/// CompareValues evaluates predicates in — so bound-based pruning is sound
/// for any mix of kinds, including the internal ∅/⊥ symbols.
struct ZoneMap {
  uint32_t count = 0;
  /// Rows holding the ∅ symbol — powers IsNull/IsNotNull pruning.
  uint32_t nulls = 0;
  /// Smallest/largest value in the segment (valid when count > 0).
  Value min;
  Value max;
  /// All values in the segment share this kind — the precondition for the
  /// typed fast-path kernels. False once a second kind appears.
  bool uniform = true;
  ValueKind kind = ValueKind::kNull;
  /// A NaN double was appended. NaN is incomparable under the Value
  /// order, so min/max stop being sound bounds; pruning and all-match
  /// shortcuts are disabled for the segment (kernels fall back to
  /// row-at-a-time evaluation, which handles NaN like the row engine).
  bool unordered = false;
};

/// A column-major copy of a relation's rows: per-column arrays split into
/// fixed segments of kSegmentRows, with dictionary encoding for strings
/// and a ZoneMap per (column, segment).
///
/// Physical layout per column: a kind byte per row plus a 64-bit payload
/// per row — the integer itself, the double's bit pattern, a dictionary
/// code for strings, and 0 for ∅/⊥. The payload arrays are what the
/// vectorized predicate kernels (predicate_kernel.h) loop over.
///
/// The store is append-only and kept in lockstep with the owning
/// Relation's row vector (Relation::Insert appends here too), so row
/// position i means the same tuple in both representations — the
/// invariant the row/columnar differential suite pins.
class ColumnStore {
 public:
  explicit ColumnStore(size_t arity) : columns_(arity) {}

  /// Appends one row. The caller (Relation) guarantees the arity matches
  /// and the tuple is not a duplicate.
  void Append(const Tuple& tuple);

  size_t arity() const { return columns_.size(); }
  size_t rows() const { return rows_; }
  size_t segments() const {
    return (rows_ + kSegmentRows - 1) / kSegmentRows;
  }
  /// Rows in segment `seg` (the last segment may be partial).
  size_t SegmentSize(size_t seg) const {
    const size_t begin = seg * kSegmentRows;
    return rows_ < begin + kSegmentRows ? rows_ - begin : kSegmentRows;
  }

  const ZoneMap& zone(size_t column, size_t seg) const {
    return columns_[column].zones[seg];
  }

  /// One column's storage, exposed to the kernels.
  struct Column {
    /// ValueKind per row (uint8_t to keep the array dense).
    std::vector<uint8_t> kinds;
    /// Payload per row: int value, double bit pattern, dictionary code.
    std::vector<int64_t> data;
    /// String dictionary: code -> string, in first-appearance order.
    std::vector<std::string> dict;
    std::unordered_map<std::string, int64_t> dict_codes;
    std::vector<ZoneMap> zones;
  };
  const Column& column(size_t c) const { return columns_[c]; }

  /// Reconstructs the Value at (column, row).
  Value ValueAt(size_t column, size_t row) const;

  /// Rebuilds row `row` into `*out`, reusing the tuple's storage — the
  /// gather step that fills TupleBatch slots from a selection vector.
  void MaterializeRow(size_t row, Tuple* out) const;

 private:
  std::vector<Column> columns_;
  size_t rows_ = 0;
};

}  // namespace bryql

#endif  // BRYQL_STORAGE_COLUMNAR_COLUMN_STORE_H_
