#include "storage/relation.h"

#include <algorithm>

namespace bryql {

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      rows_(other.rows_),
      index_(other.index_),
      column_indexes_(other.column_indexes_),
      columnar_(other.columnar_
                    ? std::make_unique<ColumnStore>(*other.columnar_)
                    : nullptr) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  rows_ = other.rows_;
  index_ = other.index_;
  column_indexes_ = other.column_indexes_;
  columnar_ = other.columnar_
                  ? std::make_unique<ColumnStore>(*other.columnar_)
                  : nullptr;
  return *this;
}

Result<Relation> Relation::FromRows(std::vector<Tuple> rows) {
  if (rows.empty()) return Relation(0);
  Relation rel(rows.front().arity());
  for (Tuple& t : rows) {
    if (t.arity() != rel.arity()) {
      return Status::InvalidArgument(
          "FromRows: mixed arities " + std::to_string(rel.arity()) + " and " +
          std::to_string(t.arity()));
    }
    BRYQL_RETURN_NOT_OK(rel.Insert(std::move(t)).status());
  }
  return rel;
}

Result<bool> Relation::Insert(Tuple tuple) {
  if (tuple.arity() != arity_) {
    return Status::InvalidArgument(
        "Insert: tuple arity " + std::to_string(tuple.arity()) +
        " does not match relation arity " + std::to_string(arity_));
  }
  auto [it, inserted] = index_.insert(tuple);
  (void)it;
  if (!inserted) return false;
  for (auto& [column, column_index] : column_indexes_) {
    column_index[tuple.at(column)].push_back(rows_.size());
  }
  if (columnar_) columnar_->Append(tuple);
  rows_.push_back(std::move(tuple));
  return true;
}

void Relation::BuildColumnStore() {
  columnar_ = std::make_unique<ColumnStore>(arity_);
  for (const Tuple& t : rows_) columnar_->Append(t);
}

Status Relation::BuildIndex(size_t column) {
  if (column >= arity_) {
    return Status::InvalidArgument(
        "BuildIndex: column " + std::to_string(column) +
        " out of range for arity " + std::to_string(arity_));
  }
  ColumnIndex built;
  for (size_t i = 0; i < rows_.size(); ++i) {
    built[rows_[i].at(column)].push_back(i);
  }
  column_indexes_[column] = std::move(built);
  return Status::Ok();
}

const std::vector<size_t>& Relation::Matches(size_t column,
                                             const Value& value) const {
  static const std::vector<size_t> kEmpty;
  auto it = column_indexes_.find(column);
  if (it == column_indexes_.end()) return kEmpty;
  auto vit = it->second.find(value);
  return vit == it->second.end() ? kEmpty : vit->second;
}

std::vector<Tuple> Relation::SortedRows() const {
  std::vector<Tuple> sorted = rows_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool operator==(const Relation& a, const Relation& b) {
  if (a.arity_ != b.arity_ || a.size() != b.size()) return false;
  for (const Tuple& t : a.rows_) {
    if (!b.Contains(t)) return false;
  }
  return true;
}

std::string Relation::ToString() const {
  std::string out = "[";
  out += std::to_string(size());
  out += " tuples, arity ";
  out += std::to_string(arity_);
  out += "]\n";
  for (const Tuple& t : rows_) {
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

}  // namespace bryql
