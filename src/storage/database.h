#ifndef BRYQL_STORAGE_DATABASE_H_
#define BRYQL_STORAGE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"

namespace bryql {

/// A catalog of named base relations — the "database instance" queries run
/// against. Lookup is by predicate name as it appears in calculus atoms.
class Database {
 public:
  Database() = default;

  /// Registers `relation` under `name`, replacing any previous binding.
  void Put(const std::string& name, Relation relation);

  /// Convenience: registers a relation built from `rows`.
  Status PutRows(const std::string& name, std::vector<Tuple> rows);

  bool Has(const std::string& name) const {
    return relations_.count(name) != 0;
  }

  /// The relation bound to `name`, or NotFound. The name "dom" — unless
  /// shadowed by a stored relation — resolves to the active domain (the
  /// paper's Domain Closure Assumption view, §2.1), cached and rebuilt
  /// after updates.
  Result<const Relation*> Get(const std::string& name) const;

  /// Arity of the relation bound to `name`, or NotFound.
  Result<size_t> ArityOf(const std::string& name) const;

  /// Builds a hash index on `column` of the stored relation `name`.
  Status BuildIndex(const std::string& name, size_t column);

  /// Builds indexes on every column of every stored relation.
  void BuildAllIndexes();

  /// Builds the column-major store for relation `name` (NotFound when no
  /// such relation). Once built it is maintained by inserts, and the
  /// lowerer may pick a columnar scan over it.
  Status EnableColumnar(const std::string& name);

  /// Builds column stores for every relation that lacks one. Idempotent:
  /// the catalog version only advances when a store was actually built,
  /// so prepared plans survive redundant calls.
  void EnableColumnarAll();

  /// Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  /// The active domain: every value appearing in any relation, as a unary
  /// relation. This is the paper's "dom" view under the Domain Closure
  /// Assumption (§2.1); the classical baseline translation ranges
  /// unrestricted variables over it.
  Relation ActiveDomain() const;

  /// Total number of stored tuples across all relations.
  size_t TotalTuples() const;

  /// Catalog version, advanced by every mutation (Put, BuildIndex).
  /// Cached query plans record the version they were prepared against and
  /// are re-prepared when it moves.
  uint64_t version() const { return version_; }

 private:
  std::map<std::string, Relation> relations_;
  /// Cache for the "dom" view; rebuilt when version_ advances.
  mutable Relation domain_cache_{1};
  mutable uint64_t domain_cache_version_ = 0;
  uint64_t version_ = 1;
};

}  // namespace bryql

#endif  // BRYQL_STORAGE_DATABASE_H_
