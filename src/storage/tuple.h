#ifndef BRYQL_STORAGE_TUPLE_H_
#define BRYQL_STORAGE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/hash_util.h"
#include "common/value.h"

namespace bryql {

/// A fixed-arity row of domain values. Tuples are plain value vectors:
/// column naming lives in Schema, positional access everywhere else, which
/// matches the paper's positional algebra (attributes 1..n).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Appends a value; used by operators assembling wider tuples.
  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Empties the tuple but keeps its storage, so a warm slot can be
  /// rebuilt in place (the columnar gather path).
  void Clear() { values_.clear(); }

  /// The concatenation (*this, other) — the building block of joins.
  Tuple Concat(const Tuple& other) const;

  /// The positional projection (values[indices[0]], ...). Indices may
  /// repeat or reorder.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// Renders "(v1, v2, ...)".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

  size_t Hash() const {
    size_t h = 0x51ed270b;
    for (const Value& v : values_) h = HashCombine(h, v.Hash());
    return h;
  }

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace bryql

#endif  // BRYQL_STORAGE_TUPLE_H_
