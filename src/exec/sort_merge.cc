#include "exec/sort_merge.h"

#include <algorithm>

namespace bryql {

namespace {

/// Compares two key tuples, counting one comparison per column touched.
int CompareKeys(const Tuple& a, const Tuple& b, ExecStats* stats) {
  for (size_t i = 0; i < a.arity(); ++i) {
    ++stats->comparisons;
    if (a.at(i) < b.at(i)) return -1;
    if (b.at(i) < a.at(i)) return 1;
  }
  return 0;
}

/// Row positions of `rel` sorted by the key columns `cols`.
std::vector<size_t> SortedOrder(const Relation& rel,
                                const std::vector<size_t>& cols,
                                ExecStats* stats) {
  std::vector<size_t> order(rel.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return CompareKeys(rel.rows()[a].Project(cols),
                       rel.rows()[b].Project(cols), stats) < 0;
  });
  return order;
}

}  // namespace

Result<Relation> SortMergeJoin(const Relation& left, const Relation& right,
                               const std::vector<JoinKey>& keys,
                               JoinVariant variant,
                               const PredicatePtr& predicate,
                               ExecStats* stats) {
  if (predicate != nullptr &&
      (variant == JoinVariant::kSemi || variant == JoinVariant::kAnti)) {
    return Status::InvalidArgument(
        "semi/complement sort-merge joins take no residual predicate");
  }
  std::vector<size_t> lcols, rcols;
  for (const JoinKey& k : keys) {
    if (k.left >= left.arity() || k.right >= right.arity()) {
      return Status::InvalidArgument("sort-merge key out of range");
    }
    lcols.push_back(k.left);
    rcols.push_back(k.right);
  }
  std::vector<size_t> lorder = SortedOrder(left, lcols, stats);
  std::vector<size_t> rorder = SortedOrder(right, rcols, stats);

  size_t out_arity = left.arity();
  if (variant == JoinVariant::kInner ||
      variant == JoinVariant::kLeftOuter) {
    out_arity += right.arity();
  } else if (variant == JoinVariant::kMark) {
    out_arity += 1;
  }
  Relation out(out_arity);

  auto pad_nulls = [&](const Tuple& l) {
    Tuple padded = l;
    for (size_t i = 0; i < right.arity(); ++i) padded.Append(Value::Null());
    return padded;
  };
  auto emit_mark = [&](const Tuple& l, bool found) {
    Tuple marked = l;
    marked.Append(found ? Value::Mark() : Value::Null());
    out.Insert(std::move(marked));
  };

  size_t li = 0, rj = 0;
  while (li < lorder.size()) {
    const Tuple& lrow = left.rows()[lorder[li]];
    Tuple lkey = lrow.Project(lcols);
    // Constraint-guarded variants skip the merge for failing rows — the
    // third clause of Definition 7.
    if ((variant == JoinVariant::kLeftOuter ||
         variant == JoinVariant::kMark) &&
        predicate != nullptr &&
        !predicate->Eval(lrow, &stats->comparisons)) {
      if (variant == JoinVariant::kMark) {
        emit_mark(lrow, false);
      } else {
        out.Insert(pad_nulls(lrow));
      }
      ++li;
      continue;
    }
    // Advance the right side to the first key >= lkey.
    while (rj < rorder.size() &&
           CompareKeys(right.rows()[rorder[rj]].Project(rcols), lkey,
                       stats) < 0) {
      ++rj;
    }
    // Does the right side hold this key, and where does its group end?
    size_t group_end = rj;
    while (group_end < rorder.size() &&
           CompareKeys(right.rows()[rorder[group_end]].Project(rcols), lkey,
                       stats) == 0) {
      ++group_end;
    }
    bool found = group_end > rj;
    switch (variant) {
      case JoinVariant::kInner:
        for (size_t g = rj; g < group_end; ++g) {
          Tuple joined = lrow.Concat(right.rows()[rorder[g]]);
          if (predicate == nullptr ||
              predicate->Eval(joined, &stats->comparisons)) {
            out.Insert(std::move(joined));
          }
        }
        break;
      case JoinVariant::kSemi:
        if (found) out.Insert(lrow);
        break;
      case JoinVariant::kAnti:
        if (!found) out.Insert(lrow);
        break;
      case JoinVariant::kLeftOuter:
        if (found) {
          for (size_t g = rj; g < group_end; ++g) {
            out.Insert(lrow.Concat(right.rows()[rorder[g]]));
          }
        } else {
          out.Insert(pad_nulls(lrow));
        }
        break;
      case JoinVariant::kMark:
        emit_mark(lrow, found);
        break;
    }
    ++li;
    // Note: rj stays at the start of the current right group — the next
    // left row may carry the same key.
  }
  stats->tuples_materialized += out.size();
  return out;
}

}  // namespace bryql
