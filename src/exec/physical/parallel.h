#ifndef BRYQL_EXEC_PHYSICAL_PARALLEL_H_
#define BRYQL_EXEC_PHYSICAL_PARALLEL_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/physical_plan.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/physical/operator.h"
#include "exec/stats.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace bryql {

/// Rows per morsel claim. Aligned with kDefaultBatchSize so one claim
/// feeds one output batch in the common configuration; small enough that
/// skewed partitions rebalance (a worker that finishes early claims more),
/// large enough that the claim atomic is touched ~once per thousand rows.
inline constexpr size_t kMorselSize = 1024;

/// An atomic dispenser of row ranges over one scan input. Workers claim
/// [begin, end) morsels until the input is exhausted; collectively the
/// claims cover each row exactly once, so parallel scan admissions total
/// exactly the serial count.
class MorselSource {
 public:
  explicit MorselSource(size_t size) : size_(size) {}

  /// Claims the next morsel; false when the input is exhausted.
  bool Claim(size_t* begin, size_t* end) {
    const size_t b = next_.fetch_add(kMorselSize, std::memory_order_relaxed);
    if (b >= size_) return false;
    *begin = b;
    *end = b + kMorselSize < size_ ? b + kMorselSize : size_;
    return true;
  }

  size_t size() const { return size_; }

 private:
  std::atomic<size_t> next_{0};
  size_t size_;
};

/// A globally shared dedup set, sharded 64 ways by tuple hash so
/// concurrent inserts from different workers rarely contend. Sharing the
/// set (instead of deduping per worker) is what keeps parallel
/// materialize-admission totals *exactly* equal to serial: each globally
/// fresh tuple is admitted exactly once, by whichever worker wins the
/// insert.
class ShardedTupleSet {
 public:
  /// True when `t` was fresh (this call inserted it).
  bool Insert(const Tuple& t) {
    Shard& shard = shards_[ShardOf(TupleHash{}(t))];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.set.insert(t).second;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      n += shard.set.size();
    }
    return n;
  }

 private:
  static constexpr size_t kShards = 64;
  static size_t ShardOf(size_t hash) {
    // unordered_set consumes the low bits; take mixed high bits so the
    // shard choice is independent of the within-shard bucket choice.
    return (hash * 0x9e3779b97f4a7c15ULL) >> 58;
  }
  struct Shard {
    mutable std::mutex mutex;
    TupleSet set;
  };
  std::array<Shard, kShards> shards_;
};

/// The shared build side of one parallel hash/complement join: a 64-way
/// key-sharded multimap (kInner/kLeftOuter, partner values kept) or key
/// set (kSemi/kAnti/kMark, membership only). Built concurrently by the
/// build phase's workers under per-shard locks; after the phase barrier
/// the probe phase reads it lock-free (the fork/join edges of RunOnWorkers
/// provide the happens-before).
class SharedJoinBuild {
 public:
  explicit SharedJoinBuild(bool table_mode) : table_mode_(table_mode) {}

  bool table_mode() const { return table_mode_; }

  /// Build phase (locked). InsertKey returns whether the key was fresh.
  void InsertTable(const Tuple& key, const Tuple& value) {
    Shard& shard = shards_[ShardOf(TupleHash{}(key))];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table[key].push_back(value);
  }
  bool InsertKey(const Tuple& key) {
    Shard& shard = shards_[ShardOf(TupleHash{}(key))];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.keys.insert(key).second;
  }

  /// Probe phase (lock-free; only valid after the build phase barrier).
  const std::vector<Tuple>* Find(const Tuple& key) const {
    const Shard& shard = shards_[ShardOf(TupleHash{}(key))];
    auto it = shard.table.find(key);
    return it == shard.table.end() ? nullptr : &it->second;
  }
  bool Contains(const Tuple& key) const {
    const Shard& shard = shards_[ShardOf(TupleHash{}(key))];
    return shard.keys.count(key) != 0;
  }

 private:
  static constexpr size_t kShards = 64;
  static size_t ShardOf(size_t hash) {
    return (hash * 0x9e3779b97f4a7c15ULL) >> 58;
  }
  struct Shard {
    std::mutex mutex;
    TupleMultiMap table;  // table_mode
    TupleSet keys;        // !table_mode
  };
  bool table_mode_;
  std::array<Shard, kShards> shards_;
};

/// The coordinator's registry of everything a parallel pipeline shares,
/// keyed by PhysicalNode identity. Populated single-threaded between
/// phases (PrepareSpine), read concurrently by workers during a phase —
/// the maps themselves are never mutated while workers run.
///
/// PlanRuntime::Build consults this registry (via PhysicalContext::shared)
/// when instantiating a worker's operator tree:
///   * a node in `relations` becomes a borrowed-relation scan (its morsel
///     source, when present, partitions the materialized rows);
///   * a scan node in `morsels` reads from the shared dispenser instead
///     of scanning [0, n) privately;
///   * a join node in `builds` skips its build side entirely and probes
///     the shared table;
///   * a project/union node in `seen_sets` dedups against the global
///     sharded set instead of a private one.
struct ParallelShared {
  std::unordered_map<const PhysicalNode*, std::unique_ptr<MorselSource>>
      morsels;
  std::unordered_map<const PhysicalNode*, std::unique_ptr<Relation>>
      relations;
  std::unordered_map<const PhysicalNode*, std::unique_ptr<SharedJoinBuild>>
      builds;
  std::unordered_map<const PhysicalNode*, std::unique_ptr<ShardedTupleSet>>
      seen_sets;

  MorselSource* FindMorsels(const PhysicalNode* node) const {
    auto it = morsels.find(node);
    return it == morsels.end() ? nullptr : it->second.get();
  }
  const Relation* FindRelation(const PhysicalNode* node) const {
    auto it = relations.find(node);
    return it == relations.end() ? nullptr : it->second.get();
  }
  const SharedJoinBuild* FindBuild(const PhysicalNode* node) const {
    auto it = builds.find(node);
    return it == builds.end() ? nullptr : it->second.get();
  }
  ShardedTupleSet* FindSeen(const PhysicalNode* node) const {
    auto it = seen_sets.find(node);
    return it == seen_sets.end() ? nullptr : it->second.get();
  }
};

/// Morsel-driven parallel plan execution (the num_threads > 0 path).
///
/// The runtime walks the plan's *spine* — the streaming path from the
/// root through filters, projects, unions, product left inputs and join
/// probe inputs down to the scans — and replicates it once per worker.
/// Everything hanging off the spine is shared, computed exactly once:
/// join build sides are drained (themselves in parallel) into a
/// SharedJoinBuild, product right sides and blocking operators
/// (sort-merge join, divisions, group count) are materialized by the
/// coordinator, and boolean subtrees evaluate through the same
/// first-witness machinery. Spine scans draw morsels from shared
/// dispensers, dedup operators share sharded seen-sets, and the final
/// merge dedups worker outputs through one more sharded set — order-
/// insensitive, which is sound because relations are sets.
///
/// Budget/status parity with serial execution is a design invariant, not
/// an accident: morsels cover each input row exactly once, shared builds
/// and seen-sets admit each materialization exactly once, and per-worker
/// governor shards reconcile real counts (never estimates) into the
/// phase's SharedBudget — so a budget that trips serially trips in
/// parallel and vice versa, with the same status code. The exception is
/// the first-witness non-emptiness test under a *finite tuple budget*,
/// where "witness found" vs. "budget tripped" is a race by nature; that
/// combination falls back to serial so closed queries stay deterministic.
class ParallelRuntime {
 public:
  /// `num_threads` ≥ 1; the Executor maps num_threads == 0 to the serial
  /// PlanRuntime before ever constructing one of these.
  ParallelRuntime(const Database* db, size_t batch_size, ExecStats* stats,
                  ResourceGovernor* governor, size_t num_threads);

  /// Materializes the plan's full answer, partition-parallel.
  Result<Relation> Run(const PhysicalPlanPtr& plan);

  /// Boolean evaluation with the paper's short-circuits: composites
  /// evaluate sequentially (their children each parallel), non-emptiness
  /// races all workers to the first witness and stops the losers through
  /// the phase's stop flag.
  Result<bool> RunBool(const PhysicalPlanPtr& plan);

 private:
  /// One fork/join phase: every worker instantiates `spine_root` against
  /// the shared registry and runs `consume(worker, op, ctx, budget)`.
  /// Worker stats and the phase's SharedBudget are absorbed into the
  /// run's stats/governor before returning.
  Status RunPhase(
      const PhysicalPlanPtr& spine_root,
      const std::function<Status(size_t, PhysicalOperator*, PhysicalContext&,
                                 SharedBudget*)>& consume);

  /// Recursively prepares the spine under `node`: morsel sources for
  /// scans, parallel drains for join builds, coordinator materialization
  /// for blocking/boolean/product-right subtrees, shared seen-sets for
  /// dedup operators.
  Status PrepareSpine(const PhysicalPlanPtr& node);

  /// Drains `node`'s build side (in parallel) into a SharedJoinBuild.
  Status BuildJoinShared(const PhysicalPlanPtr& node);

  /// Runs `node`'s subtree serially on the coordinator. `counted` drains
  /// with per-tuple materialize admissions (the serial semantics of a
  /// product's right side); uncounted matches blocking operators, whose
  /// outputs serial execution streams without admissions.
  Result<Relation> MaterializeSerial(const PhysicalPlanPtr& node,
                                     bool counted);

  const Database* db_;
  size_t batch_size_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
  size_t workers_;
  ParallelShared shared_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_PARALLEL_H_
