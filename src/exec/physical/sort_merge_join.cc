#include "exec/physical/sort_merge_join.h"

#include "exec/sort_merge.h"

namespace bryql {

Status SortMergeJoinOp::Open() {
  BRYQL_RETURN_NOT_OK(left_->Open());
  BRYQL_RETURN_NOT_OK(right_->Open());
  Relation left_rel(left_arity_);
  BRYQL_RETURN_NOT_OK(
      DrainToRelation(left_.get(), left_arity_, ctx_, &left_rel));
  Relation right_rel(right_arity_);
  BRYQL_RETURN_NOT_OK(
      DrainToRelation(right_.get(), right_arity_, ctx_, &right_rel));
  BRYQL_ASSIGN_OR_RETURN(result_,
                         SortMergeJoin(left_rel, right_rel, keys_, variant_,
                                       predicate_, ctx_.stats));
  return Status::Ok();
}

Status SortMergeJoinOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && index_ < result_.rows().size()) {
    *out->AddSlot() = result_.rows()[index_++];
  }
  return Status::Ok();
}

}  // namespace bryql
