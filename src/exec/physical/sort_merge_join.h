#ifndef BRYQL_EXEC_PHYSICAL_SORT_MERGE_JOIN_H_
#define BRYQL_EXEC_PHYSICAL_SORT_MERGE_JOIN_H_

#include <utility>
#include <vector>

#include "algebra/physical_plan.h"
#include "algebra/predicate.h"
#include "exec/physical/operator.h"
#include "storage/relation.h"

namespace bryql {

/// The sort-merge counterpart of HashJoinOp: both inputs are materialized
/// at Open (they must be sorted in full before merging), joined with the
/// shared SortMergeJoin kernel, and the result streams out in batches.
class SortMergeJoinOp : public PhysicalOperator {
 public:
  SortMergeJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
                  size_t left_arity, size_t right_arity,
                  std::vector<JoinKey> keys, JoinVariant variant,
                  PredicatePtr predicate, PhysicalContext ctx)
      : left_(std::move(left)), right_(std::move(right)),
        left_arity_(left_arity), right_arity_(right_arity),
        keys_(std::move(keys)), variant_(variant),
        predicate_(std::move(predicate)), ctx_(ctx), result_(0) {}
  Status Open() override;
  Status NextBatch(TupleBatch* out) override;
  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  size_t left_arity_;
  size_t right_arity_;
  std::vector<JoinKey> keys_;
  JoinVariant variant_;
  PredicatePtr predicate_;
  PhysicalContext ctx_;
  Relation result_;
  size_t index_ = 0;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_SORT_MERGE_JOIN_H_
