#ifndef BRYQL_EXEC_PHYSICAL_RUNTIME_H_
#define BRYQL_EXEC_PHYSICAL_RUNTIME_H_

#include "algebra/physical_plan.h"
#include "common/batch.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/physical/operator.h"
#include "exec/stats.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace bryql {

/// Instantiates a lowered PhysicalNode tree into a fresh operator tree and
/// drives it. A PlanRuntime is per-run state: the same (cached) plan can be
/// handed to many runtimes, each with its own governor and stats sink.
///
/// Instantiation mirrors the volcano engine's iterator construction: the
/// "exec.iterator.open" failpoint and a plan-depth admission fire per node,
/// "exec.scan.open" per base-table scan, and every operator is wrapped in a
/// timing decorator feeding ExecStats::operator_stats.
class PlanRuntime {
 public:
  /// `shared` is null for a serial run; the ParallelRuntime passes its
  /// registry here when instantiating per-worker trees, which redirects
  /// scans/builds/dedup state to the shared structures (see
  /// PhysicalContext::shared).
  PlanRuntime(const Database* db, size_t batch_size, ExecStats* stats,
              ResourceGovernor* governor,
              const ParallelShared* shared = nullptr)
      : ctx_{db, stats, governor, batch_size == 0 ? 1 : batch_size,
             shared} {}

  /// Materializes the plan's full answer.
  Result<Relation> Run(const PhysicalPlanPtr& plan);

  /// Evaluates a boolean plan (kNonEmpty / kBoolNot / kBoolAnd / kBoolOr)
  /// with short-circuiting; a non-boolean plan must have arity 0 and is
  /// true iff its answer is non-empty. The non-emptiness test pulls a
  /// single capacity-1 batch — the paper's first-witness semantics.
  Result<bool> RunBool(const PhysicalPlanPtr& plan);

  /// Instantiates the operator tree without driving it — the parallel
  /// runtime's entry point (each worker drives its own tree).
  Result<PhysicalOpPtr> Instantiate(const PhysicalPlanPtr& plan) {
    return Build(plan, 0);
  }

 private:
  Result<PhysicalOpPtr> Build(const PhysicalPlanPtr& node, size_t depth);

  PhysicalContext ctx_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_RUNTIME_H_
