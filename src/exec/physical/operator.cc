#include "exec/physical/operator.h"

#include "common/failpoints.h"

namespace bryql {

Status DrainToRelation(PhysicalOperator* child, size_t arity,
                       const PhysicalContext& ctx, Relation* out) {
  *out = Relation(arity);
  TupleBatch batch(ctx.batch_size);
  while (true) {
    BRYQL_RETURN_NOT_OK(child->NextBatch(&batch));
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      BRYQL_FAILPOINT("exec.materialize.insert");
      if (!ctx.governor->AdmitMaterialize()) return ctx.governor->status();
      BRYQL_ASSIGN_OR_RETURN(bool fresh, out->Insert(batch[i]));
      if (fresh) ++ctx.stats->tuples_materialized;
    }
  }
  return ctx.governor->status();
}

Status DrainToTable(PhysicalOperator* child, const std::vector<JoinKey>& keys,
                    bool keys_left, const PhysicalContext& ctx,
                    TupleMultiMap* out) {
  TupleBatch batch(ctx.batch_size);
  while (true) {
    BRYQL_RETURN_NOT_OK(child->NextBatch(&batch));
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      BRYQL_FAILPOINT("exec.hash.insert");
      if (!ctx.governor->AdmitMaterialize()) return ctx.governor->status();
      ++ctx.stats->tuples_materialized;
      (*out)[JoinKeyOf(batch[i], keys, keys_left)].push_back(batch[i]);
    }
  }
  return ctx.governor->status();
}

Status DrainToKeySet(PhysicalOperator* child, const std::vector<JoinKey>& keys,
                     bool keys_left, const PhysicalContext& ctx,
                     TupleSet* out) {
  TupleBatch batch(ctx.batch_size);
  while (true) {
    BRYQL_RETURN_NOT_OK(child->NextBatch(&batch));
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      BRYQL_FAILPOINT("exec.hash.insert");
      if (out->insert(JoinKeyOf(batch[i], keys, keys_left)).second) {
        if (!ctx.governor->AdmitMaterialize()) return ctx.governor->status();
        ++ctx.stats->tuples_materialized;
      } else if (!ctx.governor->Tick()) {
        return ctx.governor->status();
      }
    }
  }
  return ctx.governor->status();
}

Status DrainToSet(PhysicalOperator* child, const PhysicalContext& ctx,
                  TupleSet* out) {
  TupleBatch batch(ctx.batch_size);
  while (true) {
    BRYQL_RETURN_NOT_OK(child->NextBatch(&batch));
    if (batch.empty()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      BRYQL_FAILPOINT("exec.materialize.insert");
      if (out->insert(batch[i]).second) {
        if (!ctx.governor->AdmitMaterialize()) return ctx.governor->status();
        ++ctx.stats->tuples_materialized;
      } else if (!ctx.governor->Tick()) {
        return ctx.governor->status();
      }
    }
  }
  return ctx.governor->status();
}

}  // namespace bryql
