#ifndef BRYQL_EXEC_PHYSICAL_SCAN_H_
#define BRYQL_EXEC_PHYSICAL_SCAN_H_

#include <utility>
#include <vector>

#include "algebra/predicate.h"
#include "exec/physical/operator.h"
#include "storage/relation.h"

namespace bryql {

class MorselSource;

/// Full scan over a borrowed row vector (base relations and literals).
/// Every row read is admitted through the governor as a base-table scan.
///
/// With a MorselSource (parallel workers) the scan reads whatever row
/// ranges it can claim from the shared dispenser instead of [0, n);
/// across all workers the claims cover each row exactly once, so the
/// collective scan admissions equal the serial count.
class TableScanOp : public PhysicalOperator {
 public:
  TableScanOp(const std::vector<Tuple>* rows, PhysicalContext ctx,
              MorselSource* morsels = nullptr)
      : rows_(rows), ctx_(ctx), morsels_(morsels),
        limit_(morsels == nullptr ? rows->size() : 0) {}
  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  const std::vector<Tuple>* rows_;
  PhysicalContext ctx_;
  MorselSource* morsels_;
  size_t index_ = 0;
  size_t limit_;  // end of the current morsel (== rows->size() serially)
};

/// Hash-index bucket lookup with a residual filter. Only touched rows
/// count as scanned — the whole point of the index. A MorselSource, when
/// present, partitions the *match list* (not the base table) across
/// workers.
class IndexScanOp : public PhysicalOperator {
 public:
  IndexScanOp(const Relation* rel, const std::vector<size_t>* matches,
              PredicatePtr residual, PhysicalContext ctx,
              MorselSource* morsels = nullptr)
      : rel_(rel), matches_(matches), residual_(std::move(residual)),
        ctx_(ctx), morsels_(morsels),
        limit_(morsels == nullptr ? matches->size() : 0) {}
  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  const Relation* rel_;
  const std::vector<size_t>* matches_;
  PredicatePtr residual_;
  PhysicalContext ctx_;
  MorselSource* morsels_;
  size_t index_ = 0;
  size_t limit_;
};

/// Streams an owned relation (sort-merge results, division results,
/// boolean sub-evaluations). Reads from intermediates are not counted as
/// base-table scans, matching the volcano engine.
class RelationSourceOp : public PhysicalOperator {
 public:
  explicit RelationSourceOp(Relation rel) : rel_(std::move(rel)) {}
  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  Relation rel_;
  size_t index_ = 0;
};

/// Streams rows owned by someone else — in parallel workers, a relation
/// the coordinator materialized once and registered in ParallelShared.
/// Like RelationSourceOp, reads are not admissions (serial execution
/// streams the same intermediate without counting); a MorselSource
/// partitions the rows across the workers sharing them.
class BorrowedRelationScanOp : public PhysicalOperator {
 public:
  explicit BorrowedRelationScanOp(const std::vector<Tuple>* rows,
                                  MorselSource* morsels = nullptr)
      : rows_(rows), morsels_(morsels),
        limit_(morsels == nullptr ? rows->size() : 0) {}
  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  const std::vector<Tuple>* rows_;
  MorselSource* morsels_;
  size_t index_ = 0;
  size_t limit_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_SCAN_H_
