#ifndef BRYQL_EXEC_PHYSICAL_SCAN_H_
#define BRYQL_EXEC_PHYSICAL_SCAN_H_

#include <utility>
#include <vector>

#include "algebra/predicate.h"
#include "exec/physical/operator.h"
#include "storage/relation.h"

namespace bryql {

/// Full scan over a borrowed row vector (base relations and literals).
/// Every row read is admitted through the governor as a base-table scan.
class TableScanOp : public PhysicalOperator {
 public:
  TableScanOp(const std::vector<Tuple>* rows, PhysicalContext ctx)
      : rows_(rows), ctx_(ctx) {}
  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  const std::vector<Tuple>* rows_;
  PhysicalContext ctx_;
  size_t index_ = 0;
};

/// Hash-index bucket lookup with a residual filter. Only touched rows
/// count as scanned — the whole point of the index.
class IndexScanOp : public PhysicalOperator {
 public:
  IndexScanOp(const Relation* rel, const std::vector<size_t>* matches,
              PredicatePtr residual, PhysicalContext ctx)
      : rel_(rel), matches_(matches), residual_(std::move(residual)),
        ctx_(ctx) {}
  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  const Relation* rel_;
  const std::vector<size_t>* matches_;
  PredicatePtr residual_;
  PhysicalContext ctx_;
  size_t index_ = 0;
};

/// Streams an owned relation (sort-merge results, division results,
/// boolean sub-evaluations). Reads from intermediates are not counted as
/// base-table scans, matching the volcano engine.
class RelationSourceOp : public PhysicalOperator {
 public:
  explicit RelationSourceOp(Relation rel) : rel_(std::move(rel)) {}
  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  Relation rel_;
  size_t index_ = 0;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_SCAN_H_
