#include "exec/physical/filter.h"

#include "exec/physical/parallel.h"

namespace bryql {

Status FilterOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (pos_ >= in_.size()) {
      in_.set_capacity(out->capacity());
      BRYQL_RETURN_NOT_OK(child_->NextBatch(&in_));
      if (in_.empty()) break;
      pos_ = 0;
    }
    while (pos_ < in_.size() && !out->full()) {
      Tuple& t = in_[pos_++];
      if (!ctx_.governor->Tick()) return ctx_.governor->status();
      if (predicate_->Eval(t, &ctx_.stats->comparisons)) {
        // Copy, not move: both the input slot and the output slot keep
        // their storage warm.
        *out->AddSlot() = t;
      }
    }
  }
  return Status::Ok();
}

Status ProjectOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (pos_ >= in_.size()) {
      in_.set_capacity(out->capacity());
      BRYQL_RETURN_NOT_OK(child_->NextBatch(&in_));
      if (in_.empty()) break;
      pos_ = 0;
    }
    while (pos_ < in_.size() && !out->full()) {
      Tuple projected = in_[pos_++].Project(columns_);
      const bool fresh = shared_seen_ != nullptr
                             ? shared_seen_->Insert(projected)
                             : seen_.insert(projected).second;
      if (fresh) {
        if (!ctx_.governor->AdmitMaterialize()) return ctx_.governor->status();
        ++ctx_.stats->tuples_materialized;
        out->Add(std::move(projected));
      } else if (!ctx_.governor->Tick()) {
        return ctx_.governor->status();
      }
    }
  }
  return Status::Ok();
}

}  // namespace bryql
