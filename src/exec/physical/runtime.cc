#include "exec/physical/runtime.h"

#include <chrono>
#include <exception>
#include <new>
#include <string>
#include <utility>

#include "algebra/predicate.h"
#include "common/failpoints.h"
#include "exec/physical/columnar_scan.h"
#include "exec/physical/division.h"
#include "exec/physical/filter.h"
#include "exec/physical/hash_join.h"
#include "exec/physical/parallel.h"
#include "exec/physical/scan.h"
#include "exec/physical/set_ops.h"
#include "exec/physical/sort_merge_join.h"

namespace bryql {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Decorator feeding ExecStats::operator_stats, and the engine's
/// exception-isolation barrier: every Open/NextBatch/Close dispatch runs
/// inside try/catch, so a throwing operator — std::bad_alloc under memory
/// pressure, a std::exception escaping operator code, or the
/// "exec.physical.throw" failpoint simulating either — surfaces as a
/// well-formed kInternal naming the operator instead of unwinding out of
/// PlanRuntime::Run (or, worse, out of a ThreadPool worker closure, which
/// would terminate the process). It holds an *index* into the stats
/// vector, not a pointer — the vector grows while the plan is being
/// instantiated.
class TimedOp : public PhysicalOperator {
 public:
  TimedOp(PhysicalOpPtr inner, std::string label, ExecStats* stats,
          size_t index, ResourceGovernor* governor)
      : inner_(std::move(inner)), label_(std::move(label)), stats_(stats),
        index_(index), governor_(governor) {}
  Status Open() override {
    const uint64_t start = NowNs();
    Status status = Guarded([&] {
      BRYQL_FAILPOINT_THROW("exec.physical.throw");
      return inner_->Open();
    });
    stats_->operator_stats[index_].open_ns += NowNs() - start;
    return status;
  }
  Status NextBatch(TupleBatch* out) override {
    const uint64_t start = NowNs();
    Status status = Guarded([&] {
      BRYQL_FAILPOINT_THROW("exec.physical.throw");
      return inner_->NextBatch(out);
    });
    OperatorStats& os = stats_->operator_stats[index_];
    os.next_ns += NowNs() - start;
    ++os.batches;
    os.rows += out->size();
    return status;
  }
  void Close() override {
    // Close is void; a throw here is contained by latching the governor,
    // so the run still finishes with a non-OK Status instead of a crash.
    Status status = Guarded([&] {
      inner_->Close();
      return Status::Ok();
    });
    if (!status.ok() && governor_ != nullptr) governor_->Trip(status);
  }

 private:
  template <typename Fn>
  Status Guarded(const Fn& fn) {
    // ContainedException (still kInternal) rather than Internal: the tag
    // marks the retryable barrier class for the service layer, while a
    // deterministic invariant breach stays a plain, non-retried Internal.
    try {
      return fn();
    } catch (const std::bad_alloc&) {
      return Status::ContainedException("operator '" + label_ +
                                        "' ran out of memory (bad_alloc)");
    } catch (const std::exception& e) {
      return Status::ContainedException("operator '" + label_ +
                                        "' threw: " + e.what());
    } catch (...) {
      return Status::ContainedException("operator '" + label_ +
                                        "' threw a non-standard exception");
    }
  }

  PhysicalOpPtr inner_;
  std::string label_;
  ExecStats* stats_;
  size_t index_;
  ResourceGovernor* governor_;
};

}  // namespace

Result<PhysicalOpPtr> PlanRuntime::Build(const PhysicalPlanPtr& node,
                                         size_t depth) {
  // Operator instantiation: fault-injection site, plan-depth admission,
  // and a deadline/cancellation poll before any child work starts — the
  // same protocol as the volcano engine's iterator construction.
  BRYQL_FAILPOINT("exec.iterator.open");
  GovernorDepthGuard depth_guard(ctx_.governor);
  if (!depth_guard.ok()) return ctx_.governor->status();
  BRYQL_RETURN_NOT_OK(ctx_.governor->CheckNow());
  ++ctx_.stats->operators;
  const size_t op_index = ctx_.stats->operator_stats.size();
  ctx_.stats->operator_stats.push_back(
      OperatorStats{node->Label(), depth, 0, 0, 0, 0});

  PhysicalOpPtr op;
  // Parallel workers: a node the coordinator already materialized (a
  // blocking operator, a boolean subtree, …) is replaced wholesale by a
  // scan over the shared result — morsel-partitioned, with no admissions,
  // exactly like the serial BlockingResultOp streaming it would be.
  if (ctx_.shared != nullptr) {
    if (const Relation* rel = ctx_.shared->FindRelation(node.get())) {
      op = PhysicalOpPtr(new BorrowedRelationScanOp(
          &rel->rows(), ctx_.shared->FindMorsels(node.get())));
      return PhysicalOpPtr(new TimedOp(std::move(op), node->Label(),
                                       ctx_.stats, op_index, ctx_.governor));
    }
  }
  // In serial runs every Find* below is a null `shared` short-circuit;
  // the decisions are per *node*, so the per-tuple hot paths are shared
  // between both modes unchanged.
  MorselSource* morsels =
      ctx_.shared == nullptr ? nullptr : ctx_.shared->FindMorsels(node.get());
  switch (node->kind) {
    case PhysicalKind::kTableScan: {
      BRYQL_FAILPOINT("exec.scan.open");
      BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                             ctx_.db->Get(node->relation_name));
      op = PhysicalOpPtr(new TableScanOp(&rel->rows(), ctx_, morsels));
      break;
    }
    case PhysicalKind::kLiteralScan: {
      op = PhysicalOpPtr(
          new TableScanOp(&node->literal->rows(), ctx_, morsels));
      break;
    }
    case PhysicalKind::kIndexScan: {
      BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                             ctx_.db->Get(node->relation_name));
      if (!rel->HasIndex(node->index_column)) {
        // The index the plan was lowered against no longer exists (the
        // plan is stale, e.g. cached across a catalog change). Recover by
        // re-applying the full selection over a table scan.
        std::vector<PredicatePtr> parts;
        parts.push_back(Predicate::ColVal(CompareOp::kEq, node->index_column,
                                          node->index_value));
        if (node->predicate != nullptr) parts.push_back(node->predicate);
        PredicatePtr full = parts.size() == 1 ? std::move(parts[0])
                                              : Predicate::And(std::move(parts));
        PhysicalOpPtr scan(new TableScanOp(&rel->rows(), ctx_, morsels));
        op = PhysicalOpPtr(
            new FilterOp(std::move(scan), std::move(full), ctx_));
        break;
      }
      ++ctx_.stats->hash_probes;
      op = PhysicalOpPtr(new IndexScanOp(
          rel, &rel->Matches(node->index_column, node->index_value),
          node->predicate, ctx_, morsels));
      break;
    }
    case PhysicalKind::kColumnarScan: {
      BRYQL_FAILPOINT("exec.scan.open");
      BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                             ctx_.db->Get(node->relation_name));
      if (rel->column_store() == nullptr) {
        // The column store the plan was lowered against no longer exists
        // (stale cached plan, or the relation was replaced). Recover on
        // the row path: full scan plus the pushed-down predicate.
        PhysicalOpPtr scan(new TableScanOp(&rel->rows(), ctx_, morsels));
        op = node->predicate == nullptr
                 ? std::move(scan)
                 : PhysicalOpPtr(
                       new FilterOp(std::move(scan), node->predicate, ctx_));
        break;
      }
      op = PhysicalOpPtr(new ColumnarScanOp(rel->column_store(),
                                            node->predicate, ctx_, morsels));
      break;
    }
    case PhysicalKind::kFilter: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                             Build(node->children[0], depth + 1));
      op = PhysicalOpPtr(
          new FilterOp(std::move(child), node->predicate, ctx_));
      break;
    }
    case PhysicalKind::kProject: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                             Build(node->children[0], depth + 1));
      ShardedTupleSet* seen =
          ctx_.shared == nullptr ? nullptr : ctx_.shared->FindSeen(node.get());
      op = PhysicalOpPtr(
          new ProjectOp(std::move(child), node->columns, ctx_, seen));
      break;
    }
    case PhysicalKind::kProduct: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr left,
                             Build(node->children[0], depth + 1));
      // Parallel workers: the coordinator drained the right side once
      // (with the serial per-tuple admissions) and registered it; every
      // worker's product borrows those rows instead of re-draining —
      // which would multiply the admission count by the worker count.
      if (ctx_.shared != nullptr) {
        if (const Relation* rel =
                ctx_.shared->FindRelation(node->children[1].get())) {
          op = PhysicalOpPtr(new ProductOp(std::move(left), rel, ctx_));
          break;
        }
      }
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                             Build(node->children[1], depth + 1));
      op = PhysicalOpPtr(new ProductOp(std::move(left), std::move(right),
                                       node->children[1]->arity, ctx_));
      break;
    }
    case PhysicalKind::kHashJoin: {
      // Parallel workers: a pre-built SharedJoinBuild replaces the build
      // side wholesale — only the probe child is instantiated, and the
      // build-side slot stays null.
      const SharedJoinBuild* shared_build =
          ctx_.shared == nullptr ? nullptr : ctx_.shared->FindBuild(node.get());
      if (shared_build != nullptr) {
        const size_t probe_index = node->build_left ? 1 : 0;
        BRYQL_ASSIGN_OR_RETURN(
            PhysicalOpPtr probe, Build(node->children[probe_index], depth + 1));
        PhysicalOpPtr left = probe_index == 0 ? std::move(probe) : nullptr;
        PhysicalOpPtr right = probe_index == 1 ? std::move(probe) : nullptr;
        op = PhysicalOpPtr(new HashJoinOp(
            std::move(left), std::move(right), node->keys, node->variant,
            node->predicate, node->build_left, node->pad_arity, ctx_,
            shared_build));
        break;
      }
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr left,
                             Build(node->children[0], depth + 1));
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                             Build(node->children[1], depth + 1));
      op = PhysicalOpPtr(new HashJoinOp(
          std::move(left), std::move(right), node->keys, node->variant,
          node->predicate, node->build_left, node->pad_arity, ctx_));
      break;
    }
    case PhysicalKind::kSortMergeJoin: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr left,
                             Build(node->children[0], depth + 1));
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                             Build(node->children[1], depth + 1));
      op = PhysicalOpPtr(new SortMergeJoinOp(
          std::move(left), std::move(right), node->children[0]->arity,
          node->children[1]->arity, node->keys, node->variant,
          node->predicate, ctx_));
      break;
    }
    case PhysicalKind::kDivision: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr left,
                             Build(node->children[0], depth + 1));
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                             Build(node->children[1], depth + 1));
      op = PhysicalOpPtr(new DivisionOp(std::move(left), std::move(right),
                                        node->children[0]->arity,
                                        node->children[1]->arity, ctx_));
      break;
    }
    case PhysicalKind::kGroupDivision: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr left,
                             Build(node->children[0], depth + 1));
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                             Build(node->children[1], depth + 1));
      op = PhysicalOpPtr(new GroupDivisionOp(
          std::move(left), std::move(right), node->children[0]->arity,
          node->children[1]->arity, node->group_arity, ctx_));
      break;
    }
    case PhysicalKind::kGroupCount: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                             Build(node->children[0], depth + 1));
      op = PhysicalOpPtr(
          new GroupCountOp(std::move(child), node->group_arity, ctx_));
      break;
    }
    case PhysicalKind::kUnion: {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr left,
                             Build(node->children[0], depth + 1));
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr right,
                             Build(node->children[1], depth + 1));
      ShardedTupleSet* seen =
          ctx_.shared == nullptr ? nullptr : ctx_.shared->FindSeen(node.get());
      op = PhysicalOpPtr(
          new UnionOp(std::move(left), std::move(right), ctx_, seen));
      break;
    }
    case PhysicalKind::kNonEmpty:
    case PhysicalKind::kBoolNot:
    case PhysicalKind::kBoolAnd:
    case PhysicalKind::kBoolOr: {
      // A boolean subtree in relational context evaluates to the 0-ary
      // relation {()} (true) or {} (false).
      BRYQL_ASSIGN_OR_RETURN(bool value, RunBool(node));
      Relation rel(0);
      if (value) {
        BRYQL_RETURN_NOT_OK(rel.Insert(Tuple{}).status());
      }
      op = PhysicalOpPtr(new RelationSourceOp(std::move(rel)));
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown physical kind");
  return PhysicalOpPtr(new TimedOp(std::move(op), node->Label(), ctx_.stats,
                                   op_index, ctx_.governor));
}

Result<Relation> PlanRuntime::Run(const PhysicalPlanPtr& plan) {
  BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr op, Build(plan, 0));
  BRYQL_RETURN_NOT_OK(op->Open());
  Relation rel(plan->arity);
  Status drained = DrainToRelation(op.get(), plan->arity, ctx_, &rel);
  op->Close();
  BRYQL_RETURN_NOT_OK(drained);
  // A fault contained during Close (exception barrier) latches the
  // governor rather than interrupting the drain; don't report a clean
  // answer over it.
  BRYQL_RETURN_NOT_OK(ctx_.governor->status());
  return rel;
}

Result<bool> PlanRuntime::RunBool(const PhysicalPlanPtr& plan) {
  switch (plan->kind) {
    case PhysicalKind::kNonEmpty: {
      // The paper's non-emptiness test: pull a single witness.
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                             Build(plan->children[0], 0));
      BRYQL_RETURN_NOT_OK(op->Open());
      TupleBatch batch(1);
      Status status = op->NextBatch(&batch);
      op->Close();
      BRYQL_RETURN_NOT_OK(status);
      // A tripped governor must not masquerade as "empty".
      BRYQL_RETURN_NOT_OK(ctx_.governor->status());
      return !batch.empty();
    }
    case PhysicalKind::kBoolNot: {
      BRYQL_ASSIGN_OR_RETURN(bool v, RunBool(plan->children[0]));
      return !v;
    }
    case PhysicalKind::kBoolAnd: {
      for (const PhysicalPlanPtr& child : plan->children) {
        BRYQL_ASSIGN_OR_RETURN(bool v, RunBool(child));
        if (!v) return false;  // short-circuit
      }
      return true;
    }
    case PhysicalKind::kBoolOr: {
      for (const PhysicalPlanPtr& child : plan->children) {
        BRYQL_ASSIGN_OR_RETURN(bool v, RunBool(child));
        if (v) return true;  // short-circuit
      }
      return false;
    }
    default: {
      if (plan->arity != 0) {
        return Status::InvalidArgument(
            "boolean evaluation of a plan of arity " +
            std::to_string(plan->arity));
      }
      BRYQL_ASSIGN_OR_RETURN(Relation rel, Run(plan));
      return !rel.empty();
    }
  }
}

}  // namespace bryql
