#ifndef BRYQL_EXEC_PHYSICAL_COLUMNAR_SCAN_H_
#define BRYQL_EXEC_PHYSICAL_COLUMNAR_SCAN_H_

#include <utility>
#include <vector>

#include "algebra/predicate.h"
#include "exec/physical/operator.h"
#include "storage/columnar/column_store.h"
#include "storage/columnar/predicate_kernel.h"

namespace bryql {

class MorselSource;

/// Scan + filter fused over a relation's column store: per segment, a
/// zone-map verdict either skips the segment (kNone), emits it wholesale
/// (kAll), or runs the vectorized kernels into a selection vector whose
/// survivors are gathered into the output batch (predicate pushdown — the
/// plan has no separate Filter node above this scan).
///
/// Budget parity with the row path is a hard invariant, not an
/// aspiration: every segment's rows — pruned or evaluated — pass
/// AdmitScanBulk, so `scanned` budgets and counters match a TableScan +
/// Filter execution of the same plan exactly. Pruning saves *value work*
/// (comparisons and cache misses), never admission.
///
/// A capacity-1 consumer (the NonEmpty first-witness pull) switches the
/// operator to row-at-a-time admission and evaluation, preserving the
/// volcano engine's guarantee that exactly w+1 rows are admitted when the
/// witness sits at row w. Pruned segments are still admitted in bulk —
/// they provably cannot contain the witness, and the row path would scan
/// straight past those rows anyway.
///
/// With a MorselSource (parallel workers), claims are morsel-sized and
/// morsel-aligned, and one morsel is one segment (kSegmentRows ==
/// kMorselSize), so workers never split a segment's zone verdict.
class ColumnarScanOp : public PhysicalOperator {
 public:
  ColumnarScanOp(const ColumnStore* store, PredicatePtr predicate,
                 PhysicalContext ctx, MorselSource* morsels = nullptr)
      : store_(store), predicate_(std::move(predicate)),
        kernel_(store, predicate_.get()), ctx_(ctx), morsels_(morsels),
        limit_(morsels == nullptr ? store->rows() : 0) {}

  Status Open() override { return Status::Ok(); }
  Status NextBatch(TupleBatch* out) override;

 private:
  /// Zone verdict for `seg`, cached so witness-mode re-entries and the
  /// per-batch loop test each segment once.
  PredicateKernel::Zone ZoneOf(size_t seg);
  /// Bumps segments_scanned / segments_pruned once per segment even when
  /// capacity-1 pulls re-enter it across many NextBatch calls.
  void CountSegment(size_t seg, bool pruned);

  const ColumnStore* store_;
  PredicatePtr predicate_;
  PredicateKernel kernel_;
  PhysicalContext ctx_;
  MorselSource* morsels_;
  size_t index_ = 0;
  size_t limit_;  // end of the current morsel (== store rows serially)

  /// Selected-but-not-yet-emitted rows of the segment last evaluated.
  std::vector<size_t> sel_;
  size_t sel_pos_ = 0;

  size_t cached_seg_ = static_cast<size_t>(-1);
  PredicateKernel::Zone cached_zone_ = PredicateKernel::Zone::kMaybe;
  size_t counted_seg_ = static_cast<size_t>(-1);
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_COLUMNAR_SCAN_H_
