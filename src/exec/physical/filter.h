#ifndef BRYQL_EXEC_PHYSICAL_FILTER_H_
#define BRYQL_EXEC_PHYSICAL_FILTER_H_

#include <utility>
#include <vector>

#include "algebra/predicate.h"
#include "exec/physical/operator.h"

namespace bryql {

class ShardedTupleSet;

/// σ_pred over a batched stream. Requests child batches no larger than the
/// requested output capacity, so selective downstream pulls (first-witness
/// tests) never over-read the input.
class FilterOp : public PhysicalOperator {
 public:
  FilterOp(PhysicalOpPtr child, PredicatePtr predicate, PhysicalContext ctx)
      : child_(std::move(child)), predicate_(std::move(predicate)),
        ctx_(ctx), in_(1) {}
  Status Open() override { return child_->Open(); }
  Status NextBatch(TupleBatch* out) override;
  void Close() override { child_->Close(); }

 private:
  PhysicalOpPtr child_;
  PredicatePtr predicate_;
  PhysicalContext ctx_;
  TupleBatch in_;
  size_t pos_ = 0;
};

/// π_cols with streaming dedup (set semantics: duplicates collapse). Each
/// fresh output tuple is one dedup-set insertion and therefore one
/// materialization admission, as in the volcano engine.
///
/// With a shared seen-set (parallel workers) freshness is decided against
/// the global ShardedTupleSet, so the same tuple reached through two
/// workers is admitted exactly once — keeping the collective materialize
/// count equal to the serial run's.
class ProjectOp : public PhysicalOperator {
 public:
  ProjectOp(PhysicalOpPtr child, std::vector<size_t> columns,
            PhysicalContext ctx, ShardedTupleSet* shared_seen = nullptr)
      : child_(std::move(child)), columns_(std::move(columns)), ctx_(ctx),
        shared_seen_(shared_seen), in_(1) {}
  Status Open() override { return child_->Open(); }
  Status NextBatch(TupleBatch* out) override;
  void Close() override { child_->Close(); }

 private:
  PhysicalOpPtr child_;
  std::vector<size_t> columns_;
  PhysicalContext ctx_;
  ShardedTupleSet* shared_seen_;
  TupleBatch in_;
  size_t pos_ = 0;
  TupleSet seen_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_FILTER_H_
