#include "exec/physical/set_ops.h"

#include "exec/physical/parallel.h"

namespace bryql {

Status UnionOp::NextBatch(TupleBatch* out) {
  out->Clear();
  Tuple t;  // reused across pulls; the cursor copy-assigns into it
  while (!out->full()) {
    bool have = false;
    BRYQL_RETURN_NOT_OK((on_left_ ? left_cursor_ : right_cursor_)
                            .Next(&t, &have, out->capacity()));
    if (!have) {
      if (!on_left_) break;
      on_left_ = false;
      continue;
    }
    const bool fresh = shared_seen_ != nullptr ? shared_seen_->Insert(t)
                                               : seen_.insert(t).second;
    if (fresh) {
      if (!ctx_.governor->AdmitMaterialize()) return ctx_.governor->status();
      ++ctx_.stats->tuples_materialized;
      *out->AddSlot() = t;
    } else if (!ctx_.governor->Tick()) {
      return ctx_.governor->status();
    }
  }
  return Status::Ok();
}

}  // namespace bryql
