#ifndef BRYQL_EXEC_PHYSICAL_OPERATOR_H_
#define BRYQL_EXEC_PHYSICAL_OPERATOR_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/expr.h"  // JoinKey
#include "common/batch.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/stats.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace bryql {

struct ParallelShared;

/// Per-run context shared by every operator of one instantiated plan:
/// catalog, counters, the run's ResourceGovernor, and the configured batch
/// size. Plain borrowed pointers — the runtime driving the plan owns (or
/// outlives) all of them.
///
/// `shared` is null in serial runs (the common case — every operator's
/// hot path is untouched) and points at the coordinator's ParallelShared
/// registry inside a parallel worker, where it redirects scans to morsel
/// dispensers, joins to pre-built shared tables, and dedup operators to
/// sharded global seen-sets. The redirection is decided once per node at
/// instantiation time (PlanRuntime::Build), never per tuple.
struct PhysicalContext {
  const Database* db = nullptr;
  ExecStats* stats = nullptr;
  ResourceGovernor* governor = nullptr;
  size_t batch_size = kDefaultBatchSize;
  const ParallelShared* shared = nullptr;
};

/// A physical operator instance: runtime state for one PhysicalNode of a
/// lowered plan. Operators move data in batches instead of one virtual
/// call per tuple:
///
///   Open()      — acquire inputs, build state (hash tables, sorted runs,
///                 division groups); opens children first.
///   NextBatch() — clear `out`, fill it with up to out->capacity() tuples.
///                 An OK status with an *empty* batch means exhausted.
///                 Operators honour the requested capacity and request no
///                 more than that from their children, so a capacity-1
///                 pull (the non-emptiness test) keeps the volcano
///                 engine's first-witness guarantees.
///   Close()     — release state; optional.
///
/// Resource governance mirrors the volcano engine admission-for-admission:
/// base reads pass AdmitScan, intermediate insertions AdmitMaterialize,
/// and inner loops Tick. Because NextBatch returns Status (unlike the
/// bool-returning volcano Next), a tripped governor surfaces directly as
/// the governor's latched Status instead of masquerading as exhaustion.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;
  virtual Status Open() = 0;
  virtual Status NextBatch(TupleBatch* out) = 0;
  virtual void Close() {}
};

using PhysicalOpPtr = std::unique_ptr<PhysicalOperator>;

using TupleSet = std::unordered_set<Tuple, TupleHash>;
using TupleMultiMap = std::unordered_map<Tuple, std::vector<Tuple>, TupleHash>;

/// The key columns of `t` for one side of an equi-join ("i = j" in the
/// paper's conj notation).
inline Tuple JoinKeyOf(const Tuple& t, const std::vector<JoinKey>& keys,
                       bool left) {
  std::vector<Value> values;
  values.reserve(keys.size());
  for (const JoinKey& k : keys) values.push_back(t.at(left ? k.left : k.right));
  return Tuple(std::move(values));
}

/// Adapts a batched child to one-tuple-at-a-time pulls, buffering one
/// batch internally. `capacity` is forwarded to the child per refill, so a
/// capacity-1 consumer induces capacity-1 pulls all the way down.
class BatchCursor {
 public:
  explicit BatchCursor(PhysicalOperator* child) : child_(child), buf_(1) {}

  /// Fetches the next tuple into `*out`; `*have` is false at exhaustion.
  Status Next(Tuple* out, bool* have, size_t capacity) {
    if (pos_ >= buf_.size()) {
      buf_.set_capacity(capacity);
      BRYQL_RETURN_NOT_OK(child_->NextBatch(&buf_));
      pos_ = 0;
      if (buf_.empty()) {
        *have = false;
        return Status::Ok();
      }
    }
    // Copy-assign, not move: the slot keeps its storage for the next
    // refill and `*out` (a long-lived caller buffer) reuses its own, so
    // the steady-state pull is allocation-free.
    *out = buf_[pos_++];
    *have = true;
    return Status::Ok();
  }

 private:
  PhysicalOperator* child_;
  TupleBatch buf_;
  size_t pos_ = 0;
};

/// Drain helpers used by blocking edges of a plan (hash builds, sort
/// inputs, division inputs). Each mirrors the volcano engine's admission
/// and fault-injection pattern for the same edge, so batched and
/// tuple-at-a-time runs trip the governor on the same tuple.

/// Fully drains `child` into a relation: every tuple is admitted as a
/// materialization, fresh insertions are counted ("exec.materialize.insert"
/// failpoint).
Status DrainToRelation(PhysicalOperator* child, size_t arity,
                       const PhysicalContext& ctx, Relation* out);

/// Drains `child` into a hash multimap keyed on the right-side join key.
/// Every tuple is admitted and counted ("exec.hash.insert" failpoint) —
/// a hash build keeps duplicates as partner values.
Status DrainToTable(PhysicalOperator* child, const std::vector<JoinKey>& keys,
                    bool keys_left, const PhysicalContext& ctx,
                    TupleMultiMap* out);

/// Drains `child` into a set of join keys: fresh keys are admitted and
/// counted, duplicates only tick ("exec.hash.insert" failpoint).
Status DrainToKeySet(PhysicalOperator* child, const std::vector<JoinKey>& keys,
                     bool keys_left, const PhysicalContext& ctx,
                     TupleSet* out);

/// Drains `child` into a set of whole tuples: fresh tuples are admitted
/// and counted, duplicates only tick ("exec.materialize.insert" failpoint).
Status DrainToSet(PhysicalOperator* child, const PhysicalContext& ctx,
                  TupleSet* out);

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_OPERATOR_H_
