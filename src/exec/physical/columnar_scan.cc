#include "exec/physical/columnar_scan.h"

#include <algorithm>

#include "exec/physical/parallel.h"

namespace bryql {

namespace {

inline bool Advance(MorselSource* morsels, size_t* index, size_t* limit) {
  return morsels != nullptr && morsels->Claim(index, limit);
}

}  // namespace

PredicateKernel::Zone ColumnarScanOp::ZoneOf(size_t seg) {
  if (seg != cached_seg_) {
    cached_seg_ = seg;
    cached_zone_ = kernel_.ZoneTest(seg);
  }
  return cached_zone_;
}

void ColumnarScanOp::CountSegment(size_t seg, bool pruned) {
  if (seg == counted_seg_) return;
  counted_seg_ = seg;
  if (pruned) {
    ++ctx_.stats->segments_pruned;
  } else {
    ++ctx_.stats->segments_scanned;
  }
}

Status ColumnarScanOp::NextBatch(TupleBatch* out) {
  out->Clear();
  const bool per_row = out->capacity() == 1;
  while (!out->full()) {
    // Drain the selection vector of the last evaluated segment first.
    if (sel_pos_ < sel_.size()) {
      store_->MaterializeRow(sel_[sel_pos_++], out->AddSlot());
      continue;
    }
    sel_.clear();
    sel_pos_ = 0;
    if (index_ >= limit_) {
      if (!Advance(morsels_, &index_, &limit_)) break;
    }
    const size_t seg = index_ / kSegmentRows;
    const size_t seg_end = std::min(limit_, (seg + 1) * kSegmentRows);
    const PredicateKernel::Zone zone = ZoneOf(seg);

    if (zone == PredicateKernel::Zone::kNone) {
      // Pruned — but its rows are still budget-admitted: the row engine
      // scans them, and parity of `scanned` is the invariant.
      const size_t n = seg_end - index_;
      if (!ctx_.governor->AdmitScanBulk(n)) return ctx_.governor->status();
      ctx_.stats->tuples_scanned += n;
      CountSegment(seg, /*pruned=*/true);
      index_ = seg_end;
      continue;
    }
    CountSegment(seg, /*pruned=*/false);

    if (per_row) {
      // First-witness mode: admit and evaluate one row per slot so the
      // governor sees the exact row-engine admission sequence.
      if (!ctx_.governor->AdmitScan()) return ctx_.governor->status();
      ++ctx_.stats->tuples_scanned;
      const size_t row = index_++;
      if (zone == PredicateKernel::Zone::kAll ||
          kernel_.EvalRow(row, &ctx_.stats->comparisons)) {
        store_->MaterializeRow(row, out->AddSlot());
      }
      continue;
    }

    const size_t n = seg_end - index_;
    if (!ctx_.governor->AdmitScanBulk(n)) return ctx_.governor->status();
    ctx_.stats->tuples_scanned += n;
    if (zone == PredicateKernel::Zone::kAll) {
      for (size_t r = index_; r < seg_end; ++r) sel_.push_back(r);
    } else {
      kernel_.EvalRange(index_, seg_end, &sel_, &ctx_.stats->comparisons);
    }
    index_ = seg_end;
  }
  return Status::Ok();
}

}  // namespace bryql
