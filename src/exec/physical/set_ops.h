#ifndef BRYQL_EXEC_PHYSICAL_SET_OPS_H_
#define BRYQL_EXEC_PHYSICAL_SET_OPS_H_

#include <utility>

#include "exec/physical/operator.h"

namespace bryql {

class ShardedTupleSet;

/// Union with streaming dedup: the left input streams through first, then
/// the right; duplicates collapse against everything already emitted.
/// Fresh tuples are admitted as materializations, duplicates only tick —
/// the union buys its set semantics with the memory the dedup set costs.
///
/// With a shared seen-set (parallel workers) freshness is global across
/// workers, matching the serial admission count exactly (see ProjectOp).
class UnionOp : public PhysicalOperator {
 public:
  UnionOp(PhysicalOpPtr left, PhysicalOpPtr right, PhysicalContext ctx,
          ShardedTupleSet* shared_seen = nullptr)
      : left_(std::move(left)), right_(std::move(right)),
        left_cursor_(left_.get()), right_cursor_(right_.get()), ctx_(ctx),
        shared_seen_(shared_seen) {}
  Status Open() override {
    BRYQL_RETURN_NOT_OK(left_->Open());
    return right_->Open();
  }
  Status NextBatch(TupleBatch* out) override;
  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  BatchCursor left_cursor_;
  BatchCursor right_cursor_;
  PhysicalContext ctx_;
  ShardedTupleSet* shared_seen_;
  bool on_left_ = true;
  TupleSet seen_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_SET_OPS_H_
