#ifndef BRYQL_EXEC_PHYSICAL_SET_OPS_H_
#define BRYQL_EXEC_PHYSICAL_SET_OPS_H_

#include <utility>

#include "exec/physical/operator.h"

namespace bryql {

/// Union with streaming dedup: the left input streams through first, then
/// the right; duplicates collapse against everything already emitted.
/// Fresh tuples are admitted as materializations, duplicates only tick —
/// the union buys its set semantics with the memory the dedup set costs.
class UnionOp : public PhysicalOperator {
 public:
  UnionOp(PhysicalOpPtr left, PhysicalOpPtr right, PhysicalContext ctx)
      : left_(std::move(left)), right_(std::move(right)),
        left_cursor_(left_.get()), right_cursor_(right_.get()), ctx_(ctx) {}
  Status Open() override {
    BRYQL_RETURN_NOT_OK(left_->Open());
    return right_->Open();
  }
  Status NextBatch(TupleBatch* out) override;
  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  BatchCursor left_cursor_;
  BatchCursor right_cursor_;
  PhysicalContext ctx_;
  bool on_left_ = true;
  TupleSet seen_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_SET_OPS_H_
