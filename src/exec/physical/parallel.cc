#include "exec/physical/parallel.h"

#include <algorithm>
#include <atomic>

#include "common/failpoints.h"
#include "common/thread_pool.h"
#include "exec/physical/runtime.h"

namespace bryql {

namespace {

/// Upper bound on partitions per query: each worker instantiates its own
/// operator tree, so an adversarial num_threads must not translate into
/// unbounded allocation. Far above any useful degree on real hardware.
constexpr size_t kMaxWorkers = 64;

/// The witness-vs-budget race (see class comment): under a finite tuple
/// budget the serial engine deterministically either finds the witness or
/// trips, depending on scan order; racing workers would make that verdict
/// scheduling-dependent.
bool HasFiniteTupleBudget(const QueryOptions& options) {
  return options.max_scanned_tuples != 0 ||
         options.max_materialized_tuples != 0;
}

}  // namespace

ParallelRuntime::ParallelRuntime(const Database* db, size_t batch_size,
                                 ExecStats* stats,
                                 ResourceGovernor* governor,
                                 size_t num_threads)
    : db_(db), batch_size_(batch_size == 0 ? 1 : batch_size), stats_(stats),
      governor_(governor),
      workers_(std::max<size_t>(1, std::min(num_threads, kMaxWorkers))) {}

Status ParallelRuntime::RunPhase(
    const PhysicalPlanPtr& spine_root,
    const std::function<Status(size_t, PhysicalOperator*, PhysicalContext&,
                               SharedBudget*)>& consume) {
  SharedBudget budget(*governor_);
  std::vector<ExecStats> worker_stats(workers_);
  RunOnWorkers(ThreadPool::Shared(), workers_, [&](size_t w) {
    ResourceGovernor shard(&budget);
    PlanRuntime runtime(db_, batch_size_, &worker_stats[w], &shard,
                        &shared_);
    Status status = [&]() -> Status {
      BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr op,
                             runtime.Instantiate(spine_root));
      BRYQL_RETURN_NOT_OK(op->Open());
      PhysicalContext ctx{db_, &worker_stats[w], &shard, batch_size_,
                          &shared_};
      Status consumed = consume(w, op.get(), ctx, &budget);
      op->Close();
      return consumed;
    }();
    // The final chunk of this worker's counts, and the budget check a
    // mid-chunk stop would otherwise have skipped.
    Status reconciled = shard.Reconcile();
    if (status.ok()) status = reconciled;
    if (!status.ok() && !shard.early_stopped()) budget.Trip(status);
  });
  // Per-worker stats merge: totals add up; operator_stats concatenates,
  // so a parallel report lists each spine operator once per worker.
  for (const ExecStats& ws : worker_stats) stats_->Add(ws);
  governor_->AbsorbShared(budget);
  return governor_->status();
}

Result<Relation> ParallelRuntime::MaterializeSerial(
    const PhysicalPlanPtr& node, bool counted) {
  PlanRuntime runtime(db_, batch_size_, stats_, governor_);
  if (counted) return runtime.Run(node);
  BRYQL_ASSIGN_OR_RETURN(PhysicalOpPtr op, runtime.Instantiate(node));
  BRYQL_RETURN_NOT_OK(op->Open());
  Relation rel(node->arity);
  TupleBatch batch(batch_size_);
  Status status;
  while (status.ok()) {
    status = op->NextBatch(&batch);
    if (!status.ok() || batch.empty()) break;
    for (size_t i = 0; i < batch.size() && status.ok(); ++i) {
      status = rel.Insert(batch[i]).status();
    }
  }
  op->Close();
  BRYQL_RETURN_NOT_OK(status);
  BRYQL_RETURN_NOT_OK(governor_->status());
  return rel;
}

Status ParallelRuntime::BuildJoinShared(const PhysicalPlanPtr& node) {
  const PhysicalPlanPtr& build_child =
      node->build_left ? node->children[0] : node->children[1];
  BRYQL_RETURN_NOT_OK(PrepareSpine(build_child));
  const bool table_mode = node->variant == JoinVariant::kInner ||
                          node->variant == JoinVariant::kLeftOuter;
  auto owned = std::make_unique<SharedJoinBuild>(table_mode);
  SharedJoinBuild* build = owned.get();
  shared_.builds.emplace(node.get(), std::move(owned));
  const std::vector<JoinKey>& keys = node->keys;
  const bool keys_left = node->build_left;
  // The parallel counterpart of DrainToTable / DrainToKeySet: same
  // admission rules, same failpoint, the inserts just land in the shared
  // sharded structure — so build-side materialize totals match serial.
  return RunPhase(
      build_child,
      [&](size_t, PhysicalOperator* op, PhysicalContext& ctx,
          SharedBudget*) -> Status {
        TupleBatch batch(ctx.batch_size);
        while (true) {
          BRYQL_RETURN_NOT_OK(op->NextBatch(&batch));
          if (batch.empty()) break;
          for (size_t i = 0; i < batch.size(); ++i) {
            BRYQL_FAILPOINT("exec.hash.insert");
            Tuple key = JoinKeyOf(batch[i], keys, keys_left);
            if (table_mode) {
              if (!ctx.governor->AdmitMaterialize()) {
                return ctx.governor->status();
              }
              ++ctx.stats->tuples_materialized;
              build->InsertTable(key, batch[i]);
            } else if (build->InsertKey(key)) {
              if (!ctx.governor->AdmitMaterialize()) {
                return ctx.governor->status();
              }
              ++ctx.stats->tuples_materialized;
            } else if (!ctx.governor->Tick()) {
              return ctx.governor->status();
            }
          }
        }
        return ctx.governor->status();
      });
}

Status ParallelRuntime::PrepareSpine(const PhysicalPlanPtr& node) {
  switch (node->kind) {
    case PhysicalKind::kTableScan: {
      BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                             db_->Get(node->relation_name));
      shared_.morsels.emplace(
          node.get(), std::make_unique<MorselSource>(rel->rows().size()));
      return Status::Ok();
    }
    case PhysicalKind::kLiteralScan: {
      shared_.morsels.emplace(node.get(), std::make_unique<MorselSource>(
                                              node->literal->rows().size()));
      return Status::Ok();
    }
    case PhysicalKind::kIndexScan: {
      BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                             db_->Get(node->relation_name));
      // Mirror Build's stale-index fallback: without the index the worker
      // trees scan the whole table, so the morsels cover all rows.
      const size_t size =
          rel->HasIndex(node->index_column)
              ? rel->Matches(node->index_column, node->index_value).size()
              : rel->rows().size();
      shared_.morsels.emplace(node.get(),
                              std::make_unique<MorselSource>(size));
      return Status::Ok();
    }
    case PhysicalKind::kColumnarScan: {
      // Morsels are segment-aligned (kMorselSize == kSegmentRows) and
      // sized over the row count, which also covers the stale-store
      // row-path fallback in Build.
      BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                             db_->Get(node->relation_name));
      shared_.morsels.emplace(
          node.get(), std::make_unique<MorselSource>(rel->rows().size()));
      return Status::Ok();
    }
    case PhysicalKind::kFilter:
      return PrepareSpine(node->children[0]);
    case PhysicalKind::kProject: {
      shared_.seen_sets.emplace(node.get(),
                                std::make_unique<ShardedTupleSet>());
      return PrepareSpine(node->children[0]);
    }
    case PhysicalKind::kUnion: {
      shared_.seen_sets.emplace(node.get(),
                                std::make_unique<ShardedTupleSet>());
      BRYQL_RETURN_NOT_OK(PrepareSpine(node->children[0]));
      return PrepareSpine(node->children[1]);
    }
    case PhysicalKind::kProduct: {
      // Serial ProductOp drains its right side with admissions at Open;
      // here the coordinator pays those admissions exactly once and every
      // worker borrows the result.
      BRYQL_ASSIGN_OR_RETURN(
          Relation right,
          MaterializeSerial(node->children[1], /*counted=*/true));
      shared_.relations.emplace(node->children[1].get(),
                                std::make_unique<Relation>(std::move(right)));
      return PrepareSpine(node->children[0]);
    }
    case PhysicalKind::kHashJoin: {
      BRYQL_RETURN_NOT_OK(BuildJoinShared(node));
      return PrepareSpine(node->build_left ? node->children[1]
                                           : node->children[0]);
    }
    case PhysicalKind::kSortMergeJoin:
    case PhysicalKind::kDivision:
    case PhysicalKind::kGroupDivision:
    case PhysicalKind::kGroupCount: {
      // Blocking operators terminate the spine: computed once, serially
      // (their Opens do their own internal admissions, identical to the
      // serial run), and their *output* is shared uncounted — serial
      // execution streams it to the parent without admissions too.
      BRYQL_ASSIGN_OR_RETURN(Relation rel,
                             MaterializeSerial(node, /*counted=*/false));
      auto owned = std::make_unique<Relation>(std::move(rel));
      shared_.morsels.emplace(
          node.get(), std::make_unique<MorselSource>(owned->rows().size()));
      shared_.relations.emplace(node.get(), std::move(owned));
      return Status::Ok();
    }
    case PhysicalKind::kNonEmpty:
    case PhysicalKind::kBoolNot:
    case PhysicalKind::kBoolAnd:
    case PhysicalKind::kBoolOr: {
      // A boolean subtree in relational context, evaluated through the
      // parallel boolean machinery into the shared 0-ary relation.
      BRYQL_ASSIGN_OR_RETURN(bool value, RunBool(node));
      Relation rel(0);
      if (value) {
        BRYQL_RETURN_NOT_OK(rel.Insert(Tuple{}).status());
      }
      auto owned = std::make_unique<Relation>(std::move(rel));
      shared_.morsels.emplace(
          node.get(), std::make_unique<MorselSource>(owned->rows().size()));
      shared_.relations.emplace(node.get(), std::move(owned));
      return Status::Ok();
    }
  }
  return Status::Internal("unknown physical kind");
}

Result<Relation> ParallelRuntime::Run(const PhysicalPlanPtr& plan) {
  if (plan->kind == PhysicalKind::kNonEmpty ||
      plan->kind == PhysicalKind::kBoolNot ||
      plan->kind == PhysicalKind::kBoolAnd ||
      plan->kind == PhysicalKind::kBoolOr) {
    BRYQL_ASSIGN_OR_RETURN(bool value, RunBool(plan));
    Relation rel(0);
    if (value) {
      BRYQL_RETURN_NOT_OK(rel.Insert(Tuple{}).status());
    }
    return rel;
  }
  BRYQL_RETURN_NOT_OK(PrepareSpine(plan));
  // The final order-insensitive merge: every worker drains its partition
  // of the spine with DrainToRelation's admission rules (admit every
  // tuple, count fresh ones), freshness decided by a dedup set shared
  // across workers so the totals match serial exactly. Fresh rows are
  // collected per worker and assembled after the barrier.
  ShardedTupleSet result_set;
  std::vector<std::vector<Tuple>> worker_rows(workers_);
  BRYQL_RETURN_NOT_OK(RunPhase(
      plan,
      [&](size_t w, PhysicalOperator* op, PhysicalContext& ctx,
          SharedBudget*) -> Status {
        TupleBatch batch(ctx.batch_size);
        while (true) {
          BRYQL_RETURN_NOT_OK(op->NextBatch(&batch));
          if (batch.empty()) break;
          for (size_t i = 0; i < batch.size(); ++i) {
            BRYQL_FAILPOINT("exec.materialize.insert");
            if (!ctx.governor->AdmitMaterialize()) {
              return ctx.governor->status();
            }
            if (result_set.Insert(batch[i])) {
              ++ctx.stats->tuples_materialized;
              worker_rows[w].push_back(batch[i]);
            }
          }
        }
        return ctx.governor->status();
      }));
  Relation rel(plan->arity);
  for (std::vector<Tuple>& rows : worker_rows) {
    for (Tuple& t : rows) {
      BRYQL_RETURN_NOT_OK(rel.Insert(std::move(t)).status());
    }
  }
  return rel;
}

Result<bool> ParallelRuntime::RunBool(const PhysicalPlanPtr& plan) {
  switch (plan->kind) {
    case PhysicalKind::kNonEmpty: {
      if (HasFiniteTupleBudget(governor_->options())) {
        // Deterministic fallback: racing workers against a finite budget
        // would make witness-vs-trip scheduling-dependent.
        PlanRuntime runtime(db_, batch_size_, stats_, governor_);
        return runtime.RunBool(plan);
      }
      const PhysicalPlanPtr& child = plan->children[0];
      BRYQL_RETURN_NOT_OK(PrepareSpine(child));
      // The first-witness race: each worker pulls a single capacity-1
      // batch from its partition; the winner raises the phase's stop
      // flag, which every peer's governor shard observes at its next
      // poll and unwinds without an error.
      std::atomic<bool> found{false};
      BRYQL_RETURN_NOT_OK(RunPhase(
          child,
          [&](size_t, PhysicalOperator* op, PhysicalContext& ctx,
              SharedBudget* budget) -> Status {
            TupleBatch batch(1);
            BRYQL_RETURN_NOT_OK(op->NextBatch(&batch));
            // A tripped governor must not masquerade as "empty".
            BRYQL_RETURN_NOT_OK(ctx.governor->status());
            if (!batch.empty()) {
              found.store(true, std::memory_order_relaxed);
              budget->RequestStop();
            }
            return Status::Ok();
          }));
      return found.load(std::memory_order_relaxed);
    }
    case PhysicalKind::kBoolNot: {
      BRYQL_ASSIGN_OR_RETURN(bool v, RunBool(plan->children[0]));
      return !v;
    }
    case PhysicalKind::kBoolAnd: {
      for (const PhysicalPlanPtr& child : plan->children) {
        BRYQL_ASSIGN_OR_RETURN(bool v, RunBool(child));
        if (!v) return false;  // short-circuit
      }
      return true;
    }
    case PhysicalKind::kBoolOr: {
      for (const PhysicalPlanPtr& child : plan->children) {
        BRYQL_ASSIGN_OR_RETURN(bool v, RunBool(child));
        if (v) return true;  // short-circuit
      }
      return false;
    }
    default: {
      if (plan->arity != 0) {
        return Status::InvalidArgument(
            "boolean evaluation of a plan of arity " +
            std::to_string(plan->arity));
      }
      BRYQL_ASSIGN_OR_RETURN(Relation rel, Run(plan));
      return !rel.empty();
    }
  }
}

}  // namespace bryql
