#include "exec/physical/division.h"

#include <cstdint>
#include <unordered_map>

namespace bryql {

Status BlockingResultOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && index_ < result_.rows().size()) {
    *out->AddSlot() = result_.rows()[index_++];
  }
  return Status::Ok();
}

Status DivisionOp::Open() {
  BRYQL_RETURN_NOT_OK(left_->Open());
  BRYQL_RETURN_NOT_OK(right_->Open());
  const size_t p = left_arity_;
  const size_t q = right_arity_;
  TupleSet divisor;
  BRYQL_RETURN_NOT_OK(DrainToSet(right_.get(), ctx_, &divisor));
  std::vector<size_t> prefix_cols, suffix_cols;
  for (size_t i = 0; i < p - q; ++i) prefix_cols.push_back(i);
  for (size_t i = p - q; i < p; ++i) suffix_cols.push_back(i);
  std::unordered_map<Tuple, TupleSet, TupleHash> groups;
  BatchCursor cursor(left_.get());
  Tuple t;  // reused across pulls; the cursor copy-assigns into it
  while (true) {
    bool have = false;
    BRYQL_RETURN_NOT_OK(cursor.Next(&t, &have, ctx_.batch_size));
    if (!have) break;
    if (!ctx_.governor->AdmitMaterialize()) return ctx_.governor->status();
    Tuple prefix = t.Project(prefix_cols);
    Tuple suffix = t.Project(suffix_cols);
    ++ctx_.stats->hash_probes;
    if (divisor.count(suffix)) {
      if (groups[std::move(prefix)].insert(std::move(suffix)).second) {
        ++ctx_.stats->tuples_materialized;
      }
    } else {
      groups.try_emplace(std::move(prefix));
    }
  }
  result_ = Relation(p - q);
  for (auto& [prefix, matched] : groups) {
    if (matched.size() == divisor.size()) {
      BRYQL_RETURN_NOT_OK(result_.Insert(prefix).status());
    }
  }
  return Status::Ok();
}

Status GroupDivisionOp::Open() {
  BRYQL_RETURN_NOT_OK(left_->Open());
  BRYQL_RETURN_NOT_OK(right_->Open());
  const size_t p = left_arity_;
  const size_t q = right_arity_;
  const size_t g = group_arity_;
  const size_t keep_arity = p - q;  // dividend = [keep, group, value]
  std::vector<size_t> t_group_cols, t_value_cols;
  for (size_t i = 0; i < g; ++i) t_group_cols.push_back(i);
  for (size_t i = g; i < q; ++i) t_value_cols.push_back(i);
  std::vector<size_t> d_prefix_cols, d_value_cols, d_group_cols;
  for (size_t i = 0; i < keep_arity + g; ++i) d_prefix_cols.push_back(i);
  for (size_t i = keep_arity; i < keep_arity + g; ++i) {
    d_group_cols.push_back(i);
  }
  for (size_t i = keep_arity + g; i < p; ++i) d_value_cols.push_back(i);

  // Group the divisor: group key → set of values.
  std::unordered_map<Tuple, TupleSet, TupleHash> divisor_groups;
  {
    BatchCursor cursor(right_.get());
    Tuple t;  // reused across pulls; the cursor copy-assigns into it
    while (true) {
      bool have = false;
      BRYQL_RETURN_NOT_OK(cursor.Next(&t, &have, ctx_.batch_size));
      if (!have) break;
      if (!ctx_.governor->AdmitMaterialize()) return ctx_.governor->status();
      if (divisor_groups[t.Project(t_group_cols)]
              .insert(t.Project(t_value_cols))
              .second) {
        ++ctx_.stats->tuples_materialized;
      }
    }
  }
  // Collect matched values per (keep, group) prefix of the dividend.
  std::unordered_map<Tuple, TupleSet, TupleHash> matched;
  {
    BatchCursor cursor(left_.get());
    Tuple t;  // reused across pulls; the cursor copy-assigns into it
    while (true) {
      bool have = false;
      BRYQL_RETURN_NOT_OK(cursor.Next(&t, &have, ctx_.batch_size));
      if (!have) break;
      if (!ctx_.governor->AdmitMaterialize()) return ctx_.governor->status();
      Tuple group = t.Project(d_group_cols);
      ++ctx_.stats->hash_probes;
      auto git = divisor_groups.find(group);
      if (git == divisor_groups.end()) continue;
      Tuple value = t.Project(d_value_cols);
      if (!git->second.count(value)) continue;
      if (matched[t.Project(d_prefix_cols)].insert(std::move(value)).second) {
        ++ctx_.stats->tuples_materialized;
      }
    }
  }
  result_ = Relation(keep_arity + g);
  for (auto& [prefix, values] : matched) {
    // The group is the suffix of the prefix tuple.
    std::vector<size_t> group_in_prefix;
    for (size_t i = keep_arity; i < keep_arity + g; ++i) {
      group_in_prefix.push_back(i);
    }
    auto git = divisor_groups.find(prefix.Project(group_in_prefix));
    if (git != divisor_groups.end() && values.size() == git->second.size()) {
      BRYQL_RETURN_NOT_OK(result_.Insert(prefix).status());
    }
  }
  return Status::Ok();
}

Status GroupCountOp::Open() {
  BRYQL_RETURN_NOT_OK(child_->Open());
  const size_t g = group_arity_;
  std::vector<size_t> group_cols;
  for (size_t i = 0; i < g; ++i) group_cols.push_back(i);
  std::unordered_map<Tuple, int64_t, TupleHash> counts;
  BatchCursor cursor(child_.get());
  Tuple t;  // reused across pulls; the cursor copy-assigns into it
  while (true) {
    bool have = false;
    BRYQL_RETURN_NOT_OK(cursor.Next(&t, &have, ctx_.batch_size));
    if (!have) break;
    if (!ctx_.governor->AdmitMaterialize()) return ctx_.governor->status();
    ++counts[t.Project(group_cols)];
    ++ctx_.stats->tuples_materialized;
  }
  result_ = Relation(g + 1);
  for (auto& [group, count] : counts) {
    Tuple row = group;
    row.Append(Value::Int(count));
    BRYQL_RETURN_NOT_OK(result_.Insert(std::move(row)).status());
  }
  return Status::Ok();
}

}  // namespace bryql
