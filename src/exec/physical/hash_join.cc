#include "exec/physical/hash_join.h"

#include "exec/physical/parallel.h"

namespace bryql {

Status ProductOp::Open() {
  BRYQL_RETURN_NOT_OK(left_->Open());
  if (right_op_ == nullptr) return Status::Ok();  // borrowed, pre-drained
  BRYQL_RETURN_NOT_OK(right_op_->Open());
  return DrainToRelation(right_op_.get(), right_.arity(), ctx_, &right_);
}

Status ProductOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && !left_done_) {
    // A product's output is quadratic in its inputs; every combination
    // ticks so deadlines bite inside the loop.
    if (!ctx_.governor->Tick()) return ctx_.governor->status();
    if (right_index_ == 0) {
      bool have = false;
      BRYQL_RETURN_NOT_OK(
          cursor_.Next(&current_left_, &have, out->capacity()));
      if (!have) {
        left_done_ = true;
        break;
      }
    }
    if (right_index_ < right_view_->rows().size()) {
      out->Add(current_left_.Concat(right_view_->rows()[right_index_++]));
      if (right_index_ == right_view_->rows().size()) right_index_ = 0;
      continue;
    }
    right_index_ = 0;
    if (right_view_->rows().empty()) {
      left_done_ = true;
      break;
    }
  }
  return Status::Ok();
}

HashJoinOp::HashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
                       std::vector<JoinKey> keys, JoinVariant variant,
                       PredicatePtr predicate, bool build_left,
                       size_t pad_arity, PhysicalContext ctx,
                       const SharedJoinBuild* shared_build)
    : left_(std::move(left)), right_(std::move(right)),
      keys_(std::move(keys)), variant_(variant),
      predicate_(std::move(predicate)), build_left_(build_left),
      pad_arity_(pad_arity), ctx_(ctx), shared_build_(shared_build),
      probe_cursor_(build_left ? right_.get() : left_.get()) {}

Status HashJoinOp::Open() {
  // The probe side opens first, the build side is drained second —
  // the same order the volcano engine constructs its iterator tree in,
  // so nested blocking edges admit resources in the same sequence.
  PhysicalOperator* probe = build_left_ ? right_.get() : left_.get();
  PhysicalOperator* build = build_left_ ? left_.get() : right_.get();
  BRYQL_RETURN_NOT_OK(probe->Open());
  if (shared_build_ != nullptr) return Status::Ok();  // built by the phase
  BRYQL_RETURN_NOT_OK(build->Open());
  switch (variant_) {
    case JoinVariant::kInner:
    case JoinVariant::kLeftOuter:
      return DrainToTable(build, keys_, /*keys_left=*/build_left_, ctx_,
                          &table_);
    case JoinVariant::kSemi:
    case JoinVariant::kAnti:
    case JoinVariant::kMark:
      return DrainToKeySet(build, keys_, /*keys_left=*/build_left_, ctx_,
                           &key_set_);
  }
  return Status::Internal("unknown join variant");
}

const std::vector<Tuple>* HashJoinOp::FindMatches(const Tuple& key) const {
  if (shared_build_ != nullptr) return shared_build_->Find(key);
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

bool HashJoinOp::ContainsKey(const Tuple& key) const {
  if (shared_build_ != nullptr) return shared_build_->Contains(key);
  return key_set_.count(key) != 0;
}

Status HashJoinOp::NextBatch(TupleBatch* out) {
  out->Clear();
  switch (variant_) {
    case JoinVariant::kInner:
      return NextInner(out);
    case JoinVariant::kSemi:
    case JoinVariant::kAnti:
      return NextSemiAnti(out);
    case JoinVariant::kLeftOuter:
      return NextOuter(out);
    case JoinVariant::kMark:
      return NextMark(out);
  }
  return Status::Internal("unknown join variant");
}

Status HashJoinOp::NextInner(TupleBatch* out) {
  while (!out->full() && !probe_done_) {
    if (!ctx_.governor->Tick()) return ctx_.governor->status();
    if (matches_ != nullptr && match_index_ < matches_->size()) {
      const Tuple& partner = (*matches_)[match_index_++];
      // Output columns are always left ++ right, whichever side built.
      Tuple candidate = build_left_ ? partner.Concat(current_probe_)
                                    : current_probe_.Concat(partner);
      if (predicate_ == nullptr ||
          predicate_->Eval(candidate, &ctx_.stats->comparisons)) {
        out->Add(std::move(candidate));
      }
      continue;
    }
    matches_ = nullptr;
    bool have = false;
    BRYQL_RETURN_NOT_OK(
        probe_cursor_.Next(&current_probe_, &have, out->capacity()));
    if (!have) {
      probe_done_ = true;
      break;
    }
    ++ctx_.stats->hash_probes;
    ctx_.stats->comparisons += keys_.size();
    const std::vector<Tuple>* found = FindMatches(
        JoinKeyOf(current_probe_, keys_, /*left=*/!build_left_));
    if (found != nullptr) {
      matches_ = found;
      match_index_ = 0;
    }
  }
  return Status::Ok();
}

Status HashJoinOp::NextSemiAnti(TupleBatch* out) {
  while (!out->full() && !probe_done_) {
    bool have = false;
    BRYQL_RETURN_NOT_OK(
        probe_cursor_.Next(&current_probe_, &have, out->capacity()));
    if (!have) {
      probe_done_ = true;
      break;
    }
    ++ctx_.stats->hash_probes;
    ctx_.stats->comparisons += keys_.size();
    bool found =
        ContainsKey(JoinKeyOf(current_probe_, keys_, /*left=*/true));
    if (found != (variant_ == JoinVariant::kAnti)) {
      *out->AddSlot() = current_probe_;
    }
  }
  return Status::Ok();
}

Status HashJoinOp::NextOuter(TupleBatch* out) {
  while (!out->full() && !probe_done_) {
    if (matches_ != nullptr && match_index_ < matches_->size()) {
      out->Add(current_probe_.Concat((*matches_)[match_index_++]));
      continue;
    }
    matches_ = nullptr;
    bool have = false;
    BRYQL_RETURN_NOT_OK(
        probe_cursor_.Next(&current_probe_, &have, out->capacity()));
    if (!have) {
      probe_done_ = true;
      break;
    }
    // Definition 7 constraint: rows failing it are not probed and pad
    // directly with ∅.
    if (predicate_ != nullptr &&
        !predicate_->Eval(current_probe_, &ctx_.stats->comparisons)) {
      out->Add(PadWithNulls(current_probe_));
      continue;
    }
    ++ctx_.stats->hash_probes;
    ctx_.stats->comparisons += keys_.size();
    const std::vector<Tuple>* found =
        FindMatches(JoinKeyOf(current_probe_, keys_, /*left=*/true));
    if (found != nullptr) {
      matches_ = found;
      match_index_ = 0;
      continue;
    }
    out->Add(PadWithNulls(current_probe_));
  }
  return Status::Ok();
}

Status HashJoinOp::NextMark(TupleBatch* out) {
  while (!out->full() && !probe_done_) {
    bool have = false;
    BRYQL_RETURN_NOT_OK(
        probe_cursor_.Next(&current_probe_, &have, out->capacity()));
    if (!have) {
      probe_done_ = true;
      break;
    }
    bool marked = false;
    if (predicate_ == nullptr ||
        predicate_->Eval(current_probe_, &ctx_.stats->comparisons)) {
      ++ctx_.stats->hash_probes;
      ctx_.stats->comparisons += keys_.size();
      marked = ContainsKey(JoinKeyOf(current_probe_, keys_, /*left=*/true));
    }
    current_probe_.Append(marked ? Value::Mark() : Value::Null());
    *out->AddSlot() = current_probe_;
  }
  return Status::Ok();
}

Tuple HashJoinOp::PadWithNulls(const Tuple& t) const {
  Tuple padded = t;
  for (size_t i = 0; i < pad_arity_; ++i) padded.Append(Value::Null());
  return padded;
}

}  // namespace bryql
