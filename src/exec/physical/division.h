#ifndef BRYQL_EXEC_PHYSICAL_DIVISION_H_
#define BRYQL_EXEC_PHYSICAL_DIVISION_H_

#include <utility>

#include "exec/physical/operator.h"
#include "storage/relation.h"

namespace bryql {

/// Streams a blocking operator's precomputed result relation. Division,
/// per-group division and group-count all fully compute at Open and share
/// this output path.
class BlockingResultOp : public PhysicalOperator {
 public:
  Status NextBatch(TupleBatch* out) final;
  void Close() override {}

 protected:
  BlockingResultOp() : result_(0) {}
  Relation result_;

 private:
  size_t index_ = 0;
};

/// dividend ÷ divisor (the paper's one-shot division strategy): tuples
/// over the first p−q columns paired in the dividend with *every* divisor
/// tuple. An empty divisor divides trivially — the result is the
/// projection of the dividend.
class DivisionOp : public BlockingResultOp {
 public:
  DivisionOp(PhysicalOpPtr left, PhysicalOpPtr right, size_t left_arity,
             size_t right_arity, PhysicalContext ctx)
      : left_(std::move(left)), right_(std::move(right)),
        left_arity_(left_arity), right_arity_(right_arity), ctx_(ctx) {}
  Status Open() override;
  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  size_t left_arity_;
  size_t right_arity_;
  PhysicalContext ctx_;
};

/// Per-group division: the divisor is grouped by its leading
/// `group_arity` columns; a (keep, group) pair of the dividend qualifies
/// when it pairs with *every* value of its group. Groups absent from the
/// divisor produce nothing (the translator adds the vacuous-truth guard
/// itself).
class GroupDivisionOp : public BlockingResultOp {
 public:
  GroupDivisionOp(PhysicalOpPtr left, PhysicalOpPtr right, size_t left_arity,
                  size_t right_arity, size_t group_arity, PhysicalContext ctx)
      : left_(std::move(left)), right_(std::move(right)),
        left_arity_(left_arity), right_arity_(right_arity),
        group_arity_(group_arity), ctx_(ctx) {}
  Status Open() override;
  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  size_t left_arity_;
  size_t right_arity_;
  size_t group_arity_;
  PhysicalContext ctx_;
};

/// γ: per-group row counts (set semantics — input rows are already
/// distinct), the workhorse of the QUEL-style counting strategy.
class GroupCountOp : public BlockingResultOp {
 public:
  GroupCountOp(PhysicalOpPtr child, size_t group_arity, PhysicalContext ctx)
      : child_(std::move(child)), group_arity_(group_arity), ctx_(ctx) {}
  Status Open() override;
  void Close() override { child_->Close(); }

 private:
  PhysicalOpPtr child_;
  size_t group_arity_;
  PhysicalContext ctx_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_DIVISION_H_
