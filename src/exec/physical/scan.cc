#include "exec/physical/scan.h"

#include "exec/physical/parallel.h"

namespace bryql {
namespace {

/// Advances a (index, limit) window through its morsel source, if any.
/// Serial scans (no source) initialize limit to the full input size, so
/// this never fires and the hot loop is identical to the pre-parallel
/// code.
inline bool Advance(MorselSource* morsels, size_t* index, size_t* limit) {
  return morsels != nullptr && morsels->Claim(index, limit);
}

}  // namespace

Status TableScanOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (index_ >= limit_) {
      if (!Advance(morsels_, &index_, &limit_)) break;
    }
    if (!ctx_.governor->AdmitScan()) return ctx_.governor->status();
    ++ctx_.stats->tuples_scanned;
    *out->AddSlot() = (*rows_)[index_++];
  }
  return Status::Ok();
}

Status IndexScanOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (index_ >= limit_) {
      if (!Advance(morsels_, &index_, &limit_)) break;
    }
    if (!ctx_.governor->AdmitScan()) return ctx_.governor->status();
    const Tuple& row = rel_->rows()[(*matches_)[index_++]];
    ++ctx_.stats->tuples_scanned;
    if (residual_ == nullptr ||
        residual_->Eval(row, &ctx_.stats->comparisons)) {
      *out->AddSlot() = row;
    }
  }
  return Status::Ok();
}

Status RelationSourceOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && index_ < rel_.rows().size()) {
    *out->AddSlot() = rel_.rows()[index_++];
  }
  return Status::Ok();
}

Status BorrowedRelationScanOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (index_ >= limit_) {
      if (!Advance(morsels_, &index_, &limit_)) break;
    }
    *out->AddSlot() = (*rows_)[index_++];
  }
  return Status::Ok();
}

}  // namespace bryql
