#include "exec/physical/scan.h"

namespace bryql {

Status TableScanOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && index_ < rows_->size()) {
    if (!ctx_.governor->AdmitScan()) return ctx_.governor->status();
    ++ctx_.stats->tuples_scanned;
    *out->AddSlot() = (*rows_)[index_++];
  }
  return Status::Ok();
}

Status IndexScanOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && index_ < matches_->size()) {
    if (!ctx_.governor->AdmitScan()) return ctx_.governor->status();
    const Tuple& row = rel_->rows()[(*matches_)[index_++]];
    ++ctx_.stats->tuples_scanned;
    if (residual_ == nullptr ||
        residual_->Eval(row, &ctx_.stats->comparisons)) {
      *out->AddSlot() = row;
    }
  }
  return Status::Ok();
}

Status RelationSourceOp::NextBatch(TupleBatch* out) {
  out->Clear();
  while (!out->full() && index_ < rel_.rows().size()) {
    *out->AddSlot() = rel_.rows()[index_++];
  }
  return Status::Ok();
}

}  // namespace bryql
