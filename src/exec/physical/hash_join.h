#ifndef BRYQL_EXEC_PHYSICAL_HASH_JOIN_H_
#define BRYQL_EXEC_PHYSICAL_HASH_JOIN_H_

#include <utility>
#include <vector>

#include "algebra/physical_plan.h"
#include "algebra/predicate.h"
#include "exec/physical/operator.h"
#include "storage/relation.h"

namespace bryql {

class SharedJoinBuild;

/// Cartesian product: the right side is fully drained at Open, the left
/// side streams. Every combination (emitted or not) ticks the governor so
/// deadlines bite inside the quadratic loop.
///
/// The borrowed-right constructor is the parallel form: the coordinator
/// has already drained the right side once (with the serial admissions),
/// and every worker's product iterates the same shared rows.
class ProductOp : public PhysicalOperator {
 public:
  ProductOp(PhysicalOpPtr left, PhysicalOpPtr right, size_t right_arity,
            PhysicalContext ctx)
      : left_(std::move(left)), right_op_(std::move(right)),
        right_(right_arity), right_view_(&right_), cursor_(left_.get()),
        ctx_(ctx) {}
  ProductOp(PhysicalOpPtr left, const Relation* borrowed_right,
            PhysicalContext ctx)
      : left_(std::move(left)), right_(0), right_view_(borrowed_right),
        cursor_(left_.get()), ctx_(ctx) {}
  Status Open() override;
  Status NextBatch(TupleBatch* out) override;
  void Close() override {
    left_->Close();
    if (right_op_ != nullptr) right_op_->Close();
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_op_;       // null in borrowed mode
  Relation right_;               // owned drain target (unused borrowed)
  const Relation* right_view_;   // what NextBatch actually iterates
  BatchCursor cursor_;
  PhysicalContext ctx_;
  Tuple current_left_;
  size_t right_index_ = 0;
  bool left_done_ = false;
};

/// The whole hash-join family of the paper behind one operator: inner
/// join, semi-join, complement-join (Definition 6, kAnti), unidirectional
/// outer join, and the space-saving constrained outer join (Definition 7,
/// kMark). The build side is drained into a hash table at Open (a
/// key-multimap for variants that need partner values, a key set for pure
/// membership tests); the probe side streams in batches.
///
/// `build_left` (inner joins only) puts the left input on the build side
/// when the lowering's cost model estimates it smaller; output column
/// order stays left ++ right regardless.
///
/// With a SharedJoinBuild (parallel workers) the build side was drained
/// once, concurrently, before this operator existed: Open skips the drain,
/// probes go to the shared table, and the build-side operator pointer is
/// null. Serial probes pay only a predicted-null branch.
class HashJoinOp : public PhysicalOperator {
 public:
  /// `predicate` is the residual condition for kInner (evaluated on the
  /// concatenated tuple) or the Definition 7 probe constraint for
  /// kLeftOuter/kMark (evaluated on the left tuple); it must be null for
  /// kSemi/kAnti. `pad_arity` is the right-side arity, used by kLeftOuter
  /// to pad partnerless tuples with nulls.
  HashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
             std::vector<JoinKey> keys, JoinVariant variant,
             PredicatePtr predicate, bool build_left, size_t pad_arity,
             PhysicalContext ctx, const SharedJoinBuild* shared_build = nullptr);
  Status Open() override;
  Status NextBatch(TupleBatch* out) override;
  void Close() override {
    if (left_ != nullptr) left_->Close();
    if (right_ != nullptr) right_->Close();
  }

 private:
  Status NextInner(TupleBatch* out);
  Status NextSemiAnti(TupleBatch* out);
  Status NextOuter(TupleBatch* out);
  Status NextMark(TupleBatch* out);
  Tuple PadWithNulls(const Tuple& t) const;
  const std::vector<Tuple>* FindMatches(const Tuple& key) const;
  bool ContainsKey(const Tuple& key) const;

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  std::vector<JoinKey> keys_;
  JoinVariant variant_;
  PredicatePtr predicate_;
  bool build_left_;
  size_t pad_arity_;
  PhysicalContext ctx_;
  const SharedJoinBuild* shared_build_;

  BatchCursor probe_cursor_;
  TupleMultiMap table_;   // kInner, kLeftOuter
  TupleSet key_set_;      // kSemi, kAnti, kMark
  Tuple current_probe_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool probe_done_ = false;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_HASH_JOIN_H_
