#ifndef BRYQL_EXEC_PHYSICAL_HASH_JOIN_H_
#define BRYQL_EXEC_PHYSICAL_HASH_JOIN_H_

#include <utility>
#include <vector>

#include "algebra/physical_plan.h"
#include "algebra/predicate.h"
#include "exec/physical/operator.h"
#include "storage/relation.h"

namespace bryql {

/// Cartesian product: the right side is fully drained at Open, the left
/// side streams. Every combination (emitted or not) ticks the governor so
/// deadlines bite inside the quadratic loop.
class ProductOp : public PhysicalOperator {
 public:
  ProductOp(PhysicalOpPtr left, PhysicalOpPtr right, size_t right_arity,
            PhysicalContext ctx)
      : left_(std::move(left)), right_op_(std::move(right)),
        right_(right_arity), cursor_(left_.get()), ctx_(ctx) {}
  Status Open() override;
  Status NextBatch(TupleBatch* out) override;
  void Close() override {
    left_->Close();
    right_op_->Close();
  }

 private:
  PhysicalOpPtr left_;
  PhysicalOpPtr right_op_;
  Relation right_;
  BatchCursor cursor_;
  PhysicalContext ctx_;
  Tuple current_left_;
  size_t right_index_ = 0;
  bool left_done_ = false;
};

/// The whole hash-join family of the paper behind one operator: inner
/// join, semi-join, complement-join (Definition 6, kAnti), unidirectional
/// outer join, and the space-saving constrained outer join (Definition 7,
/// kMark). The build side is drained into a hash table at Open (a
/// key-multimap for variants that need partner values, a key set for pure
/// membership tests); the probe side streams in batches.
///
/// `build_left` (inner joins only) puts the left input on the build side
/// when the lowering's cost model estimates it smaller; output column
/// order stays left ++ right regardless.
class HashJoinOp : public PhysicalOperator {
 public:
  /// `predicate` is the residual condition for kInner (evaluated on the
  /// concatenated tuple) or the Definition 7 probe constraint for
  /// kLeftOuter/kMark (evaluated on the left tuple); it must be null for
  /// kSemi/kAnti. `pad_arity` is the right-side arity, used by kLeftOuter
  /// to pad partnerless tuples with nulls.
  HashJoinOp(PhysicalOpPtr left, PhysicalOpPtr right,
             std::vector<JoinKey> keys, JoinVariant variant,
             PredicatePtr predicate, bool build_left, size_t pad_arity,
             PhysicalContext ctx);
  Status Open() override;
  Status NextBatch(TupleBatch* out) override;
  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  Status NextInner(TupleBatch* out);
  Status NextSemiAnti(TupleBatch* out);
  Status NextOuter(TupleBatch* out);
  Status NextMark(TupleBatch* out);
  Tuple PadWithNulls(const Tuple& t) const;

  PhysicalOpPtr left_;
  PhysicalOpPtr right_;
  std::vector<JoinKey> keys_;
  JoinVariant variant_;
  PredicatePtr predicate_;
  bool build_left_;
  size_t pad_arity_;
  PhysicalContext ctx_;

  BatchCursor probe_cursor_;
  TupleMultiMap table_;   // kInner, kLeftOuter
  TupleSet key_set_;      // kSemi, kAnti, kMark
  Tuple current_probe_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool probe_done_ = false;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_PHYSICAL_HASH_JOIN_H_
