#ifndef BRYQL_EXEC_SORT_MERGE_H_
#define BRYQL_EXEC_SORT_MERGE_H_

#include "algebra/expr.h"
#include "common/result.h"
#include "exec/stats.h"
#include "storage/relation.h"

namespace bryql {

/// Which member of the join family to compute. The paper's observation —
/// the complement-join "is easily implemented by modifying any semi-join
/// algorithm" (§3.1), and likewise the constrained outer-join from any
/// join (§3.3) — holds for the classic sort-merge algorithms of the
/// paper's era just as for the hash algorithms the streaming executor
/// uses; this module is the merge counterpart, selected through
/// ExecOptions::join_algorithm.
enum class JoinVariant {
  kInner,      // ⋈: concatenated matches
  kSemi,       // ⋉: left rows with a partner
  kAnti,       // ⊼: complement-join — left rows without a partner
  kLeftOuter,  // ⟕: matches, or ∅-padding
  kMark,       // constrained outer-join: left row + ⊥/∅ mark column
};

/// Computes one join-family operator by sorting both inputs on their key
/// columns and merging. `keys` pair left/right columns; `predicate` is
/// the residual condition (kInner, over the concatenated tuple) or the
/// probe constraint (kLeftOuter/kMark, over the left tuple); it must be
/// null for kSemi/kAnti. Comparisons performed during sorting and merging
/// accumulate into `stats`.
Result<Relation> SortMergeJoin(const Relation& left, const Relation& right,
                               const std::vector<JoinKey>& keys,
                               JoinVariant variant,
                               const PredicatePtr& predicate,
                               ExecStats* stats);

}  // namespace bryql

#endif  // BRYQL_EXEC_SORT_MERGE_H_
