#ifndef BRYQL_EXEC_SORT_MERGE_H_
#define BRYQL_EXEC_SORT_MERGE_H_

#include "algebra/expr.h"
#include "algebra/physical_plan.h"  // JoinVariant
#include "common/result.h"
#include "exec/stats.h"
#include "storage/relation.h"

namespace bryql {

// JoinVariant — which member of the join family to compute — lives in
// algebra/physical_plan.h so lowered plans can name it; this module is
// the classic merge counterpart of the hash family, the algorithm family
// of the paper's era, selected through ExecOptions::join_algorithm.

/// Computes one join-family operator by sorting both inputs on their key
/// columns and merging. `keys` pair left/right columns; `predicate` is
/// the residual condition (kInner, over the concatenated tuple) or the
/// probe constraint (kLeftOuter/kMark, over the left tuple); it must be
/// null for kSemi/kAnti. Comparisons performed during sorting and merging
/// accumulate into `stats`.
Result<Relation> SortMergeJoin(const Relation& left, const Relation& right,
                               const std::vector<JoinKey>& keys,
                               JoinVariant variant,
                               const PredicatePtr& predicate,
                               ExecStats* stats);

}  // namespace bryql

#endif  // BRYQL_EXEC_SORT_MERGE_H_
