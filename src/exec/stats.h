#ifndef BRYQL_EXEC_STATS_H_
#define BRYQL_EXEC_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bryql {

/// Per-physical-operator instrumentation: how many batches and rows one
/// operator instance produced and how long it spent doing so. Collected by
/// the batched runtime (src/exec/physical/runtime) so an EXPLAIN
/// ANALYZE-style report can attribute time to operators instead of one
/// global bucket.
struct OperatorStats {
  /// The operator's physical label, e.g. "HashJoin(anti, build=right, ...)".
  std::string label;
  /// Plan depth of the operator (0 = root), for indented reports.
  size_t depth = 0;
  /// Total NextBatch invocations, including the final empty one.
  size_t batches = 0;
  /// Tuples emitted across all batches.
  size_t rows = 0;
  /// Wall time inside Open(), inclusive of children.
  uint64_t open_ns = 0;
  /// Wall time inside NextBatch(), inclusive of children.
  uint64_t next_ns = 0;
};

/// Instrumentation counters for one or more evaluations. These are the
/// quantities the paper's efficiency arguments are phrased in: how many
/// tuples are read from relations, how many comparisons are performed, and
/// how much intermediate state is materialized.
struct ExecStats {
  /// Tuples read out of base relations (each Scan reads its relation once;
  /// a relation scanned twice counts twice — the paper's "each range
  /// relation is searched only once" property shows up here).
  size_t tuples_scanned = 0;
  /// Tuples inserted into intermediate state: hash tables, dedup sets, and
  /// materialized results.
  size_t tuples_materialized = 0;
  /// Value comparisons performed by predicates and join-key checks.
  size_t comparisons = 0;
  /// Hash-table probes performed by join-family operators. The constrained
  /// outer-join's "do not search U for tuples already found in T" property
  /// (§3.3) shows up here.
  size_t hash_probes = 0;
  /// Operator instances evaluated (iterator openings / physical operator
  /// instantiations).
  size_t operators = 0;
  /// Column-store segments whose rows a columnar scan evaluated (or
  /// emitted wholesale on an all-match zone verdict).
  size_t segments_scanned = 0;
  /// Column-store segments skipped entirely by a zone-map verdict. Budget
  /// accounting still admits their rows (parity with the row engine);
  /// pruning saves value work, which `comparisons` shows.
  size_t segments_pruned = 0;
  /// Per-operator detail, in plan-instantiation order (root first). Empty
  /// under the tuple-at-a-time engine, which has no per-operator clock.
  std::vector<OperatorStats> operator_stats;

  void Add(const ExecStats& other) {
    tuples_scanned += other.tuples_scanned;
    tuples_materialized += other.tuples_materialized;
    comparisons += other.comparisons;
    hash_probes += other.hash_probes;
    operators += other.operators;
    segments_scanned += other.segments_scanned;
    segments_pruned += other.segments_pruned;
    operator_stats.insert(operator_stats.end(),
                          other.operator_stats.begin(),
                          other.operator_stats.end());
  }

  std::string ToString() const {
    std::string out;
    out += "scanned=" + std::to_string(tuples_scanned);
    out += " materialized=" + std::to_string(tuples_materialized);
    out += " comparisons=" + std::to_string(comparisons);
    out += " probes=" + std::to_string(hash_probes);
    out += " operators=" + std::to_string(operators);
    // Columnar counters only appear when a columnar scan ran, keeping the
    // line stable for the (row-only) golden outputs.
    if (segments_scanned != 0 || segments_pruned != 0) {
      out += " segments=" + std::to_string(segments_scanned);
      out += " pruned=" + std::to_string(segments_pruned);
    }
    return out;
  }

  /// EXPLAIN ANALYZE-style multi-line report: the global counters followed
  /// by one line per physical operator with batch/row counters and timing
  /// (times are inclusive of children, like the classic EXPLAIN ANALYZE).
  std::string Report() const {
    std::string out = ToString();
    for (const OperatorStats& op : operator_stats) {
      out += "\n";
      out.append(2 + op.depth * 2, ' ');
      out += op.label + "  batches=" + std::to_string(op.batches) +
             " rows=" + std::to_string(op.rows) +
             " open=" + FormatNs(op.open_ns) +
             " next=" + FormatNs(op.next_ns);
    }
    return out;
  }

 private:
  static std::string FormatNs(uint64_t ns) {
    if (ns >= 1000000) return std::to_string(ns / 1000000) + "ms";
    if (ns >= 1000) return std::to_string(ns / 1000) + "us";
    return std::to_string(ns) + "ns";
  }
};

}  // namespace bryql

#endif  // BRYQL_EXEC_STATS_H_
