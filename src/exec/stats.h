#ifndef BRYQL_EXEC_STATS_H_
#define BRYQL_EXEC_STATS_H_

#include <cstddef>
#include <string>

namespace bryql {

/// Instrumentation counters for one or more evaluations. These are the
/// quantities the paper's efficiency arguments are phrased in: how many
/// tuples are read from relations, how many comparisons are performed, and
/// how much intermediate state is materialized.
struct ExecStats {
  /// Tuples read out of base relations (each Scan reads its relation once;
  /// a relation scanned twice counts twice — the paper's "each range
  /// relation is searched only once" property shows up here).
  size_t tuples_scanned = 0;
  /// Tuples inserted into intermediate state: hash tables, dedup sets, and
  /// materialized results.
  size_t tuples_materialized = 0;
  /// Value comparisons performed by predicates and join-key checks.
  size_t comparisons = 0;
  /// Hash-table probes performed by join-family operators. The constrained
  /// outer-join's "do not search U for tuples already found in T" property
  /// (§3.3) shows up here.
  size_t hash_probes = 0;
  /// Operator instances evaluated (iterator openings).
  size_t operators = 0;

  void Add(const ExecStats& other) {
    tuples_scanned += other.tuples_scanned;
    tuples_materialized += other.tuples_materialized;
    comparisons += other.comparisons;
    hash_probes += other.hash_probes;
    operators += other.operators;
  }

  std::string ToString() const {
    std::string out;
    out += "scanned=" + std::to_string(tuples_scanned);
    out += " materialized=" + std::to_string(tuples_materialized);
    out += " comparisons=" + std::to_string(comparisons);
    out += " probes=" + std::to_string(hash_probes);
    out += " operators=" + std::to_string(operators);
    return out;
  }
};

}  // namespace bryql

#endif  // BRYQL_EXEC_STATS_H_
