#include "exec/volcano.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/failpoints.h"
#include "exec/sort_merge.h"

namespace bryql {

namespace {

/// Pull-based tuple stream. Next() returns false when exhausted.
class TupleIterator {
 public:
  virtual ~TupleIterator() = default;
  virtual bool Next(Tuple* out) = 0;
};

using IterPtr = std::unique_ptr<TupleIterator>;

using TupleSet = std::unordered_set<Tuple, TupleHash>;
using TupleMultiMap = std::unordered_map<Tuple, std::vector<Tuple>, TupleHash>;

Tuple KeyOf(const Tuple& t, const std::vector<JoinKey>& keys, bool left) {
  std::vector<Value> values;
  values.reserve(keys.size());
  for (const JoinKey& k : keys) values.push_back(t.at(left ? k.left : k.right));
  return Tuple(std::move(values));
}

/// Streams a borrowed row vector (base relations).
class ScanIterator : public TupleIterator {
 public:
  ScanIterator(const std::vector<Tuple>* rows, ExecStats* stats,
               ResourceGovernor* governor)
      : rows_(rows), stats_(stats), governor_(governor) {}
  bool Next(Tuple* out) override {
    if (index_ >= rows_->size()) return false;
    if (!governor_->AdmitScan()) return false;
    ++stats_->tuples_scanned;
    *out = (*rows_)[index_++];
    return true;
  }

 private:
  const std::vector<Tuple>* rows_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
  size_t index_ = 0;
};

/// Streams an owned relation (materialized intermediate results). Reads
/// from intermediates are not counted as base-table scans.
class OwnedIterator : public TupleIterator {
 public:
  explicit OwnedIterator(Relation rel) : rel_(std::move(rel)) {}
  bool Next(Tuple* out) override {
    if (index_ >= rel_.rows().size()) return false;
    *out = rel_.rows()[index_++];
    return true;
  }

 private:
  Relation rel_;
  size_t index_ = 0;
};

/// Index lookup: streams the rows of one hash-index bucket, applying the
/// residual predicate. Only touched rows count as scanned — the whole
/// point of the index.
class IndexScanIterator : public TupleIterator {
 public:
  IndexScanIterator(const Relation* rel, const std::vector<size_t>* matches,
                    PredicatePtr residual, ExecStats* stats,
                    ResourceGovernor* governor)
      : rel_(rel), matches_(matches), residual_(std::move(residual)),
        stats_(stats), governor_(governor) {}
  bool Next(Tuple* out) override {
    while (index_ < matches_->size()) {
      if (!governor_->AdmitScan()) return false;
      const Tuple& row = rel_->rows()[(*matches_)[index_++]];
      ++stats_->tuples_scanned;
      if (residual_ == nullptr ||
          residual_->Eval(row, &stats_->comparisons)) {
        *out = row;
        return true;
      }
    }
    return false;
  }

 private:
  const Relation* rel_;
  const std::vector<size_t>* matches_;
  PredicatePtr residual_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
  size_t index_ = 0;
};

class SelectIterator : public TupleIterator {
 public:
  SelectIterator(IterPtr input, PredicatePtr predicate, ExecStats* stats,
                 ResourceGovernor* governor)
      : input_(std::move(input)),
        predicate_(std::move(predicate)),
        stats_(stats), governor_(governor) {}
  bool Next(Tuple* out) override {
    while (input_->Next(out)) {
      // Tick, not a scan: the input counts itself, but a selection over an
      // intermediate can reject unboundedly many tuples between yields.
      if (!governor_->Tick()) return false;
      if (predicate_->Eval(*out, &stats_->comparisons)) return true;
    }
    return false;
  }

 private:
  IterPtr input_;
  PredicatePtr predicate_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
};

class ProjectIterator : public TupleIterator {
 public:
  ProjectIterator(IterPtr input, std::vector<size_t> columns,
                  ExecStats* stats, ResourceGovernor* governor)
      : input_(std::move(input)), columns_(std::move(columns)),
        stats_(stats), governor_(governor) {}
  bool Next(Tuple* out) override {
    Tuple in;
    while (input_->Next(&in)) {
      Tuple projected = in.Project(columns_);
      if (seen_.insert(projected).second) {
        if (!governor_->AdmitMaterialize()) return false;
        ++stats_->tuples_materialized;  // dedup set entry
        *out = std::move(projected);
        return true;
      }
      if (!governor_->Tick()) return false;  // duplicate-rejection loop
    }
    return false;
  }

 private:
  IterPtr input_;
  std::vector<size_t> columns_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
  TupleSet seen_;
};

class ProductIterator : public TupleIterator {
 public:
  ProductIterator(IterPtr left, Relation right, ResourceGovernor* governor)
      : left_(std::move(left)), right_(std::move(right)),
        governor_(governor) {}
  bool Next(Tuple* out) override {
    while (true) {
      // A product's output is quadratic in its inputs; every emitted (or
      // skipped) combination ticks so deadlines bite inside the loop.
      if (!governor_->Tick()) return false;
      if (right_index_ == 0) {
        if (!left_->Next(&current_left_)) return false;
      }
      if (right_index_ < right_.rows().size()) {
        *out = current_left_.Concat(right_.rows()[right_index_++]);
        if (right_index_ == right_.rows().size()) right_index_ = 0;
        return true;
      }
      right_index_ = 0;  // empty right side: exhaust left
      if (right_.rows().empty()) return false;
    }
  }

 private:
  IterPtr left_;
  Relation right_;
  ResourceGovernor* governor_;
  Tuple current_left_;
  size_t right_index_ = 0;
};

/// Hash equi-join: right side built, left side streamed.
class JoinIterator : public TupleIterator {
 public:
  JoinIterator(IterPtr left, TupleMultiMap table, std::vector<JoinKey> keys,
               PredicatePtr residual, ExecStats* stats,
               ResourceGovernor* governor)
      : left_(std::move(left)), table_(std::move(table)),
        keys_(std::move(keys)), residual_(std::move(residual)),
        stats_(stats), governor_(governor) {}
  bool Next(Tuple* out) override {
    while (true) {
      if (!governor_->Tick()) return false;
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        Tuple candidate = current_left_.Concat((*matches_)[match_index_++]);
        if (residual_ == nullptr ||
            residual_->Eval(candidate, &stats_->comparisons)) {
          *out = std::move(candidate);
          return true;
        }
        continue;
      }
      matches_ = nullptr;
      if (!left_->Next(&current_left_)) return false;
      ++stats_->hash_probes;
      stats_->comparisons += keys_.size();
      auto it = table_.find(KeyOf(current_left_, keys_, /*left=*/true));
      if (it != table_.end()) {
        matches_ = &it->second;
        match_index_ = 0;
      }
    }
  }

 private:
  IterPtr left_;
  TupleMultiMap table_;
  std::vector<JoinKey> keys_;
  PredicatePtr residual_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
  Tuple current_left_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_index_ = 0;
};

/// Semi-join and the paper's complement-join (Definition 6): both are a
/// membership probe against the right key set, differing only in which
/// outcome passes — the implementation-sharing the paper points out
/// ("easily implemented by modifying any semi-join algorithm").
class SemiAntiIterator : public TupleIterator {
 public:
  SemiAntiIterator(IterPtr left, TupleSet right_keys,
                   std::vector<JoinKey> keys, bool anti, ExecStats* stats)
      : left_(std::move(left)), right_keys_(std::move(right_keys)),
        keys_(std::move(keys)), anti_(anti), stats_(stats) {}
  bool Next(Tuple* out) override {
    while (left_->Next(out)) {
      ++stats_->hash_probes;
      stats_->comparisons += keys_.size();
      bool found =
          right_keys_.count(KeyOf(*out, keys_, /*left=*/true)) != 0;
      if (found != anti_) return true;
    }
    return false;
  }

 private:
  IterPtr left_;
  TupleSet right_keys_;
  std::vector<JoinKey> keys_;
  bool anti_;
  ExecStats* stats_;
};

/// Unidirectional outer join (Figures 2/3), with the optional Definition 7
/// constraint on the left tuple: rows failing the constraint are not
/// probed and pad directly with ∅.
class OuterJoinIterator : public TupleIterator {
 public:
  OuterJoinIterator(IterPtr left, TupleMultiMap table,
                    std::vector<JoinKey> keys, PredicatePtr constraint,
                    size_t right_arity, ExecStats* stats)
      : left_(std::move(left)), table_(std::move(table)),
        keys_(std::move(keys)), constraint_(std::move(constraint)),
        right_arity_(right_arity), stats_(stats) {}
  bool Next(Tuple* out) override {
    while (true) {
      if (matches_ != nullptr && match_index_ < matches_->size()) {
        *out = current_left_.Concat((*matches_)[match_index_++]);
        return true;
      }
      matches_ = nullptr;
      if (!left_->Next(&current_left_)) return false;
      if (constraint_ != nullptr &&
          !constraint_->Eval(current_left_, &stats_->comparisons)) {
        *out = PadWithNulls(current_left_);
        return true;
      }
      ++stats_->hash_probes;
      stats_->comparisons += keys_.size();
      auto it = table_.find(KeyOf(current_left_, keys_, /*left=*/true));
      if (it != table_.end()) {
        matches_ = &it->second;
        match_index_ = 0;
        continue;
      }
      *out = PadWithNulls(current_left_);
      return true;
    }
  }

 private:
  Tuple PadWithNulls(const Tuple& t) const {
    Tuple padded = t;
    for (size_t i = 0; i < right_arity_; ++i) padded.Append(Value::Null());
    return padded;
  }

  IterPtr left_;
  TupleMultiMap table_;
  std::vector<JoinKey> keys_;
  PredicatePtr constraint_;
  size_t right_arity_;
  ExecStats* stats_;
  Tuple current_left_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_index_ = 0;
};

/// The paper's constrained outer-join (Definition 7), in its space-saving
/// form: instead of carrying partner values it appends ⊥ ("a partner
/// exists") or ∅ ("no partner, or not probed").
class MarkJoinIterator : public TupleIterator {
 public:
  MarkJoinIterator(IterPtr left, TupleSet right_keys,
                   std::vector<JoinKey> keys, PredicatePtr constraint,
                   ExecStats* stats)
      : left_(std::move(left)), right_keys_(std::move(right_keys)),
        keys_(std::move(keys)), constraint_(std::move(constraint)),
        stats_(stats) {}
  bool Next(Tuple* out) override {
    Tuple t;
    if (!left_->Next(&t)) return false;
    bool marked = false;
    if (constraint_ == nullptr ||
        constraint_->Eval(t, &stats_->comparisons)) {
      ++stats_->hash_probes;
      stats_->comparisons += keys_.size();
      marked = right_keys_.count(KeyOf(t, keys_, /*left=*/true)) != 0;
    }
    t.Append(marked ? Value::Mark() : Value::Null());
    *out = std::move(t);
    return true;
  }

 private:
  IterPtr left_;
  TupleSet right_keys_;
  std::vector<JoinKey> keys_;
  PredicatePtr constraint_;
  ExecStats* stats_;
};

/// Union with streaming dedup.
class UnionIterator : public TupleIterator {
 public:
  UnionIterator(IterPtr left, IterPtr right, ExecStats* stats,
                ResourceGovernor* governor)
      : left_(std::move(left)), right_(std::move(right)), stats_(stats),
        governor_(governor) {}
  bool Next(Tuple* out) override {
    Tuple t;
    while (true) {
      bool have = on_left_ ? left_->Next(&t) : right_->Next(&t);
      if (!have) {
        if (!on_left_) return false;
        on_left_ = false;
        continue;
      }
      if (seen_.insert(t).second) {
        if (!governor_->AdmitMaterialize()) return false;
        ++stats_->tuples_materialized;
        *out = std::move(t);
        return true;
      }
      if (!governor_->Tick()) return false;
    }
  }

 private:
  IterPtr left_;
  IterPtr right_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
  bool on_left_ = true;
  TupleSet seen_;
};

/// Finds an equality conjunct `col = value` whose column carries an index
/// on `rel`. On a hit, `*residual` receives the remaining conjuncts (or
/// nullptr when the equality was the whole predicate).
const Predicate* FindIndexedEquality(const PredicatePtr& pred,
                                     const Relation& rel,
                                     PredicatePtr* residual) {
  auto qualifies = [&](const PredicatePtr& p) {
    return p->kind() == Predicate::Kind::kCompareColVal &&
           p->op() == CompareOp::kEq && rel.HasIndex(p->lhs());
  };
  if (qualifies(pred)) {
    *residual = nullptr;
    return pred.get();
  }
  if (pred->kind() != Predicate::Kind::kAnd) return nullptr;
  const std::vector<PredicatePtr>& parts = pred->children();
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!qualifies(parts[i])) continue;
    std::vector<PredicatePtr> rest;
    for (size_t j = 0; j < parts.size(); ++j) {
      if (j != i) rest.push_back(parts[j]);
    }
    *residual = rest.empty() ? nullptr : Predicate::And(std::move(rest));
    return parts[i].get();
  }
  return nullptr;
}

/// The evaluation engine: constructs iterator trees and materializes where
/// required.
class Engine {
 public:
  Engine(const Database* db, const ExecOptions& options, ExecStats* stats,
         ResourceGovernor* governor)
      : db_(db), options_(options), stats_(stats), governor_(governor) {}

  Result<IterPtr> MakeIterator(const ExprPtr& expr) {
    // Operator open: fault-injection site, plan-depth admission, and a
    // deadline/cancellation poll before any child work starts.
    BRYQL_FAILPOINT("exec.iterator.open");
    GovernorDepthGuard depth(governor_);
    if (!depth.ok()) return governor_->status();
    BRYQL_RETURN_NOT_OK(governor_->CheckNow());
    ++stats_->operators;
    switch (expr->kind()) {
      case ExprKind::kScan: {
        BRYQL_FAILPOINT("exec.scan.open");
        BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                               db_->Get(expr->relation_name()));
        return IterPtr(new ScanIterator(&rel->rows(), stats_, governor_));
      }
      case ExprKind::kLiteral:
        return IterPtr(
            new ScanIterator(&expr->literal().rows(), stats_, governor_));
      case ExprKind::kSelect: {
        // σ_{col = value}(scan) over an indexed column becomes an index
        // lookup; any remaining conjuncts stay as a residual filter.
        if (expr->child()->kind() == ExprKind::kScan) {
          BRYQL_ASSIGN_OR_RETURN(
              const Relation* rel,
              db_->Get(expr->child()->relation_name()));
          PredicatePtr residual;
          const Predicate* eq =
              FindIndexedEquality(expr->predicate(), *rel, &residual);
          if (eq != nullptr) {
            ++stats_->hash_probes;
            return IterPtr(new IndexScanIterator(
                rel, &rel->Matches(eq->lhs(), eq->value()),
                std::move(residual), stats_, governor_));
          }
        }
        BRYQL_ASSIGN_OR_RETURN(IterPtr in, MakeIterator(expr->child()));
        return IterPtr(new SelectIterator(std::move(in), expr->predicate(),
                                          stats_, governor_));
      }
      case ExprKind::kProject: {
        BRYQL_ASSIGN_OR_RETURN(IterPtr in, MakeIterator(expr->child()));
        return IterPtr(new ProjectIterator(std::move(in), expr->columns(),
                                           stats_, governor_));
      }
      case ExprKind::kProduct: {
        BRYQL_ASSIGN_OR_RETURN(IterPtr left, MakeIterator(expr->left()));
        BRYQL_ASSIGN_OR_RETURN(Relation right, Materialize(expr->right()));
        return IterPtr(new ProductIterator(std::move(left),
                                           std::move(right), governor_));
      }
      case ExprKind::kJoin: {
        if (options_.join_algorithm ==
            ExecOptions::JoinAlgorithm::kSortMerge) {
          return SortMergeIterator(expr, JoinVariant::kInner,
                                   expr->predicate());
        }
        BRYQL_ASSIGN_OR_RETURN(IterPtr left, MakeIterator(expr->left()));
        BRYQL_ASSIGN_OR_RETURN(TupleMultiMap table,
                               BuildTable(expr->right(), expr->keys()));
        return IterPtr(new JoinIterator(std::move(left), std::move(table),
                                        expr->keys(), expr->predicate(),
                                        stats_, governor_));
      }
      case ExprKind::kSemiJoin:
      case ExprKind::kAntiJoin: {
        if (options_.join_algorithm ==
            ExecOptions::JoinAlgorithm::kSortMerge) {
          return SortMergeIterator(expr,
                                   expr->kind() == ExprKind::kAntiJoin
                                       ? JoinVariant::kAnti
                                       : JoinVariant::kSemi,
                                   nullptr);
        }
        BRYQL_ASSIGN_OR_RETURN(IterPtr left, MakeIterator(expr->left()));
        BRYQL_ASSIGN_OR_RETURN(TupleSet keys,
                               BuildKeySet(expr->right(), expr->keys()));
        return IterPtr(new SemiAntiIterator(
            std::move(left), std::move(keys), expr->keys(),
            expr->kind() == ExprKind::kAntiJoin, stats_));
      }
      case ExprKind::kOuterJoin: {
        if (options_.join_algorithm ==
            ExecOptions::JoinAlgorithm::kSortMerge) {
          return SortMergeIterator(expr, JoinVariant::kLeftOuter,
                                   expr->constraint());
        }
        BRYQL_ASSIGN_OR_RETURN(IterPtr left, MakeIterator(expr->left()));
        BRYQL_ASSIGN_OR_RETURN(size_t right_arity, expr->right()->Arity(*db_));
        BRYQL_ASSIGN_OR_RETURN(TupleMultiMap table,
                               BuildTable(expr->right(), expr->keys()));
        return IterPtr(new OuterJoinIterator(
            std::move(left), std::move(table), expr->keys(),
            expr->constraint(), right_arity, stats_));
      }
      case ExprKind::kMarkJoin: {
        if (options_.join_algorithm ==
            ExecOptions::JoinAlgorithm::kSortMerge) {
          return SortMergeIterator(expr, JoinVariant::kMark,
                                   expr->constraint());
        }
        BRYQL_ASSIGN_OR_RETURN(IterPtr left, MakeIterator(expr->left()));
        BRYQL_ASSIGN_OR_RETURN(TupleSet keys,
                               BuildKeySet(expr->right(), expr->keys()));
        return IterPtr(new MarkJoinIterator(std::move(left), std::move(keys),
                                            expr->keys(), expr->constraint(),
                                            stats_));
      }
      case ExprKind::kUnion: {
        BRYQL_ASSIGN_OR_RETURN(IterPtr left, MakeIterator(expr->left()));
        BRYQL_ASSIGN_OR_RETURN(IterPtr right, MakeIterator(expr->right()));
        return IterPtr(new UnionIterator(std::move(left), std::move(right),
                                         stats_, governor_));
      }
      case ExprKind::kDifference:
      case ExprKind::kIntersect: {
        bool keep_if_found = expr->kind() == ExprKind::kIntersect;
        // Difference/intersection are key-on-whole-tuple semi/anti joins,
        // so they follow the configured join algorithm like the rest of
        // the join family.
        std::vector<JoinKey> keys;
        BRYQL_ASSIGN_OR_RETURN(size_t arity, expr->left()->Arity(*db_));
        keys.reserve(arity);
        for (size_t i = 0; i < arity; ++i) keys.push_back({i, i});
        if (options_.join_algorithm ==
            ExecOptions::JoinAlgorithm::kSortMerge) {
          BRYQL_ASSIGN_OR_RETURN(Relation left, Materialize(expr->left()));
          BRYQL_ASSIGN_OR_RETURN(Relation right, Materialize(expr->right()));
          BRYQL_ASSIGN_OR_RETURN(
              Relation result,
              SortMergeJoin(left, right, keys,
                            keep_if_found ? JoinVariant::kSemi
                                          : JoinVariant::kAnti,
                            nullptr, stats_));
          return IterPtr(new OwnedIterator(std::move(result)));
        }
        BRYQL_ASSIGN_OR_RETURN(IterPtr left, MakeIterator(expr->left()));
        BRYQL_ASSIGN_OR_RETURN(TupleSet right,
                               MaterializeSet(expr->right()));
        return IterPtr(new SemiAntiIterator(std::move(left), std::move(right),
                                            std::move(keys), !keep_if_found,
                                            stats_));
      }
      case ExprKind::kDivision: {
        BRYQL_ASSIGN_OR_RETURN(Relation result, EvaluateDivision(expr));
        return IterPtr(new OwnedIterator(std::move(result)));
      }
      case ExprKind::kGroupDivision: {
        BRYQL_ASSIGN_OR_RETURN(Relation result,
                               EvaluateGroupDivision(expr));
        return IterPtr(new OwnedIterator(std::move(result)));
      }
      case ExprKind::kGroupCount: {
        BRYQL_ASSIGN_OR_RETURN(Relation result, EvaluateGroupCount(expr));
        return IterPtr(new OwnedIterator(std::move(result)));
      }
      case ExprKind::kNonEmpty:
      case ExprKind::kBoolNot:
      case ExprKind::kBoolAnd:
      case ExprKind::kBoolOr: {
        BRYQL_ASSIGN_OR_RETURN(bool value, EvaluateBool(expr));
        Relation rel(0);
        if (value) rel.Insert(Tuple{});
        return IterPtr(new OwnedIterator(std::move(rel)));
      }
    }
    return Status::Internal("unknown operator kind");
  }

  Result<Relation> Materialize(const ExprPtr& expr) {
    BRYQL_ASSIGN_OR_RETURN(size_t arity, expr->Arity(*db_));
    BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr));
    Relation rel(arity);
    Tuple t;
    while (it->Next(&t)) {
      BRYQL_FAILPOINT("exec.materialize.insert");
      if (!governor_->AdmitMaterialize()) break;
      BRYQL_ASSIGN_OR_RETURN(bool fresh, rel.Insert(std::move(t)));
      if (fresh) ++stats_->tuples_materialized;
      t = Tuple();
    }
    // Distinguish "input exhausted" from "budget tripped mid-stream": a
    // tripped governor means `rel` is a partial answer and must not leak.
    BRYQL_RETURN_NOT_OK(governor_->status());
    return rel;
  }

  Result<bool> EvaluateBool(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kNonEmpty: {
        // The paper's non-emptiness test: pull a single witness.
        BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr->child()));
        Tuple t;
        bool witness = it->Next(&t);
        // A governed iterator reports exhaustion when tripped; "false"
        // must not masquerade as "empty".
        BRYQL_RETURN_NOT_OK(governor_->status());
        return witness;
      }
      case ExprKind::kBoolNot: {
        BRYQL_ASSIGN_OR_RETURN(bool v, EvaluateBool(expr->child()));
        return !v;
      }
      case ExprKind::kBoolAnd: {
        for (const ExprPtr& c : expr->children()) {
          BRYQL_ASSIGN_OR_RETURN(bool v, EvaluateBool(c));
          if (!v) return false;  // short-circuit
        }
        return true;
      }
      case ExprKind::kBoolOr: {
        for (const ExprPtr& c : expr->children()) {
          BRYQL_ASSIGN_OR_RETURN(bool v, EvaluateBool(c));
          if (v) return true;  // short-circuit
        }
        return false;
      }
      default: {
        BRYQL_ASSIGN_OR_RETURN(size_t arity, expr->Arity(*db_));
        if (arity != 0) {
          return Status::InvalidArgument(
              "EvaluateBool on expression of arity " + std::to_string(arity));
        }
        BRYQL_ASSIGN_OR_RETURN(Relation rel, Materialize(expr));
        return !rel.empty();
      }
    }
  }

 private:
  /// Materializes both sides and runs the sort-merge join family.
  Result<IterPtr> SortMergeIterator(const ExprPtr& expr, JoinVariant variant,
                                    const PredicatePtr& predicate) {
    BRYQL_ASSIGN_OR_RETURN(Relation left, Materialize(expr->left()));
    BRYQL_ASSIGN_OR_RETURN(Relation right, Materialize(expr->right()));
    BRYQL_ASSIGN_OR_RETURN(
        Relation result,
        SortMergeJoin(left, right, expr->keys(), variant, predicate,
                      stats_));
    return IterPtr(new OwnedIterator(std::move(result)));
  }

  Result<TupleMultiMap> BuildTable(const ExprPtr& expr,
                                   const std::vector<JoinKey>& keys) {
    BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr));
    TupleMultiMap table;
    Tuple t;
    while (it->Next(&t)) {
      BRYQL_FAILPOINT("exec.hash.insert");
      if (!governor_->AdmitMaterialize()) break;
      ++stats_->tuples_materialized;
      table[KeyOf(t, keys, /*left=*/false)].push_back(t);
    }
    BRYQL_RETURN_NOT_OK(governor_->status());
    return table;
  }

  Result<TupleSet> BuildKeySet(const ExprPtr& expr,
                               const std::vector<JoinKey>& keys) {
    BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr));
    TupleSet set;
    Tuple t;
    while (it->Next(&t)) {
      BRYQL_FAILPOINT("exec.hash.insert");
      if (set.insert(KeyOf(t, keys, /*left=*/false)).second) {
        if (!governor_->AdmitMaterialize()) break;
        ++stats_->tuples_materialized;
      } else if (!governor_->Tick()) {
        break;
      }
    }
    BRYQL_RETURN_NOT_OK(governor_->status());
    return set;
  }

  Result<TupleSet> MaterializeSet(const ExprPtr& expr) {
    BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr));
    TupleSet set;
    Tuple t;
    while (it->Next(&t)) {
      BRYQL_FAILPOINT("exec.materialize.insert");
      if (set.insert(std::move(t)).second) {
        if (!governor_->AdmitMaterialize()) break;
        ++stats_->tuples_materialized;
      } else if (!governor_->Tick()) {
        break;
      }
      t = Tuple();
    }
    BRYQL_RETURN_NOT_OK(governor_->status());
    return set;
  }

  /// dividend ÷ divisor: tuples over the first p-q columns paired in the
  /// dividend with *every* divisor tuple. An empty divisor divides
  /// trivially: the result is the projection of the dividend.
  Result<Relation> EvaluateDivision(const ExprPtr& expr) {
    BRYQL_ASSIGN_OR_RETURN(size_t p, expr->left()->Arity(*db_));
    BRYQL_ASSIGN_OR_RETURN(size_t q, expr->right()->Arity(*db_));
    BRYQL_ASSIGN_OR_RETURN(TupleSet divisor, MaterializeSet(expr->right()));
    std::vector<size_t> prefix_cols, suffix_cols;
    for (size_t i = 0; i < p - q; ++i) prefix_cols.push_back(i);
    for (size_t i = p - q; i < p; ++i) suffix_cols.push_back(i);
    BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr->left()));
    std::unordered_map<Tuple, TupleSet, TupleHash> groups;
    Tuple t;
    while (it->Next(&t)) {
      if (!governor_->AdmitMaterialize()) break;
      Tuple prefix = t.Project(prefix_cols);
      Tuple suffix = t.Project(suffix_cols);
      ++stats_->hash_probes;
      if (divisor.count(suffix)) {
        if (groups[std::move(prefix)].insert(std::move(suffix)).second) {
          ++stats_->tuples_materialized;
        }
      } else {
        groups.try_emplace(std::move(prefix));
      }
    }
    BRYQL_RETURN_NOT_OK(governor_->status());
    Relation result(p - q);
    for (auto& [prefix, matched] : groups) {
      if (matched.size() == divisor.size()) result.Insert(prefix);
    }
    return result;
  }

  /// Per-group division (see ExprKind::kGroupDivision): the divisor is
  /// grouped by its leading `group_arity` columns; a (keep, group) pair
  /// of the dividend qualifies when it pairs with *every* value of its
  /// group. Groups absent from the divisor produce nothing (the
  /// translator adds the vacuous-truth guard itself).
  Result<Relation> EvaluateGroupDivision(const ExprPtr& expr) {
    BRYQL_ASSIGN_OR_RETURN(size_t p, expr->left()->Arity(*db_));
    BRYQL_ASSIGN_OR_RETURN(size_t q, expr->right()->Arity(*db_));
    size_t g = expr->group_arity();
    size_t value_arity = q - g;
    size_t keep_arity = p - q;  // dividend = [keep, group, value]
    std::vector<size_t> t_group_cols, t_value_cols;
    for (size_t i = 0; i < g; ++i) t_group_cols.push_back(i);
    for (size_t i = g; i < q; ++i) t_value_cols.push_back(i);
    std::vector<size_t> d_prefix_cols, d_value_cols, d_group_cols;
    for (size_t i = 0; i < keep_arity + g; ++i) d_prefix_cols.push_back(i);
    for (size_t i = keep_arity; i < keep_arity + g; ++i) {
      d_group_cols.push_back(i);
    }
    for (size_t i = keep_arity + g; i < p; ++i) d_value_cols.push_back(i);

    // Group the divisor: group key → set of values.
    std::unordered_map<Tuple, TupleSet, TupleHash> divisor_groups;
    {
      BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr->right()));
      Tuple t;
      while (it->Next(&t)) {
        if (!governor_->AdmitMaterialize()) break;
        if (divisor_groups[t.Project(t_group_cols)]
                .insert(t.Project(t_value_cols))
                .second) {
          ++stats_->tuples_materialized;
        }
      }
      BRYQL_RETURN_NOT_OK(governor_->status());
    }
    // Count matched values per (keep, group) prefix of the dividend.
    std::unordered_map<Tuple, TupleSet, TupleHash> matched;
    {
      BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr->left()));
      Tuple t;
      while (it->Next(&t)) {
        if (!governor_->AdmitMaterialize()) break;
        Tuple group = t.Project(d_group_cols);
        ++stats_->hash_probes;
        auto git = divisor_groups.find(group);
        if (git == divisor_groups.end()) continue;
        Tuple value = t.Project(d_value_cols);
        if (!git->second.count(value)) continue;
        if (matched[t.Project(d_prefix_cols)].insert(std::move(value))
                .second) {
          ++stats_->tuples_materialized;
        }
      }
      BRYQL_RETURN_NOT_OK(governor_->status());
    }
    Relation result(keep_arity + g);
    for (auto& [prefix, values] : matched) {
      // The group is the suffix of the prefix tuple.
      std::vector<size_t> group_in_prefix;
      for (size_t i = keep_arity; i < keep_arity + g; ++i) {
        group_in_prefix.push_back(i);
      }
      auto git = divisor_groups.find(prefix.Project(group_in_prefix));
      if (git != divisor_groups.end() &&
          values.size() == git->second.size()) {
        result.Insert(prefix);
      }
    }
    return result;
  }

  /// γ: per-group row counts (set semantics: rows are already distinct).
  Result<Relation> EvaluateGroupCount(const ExprPtr& expr) {
    size_t g = expr->group_arity();
    std::vector<size_t> group_cols;
    for (size_t i = 0; i < g; ++i) group_cols.push_back(i);
    std::unordered_map<Tuple, int64_t, TupleHash> counts;
    BRYQL_ASSIGN_OR_RETURN(IterPtr it, MakeIterator(expr->child()));
    Tuple t;
    while (it->Next(&t)) {
      if (!governor_->AdmitMaterialize()) break;
      ++counts[t.Project(group_cols)];
      ++stats_->tuples_materialized;
    }
    BRYQL_RETURN_NOT_OK(governor_->status());
    Relation result(g + 1);
    for (auto& [group, count] : counts) {
      Tuple row = group;
      row.Append(Value::Int(count));
      result.Insert(std::move(row));
    }
    return result;
  }

  const Database* db_;
  const ExecOptions& options_;
  ExecStats* stats_;
  ResourceGovernor* governor_;
};

}  // namespace

Result<Relation> VolcanoEvaluate(const Database* db,
                                 const ExecOptions& options, ExecStats* stats,
                                 ResourceGovernor* governor,
                                 const ExprPtr& expr) {
  Engine engine(db, options, stats, governor);
  return engine.Materialize(expr);
}

Result<bool> VolcanoEvaluateBool(const Database* db,
                                 const ExecOptions& options, ExecStats* stats,
                                 ResourceGovernor* governor,
                                 const ExprPtr& expr) {
  Engine engine(db, options, stats, governor);
  return engine.EvaluateBool(expr);
}

}  // namespace bryql
