#ifndef BRYQL_EXEC_VOLCANO_H_
#define BRYQL_EXEC_VOLCANO_H_

#include "algebra/expr.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/executor.h"
#include "exec/stats.h"
#include "storage/database.h"

namespace bryql {

/// The original tuple-at-a-time (volcano) interpreter over the logical
/// Expr tree — one virtual Next() per tuple per operator. Kept as the
/// reference engine: the batched physical layer (ExecOptions::Mode::
/// kBatched, the default) is differentially tested against it, and
/// bench_prepared measures the batching win against it. Selected via
/// ExecOptions::Mode::kTupleAtATime.
///
/// Callers must have validated `expr` (arity check, plan-depth bound)
/// beforehand — Executor::Evaluate/EvaluateBool do.
Result<Relation> VolcanoEvaluate(const Database* db,
                                 const ExecOptions& options, ExecStats* stats,
                                 ResourceGovernor* governor,
                                 const ExprPtr& expr);

/// Boolean (arity-0) evaluation with short-circuiting BoolAnd/BoolOr and
/// first-witness NonEmpty.
Result<bool> VolcanoEvaluateBool(const Database* db,
                                 const ExecOptions& options, ExecStats* stats,
                                 ResourceGovernor* governor,
                                 const ExprPtr& expr);

}  // namespace bryql

#endif  // BRYQL_EXEC_VOLCANO_H_
