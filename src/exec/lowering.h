#ifndef BRYQL_EXEC_LOWERING_H_
#define BRYQL_EXEC_LOWERING_H_

#include "algebra/expr.h"
#include "algebra/physical_plan.h"
#include "common/result.h"
#include "exec/executor.h"
#include "storage/database.h"

namespace bryql {

/// Lowers a logical algebra expression to an executable physical plan.
///
/// This is the layer where decisions the volcano engine made implicitly,
/// per tuple, at evaluation time become explicit, inspectable plan
/// structure, made once:
///
///   * access paths — σ_{col=value}(scan) over an indexed column becomes
///     an IndexScan with the remaining conjuncts as a residual filter;
///   * join algorithm — the whole join family (inner, semi,
///     complement/anti, outer, mark) lowers to HashJoin or SortMergeJoin
///     per ExecOptions::join_algorithm, and difference/intersection lower
///     to whole-tuple-key semi/anti joins of the same family;
///   * build-side placement — inner hash joins build on whichever input
///     the cost model estimates smaller (ExecOptions::cost_based_build_side);
///   * cost annotations — every node carries the cost model's row/cost
///     estimates, surfaced by the physical EXPLAIN.
///
/// The resulting plan is immutable and holds no catalog pointers (base
/// relations are referenced by name), so it can live in a plan cache and
/// be instantiated against the database many times by PlanRuntime.
///
/// Validation matches Executor::Evaluate: `expr` must be well-formed
/// (Expr::Arity succeeds on every node); depth limits are the caller's
/// concern because they are a property of the governor, not the plan.
Result<PhysicalPlanPtr> LowerPlan(const Database& db,
                                  const ExecOptions& options,
                                  const ExprPtr& expr);

}  // namespace bryql

#endif  // BRYQL_EXEC_LOWERING_H_
