#include "exec/executor.h"

#include <string>

#include "exec/lowering.h"
#include "exec/physical/parallel.h"
#include "exec/physical/runtime.h"
#include "exec/volcano.h"

namespace bryql {

Status Executor::CheckDepth(const ExprPtr& expr) const {
  // Depth is computed iteratively, so a plan too deep for the recursive
  // validation/lowering/construction below is rejected before it can
  // smash the stack.
  size_t max_depth = governor_->options().max_plan_depth;
  if (max_depth != 0 && expr->Depth() > max_depth) {
    return Status::ResourceExhausted(
        "plan depth " + std::to_string(expr->Depth()) +
        " exceeds max_plan_depth (" + std::to_string(max_depth) + ")");
  }
  return Status::Ok();
}

Result<Relation> Executor::Evaluate(const ExprPtr& expr) {
  BRYQL_RETURN_NOT_OK(CheckDepth(expr));
  // Validate the whole tree up front so the engines can assume
  // well-formed shapes.
  BRYQL_RETURN_NOT_OK(expr->Arity(*db_).status());
  if (options_.mode == ExecOptions::Mode::kTupleAtATime) {
    return VolcanoEvaluate(db_, options_, &stats_, governor_, expr);
  }
  BRYQL_ASSIGN_OR_RETURN(PhysicalPlanPtr plan,
                         LowerPlan(*db_, options_, expr));
  return ExecutePhysical(plan);
}

Result<bool> Executor::EvaluateBool(const ExprPtr& expr) {
  BRYQL_RETURN_NOT_OK(CheckDepth(expr));
  BRYQL_ASSIGN_OR_RETURN(size_t arity, expr->Arity(*db_));
  if (arity != 0) {
    return Status::InvalidArgument(
        "EvaluateBool requires an arity-0 (boolean) expression, got arity " +
        std::to_string(arity));
  }
  if (options_.mode == ExecOptions::Mode::kTupleAtATime) {
    return VolcanoEvaluateBool(db_, options_, &stats_, governor_, expr);
  }
  BRYQL_ASSIGN_OR_RETURN(PhysicalPlanPtr plan,
                         LowerPlan(*db_, options_, expr));
  return ExecutePhysicalBool(plan);
}

Result<PhysicalPlanPtr> Executor::Lower(const ExprPtr& expr) const {
  BRYQL_RETURN_NOT_OK(CheckDepth(expr));
  BRYQL_RETURN_NOT_OK(expr->Arity(*db_).status());
  return LowerPlan(*db_, options_, expr);
}

Result<Relation> Executor::ExecutePhysical(const PhysicalPlanPtr& plan) {
  // num_threads is a drive-time knob, not a plan property: the same
  // (cached) physical plan executes serially or morsel-parallel depending
  // on the options of the run at hand.
  const size_t threads = governor_->options().num_threads;
  if (threads > 0) {
    ParallelRuntime runtime(db_, options_.batch_size, &stats_, governor_,
                            threads);
    return runtime.Run(plan);
  }
  PlanRuntime runtime(db_, options_.batch_size, &stats_, governor_);
  return runtime.Run(plan);
}

Result<bool> Executor::ExecutePhysicalBool(const PhysicalPlanPtr& plan) {
  const size_t threads = governor_->options().num_threads;
  if (threads > 0) {
    ParallelRuntime runtime(db_, options_.batch_size, &stats_, governor_,
                            threads);
    return runtime.RunBool(plan);
  }
  PlanRuntime runtime(db_, options_.batch_size, &stats_, governor_);
  return runtime.RunBool(plan);
}

}  // namespace bryql
