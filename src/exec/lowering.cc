#include "exec/lowering.h"

#include <memory>
#include <utility>
#include <vector>

#include "algebra/cost_model.h"
#include "common/failpoints.h"

namespace bryql {
namespace {

/// Finds an equality conjunct `col = value` whose column carries an index
/// on `rel`. On a hit, `*residual` receives the remaining conjuncts (or
/// nullptr when the equality was the whole predicate). Same access-path
/// rule the volcano engine applies at iterator-construction time — here it
/// is applied once, at lowering time.
const Predicate* FindIndexedEquality(const PredicatePtr& pred,
                                     const Relation& rel,
                                     PredicatePtr* residual) {
  auto qualifies = [&](const PredicatePtr& p) {
    return p->kind() == Predicate::Kind::kCompareColVal &&
           p->op() == CompareOp::kEq && rel.HasIndex(p->lhs());
  };
  if (qualifies(pred)) {
    *residual = nullptr;
    return pred.get();
  }
  if (pred->kind() != Predicate::Kind::kAnd) return nullptr;
  const std::vector<PredicatePtr>& parts = pred->children();
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!qualifies(parts[i])) continue;
    std::vector<PredicatePtr> rest;
    for (size_t j = 0; j < parts.size(); ++j) {
      if (j != i) rest.push_back(parts[j]);
    }
    *residual = rest.empty() ? nullptr : Predicate::And(std::move(rest));
    return parts[i].get();
  }
  return nullptr;
}

class Lowerer {
 public:
  Lowerer(const Database& db, const ExecOptions& options)
      : db_(db), options_(options), cost_(&db) {}

  Result<PhysicalPlanPtr> Lower(const ExprPtr& expr) {
    auto node = std::make_shared<PhysicalNode>();
    BRYQL_ASSIGN_OR_RETURN(node->arity, expr->Arity(db_));
    // Annotate every node with the cost model's view of the *logical*
    // subtree it implements, so the physical EXPLAIN shows the estimates
    // the lowering decisions were based on.
    BRYQL_ASSIGN_OR_RETURN(CostEstimate est, cost_.Estimate(expr));
    node->est_rows = est.rows;
    node->est_cost = est.cost;

    switch (expr->kind()) {
      case ExprKind::kScan: {
        node->kind = PhysicalKind::kTableScan;
        node->relation_name = expr->relation_name();
        break;
      }
      case ExprKind::kLiteral: {
        node->kind = PhysicalKind::kLiteralScan;
        node->literal = std::make_shared<const Relation>(expr->literal());
        break;
      }
      case ExprKind::kSelect: {
        // Access-path selection for σ_pred(scan): an indexed equality
        // conjunct becomes an index lookup (point access beats any scan);
        // otherwise a base relation with a column store becomes a
        // zone-pruned columnar scan when the cost model favours it;
        // otherwise the row path, a full scan plus filter.
        BRYQL_FAILPOINT("exec.lower.columnar");
        if (expr->child()->kind() == ExprKind::kScan) {
          BRYQL_ASSIGN_OR_RETURN(const Relation* rel,
                                 db_.Get(expr->child()->relation_name()));
          PredicatePtr residual;
          const Predicate* eq =
              FindIndexedEquality(expr->predicate(), *rel, &residual);
          if (eq != nullptr) {
            node->kind = PhysicalKind::kIndexScan;
            node->relation_name = expr->child()->relation_name();
            node->index_column = eq->lhs();
            node->index_value = eq->value();
            node->predicate = std::move(residual);
            break;
          }
          if (options_.use_columnar && rel->column_store() != nullptr) {
            const double rows = static_cast<double>(rel->size());
            const double columnar_cost =
                rows * kColumnarScanCostFactor + est.rows;
            if (columnar_cost < node->est_cost) {
              node->kind = PhysicalKind::kColumnarScan;
              node->relation_name = expr->child()->relation_name();
              node->predicate = expr->predicate();
              node->est_cost = columnar_cost;
              break;
            }
          }
        }
        node->kind = PhysicalKind::kFilter;
        node->predicate = expr->predicate();
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kProject: {
        node->kind = PhysicalKind::kProject;
        node->columns = expr->columns();
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kProduct: {
        node->kind = PhysicalKind::kProduct;
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kJoin: {
        node->kind = JoinKind();
        node->variant = JoinVariant::kInner;
        node->keys = expr->keys();
        node->predicate = expr->predicate();
        if (node->kind == PhysicalKind::kHashJoin &&
            options_.cost_based_build_side) {
          BRYQL_ASSIGN_OR_RETURN(CostEstimate left_est,
                                 cost_.Estimate(expr->left()));
          BRYQL_ASSIGN_OR_RETURN(CostEstimate right_est,
                                 cost_.Estimate(expr->right()));
          // Strictly smaller only: ties keep the conventional
          // build-right so plans stay stable under symmetric inputs.
          node->build_left = left_est.rows < right_est.rows;
        }
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kSemiJoin:
      case ExprKind::kAntiJoin: {
        node->kind = JoinKind();
        node->variant = expr->kind() == ExprKind::kAntiJoin
                            ? JoinVariant::kAnti
                            : JoinVariant::kSemi;
        node->keys = expr->keys();
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kOuterJoin: {
        node->kind = JoinKind();
        node->variant = JoinVariant::kLeftOuter;
        node->keys = expr->keys();
        node->predicate = expr->constraint();
        BRYQL_ASSIGN_OR_RETURN(node->pad_arity,
                               expr->right()->Arity(db_));
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kMarkJoin: {
        node->kind = JoinKind();
        node->variant = JoinVariant::kMark;
        node->keys = expr->keys();
        node->predicate = expr->constraint();
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kUnion: {
        node->kind = PhysicalKind::kUnion;
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kDifference:
      case ExprKind::kIntersect: {
        // Difference/intersection are key-on-whole-tuple complement/semi
        // joins (paper §3.1), so they follow the configured join
        // algorithm like the rest of the join family.
        node->kind = JoinKind();
        node->variant = expr->kind() == ExprKind::kIntersect
                            ? JoinVariant::kSemi
                            : JoinVariant::kAnti;
        BRYQL_ASSIGN_OR_RETURN(size_t arity, expr->left()->Arity(db_));
        node->keys.reserve(arity);
        for (size_t i = 0; i < arity; ++i) node->keys.push_back({i, i});
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kDivision: {
        node->kind = PhysicalKind::kDivision;
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kGroupDivision: {
        node->kind = PhysicalKind::kGroupDivision;
        node->group_arity = expr->group_arity();
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kGroupCount: {
        node->kind = PhysicalKind::kGroupCount;
        node->group_arity = expr->group_arity();
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kNonEmpty: {
        node->kind = PhysicalKind::kNonEmpty;
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kBoolNot: {
        node->kind = PhysicalKind::kBoolNot;
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kBoolAnd: {
        node->kind = PhysicalKind::kBoolAnd;
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
      case ExprKind::kBoolOr: {
        node->kind = PhysicalKind::kBoolOr;
        BRYQL_RETURN_NOT_OK(LowerChildren(expr, node.get()));
        break;
      }
    }
    return PhysicalPlanPtr(std::move(node));
  }

 private:
  PhysicalKind JoinKind() const {
    return options_.join_algorithm == ExecOptions::JoinAlgorithm::kSortMerge
               ? PhysicalKind::kSortMergeJoin
               : PhysicalKind::kHashJoin;
  }

  Status LowerChildren(const ExprPtr& expr, PhysicalNode* node) {
    node->children.reserve(expr->children().size());
    for (const ExprPtr& child : expr->children()) {
      BRYQL_ASSIGN_OR_RETURN(PhysicalPlanPtr lowered, Lower(child));
      node->children.push_back(std::move(lowered));
    }
    return Status::Ok();
  }

  const Database& db_;
  const ExecOptions& options_;
  CostModel cost_;
};

/// Post-pass annotating each node's ParallelRole — the lowering-time
/// record of where the ParallelRuntime would place exchange (morsel
/// dispensers) and merge (shared materialization) points. The walk
/// mirrors ParallelRuntime::PrepareSpine: the spine is the streaming path
/// from the root through filters/projects/unions, product left inputs and
/// join probe inputs down to the scans; everything hanging off it is
/// computed once and shared.
///
/// The tree was freshly built above with a single owner, so the
/// const_cast is sound — annotation finishes before the plan is
/// published (cached, shared across threads).
void AnnotateParallel(const PhysicalNode* cnode, bool on_spine) {
  PhysicalNode* node = const_cast<PhysicalNode*>(cnode);
  if (!on_spine) {
    // Off-spine subtrees run serially (inside a coordinator
    // materialization or a shared build drain); their descendants too.
    node->parallel_role = ParallelRole::kSerial;
    for (const PhysicalPlanPtr& child : node->children) {
      AnnotateParallel(child.get(), false);
    }
    return;
  }
  switch (node->kind) {
    case PhysicalKind::kTableScan:
    case PhysicalKind::kLiteralScan:
    case PhysicalKind::kIndexScan:
    case PhysicalKind::kColumnarScan:
      node->parallel_role = ParallelRole::kPartition;
      break;
    case PhysicalKind::kFilter:
    case PhysicalKind::kProject:
      node->parallel_role = ParallelRole::kPipeline;
      AnnotateParallel(node->children[0].get(), true);
      break;
    case PhysicalKind::kUnion:
      node->parallel_role = ParallelRole::kPipeline;
      AnnotateParallel(node->children[0].get(), true);
      AnnotateParallel(node->children[1].get(), true);
      break;
    case PhysicalKind::kProduct: {
      // Left streams per worker; the right side is materialized once by
      // the coordinator and borrowed by every worker's product.
      node->parallel_role = ParallelRole::kPipeline;
      AnnotateParallel(node->children[0].get(), true);
      PhysicalNode* right = const_cast<PhysicalNode*>(node->children[1].get());
      AnnotateParallel(right, false);
      right->parallel_role = ParallelRole::kMaterializeShared;
      break;
    }
    case PhysicalKind::kHashJoin: {
      // Probe side streams per worker; the build side is drained once
      // (itself morsel-parallel) into the shared build structure.
      node->parallel_role = ParallelRole::kPipeline;
      const size_t probe = node->build_left ? 1 : 0;
      AnnotateParallel(node->children[probe].get(), true);
      PhysicalNode* build =
          const_cast<PhysicalNode*>(node->children[1 - probe].get());
      AnnotateParallel(build, true);
      build->parallel_role = ParallelRole::kBuildShared;
      break;
    }
    case PhysicalKind::kSortMergeJoin:
    case PhysicalKind::kDivision:
    case PhysicalKind::kGroupDivision:
    case PhysicalKind::kGroupCount:
      // Blocking operators terminate the spine: the coordinator computes
      // them once (serially) and workers share the materialized result.
      node->parallel_role = ParallelRole::kMaterializeShared;
      for (const PhysicalPlanPtr& child : node->children) {
        AnnotateParallel(child.get(), false);
      }
      break;
    case PhysicalKind::kNonEmpty:
    case PhysicalKind::kBoolNot:
    case PhysicalKind::kBoolAnd:
    case PhysicalKind::kBoolOr:
      // Boolean subtrees evaluate once (their truth value is shared),
      // but *through* the parallel witness machinery: composites
      // short-circuit on the coordinator while each non-emptiness test
      // races all workers over its child's spine.
      node->parallel_role = ParallelRole::kMaterializeShared;
      for (const PhysicalPlanPtr& child : node->children) {
        AnnotateParallel(child.get(), true);
      }
      break;
  }
}

}  // namespace

Result<PhysicalPlanPtr> LowerPlan(const Database& db,
                                  const ExecOptions& options,
                                  const ExprPtr& expr) {
  BRYQL_FAILPOINT("exec.lower.plan");
  Lowerer lowerer(db, options);
  BRYQL_ASSIGN_OR_RETURN(PhysicalPlanPtr plan, lowerer.Lower(expr));
  AnnotateParallel(plan.get(), /*on_spine=*/true);
  return plan;
}

}  // namespace bryql
