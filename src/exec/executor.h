#ifndef BRYQL_EXEC_EXECUTOR_H_
#define BRYQL_EXEC_EXECUTOR_H_

#include "algebra/expr.h"
#include "common/result.h"
#include "exec/stats.h"
#include "storage/database.h"

namespace bryql {

/// Physical execution knobs.
struct ExecOptions {
  enum class JoinAlgorithm {
    /// Hash build + probe (default): streams the left side.
    kHash,
    /// Classic sort-merge, the algorithm family of the paper's era.
    /// Materializes both sides; same results, different cost profile
    /// (comparisons instead of probes).
    kSortMerge,
  };
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
};

/// Evaluates algebra expressions over a database.
///
/// The engine is a streaming (volcano-style) evaluator: unary operators and
/// the probe side of join-family operators are pipelined; build sides of
/// joins, dedup sets, divisions and set operations materialize. This is
/// exactly the paper's stance in §3.2 — "algebraic operations are amenable
/// to pipelining without imposing this technique, nor requiring to perform
/// it on the whole of the query". Non-emptiness tests (closed queries) pull
/// at most one tuple from their input and therefore stop at the first
/// witness.
class Executor {
 public:
  /// `db` must outlive the executor.
  explicit Executor(const Database* db, ExecOptions options = {})
      : db_(db), options_(options) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Fully evaluates `expr` to a relation. Counters accumulate into
  /// stats(); call ResetStats() between measurements.
  Result<Relation> Evaluate(const ExprPtr& expr);

  /// Evaluates an arity-0 (boolean) expression with short-circuiting:
  /// BoolAnd/BoolOr stop at the first falsifying/satisfying child and
  /// NonEmpty stops at the first witness tuple.
  Result<bool> EvaluateBool(const ExprPtr& expr);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  const Database* db_;
  ExecOptions options_;
  ExecStats stats_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_EXECUTOR_H_
