#ifndef BRYQL_EXEC_EXECUTOR_H_
#define BRYQL_EXEC_EXECUTOR_H_

#include "algebra/expr.h"
#include "algebra/physical_plan.h"
#include "common/batch.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/stats.h"
#include "storage/database.h"

namespace bryql {

/// Physical execution knobs.
struct ExecOptions {
  enum class JoinAlgorithm {
    /// Hash build + probe (default): streams the probe side.
    kHash,
    /// Classic sort-merge, the algorithm family of the paper's era.
    /// Materializes both sides; same results, different cost profile
    /// (comparisons instead of probes).
    kSortMerge,
  };
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;

  enum class Mode {
    /// Lower to a physical plan and run batched operators (default).
    kBatched,
    /// The original volcano engine: one virtual call per tuple. Kept as
    /// the differential-testing baseline and for measuring what batching
    /// buys.
    kTupleAtATime,
  };
  Mode mode = Mode::kBatched;

  /// Tuples per NextBatch transfer in batched mode. 1 degrades to
  /// tuple-at-a-time data flow (but still through the physical layer).
  size_t batch_size = kDefaultBatchSize;

  /// Let the lowering's cost model put the smaller input of an inner hash
  /// join on the build side. Off means conventional build-right always.
  bool cost_based_build_side = true;

  /// Let the lowering turn σ_pred(scan) into a ColumnarScan when the base
  /// relation has a column store and the cost model favours it. Off means
  /// the row path (TableScan + Filter / IndexScan) is always used — the
  /// differential suite's oracle configuration.
  bool use_columnar = true;
};

/// Evaluates algebra expressions over a database.
///
/// Since the physical-layer split, the Executor is a thin facade over
/// three pieces:
///
///   * src/exec/lowering — compiles the logical Expr tree into a
///     PhysicalPlan (access paths, join algorithm, build side);
///   * src/exec/physical — batched Open/NextBatch/Close operators and the
///     PlanRuntime that instantiates plans (default mode);
///   * src/exec/volcano — the original tuple-at-a-time engine
///     (Mode::kTupleAtATime), kept bit-compatible in results, counters
///     and governor behaviour for differential testing.
///
/// Both engines implement the paper's stance in §3.2 — unary operators
/// and probe sides pipeline, build sides and divisions materialize, and
/// non-emptiness tests (closed queries) pull at most one tuple and stop
/// at the first witness.
///
/// Resource governance: every base-relation read and every intermediate
/// materialization is admitted through the ResourceGovernor, operator
/// opens poll the deadline/cancellation, and the inner loops of
/// join-family and product operators tick it so plans that filter
/// everything out still honour the deadline. When the governor trips, the
/// evaluation returns the governor's Status (kResourceExhausted /
/// kDeadlineExceeded / kCancelled) instead of a partial answer.
class Executor {
 public:
  /// `db` must outlive the executor. `governor` is borrowed and may be
  /// null, which means ungoverned (no deadline, no budgets).
  explicit Executor(const Database* db, ExecOptions options = {},
                    ResourceGovernor* governor = nullptr)
      : db_(db), options_(options),
        governor_(governor != nullptr ? governor : &default_governor_) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Fully evaluates `expr` to a relation. Counters accumulate into
  /// stats(); call ResetStats() between measurements.
  Result<Relation> Evaluate(const ExprPtr& expr);

  /// Evaluates an arity-0 (boolean) expression with short-circuiting:
  /// BoolAnd/BoolOr stop at the first falsifying/satisfying child and
  /// NonEmpty stops at the first witness tuple.
  Result<bool> EvaluateBool(const ExprPtr& expr);

  /// Lowers `expr` to a physical plan under this executor's options
  /// without running it (validates shape and depth like Evaluate). The
  /// plan is immutable and reusable — see LowerPlan.
  Result<PhysicalPlanPtr> Lower(const ExprPtr& expr) const;

  /// Runs an already-lowered plan. This is the prepared-query fast path:
  /// parse/rewrite/translate/lower all happened when the plan was made.
  Result<Relation> ExecutePhysical(const PhysicalPlanPtr& plan);

  /// Boolean counterpart of ExecutePhysical (plan arity must be 0).
  Result<bool> ExecutePhysicalBool(const PhysicalPlanPtr& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  Status CheckDepth(const ExprPtr& expr) const;

  const Database* db_;
  ExecOptions options_;
  ExecStats stats_;
  /// Fallback when no governor is injected: unlimited, so standalone
  /// Executor users keep the pre-governor behaviour.
  ResourceGovernor default_governor_;
  ResourceGovernor* governor_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_EXECUTOR_H_
