#ifndef BRYQL_EXEC_EXECUTOR_H_
#define BRYQL_EXEC_EXECUTOR_H_

#include "algebra/expr.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/stats.h"
#include "storage/database.h"

namespace bryql {

/// Physical execution knobs.
struct ExecOptions {
  enum class JoinAlgorithm {
    /// Hash build + probe (default): streams the left side.
    kHash,
    /// Classic sort-merge, the algorithm family of the paper's era.
    /// Materializes both sides; same results, different cost profile
    /// (comparisons instead of probes).
    kSortMerge,
  };
  JoinAlgorithm join_algorithm = JoinAlgorithm::kHash;
};

/// Evaluates algebra expressions over a database.
///
/// The engine is a streaming (volcano-style) evaluator: unary operators and
/// the probe side of join-family operators are pipelined; build sides of
/// joins, dedup sets, divisions and set operations materialize. This is
/// exactly the paper's stance in §3.2 — "algebraic operations are amenable
/// to pipelining without imposing this technique, nor requiring to perform
/// it on the whole of the query". Non-emptiness tests (closed queries) pull
/// at most one tuple from their input and therefore stop at the first
/// witness.
///
/// Resource governance: every base-relation read and every intermediate
/// materialization is admitted through the ResourceGovernor, operator
/// opens poll the deadline/cancellation, and the inner loops of
/// join-family and product operators tick it so plans that filter
/// everything out still honour the deadline. When the governor trips, the
/// iterator pipeline stops and the evaluation returns the governor's
/// Status (kResourceExhausted / kDeadlineExceeded / kCancelled) instead
/// of a partial answer.
class Executor {
 public:
  /// `db` must outlive the executor. `governor` is borrowed and may be
  /// null, which means ungoverned (no deadline, no budgets).
  explicit Executor(const Database* db, ExecOptions options = {},
                    ResourceGovernor* governor = nullptr)
      : db_(db), options_(options),
        governor_(governor != nullptr ? governor : &default_governor_) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Fully evaluates `expr` to a relation. Counters accumulate into
  /// stats(); call ResetStats() between measurements.
  Result<Relation> Evaluate(const ExprPtr& expr);

  /// Evaluates an arity-0 (boolean) expression with short-circuiting:
  /// BoolAnd/BoolOr stop at the first falsifying/satisfying child and
  /// NonEmpty stops at the first witness tuple.
  Result<bool> EvaluateBool(const ExprPtr& expr);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  const Database* db_;
  ExecOptions options_;
  ExecStats stats_;
  /// Fallback when no governor is injected: unlimited, so standalone
  /// Executor users keep the pre-governor behaviour.
  ResourceGovernor default_governor_;
  ResourceGovernor* governor_;
};

}  // namespace bryql

#endif  // BRYQL_EXEC_EXECUTOR_H_
