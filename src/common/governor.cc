#include "common/governor.h"

namespace bryql {

namespace {

constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

size_t LimitOrUnlimited(size_t limit) {
  return limit == 0 ? kUnlimited : limit;
}

}  // namespace

QueryOptions QueryOptions::Unlimited() {
  QueryOptions options;
  options.max_query_bytes = 0;
  options.max_formula_depth = 0;
  options.max_plan_depth = 0;
  options.max_rewrite_steps = 0;
  return options;
}

ResourceGovernor::ResourceGovernor(const QueryOptions& options)
    : options_(options),
      max_scanned_(LimitOrUnlimited(options.max_scanned_tuples)),
      max_materialized_(LimitOrUnlimited(options.max_materialized_tuples)),
      max_plan_depth_(LimitOrUnlimited(options.max_plan_depth)),
      has_deadline_(options.deadline.count() > 0),
      cancellation_(options.cancellation) {
  if (has_deadline_) {
    deadline_at_ = std::chrono::steady_clock::now() + options.deadline;
  }
}

bool ResourceGovernor::SlowCheck() {
  if (tripped()) return false;
  if (cancellation_ != nullptr && cancellation_->cancelled()) {
    status_ = Status::Cancelled("evaluation cancelled");
    return false;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_at_) {
    status_ = Status::DeadlineExceeded(
        "evaluation deadline of " +
        std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                           options_.deadline)
                           .count()) +
        "ms exceeded");
    return false;
  }
  return true;
}

void ResourceGovernor::TripBudget(const char* what, size_t used,
                                  size_t limit) {
  if (!status_.ok()) return;
  status_ = Status::ResourceExhausted(
      std::string("tuple budget exceeded: ") + what + " " +
      std::to_string(used) + " tuples, limit " + std::to_string(limit));
}

}  // namespace bryql
