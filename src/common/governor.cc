#include "common/governor.h"

namespace bryql {

namespace {

constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

size_t LimitOrUnlimited(size_t limit) {
  return limit == 0 ? kUnlimited : limit;
}

}  // namespace

QueryOptions QueryOptions::Unlimited() {
  QueryOptions options;
  options.max_query_bytes = 0;
  options.max_formula_depth = 0;
  options.max_plan_depth = 0;
  options.max_rewrite_steps = 0;
  return options;
}

SharedBudget::SharedBudget(const ResourceGovernor& parent)
    : options_(parent.options_),
      max_scanned_(parent.max_scanned_),
      max_materialized_(parent.max_materialized_),
      has_deadline_(parent.has_deadline_),
      deadline_at_(parent.deadline_at_),
      cancellation_(parent.cancellation_),
      scanned_(parent.scanned_),
      materialized_(parent.materialized_),
      status_(parent.status_) {
  if (!status_.ok()) stop_.store(true, std::memory_order_release);
}

void SharedBudget::Trip(const Status& status) {
  if (status.ok()) return;
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (status_.ok()) status_ = status;
  }
  stop_.store(true, std::memory_order_release);
}

Status SharedBudget::status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return status_;
}

ResourceGovernor::ResourceGovernor(const QueryOptions& options)
    : options_(options),
      max_scanned_(LimitOrUnlimited(options.max_scanned_tuples)),
      max_materialized_(LimitOrUnlimited(options.max_materialized_tuples)),
      max_plan_depth_(LimitOrUnlimited(options.max_plan_depth)),
      has_deadline_(options.deadline.count() > 0),
      cancellation_(options.cancellation) {
  if (has_deadline_) {
    deadline_at_ = std::chrono::steady_clock::now() + options.deadline;
  }
}

ResourceGovernor::ResourceGovernor(SharedBudget* shared)
    : options_(shared->options_),
      // Budgets are enforced against the *shared* totals during flushes,
      // never against this worker's private count — one worker seeing
      // only its own share must not trip a limit the phase as a whole
      // respects, and must not miss one it collectively exceeds.
      max_scanned_(kUnlimited),
      max_materialized_(kUnlimited),
      max_plan_depth_(LimitOrUnlimited(shared->options_.max_plan_depth)),
      has_deadline_(shared->has_deadline_),
      deadline_at_(shared->deadline_at_),  // the phase's clock, not a new one
      cancellation_(shared->cancellation_),
      shared_(shared) {}

bool ResourceGovernor::SlowCheck() {
  if (tripped()) return false;
  if (shared_ != nullptr && !FlushShard()) return false;
  if (cancellation_ != nullptr && cancellation_->cancelled()) {
    status_ = Status::Cancelled("evaluation cancelled");
    if (shared_ != nullptr) shared_->Trip(status_);
    return false;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_at_) {
    status_ = Status::DeadlineExceeded(
        "evaluation deadline of " +
        std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                           options_.deadline)
                           .count()) +
        "ms exceeded");
    if (shared_ != nullptr) shared_->Trip(status_);
    return false;
  }
  return true;
}

bool ResourceGovernor::FlushShard() {
  if (scanned_ != scanned_flushed_) {
    const size_t total =
        shared_->scanned_.fetch_add(scanned_ - scanned_flushed_,
                                    std::memory_order_relaxed) +
        (scanned_ - scanned_flushed_);
    scanned_flushed_ = scanned_;
    if (total > shared_->max_scanned_) {
      TripBudget("scanned", total, shared_->max_scanned_);
      shared_->Trip(status_);
      return false;
    }
  }
  if (materialized_ != materialized_flushed_) {
    const size_t total =
        shared_->materialized_.fetch_add(
            materialized_ - materialized_flushed_,
            std::memory_order_relaxed) +
        (materialized_ - materialized_flushed_);
    materialized_flushed_ = materialized_;
    if (total > shared_->max_materialized_) {
      TripBudget("materialized", total, shared_->max_materialized_);
      shared_->Trip(status_);
      return false;
    }
  }
  if (shared_->stop_requested()) {
    Status pool_status = shared_->status();
    if (pool_status.ok()) {
      // A peer requested a cooperative stop (first witness found): not an
      // error for the phase, but this worker's pipeline must unwind, so a
      // sentinel status makes every subsequent admission fail.
      early_stopped_ = true;
      status_ = Status::Cancelled("stopped by parallel peer");
    } else {
      status_ = std::move(pool_status);
    }
    return false;
  }
  return true;
}

Status ResourceGovernor::Reconcile() {
  if (shared_ == nullptr) return status_;
  if (status_.ok()) {
    FlushShard();
  } else if (!early_stopped_ && scanned_ != scanned_flushed_) {
    // Even a failed worker publishes its consumption so the phase totals
    // stay exact; FlushShard keeps the first-trip status it already has.
    shared_->scanned_.fetch_add(scanned_ - scanned_flushed_,
                                std::memory_order_relaxed);
    scanned_flushed_ = scanned_;
  }
  if (!status_.ok() && !early_stopped_ &&
      materialized_ != materialized_flushed_) {
    shared_->materialized_.fetch_add(materialized_ - materialized_flushed_,
                                     std::memory_order_relaxed);
    materialized_flushed_ = materialized_;
  }
  return status_;
}

void ResourceGovernor::AbsorbShared(const SharedBudget& shared) {
  scanned_ = shared.scanned();
  materialized_ = shared.materialized();
  scanned_flushed_ = scanned_;
  materialized_flushed_ = materialized_;
  Trip(shared.status());
}

void ResourceGovernor::TripBudget(const char* what, size_t used,
                                  size_t limit) {
  if (!status_.ok()) return;
  status_ = Status::ResourceExhausted(
      std::string("tuple budget exceeded: ") + what + " " +
      std::to_string(used) + " tuples, limit " + std::to_string(limit));
}

}  // namespace bryql
