#ifndef BRYQL_COMMON_STATUS_H_
#define BRYQL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace bryql {

/// Error categories used across the library. The set is deliberately small:
/// a code selects a recovery strategy, the message carries the detail.
enum class StatusCode {
  kOk = 0,
  /// A malformed input: unparsable query text, invalid CSV, bad arity.
  kInvalidArgument,
  /// A name (relation, variable, column) that is not in scope.
  kNotFound,
  /// A query that is syntactically fine but outside the evaluable class,
  /// e.g. a formula whose variables are not restricted (Definitions 2/3).
  kUnsupported,
  /// An internal invariant was violated. Always a bug in bryql itself.
  kInternal,
  /// A resource budget (tuples scanned/materialized, plan depth, rewrite
  /// steps) was exhausted. The query may succeed with larger limits.
  kResourceExhausted,
  /// The evaluation's wall-clock deadline passed before it completed.
  kDeadlineExceeded,
  /// The evaluation was aborted through its CancellationToken.
  kCancelled,
  /// A transient infrastructure fault (injected fault, contained
  /// exception, momentary overload): the query itself is fine and an
  /// identical retry may succeed. This is the retryable class the
  /// service layer's backoff loop keys on.
  kTransient,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. The library does not throw
/// exceptions on any query-processing path; fallible operations return
/// Status (or Result<T> when they also produce a value).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status Transient(std::string message) {
    return Status(StatusCode::kTransient, std::move(message));
  }
  /// A kInternal produced by an exception-containment barrier (an
  /// operator or pipeline throw caught and converted to Status). Same
  /// code as Internal — the throw is still a bug or an environmental
  /// fault inside bryql — but tagged so retry layers can tell "a throw
  /// we contained, possibly injected or allocation-induced, worth
  /// retrying" apart from a deterministic invariant breach.
  static Status ContainedException(std::string message) {
    Status status(StatusCode::kInternal, std::move(message));
    status.contained_exception_ = true;
    return status;
  }

  /// True for the three resource-governor codes — the errors that mean
  /// "the query was stopped", not "the query is wrong".
  bool IsResourceError() const {
    return code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kCancelled;
  }

  /// True for kTransient — the error class where retrying the identical
  /// request is sensible. The resource errors above are deliberately not
  /// transient: a budget verdict is a property of the query, not of luck.
  bool IsTransient() const { return code_ == StatusCode::kTransient; }

  /// True only for statuses built via ContainedException. Other
  /// kInternal statuses (a broken invariant detected by the code itself)
  /// are deterministic and must not be retried or relabelled transient.
  bool IsContainedException() const { return contained_exception_; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  bool contained_exception_ = false;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace bryql

/// Propagates a non-OK Status to the caller. Mirrors the Arrow/RocksDB
/// RETURN_NOT_OK idiom.
#define BRYQL_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::bryql::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // BRYQL_COMMON_STATUS_H_
