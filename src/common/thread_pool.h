#ifndef BRYQL_COMMON_THREAD_POOL_H_
#define BRYQL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bryql {

/// A fixed-size pool of worker threads executing submitted closures in
/// FIFO order. The pool is deliberately minimal: no futures, no task
/// dependencies — callers coordinate through their own latches (see
/// RunOnWorkers below), which keeps the invariant that **a pool task never
/// blocks on another pool task**. The parallel runtime preserves that
/// invariant by running one partition inline on the submitting
/// (coordinator) thread, so phases make progress even when every pool
/// thread is busy with other queries.
class ThreadPool {
 public:
  /// `threads` — number of worker threads (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some pool thread. Never blocks.
  void Submit(std::function<void()> task);

  size_t size() const { return threads_.size(); }

  /// The process-wide shared pool, sized to the hardware, created on
  /// first use and joined at process exit. Query execution at any
  /// `num_threads` degree shares this one pool; the degree controls how
  /// many partitions a query fans out into, not how many threads exist.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(worker_index)` for worker_index in [0, workers): index 0 runs
/// inline on the calling thread, the rest are submitted to `pool`.
/// Returns only after every invocation has completed. This is the
/// fork/join primitive of each parallel phase; because the caller always
/// executes one partition itself, the phase completes even on a saturated
/// pool (the pool threads merely add parallelism, they are never required
/// for progress).
void RunOnWorkers(ThreadPool& pool, size_t workers,
                  const std::function<void(size_t)>& fn);

}  // namespace bryql

#endif  // BRYQL_COMMON_THREAD_POOL_H_
