#ifndef BRYQL_COMMON_STR_UTIL_H_
#define BRYQL_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bryql {

/// Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

}  // namespace bryql

#endif  // BRYQL_COMMON_STR_UTIL_H_
