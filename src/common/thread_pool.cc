#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace bryql {

ThreadPool::ThreadPool(size_t threads) {
  threads_.reserve(std::max<size_t>(1, threads));
  for (size_t i = 0; i < std::max<size_t>(1, threads); ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // A function-local static *object* (not a leaked pointer): destroyed at
  // process exit, which joins the workers — so LeakSanitizer and TSan see
  // a clean shutdown.
  static ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

void RunOnWorkers(ThreadPool& pool, size_t workers,
                  const std::function<void(size_t)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  // A hand-rolled latch (std::latch needs no count adjustment either, but
  // this keeps the file self-contained on C++17-era toolchains).
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t pending = workers - 1;
  for (size_t i = 1; i < workers; ++i) {
    pool.Submit([&, i] {
      fn(i);
      // Notify under the lock: once the coordinator observes pending == 0
      // it destroys these locals, so the signal must complete before the
      // lock is released (an unlocked notify could touch a dead condvar).
      std::lock_guard<std::mutex> lock(done_mutex);
      --pending;
      done_cv.notify_one();
    });
  }
  fn(0);  // the coordinator's own partition — guarantees progress
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
}

}  // namespace bryql
