#ifndef BRYQL_COMMON_HASH_UTIL_H_
#define BRYQL_COMMON_HASH_UTIL_H_

#include <cstddef>

namespace bryql {

/// Mixes `value` into `seed` (boost::hash_combine recipe). Used to hash
/// tuples and composite keys consistently across the engine.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace bryql

#endif  // BRYQL_COMMON_HASH_UTIL_H_
