#include "common/value.h"

#include <functional>
#include <sstream>

namespace bryql {

namespace {

/// True when the pair mixes kInt and kDouble, which compare numerically.
bool IsNumericPair(const Value& a, const Value& b) {
  auto numeric = [](ValueKind k) {
    return k == ValueKind::kInt || k == ValueKind::kDouble;
  };
  return numeric(a.kind()) && numeric(b.kind()) && a.kind() != b.kind();
}

double NumericOf(const Value& v) {
  return v.kind() == ValueKind::kInt ? static_cast<double>(v.AsInt())
                                     : v.AsDouble();
}

}  // namespace

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "∅";
    case ValueKind::kMark:
      return "⊥";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueKind::kString:
      return "'" + AsString() + "'";
  }
  return "<bad value>";
}

bool operator==(const Value& a, const Value& b) {
  if (IsNumericPair(a, b)) return NumericOf(a) == NumericOf(b);
  return a.rep_ == b.rep_;
}

bool operator<(const Value& a, const Value& b) {
  if (IsNumericPair(a, b)) return NumericOf(a) < NumericOf(b);
  return a.rep_ < b.rep_;
}

size_t Value::Hash() const {
  // Int and double hash through the same numeric path so that values that
  // compare equal (Int(2) == Double(2.0)) hash alike.
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueKind::kMark:
      return 0xc2b2ae3d27d4eb4full;
    case ValueKind::kInt:
      return std::hash<double>{}(static_cast<double>(AsInt()));
    case ValueKind::kDouble:
      return std::hash<double>{}(AsDouble());
    case ValueKind::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace bryql
