#include "common/failpoints.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/str_util.h"

namespace bryql {
namespace failpoints {

namespace {

struct Armed {
  Status status;
  size_t skip = 0;  // hits to let through before firing (deterministic)
  /// Probabilistic trigger; <0 means "deterministic mode" (use skip).
  double probability = -1.0;
  uint64_t seed = 0;
  /// Hit index within this arming, input to the per-hit fire decision.
  size_t hit_index = 0;
};

std::mutex& Mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Armed>& Registry() {
  static std::map<std::string, Armed> registry;
  return registry;
}

std::map<std::string, SiteStats>& StatsRegistry() {
  static std::map<std::string, SiteStats> stats;
  return stats;
}

std::atomic<size_t>& ArmedCount() {
  static std::atomic<size_t> count{0};
  return count;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  // FNV-1a: stable across platforms, so a seed names the same fault
  // schedule everywhere.
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The fire decision for one probabilistic hit: a pure function of
/// (seed, site, hit index) — thread interleavings may permute which
/// caller observes which hit index, but the schedule itself is fixed.
bool FiresAt(const Armed& armed, const std::string& name, size_t hit) {
  uint64_t r = SplitMix64(armed.seed ^ HashName(name) ^
                          SplitMix64(static_cast<uint64_t>(hit)));
  // Map to [0,1): 53 high bits, the double-precision mantissa width.
  double u = static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
  return u < armed.probability;
}

/// Shared core of Hit/HitOrThrow: the armed Status when the site fires,
/// OK otherwise. Counters advance here.
Status HitLocked(const char* name) {
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::Ok();
  SiteStats& stats = StatsRegistry()[name];
  ++stats.hits;
  Armed& armed = it->second;
  if (armed.probability >= 0.0) {
    bool fires = FiresAt(armed, it->first, armed.hit_index++);
    if (!fires) return Status::Ok();
  } else if (armed.skip > 0) {
    --armed.skip;
    return Status::Ok();
  }
  ++stats.fires;
  return armed.status;
}

void Insert(const std::string& name, Armed armed) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] = Registry().insert_or_assign(name, std::move(armed));
  (void)it;
  if (inserted) ArmedCount().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

bool enabled() {
#ifdef BRYQL_FAILPOINTS
  return true;
#else
  return false;
#endif
}

void Arm(const std::string& name, Status status, size_t skip) {
  if (status.ok()) return;
  Armed armed;
  armed.status = std::move(status);
  armed.skip = skip;
  Insert(name, std::move(armed));
}

void ArmProbabilistic(const std::string& name, Status status,
                      double probability, uint64_t seed) {
  if (status.ok()) return;
  Armed armed;
  armed.status = std::move(status);
  armed.probability = probability < 0.0   ? 0.0
                      : probability > 1.0 ? 1.0
                                          : probability;
  armed.seed = seed;
  Insert(name, std::move(armed));
}

void Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(name) > 0) {
    ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  ArmedCount().store(0, std::memory_order_relaxed);
  Registry().clear();
}

bool AnyArmed() {
  return ArmedCount().load(std::memory_order_relaxed) > 0;
}

Status Hit(const char* name) {
  if (!AnyArmed()) return Status::Ok();
  std::lock_guard<std::mutex> lock(Mutex());
  return HitLocked(name);
}

void HitOrThrow(const char* name) {
  if (!AnyArmed()) return;
  Status status;
  {
    std::lock_guard<std::mutex> lock(Mutex());
    status = HitLocked(name);
  }
  if (!status.ok()) throw std::runtime_error(status.message());
}

std::map<std::string, SiteStats> Stats() {
  std::lock_guard<std::mutex> lock(Mutex());
  return StatsRegistry();
}

void ResetStats() {
  std::lock_guard<std::mutex> lock(Mutex());
  StatsRegistry().clear();
}

Status ArmFromSpec(const std::string& spec) {
  if (!enabled()) {
    return Status::Unsupported(
        "failpoints are compiled out (build with -DBRYQL_FAILPOINTS=ON)");
  }
  for (const std::string& raw : Split(spec, ',')) {
    std::string entry(Trim(raw));
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    std::string site(Trim(entry.substr(
        0, eq == std::string::npos ? entry.size() : eq)));
    if (site.empty()) {
      return Status::InvalidArgument("failpoint spec with empty site: '" +
                                     entry + "'");
    }
    Status injected = Status::Transient("failpoint " + site);
    if (eq == std::string::npos) {
      Arm(site, std::move(injected));
      continue;
    }
    std::string trigger(Trim(entry.substr(eq + 1)));
    if (trigger.rfind("skip", 0) == 0) {
      char* end = nullptr;
      unsigned long long skip = std::strtoull(trigger.c_str() + 4, &end, 10);
      if (end == trigger.c_str() + 4 || *end != '\0') {
        return Status::InvalidArgument("bad skip trigger in failpoint spec: '" +
                                       entry + "'");
      }
      Arm(site, std::move(injected), static_cast<size_t>(skip));
      continue;
    }
    if (trigger.rfind("p", 0) == 0) {
      // p<float>@seed<uint>, e.g. p0.01@seed42.
      size_t at = trigger.find("@seed");
      if (at == std::string::npos) {
        return Status::InvalidArgument(
            "probabilistic trigger missing '@seed' in failpoint spec: '" +
            entry + "'");
      }
      char* end = nullptr;
      std::string prob_text = trigger.substr(1, at - 1);
      double p = std::strtod(prob_text.c_str(), &end);
      if (prob_text.empty() || end != prob_text.c_str() + prob_text.size() ||
          p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            "bad probability in failpoint spec: '" + entry + "'");
      }
      std::string seed_text = trigger.substr(at + 5);
      unsigned long long seed = std::strtoull(seed_text.c_str(), &end, 10);
      if (seed_text.empty() || end != seed_text.c_str() + seed_text.size()) {
        return Status::InvalidArgument("bad seed in failpoint spec: '" +
                                       entry + "'");
      }
      ArmProbabilistic(site, std::move(injected), p,
                       static_cast<uint64_t>(seed));
      continue;
    }
    return Status::InvalidArgument("unknown trigger in failpoint spec: '" +
                                   entry + "'");
  }
  return Status::Ok();
}

Status InitFromEnv() {
  const char* env = std::getenv("BRYQL_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::Ok();
  return ArmFromSpec(env);
}

std::vector<std::string> KnownFailpoints() {
  // Keep in sync with the BRYQL_FAILPOINT sites and DESIGN.md §6.
  return {
      "parse.query",              // ParseQuery entry
      "rewrite.step",             // each normalization rule application
      "translate.plan",           // plan construction entry
      "exec.lower.plan",          // logical → physical lowering entry
      "exec.lower.columnar",      // scan access-path choice for a select
      "exec.iterator.open",       // every operator open / instantiation
      "exec.scan.open",           // base-relation scan open
      "exec.hash.insert",         // join-family hash-table build, per tuple
      "exec.materialize.insert",  // result/dedup materialization, per tuple
      "exec.physical.throw",      // throws at operator dispatch (barrier test)
      "nestedloop.enumerate",     // Figure 1 producer-block entry
  };
}

}  // namespace failpoints
}  // namespace bryql
