#include "common/failpoints.h"

#include <atomic>
#include <map>
#include <mutex>

namespace bryql {
namespace failpoints {

namespace {

struct Armed {
  Status status;
  size_t skip = 0;  // hits to let through before firing
};

std::mutex& Mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Armed>& Registry() {
  static std::map<std::string, Armed> registry;
  return registry;
}

std::atomic<size_t>& ArmedCount() {
  static std::atomic<size_t> count{0};
  return count;
}

}  // namespace

bool enabled() {
#ifdef BRYQL_FAILPOINTS
  return true;
#else
  return false;
#endif
}

void Arm(const std::string& name, Status status, size_t skip) {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] =
      Registry().insert_or_assign(name, Armed{std::move(status), skip});
  (void)it;
  if (inserted) ArmedCount().fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(name) > 0) {
    ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  ArmedCount().store(0, std::memory_order_relaxed);
  Registry().clear();
}

bool AnyArmed() {
  return ArmedCount().load(std::memory_order_relaxed) > 0;
}

Status Hit(const char* name) {
  if (!AnyArmed()) return Status::Ok();
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::Ok();
  if (it->second.skip > 0) {
    --it->second.skip;
    return Status::Ok();
  }
  return it->second.status;
}

std::vector<std::string> KnownFailpoints() {
  // Keep in sync with the BRYQL_FAILPOINT sites and DESIGN.md §6.
  return {
      "parse.query",              // ParseQuery entry
      "rewrite.step",             // each normalization rule application
      "translate.plan",           // plan construction entry
      "exec.lower.plan",          // logical → physical lowering entry
      "exec.iterator.open",       // every operator open / instantiation
      "exec.scan.open",           // base-relation scan open
      "exec.hash.insert",         // join-family hash-table build, per tuple
      "exec.materialize.insert",  // result/dedup materialization, per tuple
      "nestedloop.enumerate",     // Figure 1 producer-block entry
  };
}

}  // namespace failpoints
}  // namespace bryql
