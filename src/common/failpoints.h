#ifndef BRYQL_COMMON_FAILPOINTS_H_
#define BRYQL_COMMON_FAILPOINTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace bryql {
namespace failpoints {

/// Named fault-injection points at operator boundaries, for testing that
/// every evaluation strategy propagates mid-plan failures as clean non-OK
/// Status with no crash, leak, or partial answer.
///
/// The facility is compiled in only under the BRYQL_FAILPOINTS build flag
/// (CMake option of the same name); without it the BRYQL_FAILPOINT macro
/// expands to nothing and the arming API below is a no-op that reports
/// enabled() == false, so tests can skip cleanly.
///
/// Naming scheme: `<layer>.<site>[.<event>]`, e.g. "exec.scan.open",
/// "exec.hash.insert", "rewrite.step". The canonical list lives in
/// KnownFailpoints() and DESIGN.md §5.
///
/// Two trigger modes exist per site:
///   * deterministic — after `skip` further hits, every hit fires
///     (Arm, the original behaviour);
///   * probabilistic — each hit fires independently with probability `p`,
///     decided by a hash of (seed, site, per-site hit index), so a fault
///     schedule is a pure function of the seed and the hit sequence —
///     the chaos harness's reproducibility contract (ArmProbabilistic).

/// True when the library was built with BRYQL_FAILPOINTS.
bool enabled();

/// Arms `name`: after `skip` further hits, every hit returns `status`.
/// `status` must be non-OK. Overwrites any previous arming of `name`.
void Arm(const std::string& name, Status status, size_t skip = 0);

/// Arms `name` probabilistically: each hit fires with probability
/// `probability` (clamped to [0,1]), decided deterministically from
/// `seed`, the site name and the site's hit index. Overwrites any
/// previous arming of `name`. `status` must be non-OK.
void ArmProbabilistic(const std::string& name, Status status,
                      double probability, uint64_t seed);

/// Disarms one failpoint / all failpoints.
void Disarm(const std::string& name);
void DisarmAll();

/// The Status armed at `name`, or OK when `name` is disarmed, still in its
/// skip window, not selected by its probabilistic trigger, or the facility
/// is compiled out. Called by the BRYQL_FAILPOINT macro; tests normally
/// don't need it directly.
Status Hit(const char* name);

/// Throwing twin of Hit, for the BRYQL_FAILPOINT_THROW macro: when the
/// armed trigger fires it *throws* std::runtime_error(message) instead of
/// returning, simulating an operator whose failure escapes as a C++
/// exception rather than a Status. Used to test the exception-isolation
/// barrier at the physical-operator dispatch.
void HitOrThrow(const char* name);

/// True when any failpoint is armed (one relaxed atomic load — the only
/// cost a disarmed build-with-failpoints pays per site).
bool AnyArmed();

/// Per-site observation counters, accumulated while any failpoint is
/// armed (the disarmed fast path stays counter-free). `hits` counts every
/// evaluation of an *armed* site, `fires` the subset that actually
/// injected. Survives Disarm; cleared by ResetStats.
struct SiteStats {
  size_t hits = 0;
  size_t fires = 0;
};

/// Snapshot of every armed site's counters since the last ResetStats.
std::map<std::string, SiteStats> Stats();
void ResetStats();

/// Parses one BRYQL_FAILPOINTS env-style spec list and arms accordingly.
/// Grammar (comma-separated entries):
///
///   entry  := site [ '=' trigger ]
///   trigger:= 'p' <float> '@seed' <uint>   probabilistic, e.g. p0.01@seed42
///           | 'skip' <uint>                deterministic after N hits
///
/// A bare site always fires. Armed sites inject
/// Status::Transient("failpoint <site>"). Returns InvalidArgument on a
/// malformed entry (earlier well-formed entries stay armed), or
/// Unsupported when the facility is compiled out.
Status ArmFromSpec(const std::string& spec);

/// Reads the BRYQL_FAILPOINTS environment variable (if set and non-empty)
/// through ArmFromSpec. The variable shares its name with the CMake
/// option deliberately: the build flag compiles the sites in, the env var
/// arms them at process start.
Status InitFromEnv();

/// Every failpoint name compiled into the library, for exhaustive stress
/// tests ("for each known failpoint: arm, run, expect non-OK").
std::vector<std::string> KnownFailpoints();

}  // namespace failpoints
}  // namespace bryql

/// Injection site: evaluates to a return of the armed Status when `name`
/// is armed. Only valid inside functions returning Status or Result<T>.
#ifdef BRYQL_FAILPOINTS
#define BRYQL_FAILPOINT(name)                                \
  do {                                                       \
    if (::bryql::failpoints::AnyArmed()) {                   \
      ::bryql::Status _fp = ::bryql::failpoints::Hit(name);  \
      if (!_fp.ok()) return _fp;                             \
    }                                                        \
  } while (false)
#else
#define BRYQL_FAILPOINT(name) \
  do {                        \
  } while (false)
#endif

/// Injection site that *throws* when armed — simulates an operator whose
/// fault escapes as an exception instead of a Status, for testing the
/// dispatch-level exception barrier. Valid in any function.
#ifdef BRYQL_FAILPOINTS
#define BRYQL_FAILPOINT_THROW(name)                \
  do {                                             \
    if (::bryql::failpoints::AnyArmed()) {         \
      ::bryql::failpoints::HitOrThrow(name);       \
    }                                              \
  } while (false)
#else
#define BRYQL_FAILPOINT_THROW(name) \
  do {                              \
  } while (false)
#endif

#endif  // BRYQL_COMMON_FAILPOINTS_H_
