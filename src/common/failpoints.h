#ifndef BRYQL_COMMON_FAILPOINTS_H_
#define BRYQL_COMMON_FAILPOINTS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace bryql {
namespace failpoints {

/// Named fault-injection points at operator boundaries, for testing that
/// every evaluation strategy propagates mid-plan failures as clean non-OK
/// Status with no crash, leak, or partial answer.
///
/// The facility is compiled in only under the BRYQL_FAILPOINTS build flag
/// (CMake option of the same name); without it the BRYQL_FAILPOINT macro
/// expands to nothing and the arming API below is a no-op that reports
/// enabled() == false, so tests can skip cleanly.
///
/// Naming scheme: `<layer>.<site>[.<event>]`, e.g. "exec.scan.open",
/// "exec.hash.insert", "rewrite.step". The canonical list lives in
/// KnownFailpoints() and DESIGN.md §5.

/// True when the library was built with BRYQL_FAILPOINTS.
bool enabled();

/// Arms `name`: after `skip` further hits, every hit returns `status`.
/// `status` must be non-OK. Overwrites any previous arming of `name`.
void Arm(const std::string& name, Status status, size_t skip = 0);

/// Disarms one failpoint / all failpoints.
void Disarm(const std::string& name);
void DisarmAll();

/// The Status armed at `name`, or OK when `name` is disarmed, still in its
/// skip window, or the facility is compiled out. Called by the
/// BRYQL_FAILPOINT macro; tests normally don't need it directly.
Status Hit(const char* name);

/// True when any failpoint is armed (one relaxed atomic load — the only
/// cost a disarmed build-with-failpoints pays per site).
bool AnyArmed();

/// Every failpoint name compiled into the library, for exhaustive stress
/// tests ("for each known failpoint: arm, run, expect non-OK").
std::vector<std::string> KnownFailpoints();

}  // namespace failpoints
}  // namespace bryql

/// Injection site: evaluates to a return of the armed Status when `name`
/// is armed. Only valid inside functions returning Status or Result<T>.
#ifdef BRYQL_FAILPOINTS
#define BRYQL_FAILPOINT(name)                                \
  do {                                                       \
    if (::bryql::failpoints::AnyArmed()) {                   \
      ::bryql::Status _fp = ::bryql::failpoints::Hit(name);  \
      if (!_fp.ok()) return _fp;                             \
    }                                                        \
  } while (false)
#else
#define BRYQL_FAILPOINT(name) \
  do {                        \
  } while (false)
#endif

#endif  // BRYQL_COMMON_FAILPOINTS_H_
