#include "common/str_util.h"

#include <cctype>

namespace bryql {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

}  // namespace bryql
