#ifndef BRYQL_COMMON_GOVERNOR_H_
#define BRYQL_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>

#include "common/status.h"

namespace bryql {

/// A thread-safe cancellation flag. The evaluating thread polls it through
/// the ResourceGovernor; any other thread may call Cancel() to abort the
/// evaluation, which then surfaces as StatusCode::kCancelled.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token for a fresh evaluation.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-evaluation resource limits. The zero-argument default is safe for
/// interactive use: no deadline and no tuple budgets, but finite guards on
/// query size, nesting depth, and rewrite steps so adversarial *inputs*
/// cannot smash the stack or spin the rewriter even when the caller sets
/// nothing. A zero value means "unlimited" for every field.
struct QueryOptions {
  /// Wall-clock deadline for the whole evaluation (parse → rewrite →
  /// translate → execute). 0 = none.
  std::chrono::nanoseconds deadline{0};
  /// Cap on tuples inserted into intermediate state (hash tables, dedup
  /// sets, materialized results). 0 = unlimited.
  size_t max_materialized_tuples = 0;
  /// Cap on tuples read out of base relations. 0 = unlimited.
  size_t max_scanned_tuples = 0;
  /// Cap on query text size in bytes. 0 = unlimited.
  size_t max_query_bytes = 1 << 20;
  /// Cap on formula nesting depth (parser recursion and the ASTs accepted
  /// by QueryProcessor). 0 = unlimited. Sized so every recursive pass
  /// over the AST stays stack-safe even under sanitizers.
  size_t max_formula_depth = 256;
  /// Cap on algebra plan depth accepted by the executor. Translation can
  /// deepen the tree, so the default is a multiple of max_formula_depth.
  size_t max_plan_depth = 2048;
  /// Cap on normalization rule applications. The rule system terminates
  /// (Proposition 1), so this only turns a rewriter bug into a
  /// diagnosable kResourceExhausted instead of a hang.
  size_t max_rewrite_steps = 200000;
  /// Optional external abort switch; must outlive the evaluation. The
  /// governor polls it at operator opens and every few thousand tuples.
  const CancellationToken* cancellation = nullptr;

  /// Everything unlimited — the pre-governor behaviour, for benchmarks.
  static QueryOptions Unlimited();
};

/// Tracks one evaluation's resource consumption against a QueryOptions
/// budget. The hot-path entry points (AdmitScan / AdmitMaterialize /
/// Tick) are branch-cheap bools: a counter bump, a budget compare, and —
/// every kCheckInterval calls — a clock read and cancellation poll. The
/// first violation is latched into status() and every later admission
/// fails, so iterator pipelines simply stop and the driving loop
/// propagates the latched Status.
///
/// A governor is single-evaluation, single-thread state (only the
/// CancellationToken it polls is shared); create one per Run.
class ResourceGovernor {
 public:
  /// Ungoverned: all admissions succeed (modulo nothing), no deadline.
  ResourceGovernor() : ResourceGovernor(QueryOptions::Unlimited()) {}

  explicit ResourceGovernor(const QueryOptions& options);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Counts one base-relation tuple read. False once any limit trips.
  bool AdmitScan() {
    if (++scanned_ > max_scanned_) {
      TripBudget("scanned", scanned_ - 1, max_scanned_);
      return false;
    }
    return Tick();
  }

  /// Counts one tuple inserted into intermediate state.
  bool AdmitMaterialize() {
    if (++materialized_ > max_materialized_) {
      TripBudget("materialized", materialized_ - 1, max_materialized_);
      return false;
    }
    return Tick();
  }

  /// A unit of work that consumes no tuple budget (e.g. one iteration of
  /// a join or product inner loop). Periodically polls deadline and
  /// cancellation so pipelines that filter everything out still stop.
  bool Tick() {
    if ((++ticks_ & (kCheckInterval - 1)) != 0) return !tripped();
    return SlowCheck();
  }

  /// Deadline/cancellation poll as a Status, for operator-open and
  /// phase-boundary call sites.
  Status CheckNow() {
    if (!SlowCheck()) return status_;
    return Status::Ok();
  }

  /// Depth admission for recursive descent (plan construction). Pair with
  /// ExitDepth; the companion RAII type below does so automatically.
  bool EnterDepth() {
    if (++depth_ > max_plan_depth_) {
      if (status_.ok()) {
        status_ = Status::ResourceExhausted(
            "plan depth exceeds limit (" + std::to_string(max_plan_depth_) +
            ")");
      }
      --depth_;
      return false;
    }
    return true;
  }
  void ExitDepth() { --depth_; }

  /// Latches an externally detected violation (fault injection, callers
  /// with their own checks). First trip wins.
  void Trip(Status status) {
    if (status_.ok() && !status.ok()) status_ = std::move(status);
  }

  bool tripped() const { return !status_.ok(); }
  /// The first violation, or OK. Driving loops check this after an
  /// iterator chain reports exhaustion to distinguish "input consumed"
  /// from "budget tripped".
  const Status& status() const { return status_; }

  const QueryOptions& options() const { return options_; }
  size_t scanned() const { return scanned_; }
  size_t materialized() const { return materialized_; }

  /// Deadline/cancel poll period, in admissions. Power of two so the
  /// hot-path modulo is a mask.
  static constexpr size_t kCheckInterval = 1024;

 private:
  bool SlowCheck();
  void TripBudget(const char* what, size_t used, size_t limit);

  QueryOptions options_;
  size_t max_scanned_;
  size_t max_materialized_;
  size_t max_plan_depth_;
  bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_at_;
  const CancellationToken* cancellation_;

  size_t scanned_ = 0;
  size_t materialized_ = 0;
  size_t ticks_ = 0;
  size_t depth_ = 0;
  Status status_;
};

/// RAII depth admission: `GovernorDepthGuard guard(gov); if (!guard.ok())
/// return gov->status();`.
class GovernorDepthGuard {
 public:
  explicit GovernorDepthGuard(ResourceGovernor* governor)
      : governor_(governor), ok_(governor->EnterDepth()) {}
  ~GovernorDepthGuard() {
    if (ok_) governor_->ExitDepth();
  }
  GovernorDepthGuard(const GovernorDepthGuard&) = delete;
  GovernorDepthGuard& operator=(const GovernorDepthGuard&) = delete;
  bool ok() const { return ok_; }

 private:
  ResourceGovernor* governor_;
  bool ok_;
};

}  // namespace bryql

#endif  // BRYQL_COMMON_GOVERNOR_H_
