#ifndef BRYQL_COMMON_GOVERNOR_H_
#define BRYQL_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <mutex>

#include "common/status.h"

namespace bryql {

/// A thread-safe cancellation flag. The evaluating thread polls it through
/// the ResourceGovernor; any other thread may call Cancel() to abort the
/// evaluation, which then surfaces as StatusCode::kCancelled.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token for a fresh evaluation.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-evaluation resource limits. The zero-argument default is safe for
/// interactive use: no deadline and no tuple budgets, but finite guards on
/// query size, nesting depth, and rewrite steps so adversarial *inputs*
/// cannot smash the stack or spin the rewriter even when the caller sets
/// nothing. A zero value means "unlimited" for every field.
struct QueryOptions {
  /// Wall-clock deadline for the whole evaluation (parse → rewrite →
  /// translate → execute). 0 = none.
  std::chrono::nanoseconds deadline{0};
  /// Cap on tuples inserted into intermediate state (hash tables, dedup
  /// sets, materialized results). 0 = unlimited.
  size_t max_materialized_tuples = 0;
  /// Cap on tuples read out of base relations. 0 = unlimited.
  size_t max_scanned_tuples = 0;
  /// Cap on query text size in bytes. 0 = unlimited.
  size_t max_query_bytes = 1 << 20;
  /// Cap on formula nesting depth (parser recursion and the ASTs accepted
  /// by QueryProcessor). 0 = unlimited. Sized so every recursive pass
  /// over the AST stays stack-safe even under sanitizers.
  size_t max_formula_depth = 256;
  /// Cap on algebra plan depth accepted by the executor. Translation can
  /// deepen the tree, so the default is a multiple of max_formula_depth.
  size_t max_plan_depth = 2048;
  /// Cap on normalization rule applications. The rule system terminates
  /// (Proposition 1), so this only turns a rewriter bug into a
  /// diagnosable kResourceExhausted instead of a hang.
  size_t max_rewrite_steps = 200000;
  /// Optional external abort switch; must outlive the evaluation. The
  /// governor polls it at every operator instantiation (CheckNow) and
  /// every ResourceGovernor::kCheckInterval = 1024 admissions/ticks —
  /// see the cadence note on ResourceGovernor::Tick.
  const CancellationToken* cancellation = nullptr;
  /// Worker threads for batched physical execution. 0 = serial (today's
  /// behaviour, bit-for-bit); N > 0 fans each pipeline out into N
  /// morsel-fed partitions on the shared ThreadPool. The volcano
  /// (tuple-at-a-time) engine and the nested-loop strategy ignore this.
  /// Deliberately absent from the plan-cache key: the degree picks how a
  /// plan is *driven*, not what it is, so one cached plan serves any
  /// parallelism degree.
  size_t num_threads = 0;
  /// Skip the plan cache for this run: preparation runs cold and the
  /// result is not cached. A degradation rung of the service layer — a
  /// plan suspected of being poisoned (e.g. it keeps failing while peers
  /// succeed) is rebuilt from the text without evicting anything.
  bool bypass_plan_cache = false;
  /// Run on the tuple-at-a-time (volcano) engine regardless of the
  /// processor's configured mode. The service layer's last degradation
  /// rung: the simplest engine, serial by construction, bypassing the
  /// batched physical operators entirely. Like num_threads, this picks
  /// how a plan is *driven* and is absent from the plan-cache key.
  bool force_tuple_engine = false;

  /// Everything unlimited — the pre-governor behaviour, for benchmarks.
  static QueryOptions Unlimited();
};

class ResourceGovernor;

/// The shared side of a parallel evaluation's budget: one SharedBudget per
/// parallel phase, fed by per-worker ResourceGovernor shards. Workers
/// count admissions locally (no shared-cache traffic on the hot path) and
/// reconcile their deltas into these atomics in chunks — every
/// ResourceGovernor::kCheckInterval admissions and once more when the
/// worker finishes — so a budget violation is detected at the latest at
/// the end of the phase, and the trip verdict (tripped vs. not) is
/// *exactly* the serial one because the totals are exactly the serial
/// totals.
///
/// The stop flag doubles as the first-witness short-circuit channel: a
/// worker that finds a witness calls RequestStop() without tripping a
/// status, and its peers exit early with `early_stopped()` set on their
/// shard instead of an error.
class SharedBudget {
 public:
  /// Snapshots `parent`'s options, deadline and progress so far; the
  /// phase's workers draw down the remaining budget from here.
  explicit SharedBudget(const ResourceGovernor& parent);

  SharedBudget(const SharedBudget&) = delete;
  SharedBudget& operator=(const SharedBudget&) = delete;

  /// Latches the first non-OK status and raises the stop flag.
  void Trip(const Status& status);
  /// Raises the stop flag without a status — the cooperative
  /// short-circuit ("a witness was found, everyone stop").
  void RequestStop() { stop_.store(true, std::memory_order_release); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  Status status() const;
  size_t scanned() const {
    return scanned_.load(std::memory_order_relaxed);
  }
  size_t materialized() const {
    return materialized_.load(std::memory_order_relaxed);
  }

 private:
  friend class ResourceGovernor;

  QueryOptions options_;
  size_t max_scanned_;
  size_t max_materialized_;
  bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_at_;
  const CancellationToken* cancellation_;

  std::atomic<size_t> scanned_;
  std::atomic<size_t> materialized_;
  std::atomic<bool> stop_{false};
  mutable std::mutex status_mutex_;
  Status status_;
};

/// Tracks one evaluation's resource consumption against a QueryOptions
/// budget. The hot-path entry points (AdmitScan / AdmitMaterialize /
/// Tick) are branch-cheap bools: a counter bump, a budget compare, and —
/// every kCheckInterval calls — a clock read and cancellation poll. The
/// first violation is latched into status() and every later admission
/// fails, so iterator pipelines simply stop and the driving loop
/// propagates the latched Status.
///
/// Polling cadence (the authoritative statement — DESIGN.md §5 defers
/// here): deadline and cancellation are polled every kCheckInterval =
/// 1024 *admissions/ticks* (not batches, and not "a few thousand" —
/// exactly 1024, a power of two so the hot-path modulo is a mask), plus
/// once per operator instantiation via CheckNow(). Batch size does not
/// change the cadence: a 1024-tuple batch and 1024 single-tuple pulls
/// poll equally often, because the counter advances per admission.
///
/// A governor is single-evaluation, single-thread state (only the
/// CancellationToken it polls is shared); create one per Run. Parallel
/// runs keep that invariant per *worker*: each worker owns a private
/// shard governor (the SharedBudget constructor form) and the shards
/// reconcile into the shared atomics in kCheckInterval-sized chunks, so
/// the hot path stays free of shared-cache traffic in both modes.
class ResourceGovernor {
 public:
  /// Ungoverned: all admissions succeed (modulo nothing), no deadline.
  ResourceGovernor() : ResourceGovernor(QueryOptions::Unlimited()) {}

  explicit ResourceGovernor(const QueryOptions& options);

  /// A worker *shard* of a parallel phase: counts locally, enforces
  /// nothing locally (local limits are unlimited), and reconciles into
  /// `shared` every kCheckInterval admissions and at Reconcile(). The
  /// deadline instant and cancellation token are copied from the shared
  /// snapshot so every worker races the same clock.
  explicit ResourceGovernor(SharedBudget* shared);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Counts one base-relation tuple read. False once any limit trips.
  bool AdmitScan() {
    if (++scanned_ > max_scanned_) {
      TripBudget("scanned", scanned_ - 1, max_scanned_);
      return false;
    }
    return Tick();
  }

  /// Counts `n` base-relation tuple reads in one step — the columnar
  /// scan's segment-granular admission. The final `scanned()` total is
  /// exactly the total of n per-row AdmitScan calls (bulk admission is a
  /// counter reshape, not a discount), so row and columnar executions of
  /// the same plan report bit-identical budget counters. The deadline /
  /// cancellation / shard-flush slow path runs once per call — one poll
  /// per segment of kCheckInterval rows, the same cadence the row path's
  /// per-admission tick mask produces.
  bool AdmitScanBulk(size_t n) {
    if (n == 0) return !tripped();
    scanned_ += n;
    if (scanned_ > max_scanned_) {
      TripBudget("scanned", scanned_ - n, max_scanned_);
      return false;
    }
    ticks_ += n;
    return SlowCheck();
  }

  /// Counts one tuple inserted into intermediate state.
  bool AdmitMaterialize() {
    if (++materialized_ > max_materialized_) {
      TripBudget("materialized", materialized_ - 1, max_materialized_);
      return false;
    }
    return Tick();
  }

  /// A unit of work that consumes no tuple budget (e.g. one iteration of
  /// a join or product inner loop). Every kCheckInterval admissions/ticks
  /// it polls deadline and cancellation (and, on a worker shard, flushes
  /// counter deltas to the SharedBudget), so pipelines that filter
  /// everything out still stop.
  bool Tick() {
    if ((++ticks_ & (kCheckInterval - 1)) != 0) return !tripped();
    return SlowCheck();
  }

  /// Deadline/cancellation poll as a Status, for operator-open and
  /// phase-boundary call sites.
  Status CheckNow() {
    if (!SlowCheck()) return status_;
    return Status::Ok();
  }

  /// Depth admission for recursive descent (plan construction). Pair with
  /// ExitDepth; the companion RAII type below does so automatically.
  bool EnterDepth() {
    if (++depth_ > max_plan_depth_) {
      if (status_.ok()) {
        status_ = Status::ResourceExhausted(
            "plan depth exceeds limit (" + std::to_string(max_plan_depth_) +
            ")");
      }
      --depth_;
      return false;
    }
    return true;
  }
  void ExitDepth() { --depth_; }

  /// Latches an externally detected violation (fault injection, callers
  /// with their own checks). First trip wins.
  void Trip(Status status) {
    if (status_.ok() && !status.ok()) status_ = std::move(status);
  }

  bool tripped() const { return !status_.ok(); }
  /// The first violation, or OK. Driving loops check this after an
  /// iterator chain reports exhaustion to distinguish "input consumed"
  /// from "budget tripped".
  const Status& status() const { return status_; }

  const QueryOptions& options() const { return options_; }
  size_t scanned() const { return scanned_; }
  size_t materialized() const { return materialized_; }

  /// Shard-mode only: publishes any unflushed counter deltas to the
  /// SharedBudget and runs a final budget check, so violations a chunked
  /// flush never reached (the worker stopped mid-chunk) are still
  /// detected. Returns the shard's final status. Call exactly once when
  /// the worker's partition is done.
  Status Reconcile();

  /// Shard-mode only: true when this worker stopped because a peer
  /// requested a cooperative stop (first witness found), as opposed to a
  /// real budget/deadline/cancellation trip. The driving phase treats
  /// early-stopped workers as successful.
  bool early_stopped() const { return early_stopped_; }

  /// Phase-boundary only (single-threaded): adopts the totals and status
  /// of a finished parallel phase, so subsequent serial work (or the next
  /// phase's SharedBudget snapshot) continues from the right counts.
  void AbsorbShared(const SharedBudget& shared);

  /// Deadline/cancel poll period, in admissions/ticks. Power of two so
  /// the hot-path modulo is a mask. This is also the shard → SharedBudget
  /// reconciliation chunk size in parallel runs.
  static constexpr size_t kCheckInterval = 1024;

 private:
  friend class SharedBudget;

  bool SlowCheck();
  /// Shard-mode: publishes counter deltas, checks the shared budget and
  /// the stop flag. Returns false when this worker must stop.
  bool FlushShard();
  void TripBudget(const char* what, size_t used, size_t limit);

  QueryOptions options_;
  size_t max_scanned_;
  size_t max_materialized_;
  size_t max_plan_depth_;
  bool has_deadline_;
  std::chrono::steady_clock::time_point deadline_at_;
  const CancellationToken* cancellation_;
  /// Null for a per-run governor; the phase's budget pool for a shard.
  SharedBudget* shared_ = nullptr;

  size_t scanned_ = 0;
  size_t materialized_ = 0;
  size_t scanned_flushed_ = 0;
  size_t materialized_flushed_ = 0;
  size_t ticks_ = 0;
  size_t depth_ = 0;
  bool early_stopped_ = false;
  Status status_;
};

/// RAII depth admission: `GovernorDepthGuard guard(gov); if (!guard.ok())
/// return gov->status();`.
class GovernorDepthGuard {
 public:
  explicit GovernorDepthGuard(ResourceGovernor* governor)
      : governor_(governor), ok_(governor->EnterDepth()) {}
  ~GovernorDepthGuard() {
    if (ok_) governor_->ExitDepth();
  }
  GovernorDepthGuard(const GovernorDepthGuard&) = delete;
  GovernorDepthGuard& operator=(const GovernorDepthGuard&) = delete;
  bool ok() const { return ok_; }

 private:
  ResourceGovernor* governor_;
  bool ok_;
};

}  // namespace bryql

#endif  // BRYQL_COMMON_GOVERNOR_H_
