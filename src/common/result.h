#ifndef BRYQL_COMMON_RESULT_H_
#define BRYQL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace bryql {

/// Holds either a value of type T or a non-OK Status, in the style of
/// arrow::Result. A Result constructed from an OK Status is a bug; callers
/// must only wrap genuine errors.
///
/// Usage:
///   Result<Relation> r = Evaluate(expr);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, to allow `return value;`).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit, to allow
  /// `return Status::...;`). `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    assert(!std::get<Status>(storage_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The error, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }

  /// The held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  /// Shorthand dereference, mirroring std::optional.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> storage_;
};

}  // namespace bryql

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise binds the value to `lhs`.
#define BRYQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define BRYQL_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define BRYQL_ASSIGN_OR_RETURN_NAME(x, y) BRYQL_ASSIGN_OR_RETURN_CONCAT(x, y)

#define BRYQL_ASSIGN_OR_RETURN(lhs, expr) \
  BRYQL_ASSIGN_OR_RETURN_IMPL(            \
      BRYQL_ASSIGN_OR_RETURN_NAME(_result_tmp_, __COUNTER__), lhs, expr)

#endif  // BRYQL_COMMON_RESULT_H_
