#ifndef BRYQL_COMMON_VALUE_H_
#define BRYQL_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace bryql {

/// The kind of a domain value. `kNull` and `kMark` are the two internal
/// symbols of the paper's constrained outer-join (Definition 7):
///   kNull — the ∅ symbol padded onto outer-join tuples with no partner;
///   kMark — the ⊥ symbol recording that a partner exists without storing it.
/// Neither symbol is expressible in the user query language; they only
/// appear in intermediate relations.
enum class ValueKind {
  kNull = 0,
  kMark,
  kInt,
  kDouble,
  kString,
};

/// An immutable typed value from the database domain.
///
/// Ordering and equality are defined across kinds (kind first, then payload)
/// so values can serve as hash/tree keys; cross-kind comparisons never claim
/// equality. ∅ and ⊥ compare equal only to themselves, matching their use as
/// pure markers in Definition 7.
class Value {
 public:
  /// Constructs the internal null symbol ∅.
  Value() : rep_(NullRep{}) {}

  static Value Null() { return Value(); }
  /// The internal "partner found" symbol ⊥ of Definition 7.
  static Value Mark() {
    Value v;
    v.rep_ = MarkRep{};
    return v;
  }
  static Value Int(int64_t value) {
    Value v;
    v.rep_ = value;
    return v;
  }
  static Value Double(double value) {
    Value v;
    v.rep_ = value;
    return v;
  }
  static Value String(std::string value) {
    Value v;
    v.rep_ = std::move(value);
    return v;
  }

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_mark() const { return kind() == ValueKind::kMark; }

  /// Payload accessors; each must only be called for the matching kind.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Renders the value for plans and test output: ints and doubles as
  /// written, strings single-quoted, ∅ as "∅" and ⊥ as "⊥".
  std::string ToString() const;

  /// Total order over all values: by kind, then by payload. Int/double pairs
  /// compare numerically so that selections like x < 3.5 behave naturally.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  struct NullRep {
    friend bool operator==(NullRep, NullRep) { return true; }
    friend bool operator<(NullRep, NullRep) { return false; }
  };
  struct MarkRep {
    friend bool operator==(MarkRep, MarkRep) { return true; }
    friend bool operator<(MarkRep, MarkRep) { return false; }
  };

  std::variant<NullRep, MarkRep, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// Hash functor for use as std::unordered_* key.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace bryql

#endif  // BRYQL_COMMON_VALUE_H_
