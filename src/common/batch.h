#ifndef BRYQL_COMMON_BATCH_H_
#define BRYQL_COMMON_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace bryql {

/// Default number of tuples a physical operator transfers per NextBatch
/// call. 1024 keeps the per-tuple virtual-dispatch cost amortized to
/// ~1/1000th of the tuple-at-a-time engine while a batch of small tuples
/// (a few dozen bytes each) still fits comfortably in L2.
inline constexpr size_t kDefaultBatchSize = 1024;

/// A bounded buffer of tuples — the unit of data flow between physical
/// operators. The capacity is a *request*: producers fill at most
/// `capacity()` tuples per NextBatch call, and consumers that need early
/// termination (the paper's first-witness non-emptiness test, §3.2) shrink
/// it — a capacity-1 batch degrades gracefully to tuple-at-a-time pulls,
/// preserving the volcano engine's short-circuit guarantees exactly.
///
/// Slots are recycled: Clear() resets the logical size but keeps every
/// Tuple object (and its heap storage) alive, and AddSlot() hands the
/// next recycled slot back to the producer. Copy-assigning a tuple into
/// a warm slot reuses its allocation, so a steady-state batch pipeline
/// performs no per-tuple allocations — the same property the volcano
/// engine gets from copy-assigning into one long-lived Tuple buffer.
class TupleBatch {
 public:
  explicit TupleBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {
    tuples_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  /// Logical reset; slots (and their storage) stay warm for reuse.
  void Clear() { size_ = 0; }

  /// The next recycled output slot. Prefer `*AddSlot() = tuple` (copy
  /// assignment) over Add(Tuple) when the source tuple outlives the call:
  /// assignment reuses the slot's storage, a move discards it.
  Tuple* AddSlot() {
    if (size_ == tuples_.size()) tuples_.emplace_back();
    return &tuples_[size_++];
  }

  void Add(Tuple tuple) { *AddSlot() = std::move(tuple); }

  const Tuple& operator[](size_t i) const { return tuples_[i]; }
  Tuple& operator[](size_t i) { return tuples_[i]; }

 private:
  size_t capacity_;
  size_t size_ = 0;
  std::vector<Tuple> tuples_;
};

}  // namespace bryql

#endif  // BRYQL_COMMON_BATCH_H_
