#ifndef BRYQL_CORE_QUERY_PROCESSOR_H_
#define BRYQL_CORE_QUERY_PROCESSOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <variant>

#include "algebra/expr.h"
#include "algebra/physical_plan.h"
#include "calculus/parser.h"
#include "calculus/views.h"
#include "common/governor.h"
#include "common/result.h"
#include "core/plan_cache.h"
#include "exec/executor.h"
#include "exec/stats.h"
#include "rewrite/rewriter.h"
#include "storage/database.h"
#include "translate/translator.h"

namespace bryql {

/// End-to-end evaluation strategies (DESIGN.md experiment index).
enum class Strategy {
  /// The paper's method: canonical form + improved translation
  /// (complement-joins, constrained outer-joins, no division).
  kBry,
  /// The paper's method with the literal case-5 division translation
  /// where applicable (ablation E10).
  kBryDivision,
  /// Universal quantifications by count comparison — the Quel baseline
  /// the paper's introduction criticizes.
  kQuelCounting,
  /// The paper's method with disjunctive filters as unions (ablation E6).
  kBryUnionFilters,
  /// The conventional reduction [COD 72, PAL 72, JS 82, CG 85]:
  /// prenex form, cartesian product of ranges, divisions for ∀.
  kClassical,
  /// The Figure 1 one-tuple-at-a-time nested loops, straight on the
  /// calculus.
  kNestedLoop,
};

const char* StrategyName(Strategy strategy);

/// The answer to a query: a truth value for closed queries, a relation for
/// open ones.
struct Answer {
  bool closed = false;
  bool truth = false;   // meaningful when closed
  Relation relation{0};  // meaningful when open

  std::string ToString() const;
};

/// Everything produced along the way, for EXPLAIN-style reporting and the
/// benchmarks.
struct Execution {
  Query query;
  FormulaPtr canonical;      // null for kNestedLoop on the raw formula
  ExprPtr plan;              // null for kNestedLoop
  PhysicalPlanPtr physical;  // lowered plan; null for kNestedLoop
  size_t rewrite_steps = 0;
  /// True when this run reused a cached PreparedQuery and therefore did
  /// no parse/rewrite/translate/lower work.
  bool plan_cache_hit = false;
  Answer answer;
  ExecStats stats;
};

/// A fully prepared query: everything that does not depend on the data —
/// parse, canonical form, logical plan, lowered physical plan — computed
/// once and immutable thereafter. Obtained from QueryProcessor::Prepare
/// and reusable across any number of Execute calls (and across threads:
/// execution state lives in per-run operator trees, never in the plan).
struct PreparedQuery {
  std::string text;
  Strategy strategy = Strategy::kBry;
  Query query;
  FormulaPtr canonical;      // null for kClassical (no canonical phase)
  ExprPtr plan;              // null for kNestedLoop
  PhysicalPlanPtr physical;  // null for kNestedLoop
  size_t rewrite_steps = 0;
  /// Catalog version the physical plan was lowered against. Execute
  /// re-lowers (without re-parsing or re-translating) when the catalog
  /// has moved — access paths may have changed.
  uint64_t db_version = 0;
};

/// Preparation-work counters, one per pipeline phase. They advance only
/// when the corresponding work actually runs, so a plan-cache hit is
/// observable as a Run that advances none of them.
struct PrepareCounters {
  size_t parses = 0;
  size_t normalizations = 0;
  size_t translations = 0;
  size_t lowerings = 0;
};

/// The two-phase query processor of the paper: normalization into
/// canonical form (§2) followed by translation into relational algebra
/// (§3) and evaluation, with pluggable strategies for comparison.
///
/// Repeated queries take a prepared fast path: Run consults a bounded LRU
/// plan cache keyed on (query text, strategy, plan-shaping options), so
/// the second run of a query skips parse → rewrite → translate → lower
/// entirely and goes straight to plan instantiation. Prepare/Execute
/// expose the same split to callers that want to hold on to a plan.
class QueryProcessor {
 public:
  /// `db` must outlive the processor. `plan_cache_capacity` bounds the
  /// LRU plan cache (tests shrink it to force churn).
  explicit QueryProcessor(
      const Database* db,
      size_t plan_cache_capacity = PlanCache::kDefaultCapacity)
      : db_(db), cache_(plan_cache_capacity) {}

  /// Registers views (Definition 1); atoms over view names are expanded
  /// before normalization. `views` must outlive the processor.
  /// Invalidates the plan cache (cached plans baked the old expansions in).
  void SetViews(const ViewSet* views) {
    views_ = views;
    cache_.Clear();
  }

  /// Evaluates otherwise-unrestricted queries under the Domain Closure
  /// Assumption (§2.1) by inserting `dom` range atoms where quantified or
  /// target variables lack a range. Off by default: unrestricted queries
  /// are rejected with kUnsupported. Invalidates the plan cache.
  void EnableDomainClosure(bool on = true) {
    domain_closure_ = on;
    cache_.Clear();
  }

  /// Physical execution knobs used by every subsequent Run/Prepare
  /// (engine mode, join algorithm, batch size, build-side policy).
  /// Invalidates the plan cache — plans depend on these choices.
  void SetExecOptions(const ExecOptions& options) {
    exec_options_ = options;
    cache_.Clear();
  }
  const ExecOptions& exec_options() const { return exec_options_; }

  /// Parses and runs `text` under `strategy`, governed by `options`:
  /// parsing honours max_query_bytes / max_formula_depth, normalization
  /// honours max_rewrite_steps, and every evaluation strategy honours the
  /// deadline, the tuple budgets and the cancellation token. Violations
  /// surface as kResourceExhausted / kDeadlineExceeded / kCancelled; the
  /// default options impose no deadline and no tuple budgets, only the
  /// structural guards that keep adversarial inputs from crashing.
  ///
  /// Preparation is served from the plan cache when possible (see
  /// Execution::plan_cache_hit); one governor spans all phases either way.
  Result<Execution> Run(const std::string& text,
                        Strategy strategy = Strategy::kBry,
                        const QueryOptions& options = {}) const;

  /// Runs an already-parsed query. Parse-phase limits in `options` do not
  /// apply (there is nothing left to parse); max_formula_depth still does.
  /// Bypasses the plan cache (there is no text to key on).
  Result<Execution> RunQuery(const Query& query,
                             Strategy strategy = Strategy::kBry,
                             const QueryOptions& options = {}) const;

  /// Produces the canonical form and plans without executing (EXPLAIN).
  Result<Execution> Explain(const std::string& text,
                            Strategy strategy = Strategy::kBry,
                            const QueryOptions& options = {}) const;

  /// Prepares `text` for repeated execution: parse → normalize →
  /// translate → lower, served from the plan cache when possible. The
  /// result is immutable and valid indefinitely; Execute revalidates it
  /// against the catalog version.
  Result<PreparedQueryPtr> Prepare(const std::string& text,
                                   Strategy strategy = Strategy::kBry,
                                   const QueryOptions& options = {}) const;

  /// Executes a prepared query. No parse/rewrite/translate work happens
  /// here; the lowering is reused too unless the catalog version moved.
  Result<Execution> Execute(const PreparedQueryPtr& prepared,
                            const QueryOptions& options = {}) const;

  /// Plan-cache observability (hits / misses / evictions, current size).
  PlanCacheStats cache_stats() const { return cache_.stats(); }
  size_t cache_size() const { return cache_.size(); }

  /// Drops every cached plan; the next Run/Prepare of any query pays the
  /// full preparation pipeline again. Counters in cache_stats() survive.
  void ClearPlanCache() const { cache_.Clear(); }

  /// A snapshot of the phase-work counters since construction. Increments
  /// are mutex-guarded, so concurrent Run/Prepare calls never lose a
  /// count; the snapshot is consistent (taken under the same lock).
  PrepareCounters prepare_counters() const {
    std::lock_guard<std::mutex> lock(counter_mutex_);
    return prepare_counters_;
  }

 private:
  /// Advances one preparation-phase counter (thread-safe).
  void CountPhase(size_t PrepareCounters::*field) const {
    std::lock_guard<std::mutex> lock(counter_mutex_);
    ++(prepare_counters_.*field);
  }

  /// Normalization + translation on a parsed query (no cache, no parse).
  Result<Execution> BuildExecution(const Query& query, Strategy strategy,
                                   const QueryOptions& options,
                                   ResourceGovernor* governor) const;
  Result<PreparedQueryPtr> PrepareInternal(const std::string& text,
                                           Strategy strategy,
                                           const QueryOptions& options,
                                           ResourceGovernor* governor,
                                           bool* cache_hit) const;
  Result<Execution> ExecuteInternal(const PreparedQuery& prepared,
                                    ResourceGovernor* governor) const;
  std::string CacheKey(const std::string& text, Strategy strategy,
                       const QueryOptions& options) const;

  const Database* db_;
  const ViewSet* views_ = nullptr;
  bool domain_closure_ = false;
  ExecOptions exec_options_;
  mutable PlanCache cache_;
  mutable std::mutex counter_mutex_;
  mutable PrepareCounters prepare_counters_;
};

}  // namespace bryql

#endif  // BRYQL_CORE_QUERY_PROCESSOR_H_
