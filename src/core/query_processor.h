#ifndef BRYQL_CORE_QUERY_PROCESSOR_H_
#define BRYQL_CORE_QUERY_PROCESSOR_H_

#include <string>
#include <variant>

#include "algebra/expr.h"
#include "calculus/parser.h"
#include "calculus/views.h"
#include "common/governor.h"
#include "common/result.h"
#include "exec/stats.h"
#include "rewrite/rewriter.h"
#include "storage/database.h"
#include "translate/translator.h"

namespace bryql {

/// End-to-end evaluation strategies (DESIGN.md experiment index).
enum class Strategy {
  /// The paper's method: canonical form + improved translation
  /// (complement-joins, constrained outer-joins, no division).
  kBry,
  /// The paper's method with the literal case-5 division translation
  /// where applicable (ablation E10).
  kBryDivision,
  /// Universal quantifications by count comparison — the Quel baseline
  /// the paper's introduction criticizes.
  kQuelCounting,
  /// The paper's method with disjunctive filters as unions (ablation E6).
  kBryUnionFilters,
  /// The conventional reduction [COD 72, PAL 72, JS 82, CG 85]:
  /// prenex form, cartesian product of ranges, divisions for ∀.
  kClassical,
  /// The Figure 1 one-tuple-at-a-time nested loops, straight on the
  /// calculus.
  kNestedLoop,
};

const char* StrategyName(Strategy strategy);

/// The answer to a query: a truth value for closed queries, a relation for
/// open ones.
struct Answer {
  bool closed = false;
  bool truth = false;   // meaningful when closed
  Relation relation{0};  // meaningful when open

  std::string ToString() const;
};

/// Everything produced along the way, for EXPLAIN-style reporting and the
/// benchmarks.
struct Execution {
  Query query;
  FormulaPtr canonical;      // null for kNestedLoop on the raw formula
  ExprPtr plan;              // null for kNestedLoop
  size_t rewrite_steps = 0;
  Answer answer;
  ExecStats stats;
};

/// The two-phase query processor of the paper: normalization into
/// canonical form (§2) followed by translation into relational algebra
/// (§3) and evaluation, with pluggable strategies for comparison.
class QueryProcessor {
 public:
  /// `db` must outlive the processor.
  explicit QueryProcessor(const Database* db) : db_(db) {}

  /// Registers views (Definition 1); atoms over view names are expanded
  /// before normalization. `views` must outlive the processor.
  void SetViews(const ViewSet* views) { views_ = views; }

  /// Evaluates otherwise-unrestricted queries under the Domain Closure
  /// Assumption (§2.1) by inserting `dom` range atoms where quantified or
  /// target variables lack a range. Off by default: unrestricted queries
  /// are rejected with kUnsupported.
  void EnableDomainClosure(bool on = true) { domain_closure_ = on; }

  /// Parses and runs `text` under `strategy`, governed by `options`:
  /// parsing honours max_query_bytes / max_formula_depth, normalization
  /// honours max_rewrite_steps, and every evaluation strategy honours the
  /// deadline, the tuple budgets and the cancellation token. Violations
  /// surface as kResourceExhausted / kDeadlineExceeded / kCancelled; the
  /// default options impose no deadline and no tuple budgets, only the
  /// structural guards that keep adversarial inputs from crashing.
  Result<Execution> Run(const std::string& text,
                        Strategy strategy = Strategy::kBry,
                        const QueryOptions& options = {}) const;

  /// Runs an already-parsed query. Parse-phase limits in `options` do not
  /// apply (there is nothing left to parse); max_formula_depth still does.
  Result<Execution> RunQuery(const Query& query,
                             Strategy strategy = Strategy::kBry,
                             const QueryOptions& options = {}) const;

  /// Produces the canonical form and plan without executing (EXPLAIN).
  Result<Execution> Explain(const std::string& text,
                            Strategy strategy = Strategy::kBry,
                            const QueryOptions& options = {}) const;

 private:
  Result<Execution> Prepare(const Query& query, Strategy strategy,
                            const QueryOptions& options,
                            ResourceGovernor* governor) const;

  const Database* db_;
  const ViewSet* views_ = nullptr;
  bool domain_closure_ = false;
};

}  // namespace bryql

#endif  // BRYQL_CORE_QUERY_PROCESSOR_H_
