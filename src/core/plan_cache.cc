#include "core/plan_cache.h"

namespace bryql {

PreparedQueryPtr PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void PlanCache::Put(const std::string& key, PreparedQueryPtr prepared) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(prepared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(prepared));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace bryql
