#include "core/query_processor.h"

#include "algebra/simplifier.h"
#include "calculus/analysis.h"
#include "calculus/range_analysis.h"
#include "exec/executor.h"
#include "nestedloop/nested_loop.h"
#include "rewrite/domain_closure.h"
#include "translate/classical_translator.h"

namespace bryql {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kBry:
      return "bry";
    case Strategy::kBryDivision:
      return "bry-division";
    case Strategy::kQuelCounting:
      return "quel-counting";
    case Strategy::kBryUnionFilters:
      return "bry-union-filters";
    case Strategy::kClassical:
      return "classical";
    case Strategy::kNestedLoop:
      return "nested-loop";
  }
  return "?";
}

std::string Answer::ToString() const {
  if (closed) return truth ? "true" : "false";
  return relation.ToString();
}

namespace {

TranslateOptions OptionsFor(Strategy strategy) {
  TranslateOptions options;
  if (strategy == Strategy::kBryDivision) {
    options.universal = TranslateOptions::Universal::kDivision;
  }
  if (strategy == Strategy::kQuelCounting) {
    options.universal = TranslateOptions::Universal::kCountComparison;
  }
  if (strategy == Strategy::kBryUnionFilters) {
    options.disjunction = TranslateOptions::Disjunction::kUnionOfFilters;
  }
  return options;
}

}  // namespace

Result<Execution> QueryProcessor::Prepare(const Query& raw_query,
                                          Strategy strategy,
                                          const QueryOptions& options,
                                          ResourceGovernor* governor) const {
  // Depth is measured iteratively before any recursive pass (view
  // expansion, normalization, translation) walks the formula, so a
  // pathologically deep input is rejected instead of overflowing the
  // stack inside one of those passes.
  if (options.max_formula_depth != 0 &&
      FormulaDepth(raw_query.formula) > options.max_formula_depth) {
    return Status::ResourceExhausted(
        "formula depth " + std::to_string(FormulaDepth(raw_query.formula)) +
        " exceeds max_formula_depth (" +
        std::to_string(options.max_formula_depth) + ")");
  }
  Query query = raw_query;
  if (views_ != nullptr) {
    BRYQL_ASSIGN_OR_RETURN(query, views_->Expand(query));
    if (options.max_formula_depth != 0 &&
        FormulaDepth(query.formula) > options.max_formula_depth) {
      return Status::ResourceExhausted(
          "formula depth after view expansion exceeds max_formula_depth (" +
          std::to_string(options.max_formula_depth) + ")");
    }
  }
  RewriteOptions rewrite_options;
  rewrite_options.max_steps = options.max_rewrite_steps;
  rewrite_options.governor = governor;
  Execution exec;
  exec.query = query;
  std::set<std::string> targets(query.targets.begin(), query.targets.end());
  if (strategy == Strategy::kNestedLoop) {
    // Figure 1 interprets the calculus directly; normalization is still
    // applied so all strategies answer the same canonical question (the
    // interpreter handles ∀ natively, so this is not required, but it
    // keeps the comparison apples-to-apples on the same formula).
    BRYQL_ASSIGN_OR_RETURN(NormalizeResult norm,
                           NormalizeQuery(query, rewrite_options));
    exec.canonical = norm.formula;
    exec.rewrite_steps = norm.steps();
    if (domain_closure_ && !CheckRestrictedQuery(exec.canonical, targets).ok()) {
      BRYQL_ASSIGN_OR_RETURN(exec.canonical,
                             ApplyDomainClosure(exec.canonical, targets));
    }
    return exec;
  }
  if (strategy == Strategy::kClassical) {
    // The conventional methods reduce the raw query directly (prenex
    // form); no canonical form phase.
    ClassicalTranslator classical(db_);
    if (query.closed()) {
      BRYQL_ASSIGN_OR_RETURN(exec.plan,
                             classical.TranslateClosed(query.formula));
    } else {
      BRYQL_ASSIGN_OR_RETURN(TranslatedQuery t,
                             classical.TranslateOpen(query));
      exec.plan = t.expr;
    }
    return exec;
  }
  BRYQL_ASSIGN_OR_RETURN(NormalizeResult norm,
                         NormalizeQuery(query, rewrite_options));
  exec.canonical = norm.formula;
  exec.rewrite_steps = norm.steps();
  if (domain_closure_ && !CheckRestrictedQuery(exec.canonical, targets).ok()) {
    BRYQL_ASSIGN_OR_RETURN(exec.canonical,
                           ApplyDomainClosure(exec.canonical, targets));
  }
  Translator translator(db_, OptionsFor(strategy));
  if (query.closed()) {
    BRYQL_ASSIGN_OR_RETURN(exec.plan,
                           translator.TranslateClosed(exec.canonical));
  } else {
    Query canonical_query{query.targets, exec.canonical};
    BRYQL_ASSIGN_OR_RETURN(TranslatedQuery t,
                           translator.TranslateOpen(canonical_query));
    exec.plan = t.expr;
  }
  // Plan cleanup: drop identity projections, merge selections, fold
  // statically empty inputs. Never changes results.
  BRYQL_ASSIGN_OR_RETURN(exec.plan, SimplifyPlan(exec.plan, *db_));
  return exec;
}

Result<Execution> QueryProcessor::RunQuery(const Query& query,
                                           Strategy strategy,
                                           const QueryOptions& options) const {
  // One governor per run: the deadline clock starts here and every phase
  // (normalize, translate, evaluate) draws down the same budgets.
  ResourceGovernor governor(options);
  BRYQL_ASSIGN_OR_RETURN(Execution exec,
                         Prepare(query, strategy, options, &governor));
  if (strategy == Strategy::kNestedLoop) {
    NestedLoopEvaluator eval(db_, &governor);
    if (query.closed()) {
      BRYQL_ASSIGN_OR_RETURN(bool truth,
                             eval.EvaluateClosed(exec.canonical));
      exec.answer.closed = true;
      exec.answer.truth = truth;
    } else {
      Query canonical_query{query.targets, exec.canonical};
      BRYQL_ASSIGN_OR_RETURN(Relation rel,
                             eval.EvaluateOpen(canonical_query));
      exec.answer.relation = std::move(rel);
    }
    exec.stats = eval.stats();
    return exec;
  }
  Executor executor(db_, {}, &governor);
  if (query.closed()) {
    BRYQL_ASSIGN_OR_RETURN(bool truth, executor.EvaluateBool(exec.plan));
    exec.answer.closed = true;
    exec.answer.truth = truth;
  } else {
    BRYQL_ASSIGN_OR_RETURN(Relation rel, executor.Evaluate(exec.plan));
    exec.answer.relation = std::move(rel);
  }
  exec.stats = executor.stats();
  return exec;
}

namespace {

ParseLimits ParseLimitsFor(const QueryOptions& options) {
  ParseLimits limits;
  limits.max_bytes = options.max_query_bytes;
  limits.max_depth = options.max_formula_depth;
  return limits;
}

}  // namespace

Result<Execution> QueryProcessor::Run(const std::string& text,
                                      Strategy strategy,
                                      const QueryOptions& options) const {
  BRYQL_ASSIGN_OR_RETURN(Query query,
                         ParseQuery(text, ParseLimitsFor(options)));
  return RunQuery(query, strategy, options);
}

Result<Execution> QueryProcessor::Explain(const std::string& text,
                                          Strategy strategy,
                                          const QueryOptions& options) const {
  BRYQL_ASSIGN_OR_RETURN(Query query,
                         ParseQuery(text, ParseLimitsFor(options)));
  ResourceGovernor governor(options);
  return Prepare(query, strategy, options, &governor);
}

}  // namespace bryql
