#include "core/query_processor.h"

#include "algebra/simplifier.h"
#include "calculus/analysis.h"
#include "calculus/range_analysis.h"
#include "nestedloop/nested_loop.h"
#include "rewrite/domain_closure.h"
#include "translate/classical_translator.h"

namespace bryql {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kBry:
      return "bry";
    case Strategy::kBryDivision:
      return "bry-division";
    case Strategy::kQuelCounting:
      return "quel-counting";
    case Strategy::kBryUnionFilters:
      return "bry-union-filters";
    case Strategy::kClassical:
      return "classical";
    case Strategy::kNestedLoop:
      return "nested-loop";
  }
  return "?";
}

std::string Answer::ToString() const {
  if (closed) return truth ? "true" : "false";
  return relation.ToString();
}

namespace {

TranslateOptions OptionsFor(Strategy strategy) {
  TranslateOptions options;
  if (strategy == Strategy::kBryDivision) {
    options.universal = TranslateOptions::Universal::kDivision;
  }
  if (strategy == Strategy::kQuelCounting) {
    options.universal = TranslateOptions::Universal::kCountComparison;
  }
  if (strategy == Strategy::kBryUnionFilters) {
    options.disjunction = TranslateOptions::Disjunction::kUnionOfFilters;
  }
  return options;
}

ParseLimits ParseLimitsFor(const QueryOptions& options) {
  ParseLimits limits;
  limits.max_bytes = options.max_query_bytes;
  limits.max_depth = options.max_formula_depth;
  return limits;
}

}  // namespace

Result<Execution> QueryProcessor::BuildExecution(
    const Query& raw_query, Strategy strategy, const QueryOptions& options,
    ResourceGovernor* governor) const {
  // Depth is measured iteratively before any recursive pass (view
  // expansion, normalization, translation) walks the formula, so a
  // pathologically deep input is rejected instead of overflowing the
  // stack inside one of those passes.
  if (options.max_formula_depth != 0 &&
      FormulaDepth(raw_query.formula) > options.max_formula_depth) {
    return Status::ResourceExhausted(
        "formula depth " + std::to_string(FormulaDepth(raw_query.formula)) +
        " exceeds max_formula_depth (" +
        std::to_string(options.max_formula_depth) + ")");
  }
  Query query = raw_query;
  if (views_ != nullptr) {
    BRYQL_ASSIGN_OR_RETURN(query, views_->Expand(query));
    if (options.max_formula_depth != 0 &&
        FormulaDepth(query.formula) > options.max_formula_depth) {
      return Status::ResourceExhausted(
          "formula depth after view expansion exceeds max_formula_depth (" +
          std::to_string(options.max_formula_depth) + ")");
    }
  }
  RewriteOptions rewrite_options;
  rewrite_options.max_steps = options.max_rewrite_steps;
  rewrite_options.governor = governor;
  Execution exec;
  exec.query = query;
  std::set<std::string> targets(query.targets.begin(), query.targets.end());
  if (strategy == Strategy::kNestedLoop) {
    // Figure 1 interprets the calculus directly; normalization is still
    // applied so all strategies answer the same canonical question (the
    // interpreter handles ∀ natively, so this is not required, but it
    // keeps the comparison apples-to-apples on the same formula).
    CountPhase(&PrepareCounters::normalizations);
    BRYQL_ASSIGN_OR_RETURN(NormalizeResult norm,
                           NormalizeQuery(query, rewrite_options));
    exec.canonical = norm.formula;
    exec.rewrite_steps = norm.steps();
    if (domain_closure_ && !CheckRestrictedQuery(exec.canonical, targets).ok()) {
      BRYQL_ASSIGN_OR_RETURN(exec.canonical,
                             ApplyDomainClosure(exec.canonical, targets));
    }
    return exec;
  }
  if (strategy == Strategy::kClassical) {
    // The conventional methods reduce the raw query directly (prenex
    // form); no canonical form phase.
    CountPhase(&PrepareCounters::translations);
    ClassicalTranslator classical(db_);
    if (query.closed()) {
      BRYQL_ASSIGN_OR_RETURN(exec.plan,
                             classical.TranslateClosed(query.formula));
    } else {
      BRYQL_ASSIGN_OR_RETURN(TranslatedQuery t,
                             classical.TranslateOpen(query));
      exec.plan = t.expr;
    }
    return exec;
  }
  CountPhase(&PrepareCounters::normalizations);
  BRYQL_ASSIGN_OR_RETURN(NormalizeResult norm,
                         NormalizeQuery(query, rewrite_options));
  exec.canonical = norm.formula;
  exec.rewrite_steps = norm.steps();
  if (domain_closure_ && !CheckRestrictedQuery(exec.canonical, targets).ok()) {
    BRYQL_ASSIGN_OR_RETURN(exec.canonical,
                           ApplyDomainClosure(exec.canonical, targets));
  }
  CountPhase(&PrepareCounters::translations);
  Translator translator(db_, OptionsFor(strategy));
  if (query.closed()) {
    BRYQL_ASSIGN_OR_RETURN(exec.plan,
                           translator.TranslateClosed(exec.canonical));
  } else {
    Query canonical_query{query.targets, exec.canonical};
    BRYQL_ASSIGN_OR_RETURN(TranslatedQuery t,
                           translator.TranslateOpen(canonical_query));
    exec.plan = t.expr;
  }
  // Plan cleanup: drop identity projections, merge selections, fold
  // statically empty inputs. Never changes results.
  BRYQL_ASSIGN_OR_RETURN(exec.plan, SimplifyPlan(exec.plan, *db_));
  return exec;
}

std::string QueryProcessor::CacheKey(const std::string& text,
                                     Strategy strategy,
                                     const QueryOptions& options) const {
  // Everything that shapes the prepared artifacts must be in the key:
  // the strategy and translation-affecting processor state, the lowering
  // knobs, and the structural limits (a plan prepared under lax limits
  // must not satisfy a stricter run). Engine mode and batch size are
  // deliberately absent — they pick how a plan is *driven*, not what it
  // is, and Execute consults them directly. Views are handled by
  // invalidation (SetViews clears the cache).
  std::string key = StrategyName(strategy);
  key += '\x1f';
  key += domain_closure_ ? '1' : '0';
  key += exec_options_.join_algorithm == ExecOptions::JoinAlgorithm::kSortMerge
             ? 's'
             : 'h';
  key += exec_options_.cost_based_build_side ? 'c' : '-';
  key += '\x1f';
  key += std::to_string(options.max_formula_depth);
  key += ':';
  key += std::to_string(options.max_rewrite_steps);
  key += ':';
  key += std::to_string(options.max_query_bytes);
  key += '\x1f';
  key += text;
  return key;
}

Result<PreparedQueryPtr> QueryProcessor::PrepareInternal(
    const std::string& text, Strategy strategy, const QueryOptions& options,
    ResourceGovernor* governor, bool* cache_hit) const {
  // A cache-bypass run (degradation rung: "the cached plan may be the
  // problem") prepares cold and leaves the cache untouched either way.
  const bool use_cache = !options.bypass_plan_cache;
  const std::string key =
      use_cache ? CacheKey(text, strategy, options) : std::string();
  if (use_cache) {
    if (PreparedQueryPtr cached = cache_.Get(key)) {
      if (cached->db_version == db_->version()) {
        *cache_hit = true;
        return cached;
      }
      // The catalog moved under the cached plan (relation replaced, index
      // built): arities and access paths may have changed, so re-prepare
      // from the text. The refreshed entry replaces the stale one below.
    }
  }
  *cache_hit = false;
  CountPhase(&PrepareCounters::parses);
  BRYQL_ASSIGN_OR_RETURN(Query query,
                         ParseQuery(text, ParseLimitsFor(options)));
  BRYQL_ASSIGN_OR_RETURN(Execution exec,
                         BuildExecution(query, strategy, options, governor));
  auto prepared = std::make_shared<PreparedQuery>();
  prepared->text = text;
  prepared->strategy = strategy;
  prepared->query = exec.query;
  prepared->canonical = exec.canonical;
  prepared->plan = exec.plan;
  prepared->rewrite_steps = exec.rewrite_steps;
  if (exec.plan != nullptr) {
    CountPhase(&PrepareCounters::lowerings);
    Executor executor(db_, exec_options_, governor);
    BRYQL_ASSIGN_OR_RETURN(prepared->physical, executor.Lower(exec.plan));
  }
  prepared->db_version = db_->version();
  PreparedQueryPtr shared = std::move(prepared);
  if (use_cache) cache_.Put(key, shared);
  return shared;
}

Result<Execution> QueryProcessor::ExecuteInternal(
    const PreparedQuery& prepared, ResourceGovernor* governor) const {
  Execution exec;
  exec.query = prepared.query;
  exec.canonical = prepared.canonical;
  exec.plan = prepared.plan;
  exec.physical = prepared.physical;
  exec.rewrite_steps = prepared.rewrite_steps;
  if (prepared.strategy == Strategy::kNestedLoop) {
    NestedLoopEvaluator eval(db_, governor);
    if (prepared.query.closed()) {
      BRYQL_ASSIGN_OR_RETURN(bool truth,
                             eval.EvaluateClosed(prepared.canonical));
      exec.answer.closed = true;
      exec.answer.truth = truth;
    } else {
      Query canonical_query{prepared.query.targets, prepared.canonical};
      BRYQL_ASSIGN_OR_RETURN(Relation rel,
                             eval.EvaluateOpen(canonical_query));
      exec.answer.relation = std::move(rel);
    }
    exec.stats = eval.stats();
    return exec;
  }
  // The tuple-engine override (service degradation rung) is a per-run
  // knob carried on the governor's options, never processor state — the
  // plan cache and concurrent runs are unaffected.
  ExecOptions exec_options = exec_options_;
  if (governor->options().force_tuple_engine) {
    exec_options.mode = ExecOptions::Mode::kTupleAtATime;
  }
  Executor executor(db_, exec_options, governor);
  // The prepared physical plan is the fast path; fall back to lowering
  // from the logical plan when the engine is in tuple-at-a-time mode or
  // the catalog moved since preparation.
  const bool use_physical =
      exec_options.mode == ExecOptions::Mode::kBatched &&
      prepared.physical != nullptr && prepared.db_version == db_->version();
  if (prepared.query.closed()) {
    bool truth = false;
    if (use_physical) {
      BRYQL_ASSIGN_OR_RETURN(truth,
                             executor.ExecutePhysicalBool(prepared.physical));
    } else {
      BRYQL_ASSIGN_OR_RETURN(truth, executor.EvaluateBool(prepared.plan));
    }
    exec.answer.closed = true;
    exec.answer.truth = truth;
  } else {
    Relation rel{0};
    if (use_physical) {
      BRYQL_ASSIGN_OR_RETURN(rel, executor.ExecutePhysical(prepared.physical));
    } else {
      BRYQL_ASSIGN_OR_RETURN(rel, executor.Evaluate(prepared.plan));
    }
    exec.answer.relation = std::move(rel);
  }
  exec.stats = executor.stats();
  return exec;
}

Result<Execution> QueryProcessor::RunQuery(const Query& query,
                                           Strategy strategy,
                                           const QueryOptions& options) const {
  // One governor per run: the deadline clock starts here and every phase
  // (normalize, translate, evaluate) draws down the same budgets.
  ResourceGovernor governor(options);
  BRYQL_ASSIGN_OR_RETURN(Execution exec,
                         BuildExecution(query, strategy, options, &governor));
  if (strategy == Strategy::kNestedLoop) {
    NestedLoopEvaluator eval(db_, &governor);
    if (query.closed()) {
      BRYQL_ASSIGN_OR_RETURN(bool truth,
                             eval.EvaluateClosed(exec.canonical));
      exec.answer.closed = true;
      exec.answer.truth = truth;
    } else {
      Query canonical_query{query.targets, exec.canonical};
      BRYQL_ASSIGN_OR_RETURN(Relation rel,
                             eval.EvaluateOpen(canonical_query));
      exec.answer.relation = std::move(rel);
    }
    exec.stats = eval.stats();
    return exec;
  }
  ExecOptions exec_options = exec_options_;
  if (options.force_tuple_engine) {
    exec_options.mode = ExecOptions::Mode::kTupleAtATime;
  }
  Executor executor(db_, exec_options, &governor);
  if (query.closed()) {
    BRYQL_ASSIGN_OR_RETURN(bool truth, executor.EvaluateBool(exec.plan));
    exec.answer.closed = true;
    exec.answer.truth = truth;
  } else {
    BRYQL_ASSIGN_OR_RETURN(Relation rel, executor.Evaluate(exec.plan));
    exec.answer.relation = std::move(rel);
  }
  exec.stats = executor.stats();
  return exec;
}

Result<Execution> QueryProcessor::Run(const std::string& text,
                                      Strategy strategy,
                                      const QueryOptions& options) const {
  // One governor spans preparation (on a cache miss) and execution, so
  // the deadline and budgets cover the whole run exactly as they did
  // before the prepared fast path existed.
  ResourceGovernor governor(options);
  bool cache_hit = false;
  BRYQL_ASSIGN_OR_RETURN(
      PreparedQueryPtr prepared,
      PrepareInternal(text, strategy, options, &governor, &cache_hit));
  BRYQL_ASSIGN_OR_RETURN(Execution exec,
                         ExecuteInternal(*prepared, &governor));
  exec.plan_cache_hit = cache_hit;
  return exec;
}

Result<PreparedQueryPtr> QueryProcessor::Prepare(
    const std::string& text, Strategy strategy,
    const QueryOptions& options) const {
  ResourceGovernor governor(options);
  bool cache_hit = false;
  return PrepareInternal(text, strategy, options, &governor, &cache_hit);
}

Result<Execution> QueryProcessor::Execute(const PreparedQueryPtr& prepared,
                                          const QueryOptions& options) const {
  if (prepared == nullptr) {
    return Status::InvalidArgument("Execute on a null PreparedQuery");
  }
  ResourceGovernor governor(options);
  return ExecuteInternal(*prepared, &governor);
}

Result<Execution> QueryProcessor::Explain(const std::string& text,
                                          Strategy strategy,
                                          const QueryOptions& options) const {
  BRYQL_ASSIGN_OR_RETURN(Query query,
                         ParseQuery(text, ParseLimitsFor(options)));
  ResourceGovernor governor(options);
  BRYQL_ASSIGN_OR_RETURN(Execution exec,
                         BuildExecution(query, strategy, options, &governor));
  if (exec.plan != nullptr) {
    // EXPLAIN shows the physical plan too — what will actually run.
    Executor executor(db_, exec_options_, &governor);
    BRYQL_ASSIGN_OR_RETURN(exec.physical, executor.Lower(exec.plan));
  }
  return exec;
}

}  // namespace bryql
