#ifndef BRYQL_CORE_PLAN_CACHE_H_
#define BRYQL_CORE_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace bryql {

struct PreparedQuery;
using PreparedQueryPtr = std::shared_ptr<const PreparedQuery>;

/// Cache-effectiveness counters.
struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;

  std::string ToString() const {
    return "hits=" + std::to_string(hits) +
           " misses=" + std::to_string(misses) +
           " evictions=" + std::to_string(evictions);
  }
};

/// A bounded LRU cache of prepared queries, keyed on the full preparation
/// context (query text + strategy + plan-shaping options — see
/// QueryProcessor::CacheKey). Entries are shared immutable snapshots, so a
/// hit is one map lookup plus a shared_ptr copy; staleness against the
/// catalog is the *caller's* check (PreparedQuery::db_version), because
/// the cache has no reason to know about databases.
///
/// Thread-safe: a single mutex guards the map and the recency list; the
/// hit/miss/eviction counters are atomics, so stats() never takes the
/// lock and concurrent Get/Put callers never lose an increment. The cache
/// is a lookaside structure — the lock is held for map/list manipulation
/// only, never across preparation work.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The entry under `key`, refreshed as most-recently used, or null.
  PreparedQueryPtr Get(const std::string& key);

  /// Inserts (or replaces) the entry under `key`, evicting the
  /// least-recently-used entry when over capacity.
  void Put(const std::string& key, PreparedQueryPtr prepared);

  /// Drops every entry (views/options changed; counters are kept).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// A lock-free snapshot of the counters. Concurrent mutators may land
  /// between the three loads; each individual counter is exact.
  PlanCacheStats stats() const {
    PlanCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  using Entry = std::pair<std::string, PreparedQueryPtr>;

  const size_t capacity_;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> evictions_{0};
};

}  // namespace bryql

#endif  // BRYQL_CORE_PLAN_CACHE_H_
