#ifndef BRYQL_CALCULUS_RANGE_ANALYSIS_H_
#define BRYQL_CALCULUS_RANGE_ANALYSIS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "calculus/formula.h"
#include "common/status.h"

namespace bryql {

/// The set of variables `f` can *produce* bindings for (Definition 1,
/// generalized), given that the variables in `outer` are already bound by
/// an enclosing producer. Returns nullopt when `f` is not a producer at all
/// (e.g. a negation, or a disjunction whose branches produce different
/// variable sets).
///
/// Generalizations over the paper's Definition 1, both noted in DESIGN.md:
///  * an atom is a producer for the set of distinct variables among its
///    arguments — constants and repeated variables act as built-in
///    selections (the paper's own examples, e.g. lecture(y, db), use this);
///  * an equality comparison `x = c` with `c` constant (or an
///    already-bound variable) produces {x}.
std::optional<std::set<std::string>> ProducedVariables(
    const FormulaPtr& f, const std::set<std::string>& outer);

/// True when `f` is a range for exactly the variables `xs` given outer
/// bindings `outer` (Definition 1): it produces every variable of `xs` and
/// has no other free variables outside `outer`.
bool IsRangeFor(const FormulaPtr& f, const std::set<std::string>& xs,
                const std::set<std::string>& outer);

/// The producer/filter split of a conjunction (Definition 5): a safe
/// evaluation order of the conjuncts of `body` such that each conjunct is
/// either a producer whose non-produced free variables are bound at its
/// position, or a filter whose free variables are all bound.
struct ProducerFilterSplit {
  /// Conjuncts in evaluation order.
  std::vector<FormulaPtr> ordered;
  /// ordered[i] is a producer (contributes new bindings) iff is_producer[i].
  std::vector<bool> is_producer;
  /// Variables produced overall.
  std::set<std::string> produced;
};

/// Computes a ProducerFilterSplit for conjuncts that must bind `required`
/// (beyond `outer`). Returns nullopt if no safe order exists — the query is
/// then not a formula with restricted variables (Definitions 2/3).
std::optional<ProducerFilterSplit> SplitProducersAndFilters(
    const std::vector<FormulaPtr>& conjuncts,
    const std::set<std::string>& required,
    const std::set<std::string>& outer);

/// Checks Definitions 2/3: every quantification of `f` is restricted
/// (ranges exist for all quantified variables) and, for an open query, the
/// free variables are restricted as well. Returns OK or kUnsupported with a
/// description of the offending subformula.
///
/// `f` is expected in (or close to) canonical form: universal quantifiers
/// and implications are also handled by checking their existential
/// counterparts.
Status CheckRestricted(const FormulaPtr& f);

/// CheckRestricted for an open query: additionally requires the top-level
/// block (or each top-level disjunct) to range the `targets`
/// (Definition 3).
Status CheckRestrictedQuery(const FormulaPtr& f,
                            const std::set<std::string>& targets);

}  // namespace bryql

#endif  // BRYQL_CALCULUS_RANGE_ANALYSIS_H_
