#include "calculus/views.h"

#include <set>

namespace bryql {

namespace {

/// Renames every bound variable of `f` to a fresh "name$N", threading the
/// counter, so that substituting arbitrary terms into the result can never
/// capture.
FormulaPtr FreshenBound(const FormulaPtr& f, size_t* counter) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare:
      return f;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::map<std::string, Term> renaming;
      std::vector<std::string> fresh_vars;
      for (const std::string& v : f->vars()) {
        std::string fresh = v + "$" + std::to_string((*counter)++);
        renaming.emplace(v, Term::Var(fresh));
        fresh_vars.push_back(std::move(fresh));
      }
      FormulaPtr body =
          FreshenBound(Substitute(f->child(), renaming), counter);
      return f->kind() == FormulaKind::kExists
                 ? Formula::Exists(std::move(fresh_vars), std::move(body))
                 : Formula::Forall(std::move(fresh_vars), std::move(body));
    }
    default: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children().size());
      for (const FormulaPtr& c : f->children()) {
        children.push_back(FreshenBound(c, counter));
      }
      switch (f->kind()) {
        case FormulaKind::kNot:
          return Formula::Not(children[0]);
        case FormulaKind::kAnd:
          return Formula::And(std::move(children));
        case FormulaKind::kOr:
          return Formula::Or(std::move(children));
        case FormulaKind::kImplies:
          return Formula::Implies(children[0], children[1]);
        case FormulaKind::kIff:
          return Formula::Iff(children[0], children[1]);
        default:
          return f;
      }
    }
  }
}

class Expander {
 public:
  Expander(const std::map<std::string, Query>& views) : views_(views) {}

  Result<FormulaPtr> Expand(const FormulaPtr& f,
                            std::set<std::string>* in_progress) {
    switch (f->kind()) {
      case FormulaKind::kCompare:
        return f;
      case FormulaKind::kAtom: {
        auto it = views_.find(f->predicate());
        if (it == views_.end()) return f;
        const Query& view = it->second;
        if (in_progress->count(f->predicate())) {
          return Status::Unsupported("cyclic view reference through '" +
                                     f->predicate() + "'");
        }
        if (view.targets.size() != f->terms().size()) {
          return Status::InvalidArgument(
              "view '" + f->predicate() + "' has " +
              std::to_string(view.targets.size()) + " columns but is used "
              "with " + std::to_string(f->terms().size()) + " arguments");
        }
        // Freshen the body's bound variables, then map targets to the
        // atom's arguments.
        FormulaPtr body = FreshenBound(view.formula, &counter_);
        std::map<std::string, Term> binding;
        for (size_t i = 0; i < view.targets.size(); ++i) {
          binding.emplace(view.targets[i], f->terms()[i]);
        }
        body = Substitute(body, binding);
        in_progress->insert(f->predicate());
        Result<FormulaPtr> expanded = Expand(body, in_progress);
        in_progress->erase(f->predicate());
        return expanded;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        BRYQL_ASSIGN_OR_RETURN(FormulaPtr body,
                               Expand(f->child(), in_progress));
        if (body.get() == f->child().get()) return f;
        return f->kind() == FormulaKind::kExists
                   ? Formula::Exists(f->vars(), std::move(body))
                   : Formula::Forall(f->vars(), std::move(body));
      }
      default: {
        std::vector<FormulaPtr> children;
        children.reserve(f->children().size());
        bool changed = false;
        for (const FormulaPtr& c : f->children()) {
          BRYQL_ASSIGN_OR_RETURN(FormulaPtr nc, Expand(c, in_progress));
          changed |= nc.get() != c.get();
          children.push_back(std::move(nc));
        }
        if (!changed) return f;
        switch (f->kind()) {
          case FormulaKind::kNot:
            return Formula::Not(children[0]);
          case FormulaKind::kAnd:
            return Formula::And(std::move(children));
          case FormulaKind::kOr:
            return Formula::Or(std::move(children));
          case FormulaKind::kImplies:
            return Formula::Implies(children[0], children[1]);
          case FormulaKind::kIff:
            return Formula::Iff(children[0], children[1]);
          default:
            return Status::Internal("unexpected connective");
        }
      }
    }
  }

 private:
  const std::map<std::string, Query>& views_;
  size_t counter_ = 0;
};

}  // namespace

Status ViewSet::Define(const std::string& name, Query definition) {
  if (definition.closed()) {
    return Status::InvalidArgument(
        "view '" + name + "' must be an open query with targets");
  }
  std::set<std::string> free = definition.formula->FreeVariableSet();
  std::set<std::string> targets(definition.targets.begin(),
                                definition.targets.end());
  if (free != targets) {
    return Status::InvalidArgument(
        "view '" + name +
        "': free variables must be exactly the targets");
  }
  if (targets.size() != definition.targets.size()) {
    return Status::InvalidArgument("view '" + name +
                                   "': duplicate target variable");
  }
  views_.insert_or_assign(name, std::move(definition));
  return Status::Ok();
}

Status ViewSet::DefineFromText(const std::string& name,
                               const std::string& text) {
  BRYQL_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  return Define(name, std::move(query));
}

Result<size_t> ViewSet::ArityOf(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return it->second.targets.size();
}

Result<FormulaPtr> ViewSet::Expand(const FormulaPtr& f) const {
  Expander expander(views_);
  std::set<std::string> in_progress;
  return expander.Expand(f, &in_progress);
}

Result<Query> ViewSet::Expand(const Query& query) const {
  BRYQL_ASSIGN_OR_RETURN(FormulaPtr formula, Expand(query.formula));
  return Query{query.targets, std::move(formula)};
}

}  // namespace bryql
