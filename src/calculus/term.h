#ifndef BRYQL_CALCULUS_TERM_H_
#define BRYQL_CALCULUS_TERM_H_

#include <string>

#include "common/hash_util.h"
#include "common/value.h"

namespace bryql {

/// A term of the domain calculus: either a variable (named) or a constant
/// (a domain value). Terms appear as arguments of atoms and comparisons.
class Term {
 public:
  static Term Var(std::string name) {
    Term t;
    t.is_var_ = true;
    t.name_ = std::move(name);
    return t;
  }
  static Term Const(Value value) {
    Term t;
    t.is_var_ = false;
    t.value_ = std::move(value);
    return t;
  }

  bool is_variable() const { return is_var_; }
  bool is_constant() const { return !is_var_; }

  /// Variable name; only valid when is_variable().
  const std::string& var() const { return name_; }
  /// Constant value; only valid when is_constant().
  const Value& constant() const { return value_; }

  /// Variables print bare, constants via Value::ToString().
  std::string ToString() const {
    return is_var_ ? name_ : value_.ToString();
  }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.name_ == b.name_ : a.value_ == b.value_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  size_t Hash() const {
    size_t h = is_var_ ? std::hash<std::string>{}(name_) : value_.Hash();
    return HashCombine(h, is_var_ ? 1 : 2);
  }

 private:
  Term() : is_var_(false) {}

  bool is_var_;
  std::string name_;
  Value value_;
};

/// Shorthand constructors used pervasively in tests and examples.
inline Term V(std::string name) { return Term::Var(std::move(name)); }
inline Term C(std::string value) {
  return Term::Const(Value::String(std::move(value)));
}
inline Term CI(int64_t value) { return Term::Const(Value::Int(value)); }

}  // namespace bryql

#endif  // BRYQL_CALCULUS_TERM_H_
