#ifndef BRYQL_CALCULUS_VIEWS_H_
#define BRYQL_CALCULUS_VIEWS_H_

#include <map>
#include <string>

#include "calculus/parser.h"
#include "common/result.h"

namespace bryql {

/// Named open queries usable as predicates in other queries — the "views"
/// of Definition 1 ("P is a relation or a view"). An atom v(t1,...,tk)
/// over a view v = { x1,...,xk | B } expands to B with every xi replaced
/// by ti, after freshening B's bound variables so that no capture can
/// occur. Views may reference other views; cycles are rejected.
///
/// Expansion happens on the calculus before normalization, so view bodies
/// participate fully in the canonical form — a view used under a
/// quantifier is miniscoped, split and producer/filter-classified like
/// hand-inlined text (Definition 1's "view definitions local to a query").
class ViewSet {
 public:
  /// Defines (or replaces) a view. The definition must be an open query
  /// whose free variables are exactly its targets.
  Status Define(const std::string& name, Query definition);

  /// Parses `text` as an open query and defines it under `name`.
  Status DefineFromText(const std::string& name, const std::string& text);

  bool Has(const std::string& name) const {
    return views_.count(name) != 0;
  }
  size_t size() const { return views_.size(); }

  /// Number of columns of a view, or kNotFound.
  Result<size_t> ArityOf(const std::string& name) const;

  /// Replaces every view atom in `f` (recursively, including views used
  /// by views) by its expanded definition. Returns kInvalidArgument on
  /// arity mismatches and kUnsupported on cyclic view references.
  Result<FormulaPtr> Expand(const FormulaPtr& f) const;

  /// Expands a whole query.
  Result<Query> Expand(const Query& query) const;

 private:
  std::map<std::string, Query> views_;
};

}  // namespace bryql

#endif  // BRYQL_CALCULUS_VIEWS_H_
