#ifndef BRYQL_CALCULUS_PARSER_H_
#define BRYQL_CALCULUS_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "calculus/formula.h"
#include "common/result.h"

namespace bryql {

/// A parsed query: a formula plus the target list of an open query.
/// Closed (yes/no) queries have an empty target list.
struct Query {
  /// Free variables whose bindings are the answer, in target-list order.
  std::vector<std::string> targets;
  FormulaPtr formula;

  bool closed() const { return targets.empty(); }
  /// Renders `{ x, y | F }` or the bare formula for closed queries.
  std::string ToString() const;
};

/// Parses the bryql query language. Grammar (precedence low to high:
/// `<->`, `->`, `|`, `&`, quantifiers/`~`):
///
///   query      := '{' ident (',' ident)* '|' formula '}' | formula
///   formula    := iff
///   iff        := implies ('<->' implies)*
///   implies    := or ('->' implies)?             (right associative)
///   or         := and ('|' and | 'or' and)*
///   and        := unary ('&' unary | 'and' unary)*
///   unary      := ('~'|'!'|'not') unary
///               | ('exists'|'forall') ident+ ':' formula
///               | '(' formula ')'
///               | atom | comparison
///   atom       := ident '(' term (',' term)* ')'
///   comparison := term ('='|'!='|'<'|'<='|'>'|'>=') term
///   term       := ident | number | '\'' chars '\''
///
/// A quantifier's scope extends as far right as possible; parenthesize to
/// close it early. An identifier in term position denotes a *variable* when
/// it is bound by an enclosing quantifier or listed in the open-query target
/// list, and a *string constant* otherwise — so `enrolled(x, cs)` inside
/// `exists x: ...` reads x as a variable and cs as the constant 'cs',
/// exactly as the paper writes its examples.
///
/// The parser is recursive descent, so untrusted query text is an attack on
/// the C++ stack; ParseLimits bounds it. Adversarial input (10k-deep
/// nesting, megabyte tokens, truncated text) returns kInvalidArgument,
/// never crashes.
struct ParseLimits {
  /// Cap on input size in bytes. 0 = unlimited.
  size_t max_bytes = 1 << 20;
  /// Cap on formula nesting depth — each parenthesis, negation,
  /// quantifier body, or implication tail counts one level. 0 = unlimited
  /// (trusts the caller; deep input can then exhaust the stack). The
  /// default leaves ample headroom for real queries (which nest < 50)
  /// while staying stack-safe even under sanitizers, whose frames are
  /// several times larger.
  size_t max_depth = 256;
};

Result<Query> ParseQuery(std::string_view text, const ParseLimits& limits = {});

/// Parses a bare formula with the given names pre-bound as variables.
Result<FormulaPtr> ParseFormula(std::string_view text,
                                const std::vector<std::string>& bound_vars = {},
                                const ParseLimits& limits = {});

}  // namespace bryql

#endif  // BRYQL_CALCULUS_PARSER_H_
