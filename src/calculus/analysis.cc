#include "calculus/analysis.h"

#include <algorithm>
#include <vector>

namespace bryql {

namespace {

/// A quantifier occurrence at the top level of a scope: not nested inside
/// another quantifier of that scope.
struct TopQuantifier {
  const Formula* node;
  int parity;  // negations between the scope root and this occurrence
};

/// Collects quantifier occurrences not nested under another quantifier,
/// tracking negation parity. The left-hand side of an implication counts as
/// an implicit negation; both sides of an equivalence are visited at both
/// parities (a ⇔ contains implicit negations in both directions).
void CollectTopQuantifiers(const FormulaPtr& f, int parity,
                           std::vector<TopQuantifier>* out) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare:
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      out->push_back({f.get(), parity});
      return;
    case FormulaKind::kNot:
      CollectTopQuantifiers(f->child(), parity + 1, out);
      return;
    case FormulaKind::kImplies:
      CollectTopQuantifiers(f->children()[0], parity + 1, out);
      CollectTopQuantifiers(f->children()[1], parity, out);
      return;
    case FormulaKind::kIff:
      for (const FormulaPtr& c : f->children()) {
        CollectTopQuantifiers(c, parity, out);
        CollectTopQuantifiers(c, parity + 1, out);
      }
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f->children()) {
        CollectTopQuantifiers(c, parity, out);
      }
      return;
  }
}

/// True when some atom of `f` mentions a variable from `a` and a variable
/// from `b` (condition 3 of the directly-governs definition).
bool SomeAtomLinks(const FormulaPtr& f, const std::set<std::string>& a,
                   const std::set<std::string>& b) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare: {
      bool hits_a = false, hits_b = false;
      for (const Term& t : f->terms()) {
        if (!t.is_variable()) continue;
        hits_a |= a.count(t.var()) != 0;
        hits_b |= b.count(t.var()) != 0;
      }
      return hits_a && hits_b;
    }
    default:
      for (const FormulaPtr& c : f->children()) {
        if (SomeAtomLinks(c, a, b)) return true;
      }
      return false;
  }
}

std::set<std::string> GovernedImpl(const std::set<std::string>& xs,
                                   FormulaKind root_kind,
                                   const FormulaPtr& scope) {
  std::set<std::string> governed;
  std::vector<TopQuantifier> tops;
  CollectTopQuantifiers(scope, 0, &tops);
  for (const TopQuantifier& q : tops) {
    // Effective quantifier of this occurrence, seen from the scope root:
    // odd negation parity flips ∃ and ∀ (∀ ≡ ¬∃¬).
    FormulaKind syntactic = q.node->kind();
    FormulaKind effective =
        (q.parity % 2 == 0)
            ? syntactic
            : (syntactic == FormulaKind::kExists ? FormulaKind::kForall
                                                 : FormulaKind::kExists);
    // Condition 4: distinct quantifiers.
    if (effective == root_kind) continue;
    FormulaPtr body = q.node->children()[0];
    for (const std::string& y : q.node->vars()) {
      // y's own governed set, computed within y's scope.
      std::set<std::string> g_y = GovernedImpl({y}, effective, body);
      g_y.insert(y);
      // Condition 3: some atom of the scope links xs with {y} ∪ governed(y).
      if (SomeAtomLinks(scope, xs, g_y)) {
        governed.insert(g_y.begin(), g_y.end());
      }
    }
  }
  return governed;
}

/// True when some atom in `f` has all of its variables outside `bound`
/// (possibly none at all). With `inner_bound_counts` set (the Definition 4
/// reading), variables bound by quantifiers inside `f` also block their
/// atoms; without it (the condition (†) reading), only `bound` blocks.
bool HasAtomDisjointFrom(const FormulaPtr& f, std::set<std::string>& bound,
                         bool inner_bound_counts) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare: {
      for (const Term& t : f->terms()) {
        if (t.is_variable() && bound.count(t.var())) return false;
      }
      return true;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      if (!inner_bound_counts) {
        return HasAtomDisjointFrom(f->child(), bound, inner_bound_counts);
      }
      std::vector<std::string> added;
      for (const std::string& v : f->vars()) {
        if (bound.insert(v).second) added.push_back(v);
      }
      bool result = HasAtomDisjointFrom(f->child(), bound, inner_bound_counts);
      for (const std::string& v : added) bound.erase(v);
      return result;
    }
    default:
      for (const FormulaPtr& c : f->children()) {
        if (HasAtomDisjointFrom(c, bound, inner_bound_counts)) return true;
      }
      return false;
  }
}

}  // namespace

std::set<std::string> GovernedVariables(const std::vector<std::string>& xs,
                                        const FormulaPtr& scope) {
  return GovernedImpl(std::set<std::string>(xs.begin(), xs.end()),
                      FormulaKind::kExists, scope);
}

bool HasEscapableAtom(const std::vector<std::string>& xs,
                      const FormulaPtr& scope) {
  std::set<std::string> blocked(xs.begin(), xs.end());
  std::set<std::string> governed = GovernedVariables(xs, scope);
  blocked.insert(governed.begin(), governed.end());
  return HasAtomDisjointFrom(scope, blocked, /*inner_bound_counts=*/false);
}

bool HasAtomClearOf(const FormulaPtr& f,
                    const std::set<std::string>& blocked) {
  std::set<std::string> mutable_blocked = blocked;
  return HasAtomDisjointFrom(f, mutable_blocked, /*inner_bound_counts=*/false);
}

FormulaPtr SortAC(const FormulaPtr& f) {
  if (f->children().empty()) return f;
  std::vector<FormulaPtr> children;
  children.reserve(f->children().size());
  for (const FormulaPtr& c : f->children()) children.push_back(SortAC(c));
  switch (f->kind()) {
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::sort(children.begin(), children.end(),
                [](const FormulaPtr& a, const FormulaPtr& b) {
                  return a->ToString() < b->ToString();
                });
      return f->kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kNot:
      return Formula::Not(children[0]);
    case FormulaKind::kImplies:
      return Formula::Implies(children[0], children[1]);
    case FormulaKind::kIff:
      return Formula::Iff(children[0], children[1]);
    case FormulaKind::kExists:
      return Formula::Exists(f->vars(), children[0]);
    case FormulaKind::kForall:
      return Formula::Forall(f->vars(), children[0]);
    default:
      return f;
  }
}

bool IsMiniscope(const FormulaPtr& f) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare:
      return true;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // Definition 4: no atom of the body may mention only variables bound
      // outside this quantification. Variables bound by this quantifier or
      // by nested ones count as "inside".
      std::set<std::string> bound(f->vars().begin(), f->vars().end());
      if (HasAtomDisjointFrom(f->child(), bound, /*inner_bound_counts=*/true)) {
        return false;
      }
      return IsMiniscope(f->child());
    }
    default:
      for (const FormulaPtr& c : f->children()) {
        if (!IsMiniscope(c)) return false;
      }
      return true;
  }
}

size_t FormulaDepth(const FormulaPtr& f) {
  size_t max_depth = 0;
  std::vector<std::pair<const Formula*, size_t>> stack{{f.get(), 1}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (depth > max_depth) max_depth = depth;
    for (const FormulaPtr& c : node->children()) {
      stack.push_back({c.get(), depth + 1});
    }
  }
  return max_depth;
}

}  // namespace bryql
