#ifndef BRYQL_CALCULUS_ANALYSIS_H_
#define BRYQL_CALCULUS_ANALYSIS_H_

#include <set>
#include <string>

#include "calculus/formula.h"

namespace bryql {

/// Returns the variables *governed by* any of the variables `xs` quantified
/// at the root of `scope` (§1 of the paper).
///
/// A quantified variable x directly governs a variable y quantified in x's
/// scope when (1) y's quantification follows immediately that of x, (2) some
/// atom of the scope contains x together with y or with a variable governed
/// by y, and (3) x and y have distinct quantifiers. Governs is the
/// transitive closure. Intuitively, x governs y iff moving y's
/// quantification out of x's scope could change the query's meaning.
///
/// Because normalization rewrites ∀ into ¬∃ (Rules 4/5) and the rule system
/// is order-independent, "distinct quantifiers" is evaluated on the
/// *effective* quantifier: an ∃ under an odd number of negations counts as
/// a ∀ and vice versa. On formulas that still contain explicit ∀ this
/// coincides with the paper's literal definition.
std::set<std::string> GovernedVariables(const std::vector<std::string>& xs,
                                        const FormulaPtr& scope);

/// True when `scope` (the body of a quantifier over `xs`) contains an
/// atomic subformula mentioning none of `xs` and none of the variables they
/// govern — i.e. the quantification is not yet in miniscope form here
/// (Definition 4), and condition (†) of Rules 10/11 holds.
bool HasEscapableAtom(const std::vector<std::string>& xs,
                      const FormulaPtr& scope);

/// True when some atom (anywhere) in `f` mentions no variable of `blocked`.
/// This is the raw atom test behind condition (†); callers that need the
/// paper's exact condition must put both the quantified variables and their
/// governed variables (computed over the full scope) into `blocked`.
bool HasAtomClearOf(const FormulaPtr& f,
                    const std::set<std::string>& blocked);

/// Rewrites `f` with the children of every And/Or sorted into a canonical
/// order. Two formulas equal modulo associativity/commutativity of ∧ and ∨
/// have Formula::Equal canonical forms. Used by the confluence tests, since
/// different rule orders may emit conjuncts/disjuncts in different orders.
FormulaPtr SortAC(const FormulaPtr& f);

/// True when the whole formula is in miniscope form (Definition 4): no
/// quantified subformula contains an atom in which only variables
/// quantified outside it occur.
bool IsMiniscope(const FormulaPtr& f);

/// The nesting depth of `f`: 1 for a leaf (atom, comparison), 1 + max
/// child depth otherwise. Implemented with an explicit stack so it is safe
/// on arbitrarily deep ASTs — it is the function the resource governor's
/// depth guard calls *before* any recursive traversal touches the formula.
size_t FormulaDepth(const FormulaPtr& f);

}  // namespace bryql

#endif  // BRYQL_CALCULUS_ANALYSIS_H_
