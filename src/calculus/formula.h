#ifndef BRYQL_CALCULUS_FORMULA_H_
#define BRYQL_CALCULUS_FORMULA_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "calculus/term.h"

namespace bryql {

class Formula;

/// Formulas are immutable and shared: rewriting builds new trees that reuse
/// unchanged subtrees.
using FormulaPtr = std::shared_ptr<const Formula>;

/// Comparison operators of the calculus (built-in predicates over terms).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);
/// The operator satisfied exactly when `op` is not, e.g. kEq -> kNe.
CompareOp NegateCompareOp(CompareOp op);

/// Node kinds of the domain-calculus AST.
///
/// And/Or are n-ary (>= 2 children, flattened on construction) because the
/// miniscope and producer/filter rules (Rules 8-14) partition conjunct and
/// disjunct *lists*; the paper states them on binary connectives, which
/// n-ary nodes subsume up to associativity.
enum class FormulaKind {
  kAtom,     // R(t1, ..., tn)
  kCompare,  // t1 op t2
  kNot,      // ¬F
  kAnd,      // F1 ∧ ... ∧ Fk
  kOr,       // F1 ∨ ... ∨ Fk
  kImplies,  // F1 ⇒ F2  (used only for universal ranges, cf. §1)
  kIff,      // F1 ⇔ F2  (eliminated before normalization)
  kExists,   // ∃x1...xn F
  kForall,   // ∀x1...xn F
};

/// An immutable domain-calculus formula. Construct only through the static
/// factories, which maintain the invariants: And/Or flatten nested nodes of
/// the same kind and have >= 2 children; quantifiers have >= 1 variable and
/// merge directly nested quantifiers of the same kind (the paper's
/// ∃x1...xn shorthand, in which variable order is irrelevant).
class Formula : public std::enable_shared_from_this<Formula> {
 public:
  static FormulaPtr Atom(std::string predicate, std::vector<Term> terms);
  static FormulaPtr Compare(CompareOp op, Term lhs, Term rhs);
  static FormulaPtr Not(FormulaPtr f);
  /// Flattens nested kAnd children. `children.size() == 1` returns the child.
  static FormulaPtr And(std::vector<FormulaPtr> children);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b) {
    return And(std::vector<FormulaPtr>{std::move(a), std::move(b)});
  }
  /// Flattens nested kOr children. `children.size() == 1` returns the child.
  static FormulaPtr Or(std::vector<FormulaPtr> children);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b) {
    return Or(std::vector<FormulaPtr>{std::move(a), std::move(b)});
  }
  static FormulaPtr Implies(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Iff(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body);
  static FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body);

  FormulaKind kind() const { return kind_; }

  /// --- kAtom accessors ---
  const std::string& predicate() const { return predicate_; }
  const std::vector<Term>& terms() const { return terms_; }

  /// --- kCompare accessors ---
  CompareOp compare_op() const { return compare_op_; }
  const Term& lhs() const { return terms_[0]; }
  const Term& rhs() const { return terms_[1]; }

  /// --- connective accessors ---
  const std::vector<FormulaPtr>& children() const { return children_; }
  /// Single child of kNot, body of a quantifier.
  const FormulaPtr& child() const { return children_[0]; }

  /// --- quantifier accessors ---
  const std::vector<std::string>& vars() const { return vars_; }

  bool is_quantifier() const {
    return kind_ == FormulaKind::kExists || kind_ == FormulaKind::kForall;
  }
  bool is_literal() const {
    return kind_ == FormulaKind::kAtom || kind_ == FormulaKind::kCompare ||
           (kind_ == FormulaKind::kNot &&
            (child()->kind() == FormulaKind::kAtom ||
             child()->kind() == FormulaKind::kCompare));
  }

  /// Free variables, in first-occurrence order (deterministic).
  std::vector<std::string> FreeVariables() const;
  /// Free variables as a set, for containment queries.
  std::set<std::string> FreeVariableSet() const;
  /// All variable names occurring anywhere (free or bound).
  std::set<std::string> AllVariables() const;
  /// Number of AST nodes; the rewrite engine uses it for progress checks.
  size_t Size() const;

  /// Infix rendering with minimal parentheses, using ASCII connectives:
  /// `exists x y: p(x, y) & ~q(y)`.
  std::string ToString() const;

  /// Structural equality (variable names compared literally).
  static bool Equal(const FormulaPtr& a, const FormulaPtr& b);
  /// Hash consistent with Equal.
  static size_t Hash(const FormulaPtr& f);

 private:
  explicit Formula(FormulaKind kind) : kind_(kind) {}

  static FormulaPtr MakeNary(FormulaKind kind,
                             std::vector<FormulaPtr> children);
  static FormulaPtr MakeQuantifier(FormulaKind kind,
                                   std::vector<std::string> vars,
                                   FormulaPtr body);

  void AppendTo(std::string* out, int parent_precedence) const;

  FormulaKind kind_;
  std::string predicate_;         // kAtom
  std::vector<Term> terms_;       // kAtom args; kCompare lhs/rhs
  CompareOp compare_op_ = CompareOp::kEq;
  std::vector<FormulaPtr> children_;
  std::vector<std::string> vars_;  // quantifiers
};

/// Substitutes free occurrences of variables by terms. Quantified
/// occurrences shadow: substitution does not descend past a quantifier that
/// rebinds the variable. No capture check is performed; callers substitute
/// ground terms (constants) only, which can never be captured.
FormulaPtr Substitute(const FormulaPtr& f,
                      const std::map<std::string, Term>& bindings);

}  // namespace bryql

#endif  // BRYQL_CALCULUS_FORMULA_H_
