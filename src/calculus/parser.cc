#include "calculus/parser.h"

#include <cctype>
#include <cstdlib>
#include <set>

#include "common/failpoints.h"
#include "common/str_util.h"

namespace bryql {

std::string Query::ToString() const {
  if (closed()) return formula->ToString();
  return "{ " + Join(targets, ", ") + " | " + formula->ToString() + " }";
}

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kPipe,      // '|', disambiguated to kOr inside formulas by the parser
  kAmp,       // '&'
  kTilde,     // '~' or '!'
  kArrow,     // '->'
  kDArrow,    // '<->'
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // ident/number/string payload
  size_t pos = 0;    // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view text, const ParseLimits& limits)
      : text_(text), limits_(limits) {}

  Result<std::vector<Token>> Tokenize() {
    if (limits_.max_bytes != 0 && text_.size() > limits_.max_bytes) {
      return Status::InvalidArgument(
          "query text of " + std::to_string(text_.size()) +
          " bytes exceeds the limit of " +
          std::to_string(limits_.max_bytes) + " bytes");
    }
    std::vector<Token> tokens;
    while (true) {
      SkipSpace();
      size_t pos = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back({TokenKind::kEnd, "", pos});
        return tokens;
      }
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '-')) {
          ++pos_;
        }
        // A trailing '-' belongs to the next token (e.g. "x ->"), but a
        // hyphenated name like "cs-lecture" keeps its interior dashes.
        while (pos_ > start + 1 && text_[pos_ - 1] == '-') --pos_;
        tokens.push_back(
            {TokenKind::kIdent, std::string(text_.substr(start, pos_ - start)),
             pos});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        size_t start = pos_;
        ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.')) {
          ++pos_;
        }
        tokens.push_back(
            {TokenKind::kNumber,
             std::string(text_.substr(start, pos_ - start)), pos});
        continue;
      }
      switch (c) {
        case '\'': {
          size_t start = ++pos_;
          while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
          if (pos_ >= text_.size()) {
            return Status::InvalidArgument("unterminated string literal");
          }
          tokens.push_back(
              {TokenKind::kString,
               std::string(text_.substr(start, pos_ - start)), pos});
          ++pos_;
          continue;
        }
        case '(':
          Push(&tokens, TokenKind::kLParen);
          continue;
        case ')':
          Push(&tokens, TokenKind::kRParen);
          continue;
        case '{':
          Push(&tokens, TokenKind::kLBrace);
          continue;
        case '}':
          Push(&tokens, TokenKind::kRBrace);
          continue;
        case ',':
          Push(&tokens, TokenKind::kComma);
          continue;
        case ':':
          Push(&tokens, TokenKind::kColon);
          continue;
        case '|':
          Push(&tokens, TokenKind::kPipe);
          continue;
        case '&':
          Push(&tokens, TokenKind::kAmp);
          continue;
        case '~':
          Push(&tokens, TokenKind::kTilde);
          continue;
        case '!':
          if (Peek(1) == '=') {
            Push(&tokens, TokenKind::kNe, 2);
          } else {
            Push(&tokens, TokenKind::kTilde);
          }
          continue;
        case '-':
          if (Peek(1) == '>') {
            Push(&tokens, TokenKind::kArrow, 2);
            continue;
          }
          return Status::InvalidArgument("stray '-' at offset " +
                                         std::to_string(pos_));
        case '<':
          if (Peek(1) == '-' && Peek(2) == '>') {
            Push(&tokens, TokenKind::kDArrow, 3);
          } else if (Peek(1) == '=') {
            Push(&tokens, TokenKind::kLe, 2);
          } else if (Peek(1) == '>') {
            Push(&tokens, TokenKind::kNe, 2);
          } else {
            Push(&tokens, TokenKind::kLt);
          }
          continue;
        case '>':
          if (Peek(1) == '=') {
            Push(&tokens, TokenKind::kGe, 2);
          } else {
            Push(&tokens, TokenKind::kGt);
          }
          continue;
        case '=':
          Push(&tokens, TokenKind::kEq);
          continue;
        default:
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at offset " +
              std::to_string(pos_));
      }
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  void Push(std::vector<Token>* tokens, TokenKind kind, size_t width = 1) {
    tokens->push_back({kind, std::string(text_.substr(pos_, width)), pos_});
    pos_ += width;
  }

  std::string_view text_;
  ParseLimits limits_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::set<std::string> bound,
         const ParseLimits& limits)
      : tokens_(std::move(tokens)), bound_(std::move(bound)),
        limits_(limits) {}

  Result<FormulaPtr> ParseFormulaToEnd() {
    BRYQL_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
    BRYQL_RETURN_NOT_OK(Expect(TokenKind::kEnd, "end of input"));
    return f;
  }

  Result<Query> ParseQueryToEnd() {
    Query query;
    if (Current().kind == TokenKind::kLBrace) {
      Advance();
      while (true) {
        if (Current().kind != TokenKind::kIdent) {
          return Error("expected variable name in target list");
        }
        query.targets.push_back(Current().text);
        bound_.insert(Current().text);
        Advance();
        if (Current().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      BRYQL_RETURN_NOT_OK(Expect(TokenKind::kPipe, "'|'"));
      BRYQL_ASSIGN_OR_RETURN(query.formula, ParseIff());
      BRYQL_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "'}'"));
      BRYQL_RETURN_NOT_OK(Expect(TokenKind::kEnd, "end of input"));
      // Every target must actually occur in the formula.
      std::set<std::string> free = query.formula->FreeVariableSet();
      for (const std::string& t : query.targets) {
        if (!free.count(t)) {
          return Status::InvalidArgument("target variable '" + t +
                                         "' does not occur free in the query");
        }
      }
      return query;
    }
    BRYQL_ASSIGN_OR_RETURN(query.formula, ParseIff());
    BRYQL_RETURN_NOT_OK(Expect(TokenKind::kEnd, "end of input"));
    return query;
  }

 private:
  /// Every recursive production (negation, quantifier body, parenthesized
  /// formula, implication tail) claims one nesting level on entry, so
  /// adversarially nested input fails with InvalidArgument long before the
  /// C++ stack is at risk. RAII so sibling subformulas don't accumulate.
  class NestingGuard {
   public:
    explicit NestingGuard(Parser* parser) : parser_(parser) {
      ++parser_->depth_;
    }
    ~NestingGuard() { --parser_->depth_; }
    NestingGuard(const NestingGuard&) = delete;
    NestingGuard& operator=(const NestingGuard&) = delete;

   private:
    Parser* parser_;
  };

  Status CheckDepth() const {
    if (limits_.max_depth != 0 && depth_ >= limits_.max_depth) {
      return Status::InvalidArgument(
          "formula nesting exceeds the depth limit of " +
          std::to_string(limits_.max_depth));
    }
    return Status::Ok();
  }

  const Token& Current() const { return tokens_[index_]; }
  const Token& Next() const {
    return tokens_[std::min(index_ + 1, tokens_.size() - 1)];
  }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(Current().pos) +
                                   " (near '" + Current().text + "')");
  }

  Status Expect(TokenKind kind, const std::string& what) {
    if (Current().kind != kind) return Error("expected " + what);
    Advance();
    return Status::Ok();
  }

  bool AtKeyword(const char* kw) const {
    return Current().kind == TokenKind::kIdent && Current().text == kw;
  }

  Result<FormulaPtr> ParseIff() {
    BRYQL_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseImplies());
    while (Current().kind == TokenKind::kDArrow) {
      Advance();
      BRYQL_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseImplies());
      lhs = Formula::Iff(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseImplies() {
    BRYQL_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseOr());
    if (Current().kind == TokenKind::kArrow) {
      Advance();
      BRYQL_RETURN_NOT_OK(CheckDepth());
      NestingGuard guard(this);
      BRYQL_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseImplies());
      return Formula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseOr() {
    BRYQL_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseAnd());
    std::vector<FormulaPtr> parts{std::move(lhs)};
    while (Current().kind == TokenKind::kPipe || AtKeyword("or")) {
      // Inside `{ x | F }`, a '|' right before '}' never occurs; '|' here is
      // always disjunction because ParseQueryToEnd consumed the target pipe.
      Advance();
      BRYQL_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseAnd());
      parts.push_back(std::move(rhs));
    }
    if (parts.size() == 1) return parts.front();
    return Formula::Or(std::move(parts));
  }

  Result<FormulaPtr> ParseAnd() {
    BRYQL_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUnary());
    std::vector<FormulaPtr> parts{std::move(lhs)};
    while (Current().kind == TokenKind::kAmp || AtKeyword("and")) {
      Advance();
      BRYQL_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUnary());
      parts.push_back(std::move(rhs));
    }
    if (parts.size() == 1) return parts.front();
    return Formula::And(std::move(parts));
  }

  Result<FormulaPtr> ParseUnary() {
    if (Current().kind == TokenKind::kTilde || AtKeyword("not")) {
      Advance();
      BRYQL_RETURN_NOT_OK(CheckDepth());
      NestingGuard guard(this);
      BRYQL_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return Formula::Not(std::move(f));
    }
    if (AtKeyword("exists") || AtKeyword("forall")) {
      bool existential = Current().text == "exists";
      Advance();
      std::vector<std::string> vars;
      while (Current().kind == TokenKind::kIdent &&
             Next().kind != TokenKind::kLParen) {
        vars.push_back(Current().text);
        Advance();
      }
      if (vars.empty()) return Error("expected quantified variable name");
      BRYQL_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
      BRYQL_RETURN_NOT_OK(CheckDepth());
      NestingGuard guard(this);
      std::vector<std::string> shadowed;
      for (const std::string& v : vars) {
        if (bound_.insert(v).second) shadowed.push_back(v);
      }
      Result<FormulaPtr> body = ParseIff();
      for (const std::string& v : shadowed) bound_.erase(v);
      if (!body.ok()) return body.status();
      FormulaPtr f = std::move(body).ValueOrDie();
      return existential ? Formula::Exists(std::move(vars), std::move(f))
                         : Formula::Forall(std::move(vars), std::move(f));
    }
    if (Current().kind == TokenKind::kLParen) {
      Advance();
      BRYQL_RETURN_NOT_OK(CheckDepth());
      NestingGuard guard(this);
      BRYQL_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
      BRYQL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return f;
    }
    return ParseAtomOrComparison();
  }

  Result<FormulaPtr> ParseAtomOrComparison() {
    // Atom: ident '(' ... ')'.
    if (Current().kind == TokenKind::kIdent &&
        Next().kind == TokenKind::kLParen) {
      std::string predicate = Current().text;
      Advance();
      Advance();  // '('
      std::vector<Term> terms;
      if (Current().kind != TokenKind::kRParen) {
        while (true) {
          BRYQL_ASSIGN_OR_RETURN(Term t, ParseTerm());
          terms.push_back(std::move(t));
          if (Current().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      BRYQL_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return Formula::Atom(std::move(predicate), std::move(terms));
    }
    // Otherwise a comparison.
    BRYQL_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    CompareOp op;
    switch (Current().kind) {
      case TokenKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = CompareOp::kGe;
        break;
      default:
        return Error("expected comparison operator or atom");
    }
    Advance();
    BRYQL_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Formula::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<Term> ParseTerm() {
    const Token& tok = Current();
    switch (tok.kind) {
      case TokenKind::kIdent: {
        Advance();
        // Bound names are variables; everything else is a string constant
        // (the paper's `enrolled(x, cs)` convention).
        if (bound_.count(tok.text)) return Term::Var(tok.text);
        return Term::Const(Value::String(tok.text));
      }
      case TokenKind::kNumber: {
        Advance();
        if (tok.text.find('.') != std::string::npos) {
          return Term::Const(Value::Double(std::strtod(tok.text.c_str(),
                                                       nullptr)));
        }
        return Term::Const(
            Value::Int(std::strtoll(tok.text.c_str(), nullptr, 10)));
      }
      case TokenKind::kString: {
        Advance();
        return Term::Const(Value::String(tok.text));
      }
      default:
        return Error("expected term");
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  std::set<std::string> bound_;
  ParseLimits limits_;
  size_t depth_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, const ParseLimits& limits) {
  BRYQL_FAILPOINT("parse.query");
  BRYQL_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         Lexer(text, limits).Tokenize());
  return Parser(std::move(tokens), {}, limits).ParseQueryToEnd();
}

Result<FormulaPtr> ParseFormula(std::string_view text,
                                const std::vector<std::string>& bound_vars,
                                const ParseLimits& limits) {
  BRYQL_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         Lexer(text, limits).Tokenize());
  std::set<std::string> bound(bound_vars.begin(), bound_vars.end());
  return Parser(std::move(tokens), std::move(bound), limits)
      .ParseFormulaToEnd();
}

}  // namespace bryql
