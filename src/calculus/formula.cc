#include "calculus/formula.h"

#include <algorithm>
#include <cassert>

namespace bryql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

FormulaPtr Formula::Atom(std::string predicate, std::vector<Term> terms) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kAtom));
  f->predicate_ = std::move(predicate);
  f->terms_ = std::move(terms);
  return f;
}

FormulaPtr Formula::Compare(CompareOp op, Term lhs, Term rhs) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kCompare));
  f->compare_op_ = op;
  f->terms_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::Not(FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kNot));
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::MakeNary(FormulaKind kind,
                             std::vector<FormulaPtr> children) {
  assert(!children.empty());
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& c : children) {
    assert(c != nullptr);
    if (c->kind() == kind) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.size() == 1) return flat.front();
  auto f = std::shared_ptr<Formula>(new Formula(kind));
  f->children_ = std::move(flat);
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> children) {
  return MakeNary(FormulaKind::kAnd, std::move(children));
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> children) {
  return MakeNary(FormulaKind::kOr, std::move(children));
}

FormulaPtr Formula::Implies(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kImplies));
  f->children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::Iff(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::shared_ptr<Formula>(new Formula(FormulaKind::kIff));
  f->children_ = {std::move(lhs), std::move(rhs)};
  return f;
}

FormulaPtr Formula::MakeQuantifier(FormulaKind kind,
                                   std::vector<std::string> vars,
                                   FormulaPtr body) {
  assert(!vars.empty());
  // Merge ∃x(∃y F) into ∃x y F — the paper's shorthand, where variable
  // order is irrelevant. Deduplicate variables (inner binding shadows, so a
  // repeated name binds once).
  if (body->kind() == kind) {
    for (const std::string& v : body->vars()) vars.push_back(v);
    body = body->child();
  }
  std::vector<std::string> unique_vars;
  for (std::string& v : vars) {
    if (std::find(unique_vars.begin(), unique_vars.end(), v) ==
        unique_vars.end()) {
      unique_vars.push_back(std::move(v));
    }
  }
  auto f = std::shared_ptr<Formula>(new Formula(kind));
  f->vars_ = std::move(unique_vars);
  f->children_ = {std::move(body)};
  return f;
}

FormulaPtr Formula::Exists(std::vector<std::string> vars, FormulaPtr body) {
  return MakeQuantifier(FormulaKind::kExists, std::move(vars),
                        std::move(body));
}

FormulaPtr Formula::Forall(std::vector<std::string> vars, FormulaPtr body) {
  return MakeQuantifier(FormulaKind::kForall, std::move(vars),
                        std::move(body));
}

namespace {

void CollectFree(const Formula& f, std::vector<std::string>* order,
                 std::set<std::string>* seen,
                 std::set<std::string>* bound) {
  auto visit_term = [&](const Term& t) {
    if (t.is_variable() && !bound->count(t.var()) && !seen->count(t.var())) {
      seen->insert(t.var());
      order->push_back(t.var());
    }
  };
  switch (f.kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare:
      for (const Term& t : f.terms()) visit_term(t);
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::vector<std::string> newly_bound;
      for (const std::string& v : f.vars()) {
        if (bound->insert(v).second) newly_bound.push_back(v);
      }
      CollectFree(*f.child(), order, seen, bound);
      for (const std::string& v : newly_bound) bound->erase(v);
      return;
    }
    default:
      for (const FormulaPtr& c : f.children()) {
        CollectFree(*c, order, seen, bound);
      }
      return;
  }
}

}  // namespace

std::vector<std::string> Formula::FreeVariables() const {
  std::vector<std::string> order;
  std::set<std::string> seen, bound;
  CollectFree(*this, &order, &seen, &bound);
  return order;
}

std::set<std::string> Formula::FreeVariableSet() const {
  std::vector<std::string> order = FreeVariables();
  return std::set<std::string>(order.begin(), order.end());
}

std::set<std::string> Formula::AllVariables() const {
  std::set<std::string> all;
  switch (kind_) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare:
      for (const Term& t : terms_) {
        if (t.is_variable()) all.insert(t.var());
      }
      return all;
    default: {
      for (const std::string& v : vars_) all.insert(v);
      for (const FormulaPtr& c : children_) {
        std::set<std::string> sub = c->AllVariables();
        all.insert(sub.begin(), sub.end());
      }
      return all;
    }
  }
}

size_t Formula::Size() const {
  size_t n = 1;
  for (const FormulaPtr& c : children_) n += c->Size();
  return n;
}

namespace {

/// Precedence levels for printing: higher binds tighter.
int Precedence(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kIff:
      return 1;
    case FormulaKind::kImplies:
      return 2;
    case FormulaKind::kOr:
      return 3;
    case FormulaKind::kAnd:
      return 4;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return 5;
    case FormulaKind::kNot:
      return 6;
    default:
      return 7;
  }
}

}  // namespace

void Formula::AppendTo(std::string* out, int parent_precedence) const {
  int prec = Precedence(kind_);
  bool parens = prec < parent_precedence;
  // A quantifier's scope extends maximally to the right, so it must be
  // parenthesized under any connective, and its body never needs parens.
  if (is_quantifier()) parens = parent_precedence > 0;
  if (parens) *out += "(";
  switch (kind_) {
    case FormulaKind::kAtom: {
      *out += predicate_ + "(";
      for (size_t i = 0; i < terms_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += terms_[i].ToString();
      }
      *out += ")";
      break;
    }
    case FormulaKind::kCompare:
      *out += terms_[0].ToString();
      *out += " ";
      *out += CompareOpName(compare_op_);
      *out += " ";
      *out += terms_[1].ToString();
      break;
    case FormulaKind::kNot:
      *out += "~";
      children_[0]->AppendTo(out, prec + 1);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const char* sep = kind_ == FormulaKind::kAnd ? " & " : " | ";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) *out += sep;
        children_[i]->AppendTo(out, prec + 1);
      }
      break;
    }
    case FormulaKind::kImplies:
      children_[0]->AppendTo(out, prec + 1);
      *out += " -> ";
      children_[1]->AppendTo(out, prec);
      break;
    case FormulaKind::kIff:
      children_[0]->AppendTo(out, prec + 1);
      *out += " <-> ";
      children_[1]->AppendTo(out, prec + 1);
      break;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      *out += kind_ == FormulaKind::kExists ? "exists" : "forall";
      for (const std::string& v : vars_) {
        *out += " " + v;
      }
      *out += ": ";
      children_[0]->AppendTo(out, 0);
      break;
    }
  }
  if (parens) *out += ")";
}

std::string Formula::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

bool Formula::Equal(const FormulaPtr& a, const FormulaPtr& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  if (a->predicate_ != b->predicate_) return false;
  if (a->compare_op_ != b->compare_op_) return false;
  if (a->terms_ != b->terms_) return false;
  if (a->vars_.size() != b->vars_.size()) return false;
  // Quantified variable lists compare as sets: the paper's shorthand makes
  // the order of like-quantified variables irrelevant.
  if (!a->vars_.empty()) {
    std::vector<std::string> av = a->vars_, bv = b->vars_;
    std::sort(av.begin(), av.end());
    std::sort(bv.begin(), bv.end());
    if (av != bv) return false;
  }
  if (a->children_.size() != b->children_.size()) return false;
  for (size_t i = 0; i < a->children_.size(); ++i) {
    if (!Equal(a->children_[i], b->children_[i])) return false;
  }
  return true;
}

size_t Formula::Hash(const FormulaPtr& f) {
  if (f == nullptr) return 0;
  size_t h = HashCombine(0x517cc1b7, static_cast<size_t>(f->kind_));
  h = HashCombine(h, std::hash<std::string>{}(f->predicate_));
  h = HashCombine(h, static_cast<size_t>(f->compare_op_));
  for (const Term& t : f->terms_) h = HashCombine(h, t.Hash());
  // Order-insensitive mix of quantified variable names.
  size_t var_mix = 0;
  for (const std::string& v : f->vars_) {
    var_mix ^= std::hash<std::string>{}(v);
  }
  h = HashCombine(h, var_mix);
  for (const FormulaPtr& c : f->children_) h = HashCombine(h, Hash(c));
  return h;
}

FormulaPtr Substitute(const FormulaPtr& f,
                      const std::map<std::string, Term>& bindings) {
  if (bindings.empty()) return f;
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare: {
      std::vector<Term> terms = f->terms();
      bool changed = false;
      for (Term& t : terms) {
        if (t.is_variable()) {
          auto it = bindings.find(t.var());
          if (it != bindings.end()) {
            t = it->second;
            changed = true;
          }
        }
      }
      if (!changed) return f;
      if (f->kind() == FormulaKind::kAtom) {
        return Formula::Atom(f->predicate(), std::move(terms));
      }
      return Formula::Compare(f->compare_op(), terms[0], terms[1]);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::map<std::string, Term> inner = bindings;
      for (const std::string& v : f->vars()) inner.erase(v);
      FormulaPtr body = Substitute(f->child(), inner);
      if (body.get() == f->child().get()) return f;
      return f->kind() == FormulaKind::kExists
                 ? Formula::Exists(f->vars(), std::move(body))
                 : Formula::Forall(f->vars(), std::move(body));
    }
    default: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children().size());
      bool changed = false;
      for (const FormulaPtr& c : f->children()) {
        FormulaPtr nc = Substitute(c, bindings);
        changed |= nc.get() != c.get();
        children.push_back(std::move(nc));
      }
      if (!changed) return f;
      switch (f->kind()) {
        case FormulaKind::kNot:
          return Formula::Not(children[0]);
        case FormulaKind::kAnd:
          return Formula::And(std::move(children));
        case FormulaKind::kOr:
          return Formula::Or(std::move(children));
        case FormulaKind::kImplies:
          return Formula::Implies(children[0], children[1]);
        case FormulaKind::kIff:
          return Formula::Iff(children[0], children[1]);
        default:
          return f;
      }
    }
  }
}

}  // namespace bryql
