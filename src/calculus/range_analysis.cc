#include "calculus/range_analysis.h"

#include <algorithm>

namespace bryql {

namespace {

/// All distinct variables among the terms of an atom or comparison.
std::set<std::string> TermVariables(const Formula& f) {
  std::set<std::string> vars;
  for (const Term& t : f.terms()) {
    if (t.is_variable()) vars.insert(t.var());
  }
  return vars;
}

bool Subset(const std::set<std::string>& a, const std::set<std::string>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

std::optional<std::set<std::string>> ProducedVariables(
    const FormulaPtr& f, const std::set<std::string>& outer) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
      // Definition 1 case 1, generalized: constants and repeated variables
      // act as built-in selections on the stored relation.
      return TermVariables(*f);
    case FormulaKind::kCompare: {
      if (f->compare_op() != CompareOp::kEq) return std::nullopt;
      const Term& l = f->lhs();
      const Term& r = f->rhs();
      auto bound = [&](const Term& t) {
        return t.is_constant() || outer.count(t.var()) != 0;
      };
      if (l.is_variable() && !outer.count(l.var()) && bound(r)) {
        return std::set<std::string>{l.var()};
      }
      if (r.is_variable() && !outer.count(r.var()) && bound(l)) {
        return std::set<std::string>{r.var()};
      }
      return std::nullopt;
    }
    case FormulaKind::kAnd: {
      // Definition 1 cases 2 and 4: a conjunction produces the union of
      // its producer conjuncts when a safe order exists.
      auto split = SplitProducersAndFilters(f->children(), {}, outer);
      if (!split) return std::nullopt;
      return split->produced;
    }
    case FormulaKind::kOr: {
      // Definition 1 case 3: every disjunct must be a range for the same
      // variables.
      std::optional<std::set<std::string>> produced;
      for (const FormulaPtr& c : f->children()) {
        auto p = ProducedVariables(c, outer);
        if (!p) return std::nullopt;
        // The disjunct may not have unproduced free variables beyond outer.
        for (const std::string& v : c->FreeVariableSet()) {
          if (!p->count(v) && !outer.count(v)) return std::nullopt;
        }
        if (!produced) {
          produced = std::move(p);
        } else if (*produced != *p) {
          return std::nullopt;
        }
      }
      return produced;
    }
    case FormulaKind::kExists: {
      // Definition 1 case 5: ∃y R is a range for x̄ when R ranges x̄ ∪ ȳ.
      auto p = ProducedVariables(f->child(), outer);
      if (!p) return std::nullopt;
      for (const std::string& v : f->vars()) {
        if (!p->count(v)) return std::nullopt;
        p->erase(v);
      }
      return p;
    }
    case FormulaKind::kNot:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
    case FormulaKind::kForall:
      return std::nullopt;
  }
  return std::nullopt;
}

bool IsRangeFor(const FormulaPtr& f, const std::set<std::string>& xs,
                const std::set<std::string>& outer) {
  auto produced = ProducedVariables(f, outer);
  if (!produced || !Subset(xs, *produced)) return false;
  for (const std::string& v : f->FreeVariableSet()) {
    if (!produced->count(v) && !outer.count(v)) return false;
  }
  return true;
}

std::optional<ProducerFilterSplit> SplitProducersAndFilters(
    const std::vector<FormulaPtr>& conjuncts,
    const std::set<std::string>& required,
    const std::set<std::string>& outer) {
  ProducerFilterSplit split;
  std::set<std::string> bound = outer;
  std::vector<FormulaPtr> remaining = conjuncts;
  while (!remaining.empty()) {
    bool placed = false;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const FormulaPtr& c = remaining[i];
      std::set<std::string> free = c->FreeVariableSet();
      // A filter: everything already bound.
      if (Subset(free, bound)) {
        split.ordered.push_back(c);
        split.is_producer.push_back(false);
        remaining.erase(remaining.begin() + i);
        placed = true;
        break;
      }
      // A producer: produces its unbound free variables.
      auto produced = ProducedVariables(c, bound);
      if (produced) {
        bool covers = true;
        for (const std::string& v : free) {
          if (!bound.count(v) && !produced->count(v)) {
            covers = false;
            break;
          }
        }
        if (covers) {
          for (const std::string& v : *produced) {
            bound.insert(v);
            split.produced.insert(v);
          }
          split.ordered.push_back(c);
          split.is_producer.push_back(true);
          remaining.erase(remaining.begin() + i);
          placed = true;
          break;
        }
      }
    }
    if (!placed) return std::nullopt;
  }
  if (!Subset(required, bound)) return std::nullopt;
  return split;
}

namespace {

std::vector<FormulaPtr> Conjuncts(const FormulaPtr& f) {
  if (f->kind() == FormulaKind::kAnd) return f->children();
  return {f};
}

Status CheckImpl(const FormulaPtr& f, const std::set<std::string>& outer);

/// Checks an existential block ∃vars: body (vars may be empty for the
/// top-level open/closed query).
Status CheckExistentialBlock(const std::vector<std::string>& vars,
                             const FormulaPtr& body,
                             const std::set<std::string>& outer) {
  std::set<std::string> required(vars.begin(), vars.end());
  for (const std::string& v : body->FreeVariables()) {
    if (!outer.count(v)) required.insert(v);
  }
  auto split = SplitProducersAndFilters(Conjuncts(body), required, outer);
  if (!split) {
    return Status::Unsupported(
        "no range found for quantified variables in: " + body->ToString());
  }
  std::set<std::string> bound = outer;
  bound.insert(split->produced.begin(), split->produced.end());
  for (const FormulaPtr& c : split->ordered) {
    BRYQL_RETURN_NOT_OK(CheckImpl(c, bound));
  }
  return Status::Ok();
}

Status CheckImpl(const FormulaPtr& f, const std::set<std::string>& outer) {
  switch (f->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kCompare:
      return Status::Ok();
    case FormulaKind::kNot:
      return CheckImpl(f->child(), outer);
    case FormulaKind::kAnd:
      return CheckExistentialBlock({}, f, outer);
    case FormulaKind::kOr: {
      for (const FormulaPtr& c : f->children()) {
        BRYQL_RETURN_NOT_OK(CheckImpl(c, outer));
      }
      return Status::Ok();
    }
    case FormulaKind::kExists:
      return CheckExistentialBlock(f->vars(), f->child(), outer);
    case FormulaKind::kForall: {
      // Definition 2 universal forms: ∀x̄ R ⇒ F and ∀x̄ ¬R. Check via the
      // equivalent existential block (Rules 4/5).
      const FormulaPtr& body = f->child();
      if (body->kind() == FormulaKind::kImplies) {
        FormulaPtr as_exists = Formula::And(
            body->children()[0], Formula::Not(body->children()[1]));
        return CheckExistentialBlock(f->vars(), as_exists, outer);
      }
      if (body->kind() == FormulaKind::kNot) {
        return CheckExistentialBlock(f->vars(), body->child(), outer);
      }
      return Status::Unsupported(
          "universal quantification without range form (normalize first): " +
          f->ToString());
    }
    case FormulaKind::kImplies:
      return Status::Unsupported(
          "implication outside a universal range (normalize first): " +
          f->ToString());
    case FormulaKind::kIff:
      return Status::Unsupported(
          "equivalences must be eliminated by normalization: " +
          f->ToString());
  }
  return Status::Ok();
}

}  // namespace

Status CheckRestricted(const FormulaPtr& f) { return CheckImpl(f, {}); }

Status CheckRestrictedQuery(const FormulaPtr& f,
                            const std::set<std::string>& targets) {
  if (targets.empty()) return CheckRestricted(f);
  std::vector<FormulaPtr> branches =
      f->kind() == FormulaKind::kOr ? f->children()
                                    : std::vector<FormulaPtr>{f};
  std::vector<std::string> required(targets.begin(), targets.end());
  for (const FormulaPtr& branch : branches) {
    BRYQL_RETURN_NOT_OK(CheckExistentialBlock(required, branch, {}));
  }
  return Status::Ok();
}

}  // namespace bryql
