// Quickstart: build a database, ask quantified and disjunctive queries,
// and look at the algebra plans the paper's method produces.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/query_processor.h"
#include "storage/builder.h"

using bryql::Database;
using bryql::QueryProcessor;
using bryql::StringPairs;
using bryql::Strategy;
using bryql::UnaryStrings;

int main() {
  // 1. A database is a catalog of named relations.
  Database db;
  db.Put("student", UnaryStrings({"ann", "bob", "cal", "dee"}));
  db.Put("lecture", StringPairs({{"l1", "db"}, {"l2", "db"}, {"l3", "ai"}}));
  db.Put("attends", StringPairs({{"ann", "l1"},
                                 {"ann", "l2"},
                                 {"ann", "l3"},
                                 {"bob", "l1"},
                                 {"cal", "l3"}}));
  db.Put("enrolled", StringPairs({{"ann", "cs"},
                                  {"bob", "cs"},
                                  {"cal", "math"},
                                  {"dee", "physics"}}));

  QueryProcessor qp(&db);

  // 2. An open query: `{ targets | formula }`. Identifiers bound by a
  // quantifier or listed as targets are variables; anything else is a
  // constant — `enrolled(x, cs)` reads `cs` as the constant 'cs'.
  const char* all_db_lectures =
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }";
  auto result = qp.Run(all_db_lectures);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "Students attending all db lectures:\n"
            << result->answer.relation.ToString() << "\n";

  // 3. A closed (yes/no) query evaluates with an early-stopping
  // non-emptiness test.
  const char* somebody =
      "exists x: student(x) & ~enrolled(x, cs) & (exists y: attends(x, y))";
  auto yesno = qp.Run(somebody);
  if (!yesno.ok()) {
    std::cerr << "query failed: " << yesno.status() << "\n";
    return 1;
  }
  std::cout << "Non-cs student attending something? "
            << (yesno->answer.truth ? "yes" : "no") << "\n\n";

  // 4. EXPLAIN: the canonical form (phase 1) and the algebra plan
  // (phase 2). Note the complement-join — no division, no cartesian
  // product.
  auto plan = qp.Explain(all_db_lectures);
  std::cout << "Canonical form:\n  " << plan->canonical->ToString() << "\n\n";
  std::cout << "Algebra plan:\n" << plan->plan->ToString() << "\n";

  // 5. Strategies: compare against the conventional reduction and the
  // nested-loop interpreter; same answers, different costs.
  for (Strategy s :
       {Strategy::kBry, Strategy::kClassical, Strategy::kNestedLoop}) {
    auto run = qp.Run(all_db_lectures, s);
    std::cout << StrategyName(s) << ": " << run->answer.relation.size()
              << " answers, " << run->stats.ToString() << "\n";
  }
  return 0;
}
