// The paper's motivating application (§1): "handling integrity
// constraints that are more complex than dependencies". A constraint is a
// closed formula that must hold; checking it is a yes/no query, and when
// it fails, the *violation query* — the negation, opened on its witnesses
// — lists the offending tuples.
//
//   ./build/examples/integrity_constraints

#include <iostream>
#include <string>
#include <vector>

#include "core/query_processor.h"
#include "storage/builder.h"

using namespace bryql;

struct Constraint {
  std::string name;
  std::string check;       // closed formula that must be true
  std::string violations;  // open query listing witnesses of failure
};

int main() {
  Database db;
  db.Put("student", UnaryStrings({"ann", "bob", "cal", "dee"}));
  db.Put("enrolled", StringPairs({{"ann", "cs"},
                                  {"bob", "cs"},
                                  {"bob", "math"},  // double enrollment!
                                  {"cal", "math"}}));
  db.Put("department", UnaryStrings({"cs", "math", "physics"}));
  db.Put("attends", StringPairs({{"ann", "l1"}, {"bob", "l1"},
                                 {"cal", "l2"}}));
  db.Put("lecture", StringPairs({{"l1", "db"}, {"l2", "ai"},
                                 {"l9", "os"}}));

  std::vector<Constraint> constraints = {
      {"every student is enrolled somewhere",
       "forall x: student(x) -> (exists d: enrolled(x, d))",
       "{ x | student(x) & ~(exists d: enrolled(x, d)) }"},
      {"enrollment departments exist",
       "forall x d: enrolled(x, d) -> department(d)",
       "{ x, d | enrolled(x, d) & ~department(d) }"},
      {"students enroll in at most one department",
       "forall x d1 d2: (enrolled(x, d1) & enrolled(x, d2)) -> d1 = d2",
       "{ x | exists d1 d2: enrolled(x, d1) & enrolled(x, d2) & d1 != d2 }"},
      {"every lecture someone attends is a real lecture",
       "forall x y: attends(x, y) -> (exists s: lecture(y, s))",
       "{ x, y | attends(x, y) & ~(exists s: lecture(y, s)) }"},
      {"no empty lectures (disjunction: db lectures exempt)",
       "forall y s: lecture(y, s) -> (s = db | (exists x: attends(x, y)))",
       "{ y | exists s: lecture(y, s) & s != db & "
       "~(exists x: attends(x, y)) }"},
  };

  QueryProcessor qp(&db);
  int violated = 0;
  for (const Constraint& c : constraints) {
    auto check = qp.Run(c.check);
    if (!check.ok()) {
      std::cerr << c.name << ": check failed to run: " << check.status()
                << "\n";
      return 1;
    }
    std::cout << (check->answer.truth ? "[ok]        " : "[VIOLATED]  ")
              << c.name << "\n";
    if (!check->answer.truth) {
      ++violated;
      auto witnesses = qp.Run(c.violations);
      if (witnesses.ok()) {
        std::cout << "  violating tuples:\n";
        for (const Tuple& t : witnesses->answer.relation.rows()) {
          std::cout << "    " << t.ToString() << "\n";
        }
      }
    }
  }
  std::cout << "\n" << violated << " of " << constraints.size()
            << " constraints violated\n";
  return 0;
}
