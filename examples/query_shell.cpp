// An interactive shell over the library: load relations from CSV files,
// type calculus queries, inspect canonical forms and algebra plans.
//
//   ./build/examples/query_shell [name=file.csv ...]
//
// Commands:
//   { x | p(x) & ... }        run an open query
//   exists x: p(x) & ...      run a closed query
//   .load <name> <file.csv>   register a relation from CSV
//   .rel <name> a,b\n c,d ;   define a relation inline (rows until ';')
//   .relations                list relations
//   .explain <query>          show canonical form + plan without running
//   .explain physical <query> show the lowered physical operator tree
//   .cost <query>             plan annotated with cost-model estimates
//   .view <name> <query>      define a view, e.g. .view v { x | p(x) }
//   .index <name> <column>    build a hash index (0-based column)
//   .save <dir> / .open <dir> persist / load the whole database
//   .domclose                 toggle Domain Closure mode (§2.1)
//   .strategy <name>          bry | bry-division | bry-union-filters |
//                             quel-counting | classical | nested-loop
//   .threads <n>              morsel-parallel execution with n workers
//                             (0 = serial, the default)
//   .columnar on|off          build column stores and let the lowering
//                             pick zone-pruned columnar scans (off =
//                             row path only; answers never change)
//   .service                  toggle the fault-tolerant front door
//                             (DESIGN.md §9): admission, retries,
//                             degradation; pairs with BRYQL_FAILPOINTS
//   .quit
//
// With failpoints compiled in (-DBRYQL_FAILPOINTS=ON), the environment
// variable BRYQL_FAILPOINTS arms fault injection at startup, e.g.
//   BRYQL_FAILPOINTS='exec.scan.open=p0.2@seed7' ./query_shell
// and `.service` shows the retry machinery riding out the faults.

#include <iostream>
#include <sstream>
#include <string>

#include "algebra/cost_model.h"
#include "common/failpoints.h"
#include "core/query_processor.h"
#include "service/service.h"
#include "storage/csv.h"

using namespace bryql;

namespace {

Strategy ParseStrategy(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "bry") return Strategy::kBry;
  if (name == "bry-division") return Strategy::kBryDivision;
  if (name == "bry-union-filters") return Strategy::kBryUnionFilters;
  if (name == "quel-counting") return Strategy::kQuelCounting;
  if (name == "classical") return Strategy::kClassical;
  if (name == "nested-loop") return Strategy::kNestedLoop;
  *ok = false;
  return Strategy::kBry;
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  ViewSet views;
  Strategy strategy = Strategy::kBry;
  bool domain_closure = false;
  size_t num_threads = 0;
  bool use_service = false;
  bool use_columnar = false;

  // Arms any faults requested via the BRYQL_FAILPOINTS environment
  // variable (no-op when unset or when failpoints are compiled out).
  Status fp = failpoints::InitFromEnv();
  if (!fp.ok()) std::cerr << "BRYQL_FAILPOINTS: " << fp << "\n";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::cerr << "ignoring argument '" << arg << "' (want name=file.csv)\n";
      continue;
    }
    auto rel = RelationFromCsvFile(arg.substr(eq + 1));
    if (!rel.ok()) {
      std::cerr << rel.status() << "\n";
      return 1;
    }
    db.Put(arg.substr(0, eq), std::move(*rel));
    std::cout << "loaded " << arg.substr(0, eq) << "\n";
  }

  std::cout << "bryql shell — type a query, or .help\n";
  std::string line;
  while (std::cout << "bryql> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      std::cout << "queries: { x | p(x) & ... } or a closed formula\n"
                << "commands: .load name file.csv | .rel name rows... ; |\n"
                << "          .relations | .explain <query> | "
                   ".explain physical <query> |\n"
                << "          .strategy <name> | .threads <n> | "
                   ".columnar on|off | .service | .quit\n";
      continue;
    }
    if (line == ".relations") {
      for (const std::string& name : db.Names()) {
        auto rel = db.Get(name);
        std::cout << "  " << name << "/" << (*rel)->arity() << " ("
                  << (*rel)->size() << " tuples)\n";
      }
      continue;
    }
    if (line.rfind(".strategy ", 0) == 0) {
      bool ok = false;
      Strategy s = ParseStrategy(line.substr(10), &ok);
      if (ok) {
        strategy = s;
        std::cout << "strategy = " << StrategyName(strategy) << "\n";
      } else {
        std::cout << "unknown strategy\n";
      }
      continue;
    }
    if (line.rfind(".threads ", 0) == 0) {
      std::istringstream in(line.substr(9));
      size_t n = 0;
      if (in >> n) {
        num_threads = n;
        std::cout << "threads = " << num_threads
                  << (num_threads == 0 ? " (serial)" : "") << "\n";
      } else {
        std::cout << "usage: .threads <n>\n";
      }
      continue;
    }
    if (line == ".columnar on" || line == ".columnar off") {
      use_columnar = line == ".columnar on";
      if (use_columnar) db.EnableColumnarAll();
      std::cout << "columnar " << (use_columnar ? "on" : "off")
                << (use_columnar ? " (column stores built, zone-pruned scans)"
                                 : " (row path)")
                << "\n";
      continue;
    }
    if (line == ".service") {
      use_service = !use_service;
      std::cout << "service " << (use_service ? "on" : "off")
                << (use_service ? " (admission + retries + degradation)"
                                : "")
                << "\n";
      continue;
    }
    if (line.rfind(".view ", 0) == 0) {
      std::istringstream in(line.substr(6));
      std::string name;
      in >> name;
      std::string body;
      std::getline(in, body);
      Status st = views.DefineFromText(name, body);
      std::cout << (st.ok() ? "view defined" : st.ToString()) << "\n";
      continue;
    }
    if (line.rfind(".index ", 0) == 0) {
      std::istringstream in(line.substr(7));
      std::string name;
      size_t column = 0;
      in >> name >> column;
      Status st = db.BuildIndex(name, column);
      std::cout << (st.ok() ? "index built" : st.ToString()) << "\n";
      continue;
    }
    if (line.rfind(".save ", 0) == 0) {
      Status st = SaveDatabase(db, line.substr(6));
      std::cout << (st.ok() ? "saved" : st.ToString()) << "\n";
      continue;
    }
    if (line.rfind(".open ", 0) == 0) {
      auto loaded = LoadDatabase(line.substr(6));
      if (!loaded.ok()) {
        std::cout << loaded.status() << "\n";
        continue;
      }
      db = std::move(*loaded);
      std::cout << "opened (" << db.Names().size() << " relations)\n";
      continue;
    }
    if (line == ".domclose") {
      domain_closure = !domain_closure;
      std::cout << "domain closure "
                << (domain_closure ? "on" : "off") << "\n";
      continue;
    }
    if (line.rfind(".load ", 0) == 0) {
      std::istringstream in(line.substr(6));
      std::string name, file;
      in >> name >> file;
      auto rel = RelationFromCsvFile(file);
      if (!rel.ok()) {
        std::cout << rel.status() << "\n";
        continue;
      }
      db.Put(name, std::move(*rel));
      std::cout << "loaded " << name << "\n";
      continue;
    }
    if (line.rfind(".rel ", 0) == 0) {
      std::istringstream in(line.substr(5));
      std::string name;
      in >> name;
      std::string rows, row_line;
      std::getline(in, row_line);
      rows = row_line;
      while (rows.find(';') == std::string::npos &&
             std::getline(std::cin, row_line)) {
        rows += "\n" + row_line;
      }
      size_t semi = rows.find(';');
      if (semi != std::string::npos) rows.resize(semi);
      auto rel = RelationFromCsv(rows);
      if (!rel.ok()) {
        std::cout << rel.status() << "\n";
        continue;
      }
      db.Put(name, std::move(*rel));
      std::cout << "defined " << name << "\n";
      continue;
    }
    // Relations loaded after `.columnar on` get their stores here;
    // EnableColumnarAll only builds what is missing, so this is cheap.
    if (use_columnar) db.EnableColumnarAll();
    QueryProcessor qp(&db);
    qp.SetViews(&views);
    qp.EnableDomainClosure(domain_closure);
    if (!use_columnar) {
      ExecOptions exec_options;
      exec_options.use_columnar = false;
      qp.SetExecOptions(exec_options);
    }
    if (line.rfind(".cost ", 0) == 0) {
      auto exec = qp.Explain(line.substr(6), strategy);
      if (!exec.ok() || exec->plan == nullptr) {
        std::cout << (exec.ok() ? Status::Unsupported(
                                      "no algebraic plan for this strategy")
                                : exec.status())
                  << "\n";
        continue;
      }
      CostModel model(&db);
      auto annotated = model.Annotate(exec->plan);
      std::cout << (annotated.ok() ? *annotated
                                   : annotated.status().ToString());
      continue;
    }
    if (line.rfind(".explain physical ", 0) == 0) {
      auto exec = qp.Explain(line.substr(18), strategy);
      if (!exec.ok()) {
        std::cout << exec.status() << "\n";
        continue;
      }
      if (exec->physical != nullptr) {
        std::cout << exec->physical->ToString();
      } else {
        std::cout << "no physical plan for this strategy\n";
      }
      continue;
    }
    if (line.rfind(".explain ", 0) == 0) {
      auto exec = qp.Explain(line.substr(9), strategy);
      if (!exec.ok()) {
        std::cout << exec.status() << "\n";
        continue;
      }
      if (exec->canonical != nullptr) {
        std::cout << "canonical: " << exec->canonical->ToString() << "\n";
      }
      if (exec->plan != nullptr) {
        std::cout << exec->plan->ToString();
      }
      continue;
    }
    QueryOptions run_options;
    run_options.num_threads = num_threads;
    Execution execution;
    if (use_service) {
      QueryService service(&qp);
      auto reply = service.Run(line, strategy, run_options);
      if (!reply.ok()) {
        std::cout << reply.status() << "\n";
        continue;
      }
      if (reply->attempts > 1 || reply->degradation_level > 0) {
        std::cout << "-- service: " << reply->attempts << " attempt(s), "
                  << "degradation level " << reply->degradation_level
                  << "\n";
      }
      execution = std::move(reply->execution);
    } else {
      auto exec = qp.Run(line, strategy, run_options);
      if (!exec.ok()) {
        std::cout << exec.status() << "\n";
        continue;
      }
      execution = std::move(*exec);
    }
    if (execution.answer.closed) {
      std::cout << (execution.answer.truth ? "true" : "false") << "\n";
    } else {
      std::cout << execution.answer.relation.ToString();
    }
    std::cout << "-- " << execution.stats.ToString() << "\n";
  }
  return 0;
}
