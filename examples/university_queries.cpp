// Runs the full paper-derived query suite (§1-§3 examples) on a generated
// university database and prints, per query and strategy, the answer size
// and the paper's cost metrics side by side.
//
//   ./build/examples/university_queries [students] [seed]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/query_processor.h"
#include "workload/university.h"

using namespace bryql;

int main(int argc, char** argv) {
  UniversityConfig config;
  config.students = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  config.seed = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 42;
  config.professors = config.students / 8;
  Database db = MakeUniversity(config);
  std::cout << "university database: " << db.TotalTuples()
            << " tuples across " << db.Names().size() << " relations\n\n";

  QueryProcessor qp(&db);
  const Strategy strategies[] = {Strategy::kBry, Strategy::kBryDivision,
                                 Strategy::kBryUnionFilters,
                                 Strategy::kClassical,
                                 Strategy::kNestedLoop};

  for (const NamedQuery& nq : PaperQuerySuite()) {
    std::cout << "== " << nq.name << "  (" << nq.source << ")\n   "
              << nq.text << "\n";
    for (Strategy s : strategies) {
      auto exec = qp.Run(nq.text, s);
      std::cout << "   " << std::left << std::setw(18) << StrategyName(s);
      if (!exec.ok()) {
        std::cout << "-- " << exec.status() << "\n";
        continue;
      }
      std::cout << std::setw(10) << exec->answer.ToString().substr(0, 9)
                << " answers="
                << (exec->answer.closed ? 1 : exec->answer.relation.size())
                << "  " << exec->stats.ToString() << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
