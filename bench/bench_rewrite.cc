// Experiment E7 (§2.4): cost of the normalization phase itself. The
// rewriting system is noetherian (Proposition 1); this bench measures
// steps and wall time as the query grows — normalization must stay
// negligible next to evaluation.

#include "bench/bench_util.h"

namespace bryql {
namespace {

/// A query with `n` universal blocks and `n` disjunctive filters —
/// exercising Rules 4/5, 8/9, 10/11 and 14 together.
std::string WideQuery(int n) {
  std::string q = "exists x: student(x)";
  for (int i = 0; i < n; ++i) {
    q += " & (forall y" + std::to_string(i) + ": lecture(y" +
         std::to_string(i) + ", db) -> attends(x, y" + std::to_string(i) +
         "))";
    q += " & (speaks(x, french) | speaks(x, german))";
  }
  return q;
}

/// Nested quantifier alternation of depth `n`.
std::string DeepQuery(int n) {
  std::string q;
  for (int i = 0; i < n; ++i) {
    std::string v = "v" + std::to_string(i);
    if (i % 2 == 0) {
      q += "exists " + v + ": student(" + v + ") & (";
    } else {
      q += "forall " + v + ": student(" + v + ") -> (";
    }
  }
  q += "speaks(v0, french)";
  for (int i = 0; i < n; ++i) q += ")";
  return q;
}

void BM_NormalizeWide(benchmark::State& state) {
  std::string text = WideQuery(static_cast<int>(state.range(0)));
  auto query = ParseQuery(text);
  if (!query.ok()) std::abort();
  size_t steps = 0;
  size_t size = 0;
  for (auto _ : state) {
    auto norm = Normalize(query->formula);
    if (!norm.ok()) std::abort();
    steps = norm->steps();
    size = norm->formula->Size();
    benchmark::DoNotOptimize(norm->formula);
  }
  state.counters["steps"] = benchmark::Counter(static_cast<double>(steps));
  state.counters["nodes_out"] =
      benchmark::Counter(static_cast<double>(size));
  state.counters["nodes_in"] =
      benchmark::Counter(static_cast<double>(query->formula->Size()));
}

void BM_NormalizeDeep(benchmark::State& state) {
  std::string text = DeepQuery(static_cast<int>(state.range(0)));
  auto query = ParseQuery(text);
  if (!query.ok()) std::abort();
  size_t steps = 0;
  for (auto _ : state) {
    auto norm = Normalize(query->formula);
    if (!norm.ok()) std::abort();
    steps = norm->steps();
    benchmark::DoNotOptimize(norm->formula);
  }
  state.counters["steps"] = benchmark::Counter(static_cast<double>(steps));
}

void BM_NormalizePaperSuite(benchmark::State& state) {
  std::vector<NamedQuery> suite = PaperQuerySuite();
  size_t steps = 0;
  for (auto _ : state) {
    steps = 0;
    for (const NamedQuery& nq : suite) {
      auto query = ParseQuery(nq.text);
      if (!query.ok()) std::abort();
      auto norm = NormalizeQuery(*query);
      if (!norm.ok()) std::abort();
      steps += norm->steps();
      benchmark::DoNotOptimize(norm->formula);
    }
  }
  state.counters["suite_steps"] =
      benchmark::Counter(static_cast<double>(steps));
}

BENCHMARK(BM_NormalizeWide)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NormalizeDeep)->Arg(2)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NormalizePaperSuite)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
