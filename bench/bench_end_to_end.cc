// Experiment E9: end-to-end scale sweep. A representative subset of the
// paper suite (one query per §3 mechanism) across database scales and all
// strategies. The headline shape: bry ≥ every baseline everywhere, the
// classical reduction degrades fastest, nested loops pay per-tuple probe
// costs that the algebra amortizes.

#include "bench/bench_util.h"

namespace bryql {
namespace {

struct Workload {
  const char* name;
  const char* text;
};

const Workload kWorkloads[] = {
    {"complement-join", "{ x, z | member(x, z) & ~skill(x, db) }"},
    {"universal",
     "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }"},
    {"disjunctive-filter",
     "{ x | student(x) & (speaks(x, french) | speaks(x, german)) }"},
    {"producer-disjunction",
     "{ x | ((student(x) & makes(x, phd)) | professor(x)) & "
     "(speaks(x, french) | speaks(x, german)) }"},
    {"nested-exists",
     "exists x y: enrolled(x, y) & y != cs & makes(x, phd) & "
     "(exists z: lecture(z, ai) & attends(x, z))"},
};

Database MakeDb(size_t students) {
  UniversityConfig config;
  config.students = students;
  config.professors = students / 8;
  config.lectures = 48;
  config.seed = 31;
  return MakeUniversity(config);
}

void RunCase(benchmark::State& state, Strategy strategy) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  // The classical reduction's range products are intractable for the
  // nested shapes past small scales.
  if (strategy == Strategy::kClassical && state.range(0) > 2000 &&
      (std::string(w.name) == "universal" ||
       std::string(w.name) == "nested-exists")) {
    state.SkipWithError("classical reduction intractable at this scale");
    return;
  }
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, w.text, strategy);
    benchmark::DoNotOptimize(exec.answer.relation);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  state.SetLabel(std::string(w.name) + " [" + StrategyName(strategy) + "]");
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_EndToEnd_Bry(benchmark::State& state) {
  RunCase(state, Strategy::kBry);
}
void BM_EndToEnd_Classical(benchmark::State& state) {
  RunCase(state, Strategy::kClassical);
}
void BM_EndToEnd_NestedLoop(benchmark::State& state) {
  RunCase(state, Strategy::kNestedLoop);
}

void Args(benchmark::internal::Benchmark* b) {
  for (long scale : {500L, 2000L, 8000L}) {
    for (long w = 0; w < 5; ++w) b->Args({scale, w});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_EndToEnd_Bry)->Apply(Args);
BENCHMARK(BM_EndToEnd_NestedLoop)->Apply(Args);
BENCHMARK(BM_EndToEnd_Classical)->Apply(Args);

}  // namespace
}  // namespace bryql

BRYQL_BENCH_MAIN();
