// E14: morsel-driven parallel execution. Two questions, answered on the
// heavy paper workloads (the E9 universal/nested shapes plus the E3/E6
// join- and filter-bound queries):
//
//   1. Scaling — one prepared plan, driven at num_threads ∈ {1, 2, 4, 8}
//      vs. the serial engine. The speedup is hardware-bound: on a
//      single-core host the workers time-share one CPU and the curve is
//      flat (the run then measures coordination overhead, which is the
//      honest number to record there).
//   2. Serial overhead — num_threads = 0 must be within noise of the
//      pre-parallelism engine. The parallel hooks are pointer checks
//      decided at operator-build time, so the per-tuple path is
//      unchanged; BM_Parallel_SerialBaseline is the regression guard.

#include "bench/bench_util.h"

namespace bryql {
namespace {

struct Workload {
  const char* name;
  const char* text;
};

const Workload kWorkloads[] = {
    {"E3-complement-join", "{ x, z | member(x, z) & ~skill(x, db) }"},
    {"E6-disjunctive-filter",
     "{ x | student(x) & (speaks(x, french) | speaks(x, german)) }"},
    {"E9-universal",
     "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }"},
    {"E9-nested-exists",
     "exists x y: enrolled(x, y) & y != cs & makes(x, phd) & "
     "(exists z: lecture(z, ai) & attends(x, z))"},
};

Database MakeDb(size_t students) {
  UniversityConfig config;
  config.students = students;
  config.professors = students / 8;
  config.lectures = 48;
  config.seed = 31;
  return MakeUniversity(config);
}

/// One prepared plan, executed at the thread count in range(2) — 0 is
/// the serial PlanRuntime, N > 0 the morsel-driven ParallelRuntime.
void BM_Parallel_Execute(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  auto prepared = qp.Prepare(w.text);
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  QueryOptions options = QueryOptions::Unlimited();
  options.num_threads = static_cast<size_t>(state.range(2));
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Execute(*prepared, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  state.SetLabel(std::string(w.name) + "/t" +
                 std::to_string(state.range(2)));
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

/// The serial-overhead guard: identical to BM_Parallel_Execute at
/// num_threads = 0, kept as a separate benchmark name so the pre-PR
/// baseline (bench_prepared's BM_Prepared_Execute) and this number can
/// be diffed by name across revisions. Acceptance: within 2%.
void BM_Parallel_SerialBaseline(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  auto prepared = qp.Prepare(w.text);
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Execute(*prepared);  // default options: num_threads = 0
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  state.SetLabel(w.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void ScalingArgs(benchmark::internal::Benchmark* b) {
  for (long scale : {2000L, 8000L}) {
    for (long w = 0; w < 4; ++w) {
      for (long threads : {0L, 1L, 2L, 4L, 8L}) b->Args({scale, w, threads});
    }
  }
  b->Unit(benchmark::kMicrosecond);
}

void BaselineArgs(benchmark::internal::Benchmark* b) {
  for (long scale : {2000L, 8000L}) {
    for (long w = 0; w < 4; ++w) b->Args({scale, w});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Parallel_Execute)->Apply(ScalingArgs);
BENCHMARK(BM_Parallel_SerialBaseline)->Apply(BaselineArgs);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
