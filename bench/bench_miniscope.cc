// Experiment E1 (§2.2): the miniscope form avoids re-evaluating
// subexpressions per quantified tuple.
//
// Query Q1: ∃x student(x) ∧ ∀y (cs-lecture(y) ⇒ attends(x,y) ∧
// ¬enrolled(x,cs)). Without miniscoping, ¬enrolled(x,cs) is checked once
// per (student, cs-lecture) pair; in canonical (miniscope) form, once per
// student. The gap grows linearly with the number of cs-lectures.

#include "bench/bench_util.h"

namespace bryql {
namespace {

Database MakeDb(size_t students, size_t lectures) {
  UniversityConfig config;
  config.students = students;
  config.lectures = lectures;
  config.completionist_fraction = 0.02;
  config.attends_per_student = 4.0;
  config.seed = 5;
  return MakeUniversity(config);
}

const char* kQ1 =
    "exists x: student(x) & "
    "(forall y: cs-lecture(y) -> attends(x, y) & ~enrolled(x, cs))";

// An open variant so the evaluation cannot stop at the first witness.
const char* kQ1Open =
    "{ x | student(x) & "
    "(forall y: cs-lecture(y) -> attends(x, y) & ~enrolled(x, cs)) }";

void RunWith(benchmark::State& state, const char* text, bool miniscope) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<size_t>(state.range(1)));
  RewriteOptions rewrite;
  rewrite.miniscope = miniscope;
  rewrite.distribute_filter_disjunctions = miniscope;
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunPipeline(db, text, rewrite);
    benchmark::DoNotOptimize(exec.answer.truth);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
  state.counters["rewrite_steps"] =
      benchmark::Counter(static_cast<double>(exec.rewrite_steps));
}

void BM_Q1Open_Miniscope(benchmark::State& state) {
  RunWith(state, kQ1Open, true);
}
void BM_Q1Open_NoMiniscope(benchmark::State& state) {
  RunWith(state, kQ1Open, false);
}
void BM_Q1Closed_Miniscope(benchmark::State& state) {
  RunWith(state, kQ1, true);
}
void BM_Q1Closed_NoMiniscope(benchmark::State& state) {
  RunWith(state, kQ1, false);
}

void Args(benchmark::internal::Benchmark* b) {
  // {students, lectures}; 1/6 of lectures are cs ("db" subject) lectures.
  b->Args({500, 12})
      ->Args({500, 48})
      ->Args({500, 192})
      ->Args({2000, 48})
      ->Args({8000, 48})
      ->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Q1Open_Miniscope)->Apply(Args);
BENCHMARK(BM_Q1Open_NoMiniscope)->Apply(Args);
BENCHMARK(BM_Q1Closed_Miniscope)->Apply(Args);
BENCHMARK(BM_Q1Closed_NoMiniscope)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
