// E15: what the fault-tolerant service layer costs and buys.
//
//   * Fault-free overhead — QueryService::Run vs. QueryProcessor::Run on
//     the same warm queries. The service adds one admission (a mutex
//     acquisition and two counter bumps on the uncontended fast path)
//     and one retry-loop frame; the budget is <3%.
//   * Overload behaviour — 8 client threads against a 2-slot service,
//     with and without admission control. With a deep queue every
//     request eventually answers but the tail latency is the queue; with
//     a shallow queue + deadline the service sheds the excess in
//     microseconds with a retry-after hint and goodput holds.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "bench/bench_util.h"
#include "service/service.h"

namespace bryql {
namespace {

using namespace std::chrono_literals;

struct Workload {
  const char* name;
  const char* text;
};

// The bench_prepared workloads, so overhead is measured on the same
// queries the plan-cache numbers use.
const Workload kWorkloads[] = {
    {"E3-complement-join", "{ x, z | member(x, z) & ~skill(x, db) }"},
    {"E6-disjunctive-filter",
     "{ x | student(x) & (speaks(x, french) | speaks(x, german)) }"},
    {"E9-universal",
     "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }"},
    {"E9-nested-exists",
     "exists x y: enrolled(x, y) & y != cs & makes(x, phd) & "
     "(exists z: lecture(z, ai) & attends(x, z))"},
};

Database MakeDb(size_t students) {
  UniversityConfig config;
  config.students = students;
  config.professors = students / 8;
  config.lectures = 48;
  config.seed = 31;
  return MakeUniversity(config);
}

/// Baseline: the processor alone, warm plan cache.
void BM_Service_DirectRun(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  if (!qp.Run(w.text).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Run(w.text);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  state.SetLabel(w.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

/// The same queries through the full service front door: admission,
/// retry loop, stats. Fault-free, uncontended — the overhead number.
void BM_Service_Run(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  QueryService service(&qp);
  if (!service.Run(w.text).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  Execution exec;
  for (auto _ : state) {
    auto reply = service.Run(w.text);
    if (!reply.ok()) {
      state.SkipWithError(reply.status().ToString().c_str());
      return;
    }
    exec = std::move(reply->execution);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  state.SetLabel(w.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

/// Shared rig for the multi-threaded overload benchmarks: one database,
/// one processor, one service, configured per (queue_depth, deadline_ms)
/// argument pair and rebuilt when the configuration changes.
struct OverloadRig {
  size_t queue_depth;
  uint64_t deadline_ms;
  Database db;
  std::unique_ptr<QueryProcessor> qp;
  std::unique_ptr<QueryService> service;

  OverloadRig(size_t depth, uint64_t deadline)
      : queue_depth(depth), deadline_ms(deadline), db(MakeDb(2000)) {
    qp = std::make_unique<QueryProcessor>(&db);
    ServiceOptions options;
    options.max_concurrency = 2;
    options.max_queue_depth = depth;
    // One attempt: overload measures admission, not retry.
    options.retry.max_attempts = 1;
    service = std::make_unique<QueryService>(qp.get(), options);
    // Warm the plan cache so every measured request is execution only.
    (void)service->Run(kWorkloads[1].text);
  }
};

std::mutex g_rig_mutex;
std::unique_ptr<OverloadRig> g_rig;

OverloadRig* GetRig(size_t depth, uint64_t deadline_ms) {
  std::lock_guard<std::mutex> lock(g_rig_mutex);
  if (!g_rig || g_rig->queue_depth != depth ||
      g_rig->deadline_ms != deadline_ms) {
    g_rig = std::make_unique<OverloadRig>(depth, deadline_ms);
  }
  return g_rig.get();
}

/// 8 client threads, 2 execution slots. Args: {queue_depth, deadline_ms}.
/// A deep queue (1024, no deadline) = "no shedding": everyone eventually
/// answers, latency is the queue. A shallow queue (4) with a deadline =
/// admission control: the excess is rejected in microseconds.
void BM_Service_Overload(benchmark::State& state) {
  OverloadRig* rig = GetRig(static_cast<size_t>(state.range(0)),
                            static_cast<uint64_t>(state.range(1)));
  QueryOptions options;
  if (state.range(1) > 0) {
    options.deadline = std::chrono::milliseconds(state.range(1));
  }
  size_t answered = 0, shed = 0, deadline_missed = 0;
  for (auto _ : state) {
    auto reply = rig->service->Run(kWorkloads[1].text, Strategy::kBry,
                                   options);
    if (reply.ok()) {
      ++answered;
      benchmark::DoNotOptimize(reply->execution.answer.relation);
    } else if (reply.status().code() == StatusCode::kResourceExhausted) {
      ++shed;
    } else {
      ++deadline_missed;
    }
  }
  // Counters sum across threads; rates divide by wall time — answered/s
  // is the goodput, shed/s the cleanly rejected excess.
  state.counters["answered"] = benchmark::Counter(
      static_cast<double>(answered), benchmark::Counter::kIsRate);
  state.counters["shed"] = benchmark::Counter(
      static_cast<double>(shed), benchmark::Counter::kIsRate);
  state.counters["deadline_missed"] = benchmark::Counter(
      static_cast<double>(deadline_missed), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0) {
    state.SetLabel(state.range(1) > 0 ? "shedding" : "unbounded-queue");
  }
}

void OverheadArgs(benchmark::internal::Benchmark* b) {
  for (long scale : {500L, 2000L}) {
    for (long w = 0; w < 4; ++w) b->Args({scale, w});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Service_DirectRun)->Apply(OverheadArgs);
BENCHMARK(BM_Service_Run)->Apply(OverheadArgs);
BENCHMARK(BM_Service_Overload)
    ->Args({1024, 0})
    ->Args({4, 20})
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
