#ifndef BRYQL_BENCH_BENCH_UTIL_H_
#define BRYQL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/query_processor.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "translate/translator.h"
#include "workload/university.h"

namespace bryql {
namespace bench {

/// Runs text through parse → normalize(rewrite_options) →
/// translate(translate_options) → execute; aborts the benchmark run on any
/// error (benchmarks are over fixed, known-good inputs).
inline Execution RunPipeline(const Database& db, const std::string& text,
                             const RewriteOptions& rewrite_options = {},
                             const TranslateOptions& translate_options = {}) {
  auto query = ParseQuery(text);
  if (!query.ok()) {
    std::cerr << "parse failed: " << query.status() << "\n";
    std::abort();
  }
  auto norm = Normalize(query->formula, {}, rewrite_options);
  if (!norm.ok()) {
    std::cerr << "normalize failed: " << norm.status() << "\n";
    std::abort();
  }
  Execution exec;
  exec.query = *query;
  exec.canonical = norm->formula;
  exec.rewrite_steps = norm->steps();
  Translator translator(&db, translate_options);
  Executor executor(&db);
  if (query->closed()) {
    auto plan = translator.TranslateClosed(norm->formula);
    if (!plan.ok()) {
      std::cerr << "translate failed: " << plan.status() << "\n";
      std::abort();
    }
    exec.plan = *plan;
    auto truth = executor.EvaluateBool(exec.plan);
    if (!truth.ok()) {
      std::cerr << "execute failed: " << truth.status() << "\n";
      std::abort();
    }
    exec.answer.closed = true;
    exec.answer.truth = *truth;
  } else {
    auto plan =
        translator.TranslateOpen(Query{query->targets, norm->formula});
    if (!plan.ok()) {
      std::cerr << "translate failed: " << plan.status() << "\n";
      std::abort();
    }
    exec.plan = plan->expr;
    auto rel = executor.Evaluate(exec.plan);
    if (!rel.ok()) {
      std::cerr << "execute failed: " << rel.status() << "\n";
      std::abort();
    }
    exec.answer.relation = std::move(*rel);
  }
  exec.stats = executor.stats();
  return exec;
}

/// Runs under a named end-to-end strategy via QueryProcessor.
inline Execution RunStrategy(const Database& db, const std::string& text,
                             Strategy strategy) {
  QueryProcessor qp(&db);
  auto exec = qp.Run(text, strategy);
  if (!exec.ok()) {
    std::cerr << "strategy " << StrategyName(strategy)
              << " failed on: " << text << "\n  " << exec.status() << "\n";
    std::abort();
  }
  return *exec;
}

/// Publishes the paper's cost metrics as benchmark counters.
inline void ReportStats(benchmark::State& state, const ExecStats& stats,
                        size_t answer_size) {
  state.counters["scanned"] =
      benchmark::Counter(static_cast<double>(stats.tuples_scanned));
  state.counters["comparisons"] =
      benchmark::Counter(static_cast<double>(stats.comparisons));
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(stats.hash_probes));
  state.counters["materialized"] =
      benchmark::Counter(static_cast<double>(stats.tuples_materialized));
  state.counters["answers"] =
      benchmark::Counter(static_cast<double>(answer_size));
}

inline size_t AnswerSize(const Execution& exec) {
  return exec.answer.closed ? (exec.answer.truth ? 1 : 0)
                            : exec.answer.relation.size();
}

}  // namespace bench
}  // namespace bryql

#endif  // BRYQL_BENCH_BENCH_UTIL_H_
