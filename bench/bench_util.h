#ifndef BRYQL_BENCH_BENCH_UTIL_H_
#define BRYQL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/query_processor.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "translate/translator.h"
#include "workload/university.h"

namespace bryql {
namespace bench {

/// Runs text through parse → normalize(rewrite_options) →
/// translate(translate_options) → execute; aborts the benchmark run on any
/// error (benchmarks are over fixed, known-good inputs).
inline Execution RunPipeline(const Database& db, const std::string& text,
                             const RewriteOptions& rewrite_options = {},
                             const TranslateOptions& translate_options = {}) {
  auto query = ParseQuery(text);
  if (!query.ok()) {
    std::cerr << "parse failed: " << query.status() << "\n";
    std::abort();
  }
  auto norm = Normalize(query->formula, {}, rewrite_options);
  if (!norm.ok()) {
    std::cerr << "normalize failed: " << norm.status() << "\n";
    std::abort();
  }
  Execution exec;
  exec.query = *query;
  exec.canonical = norm->formula;
  exec.rewrite_steps = norm->steps();
  Translator translator(&db, translate_options);
  Executor executor(&db);
  if (query->closed()) {
    auto plan = translator.TranslateClosed(norm->formula);
    if (!plan.ok()) {
      std::cerr << "translate failed: " << plan.status() << "\n";
      std::abort();
    }
    exec.plan = *plan;
    auto truth = executor.EvaluateBool(exec.plan);
    if (!truth.ok()) {
      std::cerr << "execute failed: " << truth.status() << "\n";
      std::abort();
    }
    exec.answer.closed = true;
    exec.answer.truth = *truth;
  } else {
    auto plan =
        translator.TranslateOpen(Query{query->targets, norm->formula});
    if (!plan.ok()) {
      std::cerr << "translate failed: " << plan.status() << "\n";
      std::abort();
    }
    exec.plan = plan->expr;
    auto rel = executor.Evaluate(exec.plan);
    if (!rel.ok()) {
      std::cerr << "execute failed: " << rel.status() << "\n";
      std::abort();
    }
    exec.answer.relation = std::move(*rel);
  }
  exec.stats = executor.stats();
  return exec;
}

/// Runs under a named end-to-end strategy via QueryProcessor.
inline Execution RunStrategy(const Database& db, const std::string& text,
                             Strategy strategy) {
  QueryProcessor qp(&db);
  auto exec = qp.Run(text, strategy);
  if (!exec.ok()) {
    std::cerr << "strategy " << StrategyName(strategy)
              << " failed on: " << text << "\n  " << exec.status() << "\n";
    std::abort();
  }
  return *exec;
}

/// Publishes the paper's cost metrics as benchmark counters.
inline void ReportStats(benchmark::State& state, const ExecStats& stats,
                        size_t answer_size) {
  state.counters["scanned"] =
      benchmark::Counter(static_cast<double>(stats.tuples_scanned));
  state.counters["comparisons"] =
      benchmark::Counter(static_cast<double>(stats.comparisons));
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(stats.hash_probes));
  state.counters["materialized"] =
      benchmark::Counter(static_cast<double>(stats.tuples_materialized));
  state.counters["answers"] =
      benchmark::Counter(static_cast<double>(answer_size));
}

inline size_t AnswerSize(const Execution& exec) {
  return exec.answer.closed ? (exec.answer.truth ? 1 : 0)
                            : exec.answer.relation.size();
}

/// Rewrites the repo-local `--json[=FILE]` convenience flag into the
/// Google Benchmark flags it abbreviates, before Initialize() parses the
/// command line. Bare `--json` switches the console reporter to JSON
/// (stdout is the machine-readable report, ready to redirect into a
/// BENCH_*.json artifact); `--json=FILE` keeps the human console output
/// and writes the JSON report to FILE. `storage` owns the rewritten
/// strings and must outlive the returned pointers.
inline std::vector<char*> RewriteJsonFlag(int argc, char** argv,
                                          std::vector<std::string>* storage) {
  storage->clear();
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      storage->push_back("--benchmark_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      storage->push_back("--benchmark_out=" + arg.substr(7));
      storage->push_back("--benchmark_out_format=json");
    } else {
      storage->push_back(arg);
    }
  }
  std::vector<char*> out;
  out.reserve(storage->size());
  for (std::string& s : *storage) out.push_back(s.data());
  return out;
}

}  // namespace bench
}  // namespace bryql

/// Drop-in replacement for BENCHMARK_MAIN() that understands `--json`.
#define BRYQL_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                         \
    std::vector<std::string> storage;                                       \
    std::vector<char*> args =                                               \
        ::bryql::bench::RewriteJsonFlag(argc, argv, &storage);              \
    int args_count = static_cast<int>(args.size());                        \
    ::benchmark::Initialize(&args_count, args.data());                      \
    if (::benchmark::ReportUnrecognizedArguments(args_count, args.data()))  \
      return 1;                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    return 0;                                                               \
  }                                                                         \
  static_assert(true, "require a trailing semicolon")

#endif  // BRYQL_BENCH_BENCH_UTIL_H_
