// Experiment E8: every example query of the paper (§1-§3), run under
// every strategy at a fixed scale. This is the per-query panorama; E9
// (bench_end_to_end) does the scale sweep.

#include "bench/bench_util.h"

namespace bryql {
namespace {

const UniversityConfig& Config() {
  static const UniversityConfig config = [] {
    UniversityConfig c;
    c.students = 2000;
    c.professors = 300;
    c.lectures = 48;
    c.seed = 29;
    return c;
  }();
  return config;
}

const Database& Db() {
  static const Database* db = new Database(MakeUniversity(Config()));
  return *db;
}

void BM_PaperQuery(benchmark::State& state) {
  std::vector<NamedQuery> suite = PaperQuerySuite();
  const NamedQuery& nq = suite[static_cast<size_t>(state.range(0))];
  Strategy strategy = static_cast<Strategy>(state.range(1));
  // The classical reduction on the heaviest nested queries materializes
  // range products far beyond reasonable bench budgets; those pairs are
  // skipped (reported as 0 iterations), exactly the paper's point.
  if (strategy == Strategy::kClassical &&
      (nq.name == "sec1-running" || nq.name == "sec32-boolean" ||
       nq.name == "open-mixed-quantifiers")) {
    state.SkipWithError("classical reduction intractable at this scale");
    return;
  }
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(Db(), nq.text, strategy);
    benchmark::DoNotOptimize(exec.answer.relation);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  state.SetLabel(nq.name + " [" + StrategyName(strategy) + "]");
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void Args(benchmark::internal::Benchmark* b) {
  size_t n = PaperQuerySuite().size();
  for (size_t q = 0; q < n; ++q) {
    for (Strategy s : {Strategy::kBry, Strategy::kBryDivision,
                       Strategy::kQuelCounting, Strategy::kBryUnionFilters,
                       Strategy::kClassical, Strategy::kNestedLoop}) {
      b->Args({static_cast<long>(q), static_cast<long>(s)});
    }
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_PaperQuery)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
