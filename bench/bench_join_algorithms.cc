// Physical-algorithm ablation: the paper's operators under hash vs.
// classic sort-merge execution. §3.1's point — the complement-join falls
// out of "any semi-join algorithm" — means the *plan-level* wins are
// algorithm-independent; this bench shows the complement-join beating the
// difference+join plan under both engines, while hash vs. merge shifts
// only the constant factors (probes vs. comparisons).

#include <random>

#include "bench/bench_util.h"
#include "exec/executor.h"

namespace bryql {
namespace {

Database MakeDb(size_t people, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Relation member(2), skill(2);
  const char* depts[] = {"cs", "math", "physics", "law"};
  for (size_t i = 0; i < people; ++i) {
    std::string name = "m" + std::to_string(i);
    member.Insert(Tuple({Value::String(name),
                         Value::String(depts[rng() % 4])}));
    if (rng() % 2 == 0) {
      skill.Insert(Tuple({Value::String(name), Value::String("db")}));
    }
  }
  Database db;
  db.Put("member", std::move(member));
  db.Put("skill", std::move(skill));
  return db;
}

ExprPtr ComplementJoinPlan() {
  return Expr::AntiJoin(
      Expr::Scan("member"),
      Expr::Project(Expr::Select(Expr::Scan("skill"),
                                 Predicate::ColVal(CompareOp::kEq, 1,
                                                   Value::String("db"))),
                    {0}),
      {{0, 0}});
}

ExprPtr InnerJoinPlan() {
  return Expr::Join(Expr::Scan("member"), Expr::Scan("skill"), {{0, 0}});
}

void Run(benchmark::State& state, const ExprPtr& plan,
         ExecOptions::JoinAlgorithm algorithm) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)), 19);
  ExecOptions options;
  options.join_algorithm = algorithm;
  ExecStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    Executor exec(&db, options);
    auto rel = exec.Evaluate(plan);
    if (!rel.ok()) std::abort();
    answers = rel->size();
    stats = exec.stats();
    benchmark::DoNotOptimize(rel);
  }
  bench::ReportStats(state, stats, answers);
}

void BM_ComplementJoin_Hash(benchmark::State& state) {
  Run(state, ComplementJoinPlan(), ExecOptions::JoinAlgorithm::kHash);
}
void BM_ComplementJoin_SortMerge(benchmark::State& state) {
  Run(state, ComplementJoinPlan(), ExecOptions::JoinAlgorithm::kSortMerge);
}
void BM_InnerJoin_Hash(benchmark::State& state) {
  Run(state, InnerJoinPlan(), ExecOptions::JoinAlgorithm::kHash);
}
void BM_InnerJoin_SortMerge(benchmark::State& state) {
  Run(state, InnerJoinPlan(), ExecOptions::JoinAlgorithm::kSortMerge);
}

void Args(benchmark::internal::Benchmark* b) {
  b->Arg(1000)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_ComplementJoin_Hash)->Apply(Args);
BENCHMARK(BM_ComplementJoin_SortMerge)->Apply(Args);
BENCHMARK(BM_InnerJoin_Hash)->Apply(Args);
BENCHMARK(BM_InnerJoin_SortMerge)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
