// Experiment E2 (§2.3): producer vs. filter treatment of disjunctions.
//
// (a) Q1 → Q3: the *producer* disjunction [(student ∧ makes-phd) ∨ prof]
//     distributes (Rules 12/13), so the union of students and professors
//     is never materialized; the ablation keeps it and pays the union.
// (b) Q4 vs Q5: the disjunction [member(x,cs) ∨ skill(x,math)] is a
//     *filter* of professor(x) and is kept; the hand-distributed Q5 text
//     scans the professor relation twice.

#include "bench/bench_util.h"

namespace bryql {
namespace {

Database MakeDb(size_t students, size_t professors) {
  UniversityConfig config;
  config.students = students;
  config.professors = professors;
  config.lectures = 24;
  config.languages_per_person = 2.0;
  config.seed = 17;
  return MakeUniversity(config);
}

const char* kQ1 =
    "{ x | ((student(x) & makes(x, phd)) | professor(x)) & "
    "(speaks(x, french) | speaks(x, german)) }";

const char* kQ4 =
    "{ x | professor(x) & (member(x, cs) | skill(x, math)) & "
    "speaks(x, french) }";

// §2.3 Q5: the hand-distributed form of Q4 — professor scanned twice.
const char* kQ5 =
    "{ x | (professor(x) & member(x, cs) & speaks(x, french)) | "
    "(professor(x) & skill(x, math) & speaks(x, french)) }";

void RunQ1(benchmark::State& state, bool distribute_producers) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<size_t>(state.range(1)));
  RewriteOptions rewrite;
  rewrite.distribute_producer_disjunctions = distribute_producers;
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunPipeline(db, kQ1, rewrite);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Q1_DistributedProducers(benchmark::State& state) {
  RunQ1(state, true);
}
void BM_Q1_KeptProducerDisjunction(benchmark::State& state) {
  RunQ1(state, false);
}

void RunText(benchmark::State& state, const char* text) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<size_t>(state.range(1)));
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunPipeline(db, text);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Q4_FilterKept(benchmark::State& state) { RunText(state, kQ4); }
void BM_Q5_HandDistributed(benchmark::State& state) { RunText(state, kQ5); }

void Args(benchmark::internal::Benchmark* b) {
  // {students, professors}.
  b->Args({2000, 400})
      ->Args({10000, 2000})
      ->Args({50000, 10000})
      ->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Q1_DistributedProducers)->Apply(Args);
BENCHMARK(BM_Q1_KeptProducerDisjunction)->Apply(Args);
BENCHMARK(BM_Q4_FilterKept)->Apply(Args);
BENCHMARK(BM_Q5_HandDistributed)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
