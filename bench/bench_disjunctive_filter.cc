// Experiment E6 (§3.3, Proposition 5): disjunctive filters as constrained
// outer-join chains vs. unions of filtered producers.
//
// Query shape: P(x) ∧ (T1(x) ∨ T2(x) ∨ ...), with the overlap between the
// disjuncts as the sweep parameter: the higher the fraction of P accepted
// by T1, the more probes into T2.. the constraint skips. The chain scans P
// once regardless of n; the union scans it n times.

#include <random>

#include "bench/bench_util.h"

namespace bryql {
namespace {

/// P with `n` ints; Ti accepting `hit_percent`% of P, arranged so earlier
/// disjuncts accept a prefix (maximizing the skippable probes).
Database MakeDb(size_t n, int hit_percent, int disjuncts) {
  Database db;
  Relation p(1);
  for (size_t i = 0; i < n; ++i) p.Insert(Tuple({Value::Int(i)}));
  db.Put("P", std::move(p));
  size_t hits = n * static_cast<size_t>(hit_percent) / 100;
  for (int d = 0; d < disjuncts; ++d) {
    Relation t(1);
    // Each disjunct accepts a shifted window of P.
    size_t offset = d * n / static_cast<size_t>(disjuncts);
    for (size_t i = 0; i < hits; ++i) {
      t.Insert(Tuple({Value::Int((offset + i) % n)}));
    }
    db.Put("T" + std::to_string(d + 1), std::move(t));
  }
  return db;
}

std::string QueryText(int disjuncts, bool negate_first) {
  std::string q = "{ x | P(x) & (";
  for (int d = 0; d < disjuncts; ++d) {
    if (d > 0) q += " | ";
    if (d == 0 && negate_first) q += "~";
    q += "T" + std::to_string(d + 1) + "(x)";
  }
  return q + ") }";
}

void RunWith(benchmark::State& state, Strategy strategy, bool negate_first) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<int>(state.range(1)),
                       static_cast<int>(state.range(2)));
  std::string text = QueryText(static_cast<int>(state.range(2)),
                               negate_first);
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, text, strategy);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Filter_OuterJoinChain(benchmark::State& state) {
  RunWith(state, Strategy::kBry, false);
}
void BM_Filter_UnionOfFilters(benchmark::State& state) {
  RunWith(state, Strategy::kBryUnionFilters, false);
}
void BM_Filter_NestedLoop(benchmark::State& state) {
  RunWith(state, Strategy::kNestedLoop, false);
}
void BM_NegatedFilter_OuterJoinChain(benchmark::State& state) {
  RunWith(state, Strategy::kBry, true);
}
void BM_NegatedFilter_UnionOfFilters(benchmark::State& state) {
  RunWith(state, Strategy::kBryUnionFilters, true);
}

void Args(benchmark::internal::Benchmark* b) {
  // {|P|, hit %, number of disjuncts}.
  b->Args({10000, 10, 2})
      ->Args({10000, 50, 2})
      ->Args({10000, 90, 2})
      ->Args({10000, 50, 4})
      ->Args({100000, 50, 2})
      ->Args({100000, 50, 4})
      ->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Filter_OuterJoinChain)->Apply(Args);
BENCHMARK(BM_Filter_UnionOfFilters)->Apply(Args);
BENCHMARK(BM_NegatedFilter_OuterJoinChain)->Apply(Args);
BENCHMARK(BM_NegatedFilter_UnionOfFilters)->Apply(Args);
BENCHMARK(BM_Filter_NestedLoop)
    ->Args({10000, 50, 2})
    ->Args({10000, 50, 4})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
