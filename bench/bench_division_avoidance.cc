// Experiments E4/E10 (§3.2, Proposition 4): universal quantification
// without the division operator.
//
// Query: "students attending all db lectures" —
//   { x | student(x) & (forall y: lecture(y,db) -> attends(x,y)) }
//
// Strategies compared:
//   bry           — double complement-join (the paper's default rewrite)
//   bry-division  — the paper's literal case-5 division expression
//   classical     — prenex + cartesian product of ranges + division
//
// Expect bry ≈ bry-division ≪ classical, with classical degrading
// super-linearly as the product of ranges grows.

#include <random>

#include "bench/bench_util.h"

namespace bryql {
namespace {

Database MakeDb(size_t students, size_t lectures, double completionists) {
  UniversityConfig config;
  config.students = students;
  config.lectures = lectures;
  config.completionist_fraction = completionists;
  config.attends_per_student = 5.0;
  config.seed = 11;
  return MakeUniversity(config);
}

const char* kUniversalQuery =
    "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }";

void RunWith(benchmark::State& state, Strategy strategy) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<size_t>(state.range(1)), 0.05);
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, kUniversalQuery, strategy);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Universal_Bry(benchmark::State& state) {
  RunWith(state, Strategy::kBry);
}
void BM_Universal_BryDivision(benchmark::State& state) {
  RunWith(state, Strategy::kBryDivision);
}
void BM_Universal_Classical(benchmark::State& state) {
  RunWith(state, Strategy::kClassical);
}
void BM_Universal_QuelCounting(benchmark::State& state) {
  RunWith(state, Strategy::kQuelCounting);
}
void BM_Universal_NestedLoop(benchmark::State& state) {
  RunWith(state, Strategy::kNestedLoop);
}

void SmallArgs(benchmark::internal::Benchmark* b) {
  // {students, lectures} — classical runs only at modest scales; its
  // product of ranges retains |student| × |lecture| tuples.
  b->Args({200, 24})->Args({800, 24})->Args({2000, 48})
      ->Unit(benchmark::kMicrosecond);
}

void LargeArgs(benchmark::internal::Benchmark* b) {
  b->Args({200, 24})
      ->Args({800, 24})
      ->Args({2000, 48})
      ->Args({8000, 48})
      ->Args({20000, 96})
      ->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Universal_Bry)->Apply(LargeArgs);
BENCHMARK(BM_Universal_BryDivision)->Apply(LargeArgs);
BENCHMARK(BM_Universal_QuelCounting)->Apply(LargeArgs);
BENCHMARK(BM_Universal_NestedLoop)->Apply(SmallArgs);
BENCHMARK(BM_Universal_Classical)->Apply(SmallArgs);

// E10 ablation on the exact-division shape (independent inner range):
// ¬∃z (T1(z) ∧ ¬G(x,z)) — division vs. double complement-join on the same
// plans' own turf.
Database MakeDivisionDb(size_t xs, size_t zs, double density) {
  std::mt19937_64 rng(3);
  Relation r(1), t1(1), g(2);
  for (size_t z = 0; z < zs; ++z) t1.Insert(Tuple({Value::Int(z)}));
  for (size_t x = 0; x < xs; ++x) {
    r.Insert(Tuple({Value::Int(x)}));
    for (size_t z = 0; z < zs; ++z) {
      if (std::uniform_real_distribution<double>(0, 1)(rng) < density) {
        g.Insert(Tuple({Value::Int(x), Value::Int(z)}));
      }
    }
  }
  Database db;
  db.Put("R", std::move(r));
  db.Put("T1", std::move(t1));
  db.Put("G", std::move(g));
  return db;
}

const char* kDivisionShape =
    "{ x | R(x) & ~(exists z: T1(z) & ~G(x, z)) }";

void BM_Case5_ComplementJoin(benchmark::State& state) {
  Database db = MakeDivisionDb(state.range(0), state.range(1), 0.9);
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, kDivisionShape, Strategy::kBry);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Case5_Division(benchmark::State& state) {
  Database db = MakeDivisionDb(state.range(0), state.range(1), 0.9);
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, kDivisionShape, Strategy::kBryDivision);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void DivisionArgs(benchmark::internal::Benchmark* b) {
  b->Args({1000, 10})->Args({1000, 50})->Args({10000, 10})
      ->Args({10000, 50})->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Case5_ComplementJoin)->Apply(DivisionArgs);
BENCHMARK(BM_Case5_Division)->Apply(DivisionArgs);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
