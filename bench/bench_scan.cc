// Experiment E16: row scan vs columnar scan. One wide events relation
// with ascending ids, selective predicates lowered once and executed
// many times. The headline: zone maps prune whole 1024-row segments on
// the selective id range, so the columnar path wins by avoiding work the
// row path must do per tuple; the dictionary path wins on string
// equality by comparing each distinct string once per segment.

#include <memory>

#include "bench/bench_util.h"
#include "storage/columnar/column_store.h"

namespace bryql {
namespace {

const char* const kCategories[] = {"alpha", "beta", "gamma", "delta",
                                   "epsilon", "zeta", "eta", "theta"};

/// events(id, category, score): ids ascend (zone maps carve the id axis
/// into disjoint per-segment intervals), categories cycle through eight
/// strings, scores cycle through [0, 50).
Database MakeEvents(size_t rows, bool columnar) {
  Relation rel(3);
  for (size_t i = 0; i < rows; ++i) {
    rel.Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                      Value::String(kCategories[i % 8]),
                      Value::Double(0.5 * static_cast<double>(i % 100))}));
  }
  Database db;
  db.Put("events", std::move(rel));
  if (columnar) db.EnableColumnarAll();
  return db;
}

struct Case {
  const char* name;
  PredicatePtr (*predicate)(size_t rows);
};

const Case kCases[] = {
    // ~1% of rows pass and they are contiguous: every other segment's
    // zone interval misses the literal, so pruning carries the win.
    {"id-range-selective",
     [](size_t rows) {
       return Predicate::ColVal(CompareOp::kLt, 0,
                                Value::Int(static_cast<int64_t>(rows / 100)));
     }},
    // 1-in-8 rows pass, spread across every segment: no pruning, the
    // dictionary turns 1024 string comparisons into 8 per segment.
    {"category-equality",
     [](size_t) {
       return Predicate::ColVal(CompareOp::kEq, 1, Value::String("gamma"));
     }},
    // Conjunction: the id conjunct's zone verdict gates the rest.
    {"range-and-category",
     [](size_t rows) {
       return Predicate::And(
           {Predicate::ColVal(CompareOp::kLt, 0,
                              Value::Int(static_cast<int64_t>(rows / 10))),
            Predicate::ColVal(CompareOp::kEq, 1, Value::String("beta"))});
     }},
};

void RunScan(benchmark::State& state, bool columnar) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const Case& c = kCases[state.range(1)];
  Database db = MakeEvents(rows, columnar);
  ExecOptions options;
  options.use_columnar = columnar;
  Executor executor(&db, options);
  ExprPtr plan = Expr::Select(Expr::Scan("events"), c.predicate(rows));
  auto physical = executor.Lower(plan);
  if (!physical.ok()) {
    state.SkipWithError(physical.status().message().c_str());
    return;
  }
  for (auto _ : state) {
    executor.ResetStats();
    auto rel = executor.ExecutePhysical(*physical);
    if (!rel.ok()) {
      state.SkipWithError(rel.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(rel->size());
  }
  state.SetLabel(std::string(c.name) +
                 (columnar ? " [columnar]" : " [row]"));
  const ExecStats& stats = executor.stats();
  state.counters["scanned"] =
      benchmark::Counter(static_cast<double>(stats.tuples_scanned));
  state.counters["comparisons"] =
      benchmark::Counter(static_cast<double>(stats.comparisons));
  state.counters["segments"] =
      benchmark::Counter(static_cast<double>(stats.segments_scanned));
  state.counters["pruned"] =
      benchmark::Counter(static_cast<double>(stats.segments_pruned));
}

void BM_Scan_Row(benchmark::State& state) { RunScan(state, false); }
void BM_Scan_Columnar(benchmark::State& state) { RunScan(state, true); }

void Args(benchmark::internal::Benchmark* b) {
  for (long rows : {16L * 1024, 128L * 1024}) {
    for (long c = 0; c < 3; ++c) b->Args({rows, c});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Scan_Row)->Apply(Args);
BENCHMARK(BM_Scan_Columnar)->Apply(Args);

}  // namespace
}  // namespace bryql

BRYQL_BENCH_MAIN();
