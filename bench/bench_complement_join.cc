// Experiment E3 (§3.1): the complement-join vs. the conventional
// translation of `member(x,z) ∧ ¬skill(x,db)`.
//
// Conventional plan:  member ⋈ (π1(member) − π1(σ_{2='db'}(skill)))
// Complement-join:    member ⊼_{1=1} π1(σ_{2='db'}(skill))
//
// The paper's claim: the conventional plan "requires to compute not only a
// difference, but also a join"; the complement-join behaves like a
// semi-join probe. Expect the complement-join to win on time, comparisons
// and materialized tuples at every scale, by a growing absolute margin.

#include <random>

#include "bench/bench_util.h"
#include "exec/executor.h"

namespace bryql {
namespace {

/// member(person, dept) with `people` rows; skill(person, topic) where a
/// `skilled_fraction` of people have the 'db' skill.
Database MakeDb(size_t people, double skilled_fraction, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const char* depts[] = {"cs", "math", "physics", "law"};
  Relation member(2), skill(2);
  for (size_t i = 0; i < people; ++i) {
    std::string name = "m" + std::to_string(i);
    member.Insert(Tuple({Value::String(name),
                         Value::String(depts[rng() % 4])}));
    if (std::uniform_real_distribution<double>(0, 1)(rng) <
        skilled_fraction) {
      skill.Insert(Tuple({Value::String(name), Value::String("db")}));
    }
    if (rng() % 3 == 0) {
      skill.Insert(Tuple({Value::String(name), Value::String("ai")}));
    }
  }
  Database db;
  db.Put("member", std::move(member));
  db.Put("skill", std::move(skill));
  return db;
}

ExprPtr SkilledDb() {
  return Expr::Project(
      Expr::Select(Expr::Scan("skill"),
                   Predicate::ColVal(CompareOp::kEq, 1,
                                     Value::String("db"))),
      {0});
}

/// member ⊼ π1(σ skill): the paper's plan.
ExprPtr ComplementJoinPlan() {
  return Expr::AntiJoin(Expr::Scan("member"), SkilledDb(), {{0, 0}});
}

/// member ⋈ (π1(member) − π1(σ skill)): the conventional plan.
ExprPtr ConventionalPlan() {
  ExprPtr difference =
      Expr::Difference(Expr::Project(Expr::Scan("member"), {0}),
                       SkilledDb());
  return Expr::Join(Expr::Scan("member"), std::move(difference), {{0, 0}});
}

void BM_ComplementJoin(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<double>(state.range(1)) / 100.0, 7);
  ExecStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    Executor exec(&db);
    auto rel = exec.Evaluate(ComplementJoinPlan());
    if (!rel.ok()) std::abort();
    answers = rel->size();
    stats = exec.stats();
    benchmark::DoNotOptimize(rel);
  }
  bench::ReportStats(state, stats, answers);
}

void BM_ConventionalDifferenceJoin(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<double>(state.range(1)) / 100.0, 7);
  ExecStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    Executor exec(&db);
    auto rel = exec.Evaluate(ConventionalPlan());
    if (!rel.ok()) std::abort();
    answers = rel->size();
    stats = exec.stats();
    benchmark::DoNotOptimize(rel);
  }
  bench::ReportStats(state, stats, answers);
}

/// The end-to-end form: the translator must produce the complement-join
/// plan from the §3.1 Q2 text.
void BM_TranslatedQ2(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<double>(state.range(1)) / 100.0, 7);
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunPipeline(db, "{ x, z | member(x, z) & ~skill(x, db) }");
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void Args(benchmark::internal::Benchmark* b) {
  // {people, skilled % of people}.
  b->Args({1000, 30})
      ->Args({1000, 70})
      ->Args({10000, 30})
      ->Args({10000, 70})
      ->Args({100000, 50})
      ->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_ComplementJoin)->Apply(Args);
BENCHMARK(BM_ConventionalDifferenceJoin)->Apply(Args);
BENCHMARK(BM_TranslatedQ2)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
