// Resource-governor overhead: the same end-to-end queries ungoverned
// (QueryOptions::Unlimited — admission checks still compiled in but with
// budgets at SIZE_MAX and no deadline) versus governed with generous
// finite budgets and a deadline, so every AdmitScan/AdmitMaterialize/Tick
// does real compare-and-poll work. The target is <2% overhead on the
// governed configuration (EXPERIMENTS.md, governor-overhead note): the
// hot path is a counter bump and compare, with the clock read amortized
// over kCheckInterval admissions.

#include "bench/bench_util.h"

namespace bryql {
namespace {

struct Workload {
  const char* name;
  const char* text;
};

// One scan-heavy, one join/materialize-heavy, one quantifier-heavy query,
// so overhead shows up whichever admission dominates.
const Workload kWorkloads[] = {
    {"select-project", "{ x | student(x) & makes(x, phd) }"},
    {"join-materialize", "{ x, z | member(x, z) & ~skill(x, db) }"},
    {"universal",
     "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }"},
};

Database MakeDb(size_t students) {
  UniversityConfig config;
  config.students = students;
  config.professors = students / 8;
  config.lectures = 48;
  config.seed = 31;
  return MakeUniversity(config);
}

QueryOptions GovernedOptions() {
  QueryOptions options;  // default structural guards stay on
  options.deadline = std::chrono::minutes(10);
  options.max_scanned_tuples = 1'000'000'000;
  options.max_materialized_tuples = 1'000'000'000;
  return options;
}

void RunCase(benchmark::State& state, const QueryOptions& options,
             const char* label) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Run(w.text, Strategy::kBry, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  state.SetLabel(std::string(w.name) + " [" + label + "]");
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Governor_Off(benchmark::State& state) {
  RunCase(state, QueryOptions::Unlimited(), "ungoverned");
}

void BM_Governor_On(benchmark::State& state) {
  RunCase(state, GovernedOptions(), "governed");
}

// The Figure 1 interpreter has the highest admission density (one
// AdmitScan per row of every loop level), so it bounds the overhead from
// above.
void RunNestedLoopCase(benchmark::State& state, const QueryOptions& options,
                       const char* label) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Run(w.text, Strategy::kNestedLoop, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  state.SetLabel(std::string(w.name) + " [" + label + "]");
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Governor_NestedLoop_Off(benchmark::State& state) {
  RunNestedLoopCase(state, QueryOptions::Unlimited(), "ungoverned");
}

void BM_Governor_NestedLoop_On(benchmark::State& state) {
  RunNestedLoopCase(state, GovernedOptions(), "governed");
}

void Args(benchmark::internal::Benchmark* b) {
  for (long scale : {500L, 2000L, 8000L}) {
    for (long w = 0; w < 3; ++w) b->Args({scale, w});
  }
  b->Unit(benchmark::kMicrosecond);
}

void SmallArgs(benchmark::internal::Benchmark* b) {
  for (long scale : {500L, 2000L}) {
    for (long w = 0; w < 3; ++w) b->Args({scale, w});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Governor_Off)->Apply(Args);
BENCHMARK(BM_Governor_On)->Apply(Args);
BENCHMARK(BM_Governor_NestedLoop_Off)->Apply(SmallArgs);
BENCHMARK(BM_Governor_NestedLoop_On)->Apply(SmallArgs);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
