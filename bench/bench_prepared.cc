// Physical-layer ablations: what batching buys over tuple-at-a-time
// data flow on the E3/E6/E9 workloads, and what the prepared-query plan
// cache buys on repeated queries (cache-hit vs. cold Run latency, and
// Prepare+Execute vs. Run).

#include "bench/bench_util.h"

namespace bryql {
namespace {

struct Workload {
  const char* name;
  const char* text;
};

// One query per headline experiment: E3 (complement-join), E6
// (disjunctive filters), and the E9 universal/nested shapes.
const Workload kWorkloads[] = {
    {"E3-complement-join", "{ x, z | member(x, z) & ~skill(x, db) }"},
    {"E6-disjunctive-filter",
     "{ x | student(x) & (speaks(x, french) | speaks(x, german)) }"},
    {"E9-universal",
     "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }"},
    {"E9-nested-exists",
     "exists x y: enrolled(x, y) & y != cs & makes(x, phd) & "
     "(exists z: lecture(z, ai) & attends(x, z))"},
};

Database MakeDb(size_t students) {
  UniversityConfig config;
  config.students = students;
  config.professors = students / 8;
  config.lectures = 48;
  config.seed = 31;
  return MakeUniversity(config);
}

/// Batched physical operators vs. the volcano engine, same plans, same
/// admissions — the delta is pure per-tuple interpretation overhead.
void RunEngineCase(benchmark::State& state, ExecOptions::Mode mode,
                   size_t batch_size) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  ExecOptions options;
  options.mode = mode;
  options.batch_size = batch_size;
  qp.SetExecOptions(options);
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Run(w.text);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  state.SetLabel(w.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Engine_Batched(benchmark::State& state) {
  RunEngineCase(state, ExecOptions::Mode::kBatched, kDefaultBatchSize);
}
void BM_Engine_BatchedSize1(benchmark::State& state) {
  RunEngineCase(state, ExecOptions::Mode::kBatched, 1);
}
void BM_Engine_TupleAtATime(benchmark::State& state) {
  RunEngineCase(state, ExecOptions::Mode::kTupleAtATime, 0);
}

/// Cold pipeline: a fresh QueryProcessor per iteration, so every Run
/// pays parse → rewrite → translate → lower → execute.
void BM_Prepared_ColdRun(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Execution exec;
  for (auto _ : state) {
    QueryProcessor qp(&db);
    auto result = qp.Run(w.text);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  state.SetLabel(w.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

/// Warm pipeline: one QueryProcessor, so every Run after the first is a
/// plan-cache hit and does zero preparation work.
void BM_Prepared_CachedRun(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  if (!qp.Run(w.text).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Run(w.text);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  state.SetLabel(w.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

/// The explicit API: Prepare once, Execute per iteration — the floor for
/// repeated-query latency (no cache lookup, no text hashing).
void BM_Prepared_Execute(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  QueryProcessor qp(&db);
  auto prepared = qp.Prepare(w.text);
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  Execution exec;
  for (auto _ : state) {
    auto result = qp.Execute(*prepared);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exec = std::move(*result);
    benchmark::DoNotOptimize(exec.answer.relation);
  }
  state.SetLabel(w.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void Args(benchmark::internal::Benchmark* b) {
  for (long scale : {500L, 2000L, 8000L}) {
    for (long w = 0; w < 4; ++w) b->Args({scale, w});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Engine_Batched)->Apply(Args);
BENCHMARK(BM_Engine_BatchedSize1)->Apply(Args);
BENCHMARK(BM_Engine_TupleAtATime)->Apply(Args);
BENCHMARK(BM_Prepared_ColdRun)->Apply(Args);
BENCHMARK(BM_Prepared_CachedRun)->Apply(Args);
BENCHMARK(BM_Prepared_Execute)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
