// Extension ablation: secondary hash indexes. Indexes speed up selective
// scans (σ_{col=v} over a base relation) and the Figure 1 interpreter's
// bound-argument loops, narrowing — but not closing — the gap between the
// nested-loop method and the algebraic translation. The paper's baselines
// ran on indexed 1980s systems, so this keeps the comparison honest.

#include "bench/bench_util.h"

namespace bryql {
namespace {

Database MakeDb(size_t students, bool indexed) {
  UniversityConfig config;
  config.students = students;
  config.lectures = 48;
  config.attends_per_student = 6.0;
  config.seed = 37;
  Database db = MakeUniversity(config);
  if (indexed) db.BuildAllIndexes();
  return db;
}

struct Shape {
  const char* name;
  const char* text;
};

const Shape kShapes[] = {
    {"selective-scan", "{ y | lecture(y, db) }"},
    {"point-lookup", "{ y | attends(s1, y) }"},
    {"universal",
     "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }"},
    {"nested-exists",
     "exists x y: enrolled(x, y) & y != cs & makes(x, phd) & "
     "(exists z: lecture(z, ai) & attends(x, z))"},
};

void Run(benchmark::State& state, Strategy strategy, bool indexed) {
  const Shape& shape = kShapes[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)), indexed);
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, shape.text, strategy);
    benchmark::DoNotOptimize(exec.answer.relation);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  state.SetLabel(std::string(shape.name) + (indexed ? " +index" : ""));
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_Bry_Plain(benchmark::State& state) {
  Run(state, Strategy::kBry, false);
}
void BM_Bry_Indexed(benchmark::State& state) {
  Run(state, Strategy::kBry, true);
}
void BM_NestedLoop_Plain(benchmark::State& state) {
  Run(state, Strategy::kNestedLoop, false);
}
void BM_NestedLoop_Indexed(benchmark::State& state) {
  Run(state, Strategy::kNestedLoop, true);
}

void Args(benchmark::internal::Benchmark* b) {
  for (long shape = 0; shape < 4; ++shape) {
    b->Args({2000, shape})->Args({10000, shape});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Bry_Plain)->Apply(Args);
BENCHMARK(BM_Bry_Indexed)->Apply(Args);
BENCHMARK(BM_NestedLoop_Plain)->Apply(Args);
BENCHMARK(BM_NestedLoop_Indexed)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
