// Experiment F1 (Figure 1): the one-tuple-at-a-time nested-loop baseline
// vs. the algebraic method, across query shapes. The loops share the two
// attractive properties (ranges scanned once, early termination) but pay
// one probe per tuple per nesting level; the algebra batches them.

#include "bench/bench_util.h"

namespace bryql {
namespace {

Database MakeDb(size_t students) {
  UniversityConfig config;
  config.students = students;
  config.lectures = 36;
  config.attends_per_student = 6.0;
  config.completionist_fraction = 0.03;
  config.seed = 23;
  return MakeUniversity(config);
}

struct Shape {
  const char* name;
  const char* text;
};

const Shape kShapes[] = {
    {"conjunctive",
     "{ x | student(x) & makes(x, phd) & (exists y: attends(x, y)) }"},
    {"negation", "{ x | student(x) & ~skill(x, db) }"},
    {"universal",
     "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }"},
    {"disjunctive-filter",
     "{ x | student(x) & (speaks(x, french) | speaks(x, german)) }"},
    {"closed-exists",
     "exists x: student(x) & makes(x, phd) & speaks(x, french)"},
};

void RunShape(benchmark::State& state, Strategy strategy) {
  const Shape& shape = kShapes[state.range(1)];
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, shape.text, strategy);
    benchmark::DoNotOptimize(exec.answer.relation);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  state.SetLabel(shape.name);
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void BM_NestedLoop(benchmark::State& state) {
  RunShape(state, Strategy::kNestedLoop);
}
void BM_BryAlgebra(benchmark::State& state) {
  RunShape(state, Strategy::kBry);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int shape = 0; shape < 5; ++shape) {
    b->Args({1000, shape})->Args({10000, shape});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_NestedLoop)->Apply(Args);
BENCHMARK(BM_BryAlgebra)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
