// Experiment E5 (§3.2): the non-emptiness test. Closed existential
// queries stop at the first witness; the conventional approach
// materializes the full answer set first. The sweep moves the witness
// through the scan order — early witnesses make the test nearly free.

#include "bench/bench_util.h"
#include "exec/executor.h"

namespace bryql {
namespace {

/// big(x) with n rows; marked(x) holds for exactly one x placed at
/// `position_percent` of the scan order.
Database MakeDb(size_t n, int position_percent) {
  Relation big(1), marked(1);
  size_t witness = n * static_cast<size_t>(position_percent) / 100;
  if (witness >= n) witness = n - 1;
  for (size_t i = 0; i < n; ++i) big.Insert(Tuple({Value::Int(i)}));
  marked.Insert(Tuple({Value::Int(witness)}));
  Database db;
  db.Put("big", std::move(big));
  db.Put("marked", std::move(marked));
  return db;
}

const char* kClosed = "exists x: big(x) & marked(x)";

void BM_EmptinessTest(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<int>(state.range(1)));
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunPipeline(db, kClosed);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

/// The conventional route: materialize the witness set, then test.
void BM_FullMaterialization(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<int>(state.range(1)));
  ExecStats stats;
  bool truth = false;
  ExprPtr plan = Expr::SemiJoin(Expr::Scan("big"), Expr::Scan("marked"),
                                {{0, 0}});
  for (auto _ : state) {
    Executor exec(&db);
    auto rel = exec.Evaluate(plan);
    if (!rel.ok()) std::abort();
    truth = !rel->empty();
    stats = exec.stats();
    benchmark::DoNotOptimize(truth);
  }
  bench::ReportStats(state, stats, truth ? 1 : 0);
}

/// Figure 1a for reference: the loop also stops at the first witness.
void BM_NestedLoopClosed(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)),
                       static_cast<int>(state.range(1)));
  Execution exec;
  for (auto _ : state) {
    exec = bench::RunStrategy(db, kClosed, Strategy::kNestedLoop);
    benchmark::DoNotOptimize(exec.answer.truth);
  }
  bench::ReportStats(state, exec.stats, bench::AnswerSize(exec));
}

void Args(benchmark::internal::Benchmark* b) {
  // {|big|, witness position %}.
  b->Args({100000, 1})
      ->Args({100000, 50})
      ->Args({100000, 99})
      ->Args({1000000, 1})
      ->Args({1000000, 99})
      ->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_EmptinessTest)->Apply(Args);
BENCHMARK(BM_FullMaterialization)->Apply(Args);
BENCHMARK(BM_NestedLoopClosed)->Apply(Args);

}  // namespace
}  // namespace bryql

BENCHMARK_MAIN();
