// Differential testing of the prepared/batched path against the original
// single-shot tuple-at-a-time path: the whole paper query suite over
// randomized databases must produce identical relations, and under a
// resource budget both paths must trip with the identical Status. Also
// covers the prepared-query contract itself: the second run of a query
// does zero parse/rewrite/translate/lower work, and the LRU plan cache
// behaves as one.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/plan_cache.h"
#include "core/query_processor.h"
#include "workload/university.h"

namespace bryql {
namespace {

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

ExecOptions VolcanoOptions() {
  ExecOptions options;
  options.mode = ExecOptions::Mode::kTupleAtATime;
  return options;
}

void ExpectSameAnswer(const Execution& a, const Execution& b,
                      const std::string& label) {
  ASSERT_EQ(a.answer.closed, b.answer.closed) << label;
  if (a.answer.closed) {
    EXPECT_EQ(a.answer.truth, b.answer.truth) << label;
  } else {
    EXPECT_EQ(a.answer.relation, b.answer.relation) << label;
  }
}

class PreparedDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

/// The headline differential: old path vs. new path, whole suite,
/// randomized databases, the strategies with a real algebra pipeline.
TEST_P(PreparedDifferentialTest, SuiteAgreesAcrossEngines) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor volcano_qp(&db);
  volcano_qp.SetExecOptions(VolcanoOptions());
  QueryProcessor batched_qp(&db);

  for (Strategy s : {Strategy::kBry, Strategy::kClassical}) {
    for (const NamedQuery& nq : PaperQuerySuite()) {
      auto old_path = volcano_qp.Run(nq.text, s);
      ASSERT_TRUE(old_path.ok()) << nq.name << ": " << old_path.status();

      // New path, single-shot Run (lower + batched execute).
      auto run = batched_qp.Run(nq.text, s);
      ASSERT_TRUE(run.ok()) << nq.name << ": " << run.status();
      ExpectSameAnswer(*old_path, *run, nq.name + " via Run");

      // New path, explicit Prepare → Execute.
      auto prepared = batched_qp.Prepare(nq.text, s);
      ASSERT_TRUE(prepared.ok()) << nq.name << ": " << prepared.status();
      auto exec = batched_qp.Execute(*prepared);
      ASSERT_TRUE(exec.ok()) << nq.name << ": " << exec.status();
      ExpectSameAnswer(*old_path, *exec, nq.name + " via Prepare/Execute");
    }
  }
}

/// Governor parity: for any one budget, both engines must reach the same
/// verdict — both succeed with equal answers, or both trip with the same
/// StatusCode. The batched operators mirror the volcano engine's
/// admissions, so a budget that stops one stops the other.
TEST_P(PreparedDifferentialTest, BudgetTripsIdenticallyAcrossEngines) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor volcano_qp(&db);
  volcano_qp.SetExecOptions(VolcanoOptions());
  QueryProcessor batched_qp(&db);

  struct Budget {
    const char* label;
    QueryOptions options;
  };
  std::vector<Budget> budgets;
  for (size_t cap : {3u, 25u, 400u}) {
    QueryOptions scan;
    scan.max_scanned_tuples = cap;
    budgets.push_back({"scan", scan});
    QueryOptions mat;
    mat.max_materialized_tuples = cap;
    budgets.push_back({"materialize", mat});
  }

  for (const Budget& budget : budgets) {
    for (const NamedQuery& nq : PaperQuerySuite()) {
      auto old_path = volcano_qp.Run(nq.text, Strategy::kBry,
                                     budget.options);
      auto new_path = batched_qp.Run(nq.text, Strategy::kBry,
                                     budget.options);
      const std::string label = nq.name + " [" + budget.label + " cap]";
      ASSERT_EQ(old_path.ok(), new_path.ok())
          << label << ": volcano=" << old_path.status()
          << " batched=" << new_path.status();
      if (old_path.ok()) {
        ExpectSameAnswer(*old_path, *new_path, label);
      } else {
        EXPECT_EQ(old_path.status().code(), new_path.status().code())
            << label << ": volcano=" << old_path.status()
            << " batched=" << new_path.status();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreparedDifferentialTest,
                         ::testing::Values(1u, 2u, 7u));

/// The zero-work guarantee: the second Run of the same text advances no
/// preparation counter — no parse, no rewrite, no translation, no
/// lowering — and is observable as a cache hit.
TEST(PlanCacheBehaviorTest, SecondRunDoesZeroPreparationWork) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  const std::string text =
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }";

  auto first = qp.Run(text);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->plan_cache_hit);
  const PrepareCounters after_first = qp.prepare_counters();
  EXPECT_EQ(after_first.parses, 1u);
  EXPECT_GE(after_first.normalizations, 1u);
  EXPECT_GE(after_first.translations, 1u);
  EXPECT_EQ(after_first.lowerings, 1u);

  auto second = qp.Run(text);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->plan_cache_hit);
  const PrepareCounters after_second = qp.prepare_counters();
  EXPECT_EQ(after_second.parses, after_first.parses);
  EXPECT_EQ(after_second.normalizations, after_first.normalizations);
  EXPECT_EQ(after_second.translations, after_first.translations);
  EXPECT_EQ(after_second.lowerings, after_first.lowerings);
  EXPECT_EQ(qp.cache_stats().hits, 1u);
  EXPECT_EQ(qp.cache_size(), 1u);

  ExpectSameAnswer(*first, *second, "cached rerun");
}

TEST(PlanCacheBehaviorTest, PrepareIsServedFromCacheAfterRun) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  const std::string text = "{ x | student(x) & makes(x, phd) }";
  ASSERT_TRUE(qp.Run(text).ok());
  const PrepareCounters before = qp.prepare_counters();
  auto prepared = qp.Prepare(text);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(qp.prepare_counters().parses, before.parses);
  EXPECT_EQ(qp.prepare_counters().lowerings, before.lowerings);
  ASSERT_NE((*prepared)->physical, nullptr);
  EXPECT_EQ((*prepared)->text, text);
}

TEST(PlanCacheBehaviorTest, DistinctStrategiesAndOptionsMissTheCache) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  const std::string text = "exists x: student(x) & makes(x, phd)";
  ASSERT_TRUE(qp.Run(text, Strategy::kBry).ok());
  ASSERT_TRUE(qp.Run(text, Strategy::kClassical).ok());
  EXPECT_EQ(qp.cache_size(), 2u);  // one entry per strategy
  EXPECT_EQ(qp.cache_stats().hits, 0u);

  // Changing exec options invalidates everything.
  ExecOptions merge;
  merge.join_algorithm = ExecOptions::JoinAlgorithm::kSortMerge;
  qp.SetExecOptions(merge);
  EXPECT_EQ(qp.cache_size(), 0u);
  auto rerun = qp.Run(text, Strategy::kBry);
  ASSERT_TRUE(rerun.ok());
  EXPECT_FALSE(rerun->plan_cache_hit);
}

TEST(PlanCacheBehaviorTest, CatalogChangeInvalidatesCachedLowering) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  const std::string text = "{ x | student(x) & makes(x, phd) }";
  auto cold = qp.Run(text);
  ASSERT_TRUE(cold.ok());
  auto prepared = qp.Prepare(text);
  ASSERT_TRUE(prepared.ok());

  // Building an index moves the catalog version: the cached plan is now
  // stale, and both Run and Execute must still answer correctly.
  ASSERT_TRUE(db.BuildIndex("makes", 0).ok());
  auto rerun = qp.Run(text);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_FALSE(rerun->plan_cache_hit);  // stale entry cannot count as hit
  ExpectSameAnswer(*cold, *rerun, "post-index Run");

  auto exec = qp.Execute(*prepared);  // holds the pre-index lowering
  ASSERT_TRUE(exec.ok()) << exec.status();
  ExpectSameAnswer(*cold, *exec, "post-index Execute of stale plan");
}

TEST(PlanCacheBehaviorTest, ExecuteRejectsNullPrepared) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  EXPECT_FALSE(qp.Execute(nullptr).ok());
}

/// Unit-level LRU behaviour of the cache itself.
TEST(PlanCacheUnitTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  auto entry = [](const std::string& text) {
    auto p = std::make_shared<PreparedQuery>();
    p->text = text;
    return PreparedQueryPtr(std::move(p));
  };
  cache.Put("a", entry("a"));
  cache.Put("b", entry("b"));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh a: b is now the LRU
  cache.Put("c", entry("c"));          // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlanCacheUnitTest, PutReplacesAndClearKeepsCounters) {
  PlanCache cache(4);
  auto p1 = std::make_shared<PreparedQuery>();
  p1->text = "v1";
  auto p2 = std::make_shared<PreparedQuery>();
  p2->text = "v2";
  cache.Put("k", p1);
  cache.Put("k", p2);
  EXPECT_EQ(cache.size(), 1u);
  auto got = cache.Get("k");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->text, "v2");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);  // counters survive Clear
}

}  // namespace
}  // namespace bryql
