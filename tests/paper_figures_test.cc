// Exact reproduction of the paper's worked examples: the relations P, T, U
// and the outer-join tables of Figures 2, 3 and 4 (§3.3), plus the
// resulting answers of queries Q1 and Q2.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

/// Fig. 2's base relations: P = {a,b,c,d}, T = {a,b,e}, U = {a,c,f}.
Database Fig2Database() {
  Database db;
  db.Put("P", UnaryStrings({"a", "b", "c", "d"}));
  db.Put("T", UnaryStrings({"a", "b", "e"}));
  db.Put("U", UnaryStrings({"a", "c", "f"}));
  return db;
}

Relation Eval(const Database& db, const ExprPtr& e, ExecStats* stats = nullptr) {
  Executor exec(&db);
  auto r = exec.Evaluate(e);
  EXPECT_TRUE(r.ok()) << r.status();
  if (stats != nullptr) *stats = exec.stats();
  return r.ok() ? *r : Relation(0);
}

Value Str(const char* s) { return Value::String(s); }

TEST(PaperFigures, Figure2OuterJoinR1) {
  // R1 = P ⟕_{1=1} T keeps every P tuple; partners or ∅.
  Database db = Fig2Database();
  Relation r1 = Eval(db, Expr::OuterJoin(Expr::Scan("P"), Expr::Scan("T"),
                                         {{0, 0}}));
  Relation expected = *Relation::FromRows({
      Tuple({Str("a"), Str("a")}),
      Tuple({Str("b"), Str("b")}),
      Tuple({Str("c"), Value::Null()}),
      Tuple({Str("d"), Value::Null()}),
  });
  EXPECT_EQ(r1, expected);
}

TEST(PaperFigures, Figure3OuterJoinR2) {
  // R2 = R1 ⟕_{1=1} U distinguishes the P-tuples occurring in U.
  Database db = Fig2Database();
  ExprPtr r1 = Expr::OuterJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}});
  Relation r2 = Eval(db, Expr::OuterJoin(r1, Expr::Scan("U"), {{0, 0}}));
  Relation expected = *Relation::FromRows({
      Tuple({Str("a"), Str("a"), Str("a")}),
      Tuple({Str("b"), Str("b"), Value::Null()}),
      Tuple({Str("c"), Value::Null(), Str("c")}),
      Tuple({Str("d"), Value::Null(), Value::Null()}),
  });
  EXPECT_EQ(r2, expected);
}

TEST(PaperFigures, Q1ViaPlainOuterJoins) {
  // Q1: P(x) ∧ (T(x) ∨ U(x)) = π1(σ_{2≠∅ ∨ 3≠∅}(R2)) = {a, b, c}.
  Database db = Fig2Database();
  ExprPtr r2 = Expr::OuterJoin(
      Expr::OuterJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}}),
      Expr::Scan("U"), {{0, 0}});
  ExprPtr q1 = Expr::Project(
      Expr::Select(r2, Predicate::Or({Predicate::IsNotNull(1),
                                      Predicate::IsNotNull(2)})),
      {0});
  EXPECT_EQ(Eval(db, q1), UnaryStrings({"a", "b", "c"}));
}

TEST(PaperFigures, Figure3RedundantProbeObserved) {
  // The unconstrained second outer-join also probes U for tuple (a,a),
  // which T already accepted — the redundancy the constraint removes.
  Database db = Fig2Database();
  ExecStats stats;
  Eval(db,
       Expr::OuterJoin(
           Expr::OuterJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}}),
           Expr::Scan("U"), {{0, 0}}),
       &stats);
  // 4 probes into T plus 4 into U (including the redundant probe for 'a').
  EXPECT_EQ(stats.hash_probes, 8u);
}

TEST(PaperFigures, Figure4ConstrainedOuterJoin) {
  // Fig. 4 computes Q2: P(x) ∧ (¬T(x) ∨ U(x)). The first constrained
  // outer-join marks P-tuples found in T with ⊥; the second probes U only
  // for tuples *in* T (mark ≠ ∅) — those not already accepted by ¬T.
  Database db = Fig2Database();
  ExprPtr r3 = Expr::MarkJoin(
      Expr::MarkJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}}),
      Expr::Scan("U"), {{0, 0}}, Predicate::IsNotNull(1));
  Relation rel = Eval(db, r3);
  Relation expected = *Relation::FromRows({
      Tuple({Str("a"), Value::Mark(), Value::Mark()}),
      Tuple({Str("b"), Value::Mark(), Value::Null()}),
      Tuple({Str("c"), Value::Null(), Value::Null()}),
      Tuple({Str("d"), Value::Null(), Value::Null()}),
  });
  EXPECT_EQ(rel, expected);
}

TEST(PaperFigures, Q2AnswerFromFigure4) {
  // Q2 answers: tuples with null second attribute or non-null third:
  // {a, c, d}.
  Database db = Fig2Database();
  ExprPtr r3 = Expr::MarkJoin(
      Expr::MarkJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}}),
      Expr::Scan("U"), {{0, 0}}, Predicate::IsNotNull(1));
  ExprPtr q2 = Expr::Project(
      Expr::Select(r3, Predicate::Or({Predicate::IsNull(1),
                                      Predicate::IsNotNull(2)})),
      {0});
  EXPECT_EQ(Eval(db, q2), UnaryStrings({"a", "c", "d"}));
}

TEST(PaperFigures, ConstrainedChainForQ1SkipsRedundantProbes) {
  // Q1 via the constrained chain E of §3.3: the second join probes U only
  // for tuples with 2 = ∅, i.e. not already found in T.
  Database db = Fig2Database();
  ExprPtr chain = Expr::MarkJoin(
      Expr::MarkJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}}),
      Expr::Scan("U"), {{0, 0}}, Predicate::IsNull(1));
  ExprPtr q1 = Expr::Project(
      Expr::Select(chain, Predicate::Or({Predicate::IsNotNull(1),
                                         Predicate::IsNotNull(2)})),
      {0});
  ExecStats stats;
  EXPECT_EQ(Eval(db, q1, &stats), UnaryStrings({"a", "b", "c"}));
  // 4 probes into T; only c and d (not found in T) probe U: 2 probes.
  EXPECT_EQ(stats.hash_probes, 6u);
  // Each of P, T, U is searched exactly once.
  EXPECT_EQ(stats.tuples_scanned, 4u + 3u + 3u);
}

TEST(PaperFigures, MarkJoinProjectionCannotDuplicate) {
  // "By definition of a constrained outer-join, the projection in the
  // expression E cannot induce duplicate tuples": arity(P) columns remain
  // a key of the chain result.
  Database db = Fig2Database();
  ExprPtr chain = Expr::MarkJoin(
      Expr::MarkJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}}),
      Expr::Scan("U"), {{0, 0}}, Predicate::IsNull(1));
  Relation rel = Eval(db, chain);
  Relation keys = Eval(db, Expr::Project(Expr::Literal(rel), {0}));
  EXPECT_EQ(rel.size(), keys.size());
  EXPECT_EQ(rel.size(), 4u);  // |P| preserved
}

}  // namespace
}  // namespace bryql
