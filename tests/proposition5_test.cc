// Proposition 5 (§3.3): a disjunctive filter P(x) ∧ [Λ1 T1(x) ∨ ... ∨
// Λn Tn(x)] evaluates through a chain of constrained outer-joins that (a)
// builds no union, (b) scans the producer once, and (c) probes each Ti
// only for tuples not yet accepted. Verified against direct semantics for
// every negation pattern up to n = 3, on randomized data, plus the
// structural claims.

#include <gtest/gtest.h>

#include <random>

#include "core/query_processor.h"
#include "exec/executor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

Database RandomUnaryDb(unsigned seed, int domain) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> value(0, domain - 1);
  Database db;
  for (const char* name : {"P", "T1", "T2", "T3"}) {
    Relation rel(1);
    int rows = 5 + static_cast<int>(rng() % 20);
    for (int i = 0; i < rows; ++i) rel.Insert(Ints({value(rng)}));
    db.Put(name, std::move(rel));
  }
  return db;
}

/// Builds "{ x | P(x) & (s1 T1(x) | s2 T2(x) | ...) }" with signs.
std::string DisjunctiveQuery(const std::vector<bool>& negated) {
  std::string q = "{ x | P(x) & (";
  for (size_t i = 0; i < negated.size(); ++i) {
    if (i > 0) q += " | ";
    if (negated[i]) q += "~";
    q += "T" + std::to_string(i + 1) + "(x)";
  }
  q += ") }";
  return q;
}

struct Pattern {
  std::vector<bool> negated;
  unsigned seed;
};

class Proposition5Test
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(Proposition5Test, AllSignPatternsMatchReference) {
  auto [n, seed] = GetParam();
  Database db = RandomUnaryDb(seed, 12);
  QueryProcessor qp(&db);
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<bool> negated;
    for (int i = 0; i < n; ++i) negated.push_back(mask & (1 << i));
    std::string text = DisjunctiveQuery(negated);
    auto reference = qp.Run(text, Strategy::kNestedLoop);
    ASSERT_TRUE(reference.ok()) << text << ": " << reference.status();
    for (Strategy s :
         {Strategy::kBry, Strategy::kBryUnionFilters, Strategy::kClassical}) {
      auto got = qp.Run(text, s);
      ASSERT_TRUE(got.ok()) << StrategyName(s) << " " << text << ": "
                            << got.status();
      EXPECT_EQ(got->answer.relation, reference->answer.relation)
          << StrategyName(s) << " on " << text << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Proposition5Test,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0u, 1u, 2u, 3u)));

bool PlanContains(const ExprPtr& e, ExprKind kind) {
  if (e->kind() == kind) return true;
  for (const ExprPtr& c : e->children()) {
    if (PlanContains(c, kind)) return true;
  }
  return false;
}

TEST(Proposition5Shapes, ChainBuildsNoUnion) {
  Database db = RandomUnaryDb(7, 12);
  QueryProcessor qp(&db);
  auto exec = qp.Explain(DisjunctiveQuery({false, true, false}),
                         Strategy::kBry);
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_TRUE(PlanContains(exec->plan, ExprKind::kMarkJoin))
      << exec->plan->ToString();
  EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kUnion))
      << exec->plan->ToString();
}

TEST(Proposition5Shapes, UnionStrategyBuildsUnions) {
  Database db = RandomUnaryDb(7, 12);
  QueryProcessor qp(&db);
  auto exec = qp.Explain(DisjunctiveQuery({false, false}),
                         Strategy::kBryUnionFilters);
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(PlanContains(exec->plan, ExprKind::kUnion));
  EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kMarkJoin));
}

TEST(Proposition5Claims, ProducerScannedOnceAndProbesSkipped) {
  // Deterministic setup: P = {0..99}, T1 = {0..49}, T2 = {0..99 even}.
  Database db;
  Relation p(1), t1(1), t2(1);
  for (int i = 0; i < 100; ++i) {
    p.Insert(Ints({i}));
    if (i < 50) t1.Insert(Ints({i}));
    if (i % 2 == 0) t2.Insert(Ints({i}));
  }
  db.Put("P", p);
  db.Put("T1", t1);
  db.Put("T2", t2);
  QueryProcessor qp(&db);
  auto chained = qp.Run("{ x | P(x) & (T1(x) | T2(x)) }", Strategy::kBry);
  ASSERT_TRUE(chained.ok()) << chained.status();
  EXPECT_EQ(chained->answer.relation.size(), 75u);
  // (b) each relation scanned exactly once: 100 + 50 + 50.
  EXPECT_EQ(chained->stats.tuples_scanned, 200u);
  // (c) T2 probed only for the 50 tuples T1 did not accept:
  // 100 probes into T1 + 50 into T2.
  EXPECT_EQ(chained->stats.hash_probes, 150u);

  // The union baseline scans P twice and probes both relations fully.
  auto unioned =
      qp.Run("{ x | P(x) & (T1(x) | T2(x)) }", Strategy::kBryUnionFilters);
  ASSERT_TRUE(unioned.ok());
  EXPECT_EQ(unioned->answer.relation, chained->answer.relation);
  EXPECT_GT(unioned->stats.tuples_scanned, chained->stats.tuples_scanned);
  EXPECT_GT(unioned->stats.hash_probes, chained->stats.hash_probes);
}

TEST(Proposition5Extensions, ReorderedChainSavesProbes) {
  // T2 is much larger (accepts more of P): with reordering it is probed
  // first, so fewer tuples reach the T1 probe. Same answers either way.
  Database db;
  Relation p(1), t1(1), t2(1);
  for (int i = 0; i < 1000; ++i) {
    p.Insert(Ints({i}));
    if (i < 50) t1.Insert(Ints({i}));
    if (i < 900) t2.Insert(Ints({i}));
  }
  db.Put("P", p);
  db.Put("T1", t1);
  db.Put("T2", t2);
  auto query = ParseQuery("{ x | P(x) & (T1(x) | T2(x)) }");
  ASSERT_TRUE(query.ok());
  auto run = [&](bool reorder) {
    TranslateOptions options;
    options.reorder_disjuncts = reorder;
    Translator translator(&db, options);
    auto plan = translator.TranslateOpen(*query);
    EXPECT_TRUE(plan.ok()) << plan.status();
    Executor exec(&db);
    auto rel = exec.Evaluate(plan->expr);
    EXPECT_TRUE(rel.ok()) << rel.status();
    return std::make_pair(rel.ok() ? *rel : Relation(0),
                          exec.stats().hash_probes);
  };
  auto [plain_rel, plain_probes] = run(false);
  auto [reordered_rel, reordered_probes] = run(true);
  EXPECT_EQ(plain_rel, reordered_rel);
  // Plain order: 1000 probes into T1, 950 into T2 → 1950.
  // Reordered: 1000 into T2, 100 into T1 → 1100.
  EXPECT_LT(reordered_probes, plain_probes);
}

TEST(Proposition5Extensions, QuantifiedDisjunct) {
  // §2.3: a quantified subformula as a disjunct of a filter — "x speaks
  // all roman languages" style.
  Database db;
  db.Put("person", UnaryStrings({"ann", "bob", "cal"}));
  db.Put("speaks", StringPairs({{"ann", "french"},
                                {"bob", "latin"},
                                {"bob", "italian"},
                                {"cal", "german"}}));
  db.Put("roman", UnaryStrings({"latin", "italian"}));
  QueryProcessor qp(&db);
  const char* text =
      "{ x | person(x) & (speaks(x, french) | "
      "(forall y: roman(y) -> speaks(x, y))) }";
  auto reference = qp.Run(text, Strategy::kNestedLoop);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->answer.relation, UnaryStrings({"ann", "bob"}));
  for (Strategy s : {Strategy::kBry, Strategy::kBryUnionFilters}) {
    auto got = qp.Run(text, s);
    ASSERT_TRUE(got.ok()) << StrategyName(s) << ": " << got.status();
    EXPECT_EQ(got->answer.relation, reference->answer.relation)
        << StrategyName(s);
  }
}

TEST(Proposition5Extensions, ComparisonDisjunctInlines) {
  Database db;
  db.Put("P", UnaryInts({1, 2, 3, 4, 5}));
  db.Put("T1", UnaryInts({2}));
  QueryProcessor qp(&db);
  const char* text = "{ x | P(x) & (T1(x) | x > 4) }";
  auto got = qp.Run(text, Strategy::kBry);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->answer.relation, UnaryInts({2, 5}));
  auto reference = qp.Run(text, Strategy::kNestedLoop);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(got->answer.relation, reference->answer.relation);
}

TEST(Proposition5Extensions, ConjunctiveDisjunct) {
  // A disjunct that is itself a conjunction: (T1 ∧ T2) ∨ T3.
  Database db;
  db.Put("P", UnaryInts({1, 2, 3, 4, 5, 6}));
  db.Put("T1", UnaryInts({1, 2, 3}));
  db.Put("T2", UnaryInts({2, 3, 4}));
  db.Put("T3", UnaryInts({6}));
  QueryProcessor qp(&db);
  const char* text = "{ x | P(x) & ((T1(x) & T2(x)) | T3(x)) }";
  auto reference = qp.Run(text, Strategy::kNestedLoop);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->answer.relation, UnaryInts({2, 3, 6}));
  for (Strategy s : {Strategy::kBry, Strategy::kBryUnionFilters,
                     Strategy::kClassical}) {
    auto got = qp.Run(text, s);
    ASSERT_TRUE(got.ok()) << StrategyName(s) << ": " << got.status();
    EXPECT_EQ(got->answer.relation, reference->answer.relation)
        << StrategyName(s);
  }
}

TEST(Proposition5Extensions, MixedPolarityThreeWay) {
  Database db;
  db.Put("P", UnaryInts({1, 2, 3, 4, 5, 6, 7, 8}));
  db.Put("T1", UnaryInts({1, 2}));
  db.Put("T2", UnaryInts({2, 3, 4}));
  db.Put("T3", UnaryInts({5}));
  QueryProcessor qp(&db);
  const char* text = "{ x | P(x) & (~T1(x) | T2(x) | ~T3(x)) }";
  auto reference = qp.Run(text, Strategy::kNestedLoop);
  ASSERT_TRUE(reference.ok());
  for (Strategy s : {Strategy::kBry, Strategy::kBryUnionFilters}) {
    auto got = qp.Run(text, s);
    ASSERT_TRUE(got.ok()) << StrategyName(s) << ": " << got.status();
    EXPECT_EQ(got->answer.relation, reference->answer.relation)
        << StrategyName(s);
  }
}

TEST(Proposition5Extensions, BinaryRelationDisjuncts) {
  // "Proposition 5 extends easily to ... n-ary relations."
  Database db;
  db.Put("member", StringPairs({{"ann", "cs"}, {"bob", "math"},
                                {"cal", "cs"}}));
  db.Put("skill", StringPairs({{"ann", "db"}, {"cal", "ai"}}));
  db.Put("makes", StringPairs({{"bob", "phd"}}));
  QueryProcessor qp(&db);
  const char* text =
      "{ x, d | member(x, d) & (skill(x, db) | makes(x, phd)) }";
  auto reference = qp.Run(text, Strategy::kNestedLoop);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (Strategy s : {Strategy::kBry, Strategy::kBryUnionFilters}) {
    auto got = qp.Run(text, s);
    ASSERT_TRUE(got.ok()) << StrategyName(s) << ": " << got.status();
    EXPECT_EQ(got->answer.relation, reference->answer.relation);
  }
  EXPECT_EQ(reference->answer.relation.size(), 2u);  // (ann,cs),(bob,math)
}

}  // namespace
}  // namespace bryql
