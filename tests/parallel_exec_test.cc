// Morsel-driven parallel execution: unit tests for the sharing
// primitives (thread pool, morsel dispenser, sharded sets, shared
// budget), and the headline differential — the whole paper query suite
// must produce identical answers at num_threads ∈ {1, 2, 8} and serial,
// with identical Status verdicts under tuple budgets, deadlines and
// cancellation. Also covers concurrent QueryProcessor use: many threads
// sharing one processor (and so one plan cache) must never race or lose
// counter increments; scripts/check.sh runs this binary under TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "common/thread_pool.h"
#include "core/query_processor.h"
#include "exec/physical/parallel.h"
#include "workload/university.h"

namespace bryql {
namespace {

// ---------------------------------------------------------------------
// Sharing primitives.

TEST(ThreadPoolTest, RunOnWorkersRunsEveryWorkerAndWorkerZeroInline) {
  ThreadPool& pool = ThreadPool::Shared();
  EXPECT_GE(pool.size(), 2u);

  constexpr size_t kWorkers = 8;
  std::vector<std::atomic<int>> ran(kWorkers);
  for (auto& r : ran) r.store(0);
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> worker0_inline{false};
  RunOnWorkers(pool, kWorkers, [&](size_t w) {
    ran[w].fetch_add(1);
    if (w == 0 && std::this_thread::get_id() == caller) {
      worker0_inline.store(true);
    }
  });
  for (size_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(ran[w].load(), 1) << "worker " << w;
  }
  // Worker 0 runs on the calling thread, so a saturated pool still makes
  // progress.
  EXPECT_TRUE(worker0_inline.load());
}

TEST(MorselSourceTest, ClaimsCoverEachRowExactlyOnce) {
  constexpr size_t kRows = 10 * 1024 + 37;  // deliberately not a multiple
  MorselSource source(kRows);
  std::vector<std::atomic<int>> claimed(kRows);
  for (auto& c : claimed) c.store(0);

  constexpr size_t kWorkers = 4;
  RunOnWorkers(ThreadPool::Shared(), kWorkers, [&](size_t) {
    size_t begin = 0, end = 0;
    while (source.Claim(&begin, &end)) {
      ASSERT_LE(end, kRows);
      ASSERT_LT(begin, end);
      for (size_t i = begin; i < end; ++i) claimed[i].fetch_add(1);
    }
  });
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(claimed[i].load(), 1) << "row " << i;
  }
  // Exhausted sources stay exhausted.
  size_t b = 0, e = 0;
  EXPECT_FALSE(source.Claim(&b, &e));
}

TEST(ShardedTupleSetTest, ConcurrentInsertsAdmitEachTupleExactlyOnce) {
  ShardedTupleSet set;
  constexpr size_t kDistinct = 2000;
  constexpr size_t kWorkers = 8;
  std::atomic<size_t> fresh{0};
  // Every worker inserts the same key space: exactly one insert per key
  // may report fresh, whichever worker wins.
  RunOnWorkers(ThreadPool::Shared(), kWorkers, [&](size_t) {
    for (size_t i = 0; i < kDistinct; ++i) {
      Tuple t({Value::Int(static_cast<int64_t>(i))});
      if (set.Insert(t)) fresh.fetch_add(1);
    }
  });
  EXPECT_EQ(fresh.load(), kDistinct);
  EXPECT_EQ(set.size(), kDistinct);
}

TEST(SharedBudgetTest, LatchesFirstTripAndStops) {
  QueryOptions options;
  ResourceGovernor governor(options);
  SharedBudget budget(governor);
  EXPECT_FALSE(budget.stop_requested());
  EXPECT_TRUE(budget.status().ok());

  budget.Trip(Status::ResourceExhausted("first"));
  budget.Trip(Status::DeadlineExceeded("second"));
  EXPECT_TRUE(budget.stop_requested());
  EXPECT_EQ(budget.status().code(), StatusCode::kResourceExhausted);
}

TEST(SharedBudgetTest, ShardsReconcileRealCountsAndTripTheSharedLimit) {
  QueryOptions options;
  options.max_scanned_tuples = 3000;
  ResourceGovernor governor(options);
  SharedBudget budget(governor);

  // Two shards admit 2000 scans each: individually under the cap, their
  // reconciled total (4000) is over it — the shared budget must trip
  // even though each worker's flush cadence is chunked.
  RunOnWorkers(ThreadPool::Shared(), 2, [&](size_t) {
    ResourceGovernor shard(&budget);
    for (size_t i = 0; i < 2000; ++i) {
      if (!shard.AdmitScan()) break;
    }
    shard.Reconcile();
  });
  EXPECT_FALSE(budget.status().ok());
  EXPECT_EQ(budget.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(budget.scanned(), 3000u);
}

TEST(SharedBudgetTest, RequestStopIsACooperativeSentinelNotAnError) {
  QueryOptions options;
  ResourceGovernor governor(options);
  SharedBudget budget(governor);
  budget.RequestStop();

  ResourceGovernor shard(&budget);
  // The shard notices the stop at its next slow check and reports the
  // early-stop sentinel; the pool's status stays OK.
  for (size_t i = 0; i < 5000 && shard.AdmitScan(); ++i) {
  }
  EXPECT_TRUE(shard.early_stopped());
  EXPECT_TRUE(budget.status().ok());
}

// ---------------------------------------------------------------------
// Differential parity: parallel vs. serial over the paper query suite.

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

QueryOptions WithThreads(size_t n) {
  QueryOptions options;
  options.num_threads = n;
  return options;
}

void ExpectSameAnswer(const Execution& serial, const Execution& parallel,
                      const std::string& label) {
  ASSERT_EQ(serial.answer.closed, parallel.answer.closed) << label;
  if (serial.answer.closed) {
    EXPECT_EQ(serial.answer.truth, parallel.answer.truth) << label;
  } else {
    // Workers drain in nondeterministic interleavings, so compare as
    // sets (sorted rows) — relations are sets, order is not semantics.
    EXPECT_EQ(serial.answer.relation.SortedRows(),
              parallel.answer.relation.SortedRows())
        << label;
  }
}

class ParallelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDifferentialTest, SuiteAgreesAcrossThreadCounts) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor qp(&db);

  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto serial = qp.Run(nq.text, Strategy::kBry, WithThreads(0));
    ASSERT_TRUE(serial.ok()) << nq.name << ": " << serial.status();
    for (size_t threads : {1u, 2u, 8u}) {
      auto parallel = qp.Run(nq.text, Strategy::kBry, WithThreads(threads));
      ASSERT_TRUE(parallel.ok())
          << nq.name << " @" << threads << ": " << parallel.status();
      ExpectSameAnswer(*serial, *parallel,
                       nq.name + " @" + std::to_string(threads));
    }
  }
}

/// One prepared plan, every parallelism degree: num_threads is a
/// drive-time option, so Execute must accept any degree without
/// re-preparing (and the cache key must not fragment on it).
TEST_P(ParallelDifferentialTest, CachedPlanExecutesAtAnyDegree) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor qp(&db);
  const NamedQuery nq = PaperQuerySuite().front();

  auto prepared = qp.Prepare(nq.text, Strategy::kBry);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto serial = qp.Execute(*prepared, WithThreads(0));
  ASSERT_TRUE(serial.ok()) << serial.status();
  const PrepareCounters before = qp.prepare_counters();
  for (size_t threads : {1u, 2u, 8u}) {
    auto parallel = qp.Execute(*prepared, WithThreads(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameAnswer(*serial, *parallel, "degree " + std::to_string(threads));
  }
  const PrepareCounters after = qp.prepare_counters();
  EXPECT_EQ(before.parses, after.parses);
  EXPECT_EQ(before.lowerings, after.lowerings);
}

/// Budget parity: for any one tuple budget, serial and parallel must
/// reach the same verdict — both succeed with equal answers or both trip
/// with the same StatusCode. This is the payoff of exact-count
/// reconciliation (shared morsels, shared builds, shared seen-sets):
/// parallel admission totals equal serial totals, so the trip verdict is
/// identical by construction.
TEST_P(ParallelDifferentialTest, BudgetVerdictsIdenticalAcrossThreadCounts) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor qp(&db);

  struct Budget {
    const char* label;
    QueryOptions options;
  };
  std::vector<Budget> budgets;
  for (size_t cap : {3u, 25u, 400u}) {
    QueryOptions scan;
    scan.max_scanned_tuples = cap;
    budgets.push_back({"scan", scan});
    QueryOptions mat;
    mat.max_materialized_tuples = cap;
    budgets.push_back({"materialize", mat});
  }

  for (const Budget& budget : budgets) {
    for (const NamedQuery& nq : PaperQuerySuite()) {
      QueryOptions serial_options = budget.options;
      auto serial = qp.Run(nq.text, Strategy::kBry, serial_options);
      for (size_t threads : {1u, 2u, 8u}) {
        QueryOptions parallel_options = budget.options;
        parallel_options.num_threads = threads;
        auto parallel = qp.Run(nq.text, Strategy::kBry, parallel_options);
        const std::string label = nq.name + " [" + budget.label + " cap] @" +
                                  std::to_string(threads);
        ASSERT_EQ(serial.ok(), parallel.ok())
            << label << ": serial=" << serial.status()
            << " parallel=" << parallel.status();
        if (serial.ok()) {
          ExpectSameAnswer(*serial, *parallel, label);
        } else {
          EXPECT_EQ(serial.status().code(), parallel.status().code())
              << label << ": serial=" << serial.status()
              << " parallel=" << parallel.status();
        }
      }
    }
  }
}

/// An already-expired deadline and a pre-cancelled token must surface as
/// kDeadlineExceeded / kCancelled at every parallelism degree.
TEST_P(ParallelDifferentialTest, DeadlineAndCancellationParity) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor qp(&db);
  const NamedQuery nq = PaperQuerySuite().front();

  for (size_t threads : {0u, 1u, 2u, 8u}) {
    QueryOptions expired = WithThreads(threads);
    expired.deadline = std::chrono::nanoseconds(1);
    auto run = qp.Run(nq.text, Strategy::kBry, expired);
    ASSERT_FALSE(run.ok()) << "@" << threads;
    EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
        << "@" << threads << ": " << run.status();

    CancellationToken token;
    token.Cancel();
    QueryOptions cancelled = WithThreads(threads);
    cancelled.cancellation = &token;
    auto aborted = qp.Run(nq.text, Strategy::kBry, cancelled);
    ASSERT_FALSE(aborted.ok()) << "@" << threads;
    EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled)
        << "@" << threads << ": " << aborted.status();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Values(1u, 2u, 7u));

// ---------------------------------------------------------------------
// Concurrent QueryProcessor use: one processor, one plan cache, many
// threads. TSan (scripts/check.sh phase 3) turns any race here into a
// failure; the assertions below catch lost counter updates.

TEST(ConcurrentQueryProcessorTest, ManyThreadsShareOneProcessorAndCache) {
  Database db = MakeUniversity(SmallConfig(5));
  QueryProcessor qp(&db);
  const std::vector<NamedQuery> suite = PaperQuerySuite();
  const size_t kQueries = 4;
  const size_t kThreads = 8;
  const size_t kRepeats = 3;

  // Serial reference answers, computed before any concurrency.
  std::vector<Execution> reference;
  for (size_t q = 0; q < kQueries; ++q) {
    auto run = qp.Run(suite[q].text, Strategy::kBry);
    ASSERT_TRUE(run.ok()) << suite[q].name << ": " << run.status();
    reference.push_back(std::move(*run));
  }
  qp.ClearPlanCache();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (size_t r = 0; r < kRepeats; ++r) {
        for (size_t q = 0; q < kQueries; ++q) {
          // Half the threads drive the plans in parallel mode, so cached
          // plans are concurrently instantiated at different degrees.
          QueryOptions options = WithThreads(t % 2 == 0 ? 0 : 2);
          auto run = qp.Run(suite[q].text, Strategy::kBry, options);
          if (!run.ok() ||
              run->answer.closed != reference[q].answer.closed ||
              (run->answer.closed
                   ? run->answer.truth != reference[q].answer.truth
                   : run->answer.relation.SortedRows() !=
                         reference[q].answer.relation.SortedRows())) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // No lost increments: every Run was exactly one cache hit or miss.
  const PlanCacheStats stats = qp.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            kThreads * kRepeats * kQueries + kQueries /* reference runs */);
  // Each distinct query misses at least once after the Clear; racing
  // threads may each miss-and-prepare the same query, never fewer.
  EXPECT_GE(stats.misses, kQueries);
  EXPECT_LE(qp.cache_size(), kQueries);
}

}  // namespace
}  // namespace bryql
