#include "calculus/views.h"

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  db.Put("student", UnaryStrings({"ann", "bob", "cal"}));
  db.Put("makes", StringPairs({{"ann", "phd"}, {"cal", "phd"}}));
  db.Put("lecture", StringPairs({{"l1", "db"}, {"l2", "db"}, {"l3", "ai"}}));
  db.Put("attends", StringPairs({{"ann", "l1"},
                                 {"ann", "l2"},
                                 {"bob", "l1"},
                                 {"cal", "l3"}}));
  return db;
}

TEST(ViewSetTest, DefineAndArity) {
  ViewSet views;
  ASSERT_TRUE(views.DefineFromText(
                       "phd-student", "{ x | student(x) & makes(x, phd) }")
                  .ok());
  EXPECT_TRUE(views.Has("phd-student"));
  EXPECT_EQ(*views.ArityOf("phd-student"), 1u);
  EXPECT_FALSE(views.ArityOf("nope").ok());
}

TEST(ViewSetTest, RejectsClosedDefinition) {
  ViewSet views;
  auto q = ParseQuery("exists x: student(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(views.Define("v", *q).ok());
}

TEST(ViewSetTest, RejectsExtraFreeVariables) {
  ViewSet views;
  // y occurs free but is not a target.
  auto f = ParseFormula("attends(x, y)", {"x", "y"});
  ASSERT_TRUE(f.ok());
  Query q{{"x"}, *f};
  EXPECT_FALSE(views.Define("v", q).ok());
}

TEST(ViewSetTest, ExpandSimpleAtom) {
  ViewSet views;
  ASSERT_TRUE(views.DefineFromText(
                       "phd-student", "{ x | student(x) & makes(x, phd) }")
                  .ok());
  auto f = ParseFormula("exists y: phd-student(y)");
  ASSERT_TRUE(f.ok());
  auto expanded = views.Expand(*f);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_EQ((*expanded)->ToString(),
            "exists y: student(y) & makes(y, 'phd')");
}

TEST(ViewSetTest, ExpandWithConstantsAndRenaming) {
  ViewSet views;
  ASSERT_TRUE(
      views
          .DefineFromText("db-attender",
                          "{ x | exists y: lecture(y, db) & attends(x, y) }")
          .ok());
  // The caller reuses the name y — the view's bound y must be freshened.
  auto f = ParseFormula("exists y: student(y) & db-attender(y)");
  ASSERT_TRUE(f.ok());
  auto expanded = views.Expand(*f);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  std::set<std::string> all = (*expanded)->AllVariables();
  EXPECT_GE(all.size(), 2u);  // y plus a freshened y$N
  // Semantics check below via the processor.
}

TEST(ViewSetTest, ArityMismatchRejected) {
  ViewSet views;
  ASSERT_TRUE(views.DefineFromText("v", "{ x | student(x) }").ok());
  auto f = ParseFormula("exists a b: v(a, b)");
  ASSERT_TRUE(f.ok());
  auto expanded = views.Expand(*f);
  EXPECT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ViewSetTest, NestedViews) {
  ViewSet views;
  ASSERT_TRUE(views.DefineFromText(
                       "phd-student", "{ x | student(x) & makes(x, phd) }")
                  .ok());
  ASSERT_TRUE(views
                  .DefineFromText(
                      "busy-phd",
                      "{ x | phd-student(x) & (exists y: attends(x, y)) }")
                  .ok());
  auto f = ParseFormula("exists z: busy-phd(z)");
  ASSERT_TRUE(f.ok());
  auto expanded = views.Expand(*f);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  // Fully expanded: no view names remain.
  EXPECT_EQ((*expanded)->ToString().find("busy-phd"), std::string::npos);
  EXPECT_EQ((*expanded)->ToString().find("phd-student"), std::string::npos);
}

TEST(ViewSetTest, CyclicViewsRejected) {
  ViewSet views;
  auto a = ParseQuery("{ x | b(x) }");
  auto b = ParseQuery("{ x | a(x) }");
  ASSERT_TRUE(views.Define("a", *a).ok());
  ASSERT_TRUE(views.Define("b", *b).ok());
  auto f = ParseFormula("exists x: a(x)");
  auto expanded = views.Expand(*f);
  EXPECT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kUnsupported);
}

TEST(ViewSetTest, SelfReferenceRejected) {
  ViewSet views;
  auto v = ParseQuery("{ x | v(x) }");
  ASSERT_TRUE(views.Define("v", *v).ok());
  auto f = ParseFormula("exists x: v(x)");
  EXPECT_FALSE(views.Expand(*f).ok());
}

TEST(ViewProcessorTest, EndToEndThroughProcessor) {
  Database db = MakeDb();
  ViewSet views;
  ASSERT_TRUE(views.DefineFromText(
                       "phd-student", "{ x | student(x) & makes(x, phd) }")
                  .ok());
  QueryProcessor qp(&db);
  qp.SetViews(&views);
  auto r = qp.Run("{ x | phd-student(x) & (exists y: attends(x, y)) }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answer.relation, UnaryStrings({"ann", "cal"}));
}

TEST(ViewProcessorTest, ViewAsQuantifierRange) {
  // A view used as the range of a universal quantification.
  Database db = MakeDb();
  ViewSet views;
  ASSERT_TRUE(
      views.DefineFromText("db-lecture", "{ y | lecture(y, db) }").ok());
  QueryProcessor qp(&db);
  qp.SetViews(&views);
  auto r =
      qp.Run("{ x | student(x) & (forall y: db-lecture(y) -> attends(x, y)) }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answer.relation, UnaryStrings({"ann"}));
}

TEST(ViewProcessorTest, NegatedViewFilter) {
  Database db = MakeDb();
  ViewSet views;
  ASSERT_TRUE(views.DefineFromText(
                       "phd-student", "{ x | student(x) & makes(x, phd) }")
                  .ok());
  QueryProcessor qp(&db);
  qp.SetViews(&views);
  auto r = qp.Run("{ x | student(x) & ~phd-student(x) }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answer.relation, UnaryStrings({"bob"}));
}

TEST(ViewProcessorTest, ViewsAgreeAcrossStrategies) {
  Database db = MakeDb();
  ViewSet views;
  ASSERT_TRUE(
      views.DefineFromText("db-lecture", "{ y | lecture(y, db) }").ok());
  ASSERT_TRUE(views.DefineFromText(
                       "phd-student", "{ x | student(x) & makes(x, phd) }")
                  .ok());
  QueryProcessor qp(&db);
  qp.SetViews(&views);
  const char* text =
      "{ x | phd-student(x) & (forall y: db-lecture(y) -> attends(x, y)) }";
  auto reference = qp.Run(text, Strategy::kNestedLoop);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (Strategy s : {Strategy::kBry, Strategy::kClassical}) {
    auto got = qp.Run(text, s);
    ASSERT_TRUE(got.ok()) << StrategyName(s) << ": " << got.status();
    EXPECT_EQ(got->answer.relation, reference->answer.relation)
        << StrategyName(s);
  }
}

}  // namespace
}  // namespace bryql
