#include "algebra/cost_model.h"

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "storage/builder.h"
#include "workload/university.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  Relation big(2), small(1);
  for (int i = 0; i < 1000; ++i) {
    big.Insert(Ints({i, i % 10}));
    if (i < 50) small.Insert(Ints({i}));
  }
  db.Put("big", std::move(big));
  db.Put("small", std::move(small));
  return db;
}

TEST(CostModelTest, LeafCardinalitiesExact) {
  Database db = MakeDb();
  CostModel model(&db);
  auto c = model.Estimate(Expr::Scan("big"));
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->rows, 1000.0);
  auto lit = model.Estimate(Expr::Literal(UnaryInts({1, 2, 3})));
  ASSERT_TRUE(lit.ok());
  EXPECT_DOUBLE_EQ(lit->rows, 3.0);
}

TEST(CostModelTest, SelectionReducesRows) {
  Database db = MakeDb();
  CostModel model(&db);
  ExprPtr scan = Expr::Scan("big");
  ExprPtr eq = Expr::Select(
      scan, Predicate::ColVal(CompareOp::kEq, 1, Value::Int(3)));
  ExprPtr lt = Expr::Select(
      scan, Predicate::ColVal(CompareOp::kLt, 0, Value::Int(10)));
  auto base = model.Estimate(scan);
  auto ce = model.Estimate(eq);
  auto cl = model.Estimate(lt);
  ASSERT_TRUE(ce.ok());
  EXPECT_LT(ce->rows, base->rows);
  EXPECT_LT(ce->rows, cl->rows);  // equality more selective than range
}

TEST(CostModelTest, ProductDominatesJoin) {
  Database db = MakeDb();
  CostModel model(&db);
  ExprPtr join = Expr::Join(Expr::Scan("big"), Expr::Scan("small"),
                            {{0, 0}});
  ExprPtr product = Expr::Product(Expr::Scan("big"), Expr::Scan("small"));
  auto cj = model.Estimate(join);
  auto cp = model.Estimate(product);
  ASSERT_TRUE(cj.ok());
  ASSERT_TRUE(cp.ok());
  EXPECT_LT(cj->rows, cp->rows);
  EXPECT_LT(cj->cost, cp->cost);
}

TEST(CostModelTest, SemiAndAntiJoinPartition) {
  Database db = MakeDb();
  CostModel model(&db);
  ExprPtr semi = Expr::SemiJoin(Expr::Scan("big"), Expr::Scan("small"),
                                {{0, 0}});
  ExprPtr anti = Expr::AntiJoin(Expr::Scan("big"), Expr::Scan("small"),
                                {{0, 0}});
  auto cs = model.Estimate(semi);
  auto ca = model.Estimate(anti);
  // Proposition 3: semi + anti = whole left side.
  EXPECT_DOUBLE_EQ(cs->rows + ca->rows, 1000.0);
}

TEST(CostModelTest, MarkJoinConstraintSavesProbes) {
  Database db = MakeDb();
  CostModel model(&db);
  ExprPtr unconstrained = Expr::MarkJoin(Expr::Scan("big"),
                                         Expr::Scan("small"), {{0, 0}});
  ExprPtr constrained = Expr::MarkJoin(Expr::Scan("big"),
                                       Expr::Scan("small"), {{0, 0}},
                                       Predicate::IsNull(1));
  auto cu = model.Estimate(unconstrained);
  auto cc = model.Estimate(constrained);
  EXPECT_LT(cc->cost, cu->cost);
  EXPECT_DOUBLE_EQ(cc->rows, cu->rows);  // mark joins preserve the left side
}

TEST(CostModelTest, MalformedPlanRejected) {
  Database db = MakeDb();
  CostModel model(&db);
  EXPECT_FALSE(model.Estimate(Expr::Scan("ghost")).ok());
  EXPECT_FALSE(
      model.Estimate(Expr::Union(Expr::Scan("big"), Expr::Scan("small")))
          .ok());
}

TEST(CostModelTest, AnnotateProducesPerNodeEstimates) {
  Database db = MakeDb();
  CostModel model(&db);
  ExprPtr plan = Expr::Project(
      Expr::SemiJoin(Expr::Scan("big"), Expr::Scan("small"), {{0, 0}}),
      {0});
  auto annotated = model.Annotate(plan);
  ASSERT_TRUE(annotated.ok());
  EXPECT_NE(annotated->find("rows~"), std::string::npos);
  EXPECT_NE(annotated->find("Scan big"), std::string::npos);
}

TEST(CostModelTest, RanksBryBelowClassicalOnUniversalQuery) {
  // The model must reproduce the paper's qualitative ranking on the
  // universal-quantification query where the gap is largest.
  UniversityConfig config;
  config.students = 300;
  config.lectures = 24;
  Database db = MakeUniversity(config);
  QueryProcessor qp(&db);
  const char* text =
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }";
  auto bry = qp.Explain(text, Strategy::kBry);
  auto classical = qp.Explain(text, Strategy::kClassical);
  ASSERT_TRUE(bry.ok());
  ASSERT_TRUE(classical.ok());
  CostModel model(&db);
  auto bry_cost = model.Estimate(bry->plan);
  auto classical_cost = model.Estimate(classical->plan);
  ASSERT_TRUE(bry_cost.ok());
  ASSERT_TRUE(classical_cost.ok());
  EXPECT_LT(bry_cost->cost, classical_cost->cost);
}

TEST(CostModelTest, BooleanShapes) {
  Database db = MakeDb();
  CostModel model(&db);
  ExprPtr test = Expr::NonEmpty(Expr::Scan("big"));
  auto c = model.Estimate(Expr::BoolAnd({test, Expr::BoolNot(test)}));
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->rows, 1.0);
  EXPECT_GT(c->cost, 0.0);
}

}  // namespace
}  // namespace bryql
