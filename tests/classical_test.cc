// Focused tests of the conventional reduction baseline: prenex form,
// range products, divisions — checked against the nested-loop reference,
// including the domain-dependent shapes that force "dom" ranges.

#include "translate/classical_translator.h"

#include <gtest/gtest.h>

#include <random>

#include "core/query_processor.h"
#include "exec/executor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  db.Put("p", UnaryStrings({"a", "b"}));
  db.Put("q", StringPairs({{"a", "b"}, {"c", "d"}, {"b", "a"}}));
  db.Put("r", UnaryStrings({"b", "c"}));
  return db;
}

Relation RunClassicalOpen(const Database& db, const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  ClassicalTranslator classical(&db);
  auto plan = classical.TranslateOpen(*query);
  EXPECT_TRUE(plan.ok()) << plan.status();
  if (!plan.ok()) return Relation(0);
  Executor exec(&db);
  auto rel = exec.Evaluate(plan->expr);
  EXPECT_TRUE(rel.ok()) << rel.status();
  return rel.ok() ? *rel : Relation(0);
}

bool RunClassicalClosed(const Database& db, const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  ClassicalTranslator classical(&db);
  auto plan = classical.TranslateClosed(query->formula);
  EXPECT_TRUE(plan.ok()) << plan.status();
  if (!plan.ok()) return false;
  Executor exec(&db);
  auto value = exec.EvaluateBool(*plan);
  EXPECT_TRUE(value.ok()) << value.status();
  return value.ok() && *value;
}

TEST(ClassicalTest, ConjunctiveQuery) {
  Database db = MakeDb();
  EXPECT_EQ(RunClassicalOpen(db, "{ x | p(x) & r(x) }"),
            UnaryStrings({"b"}));
}

TEST(ClassicalTest, NegationViaAntiJoin) {
  Database db = MakeDb();
  EXPECT_EQ(RunClassicalOpen(db, "{ x | p(x) & ~r(x) }"),
            UnaryStrings({"a"}));
}

TEST(ClassicalTest, ExistentialProjection) {
  Database db = MakeDb();
  EXPECT_EQ(RunClassicalOpen(db, "{ x | exists y: q(x, y) }"),
            UnaryStrings({"a", "b", "c"}));
}

TEST(ClassicalTest, UniversalDivision) {
  Database db;
  db.Put("s", UnaryStrings({"u", "v"}));
  db.Put("t", UnaryStrings({"l1", "l2"}));
  db.Put("a", StringPairs({{"u", "l1"}, {"u", "l2"}, {"v", "l1"}}));
  EXPECT_EQ(
      RunClassicalOpen(db, "{ x | s(x) & (forall y: t(y) -> a(x, y)) }"),
      UnaryStrings({"u"}));
}

TEST(ClassicalTest, DomainDependentNegationUsesDom) {
  // ∃x ¬p(x) ∧ ¬∃y q(x,y): the witness 'd' occurs only in q's second
  // column; a purely atom-derived range for x misses it, so x must range
  // over dom.
  Database db = MakeDb();
  EXPECT_TRUE(RunClassicalClosed(db, "exists x: ~p(x) & ~(exists y: q(x, y))"));
}

TEST(ClassicalTest, NegativeOnlyOpenVariableUsesDom) {
  Database db = MakeDb();
  Relation r = RunClassicalOpen(db, "{ x | ~p(x) }");
  // Domain = {a,b,c,d}; p = {a,b}.
  EXPECT_EQ(r, UnaryStrings({"c", "d"}));
}

TEST(ClassicalTest, DisjunctionViaUnionOfDisjuncts) {
  Database db = MakeDb();
  EXPECT_EQ(RunClassicalOpen(db, "{ x | p(x) | r(x) }"),
            UnaryStrings({"a", "b", "c"}));
}

TEST(ClassicalTest, ImplicationAndIffDesugar) {
  Database db = MakeDb();
  EXPECT_TRUE(RunClassicalClosed(db, "forall x: p(x) -> (p(x) | r(x))"));
  EXPECT_TRUE(RunClassicalClosed(db, "p(a) <-> p(a)"));
  EXPECT_FALSE(RunClassicalClosed(db, "p(a) <-> r(a)"));
}

TEST(ClassicalTest, VariableShadowingRenamed) {
  // The same name quantified twice: prenexing must rename apart.
  Database db = MakeDb();
  EXPECT_TRUE(RunClassicalClosed(
      db, "(exists x: p(x)) & (exists x: r(x) & ~p(x))"));
}

TEST(ClassicalTest, ComparisonLiterals) {
  Database db;
  db.Put("n", UnaryInts({1, 2, 3, 4}));
  EXPECT_EQ(RunClassicalOpen(db, "{ x | n(x) & x > 2 }"),
            UnaryInts({3, 4}));
  EXPECT_EQ(RunClassicalOpen(db, "{ x | n(x) & ~(x = 2) }"),
            UnaryInts({1, 3, 4}));
}

TEST(ClassicalTest, RandomizedAgreementWithNestedLoop) {
  std::mt19937 rng(123);
  for (int round = 0; round < 8; ++round) {
    Database db;
    const char* domain[] = {"a", "b", "c", "d", "e"};
    Relation p(1), q(2);
    for (int i = 0; i < 5; ++i) {
      if (rng() % 2) p.Insert(Tuple({Value::String(domain[i])}));
      for (int j = 0; j < 5; ++j) {
        if (rng() % 4 == 0) {
          q.Insert(
              Tuple({Value::String(domain[i]), Value::String(domain[j])}));
        }
      }
    }
    db.Put("p", std::move(p));
    db.Put("q", std::move(q));
    QueryProcessor qp(&db);
    for (const char* text :
         {"{ x | p(x) & (exists y: q(x, y)) }",
          "{ x | p(x) & ~(exists y: q(x, y)) }",
          "{ x | p(x) & (forall y: q(x, y) -> p(y)) }",
          "exists x y: q(x, y) & ~q(y, x)",
          "forall x: p(x) -> (exists y: q(x, y) | q(y, x))"}) {
      auto reference = qp.Run(text, Strategy::kNestedLoop);
      ASSERT_TRUE(reference.ok()) << text << ": " << reference.status();
      auto classical = qp.Run(text, Strategy::kClassical);
      ASSERT_TRUE(classical.ok()) << text << ": " << classical.status();
      if (reference->answer.closed) {
        EXPECT_EQ(classical->answer.truth, reference->answer.truth)
            << text << " round " << round;
      } else {
        EXPECT_EQ(classical->answer.relation, reference->answer.relation)
            << text << " round " << round;
      }
    }
  }
}

TEST(ClassicalTest, DnfExplosionGuard) {
  // A matrix whose DNF exceeds the cap is rejected, not mis-planned.
  std::string text = "exists x: p(x)";
  std::string conj;
  for (int i = 0; i < 12; ++i) {
    conj += " & (p(x) | r(x))";
  }
  // 2^12 = 4096 disjuncts > the 256 cap.
  Database db = MakeDb();
  auto query = ParseQuery(text + conj);
  ASSERT_TRUE(query.ok());
  ClassicalTranslator classical(&db);
  auto plan = classical.TranslateClosed(query->formula);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace bryql
