#include "calculus/parser.h"

#include <gtest/gtest.h>

namespace bryql {
namespace {

FormulaPtr MustParse(const std::string& text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? r->formula : nullptr;
}

TEST(ParserTest, ClosedAtomQuery) {
  FormulaPtr f = MustParse("exists x: student(x)");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->child()->predicate(), "student");
}

TEST(ParserTest, OpenQueryTargets) {
  auto q = ParseQuery("{ x, y | member(x, y) }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->targets, (std::vector<std::string>{"x", "y"}));
  EXPECT_FALSE(q->closed());
}

TEST(ParserTest, TargetMustOccur) {
  auto q = ParseQuery("{ x, z | member(x, x) }");
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, UnboundIdentifierIsConstant) {
  // The paper's convention: enrolled(x, cs) — x quantified, cs a constant.
  FormulaPtr f = MustParse("exists x: enrolled(x, cs)");
  const auto& terms = f->child()->terms();
  EXPECT_TRUE(terms[0].is_variable());
  ASSERT_TRUE(terms[1].is_constant());
  EXPECT_EQ(terms[1].constant(), Value::String("cs"));
}

TEST(ParserTest, NumbersAndQuotedStrings) {
  FormulaPtr f = MustParse("exists x: r(x, 42, -7, 2.5, 'hello world')");
  const auto& terms = f->child()->terms();
  EXPECT_EQ(terms[1].constant(), Value::Int(42));
  EXPECT_EQ(terms[2].constant(), Value::Int(-7));
  EXPECT_EQ(terms[3].constant(), Value::Double(2.5));
  EXPECT_EQ(terms[4].constant(), Value::String("hello world"));
}

TEST(ParserTest, PrecedenceAndOverOr) {
  FormulaPtr f = MustParse("exists x: p(x) | q(x) & r(x)");
  EXPECT_EQ(f->child()->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->child()->children()[1]->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, WordConnectives) {
  FormulaPtr f = MustParse("exists x: p(x) and not q(x) or r(x)");
  EXPECT_EQ(f->child()->kind(), FormulaKind::kOr);
}

TEST(ParserTest, ImplicationRightAssociative) {
  FormulaPtr f = MustParse("forall x: p(x) -> q(x) -> r(x)");
  const FormulaPtr& body = f->child();
  EXPECT_EQ(body->kind(), FormulaKind::kImplies);
  EXPECT_EQ(body->children()[1]->kind(), FormulaKind::kImplies);
}

TEST(ParserTest, QuantifierScopeExtendsRight) {
  FormulaPtr f = MustParse("exists x: p(x) & q(x)");
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->child()->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, ParenthesesCloseScope) {
  FormulaPtr f = MustParse("(exists x: p(x)) & q(c)");
  EXPECT_EQ(f->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, MultiVariableQuantifier) {
  FormulaPtr f = MustParse("exists x y: r(x, y)");
  EXPECT_EQ(f->vars(), (std::vector<std::string>{"x", "y"}));
}

TEST(ParserTest, ComparisonOperators) {
  FormulaPtr f =
      MustParse("exists x y: r(x, y) & x != y & x < 10 & y >= 2 & x <> y");
  const auto& parts = f->child()->children();
  EXPECT_EQ(parts[1]->compare_op(), CompareOp::kNe);
  EXPECT_EQ(parts[2]->compare_op(), CompareOp::kLt);
  EXPECT_EQ(parts[3]->compare_op(), CompareOp::kGe);
  EXPECT_EQ(parts[4]->compare_op(), CompareOp::kNe);
}

TEST(ParserTest, HyphenatedPredicateNames) {
  FormulaPtr f = MustParse("exists y: cs-lecture(y)");
  EXPECT_EQ(f->child()->predicate(), "cs-lecture");
}

TEST(ParserTest, HyphenBeforeArrowIsNotIdentifier) {
  FormulaPtr f = MustParse("forall x: p(x) -> q(x)");
  EXPECT_EQ(f->child()->kind(), FormulaKind::kImplies);
}

TEST(ParserTest, PaperRunningExample) {
  // §1: a student attending all database lectures, each student attends
  // at least one lecture.
  FormulaPtr f = MustParse(
      "exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y)) & "
      "(forall z1: student(z1) -> (exists z2: attends(z1, z2)))");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->child()->children().size(), 3u);
}

TEST(ParserTest, IffParses) {
  // The quantifier scope extends right, swallowing the <->.
  FormulaPtr f = MustParse("exists x: p(x) <-> q(x)");
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->child()->kind(), FormulaKind::kIff);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("exists : p(x)").ok());
  EXPECT_FALSE(ParseQuery("p(x").ok());
  EXPECT_FALSE(ParseQuery("exists x: p(x) &").ok());
  EXPECT_FALSE(ParseQuery("{ | p(a) }").ok());
  EXPECT_FALSE(ParseQuery("exists x: 'unterminated").ok());
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST(ParserTest, QueryToString) {
  auto q = ParseQuery("{ x | p(x) & ~q(x) }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(), "{ x | p(x) & ~q(x) }");
}

TEST(ParserTest, ParseFormulaWithPreboundVars) {
  auto f = ParseFormula("p(x) & q(y)", {"x", "y"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->FreeVariables(), (std::vector<std::string>{"x", "y"}));
}

TEST(ParserTest, NestedBracesNotAllowed) {
  EXPECT_FALSE(ParseQuery("{ x | { y | p(y) } }").ok());
}

}  // namespace
}  // namespace bryql
