// Global plan invariants over the whole paper query suite — the paper's
// §3/§4 structural promises, checked for every query rather than
// hand-picked examples:
//
//   * the default translation never emits a division or a cartesian
//     product of ranges;
//   * closed queries always evaluate through a boolean/non-emptiness root;
//   * plans only reference relations that exist (validated arities);
//   * translation is deterministic.

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "workload/university.h"

namespace bryql {
namespace {

bool PlanContains(const ExprPtr& e, ExprKind kind) {
  if (e->kind() == kind) return true;
  for (const ExprPtr& c : e->children()) {
    if (PlanContains(c, kind)) return true;
  }
  return false;
}

class PlanInvariantsTest : public ::testing::Test {
 protected:
  PlanInvariantsTest() {
    UniversityConfig config;
    config.students = 50;
    config.lectures = 12;
    config.seed = 3;
    db_ = MakeUniversity(config);
  }
  Database db_;
};

TEST_F(PlanInvariantsTest, NoDivisionNoProductUnderDefaultStrategy) {
  QueryProcessor qp(&db_);
  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto exec = qp.Explain(nq.text, Strategy::kBry);
    ASSERT_TRUE(exec.ok()) << nq.name << ": " << exec.status();
    EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kDivision))
        << nq.name << "\n" << exec->plan->ToString();
    EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kGroupDivision))
        << nq.name;
    EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kProduct))
        << nq.name << "\n" << exec->plan->ToString();
  }
}

TEST_F(PlanInvariantsTest, ClosedQueriesRootInBooleans) {
  QueryProcessor qp(&db_);
  for (const NamedQuery& nq : PaperQuerySuite()) {
    if (nq.text[0] == '{') continue;
    auto exec = qp.Explain(nq.text, Strategy::kBry);
    ASSERT_TRUE(exec.ok()) << nq.name;
    ExprKind root = exec->plan->kind();
    EXPECT_TRUE(root == ExprKind::kNonEmpty || root == ExprKind::kBoolAnd ||
                root == ExprKind::kBoolOr || root == ExprKind::kBoolNot)
        << nq.name << ": " << ExprKindName(root);
  }
}

TEST_F(PlanInvariantsTest, PlansValidateAgainstCatalog) {
  QueryProcessor qp(&db_);
  for (const NamedQuery& nq : PaperQuerySuite()) {
    for (Strategy s :
         {Strategy::kBry, Strategy::kBryDivision, Strategy::kClassical}) {
      auto exec = qp.Explain(nq.text, s);
      ASSERT_TRUE(exec.ok()) << nq.name;
      EXPECT_TRUE(exec->plan->Arity(db_).ok())
          << nq.name << " [" << StrategyName(s) << "]";
    }
  }
}

TEST_F(PlanInvariantsTest, TranslationIsDeterministic) {
  QueryProcessor qp(&db_);
  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto a = qp.Explain(nq.text, Strategy::kBry);
    auto b = qp.Explain(nq.text, Strategy::kBry);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->plan->ToString(), b->plan->ToString()) << nq.name;
    EXPECT_EQ(a->rewrite_steps, b->rewrite_steps) << nq.name;
  }
}

TEST_F(PlanInvariantsTest, CanonicalFormsAreCanonical) {
  // Normalizing a canonical form is a no-op, and the result is miniscope
  // and restricted, for every suite query.
  QueryProcessor qp(&db_);
  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto exec = qp.Explain(nq.text, Strategy::kBry);
    ASSERT_TRUE(exec.ok()) << nq.name;
    auto again = Normalize(exec->canonical);
    ASSERT_TRUE(again.ok()) << nq.name;
    EXPECT_EQ(again->steps(), 0u)
        << nq.name << ": " << exec->canonical->ToString();
  }
}

}  // namespace
}  // namespace bryql
