#include "rewrite/domain_closure.h"

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "rewrite/rewriter.h"
#include "storage/builder.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  db.Put("p", UnaryStrings({"a", "b"}));
  db.Put("q", StringPairs({{"a", "b"}, {"c", "d"}}));
  return db;
}

TEST(DomainViewTest, DomResolvesToActiveDomain) {
  Database db = MakeDb();
  auto dom = db.Get("dom");
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ((*dom)->size(), 4u);  // a, b, c, d
  EXPECT_EQ(*db.ArityOf("dom"), 1u);
}

TEST(DomainViewTest, DomCacheInvalidatesOnPut) {
  Database db = MakeDb();
  EXPECT_EQ((*db.Get("dom"))->size(), 4u);
  db.Put("r", UnaryStrings({"z"}));
  EXPECT_EQ((*db.Get("dom"))->size(), 5u);
}

TEST(DomainViewTest, UserRelationShadowsDom) {
  Database db = MakeDb();
  db.Put("dom", UnaryStrings({"only"}));
  EXPECT_EQ((*db.Get("dom"))->size(), 1u);
}

TEST(DomainClosureTest, RestrictedQueriesUnchanged) {
  auto f = ParseFormula("exists x: p(x) & ~q(x, x)");
  ASSERT_TRUE(f.ok());
  auto norm = Normalize(*f);
  ASSERT_TRUE(norm.ok());
  auto fixed = ApplyDomainClosure(norm->formula, {});
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(Formula::Equal(*fixed, norm->formula));
}

TEST(DomainClosureTest, InsertsDomForNegatedVariable) {
  auto f = ParseFormula("exists x: ~p(x)");
  ASSERT_TRUE(f.ok());
  auto fixed = ApplyDomainClosure(*f, {});
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ((*fixed)->ToString(), "exists x: dom(x) & ~p(x)");
}

TEST(DomainClosureTest, OnlyUnrangedVariablesGetDom) {
  auto f = ParseFormula("exists x y: p(x) & ~q(x, y)");
  ASSERT_TRUE(f.ok());
  auto fixed = ApplyDomainClosure(*f, {});
  ASSERT_TRUE(fixed.ok());
  std::string s = (*fixed)->ToString();
  EXPECT_NE(s.find("dom(y)"), std::string::npos) << s;
  EXPECT_EQ(s.find("dom(x)"), std::string::npos) << s;
}

TEST(DomainClosureTest, OpenQueryTargets) {
  auto q = ParseQuery("{ x | ~p(x) }");
  ASSERT_TRUE(q.ok());
  auto fixed = ApplyDomainClosure(q->formula, {"x"});
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ((*fixed)->ToString(), "dom(x) & ~p(x)");
}

TEST(DomainClosureProcessorTest, DisabledRejectsUnrestricted) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto r = qp.Run("{ x | ~p(x) }");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(DomainClosureProcessorTest, EnabledEvaluatesComplement) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  qp.EnableDomainClosure();
  auto r = qp.Run("{ x | ~p(x) }");
  ASSERT_TRUE(r.ok()) << r.status();
  // Domain {a,b,c,d} minus p {a,b}.
  EXPECT_EQ(r->answer.relation, UnaryStrings({"c", "d"}));
}

TEST(DomainClosureProcessorTest, AgreesAcrossStrategies) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  qp.EnableDomainClosure();
  for (const char* text :
       {"{ x | ~p(x) }", "{ x, y | q(x, y) | q(y, x) & ~p(y) }",
        "exists x: ~p(x) & ~(exists y: q(x, y))"}) {
    auto reference = qp.Run(text, Strategy::kNestedLoop);
    ASSERT_TRUE(reference.ok()) << text << ": " << reference.status();
    for (Strategy s : {Strategy::kBry, Strategy::kClassical}) {
      auto got = qp.Run(text, s);
      ASSERT_TRUE(got.ok()) << StrategyName(s) << " " << text << ": "
                            << got.status();
      if (reference->answer.closed) {
        EXPECT_EQ(got->answer.truth, reference->answer.truth)
            << StrategyName(s) << " " << text;
      } else {
        EXPECT_EQ(got->answer.relation, reference->answer.relation)
            << StrategyName(s) << " " << text;
      }
    }
  }
}

TEST(DomainClosureProcessorTest, UniversalOverDomain) {
  // ∀x dom-ranged: "is every value in p?" — false here.
  Database db = MakeDb();
  QueryProcessor qp(&db);
  qp.EnableDomainClosure();
  auto r = qp.Run("forall x: dom(x) -> p(x)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->answer.truth);
  Database tiny;
  tiny.Put("p", UnaryStrings({"a"}));
  tiny.Put("q", StringPairs({{"a", "a"}}));
  QueryProcessor qp2(&tiny);
  qp2.EnableDomainClosure();
  auto all = qp2.Run("forall x: dom(x) -> p(x)");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_TRUE(all->answer.truth);
}

}  // namespace
}  // namespace bryql
