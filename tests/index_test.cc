// Secondary hash indexes: correctness, incremental maintenance, and use
// by both evaluation engines (index lookups replace scans, visible in the
// scan counters; answers never change).

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "exec/executor.h"
#include "nestedloop/nested_loop.h"
#include "storage/builder.h"

namespace bryql {
namespace {

Relation BigPairs(size_t n) {
  Relation rel(2);
  for (size_t i = 0; i < n; ++i) {
    rel.Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                      Value::Int(static_cast<int64_t>(i % 10))}));
  }
  return rel;
}

TEST(RelationIndexTest, BuildAndLookup) {
  Relation rel = BigPairs(100);
  EXPECT_FALSE(rel.HasIndex(1));
  rel.BuildIndex(1);
  ASSERT_TRUE(rel.HasIndex(1));
  EXPECT_EQ(rel.Matches(1, Value::Int(3)).size(), 10u);
  EXPECT_TRUE(rel.Matches(1, Value::Int(42)).empty());
}

TEST(RelationIndexTest, MaintainedAcrossInserts) {
  Relation rel(1);
  rel.BuildIndex(0);
  rel.Insert(Ints({5}));
  rel.Insert(Ints({5}));  // duplicate: no index entry added
  rel.Insert(Ints({7}));
  EXPECT_EQ(rel.Matches(0, Value::Int(5)).size(), 1u);
  EXPECT_EQ(rel.Matches(0, Value::Int(7)).size(), 1u);
}

TEST(RelationIndexTest, InsertAfterBuildIndexIsProbeVisible) {
  // Pin the maintenance contract: rows inserted *after* BuildIndex must
  // be reachable through the per-column indexes immediately, with row
  // positions that point at the new rows — the invariant both engines'
  // index access paths (and now the columnar chooser's rival, the
  // IndexScan) depend on.
  Relation rel = BigPairs(100);
  rel.BuildIndex(0);
  rel.BuildIndex(1);
  ASSERT_TRUE(*rel.Insert(Tuple({Value::Int(1000), Value::Int(3)})));
  ASSERT_TRUE(*rel.Insert(Tuple({Value::Int(1001), Value::Int(3)})));

  const auto& hits = rel.Matches(0, Value::Int(1000));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(rel.rows()[hits[0]].at(0), Value::Int(1000));
  // Column 1 already had 10 rows with value 3; the two inserts join them.
  EXPECT_EQ(rel.Matches(1, Value::Int(3)).size(), 12u);

  // The incrementally maintained index must equal a from-scratch rebuild.
  Relation rebuilt = rel;
  rebuilt.BuildIndex(1);
  for (int v = 0; v < 10; ++v) {
    EXPECT_EQ(rel.Matches(1, Value::Int(v)),
              rebuilt.Matches(1, Value::Int(v)))
        << v;
  }
}

TEST(RelationIndexTest, RowPositionsAreValid) {
  Relation rel = BigPairs(50);
  rel.BuildIndex(0);
  for (const size_t pos : rel.Matches(0, Value::Int(7))) {
    EXPECT_EQ(rel.rows()[pos].at(0), Value::Int(7));
  }
}

TEST(DatabaseIndexTest, BuildIndexValidation) {
  Database db;
  db.Put("r", BigPairs(10));
  EXPECT_TRUE(db.BuildIndex("r", 0).ok());
  EXPECT_FALSE(db.BuildIndex("r", 5).ok());
  EXPECT_FALSE(db.BuildIndex("ghost", 0).ok());
  db.BuildAllIndexes();
  EXPECT_TRUE((*db.Get("r"))->HasIndex(1));
}

TEST(ExecutorIndexTest, SelectOverScanUsesIndex) {
  Database db;
  db.Put("r", BigPairs(1000));
  ASSERT_TRUE(db.BuildIndex("r", 1).ok());
  ExprPtr plan = Expr::Select(
      Expr::Scan("r"), Predicate::ColVal(CompareOp::kEq, 1, Value::Int(4)));
  Executor exec(&db);
  auto rel = exec.Evaluate(plan);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 100u);
  // Only the bucket rows were touched, not all 1000.
  EXPECT_EQ(exec.stats().tuples_scanned, 100u);
}

TEST(ExecutorIndexTest, ResidualConjunctsStillApply) {
  Database db;
  db.Put("r", BigPairs(1000));
  ASSERT_TRUE(db.BuildIndex("r", 1).ok());
  ExprPtr plan = Expr::Select(
      Expr::Scan("r"),
      Predicate::And({Predicate::ColVal(CompareOp::kEq, 1, Value::Int(4)),
                      Predicate::ColVal(CompareOp::kLt, 0,
                                        Value::Int(500))}));
  Executor exec(&db);
  auto rel = exec.Evaluate(plan);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 50u);
  EXPECT_EQ(exec.stats().tuples_scanned, 100u);  // bucket size
}

TEST(ExecutorIndexTest, UnindexedColumnFallsBackToScan) {
  Database db;
  db.Put("r", BigPairs(1000));
  ASSERT_TRUE(db.BuildIndex("r", 1).ok());
  ExprPtr plan = Expr::Select(
      Expr::Scan("r"), Predicate::ColVal(CompareOp::kEq, 0, Value::Int(4)));
  Executor exec(&db);
  auto rel = exec.Evaluate(plan);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_EQ(exec.stats().tuples_scanned, 1000u);
}

TEST(ExecutorIndexTest, SameAnswersWithAndWithoutIndexes) {
  Database plain, indexed;
  plain.Put("r", BigPairs(500));
  indexed.Put("r", BigPairs(500));
  indexed.BuildAllIndexes();
  ExprPtr plan = Expr::Project(
      Expr::Select(Expr::Scan("r"),
                   Predicate::ColVal(CompareOp::kEq, 1, Value::Int(7))),
      {0});
  Executor a(&plain), b(&indexed);
  auto ra = a.Evaluate(plan);
  auto rb = b.Evaluate(plan);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, *rb);
  EXPECT_LT(b.stats().tuples_scanned, a.stats().tuples_scanned);
}

TEST(NestedLoopIndexTest, BoundArgumentUsesIndex) {
  Database db;
  db.Put("attends", StringPairs({{"ann", "l1"},
                                 {"ann", "l2"},
                                 {"bob", "l1"},
                                 {"cal", "l3"}}));
  db.Put("student", UnaryStrings({"ann", "bob", "cal"}));
  Database indexed = db;
  indexed.BuildAllIndexes();
  auto query = ParseQuery("{ y | attends(ann, y) }");
  ASSERT_TRUE(query.ok());
  NestedLoopEvaluator plain(&db), fast(&indexed);
  auto ra = plain.EvaluateOpen(*query);
  auto rb = fast.EvaluateOpen(*query);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, *rb);
  EXPECT_EQ(ra->size(), 2u);
  EXPECT_EQ(plain.stats().tuples_scanned, 4u);  // full scan
  EXPECT_EQ(fast.stats().tuples_scanned, 2u);   // index bucket only
}

TEST(NestedLoopIndexTest, JoinVariableProbesThroughIndex) {
  Database db;
  Relation student(1), attends(2);
  for (int i = 0; i < 50; ++i) {
    std::string name = "s" + std::to_string(i);
    student.Insert(Tuple({Value::String(name)}));
    attends.Insert(Tuple({Value::String(name),
                          Value::String("l" + std::to_string(i % 5))}));
  }
  db.Put("student", student);
  db.Put("attends", attends);
  Database indexed = db;
  indexed.BuildAllIndexes();
  auto query = ParseQuery("{ x | student(x) & (exists y: attends(x, y)) }");
  ASSERT_TRUE(query.ok());
  NestedLoopEvaluator plain(&db), fast(&indexed);
  auto ra = plain.EvaluateOpen(*query);
  auto rb = fast.EvaluateOpen(*query);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, *rb);
  EXPECT_LT(fast.stats().tuples_scanned, plain.stats().tuples_scanned);
}

TEST(IndexEndToEndTest, StrategiesAgreeOnIndexedDatabase) {
  Database db;
  db.Put("student", UnaryStrings({"ann", "bob", "cal"}));
  db.Put("lecture", StringPairs({{"l1", "db"}, {"l2", "db"}}));
  db.Put("attends",
         StringPairs({{"ann", "l1"}, {"ann", "l2"}, {"bob", "l1"}}));
  db.BuildAllIndexes();
  QueryProcessor qp(&db);
  const char* text =
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }";
  auto reference = qp.Run(text, Strategy::kNestedLoop);
  ASSERT_TRUE(reference.ok());
  for (Strategy s : {Strategy::kBry, Strategy::kClassical}) {
    auto got = qp.Run(text, s);
    ASSERT_TRUE(got.ok()) << StrategyName(s) << ": " << got.status();
    EXPECT_EQ(got->answer.relation, reference->answer.relation);
  }
  EXPECT_EQ(reference->answer.relation, UnaryStrings({"ann"}));
}

}  // namespace
}  // namespace bryql
