#include "calculus/analysis.h"

#include <gtest/gtest.h>

#include "calculus/parser.h"

namespace bryql {
namespace {

FormulaPtr F(const std::string& text,
             const std::vector<std::string>& bound = {}) {
  auto r = ParseFormula(text, bound);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? *r : nullptr;
}

TEST(GovernsTest, PaperSection1Example) {
  // ∃x {student(x) ∧ [∀y lecture(y,db) ⇒ attends(x,y)] ∧
  //     [∀z1 student(z1) ⇒ ∃z2 attends(z1,z2)]}
  // "x governs y but none of the zi's".
  FormulaPtr f = F(
      "exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y)) & "
      "(forall z1: student(z1) -> (exists z2: attends(z1, z2)))");
  ASSERT_EQ(f->kind(), FormulaKind::kExists);
  std::set<std::string> governed = GovernedVariables({"x"}, f->child());
  EXPECT_TRUE(governed.count("y"));
  EXPECT_FALSE(governed.count("z1"));
  EXPECT_FALSE(governed.count("z2"));
}

TEST(GovernsTest, SameQuantifierDoesNotGovern) {
  // ∃x (p(x) ∧ ∃y r(x,y)): same quantifier — condition 4 fails.
  FormulaPtr f = F("exists x: p(x) & (exists y: r(x, y))");
  std::set<std::string> governed = GovernedVariables({"x"}, f->child());
  EXPECT_TRUE(governed.empty());
}

TEST(GovernsTest, NegatedExistentialActsAsUniversal) {
  // After Rules 4/5, ∀y appears as ¬∃y; the effective quantifier flips.
  FormulaPtr f = F("exists x: p(x) & ~(exists y: q(y) & ~r(x, y))");
  std::set<std::string> governed = GovernedVariables({"x"}, f->child());
  EXPECT_TRUE(governed.count("y"));
}

TEST(GovernsTest, NoSharedAtomNoGoverning) {
  // Condition 3: no atom links x and y.
  FormulaPtr f = F("exists x: p(x) & (forall y: q(y) -> s(y))");
  std::set<std::string> governed = GovernedVariables({"x"}, f->child());
  EXPECT_TRUE(governed.empty());
}

TEST(GovernsTest, TransitiveThroughIntermediate) {
  // x directly governs y (∀ under ∃, shared atom r(x,y)); y governs z
  // (∃ under ∀, shared atom s(y,z)); so x governs z transitively.
  FormulaPtr f = F(
      "exists x: p(x) & "
      "(forall y: q(y) -> r(x, y) & (exists z: s(y, z)))");
  std::set<std::string> governed = GovernedVariables({"x"}, f->child());
  EXPECT_TRUE(governed.count("y"));
  EXPECT_TRUE(governed.count("z"));
}

TEST(GovernsTest, LinkThroughGovernedVariable) {
  // Condition 3's second form: the atom links x with a variable governed
  // by y (here z), not with y itself.
  FormulaPtr f = F(
      "exists x: p(x) & "
      "(forall y: q(y) -> (exists z: s(y, z) & t(x, z)))");
  std::set<std::string> governed = GovernedVariables({"x"}, f->child());
  EXPECT_TRUE(governed.count("y"));
  EXPECT_TRUE(governed.count("z"));
}

TEST(MiniscopeTest, PaperQ1IsNotMiniscope) {
  // §2.2 Q1: ¬enrolled(x,cs) sits inside ∀y but mentions only x.
  FormulaPtr q1 = F(
      "exists x: student(x) & "
      "(forall y: cs-lecture(y) -> attends(x, y) & ~enrolled(x, cs))");
  EXPECT_FALSE(IsMiniscope(q1));
}

TEST(MiniscopeTest, PaperQ2IsMiniscope) {
  // §2.2 Q2: the equivalent miniscope form.
  FormulaPtr q2 = F(
      "exists x: student(x) & "
      "(forall y: cs-lecture(y) -> attends(x, y)) & ~enrolled(x, cs)");
  EXPECT_TRUE(IsMiniscope(q2));
}

TEST(MiniscopeTest, PaperF5IsMiniscope) {
  // §2.2: F5 = ∃x p(x) ∧ [∀y ¬q(y) ∨ r(x,y)] "is in miniscope form".
  FormulaPtr f5 = F("exists x: p(x) & (forall y: ~q(y) | r(x, y))");
  EXPECT_TRUE(IsMiniscope(f5));
}

TEST(MiniscopeTest, GroundAtomInsideQuantifierViolates) {
  FormulaPtr f = F("exists x: p(x) & q(c)");
  EXPECT_FALSE(IsMiniscope(f));
}

TEST(MiniscopeTest, AtomBoundByNestedQuantifierIsFine) {
  FormulaPtr f = F("exists x: p(x) & (exists y: r(x, y) & q(y))");
  EXPECT_TRUE(IsMiniscope(f));
}

TEST(EscapableAtomTest, DisjunctionWithFreeAtom) {
  // F1 of §2.2: ∃x p(x) ∧ (q(y) ∨ r(x)) — q(y) can escape.
  FormulaPtr f = F("exists x: p(x) & (q(y) | r(x))", {"y"});
  ASSERT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_TRUE(HasEscapableAtom({"x"}, f->child()));
}

TEST(EscapableAtomTest, GovernedAtomsDoNotEscape) {
  // All atoms mention x or the governed y.
  FormulaPtr f =
      F("exists x: p(x) & (r(x) | (forall y: q(y) -> s(x, y)))");
  EXPECT_FALSE(HasEscapableAtom({"x"}, f->child()));
}

TEST(EscapableAtomTest, UngovernedQuantifiedAtomEscapes) {
  // ∀z s(z)→t(z) is independent of x: its atoms are escapable.
  FormulaPtr f =
      F("exists x: p(x) & (r(x) | (forall z: s(z) -> t(z)))");
  EXPECT_TRUE(HasEscapableAtom({"x"}, f->child()));
}

TEST(SortACTest, CanonicalizesChildOrder) {
  FormulaPtr a = F("exists x: p(x) & q(x)");
  FormulaPtr b = F("exists x: q(x) & p(x)");
  EXPECT_FALSE(Formula::Equal(a, b));
  EXPECT_TRUE(Formula::Equal(SortAC(a), SortAC(b)));
}

TEST(SortACTest, RecursesThroughConnectives) {
  FormulaPtr a = F("~((exists x: p(x) & q(x)) | r(c))");
  FormulaPtr b = F("~(r(c) | (exists x: q(x) & p(x)))");
  EXPECT_TRUE(Formula::Equal(SortAC(a), SortAC(b)));
}

}  // namespace
}  // namespace bryql
