// Join-algorithm parity: every member of the join family — inner, semi,
// anti (complement-join), outer, mark (constrained outer-join), plus the
// difference/intersection reductions — must produce identical relations
// under hash and sort-merge lowering, in both the batched and the
// tuple-at-a-time engine. Parameterized over seeds so the inputs cover
// duplicates, empty partner sets and skewed keys.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "core/query_processor.h"
#include "exec/executor.h"
#include "storage/database.h"
#include "workload/university.h"

namespace bryql {
namespace {

/// Deterministic pseudo-random binary relation: n tuples with keys drawn
/// from [0, key_range) so cross-relation overlap is partial and skewed.
Relation RandomPairs(size_t n, int64_t key_range, uint64_t seed) {
  Relation rel(2);
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (size_t i = 0; i < n; ++i) {
    rel.Insert(
        Tuple({Value::Int(static_cast<int64_t>(next()) % key_range),
               Value::Int(static_cast<int64_t>(next()) % 5)}));
  }
  return rel;
}

struct JoinCase {
  std::string name;
  /// Builds the logical expression for this member of the join family.
  ExprPtr (*make)(ExprPtr left, ExprPtr right);
};

const JoinCase kJoinCases[] = {
    {"inner",
     [](ExprPtr l, ExprPtr r) {
       return Expr::Join(std::move(l), std::move(r), {{0, 0}}, nullptr);
     }},
    {"inner-residual",
     [](ExprPtr l, ExprPtr r) {
       // Residual over the concatenated tuple: $1 (left payload) != $3
       // (right payload).
       return Expr::Join(std::move(l), std::move(r), {{0, 0}},
                         Predicate::ColCol(CompareOp::kNe, 1, 3));
     }},
    {"semi",
     [](ExprPtr l, ExprPtr r) {
       return Expr::SemiJoin(std::move(l), std::move(r), {{0, 0}});
     }},
    {"anti",
     [](ExprPtr l, ExprPtr r) {
       return Expr::AntiJoin(std::move(l), std::move(r), {{0, 0}});
     }},
    {"outer",
     [](ExprPtr l, ExprPtr r) {
       return Expr::OuterJoin(std::move(l), std::move(r), {{0, 0}});
     }},
    {"outer-constrained",
     [](ExprPtr l, ExprPtr r) {
       return Expr::OuterJoin(std::move(l), std::move(r), {{0, 0}},
                              Predicate::ColVal(CompareOp::kLt, 1,
                                                Value::Int(3)));
     }},
    {"mark",
     [](ExprPtr l, ExprPtr r) {
       return Expr::MarkJoin(std::move(l), std::move(r), {{0, 0}});
     }},
    {"mark-constrained",
     [](ExprPtr l, ExprPtr r) {
       return Expr::MarkJoin(std::move(l), std::move(r), {{0, 0}},
                             Predicate::ColVal(CompareOp::kLt, 1,
                                               Value::Int(3)));
     }},
    {"difference",
     [](ExprPtr l, ExprPtr r) {
       return Expr::Difference(std::move(l), std::move(r));
     }},
    {"intersect",
     [](ExprPtr l, ExprPtr r) {
       return Expr::Intersect(std::move(l), std::move(r));
     }},
};

class JoinParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinParityTest, HashAndSortMergeAgreeOnEveryJoinKind) {
  const uint64_t seed = GetParam();
  Database db;
  db.Put("left", RandomPairs(60, 20, seed));
  db.Put("right", RandomPairs(40, 20, seed + 1000));

  for (const JoinCase& jc : kJoinCases) {
    const ExprPtr expr = jc.make(Expr::Scan("left"), Expr::Scan("right"));

    Relation reference{0};
    bool first = true;
    std::string reference_config;
    for (ExecOptions::Mode mode :
         {ExecOptions::Mode::kBatched, ExecOptions::Mode::kTupleAtATime}) {
      for (ExecOptions::JoinAlgorithm algo :
           {ExecOptions::JoinAlgorithm::kHash,
            ExecOptions::JoinAlgorithm::kSortMerge}) {
        ExecOptions options;
        options.mode = mode;
        options.join_algorithm = algo;
        Executor executor(&db, options);
        auto got = executor.Evaluate(expr);
        std::string config =
            std::string(mode == ExecOptions::Mode::kBatched ? "batched"
                                                            : "volcano") +
            "/" +
            (algo == ExecOptions::JoinAlgorithm::kHash ? "hash"
                                                       : "sort-merge");
        ASSERT_TRUE(got.ok())
            << jc.name << " [" << config << "] seed " << seed << ": "
            << got.status();
        if (first) {
          reference = std::move(*got);
          reference_config = config;
          first = false;
        } else {
          EXPECT_EQ(*got, reference)
              << jc.name << ": " << config << " vs " << reference_config
              << " seed " << seed;
        }
      }
    }
  }
}

/// Batch-size 1 degrades the batched engine to tuple-at-a-time data flow;
/// results must be unchanged.
TEST_P(JoinParityTest, TinyBatchesDoNotChangeAnswers) {
  const uint64_t seed = GetParam();
  Database db;
  db.Put("left", RandomPairs(50, 15, seed));
  db.Put("right", RandomPairs(30, 15, seed + 1000));

  for (const JoinCase& jc : kJoinCases) {
    const ExprPtr expr = jc.make(Expr::Scan("left"), Expr::Scan("right"));
    ExecOptions big;
    Executor ref(&db, big);
    auto expected = ref.Evaluate(expr);
    ASSERT_TRUE(expected.ok()) << jc.name << ": " << expected.status();
    for (size_t batch_size : {1u, 2u, 7u}) {
      ExecOptions options;
      options.batch_size = batch_size;
      Executor executor(&db, options);
      auto got = executor.Evaluate(expr);
      ASSERT_TRUE(got.ok()) << jc.name << ": " << got.status();
      EXPECT_EQ(*got, *expected)
          << jc.name << " batch_size=" << batch_size << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinParityTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 11u));

/// End-to-end parity on the paper suite: the QueryProcessor run under
/// sort-merge lowering agrees with the default hash lowering.
TEST(JoinParityEndToEndTest, PaperSuiteAgreesAcrossJoinAlgorithms) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = 5;
  Database db = MakeUniversity(config);

  QueryProcessor hash_qp(&db);
  QueryProcessor merge_qp(&db);
  ExecOptions merge;
  merge.join_algorithm = ExecOptions::JoinAlgorithm::kSortMerge;
  merge_qp.SetExecOptions(merge);

  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto a = hash_qp.Run(nq.text);
    auto b = merge_qp.Run(nq.text);
    ASSERT_TRUE(a.ok()) << nq.name << ": " << a.status();
    ASSERT_TRUE(b.ok()) << nq.name << ": " << b.status();
    if (a->answer.closed) {
      EXPECT_EQ(a->answer.truth, b->answer.truth) << nq.name;
    } else {
      EXPECT_EQ(a->answer.relation, b->answer.relation) << nq.name;
    }
  }
}

}  // namespace
}  // namespace bryql
