#include "algebra/simplifier.h"

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "exec/executor.h"
#include "storage/builder.h"
#include "workload/university.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  db.Put("p", UnaryInts({1, 2, 3, 4}));
  db.Put("q", UnaryInts({2, 4}));
  db.Put("r", *Relation::FromRows({Ints({1, 10}), Ints({2, 20})}));
  return db;
}

ExprPtr Simplified(const Database& db, const ExprPtr& e) {
  auto s = SimplifyPlan(e, db);
  EXPECT_TRUE(s.ok()) << s.status();
  return s.ok() ? *s : e;
}

TEST(SimplifierTest, IdentityProjectionVanishes) {
  Database db = MakeDb();
  ExprPtr e = Expr::Project(Expr::Scan("r"), {0, 1});
  EXPECT_EQ(Simplified(db, e)->kind(), ExprKind::kScan);
}

TEST(SimplifierTest, NonIdentityProjectionStays) {
  Database db = MakeDb();
  ExprPtr e = Expr::Project(Expr::Scan("r"), {1, 0});
  EXPECT_EQ(Simplified(db, e)->kind(), ExprKind::kProject);
}

TEST(SimplifierTest, ProjectionsCompose) {
  Database db = MakeDb();
  ExprPtr e = Expr::Project(Expr::Project(Expr::Scan("r"), {1, 0}), {1});
  ExprPtr s = Simplified(db, e);
  EXPECT_EQ(s->kind(), ExprKind::kProject);
  EXPECT_EQ(s->columns(), (std::vector<size_t>{0}));
  EXPECT_EQ(s->child()->kind(), ExprKind::kScan);
}

TEST(SimplifierTest, TrueSelectionVanishes) {
  Database db = MakeDb();
  ExprPtr e = Expr::Select(Expr::Scan("p"), Predicate::True());
  EXPECT_EQ(Simplified(db, e)->kind(), ExprKind::kScan);
}

TEST(SimplifierTest, FalseSelectionFoldsToEmpty) {
  Database db = MakeDb();
  ExprPtr e =
      Expr::Select(Expr::Scan("p"), Predicate::Not(Predicate::True()));
  ExprPtr s = Simplified(db, e);
  EXPECT_EQ(s->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(s->literal().empty());
}

TEST(SimplifierTest, SelectionsMerge) {
  Database db = MakeDb();
  ExprPtr e = Expr::Select(
      Expr::Select(Expr::Scan("p"),
                   Predicate::ColVal(CompareOp::kGt, 0, Value::Int(1))),
      Predicate::ColVal(CompareOp::kLt, 0, Value::Int(4)));
  ExprPtr s = Simplified(db, e);
  EXPECT_EQ(s->kind(), ExprKind::kSelect);
  EXPECT_EQ(s->child()->kind(), ExprKind::kScan);
}

TEST(SimplifierTest, EmptyInputsFold) {
  Database db = MakeDb();
  ExprPtr empty = Expr::Literal(Relation(1));
  EXPECT_EQ(Simplified(db, Expr::Join(Expr::Scan("p"), empty, {{0, 0}}))
                ->kind(),
            ExprKind::kLiteral);
  EXPECT_EQ(Simplified(db, Expr::Union(Expr::Scan("p"), empty))->kind(),
            ExprKind::kScan);
  EXPECT_EQ(Simplified(db, Expr::AntiJoin(Expr::Scan("p"), empty, {{0, 0}}))
                ->kind(),
            ExprKind::kScan);
  EXPECT_EQ(
      Simplified(db, Expr::Difference(empty, Expr::Scan("p")))->kind(),
      ExprKind::kLiteral);
}

TEST(SimplifierTest, CascadingFolds) {
  Database db = MakeDb();
  // σ_false over p, joined with q, projected: everything collapses.
  ExprPtr e = Expr::Project(
      Expr::Join(Expr::Select(Expr::Scan("p"),
                              Predicate::Not(Predicate::True())),
                 Expr::Scan("q"), {{0, 0}}),
      {0});
  ExprPtr s = Simplified(db, e);
  EXPECT_EQ(s->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(s->literal().empty());
}

TEST(SimplifierTest, PreservesSemanticsOnPaperSuitePlans) {
  UniversityConfig config;
  config.students = 60;
  config.lectures = 12;
  Database db = MakeUniversity(config);
  QueryProcessor qp(&db);
  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto exec = qp.Explain(nq.text, Strategy::kBry);
    ASSERT_TRUE(exec.ok()) << nq.name << ": " << exec.status();
    auto simplified = SimplifyPlan(exec->plan, db);
    ASSERT_TRUE(simplified.ok()) << nq.name;
    EXPECT_LE((*simplified)->Size(), exec->plan->Size()) << nq.name;
    Executor a(&db), b(&db);
    if (nq.text[0] == '{') {
      auto before = a.Evaluate(exec->plan);
      auto after = b.Evaluate(*simplified);
      ASSERT_TRUE(before.ok() && after.ok()) << nq.name;
      EXPECT_EQ(*before, *after) << nq.name;
    } else {
      auto before = a.EvaluateBool(exec->plan);
      auto after = b.EvaluateBool(*simplified);
      ASSERT_TRUE(before.ok() && after.ok()) << nq.name;
      EXPECT_EQ(*before, *after) << nq.name;
    }
  }
}

TEST(SimplifierTest, MalformedPlanRejected) {
  Database db = MakeDb();
  EXPECT_FALSE(SimplifyPlan(Expr::Scan("ghost"), db).ok());
}

}  // namespace
}  // namespace bryql
