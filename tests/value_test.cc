#include "common/value.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace bryql {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::Null().kind(), ValueKind::kNull);
  EXPECT_EQ(Value::Mark().kind(), ValueKind::kMark);
  EXPECT_EQ(Value::Int(7).kind(), ValueKind::kInt);
  EXPECT_EQ(Value::Double(1.5).kind(), ValueKind::kDouble);
  EXPECT_EQ(Value::String("db").kind(), ValueKind::kString);
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("db").AsString(), "db");
}

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_mark());
}

TEST(ValueTest, NullAndMarkAreDistinctSingletons) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Mark(), Value::Mark());
  EXPECT_NE(Value::Null(), Value::Mark());
  EXPECT_NE(Value::Null(), Value::Int(0));
  EXPECT_NE(Value::Mark(), Value::String(""));
}

TEST(ValueTest, EqualityWithinKind) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
  EXPECT_GT(Value::Double(3.5), Value::Int(3));
}

TEST(ValueTest, CrossKindNeverEqualForNonNumerics) {
  EXPECT_NE(Value::String("2"), Value::Int(2));
  EXPECT_NE(Value::Null(), Value::String(""));
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::set<Value> ordered = {Value::Null(), Value::Mark(), Value::Int(1),
                             Value::Int(2), Value::Double(1.5),
                             Value::String("a")};
  EXPECT_EQ(ordered.size(), 6u);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(2));
  EXPECT_TRUE(set.count(Value::Double(2.0)));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "∅");
  EXPECT_EQ(Value::Mark().ToString(), "⊥");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("db").ToString(), "'db'");
}

TEST(ValueTest, ComparisonOperators) {
  EXPECT_LE(Value::Int(1), Value::Int(1));
  EXPECT_GE(Value::Int(1), Value::Int(1));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_GT(Value::String("b"), Value::String("a"));
}

}  // namespace
}  // namespace bryql
