#include "exec/executor.h"

#include <gtest/gtest.h>

#include "storage/builder.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  db.Put("p", UnaryStrings({"a", "b", "c", "d"}));
  db.Put("member", StringPairs({{"ann", "cs"},
                                {"bob", "cs"},
                                {"cal", "math"},
                                {"dee", "physics"}}));
  db.Put("skill", StringPairs({{"ann", "db"}, {"cal", "db"}, {"bob", "ai"}}));
  db.Put("attends",
         StringPairs({{"ann", "l1"}, {"ann", "l2"}, {"bob", "l1"}}));
  db.Put("lecture", UnaryStrings({"l1", "l2"}));
  return db;
}

Relation Eval(const Database& db, const ExprPtr& e) {
  Executor exec(&db);
  auto r = exec.Evaluate(e);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : Relation(0);
}

TEST(ExecutorTest, ScanAndSelect) {
  Database db = MakeDb();
  Relation r = Eval(
      db, Expr::Select(Expr::Scan("member"),
                       Predicate::ColVal(CompareOp::kEq, 1,
                                         Value::String("cs"))));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Strs({"ann", "cs"})));
}

TEST(ExecutorTest, ProjectDeduplicates) {
  Database db = MakeDb();
  Relation r = Eval(db, Expr::Project(Expr::Scan("member"), {1}));
  EXPECT_EQ(r.size(), 3u);  // cs, math, physics
}

TEST(ExecutorTest, Product) {
  Database db = MakeDb();
  Relation r = Eval(db, Expr::Product(Expr::Scan("lecture"),
                                      Expr::Scan("p")));
  EXPECT_EQ(r.size(), 8u);
  EXPECT_EQ(r.arity(), 2u);
}

TEST(ExecutorTest, EquiJoin) {
  Database db = MakeDb();
  Relation r = Eval(db, Expr::Join(Expr::Scan("member"),
                                   Expr::Scan("skill"), {{0, 0}}));
  // ann x (ann,db), bob x (bob,ai), cal x (cal,db)
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.arity(), 4u);
  EXPECT_TRUE(r.Contains(Strs({"ann", "cs", "ann", "db"})));
}

TEST(ExecutorTest, JoinWithResidual) {
  Database db = MakeDb();
  Relation r = Eval(
      db, Expr::Join(Expr::Scan("member"), Expr::Scan("skill"), {{0, 0}},
                     Predicate::ColVal(CompareOp::kEq, 3,
                                       Value::String("db"))));
  EXPECT_EQ(r.size(), 2u);
}

TEST(ExecutorTest, SemiJoin) {
  Database db = MakeDb();
  Relation r = Eval(db, Expr::SemiJoin(Expr::Scan("member"),
                                       Expr::Scan("skill"), {{0, 0}}));
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_FALSE(r.Contains(Strs({"dee", "physics"})));
}

TEST(ExecutorTest, ComplementJoinDefinition6) {
  // §3.1 Q2: member(x,z) ∧ ¬skill(x,db) via complement-join.
  Database db = MakeDb();
  ExprPtr skilled_db = Expr::Select(
      Expr::Scan("skill"),
      Predicate::ColVal(CompareOp::kEq, 1, Value::String("db")));
  Relation r = Eval(db, Expr::AntiJoin(Expr::Scan("member"), skilled_db,
                                       {{0, 0}}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Strs({"bob", "cs"})));
  EXPECT_TRUE(r.Contains(Strs({"dee", "physics"})));
}

TEST(ExecutorTest, Proposition3Partition) {
  // P = π(P ⋈ Q) ∪ (P ⊼ Q) and the two parts are disjoint.
  Database db = MakeDb();
  ExprPtr member = Expr::Scan("member");
  ExprPtr skill = Expr::Scan("skill");
  Relation semi = Eval(db, Expr::SemiJoin(member, skill, {{0, 0}}));
  Relation anti = Eval(db, Expr::AntiJoin(member, skill, {{0, 0}}));
  Relation both = Eval(db, Expr::Union(Expr::SemiJoin(member, skill, {{0, 0}}),
                                       Expr::AntiJoin(member, skill,
                                                      {{0, 0}})));
  Relation base = Eval(db, member);
  EXPECT_EQ(both, base);
  EXPECT_EQ(semi.size() + anti.size(), base.size());
}

TEST(ExecutorTest, Proposition3DifferenceAsComplementJoin) {
  // If p = q arity: P − Q = P ⊼_{all cols} Q.
  Database db;
  db.Put("A", UnaryStrings({"a", "b", "c"}));
  db.Put("B", UnaryStrings({"b", "d"}));
  Relation diff = Eval(db, Expr::Difference(Expr::Scan("A"),
                                            Expr::Scan("B")));
  Relation anti = Eval(db, Expr::AntiJoin(Expr::Scan("A"), Expr::Scan("B"),
                                          {{0, 0}}));
  EXPECT_EQ(diff, anti);
  EXPECT_EQ(diff.size(), 2u);
}

TEST(ExecutorTest, UnionIntersectDifference) {
  Database db;
  db.Put("A", UnaryInts({1, 2, 3}));
  db.Put("B", UnaryInts({2, 3, 4}));
  EXPECT_EQ(Eval(db, Expr::Union(Expr::Scan("A"), Expr::Scan("B"))).size(),
            4u);
  EXPECT_EQ(
      Eval(db, Expr::Intersect(Expr::Scan("A"), Expr::Scan("B"))).size(),
      2u);
  EXPECT_EQ(
      Eval(db, Expr::Difference(Expr::Scan("A"), Expr::Scan("B"))).size(),
      1u);
}

TEST(ExecutorTest, DivisionClassic) {
  // attends ÷ lecture = students attending ALL lectures.
  Database db = MakeDb();
  Relation r = Eval(db, Expr::Division(Expr::Scan("attends"),
                                       Expr::Scan("lecture")));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Strs({"ann"})));
}

TEST(ExecutorTest, GroupDivisionExactPerGroup) {
  // D = [keep=x, group=y, value=z]; T = [group=y, value=z].
  // x qualifies with y iff x pairs with every z of y's group.
  Database db;
  Relation d(3), t(2);
  // Group y=1 has values {1,2}; group y=2 has value {3}.
  t.Insert(Ints({1, 1}));
  t.Insert(Ints({1, 2}));
  t.Insert(Ints({2, 3}));
  // x=10 covers group 1 fully; x=20 covers it partially; x=30 covers
  // group 2.
  d.Insert(Ints({10, 1, 1}));
  d.Insert(Ints({10, 1, 2}));
  d.Insert(Ints({20, 1, 1}));
  d.Insert(Ints({30, 2, 3}));
  d.Insert(Ints({30, 2, 99}));  // extra value not in T: irrelevant
  db.Put("D", std::move(d));
  db.Put("T", std::move(t));
  Relation r = Eval(db, Expr::GroupDivision(Expr::Scan("D"),
                                            Expr::Scan("T"), 1));
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Ints({10, 1})));
  EXPECT_TRUE(r.Contains(Ints({30, 2})));
  EXPECT_FALSE(r.Contains(Ints({20, 1})));
}

TEST(ExecutorTest, GroupDivisionDiffersFromPlainDivision) {
  // The paper's literal case-5 expression divides by *all* z of T; the
  // per-group form divides by the z's of the matching group only.
  Database db;
  Relation d(2), t(2);
  t.Insert(Ints({1, 1}));
  t.Insert(Ints({2, 2}));  // group 2 demands z=2, group 1 demands z=1
  d.Insert(Ints({1, 1}));  // (group=1, z=1): full for group 1
  db.Put("D", std::move(d));
  db.Put("T", std::move(t));
  // Group division (keep arity 0): (1) qualifies.
  Relation grouped = Eval(db, Expr::GroupDivision(Expr::Scan("D"),
                                                  Expr::Scan("T"), 1));
  EXPECT_TRUE(grouped.Contains(Ints({1})));
  // Plain division by π_z(T) = {1,2} demands both values: empty.
  Relation plain =
      Eval(db, Expr::Division(Expr::Scan("D"),
                              Expr::Literal(UnaryInts({1, 2}))));
  EXPECT_TRUE(plain.empty());
}

TEST(ExecutorTest, GroupDivisionEmptyInputs) {
  Database db;
  db.Put("D", Relation(3));
  db.Put("T", Relation(2));
  Relation r = Eval(db, Expr::GroupDivision(Expr::Scan("D"),
                                            Expr::Scan("T"), 1));
  EXPECT_TRUE(r.empty());
}

TEST(ExecutorTest, GroupDivisionArityValidation) {
  Database db;
  db.Put("D", Relation(3));
  db.Put("T", Relation(2));
  // group_arity 0 and >= divisor arity are malformed.
  EXPECT_FALSE(Expr::GroupDivision(Expr::Scan("D"), Expr::Scan("T"), 0)
                   ->Arity(db)
                   .ok());
  EXPECT_FALSE(Expr::GroupDivision(Expr::Scan("D"), Expr::Scan("T"), 2)
                   ->Arity(db)
                   .ok());
  EXPECT_EQ(*Expr::GroupDivision(Expr::Scan("D"), Expr::Scan("T"), 1)
                 ->Arity(db),
            2u);
}

TEST(ExecutorTest, GroupCountPerGroup) {
  Database db;
  Relation r(2);
  r.Insert(Ints({1, 10}));
  r.Insert(Ints({1, 20}));
  r.Insert(Ints({2, 10}));
  db.Put("r", std::move(r));
  Relation counts = Eval(db, Expr::GroupCount(Expr::Scan("r"), 1));
  EXPECT_EQ(counts.arity(), 2u);
  EXPECT_TRUE(counts.Contains(Ints({1, 2})));
  EXPECT_TRUE(counts.Contains(Ints({2, 1})));
  EXPECT_EQ(counts.size(), 2u);
}

TEST(ExecutorTest, GroupCountTotalWithZeroGroups) {
  Database db;
  db.Put("r", UnaryInts({5, 6, 7}));
  Relation total = Eval(db, Expr::GroupCount(Expr::Scan("r"), 0));
  EXPECT_EQ(total.arity(), 1u);
  EXPECT_EQ(total.size(), 1u);
  EXPECT_TRUE(total.Contains(Ints({3})));
}

TEST(ExecutorTest, GroupCountOfEmptyInputIsEmpty) {
  Database db;
  db.Put("r", Relation(2));
  Relation counts = Eval(db, Expr::GroupCount(Expr::Scan("r"), 1));
  EXPECT_TRUE(counts.empty());
}

TEST(ExecutorTest, DivisionByEmptyDivisorKeepsAllPrefixes) {
  Database db = MakeDb();
  db.Put("none", Relation(1));
  Relation r = Eval(db, Expr::Division(Expr::Scan("attends"),
                                       Expr::Scan("none")));
  EXPECT_EQ(r.size(), 2u);  // ann, bob
}

TEST(ExecutorTest, OuterJoinPadsWithNull) {
  Database db = MakeDb();
  Relation r = Eval(db, Expr::OuterJoin(Expr::Scan("p"),
                                        Expr::Scan("skill"), {{0, 0}}));
  EXPECT_EQ(r.size(), 4u);  // p preserved (no skill rows match p values)
  for (const Tuple& t : r.rows()) {
    EXPECT_TRUE(t.at(1).is_null());
  }
}

TEST(ExecutorTest, MarkJoinProducesMarks) {
  Database db = MakeDb();
  Relation r = Eval(db, Expr::MarkJoin(Expr::Scan("member"),
                                       Expr::Scan("skill"), {{0, 0}}));
  EXPECT_EQ(r.arity(), 3u);
  size_t marked = 0;
  for (const Tuple& t : r.rows()) {
    if (t.at(2).is_mark()) ++marked;
  }
  EXPECT_EQ(marked, 3u);  // ann, bob, cal have skills
}

TEST(ExecutorTest, BooleanShortCircuit) {
  Database db = MakeDb();
  ExprPtr t = Expr::NonEmpty(Expr::Scan("p"));
  ExprPtr f = Expr::NonEmpty(Expr::Literal(Relation(1)));
  Executor exec(&db);
  EXPECT_TRUE(*exec.EvaluateBool(t));
  EXPECT_FALSE(*exec.EvaluateBool(f));
  EXPECT_FALSE(*exec.EvaluateBool(Expr::BoolAnd({t, f})));
  EXPECT_TRUE(*exec.EvaluateBool(Expr::BoolOr({f, t})));
  EXPECT_TRUE(*exec.EvaluateBool(Expr::BoolNot(f)));
}

TEST(ExecutorTest, NonEmptyStopsAtFirstWitness) {
  // The §3.2 non-emptiness test: only one tuple is pulled from the scan.
  Database db;
  Relation big(1);
  for (int i = 0; i < 1000; ++i) big.Insert(Ints({i}));
  db.Put("big", big);
  Executor exec(&db);
  ASSERT_TRUE(*exec.EvaluateBool(Expr::NonEmpty(Expr::Scan("big"))));
  EXPECT_EQ(exec.stats().tuples_scanned, 1u);
}

TEST(ExecutorTest, NonEmptySelectScansUntilFirstHit) {
  Database db;
  Relation big(1);
  for (int i = 0; i < 1000; ++i) big.Insert(Ints({i}));
  db.Put("big", big);
  Executor exec(&db);
  ExprPtr probe = Expr::NonEmpty(Expr::Select(
      Expr::Scan("big"), Predicate::ColVal(CompareOp::kEq, 0,
                                           Value::Int(499))));
  ASSERT_TRUE(*exec.EvaluateBool(probe));
  EXPECT_EQ(exec.stats().tuples_scanned, 500u);
}

TEST(ExecutorTest, StatsCountScans) {
  Database db = MakeDb();
  Executor exec(&db);
  ASSERT_TRUE(exec.Evaluate(Expr::Scan("member")).ok());
  EXPECT_EQ(exec.stats().tuples_scanned, 4u);
  exec.ResetStats();
  EXPECT_EQ(exec.stats().tuples_scanned, 0u);
}

TEST(ExecutorTest, EmptyInputsAreHandled) {
  Database db;
  db.Put("empty", Relation(2));
  db.Put("one", StringPairs({{"a", "b"}}));
  EXPECT_EQ(Eval(db, Expr::Join(Expr::Scan("empty"), Expr::Scan("one"),
                                {{0, 0}}))
                .size(),
            0u);
  EXPECT_EQ(Eval(db, Expr::Product(Expr::Scan("one"), Expr::Scan("empty")))
                .size(),
            0u);
  EXPECT_EQ(Eval(db, Expr::AntiJoin(Expr::Scan("one"), Expr::Scan("empty"),
                                    {{0, 0}}))
                .size(),
            1u);
}

}  // namespace
}  // namespace bryql
