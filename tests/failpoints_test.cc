#include "common/failpoints.h"

#include <gtest/gtest.h>

#include <string>

#include "core/query_processor.h"
#include "workload/university.h"

namespace bryql {
namespace {

constexpr Strategy kAllStrategies[] = {
    Strategy::kBry,          Strategy::kBryDivision,
    Strategy::kQuelCounting, Strategy::kBryUnionFilters,
    Strategy::kClassical,    Strategy::kNestedLoop,
};

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

/// A query that exercises every pipeline phase: it parses, normalizes
/// (negated universal), translates, scans, joins and materializes, and is
/// supported by all six strategies.
const char kFullPipelineQuery[] =
    "{ x | student(x) & ~forall y: (lecture(y, db) -> attends(x, y)) }";

class FailpointsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoints::enabled()) {
      GTEST_SKIP() << "built without BRYQL_FAILPOINTS; nothing to inject";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(FailpointsTest, DisarmedBaselineSucceedsOnEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  for (Strategy s : kAllStrategies) {
    auto exec = qp.Run(kFullPipelineQuery, s);
    EXPECT_TRUE(exec.ok()) << StrategyName(s) << ": " << exec.status();
  }
}

/// The stress matrix: every known failpoint armed against every strategy.
/// A strategy whose pipeline passes through the site must fail with
/// exactly the injected Status; a strategy that never reaches the site
/// must succeed untouched. Either way: no crash, no partial answer
/// reported as success.
TEST_F(FailpointsTest, EveryKnownFailpointPropagatesOnEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  for (const std::string& fp : failpoints::KnownFailpoints()) {
    size_t strategies_hit = 0;
    for (Strategy s : kAllStrategies) {
      failpoints::DisarmAll();
      // A successful run caches its plan; flush so preparation-phase
      // sites (parse/rewrite/translate/lower) stay on the next run's path.
      qp.ClearPlanCache();
      failpoints::Arm(fp, Status::Internal("injected at " + fp));
      auto exec = qp.Run(kFullPipelineQuery, s);
      if (exec.ok()) continue;  // site not on this strategy's path
      EXPECT_EQ(exec.status().code(), StatusCode::kInternal)
          << fp << " on " << StrategyName(s) << ": " << exec.status();
      EXPECT_NE(exec.status().message().find("injected at " + fp),
                std::string::npos)
          << fp << " on " << StrategyName(s)
          << " failed with an unrelated error: " << exec.status();
      ++strategies_hit;
    }
    EXPECT_GE(strategies_hit, 1u)
        << "failpoint '" << fp << "' was reached by no strategy — dead site?";
  }
}

TEST_F(FailpointsTest, ExpectedCoverageMatrix) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  auto fails_on = [&](const char* fp, Strategy s) {
    failpoints::DisarmAll();
    // Preparation-phase sites are skipped on a plan-cache hit, which is
    // not what this matrix measures — every probe runs cold.
    qp.ClearPlanCache();
    failpoints::Arm(fp, Status::Internal(std::string("injected at ") + fp));
    auto exec = qp.Run(kFullPipelineQuery, s);
    failpoints::DisarmAll();
    return !exec.ok();
  };
  for (Strategy s : kAllStrategies) {
    // Every strategy parses.
    EXPECT_TRUE(fails_on("parse.query", s)) << StrategyName(s);
    // Every strategy except the classical reduction normalizes.
    EXPECT_EQ(fails_on("rewrite.step", s), s != Strategy::kClassical)
        << StrategyName(s);
    // Every algebraic strategy translates, lowers and opens iterators;
    // the Figure 1 interpreter does none of that but enumerates instead.
    bool algebraic = s != Strategy::kNestedLoop;
    EXPECT_EQ(fails_on("translate.plan", s), algebraic) << StrategyName(s);
    EXPECT_EQ(fails_on("exec.lower.plan", s), algebraic) << StrategyName(s);
    EXPECT_EQ(fails_on("exec.iterator.open", s), algebraic)
        << StrategyName(s);
    EXPECT_EQ(fails_on("exec.scan.open", s), algebraic) << StrategyName(s);
    EXPECT_EQ(fails_on("nestedloop.enumerate", s),
              s == Strategy::kNestedLoop)
        << StrategyName(s);
  }
}

TEST_F(FailpointsTest, SkipCountDelaysInjection) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  // parse.query is hit exactly once per *uncached* Run (a plan-cache
  // hit skips parsing entirely): skip=2 lets two cold runs pass.
  failpoints::Arm("parse.query", Status::Internal("third run fails"), 2);
  EXPECT_TRUE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  qp.ClearPlanCache();
  EXPECT_TRUE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  qp.ClearPlanCache();
  auto third = qp.Run(kFullPipelineQuery, Strategy::kBry);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().message(), "third run fails");
}

TEST_F(FailpointsTest, CachedRunSkipsPreparationFailpoints) {
  // The flip side of the matrix above: after a clean run the plan is
  // cached, so an armed preparation-phase site is simply never reached
  // — execution-phase sites still are.
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ASSERT_TRUE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  failpoints::Arm("translate.plan", Status::Internal("never reached"));
  auto cached = qp.Run(kFullPipelineQuery, Strategy::kBry);
  EXPECT_TRUE(cached.ok()) << cached.status();
  EXPECT_TRUE(cached->plan_cache_hit);
  failpoints::DisarmAll();
  failpoints::Arm("exec.scan.open", Status::Internal("still on the path"));
  EXPECT_FALSE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
}

TEST_F(FailpointsTest, DisarmRestoresCleanRuns) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  failpoints::Arm("exec.scan.open", Status::Internal("boom"));
  EXPECT_FALSE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  failpoints::Disarm("exec.scan.open");
  EXPECT_FALSE(failpoints::AnyArmed());
  auto exec = qp.Run(kFullPipelineQuery, Strategy::kBry);
  EXPECT_TRUE(exec.ok()) << exec.status();
}

TEST_F(FailpointsTest, InjectedResourceStatusKeepsItsCode) {
  // Failpoints can impersonate governor trips, proving the propagation
  // path preserves the three resource codes end to end.
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  failpoints::Arm("exec.iterator.open",
                  Status::DeadlineExceeded("injected deadline"));
  auto exec = qp.Run(kFullPipelineQuery, Strategy::kBry);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace bryql
