#include "common/failpoints.h"

#include <gtest/gtest.h>

#include <string>

#include "core/query_processor.h"
#include "workload/university.h"

namespace bryql {
namespace {

constexpr Strategy kAllStrategies[] = {
    Strategy::kBry,          Strategy::kBryDivision,
    Strategy::kQuelCounting, Strategy::kBryUnionFilters,
    Strategy::kClassical,    Strategy::kNestedLoop,
};

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

/// A query that exercises every pipeline phase: it parses, normalizes
/// (negated universal), translates, scans, joins and materializes, and is
/// supported by all six strategies.
const char kFullPipelineQuery[] =
    "{ x | student(x) & ~forall y: (lecture(y, db) -> attends(x, y)) }";

class FailpointsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoints::enabled()) {
      GTEST_SKIP() << "built without BRYQL_FAILPOINTS; nothing to inject";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(FailpointsTest, DisarmedBaselineSucceedsOnEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  for (Strategy s : kAllStrategies) {
    auto exec = qp.Run(kFullPipelineQuery, s);
    EXPECT_TRUE(exec.ok()) << StrategyName(s) << ": " << exec.status();
  }
}

/// The stress matrix: every known failpoint armed against every strategy.
/// A strategy whose pipeline passes through the site must fail with
/// exactly the injected Status; a strategy that never reaches the site
/// must succeed untouched. Either way: no crash, no partial answer
/// reported as success.
TEST_F(FailpointsTest, EveryKnownFailpointPropagatesOnEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  for (const std::string& fp : failpoints::KnownFailpoints()) {
    size_t strategies_hit = 0;
    for (Strategy s : kAllStrategies) {
      failpoints::DisarmAll();
      // A successful run caches its plan; flush so preparation-phase
      // sites (parse/rewrite/translate/lower) stay on the next run's path.
      qp.ClearPlanCache();
      failpoints::Arm(fp, Status::Internal("injected at " + fp));
      auto exec = qp.Run(kFullPipelineQuery, s);
      if (exec.ok()) continue;  // site not on this strategy's path
      EXPECT_EQ(exec.status().code(), StatusCode::kInternal)
          << fp << " on " << StrategyName(s) << ": " << exec.status();
      EXPECT_NE(exec.status().message().find("injected at " + fp),
                std::string::npos)
          << fp << " on " << StrategyName(s)
          << " failed with an unrelated error: " << exec.status();
      ++strategies_hit;
    }
    EXPECT_GE(strategies_hit, 1u)
        << "failpoint '" << fp << "' was reached by no strategy — dead site?";
  }
}

TEST_F(FailpointsTest, ExpectedCoverageMatrix) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  auto fails_on = [&](const char* fp, Strategy s) {
    failpoints::DisarmAll();
    // Preparation-phase sites are skipped on a plan-cache hit, which is
    // not what this matrix measures — every probe runs cold.
    qp.ClearPlanCache();
    failpoints::Arm(fp, Status::Internal(std::string("injected at ") + fp));
    auto exec = qp.Run(kFullPipelineQuery, s);
    failpoints::DisarmAll();
    return !exec.ok();
  };
  for (Strategy s : kAllStrategies) {
    // Every strategy parses.
    EXPECT_TRUE(fails_on("parse.query", s)) << StrategyName(s);
    // Every strategy except the classical reduction normalizes.
    EXPECT_EQ(fails_on("rewrite.step", s), s != Strategy::kClassical)
        << StrategyName(s);
    // Every algebraic strategy translates, lowers and opens iterators;
    // the Figure 1 interpreter does none of that but enumerates instead.
    bool algebraic = s != Strategy::kNestedLoop;
    EXPECT_EQ(fails_on("translate.plan", s), algebraic) << StrategyName(s);
    EXPECT_EQ(fails_on("exec.lower.plan", s), algebraic) << StrategyName(s);
    EXPECT_EQ(fails_on("exec.iterator.open", s), algebraic)
        << StrategyName(s);
    EXPECT_EQ(fails_on("exec.scan.open", s), algebraic) << StrategyName(s);
    EXPECT_EQ(fails_on("nestedloop.enumerate", s),
              s == Strategy::kNestedLoop)
        << StrategyName(s);
  }
}

TEST_F(FailpointsTest, SkipCountDelaysInjection) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  // parse.query is hit exactly once per *uncached* Run (a plan-cache
  // hit skips parsing entirely): skip=2 lets two cold runs pass.
  failpoints::Arm("parse.query", Status::Internal("third run fails"), 2);
  EXPECT_TRUE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  qp.ClearPlanCache();
  EXPECT_TRUE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  qp.ClearPlanCache();
  auto third = qp.Run(kFullPipelineQuery, Strategy::kBry);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().message(), "third run fails");
}

TEST_F(FailpointsTest, CachedRunSkipsPreparationFailpoints) {
  // The flip side of the matrix above: after a clean run the plan is
  // cached, so an armed preparation-phase site is simply never reached
  // — execution-phase sites still are.
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ASSERT_TRUE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  failpoints::Arm("translate.plan", Status::Internal("never reached"));
  auto cached = qp.Run(kFullPipelineQuery, Strategy::kBry);
  EXPECT_TRUE(cached.ok()) << cached.status();
  EXPECT_TRUE(cached->plan_cache_hit);
  failpoints::DisarmAll();
  failpoints::Arm("exec.scan.open", Status::Internal("still on the path"));
  EXPECT_FALSE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
}

TEST_F(FailpointsTest, DisarmRestoresCleanRuns) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  failpoints::Arm("exec.scan.open", Status::Internal("boom"));
  EXPECT_FALSE(qp.Run(kFullPipelineQuery, Strategy::kBry).ok());
  failpoints::Disarm("exec.scan.open");
  EXPECT_FALSE(failpoints::AnyArmed());
  auto exec = qp.Run(kFullPipelineQuery, Strategy::kBry);
  EXPECT_TRUE(exec.ok()) << exec.status();
}

TEST_F(FailpointsTest, InjectedResourceStatusKeepsItsCode) {
  // Failpoints can impersonate governor trips, proving the propagation
  // path preserves the three resource codes end to end.
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  failpoints::Arm("exec.iterator.open",
                  Status::DeadlineExceeded("injected deadline"));
  auto exec = qp.Run(kFullPipelineQuery, Strategy::kBry);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FailpointsTest, TransientInjectionKeepsItsCode) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  failpoints::Arm("exec.scan.open", Status::Transient("flaky scan"));
  auto exec = qp.Run(kFullPipelineQuery, Strategy::kBry);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kTransient);
}

TEST_F(FailpointsTest, ThrowSiteIsContainedAsInternalWithOperatorName) {
  // The exception-isolation barrier at the physical-operator dispatch:
  // a throwing operator surfaces as kInternal naming the operator, never
  // as an exception escaping Run.
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  failpoints::Arm("exec.physical.throw", Status::Internal("synthetic throw"));
  auto exec = qp.Run(kFullPipelineQuery, Strategy::kBry);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kInternal);
  EXPECT_NE(exec.status().message().find("operator '"), std::string::npos)
      << exec.status();
  EXPECT_NE(exec.status().message().find("threw"), std::string::npos)
      << exec.status();
  // The volcano engine has no physical-operator dispatch, so the site is
  // off its path — the degradation ladder's escape hatch.
  QueryOptions tuple_options;
  tuple_options.force_tuple_engine = true;
  auto volcano = qp.Run(kFullPipelineQuery, Strategy::kBry, tuple_options);
  EXPECT_TRUE(volcano.ok()) << volcano.status();
}

TEST_F(FailpointsTest, ProbabilisticScheduleIsSeedDeterministic) {
  auto pattern = [](uint64_t seed, size_t hits) {
    failpoints::DisarmAll();
    failpoints::ArmProbabilistic("chaos.test.site",
                                 Status::Transient("injected"), 0.5, seed);
    std::string fired;
    for (size_t i = 0; i < hits; ++i) {
      fired += failpoints::Hit("chaos.test.site").ok() ? '.' : 'X';
    }
    return fired;
  };
  const std::string a = pattern(42, 200);
  const std::string b = pattern(42, 200);
  EXPECT_EQ(a, b) << "same seed must give the same fault schedule";
  EXPECT_NE(a, pattern(43, 200))
      << "different seeds should give different schedules";
  // At p=0.5 over 200 hits, both outcomes must occur.
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST_F(FailpointsTest, ProbabilityExtremesNeverAndAlwaysFire) {
  failpoints::ArmProbabilistic("chaos.never", Status::Transient("x"), 0.0, 7);
  failpoints::ArmProbabilistic("chaos.always", Status::Transient("x"), 1.0, 7);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(failpoints::Hit("chaos.never").ok());
    EXPECT_FALSE(failpoints::Hit("chaos.always").ok());
  }
}

TEST_F(FailpointsTest, StatsCountHitsAndFires) {
  failpoints::ResetStats();
  failpoints::ArmProbabilistic("chaos.counted",
                               Status::Transient("x"), 0.5, 42);
  size_t fires = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (!failpoints::Hit("chaos.counted").ok()) ++fires;
  }
  auto stats = failpoints::Stats();
  ASSERT_EQ(stats.count("chaos.counted"), 1u);
  EXPECT_EQ(stats["chaos.counted"].hits, 100u);
  EXPECT_EQ(stats["chaos.counted"].fires, fires);
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 100u);
  failpoints::ResetStats();
  EXPECT_TRUE(failpoints::Stats().empty());
}

TEST_F(FailpointsTest, SpecParserArmsEveryTriggerForm) {
  ASSERT_TRUE(failpoints::ArmFromSpec(
                  "exec.scan.open, exec.hash.insert=skip2,"
                  "exec.materialize.insert=p0.25@seed42")
                  .ok());
  // Bare site: always fires, with the Transient class.
  Status bare = failpoints::Hit("exec.scan.open");
  ASSERT_FALSE(bare.ok());
  EXPECT_EQ(bare.code(), StatusCode::kTransient);
  EXPECT_NE(bare.message().find("exec.scan.open"), std::string::npos);
  // skip2: two free passes, then fires.
  EXPECT_TRUE(failpoints::Hit("exec.hash.insert").ok());
  EXPECT_TRUE(failpoints::Hit("exec.hash.insert").ok());
  EXPECT_FALSE(failpoints::Hit("exec.hash.insert").ok());
  // p0.25@seed42: some of 200 hits fire, most don't.
  size_t fires = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (!failpoints::Hit("exec.materialize.insert").ok()) ++fires;
  }
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 150u);
}

TEST_F(FailpointsTest, SpecParserRejectsMalformedEntries) {
  EXPECT_EQ(failpoints::ArmFromSpec("site=p0.5").code(),
            StatusCode::kInvalidArgument);  // missing @seed
  EXPECT_EQ(failpoints::ArmFromSpec("site=p1.5@seed1").code(),
            StatusCode::kInvalidArgument);  // probability out of range
  EXPECT_EQ(failpoints::ArmFromSpec("site=pX@seed1").code(),
            StatusCode::kInvalidArgument);  // unparsable probability
  EXPECT_EQ(failpoints::ArmFromSpec("site=p0.5@seedX").code(),
            StatusCode::kInvalidArgument);  // unparsable seed
  EXPECT_EQ(failpoints::ArmFromSpec("site=skipX").code(),
            StatusCode::kInvalidArgument);  // unparsable skip
  EXPECT_EQ(failpoints::ArmFromSpec("site=explode").code(),
            StatusCode::kInvalidArgument);  // unknown trigger
  EXPECT_EQ(failpoints::ArmFromSpec("=p0.5@seed1").code(),
            StatusCode::kInvalidArgument);  // empty site
  // Empty / whitespace-only specs are fine no-ops.
  EXPECT_TRUE(failpoints::ArmFromSpec("").ok());
  EXPECT_TRUE(failpoints::ArmFromSpec(" , ,").ok());
}

}  // namespace
}  // namespace bryql
