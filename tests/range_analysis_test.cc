#include "calculus/range_analysis.h"

#include <gtest/gtest.h>

#include "calculus/parser.h"

namespace bryql {
namespace {

FormulaPtr F(const std::string& text,
             const std::vector<std::string>& bound = {}) {
  auto r = ParseFormula(text, bound);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? *r : nullptr;
}

std::set<std::string> S(std::initializer_list<std::string> v) {
  return std::set<std::string>(v);
}

TEST(ProducedVariablesTest, AtomProducesItsVariables) {
  auto p = ProducedVariables(F("r(x, y)", {"x", "y"}), {});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, S({"x", "y"}));
}

TEST(ProducedVariablesTest, AtomWithConstantsStillProduces) {
  // Definition 1 generalization: lecture(y, db) ranges y.
  auto p = ProducedVariables(F("lecture(y, db)", {"y"}), {});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, S({"y"}));
}

TEST(ProducedVariablesTest, NegationProducesNothing) {
  EXPECT_FALSE(ProducedVariables(F("~p(x)", {"x"}), {}).has_value());
}

TEST(ProducedVariablesTest, EqualityWithConstantProduces) {
  auto p = ProducedVariables(F("x = 3", {"x"}), {});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, S({"x"}));
}

TEST(ProducedVariablesTest, EqualityOfTwoUnboundIsFilterOnly) {
  EXPECT_FALSE(ProducedVariables(F("x = y", {"x", "y"}), {}).has_value());
}

TEST(ProducedVariablesTest, EqualityWithOuterBoundVariable) {
  auto p = ProducedVariables(F("x = y", {"x", "y"}), {"y"});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, S({"x"}));
}

TEST(ProducedVariablesTest, ConjunctionUnionsProducers) {
  // Definition 1 cases 2 and 4.
  auto p = ProducedVariables(F("p(x) & r(x, y) & ~q(y)", {"x", "y"}), {});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, S({"x", "y"}));
}

TEST(ProducedVariablesTest, DisjunctionNeedsMatchingBranches) {
  // Definition 1 case 3: both branches must range the same variables.
  auto same = ProducedVariables(F("p(x) | q(x)", {"x"}), {});
  ASSERT_TRUE(same.has_value());
  EXPECT_EQ(*same, S({"x"}));
  // Mismatched branches (the paper's rejected F1 in §2.1):
  EXPECT_FALSE(
      ProducedVariables(F("r(x1) | s(x2)", {"x1", "x2"}), {}).has_value());
}

TEST(ProducedVariablesTest, ExistsProjects) {
  // Definition 1 case 5: ∃yz p(x,y,z) ranges x.
  auto p = ProducedVariables(
      F("exists y z: p(x, y, z)", {"x"}), {});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, S({"x"}));
}

TEST(IsRangeForTest, PaperQ4Range) {
  // §2.3: [professor(x) ∧ (member(x,cs) ∨ skill(x,math))] is a range for x
  // in which the disjunction is a filter.
  FormulaPtr r = F("professor(x) & (member(x, cs) | skill(x, math))", {"x"});
  EXPECT_TRUE(IsRangeFor(r, S({"x"}), {}));
}

TEST(IsRangeForTest, FreeVariableOutsideProductionFails) {
  FormulaPtr r = F("p(x) & q(y)", {"x", "y"});
  EXPECT_TRUE(IsRangeFor(r, S({"x", "y"}), {}));
  FormulaPtr bad = F("p(x) & ~q(y)", {"x", "y"});
  EXPECT_FALSE(IsRangeFor(bad, S({"x", "y"}), {}));
}

TEST(SplitTest, ProducersBeforeDependentFilters) {
  std::vector<FormulaPtr> conjuncts = {
      F("~skill(x, db)", {"x"}),
      F("member(x, z)", {"x", "z"}),
  };
  auto split = SplitProducersAndFilters(conjuncts, S({"x", "z"}), {});
  ASSERT_TRUE(split.has_value());
  ASSERT_EQ(split->ordered.size(), 2u);
  // The producer must be placed first even though the filter came first.
  EXPECT_EQ(split->ordered[0]->kind(), FormulaKind::kAtom);
  EXPECT_TRUE(split->is_producer[0]);
  EXPECT_FALSE(split->is_producer[1]);
  EXPECT_EQ(split->produced, S({"x", "z"}));
}

TEST(SplitTest, UnsafeConjunctionFails) {
  // No producer for y.
  std::vector<FormulaPtr> conjuncts = {F("p(x)", {"x"}),
                                       F("~q(y)", {"y"})};
  EXPECT_FALSE(SplitProducersAndFilters(conjuncts, S({"x", "y"}), {})
                   .has_value());
}

TEST(SplitTest, OuterVariablesCountAsBound) {
  std::vector<FormulaPtr> conjuncts = {F("~q(y)", {"y"})};
  auto split = SplitProducersAndFilters(conjuncts, {}, {"y"});
  ASSERT_TRUE(split.has_value());
  EXPECT_FALSE(split->is_producer[0]);
}

TEST(SplitTest, ChainedProducers) {
  // s(y,z) only becomes placeable after r(x,y) binds y... all producers
  // here, but the order must respect the chain given required coverage.
  std::vector<FormulaPtr> conjuncts = {F("s(y, z)", {"y", "z"}),
                                       F("r(x, y)", {"x", "y"})};
  auto split = SplitProducersAndFilters(conjuncts, S({"x", "y", "z"}), {});
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->produced, S({"x", "y", "z"}));
}

TEST(CheckRestrictedTest, AcceptsRestrictedForms) {
  EXPECT_TRUE(CheckRestricted(F("exists x: p(x) & ~q(x)")).ok());
  EXPECT_TRUE(CheckRestricted(F("forall x: p(x) -> q(x)")).ok());
  EXPECT_TRUE(CheckRestricted(F("forall x: ~p(x)")).ok());
  EXPECT_TRUE(
      CheckRestricted(F("exists x: (p(x) | q(x)) & ~r(x, x)")).ok());
}

TEST(CheckRestrictedTest, RejectsUnrestrictedForms) {
  // The paper's rejected F1 (§2.1): [r(x1) ∨ s(x2)] is not a range.
  Status s = CheckRestricted(
      F("exists x1 x2: (r(x1) | s(x2)) & ~p(x1, x2)"));
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
  // Pure negation has no range.
  EXPECT_EQ(CheckRestricted(F("exists x: ~p(x)")).code(),
            StatusCode::kUnsupported);
}

TEST(CheckRestrictedTest, NestedQuantifiersChecked) {
  EXPECT_TRUE(CheckRestricted(
                  F("exists x: p(x) & (forall y: q(y) -> r(x, y))"))
                  .ok());
  EXPECT_EQ(CheckRestricted(
                F("exists x: p(x) & (exists y: ~q(y))"))
                .code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace bryql
