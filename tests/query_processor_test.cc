#include "core/query_processor.h"

#include <gtest/gtest.h>

#include "storage/builder.h"
#include "workload/university.h"

namespace bryql {
namespace {

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

TEST(QueryProcessorTest, ClosedQueryEndToEnd) {
  Database db = MakeUniversity(SmallConfig(1));
  QueryProcessor qp(&db);
  auto exec = qp.Run("exists x: student(x)");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_TRUE(exec->answer.closed);
  EXPECT_TRUE(exec->answer.truth);
  EXPECT_NE(exec->plan, nullptr);
}

TEST(QueryProcessorTest, OpenQueryEndToEnd) {
  Database db = MakeUniversity(SmallConfig(1));
  QueryProcessor qp(&db);
  auto exec = qp.Run("{ x | student(x) & makes(x, phd) }");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_FALSE(exec->answer.closed);
  EXPECT_GT(exec->answer.relation.size(), 0u);
}

TEST(QueryProcessorTest, ExplainDoesNotExecute) {
  Database db = MakeUniversity(SmallConfig(1));
  QueryProcessor qp(&db);
  auto exec = qp.Explain("{ x | student(x) & ~skill(x, db) }");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_NE(exec->plan, nullptr);
  EXPECT_EQ(exec->stats.tuples_scanned, 0u);
}

TEST(QueryProcessorTest, ParseErrorsPropagate) {
  Database db;
  QueryProcessor qp(&db);
  EXPECT_FALSE(qp.Run("exists x: (").ok());
}

TEST(QueryProcessorTest, UnsafeQueryReportsUnsupported) {
  Database db = MakeUniversity(SmallConfig(1));
  QueryProcessor qp(&db);
  auto exec = qp.Run("exists x: ~student(x)");
  EXPECT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kUnsupported);
}

TEST(QueryProcessorTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kBry), "bry");
  EXPECT_STREQ(StrategyName(Strategy::kClassical), "classical");
  EXPECT_STREQ(StrategyName(Strategy::kNestedLoop), "nested-loop");
}

/// The whole paper query suite must agree across all strategies — the
/// headline semantic property of the reproduction.
class SuiteAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuiteAgreementTest, AllStrategiesAgreeOnPaperSuite) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor qp(&db);
  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto reference = qp.Run(nq.text, Strategy::kNestedLoop);
    ASSERT_TRUE(reference.ok())
        << nq.name << ": " << reference.status();
    for (Strategy s :
         {Strategy::kBry, Strategy::kBryDivision, Strategy::kQuelCounting,
          Strategy::kBryUnionFilters, Strategy::kClassical}) {
      auto got = qp.Run(nq.text, s);
      ASSERT_TRUE(got.ok())
          << nq.name << " [" << StrategyName(s) << "]: " << got.status();
      if (reference->answer.closed) {
        EXPECT_EQ(got->answer.truth, reference->answer.truth)
            << nq.name << " [" << StrategyName(s) << "] seed " << GetParam();
      } else {
        EXPECT_EQ(got->answer.relation, reference->answer.relation)
            << nq.name << " [" << StrategyName(s) << "] seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuiteAgreementTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 11u));

TEST(WorkloadTest, UniversityShape) {
  UniversityConfig config = SmallConfig(5);
  Database db = MakeUniversity(config);
  EXPECT_EQ((*db.Get("student"))->size(), config.students);
  EXPECT_EQ((*db.Get("professor"))->size(), config.professors);
  EXPECT_EQ((*db.Get("lecture"))->size(), config.lectures);
  EXPECT_GT((*db.Get("attends"))->size(), 0u);
  EXPECT_EQ((*db.Get("lecture"))->arity(), 2u);
  // cs-lecture = lectures with subject db.
  QueryProcessor qp(&db);
  auto a = qp.Run("{ y | cs-lecture(y) }");
  auto b = qp.Run("{ y | lecture(y, db) }");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answer.relation, b->answer.relation);
}

TEST(WorkloadTest, DeterministicForSeed) {
  Database a = MakeUniversity(SmallConfig(9));
  Database b = MakeUniversity(SmallConfig(9));
  EXPECT_EQ(*(*a.Get("attends")), *(*b.Get("attends")));
  Database c = MakeUniversity(SmallConfig(10));
  EXPECT_NE(*(*a.Get("attends")), *(*c.Get("attends")));
}

TEST(WorkloadTest, CompletionistsExist) {
  UniversityConfig config = SmallConfig(3);
  config.students = 100;
  config.completionist_fraction = 0.2;
  Database db = MakeUniversity(config);
  QueryProcessor qp(&db);
  auto r = qp.Run(
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->answer.relation.size(), 0u);
}

}  // namespace
}  // namespace bryql
