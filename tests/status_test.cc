#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"

namespace bryql {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Transient("x").code(), StatusCode::kTransient);
}

TEST(StatusTest, TransientClassification) {
  // The retryable class is exactly kTransient: resource verdicts are
  // deliberate decisions (retrying the identical request would repeat
  // them), semantic errors are properties of the query.
  EXPECT_TRUE(Status::Transient("flaky").IsTransient());
  EXPECT_FALSE(Status::Transient("flaky").IsResourceError());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsTransient());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsTransient());
  EXPECT_FALSE(Status::Cancelled("x").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::Ok().IsTransient());
}

TEST(StatusTest, ContainedExceptionTagging) {
  // Barrier-contained throws share kInternal with deterministic invariant
  // breaches but carry a tag: the tag (not the code) is what admits an
  // error to the service layer's retry class.
  Status contained = Status::ContainedException("operator 'scan' threw");
  EXPECT_EQ(contained.code(), StatusCode::kInternal);
  EXPECT_TRUE(contained.IsContainedException());
  EXPECT_FALSE(contained.IsTransient());
  EXPECT_EQ(contained.ToString(), "Internal: operator 'scan' threw");
  EXPECT_FALSE(Status::Internal("broken invariant").IsContainedException());
  EXPECT_FALSE(Status::Transient("flaky").IsContainedException());
  EXPECT_FALSE(Status::Ok().IsContainedException());
  // The tag must survive copies — retry layers inspect it many frames
  // away from the throw site.
  Status copy = contained;
  EXPECT_TRUE(copy.IsContainedException());
}

TEST(StatusTest, ResourceErrorClassification) {
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceError());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsResourceError());
  EXPECT_TRUE(Status::Cancelled("x").IsResourceError());
  EXPECT_FALSE(Status::Ok().IsResourceError());
  EXPECT_FALSE(Status::InvalidArgument("x").IsResourceError());
  EXPECT_FALSE(Status::Internal("x").IsResourceError());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("missing");
  EXPECT_EQ(os.str(), "NotFound: missing");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTransient), "Transient");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  BRYQL_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValuePath) {
  Result<int> r = Half(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = Half(3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(7);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace bryql
