#include "common/governor.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/query_processor.h"
#include "workload/university.h"

namespace bryql {
namespace {

constexpr Strategy kAllStrategies[] = {
    Strategy::kBry,          Strategy::kBryDivision,
    Strategy::kQuelCounting, Strategy::kBryUnionFilters,
    Strategy::kClassical,    Strategy::kNestedLoop,
};

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

/// A cross product: 40 students x 10 professors = 400 answers, so modest
/// budgets trip on every strategy (the classical reduction in particular
/// builds the cartesian product of the ranges).
const char kCrossProduct[] = "{ x, y | student(x) & professor(y) }";

// ---------------------------------------------------------------- unit --

TEST(ResourceGovernorTest, UnlimitedAdmitsEverything) {
  ResourceGovernor gov;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(gov.AdmitScan());
    EXPECT_TRUE(gov.AdmitMaterialize());
    EXPECT_TRUE(gov.Tick());
  }
  EXPECT_FALSE(gov.tripped());
  EXPECT_TRUE(gov.CheckNow().ok());
}

TEST(ResourceGovernorTest, ScanBudgetLatchesFirstViolation) {
  QueryOptions options;
  options.max_scanned_tuples = 3;
  ResourceGovernor gov(options);
  EXPECT_TRUE(gov.AdmitScan());
  EXPECT_TRUE(gov.AdmitScan());
  EXPECT_TRUE(gov.AdmitScan());
  EXPECT_FALSE(gov.AdmitScan());
  EXPECT_TRUE(gov.tripped());
  EXPECT_EQ(gov.status().code(), StatusCode::kResourceExhausted);
  // Once tripped, everything fails — including unrelated admissions.
  EXPECT_FALSE(gov.AdmitScan());
  EXPECT_FALSE(gov.AdmitMaterialize());
  EXPECT_FALSE(gov.Tick());
}

TEST(ResourceGovernorTest, MaterializeBudgetTrips) {
  QueryOptions options;
  options.max_materialized_tuples = 2;
  ResourceGovernor gov(options);
  EXPECT_TRUE(gov.AdmitMaterialize());
  EXPECT_TRUE(gov.AdmitMaterialize());
  EXPECT_FALSE(gov.AdmitMaterialize());
  EXPECT_EQ(gov.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGovernorTest, ExpiredDeadlineTripsOnSlowCheck) {
  QueryOptions options;
  options.deadline = std::chrono::nanoseconds(1);
  ResourceGovernor gov(options);
  // CheckNow polls immediately, regardless of the tick counter.
  Status s = gov.CheckNow();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(gov.tripped());
}

TEST(ResourceGovernorTest, TickPollsDeadlinePeriodically) {
  QueryOptions options;
  options.deadline = std::chrono::nanoseconds(1);
  ResourceGovernor gov(options);
  bool tripped = false;
  // The slow check fires within one check interval of ticks.
  for (size_t i = 0; i <= ResourceGovernor::kCheckInterval; ++i) {
    if (!gov.Tick()) {
      tripped = true;
      break;
    }
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(gov.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceGovernorTest, CancellationTokenTrips) {
  CancellationToken token;
  QueryOptions options;
  options.cancellation = &token;
  ResourceGovernor gov(options);
  EXPECT_TRUE(gov.CheckNow().ok());
  token.Cancel();
  EXPECT_EQ(gov.CheckNow().code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ResourceGovernorTest, DepthAdmission) {
  QueryOptions options;
  options.max_plan_depth = 2;
  ResourceGovernor gov(options);
  EXPECT_TRUE(gov.EnterDepth());
  EXPECT_TRUE(gov.EnterDepth());
  EXPECT_FALSE(gov.EnterDepth());
  EXPECT_EQ(gov.status().code(), StatusCode::kResourceExhausted);
  gov.ExitDepth();
  gov.ExitDepth();
}

TEST(ResourceGovernorTest, TripLatchesFirstStatusOnly) {
  ResourceGovernor gov;
  gov.Trip(Status::Internal("first"));
  gov.Trip(Status::Internal("second"));
  EXPECT_EQ(gov.status().message(), "first");
}

// ---------------------------------------------------------- end-to-end --

TEST(GovernorEndToEndTest, MaterializeBudgetTripsEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  QueryOptions options;
  options.max_materialized_tuples = 50;
  for (Strategy s : kAllStrategies) {
    auto exec = qp.Run(kCrossProduct, s, options);
    ASSERT_FALSE(exec.ok()) << StrategyName(s);
    EXPECT_EQ(exec.status().code(), StatusCode::kResourceExhausted)
        << StrategyName(s) << ": " << exec.status();
  }
}

TEST(GovernorEndToEndTest, ScanBudgetTripsEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  QueryOptions options;
  options.max_scanned_tuples = 5;
  for (Strategy s : kAllStrategies) {
    auto exec = qp.Run(kCrossProduct, s, options);
    ASSERT_FALSE(exec.ok()) << StrategyName(s);
    EXPECT_EQ(exec.status().code(), StatusCode::kResourceExhausted)
        << StrategyName(s) << ": " << exec.status();
  }
}

TEST(GovernorEndToEndTest, ExpiredDeadlineStopsEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  QueryOptions options;
  options.deadline = std::chrono::nanoseconds(1);
  for (Strategy s : kAllStrategies) {
    auto exec = qp.Run(kCrossProduct, s, options);
    ASSERT_FALSE(exec.ok()) << StrategyName(s);
    EXPECT_EQ(exec.status().code(), StatusCode::kDeadlineExceeded)
        << StrategyName(s) << ": " << exec.status();
  }
}

TEST(GovernorEndToEndTest, PreCancelledTokenStopsEveryStrategy) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  CancellationToken token;
  token.Cancel();
  QueryOptions options;
  options.cancellation = &token;
  for (Strategy s : kAllStrategies) {
    auto exec = qp.Run(kCrossProduct, s, options);
    ASSERT_FALSE(exec.ok()) << StrategyName(s);
    EXPECT_EQ(exec.status().code(), StatusCode::kCancelled)
        << StrategyName(s) << ": " << exec.status();
  }
}

TEST(GovernorEndToEndTest, CancellationFromAnotherThread) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  CancellationToken token;
  QueryOptions options;
  options.cancellation = &token;
  std::thread canceller([&token] { token.Cancel(); });
  // Whether the cancel lands before, during, or after the run, the result
  // is either a complete answer or a clean kCancelled — never a crash or
  // a partial answer reported as success.
  auto exec = qp.Run(kCrossProduct, Strategy::kBry, options);
  canceller.join();
  if (exec.ok()) {
    EXPECT_EQ(exec->answer.relation.size(), 400u);
  } else {
    EXPECT_EQ(exec.status().code(), StatusCode::kCancelled);
  }
}

TEST(GovernorEndToEndTest, RewriteStepCapReportsResourceExhausted) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  // Negated universal: normalization must push the negation through and
  // restructure the quantification, so this takes several rule steps.
  const char kRewriting[] =
      "exists x: (student(x) & ~forall y: (lecture(y, db) -> attends(x, y)))";
  auto full = qp.Run(kRewriting, Strategy::kBry);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_GT(full->rewrite_steps, 1u)
      << "query normalizes too cheaply to exercise the cap";
  QueryOptions options;
  options.max_rewrite_steps = 1;
  for (Strategy s : kAllStrategies) {
    if (s == Strategy::kClassical) continue;  // no normalization phase
    auto capped = qp.Run(kRewriting, s, options);
    ASSERT_FALSE(capped.ok()) << StrategyName(s);
    EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted)
        << StrategyName(s) << ": " << capped.status();
  }
}

TEST(GovernorEndToEndTest, FormulaDepthCapOnParsedQueries) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  // Parse with default (generous) limits, then run under a tight one:
  // the pre-parse depth check in Prepare must reject it.
  auto query = ParseQuery("exists x: ~~~~~~~~~~(student(x))");
  ASSERT_TRUE(query.ok()) << query.status();
  QueryOptions options;
  options.max_formula_depth = 3;
  for (Strategy s : kAllStrategies) {
    auto exec = qp.RunQuery(*query, s, options);
    ASSERT_FALSE(exec.ok()) << StrategyName(s);
    EXPECT_EQ(exec.status().code(), StatusCode::kResourceExhausted)
        << StrategyName(s) << ": " << exec.status();
  }
}

TEST(GovernorEndToEndTest, QueryByteCapRejectsOversizedText) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  QueryOptions options;
  options.max_query_bytes = 8;
  auto exec = qp.Run(kCrossProduct, Strategy::kBry, options);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument);
}

TEST(GovernorEndToEndTest, GenerousLimitsLeaveAnswersUnchanged) {
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  QueryOptions generous;
  generous.deadline = std::chrono::seconds(300);
  generous.max_materialized_tuples = 10'000'000;
  generous.max_scanned_tuples = 10'000'000;
  for (Strategy s : kAllStrategies) {
    auto plain = qp.Run(kCrossProduct, s);
    auto governed = qp.Run(kCrossProduct, s, generous);
    ASSERT_TRUE(plain.ok()) << StrategyName(s) << ": " << plain.status();
    ASSERT_TRUE(governed.ok())
        << StrategyName(s) << ": " << governed.status();
    EXPECT_EQ(plain->answer.relation, governed->answer.relation)
        << StrategyName(s);
  }
}

TEST(GovernorEndToEndTest, DeepFormulaWithinDeadlineOnEveryStrategy) {
  // The headline acceptance scenario: a pathologically deep formula is
  // rejected quickly and cleanly (no stack overflow, no hang) whatever
  // the strategy.
  Database db = MakeUniversity(SmallConfig(7));
  QueryProcessor qp(&db);
  std::string deep = "exists x: ";
  for (int i = 0; i < 10000; ++i) deep += "~~";
  deep += "student(x)";
  QueryOptions options;
  options.deadline = std::chrono::seconds(60);
  for (Strategy s : kAllStrategies) {
    auto exec = qp.Run(deep, s, options);
    ASSERT_FALSE(exec.ok()) << StrategyName(s);
    EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument)
        << StrategyName(s) << ": " << exec.status();
  }
}

}  // namespace
}  // namespace bryql
