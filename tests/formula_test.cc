#include "calculus/formula.h"

#include <gtest/gtest.h>

namespace bryql {
namespace {

FormulaPtr P(const char* v) { return Formula::Atom("p", {V(v)}); }
FormulaPtr Q(const char* v) { return Formula::Atom("q", {V(v)}); }

TEST(FormulaTest, AtomAccessors) {
  FormulaPtr f = Formula::Atom("speaks", {V("x"), C("french")});
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
  EXPECT_EQ(f->predicate(), "speaks");
  ASSERT_EQ(f->terms().size(), 2u);
  EXPECT_TRUE(f->terms()[0].is_variable());
  EXPECT_TRUE(f->terms()[1].is_constant());
}

TEST(FormulaTest, AndFlattensNested) {
  FormulaPtr f = Formula::And(Formula::And(P("x"), Q("x")), P("y"));
  EXPECT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->children().size(), 3u);
}

TEST(FormulaTest, SingletonNaryCollapses) {
  FormulaPtr f = Formula::And({P("x")});
  EXPECT_EQ(f->kind(), FormulaKind::kAtom);
}

TEST(FormulaTest, QuantifierMergesNested) {
  // The ∃x1...xn shorthand of §1: nested like quantifiers merge.
  FormulaPtr f = Formula::Exists({"x"}, Formula::Exists({"y"}, P("x")));
  EXPECT_EQ(f->kind(), FormulaKind::kExists);
  EXPECT_EQ(f->vars().size(), 2u);
  EXPECT_EQ(f->child()->kind(), FormulaKind::kAtom);
}

TEST(FormulaTest, QuantifierDoesNotMergeAcrossKinds) {
  FormulaPtr f = Formula::Exists({"x"}, Formula::Forall({"y"}, P("x")));
  EXPECT_EQ(f->vars().size(), 1u);
  EXPECT_EQ(f->child()->kind(), FormulaKind::kForall);
}

TEST(FormulaTest, FreeVariablesBasic) {
  FormulaPtr f = Formula::And(P("x"), Formula::Exists({"y"}, Q("y")));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"x"}));
}

TEST(FormulaTest, FreeVariablesShadowing) {
  // x free in the left conjunct, bound in the right one.
  FormulaPtr f = Formula::And(P("x"), Formula::Exists({"x"}, P("x")));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"x"}));
  FormulaPtr closed = Formula::Exists({"x"}, P("x"));
  EXPECT_TRUE(closed->FreeVariables().empty());
}

TEST(FormulaTest, FreeVariablesFirstOccurrenceOrder) {
  FormulaPtr f = Formula::And(Formula::Atom("r", {V("b"), V("a")}), P("c"));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"b", "a", "c"}));
}

TEST(FormulaTest, AllVariablesIncludesBound) {
  FormulaPtr f = Formula::Exists({"y"}, Formula::Atom("r", {V("x"), V("y")}));
  std::set<std::string> all = f->AllVariables();
  EXPECT_TRUE(all.count("x"));
  EXPECT_TRUE(all.count("y"));
}

TEST(FormulaTest, ToStringRoundTripShapes) {
  FormulaPtr f = Formula::Exists(
      {"x"}, Formula::And(P("x"), Formula::Not(Q("x"))));
  EXPECT_EQ(f->ToString(), "exists x: p(x) & ~q(x)");
}

TEST(FormulaTest, ToStringPrecedence) {
  FormulaPtr f = Formula::And(Formula::Or(P("x"), Q("x")), P("y"));
  EXPECT_EQ(f->ToString(), "(p(x) | q(x)) & p(y)");
}

TEST(FormulaTest, StructuralEquality) {
  FormulaPtr a = Formula::Exists({"x", "y"},
                                 Formula::Atom("r", {V("x"), V("y")}));
  FormulaPtr b = Formula::Exists({"y", "x"},
                                 Formula::Atom("r", {V("x"), V("y")}));
  // Variable order inside one quantifier is irrelevant (§1).
  EXPECT_TRUE(Formula::Equal(a, b));
  EXPECT_EQ(Formula::Hash(a), Formula::Hash(b));
  FormulaPtr c = Formula::Exists({"x", "y"},
                                 Formula::Atom("r", {V("y"), V("x")}));
  EXPECT_FALSE(Formula::Equal(a, c));
}

TEST(FormulaTest, SizeCountsNodes) {
  FormulaPtr f = Formula::Not(Formula::And(P("x"), Q("x")));
  EXPECT_EQ(f->Size(), 4u);
}

TEST(FormulaTest, SubstituteConstants) {
  FormulaPtr f = Formula::And(P("x"), Formula::Exists({"y"}, Formula::Atom(
                                          "r", {V("x"), V("y")})));
  std::map<std::string, Term> binding = {{"x", C("a")}};
  FormulaPtr g = Substitute(f, binding);
  EXPECT_EQ(g->ToString(), "p('a') & (exists y: r('a', y))");
}

TEST(FormulaTest, SubstituteRespectsShadowing) {
  FormulaPtr f = Formula::Exists({"x"}, P("x"));
  std::map<std::string, Term> binding = {{"x", C("a")}};
  FormulaPtr g = Substitute(f, binding);
  EXPECT_TRUE(Formula::Equal(f, g));
}

TEST(FormulaTest, NegateCompareOps) {
  EXPECT_EQ(NegateCompareOp(CompareOp::kEq), CompareOp::kNe);
  EXPECT_EQ(NegateCompareOp(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateCompareOp(CompareOp::kLe), CompareOp::kGt);
  EXPECT_EQ(NegateCompareOp(NegateCompareOp(CompareOp::kGt)), CompareOp::kGt);
}

TEST(FormulaTest, IsLiteral) {
  EXPECT_TRUE(P("x")->is_literal());
  EXPECT_TRUE(Formula::Not(P("x"))->is_literal());
  EXPECT_FALSE(Formula::Not(Formula::And(P("x"), Q("x")))->is_literal());
  EXPECT_FALSE(Formula::Exists({"x"}, P("x"))->is_literal());
}

}  // namespace
}  // namespace bryql
