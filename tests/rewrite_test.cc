#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "calculus/analysis.h"
#include "calculus/parser.h"
#include "calculus/range_analysis.h"

namespace bryql {
namespace {

FormulaPtr F(const std::string& text,
             const std::vector<std::string>& bound = {}) {
  auto r = ParseFormula(text, bound);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? *r : nullptr;
}

FormulaPtr Norm(const std::string& text,
                const std::vector<std::string>& targets = {}) {
  auto r = Normalize(F(text, targets), {});
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status();
  return r.ok() ? r->formula : nullptr;
}

TEST(RewriteRulesTest, Rule1DoubleNegation) {
  EXPECT_EQ(Norm("~~p(a)")->ToString(), "p('a')");
}

TEST(RewriteRulesTest, Rules23DeMorgan) {
  EXPECT_EQ(Norm("~(p(a) & q(b))")->ToString(), "~p('a') | ~q('b')");
  EXPECT_EQ(Norm("~(p(a) | q(b))")->ToString(), "~p('a') & ~q('b')");
}

TEST(RewriteRulesTest, NegatedQuantificationsUntouched) {
  // "Note that they do not transform negated quantifications."
  FormulaPtr f = Norm("~(exists x: p(x))");
  EXPECT_EQ(f->kind(), FormulaKind::kNot);
  EXPECT_EQ(f->child()->kind(), FormulaKind::kExists);
}

TEST(RewriteRulesTest, Rule4ForallImplication) {
  FormulaPtr f = Norm("forall x: p(x) -> q(x)");
  EXPECT_EQ(f->ToString(), "~(exists x: p(x) & ~q(x))");
}

TEST(RewriteRulesTest, Rule5ForallNegatedRange) {
  FormulaPtr f = Norm("forall x: ~p(x)");
  EXPECT_EQ(f->ToString(), "~(exists x: p(x))");
}

TEST(RewriteRulesTest, GenericForallFallback) {
  // ∀x (¬q(x) ∨ r(x)) — no explicit ⇒; handled via the generic rule plus
  // De Morgan, landing on the same canonical form as the sugared version.
  FormulaPtr a = Norm("forall x: ~q(x) | r(x)");
  FormulaPtr b = Norm("forall x: q(x) -> r(x)");
  EXPECT_TRUE(Formula::Equal(SortAC(a), SortAC(b)))
      << a->ToString() << " vs " << b->ToString();
}

TEST(RewriteRulesTest, Rule6DropsUselessQuantifier) {
  FormulaPtr f = Norm("exists x: p(a)");
  EXPECT_EQ(f->ToString(), "p('a')");
}

TEST(RewriteRulesTest, Rule7DropsUselessVariables) {
  FormulaPtr f = Norm("exists x y: p(x)");
  EXPECT_EQ(f->ToString(), "exists x: p(x)");
}

TEST(RewriteRulesTest, Rules89MiniscopeQ1) {
  // §2.2 Q1: ∃x student(x) ∧ ∀y (cs-lecture(y) ⇒ attends(x,y) ∧
  // ¬enrolled(x,cs)). The paper presents Q2 (¬enrolled pulled out of the
  // ∀y scope) as equivalent; strictly, Q1 also holds for an enrolled
  // student when there are *no* cs-lectures, so the sound canonical form
  // guards the escaped atom: (¬enrolled(x,cs) ∨ ¬∃y cs-lecture(y)).
  // Either way, ¬enrolled is evaluated once per student, not once per
  // (student, lecture) pair — the optimization §2.2 is after.
  FormulaPtr q1 = F(
      "exists x: student(x) & "
      "(forall y: cs-lecture(y) -> attends(x, y) & ~enrolled(x, cs))");
  auto norm = Normalize(q1, {});
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(IsMiniscope(norm->formula)) << norm->formula->ToString();
  FormulaPtr expected = F(
      "exists x: student(x) & ~(exists y: cs-lecture(y) & ~attends(x, y)) & "
      "(~enrolled(x, cs) | ~(exists y: cs-lecture(y)))");
  EXPECT_TRUE(Formula::Equal(SortAC(norm->formula), SortAC(expected)))
      << norm->formula->ToString();
}

TEST(RewriteRulesTest, Rules89MiniscopePlainConjunct) {
  // The unconditional Rule 8/9 case: a conjunct without the quantified
  // variable moves straight out.
  FormulaPtr f = Norm("exists y: lecture(y, db) & ~enrolled(a, cs)");
  EXPECT_EQ(f->ToString(),
            "~enrolled('a', 'cs') & (exists y: lecture(y, 'db'))");
}

TEST(RewriteRulesTest, Rules1011DistributeWhenAtomEscapes) {
  // §2.2 F1 → F4: ∃x p(x) ∧ (q(y) ∨ r(x)).
  FormulaPtr f4 = Norm("exists x: p(x) & (q(y) | r(x))", {"y"});
  EXPECT_EQ(f4->kind(), FormulaKind::kOr);
  EXPECT_TRUE(IsMiniscope(f4)) << f4->ToString();
  // Expect (q(y) & ∃x p(x)) | ∃x (p(x) & r(x)) up to ordering.
  FormulaPtr expected = F(
      "(q(y) & (exists x: p(x))) | (exists x: p(x) & r(x))", {"y"});
  EXPECT_TRUE(Formula::Equal(SortAC(f4), SortAC(expected)))
      << f4->ToString();
}

TEST(RewriteRulesTest, DisjunctiveFiltersKept) {
  // §2.3 Q1: the filter (speaks french ∨ speaks german) must NOT be
  // distributed — every disjunct's atoms mention x.
  FormulaPtr q1 = Norm(
      "exists x: ((student(x) & makes(x, phd)) | prof(x)) & "
      "(speaks(x, french) | speaks(x, german))");
  // The producer disjunction distributes (→ Q3), the filter stays.
  EXPECT_EQ(q1->kind(), FormulaKind::kOr) << q1->ToString();
  ASSERT_EQ(q1->children().size(), 2u);
  for (const FormulaPtr& branch : q1->children()) {
    ASSERT_EQ(branch->kind(), FormulaKind::kExists) << q1->ToString();
    bool has_filter_disjunction = false;
    for (const FormulaPtr& c : branch->child()->children()) {
      if (c->kind() == FormulaKind::kOr) has_filter_disjunction = true;
    }
    EXPECT_TRUE(has_filter_disjunction) << q1->ToString();
  }
}

TEST(RewriteRulesTest, RangeFilterDisjunctionKept) {
  // §2.3 Q4: [professor(x) ∧ (member(x,cs) ∨ skill(x,math))] — the
  // disjunction is a filter inside the range and must be kept.
  FormulaPtr q4 = Norm(
      "exists x: professor(x) & (member(x, cs) | skill(x, math)) & "
      "speaks(x, french)");
  EXPECT_EQ(q4->kind(), FormulaKind::kExists) << q4->ToString();
  bool kept = false;
  for (const FormulaPtr& c : q4->child()->children()) {
    if (c->kind() == FormulaKind::kOr) kept = true;
  }
  EXPECT_TRUE(kept) << q4->ToString();
}

TEST(RewriteRulesTest, Rule14SplitsQuantifiedDisjunction) {
  FormulaPtr f = Norm("exists x: p(x) | q(x)");
  EXPECT_EQ(f->ToString(), "(exists x: p(x)) | (exists x: q(x))");
}

TEST(RewriteRulesTest, Rule14DropsIrrelevantVariables) {
  FormulaPtr f = Norm("exists x y: r(x, y) | p(x)");
  EXPECT_EQ(f->ToString(), "(exists x y: r(x, y)) | (exists x: p(x))");
}

TEST(RewriteRulesTest, IffExpands) {
  FormulaPtr f = Norm("p(a) <-> q(b)");
  EXPECT_EQ(f->kind(), FormulaKind::kAnd);
}

TEST(RewriteRulesTest, ImpliesOutsideForallBecomesOr) {
  FormulaPtr f = Norm("p(a) -> q(b)");
  EXPECT_EQ(f->ToString(), "~p('a') | q('b')");
}

TEST(RewriteRulesTest, NegatedComparisonFolds) {
  FormulaPtr f = Norm("exists x: p(x) & ~(x = 3)");
  EXPECT_EQ(f->ToString(), "exists x: p(x) & x != 3");
}

TEST(RewriteRulesTest, PaperSection22MiniscopeKeepsF5) {
  // F5 is already canonical up to ∀-elimination; no distribution happens.
  FormulaPtr f5 = Norm("exists x: p(x) & (forall y: ~q(y) | r(x, y))");
  EXPECT_EQ(f5->kind(), FormulaKind::kExists);
  EXPECT_TRUE(IsMiniscope(f5));
  // The universal became ¬∃ inside the body.
  bool has_neg_exists = false;
  for (const FormulaPtr& c : f5->child()->children()) {
    if (c->kind() == FormulaKind::kNot &&
        c->child()->kind() == FormulaKind::kExists) {
      has_neg_exists = true;
    }
  }
  EXPECT_TRUE(has_neg_exists) << f5->ToString();
}

TEST(RewriteRulesTest, CanonicalFormIsRestricted) {
  // After normalization the §1 running example passes Definition 2/3.
  FormulaPtr f = Norm(
      "exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y)) & "
      "(forall z1: student(z1) -> (exists z2: attends(z1, z2)))");
  EXPECT_TRUE(CheckRestricted(f).ok()) << f->ToString();
}

TEST(RewriteRulesTest, TraceRecordsRules) {
  auto r = Normalize(F("forall x: p(x) -> q(x)"), {});
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->steps(), 1u);
  EXPECT_TRUE(r->rule_counts.count(RuleId::kForallImplication));
}

TEST(RewriteRulesTest, NormalizationIsIdempotent) {
  for (const char* text :
       {"exists x: p(x) & (q(y) | r(x))",
        "forall x: p(x) -> (exists y: r(x, y) & ~s(y))",
        "exists x: ((student(x) & makes(x, phd)) | prof(x)) & "
        "(speaks(x, french) | speaks(x, german))"}) {
    FormulaPtr once = Norm(text, {"y"});
    std::set<std::string> outer = {"y"};
    auto twice = Normalize(once, outer);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(twice->steps(), 0u) << text << " -> " << once->ToString();
  }
}

TEST(RewriteOptionsTest, MiniscopeCanBeDisabled) {
  FormulaPtr q1 = F(
      "exists x: student(x) & "
      "(forall y: cs-lecture(y) -> attends(x, y) & ~enrolled(x, cs))");
  RewriteOptions no_mini;
  no_mini.miniscope = false;
  no_mini.distribute_filter_disjunctions = false;
  auto r = Normalize(q1, {}, no_mini);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(IsMiniscope(r->formula)) << r->formula->ToString();
}

TEST(RewriteOptionsTest, ProducerDistributionCanBeDisabled) {
  RewriteOptions keep;
  keep.distribute_producer_disjunctions = false;
  auto r = Normalize(F("exists x: p(x) | q(x)"), {}, keep);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->formula->kind(), FormulaKind::kExists);
}

TEST(RewriteEngineTest, FindApplicationsLeftmostOutermost) {
  FormulaPtr f = F("~~p(a) & ~~q(b)");
  std::vector<RuleApplication> apps = FindApplications(f);
  ASSERT_GE(apps.size(), 2u);
  EXPECT_EQ(apps[0].path, (std::vector<int>{0}));
  EXPECT_EQ(apps[0].rule, RuleId::kDoubleNegation);
}

TEST(RewriteEngineTest, ApplyRuleAtPath) {
  FormulaPtr f = F("~~p(a) & q(b)");
  std::vector<RuleApplication> apps = FindApplications(f);
  ASSERT_FALSE(apps.empty());
  auto g = ApplyRule(f, apps[0]);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->ToString(), "p('a') & q('b')");
}

TEST(RewriteEngineTest, StalePathRejected) {
  FormulaPtr f = F("p(a)");
  RuleApplication bogus{RuleId::kDoubleNegation, {0, 0, 0}};
  EXPECT_FALSE(ApplyRule(f, bogus).ok());
}

}  // namespace
}  // namespace bryql
