// Unit tests of the Bry translator (§3): plan structure and semantics for
// each translation shape, against hand-checked answers.

#include "translate/translator.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "storage/builder.h"
#include "translate/classical_translator.h"

namespace bryql {
namespace {

Database PaperDb() {
  Database db;
  db.Put("member", StringPairs({{"ann", "cs"},
                                {"bob", "cs"},
                                {"cal", "math"},
                                {"dee", "physics"}}));
  db.Put("skill", StringPairs({{"ann", "db"}, {"cal", "db"}, {"bob", "ai"}}));
  db.Put("student", UnaryStrings({"ann", "bob", "cal"}));
  db.Put("lecture", StringPairs({{"l1", "db"}, {"l2", "db"}, {"l3", "ai"}}));
  db.Put("attends", StringPairs({{"ann", "l1"},
                                 {"ann", "l2"},
                                 {"bob", "l1"},
                                 {"cal", "l3"}}));
  return db;
}

/// Normalizes, translates and evaluates an open query with the Bry method.
Relation RunOpen(const Database& db, const std::string& text,
                 TranslateOptions options = {}) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  auto norm = NormalizeQuery(*query);
  EXPECT_TRUE(norm.ok()) << norm.status();
  Translator translator(&db, options);
  auto plan = translator.TranslateOpen(Query{query->targets, norm->formula});
  EXPECT_TRUE(plan.ok()) << plan.status();
  if (!plan.ok()) return Relation(0);
  Executor exec(&db);
  auto rel = exec.Evaluate(plan->expr);
  EXPECT_TRUE(rel.ok()) << rel.status() << "\n" << plan->expr->ToString();
  return rel.ok() ? *rel : Relation(0);
}

bool RunClosed(const Database& db, const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  auto norm = NormalizeQuery(*query);
  EXPECT_TRUE(norm.ok()) << norm.status();
  Translator translator(&db);
  auto plan = translator.TranslateClosed(norm->formula);
  EXPECT_TRUE(plan.ok()) << plan.status();
  if (!plan.ok()) return false;
  Executor exec(&db);
  auto value = exec.EvaluateBool(*plan);
  EXPECT_TRUE(value.ok()) << value.status();
  return value.ok() && *value;
}

TEST(TranslatorTest, Section31Q2ComplementJoin) {
  // §3.1 Q2: member(x,z) ∧ ¬skill(x,db) — members without a db skill,
  // keeping the department column.
  Database db = PaperDb();
  Relation r = RunOpen(db, "{ x, z | member(x, z) & ~skill(x, db) }");
  EXPECT_EQ(r, StringPairs({{"bob", "cs"}, {"dee", "physics"}}));
}

TEST(TranslatorTest, Section31Q2PlanIsSingleAntiJoin) {
  Database db = PaperDb();
  auto query = ParseQuery("{ x, z | member(x, z) & ~skill(x, db) }");
  auto norm = NormalizeQuery(*query);
  Translator translator(&db);
  auto plan = translator.TranslateOpen(Query{query->targets, norm->formula});
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::string s = plan->expr->ToString();
  // One complement-join over the member scan — no join + difference.
  EXPECT_NE(s.find("ComplementJoin"), std::string::npos) << s;
  EXPECT_EQ(s.find("Difference"), std::string::npos) << s;
  EXPECT_EQ(s.find("\nJoin"), std::string::npos) << s;
}

TEST(TranslatorTest, Section31Q1Projected) {
  Database db = PaperDb();
  Relation r =
      RunOpen(db, "{ x | (exists z: member(x, z)) & ~skill(x, db) }");
  EXPECT_EQ(r, UnaryStrings({"bob", "dee"}));
}

TEST(TranslatorTest, UniversalViaDoubleComplementJoin) {
  // Students attending all db lectures: only ann.
  Database db = PaperDb();
  Relation r = RunOpen(
      db,
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }");
  EXPECT_EQ(r, UnaryStrings({"ann"}));
}

TEST(TranslatorTest, UniversalViaDivision) {
  Database db = PaperDb();
  TranslateOptions options;
  options.universal = TranslateOptions::Universal::kDivision;
  Relation r = RunOpen(
      db,
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }",
      options);
  EXPECT_EQ(r, UnaryStrings({"ann"}));
}

TEST(TranslatorTest, ClosedQueriesUseNonEmptiness) {
  Database db = PaperDb();
  EXPECT_TRUE(RunClosed(db, "exists x: student(x) & attends(x, l1)"));
  EXPECT_FALSE(RunClosed(db, "exists x: student(x) & skill(x, networks)"));
  EXPECT_TRUE(RunClosed(
      db, "forall x: student(x) -> (exists y: attends(x, y))"));
  EXPECT_FALSE(RunClosed(db, "forall x: student(x) -> attends(x, l1)"));
}

TEST(TranslatorTest, BooleanCombinationOfClosedSubqueries) {
  // §3.2: conjunction of closed subqueries evaluates as a boolean
  // combination of non-emptiness tests.
  Database db = PaperDb();
  EXPECT_TRUE(RunClosed(
      db,
      "(exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y)))"
      " & (forall z1: student(z1) -> (exists z2: attends(z1, z2)))"));
}

TEST(TranslatorTest, ConstantsAndRepeatedVariables) {
  Database db;
  db.Put("edge", StringPairs({{"a", "a"}, {"a", "b"}, {"b", "b"}}));
  Relation loops = RunOpen(db, "{ x | edge(x, x) }");
  EXPECT_EQ(loops, UnaryStrings({"a", "b"}));
  Relation from_a = RunOpen(db, "{ y | edge(a, y) }");
  EXPECT_EQ(from_a, UnaryStrings({"a", "b"}));
}

TEST(TranslatorTest, ComparisonFilters) {
  Database db;
  db.Put("num", UnaryInts({1, 2, 3, 4, 5}));
  EXPECT_EQ(RunOpen(db, "{ x | num(x) & x > 3 }"), UnaryInts({4, 5}));
  EXPECT_EQ(RunOpen(db, "{ x | num(x) & ~(x >= 2) }"), UnaryInts({1}));
  EXPECT_EQ(RunOpen(db, "{ x | num(x) & 3 < x }"), UnaryInts({4, 5}));
}

TEST(TranslatorTest, EqualityProducer) {
  Database db;
  db.Put("num", UnaryInts({1, 2, 3}));
  EXPECT_EQ(RunOpen(db, "{ x | num(x) & x = 2 }"), UnaryInts({2}));
  // Alias producer: y bound to x's column.
  EXPECT_EQ(RunOpen(db, "{ x, y | num(x) & y = x }").size(), 3u);
}

TEST(TranslatorTest, DisjunctiveRangeUnion) {
  Database db = PaperDb();
  Relation r =
      RunOpen(db, "{ x | (student(x) | (exists z: member(x, z))) "
                  "& ~skill(x, db) }");
  EXPECT_EQ(r, UnaryStrings({"bob", "dee"}));
}

TEST(TranslatorTest, CorrelatedPositiveSubquery) {
  // Case 2b shape: the inner range does not bind x.
  Database db = PaperDb();
  Relation r = RunOpen(
      db, "{ x | student(x) & (exists y: lecture(y, db) & ~attends(x, y)) }");
  EXPECT_EQ(r, UnaryStrings({"bob", "cal"}));
}

TEST(TranslatorTest, ClosedGroundAtom) {
  Database db = PaperDb();
  EXPECT_TRUE(RunClosed(db, "student(ann)"));
  EXPECT_FALSE(RunClosed(db, "student(zoe)"));
  EXPECT_TRUE(RunClosed(db, "student(ann) & ~student(zoe)"));
}

TEST(TranslatorTest, RequiresCanonicalInput) {
  Database db = PaperDb();
  Translator translator(&db);
  auto raw = ParseQuery("forall x: student(x) -> attends(x, l1)");
  ASSERT_TRUE(raw.ok());
  // Without normalization the ∀ shape is rejected.
  EXPECT_FALSE(translator.TranslateClosed(raw->formula).ok());
}

TEST(TranslatorTest, MissingRelationSurfacesNotFound) {
  Database db;
  Translator translator(&db);
  auto query = ParseQuery("exists x: ghost(x)");
  auto norm = NormalizeQuery(*query);
  ASSERT_TRUE(norm.ok());
  auto plan = translator.TranslateClosed(norm->formula);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST(TranslatorTest, AtomArityMismatchRejected) {
  Database db = PaperDb();
  Translator translator(&db);
  auto query = ParseQuery("exists x: student(x, x)");
  auto norm = NormalizeQuery(*query);
  ASSERT_TRUE(norm.ok());
  EXPECT_FALSE(translator.TranslateClosed(norm->formula).ok());
}

TEST(ClassicalTranslatorTest, BasicAgreement) {
  Database db = PaperDb();
  ClassicalTranslator classical(&db);
  auto query = ParseQuery(
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }");
  ASSERT_TRUE(query.ok());
  auto plan = classical.TranslateOpen(*query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  Executor exec(&db);
  auto rel = exec.Evaluate(plan->expr);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(*rel, UnaryStrings({"ann"}));
}

TEST(ClassicalTranslatorTest, UsesProductOfRanges) {
  Database db = PaperDb();
  ClassicalTranslator classical(&db);
  auto query = ParseQuery(
      "exists x y: student(x) & lecture(y, db) & attends(x, y)");
  ASSERT_TRUE(query.ok());
  auto plan = classical.TranslateClosed(query->formula);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE((*plan)->ToString().find("Product"), std::string::npos)
      << (*plan)->ToString();
}

}  // namespace
}  // namespace bryql
