// The columnar differential suite: the row engine stays authoritative,
// and a database with column stores enabled must produce bit-identical
// answers — and matching governor counters where execution is
// deterministic — across the whole 16-query paper suite, at every
// parallelism degree, under tuple budgets, and down the service layer's
// degradation ladder. `comparisons` is deliberately not compared: fewer
// comparisons at equal answers is the columnar layer's entire point.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/query_processor.h"
#include "workload/university.h"

namespace bryql {
namespace {

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

ExecOptions RowOnlyOptions() {
  ExecOptions options;
  options.use_columnar = false;
  return options;
}

void ExpectSameAnswer(const Execution& a, const Execution& b,
                      const std::string& label) {
  ASSERT_EQ(a.answer.closed, b.answer.closed) << label;
  if (a.answer.closed) {
    EXPECT_EQ(a.answer.truth, b.answer.truth) << label;
  } else {
    EXPECT_EQ(a.answer.relation, b.answer.relation) << label;
  }
}

class ColumnarDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    db_ = MakeUniversity(SmallConfig(GetParam()));
    db_.EnableColumnarAll();
  }

  Database db_;
};

/// Whole suite, threads {0, 1, 2, 8}: answers must be bit-identical, and
/// budget counters must match wherever execution is deterministic — open
/// queries drain every operator fully, so their counters are exact at any
/// degree; closed (first-witness) queries race workers at degree > 0, so
/// only the serial degrees pin their counters.
TEST_P(ColumnarDifferentialTest, SuiteAgreesWithRowEngine) {
  QueryProcessor columnar_qp(&db_);
  QueryProcessor row_qp(&db_);
  row_qp.SetExecOptions(RowOnlyOptions());

  for (size_t threads : {0u, 1u, 2u, 8u}) {
    QueryOptions options;
    options.num_threads = threads;
    for (const NamedQuery& nq : PaperQuerySuite()) {
      const std::string label =
          nq.name + " [threads=" + std::to_string(threads) + "]";
      auto row = row_qp.Run(nq.text, Strategy::kBry, options);
      auto col = columnar_qp.Run(nq.text, Strategy::kBry, options);
      ASSERT_TRUE(row.ok()) << label << ": " << row.status();
      ASSERT_TRUE(col.ok()) << label << ": " << col.status();
      ExpectSameAnswer(*row, *col, label);
      if (!row->answer.closed || threads == 0) {
        EXPECT_EQ(col->stats.tuples_scanned, row->stats.tuples_scanned)
            << label;
        EXPECT_EQ(col->stats.tuples_materialized,
                  row->stats.tuples_materialized)
            << label;
      }
    }
  }
}

/// One budget stops both representations identically: equal answers when
/// both fit, the same StatusCode when either trips.
TEST_P(ColumnarDifferentialTest, BudgetsTripIdentically) {
  QueryProcessor columnar_qp(&db_);
  QueryProcessor row_qp(&db_);
  row_qp.SetExecOptions(RowOnlyOptions());

  struct Budget {
    const char* label;
    QueryOptions options;
  };
  std::vector<Budget> budgets;
  for (size_t cap : {3u, 25u, 400u}) {
    QueryOptions scan;
    scan.max_scanned_tuples = cap;
    budgets.push_back({"scan", scan});
    QueryOptions mat;
    mat.max_materialized_tuples = cap;
    budgets.push_back({"materialize", mat});
  }

  for (const Budget& budget : budgets) {
    for (const NamedQuery& nq : PaperQuerySuite()) {
      const std::string label = nq.name + " [" + budget.label + " cap]";
      auto row = row_qp.Run(nq.text, Strategy::kBry, budget.options);
      auto col = columnar_qp.Run(nq.text, Strategy::kBry, budget.options);
      ASSERT_EQ(row.ok(), col.ok())
          << label << ": row=" << row.status() << " col=" << col.status();
      if (row.ok()) {
        ExpectSameAnswer(*row, *col, label);
        EXPECT_EQ(col->stats.tuples_scanned, row->stats.tuples_scanned)
            << label;
      } else {
        EXPECT_EQ(row.status().code(), col.status().code())
            << label << ": row=" << row.status() << " col=" << col.status();
      }
    }
  }
}

/// The service degradation ladder drives the same prepared plans through
/// progressively simpler execution modes. Each rung must preserve the
/// row/columnar agreement — including the last rung, which abandons the
/// batched engine (and with it the columnar path) entirely.
TEST_P(ColumnarDifferentialTest, DegradationLadderPreservesParity) {
  QueryProcessor columnar_qp(&db_);
  QueryProcessor row_qp(&db_);
  row_qp.SetExecOptions(RowOnlyOptions());

  struct Rung {
    const char* label;
    QueryOptions options;
  };
  std::vector<Rung> ladder;
  QueryOptions parallel;
  parallel.num_threads = 2;
  ladder.push_back({"parallel", parallel});
  ladder.push_back({"serial", QueryOptions{}});
  QueryOptions bypass;
  bypass.bypass_plan_cache = true;
  ladder.push_back({"bypass-cache", bypass});
  QueryOptions tuple_engine;
  tuple_engine.force_tuple_engine = true;
  ladder.push_back({"tuple-engine", tuple_engine});

  for (const Rung& rung : ladder) {
    for (const NamedQuery& nq : PaperQuerySuite()) {
      const std::string label = nq.name + " [" + rung.label + "]";
      auto row = row_qp.Run(nq.text, Strategy::kBry, rung.options);
      auto col = columnar_qp.Run(nq.text, Strategy::kBry, rung.options);
      ASSERT_TRUE(row.ok()) << label << ": " << row.status();
      ASSERT_TRUE(col.ok()) << label << ": " << col.status();
      ExpectSameAnswer(*row, *col, label);
    }
  }
}

/// Enabling column stores moves the catalog version, so plans prepared
/// before stay row-path and correct, and re-running after the enable
/// re-lowers onto the columnar path without changing any answer.
TEST_P(ColumnarDifferentialTest, EnableColumnarInvalidatesCachedPlans) {
  Database db = MakeUniversity(SmallConfig(GetParam()));
  QueryProcessor qp(&db);
  const NamedQuery nq = PaperQuerySuite().front();
  auto before = qp.Run(nq.text, Strategy::kBry);
  ASSERT_TRUE(before.ok()) << before.status();

  const uint64_t version = db.version();
  db.EnableColumnarAll();
  EXPECT_GT(db.version(), version);
  // Idempotent: every store already exists, the version must not move.
  const uint64_t after_enable = db.version();
  db.EnableColumnarAll();
  EXPECT_EQ(db.version(), after_enable);

  auto after = qp.Run(nq.text, Strategy::kBry);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->plan_cache_hit);  // stale plan re-lowered
  ExpectSameAnswer(*before, *after, nq.name + " across enable");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarDifferentialTest,
                         ::testing::Values(1u, 2u, 7u));

}  // namespace
}  // namespace bryql
