/// Plan-cache churn under concurrency and catalog mutation: many threads
/// hammer a capacity-2 cache with more distinct queries than it can hold
/// while the database is mutated between rounds (version bumps). The
/// contract under test: no stale plan ever produces a stale answer, and
/// the hit/miss/eviction accounting stays exact.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/query_processor.h"
#include "storage/builder.h"
#include "workload/university.h"

namespace bryql {
namespace {

/// Four distinct queries (double the cache capacity) whose answers all
/// shift when students are added: constant eviction traffic, and any
/// stale plan/result is visible as a wrong answer.
const char* kQueries[] = {
    "{ x | student(x) }",
    "{ x | student(x) & ~exists y: attends(x, y) }",
    "{ x | student(x) & forall y: (lecture(y, db) -> attends(x, y)) }",
    "exists x: student(x) & ~exists y: attends(x, y)",
};
constexpr size_t kQueryCount = sizeof(kQueries) / sizeof(kQueries[0]);

UniversityConfig ChurnConfig() {
  UniversityConfig config;
  config.students = 30;
  config.professors = 8;
  config.lectures = 12;
  config.seed = 17;
  return config;
}

/// Adds one fresh student (attending nothing) — bumps the catalog
/// version and changes the answer of every query above.
void AddStudent(Database* db, size_t round) {
  auto current = db->Get("student");
  ASSERT_TRUE(current.ok());
  Relation grown = **current;
  ASSERT_TRUE(grown.Insert(Strs({"churn-student-" + std::to_string(round)}))
                  .ok());
  db->Put("student", std::move(grown));
}

TEST(PlanCacheChurnTest, ConcurrentRunsNeverSeeStaleAnswers) {
  Database db = MakeUniversity(ChurnConfig());
  QueryProcessor qp(&db, /*plan_cache_capacity=*/2);

  constexpr size_t kThreads = 8;
  constexpr size_t kRunsPerThread = 24;
  constexpr size_t kRounds = 5;
  size_t cached_runs = 0;

  QueryOptions bypass;
  bypass.bypass_plan_cache = true;

  for (size_t round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // Oracles for the *current* catalog, computed cache-blind so they
    // neither consult a cached plan nor disturb the accounting.
    Answer oracle[kQueryCount];
    for (size_t q = 0; q < kQueryCount; ++q) {
      auto r = qp.Run(kQueries[q], Strategy::kBry, bypass);
      ASSERT_TRUE(r.ok()) << kQueries[q] << ": " << r.status();
      oracle[q] = r->answer;
    }

    std::atomic<size_t> mismatches{0};
    std::atomic<size_t> errors{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = 0; i < kRunsPerThread; ++i) {
          const size_t q = (t * 7 + i) % kQueryCount;
          auto r = qp.Run(kQueries[q]);
          if (!r.ok()) {
            errors.fetch_add(1);
            continue;
          }
          const Answer& got = r->answer;
          const bool same = got.closed == oracle[q].closed &&
                            (got.closed ? got.truth == oracle[q].truth
                                        : got.relation == oracle[q].relation);
          if (!same) mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    cached_runs += kThreads * kRunsPerThread;

    EXPECT_EQ(errors.load(), 0u);
    EXPECT_EQ(mismatches.load(), 0u)
        << "a run returned an answer from a stale plan";

    // Mutate between rounds only — Database mutation is not synchronized
    // against concurrent scans, and the version bump is the point here.
    AddStudent(&db, round);
    if (round % 2 == 0) {
      ASSERT_TRUE(db.BuildIndex("attends", 0).ok());
    }
  }

  // Exact accounting: every cached run did exactly one cache lookup
  // (a stale hit still counts as the hit it was), evictions only ever
  // follow insertions from misses, and capacity holds.
  PlanCacheStats stats = qp.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, cached_runs);
  EXPECT_LE(stats.evictions, stats.misses);
  EXPECT_LE(qp.cache_size(), 2u);
  EXPECT_GT(stats.hits, 0u) << "churn never re-used a plan — test inert";
  // 4 queries rotating through 2 slots across 5 rounds must evict.
  EXPECT_GT(stats.evictions, 0u);
}

TEST(PlanCacheChurnTest, StalePreparedHandlesRevalidateAgainstTheCatalog) {
  Database db = MakeUniversity(ChurnConfig());
  QueryProcessor qp(&db, /*plan_cache_capacity=*/2);

  // Prepare every query, then mutate the catalog under the handles.
  PreparedQueryPtr prepared[kQueryCount];
  for (size_t q = 0; q < kQueryCount; ++q) {
    auto p = qp.Prepare(kQueries[q]);
    ASSERT_TRUE(p.ok()) << kQueries[q] << ": " << p.status();
    prepared[q] = *p;
  }
  const uint64_t version_at_prepare = db.version();
  AddStudent(&db, 999);
  ASSERT_GT(db.version(), version_at_prepare);

  QueryOptions bypass;
  bypass.bypass_plan_cache = true;
  for (size_t q = 0; q < kQueryCount; ++q) {
    auto fresh = qp.Run(kQueries[q], Strategy::kBry, bypass);
    ASSERT_TRUE(fresh.ok());
    // Executing the stale handle must reflect the *current* catalog: the
    // prepared plan revalidates its db_version and re-lowers instead of
    // serving pre-mutation access paths.
    auto via_stale = qp.Execute(prepared[q]);
    ASSERT_TRUE(via_stale.ok()) << via_stale.status();
    EXPECT_EQ(via_stale->answer.closed, fresh->answer.closed);
    if (fresh->answer.closed) {
      EXPECT_EQ(via_stale->answer.truth, fresh->answer.truth);
    } else {
      EXPECT_EQ(via_stale->answer.relation, fresh->answer.relation);
    }
  }
}

}  // namespace
}  // namespace bryql
