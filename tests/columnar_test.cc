// Unit and integration coverage for the columnar layer: ColumnStore
// layout (segments, dictionary, zone maps), the vectorized
// PredicateKernel against Predicate::Eval as oracle, zone-map pruning
// through the executor, the lowering's access-path choice, the stale-plan
// row fallback, budget/witness parity with the row engine, and the
// store's maintenance under Insert and Relation copies.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "common/governor.h"
#include "core/query_processor.h"
#include "exec/executor.h"
#include "storage/columnar/column_store.h"
#include "storage/columnar/predicate_kernel.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace bryql {
namespace {

Relation MakeEvents(size_t n) {
  // (id ascending, category string, score double) — ascending ids make
  // segment zone maps disjoint, the pruning-friendly shape.
  Relation rel(3);
  const char* cats[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(*rel.Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                                  Value::String(cats[i % 4]),
                                  Value::Double(0.5 * (i % 100))}))
                    );
  }
  return rel;
}

TEST(ColumnStoreTest, LayoutSegmentsAndZones) {
  Relation rel = MakeEvents(kSegmentRows * 2 + 100);
  rel.BuildColumnStore();
  const ColumnStore* store = rel.column_store();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->arity(), 3u);
  EXPECT_EQ(store->rows(), rel.size());
  EXPECT_EQ(store->segments(), 3u);
  EXPECT_EQ(store->SegmentSize(0), kSegmentRows);
  EXPECT_EQ(store->SegmentSize(2), 100u);

  // Ascending ids: segment 1's id zone is exactly [1024, 2047].
  const ZoneMap& z = store->zone(0, 1);
  EXPECT_EQ(z.count, kSegmentRows);
  EXPECT_EQ(z.nulls, 0u);
  EXPECT_TRUE(z.uniform);
  EXPECT_EQ(z.kind, ValueKind::kInt);
  EXPECT_EQ(z.min, Value::Int(static_cast<int64_t>(kSegmentRows)));
  EXPECT_EQ(z.max, Value::Int(static_cast<int64_t>(2 * kSegmentRows - 1)));

  // The category column dictionary holds the four distinct strings once.
  EXPECT_EQ(store->column(1).dict.size(), 4u);

  // Round trip: every value reconstructs exactly.
  for (size_t i = 0; i < rel.size(); i += 97) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(store->ValueAt(c, i), rel.rows()[i].at(c))
          << "row " << i << " col " << c;
    }
    Tuple t;
    store->MaterializeRow(i, &t);
    EXPECT_EQ(t, rel.rows()[i]);
  }
}

TEST(ColumnStoreTest, InsertMaintainsStoreIncrementally) {
  Relation rel = MakeEvents(10);
  rel.BuildColumnStore();
  ASSERT_EQ(rel.column_store()->rows(), 10u);
  ASSERT_TRUE(*rel.Insert(Tuple({Value::Int(100), Value::String("new"),
                                Value::Double(1.5)}))
                  );
  EXPECT_EQ(rel.column_store()->rows(), 11u);
  EXPECT_EQ(rel.column_store()->ValueAt(1, 10), Value::String("new"));
  // A duplicate is rejected by the row store and must not reach the
  // column store either.
  ASSERT_FALSE(*rel.Insert(Tuple({Value::Int(100), Value::String("new"),
                                 Value::Double(1.5)}))
                   );
  EXPECT_EQ(rel.column_store()->rows(), 11u);
  EXPECT_EQ(rel.column_store()->rows(), rel.size());
}

TEST(ColumnStoreTest, RelationCopyDeepCopiesStore) {
  Relation rel = MakeEvents(5);
  rel.BuildColumnStore();
  Relation copy = rel;
  ASSERT_NE(copy.column_store(), nullptr);
  EXPECT_NE(copy.column_store(), rel.column_store());
  ASSERT_TRUE(*rel.Insert(Tuple({Value::Int(99), Value::String("x"),
                                Value::Double(0)}))
                  );
  EXPECT_EQ(rel.column_store()->rows(), 6u);
  EXPECT_EQ(copy.column_store()->rows(), 5u);
}

/// Random values drawn from a pool small enough that predicates hit.
Value RandomValue(std::mt19937_64* rng) {
  switch ((*rng)() % 6) {
    case 0:
      return Value::Int(static_cast<int64_t>((*rng)() % 20));
    case 1:
      return Value::Double(0.5 * static_cast<double>((*rng)() % 20));
    case 2:
      return Value::String(std::string(1, 'a' + ((*rng)() % 5)));
    case 3:
      return Value::Null();
    case 4:
      return Value::Int(-static_cast<int64_t>((*rng)() % 5));
    default:
      return Value::Double(std::nan(""));  // the adversarial case
  }
}

PredicatePtr RandomPredicate(std::mt19937_64* rng, size_t arity, int depth) {
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  if (depth > 0 && (*rng)() % 3 == 0) {
    switch ((*rng)() % 3) {
      case 0:
        return Predicate::Not(RandomPredicate(rng, arity, depth - 1));
      case 1: {
        std::vector<PredicatePtr> kids;
        kids.push_back(RandomPredicate(rng, arity, depth - 1));
        kids.push_back(RandomPredicate(rng, arity, depth - 1));
        return Predicate::And(std::move(kids));
      }
      default: {
        std::vector<PredicatePtr> kids;
        kids.push_back(RandomPredicate(rng, arity, depth - 1));
        kids.push_back(RandomPredicate(rng, arity, depth - 1));
        return Predicate::Or(std::move(kids));
      }
    }
  }
  switch ((*rng)() % 4) {
    case 0:
      return Predicate::ColCol(ops[(*rng)() % 6], (*rng)() % arity,
                               (*rng)() % arity);
    case 1:
      return Predicate::IsNull((*rng)() % arity);
    case 2:
      return Predicate::IsNotNull((*rng)() % arity);
    default:
      return Predicate::ColVal(ops[(*rng)() % 6], (*rng)() % arity,
                               RandomValue(rng));
  }
}

/// The kernel's three levels against Predicate::Eval on every row —
/// mixed-kind columns, nulls, and NaN doubles included, so every fast
/// path, every fallback, and the zone-verdict shortcuts are exercised
/// and must agree with the row engine bit for bit.
TEST(PredicateKernelTest, AgreesWithPredicateEvalRandomized) {
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 30; ++round) {
    const size_t arity = 2 + rng() % 2;
    const size_t n = 1 + rng() % (2 * kSegmentRows);
    Relation rel(arity);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Value> vals;
      vals.reserve(arity);
      // A unique leading id keeps Insert's dedup out of the way.
      vals.push_back(Value::Int(static_cast<int64_t>(i)));
      for (size_t c = 1; c < arity; ++c) vals.push_back(RandomValue(&rng));
      ASSERT_TRUE(*rel.Insert(Tuple(std::move(vals))));
    }
    rel.BuildColumnStore();
    const ColumnStore* store = rel.column_store();

    for (int p = 0; p < 20; ++p) {
      PredicatePtr pred = RandomPredicate(&rng, arity, 2);
      PredicateKernel kernel(store, pred.get());
      std::vector<uint8_t> expected(store->rows());
      size_t oracle_cmp = 0;
      for (size_t i = 0; i < store->rows(); ++i) {
        expected[i] = pred->Eval(rel.rows()[i], &oracle_cmp);
      }
      // Vectorized level.
      std::vector<size_t> sel;
      size_t cmp = 0;
      for (size_t seg = 0; seg < store->segments(); ++seg) {
        const size_t begin = seg * kSegmentRows;
        kernel.EvalRange(begin, begin + store->SegmentSize(seg), &sel,
                         &cmp);
      }
      size_t pos = 0;
      for (size_t i = 0; i < store->rows(); ++i) {
        const bool selected = pos < sel.size() && sel[pos] == i;
        ASSERT_EQ(selected, expected[i] != 0)
            << "round " << round << " pred " << pred->ToString()
            << " row " << i << ": " << rel.rows()[i].ToString();
        if (selected) ++pos;
      }
      EXPECT_EQ(pos, sel.size());
      // Row-at-a-time level.
      size_t row_cmp = 0;
      for (size_t i = 0; i < store->rows(); ++i) {
        ASSERT_EQ(kernel.EvalRow(i, &row_cmp), expected[i] != 0)
            << "EvalRow disagrees: " << pred->ToString() << " row " << i;
      }
      // EvalRow mirrors Eval's short-circuiting, so its comparison count
      // matches the oracle's exactly.
      EXPECT_EQ(row_cmp, oracle_cmp) << pred->ToString();
      // Zone level is conservative: kNone/kAll claims must hold exactly.
      for (size_t seg = 0; seg < store->segments(); ++seg) {
        const PredicateKernel::Zone zone = kernel.ZoneTest(seg);
        if (zone == PredicateKernel::Zone::kMaybe) continue;
        const bool want = zone == PredicateKernel::Zone::kAll;
        const size_t begin = seg * kSegmentRows;
        for (size_t i = begin; i < begin + store->SegmentSize(seg); ++i) {
          ASSERT_EQ(expected[i] != 0, want)
              << "zone verdict lies: " << pred->ToString() << " seg "
              << seg << " row " << i;
        }
      }
    }
  }
}

TEST(GovernorBulkTest, AdmitScanBulkMatchesPerRowAdmissions) {
  QueryOptions options;
  options.max_scanned_tuples = 2500;
  ResourceGovernor bulk(options), per_row(options);
  EXPECT_TRUE(bulk.AdmitScanBulk(1024));
  EXPECT_TRUE(bulk.AdmitScanBulk(1024));
  for (int i = 0; i < 2048; ++i) ASSERT_TRUE(per_row.AdmitScan());
  EXPECT_EQ(bulk.scanned(), per_row.scanned());
  // The third segment crosses the budget: both trip with the same code.
  EXPECT_FALSE(bulk.AdmitScanBulk(1024));
  bool tripped = true;
  for (int i = 0; i < 1024 && tripped; ++i) tripped = per_row.AdmitScan();
  EXPECT_FALSE(tripped);
  EXPECT_EQ(bulk.status().code(), per_row.status().code());
  EXPECT_TRUE(bulk.tripped());
}

class ColumnarExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Put("events", MakeEvents(8 * kSegmentRows));
    ASSERT_TRUE(db_.EnableColumnar("events").ok());
  }

  Database db_;
};

TEST_F(ColumnarExecTest, LoweringChoosesColumnarAndPrunes) {
  Executor ex(&db_);
  // Selective range over the ascending id column: 7 of 8 segments are
  // provably empty for it and must be pruned.
  ExprPtr expr = Expr::Select(
      Expr::Scan("events"),
      Predicate::ColVal(CompareOp::kLt, 0, Value::Int(100)));
  auto plan = ex.Lower(expr);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE((*plan)->ToString().find("ColumnarScan events"),
            std::string::npos)
      << (*plan)->ToString();
  auto result = ex.ExecutePhysical(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 100u);
  EXPECT_EQ(ex.stats().segments_pruned, 7u);
  EXPECT_EQ(ex.stats().segments_scanned, 1u);
  // Pruning never discounts the scan budget: all rows were admitted.
  EXPECT_EQ(ex.stats().tuples_scanned, 8 * kSegmentRows);
  // ...but it does discount the work: only the surviving segment's rows
  // were compared.
  EXPECT_LE(ex.stats().comparisons, kSegmentRows);
}

TEST_F(ColumnarExecTest, OptionDisablesColumnarPath) {
  ExecOptions options;
  options.use_columnar = false;
  Executor ex(&db_, options);
  ExprPtr expr = Expr::Select(
      Expr::Scan("events"),
      Predicate::ColVal(CompareOp::kLt, 0, Value::Int(100)));
  auto plan = ex.Lower(expr);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ((*plan)->ToString().find("ColumnarScan"), std::string::npos);
  EXPECT_NE((*plan)->ToString().find("TableScan"), std::string::npos);
}

TEST_F(ColumnarExecTest, IndexedEqualityStillBeatsColumnar) {
  ASSERT_TRUE(db_.BuildIndex("events", 0).ok());
  Executor ex(&db_);
  ExprPtr expr = Expr::Select(
      Expr::Scan("events"),
      Predicate::ColVal(CompareOp::kEq, 0, Value::Int(7)));
  auto plan = ex.Lower(expr);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE((*plan)->ToString().find("IndexScan"), std::string::npos)
      << (*plan)->ToString();
}

TEST_F(ColumnarExecTest, StalePlanFallsBackToRowScan) {
  Executor ex(&db_);
  ExprPtr expr = Expr::Select(
      Expr::Scan("events"),
      Predicate::ColVal(CompareOp::kGe, 0, Value::Int(8100)));
  auto plan = ex.Lower(expr);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_NE((*plan)->ToString().find("ColumnarScan"), std::string::npos);
  // Replace the relation with one that has no column store: the cached
  // plan is stale, and must recover on the row path with the same answer.
  db_.Put("events", MakeEvents(8 * kSegmentRows));
  Executor stale_ex(&db_);
  auto result = stale_ex.ExecutePhysical(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 8 * kSegmentRows - 8100);
  EXPECT_EQ(stale_ex.stats().segments_scanned, 0u);
  EXPECT_EQ(stale_ex.stats().segments_pruned, 0u);
}

TEST_F(ColumnarExecTest, RowAndColumnarAgreeOnCountersAndAnswers) {
  ExecOptions row_options;
  row_options.use_columnar = false;
  std::vector<PredicatePtr> preds;
  preds.push_back(Predicate::ColVal(CompareOp::kLt, 0, Value::Int(50)));
  preds.push_back(
      Predicate::ColVal(CompareOp::kEq, 1, Value::String("beta")));
  {
    std::vector<PredicatePtr> both;
    both.push_back(Predicate::ColVal(CompareOp::kGe, 2, Value::Double(20)));
    both.push_back(
        Predicate::ColVal(CompareOp::kNe, 1, Value::String("alpha")));
    preds.push_back(Predicate::And(std::move(both)));
  }
  for (const PredicatePtr& pred : preds) {
    ExprPtr expr = Expr::Select(Expr::Scan("events"), pred);
    Executor columnar(&db_);
    Executor row(&db_, row_options);
    auto a = columnar.Evaluate(expr);
    auto b = row.Evaluate(expr);
    ASSERT_TRUE(a.ok() && b.ok()) << pred->ToString();
    EXPECT_EQ(*a, *b) << pred->ToString();
    EXPECT_EQ(columnar.stats().tuples_scanned, row.stats().tuples_scanned)
        << pred->ToString();
    EXPECT_EQ(columnar.stats().tuples_materialized,
              row.stats().tuples_materialized)
        << pred->ToString();
  }
}

TEST_F(ColumnarExecTest, FirstWitnessAdmissionParity) {
  // The witness for id >= w sits at row w: both engines must admit
  // exactly w+1 rows before stopping.
  for (int64_t w : {0, 5, 2000, 5000}) {
    ExprPtr expr = Expr::NonEmpty(Expr::Select(
        Expr::Scan("events"),
        Predicate::ColVal(CompareOp::kGe, 0, Value::Int(w))));
    ExecOptions row_options;
    row_options.use_columnar = false;
    Executor columnar(&db_);
    Executor row(&db_, row_options);
    auto a = columnar.EvaluateBool(expr);
    auto b = row.EvaluateBool(expr);
    ASSERT_TRUE(a.ok() && b.ok()) << "witness " << w;
    EXPECT_TRUE(*a && *b);
    EXPECT_EQ(columnar.stats().tuples_scanned,
              static_cast<size_t>(w) + 1)
        << "witness " << w;
    EXPECT_EQ(columnar.stats().tuples_scanned, row.stats().tuples_scanned)
        << "witness " << w;
  }
}

TEST_F(ColumnarExecTest, ScanBudgetTripsWithSameCode) {
  QueryOptions options;
  options.max_scanned_tuples = 1000;
  ExprPtr expr = Expr::Select(
      Expr::Scan("events"),
      Predicate::ColVal(CompareOp::kLt, 0, Value::Int(100)));
  ExecOptions row_options;
  row_options.use_columnar = false;
  ResourceGovernor g1(options), g2(options);
  Executor columnar(&db_, ExecOptions{}, &g1);
  Executor row(&db_, row_options, &g2);
  auto a = columnar.Evaluate(expr);
  auto b = row.Evaluate(expr);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.status().code(), b.status().code());
}

}  // namespace
}  // namespace bryql
