// Lowering pass: the logical Expr tree compiles into an explicit physical
// plan — access-path selection, join-algorithm choice, build-side
// placement — and the physical EXPLAIN renders those choices.

#include "exec/lowering.h"

#include <gtest/gtest.h>

#include <string>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "core/query_processor.h"
#include "exec/executor.h"
#include "storage/builder.h"
#include "storage/database.h"
#include "workload/university.h"

namespace bryql {
namespace {

Relation BigPairs(size_t n) {
  Relation rel(2);
  for (size_t i = 0; i < n; ++i) {
    rel.Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                      Value::Int(static_cast<int64_t>(i % 10))}));
  }
  return rel;
}

/// small (10 rows) and big (100 rows) relations; big carries an index on
/// column 0 so access-path tests have something to pick.
Database TwoTables() {
  Database db;
  db.Put("small", BigPairs(10));
  db.Put("big", BigPairs(100));
  EXPECT_TRUE(db.BuildIndex("big", 0).ok());
  return db;
}

PhysicalPlanPtr Lower(const Database& db, const ExprPtr& expr,
                      ExecOptions options = {}) {
  auto plan = LowerPlan(db, options, expr);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.ok() ? *plan : nullptr;
}

TEST(LoweringTest, ScanLowersToTableScan) {
  Database db = TwoTables();
  auto plan = Lower(db, Expr::Scan("big"));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PhysicalKind::kTableScan);
  EXPECT_EQ(plan->relation_name, "big");
  EXPECT_EQ(plan->arity, 2u);
  EXPECT_DOUBLE_EQ(plan->est_rows, 100.0);
}

TEST(LoweringTest, IndexedEqualityBecomesIndexScan) {
  Database db = TwoTables();
  auto plan = Lower(db, Expr::Select(Expr::Scan("big"),
                                     Predicate::ColVal(CompareOp::kEq, 0,
                                                       Value::Int(7))));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PhysicalKind::kIndexScan);
  EXPECT_EQ(plan->relation_name, "big");
  EXPECT_EQ(plan->index_column, 0u);
  EXPECT_EQ(plan->index_value, Value::Int(7));
  EXPECT_EQ(plan->predicate, nullptr);  // the equality was the whole pred
  EXPECT_TRUE(plan->children.empty());
}

TEST(LoweringTest, IndexScanKeepsResidualConjuncts) {
  Database db = TwoTables();
  std::vector<PredicatePtr> parts;
  parts.push_back(Predicate::ColVal(CompareOp::kLt, 1, Value::Int(5)));
  parts.push_back(Predicate::ColVal(CompareOp::kEq, 0, Value::Int(7)));
  auto plan = Lower(db, Expr::Select(Expr::Scan("big"),
                                     Predicate::And(std::move(parts))));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PhysicalKind::kIndexScan);
  EXPECT_EQ(plan->index_column, 0u);
  ASSERT_NE(plan->predicate, nullptr);  // the `$1 < 5` residual survives
}

TEST(LoweringTest, UnindexedSelectionStaysAFilter) {
  Database db = TwoTables();
  auto plan = Lower(db, Expr::Select(Expr::Scan("small"),
                                     Predicate::ColVal(CompareOp::kEq, 0,
                                                       Value::Int(7))));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PhysicalKind::kFilter);
  ASSERT_EQ(plan->children.size(), 1u);
  EXPECT_EQ(plan->children[0]->kind, PhysicalKind::kTableScan);
}

TEST(LoweringTest, CostModelPutsSmallerInputOnBuildSide) {
  Database db = TwoTables();
  std::vector<JoinKey> keys = {{0, 0}};
  auto small_left =
      Lower(db, Expr::Join(Expr::Scan("small"), Expr::Scan("big"), keys,
                           nullptr));
  ASSERT_NE(small_left, nullptr);
  EXPECT_EQ(small_left->kind, PhysicalKind::kHashJoin);
  EXPECT_TRUE(small_left->build_left);

  auto small_right =
      Lower(db, Expr::Join(Expr::Scan("big"), Expr::Scan("small"), keys,
                           nullptr));
  ASSERT_NE(small_right, nullptr);
  EXPECT_FALSE(small_right->build_left);

  // Symmetric inputs: ties keep the conventional build-right.
  auto tie = Lower(db, Expr::Join(Expr::Scan("big"), Expr::Scan("big"),
                                  keys, nullptr));
  ASSERT_NE(tie, nullptr);
  EXPECT_FALSE(tie->build_left);
}

TEST(LoweringTest, BuildSidePolicyCanBeDisabled) {
  Database db = TwoTables();
  ExecOptions options;
  options.cost_based_build_side = false;
  auto plan = Lower(db,
                    Expr::Join(Expr::Scan("small"), Expr::Scan("big"),
                               {{0, 0}}, nullptr),
                    options);
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(plan->build_left);
}

TEST(LoweringTest, JoinAlgorithmOptionSelectsSortMerge) {
  Database db = TwoTables();
  ExecOptions options;
  options.join_algorithm = ExecOptions::JoinAlgorithm::kSortMerge;
  std::vector<JoinKey> keys = {{0, 0}};
  auto left = Expr::Scan("small");
  auto right = Expr::Scan("big");
  const ExprPtr exprs[] = {
      Expr::Join(left, right, keys, nullptr),
      Expr::SemiJoin(left, right, keys),
      Expr::AntiJoin(left, right, keys),
      Expr::OuterJoin(left, right, keys, nullptr),
      Expr::MarkJoin(left, right, keys, nullptr),
      Expr::Difference(left, left),
      Expr::Intersect(left, left),
  };
  for (const ExprPtr& expr : exprs) {
    auto plan = Lower(db, expr, options);
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->kind, PhysicalKind::kSortMergeJoin) << plan->Label();
  }
}

TEST(LoweringTest, DifferenceLowersToWholeTupleAntiJoin) {
  Database db = TwoTables();
  auto plan =
      Lower(db, Expr::Difference(Expr::Scan("small"), Expr::Scan("big")));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PhysicalKind::kHashJoin);
  EXPECT_EQ(plan->variant, JoinVariant::kAnti);
  ASSERT_EQ(plan->keys.size(), 2u);  // keys on the whole 2-ary tuple
  EXPECT_EQ(plan->keys[0].left, 0u);
  EXPECT_EQ(plan->keys[0].right, 0u);
  EXPECT_EQ(plan->keys[1].left, 1u);
  EXPECT_EQ(plan->keys[1].right, 1u);
}

TEST(LoweringTest, IntersectLowersToWholeTupleSemiJoin) {
  Database db = TwoTables();
  auto plan =
      Lower(db, Expr::Intersect(Expr::Scan("small"), Expr::Scan("big")));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PhysicalKind::kHashJoin);
  EXPECT_EQ(plan->variant, JoinVariant::kSemi);
  EXPECT_EQ(plan->keys.size(), 2u);
}

TEST(LoweringTest, OuterJoinRecordsPadArity) {
  Database db = TwoTables();
  auto plan = Lower(db, Expr::OuterJoin(Expr::Scan("small"),
                                        Expr::Scan("big"), {{0, 0}},
                                        nullptr));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->variant, JoinVariant::kLeftOuter);
  EXPECT_EQ(plan->pad_arity, 2u);  // right arity worth of ∅ padding
  EXPECT_EQ(plan->arity, 4u);
}

TEST(LoweringTest, EveryNodeCarriesCostAnnotations) {
  Database db = TwoTables();
  auto plan = Lower(db, Expr::Project(
                            Expr::Join(Expr::Scan("small"),
                                       Expr::Scan("big"), {{0, 0}}, nullptr),
                            {0}));
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->est_cost, 0.0);
  EXPECT_EQ(plan->Size(), 4u);
  const std::string explain = plan->ToString();
  EXPECT_NE(explain.find("Project"), std::string::npos);
  EXPECT_NE(explain.find("HashJoin"), std::string::npos);
  EXPECT_NE(explain.find("rows~"), std::string::npos);
  EXPECT_NE(explain.find("cost~"), std::string::npos);
}

TEST(LoweringTest, ExecutorLowerHonoursPlanDepthLimit) {
  Database db = TwoTables();
  ExprPtr deep = Expr::Scan("small");
  for (int i = 0; i < 8; ++i) {
    deep = Expr::Select(deep, Predicate::True());
  }
  QueryOptions limits;
  limits.max_plan_depth = 4;
  ResourceGovernor governor(limits);
  Executor executor(&db, {}, &governor);
  auto plan = executor.Lower(deep);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

/// The end-to-end EXPLAIN surface: Explain fills Execution::physical
/// without executing anything.
TEST(LoweringTest, ExplainProducesPhysicalPlan) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = 3;
  Database db = MakeUniversity(config);
  QueryProcessor qp(&db);
  auto exec = qp.Explain(
      "{ x | student(x) & (forall y: lecture(y, db) -> attends(x, y)) }");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_NE(exec->physical, nullptr);
  EXPECT_EQ(exec->stats.tuples_scanned, 0u);  // nothing executed
  const std::string explain = exec->physical->ToString();
  EXPECT_NE(explain.find("TableScan"), std::string::npos);
  EXPECT_NE(explain.find("arity="), std::string::npos);
}

}  // namespace
}  // namespace bryql
