#include "algebra/expr.h"

#include <gtest/gtest.h>

#include "storage/builder.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  db.Put("p", UnaryStrings({"a", "b"}));
  db.Put("r", StringPairs({{"a", "x"}, {"b", "y"}}));
  return db;
}

TEST(PredicateTest, CompareEval) {
  PredicatePtr p = Predicate::ColVal(CompareOp::kEq, 1, Value::String("x"));
  size_t comparisons = 0;
  EXPECT_TRUE(p->Eval(Strs({"a", "x"}), &comparisons));
  EXPECT_FALSE(p->Eval(Strs({"a", "y"}), &comparisons));
  EXPECT_EQ(comparisons, 2u);
}

TEST(PredicateTest, ColColAndBooleans) {
  PredicatePtr eq = Predicate::ColCol(CompareOp::kEq, 0, 1);
  PredicatePtr both = Predicate::And(
      {eq, Predicate::ColVal(CompareOp::kNe, 0, Value::String("z"))});
  EXPECT_TRUE(both->Eval(Strs({"a", "a"}), nullptr));
  EXPECT_FALSE(both->Eval(Strs({"z", "z"}), nullptr));
  PredicatePtr either = Predicate::Or(
      {eq, Predicate::ColVal(CompareOp::kEq, 0, Value::String("z"))});
  EXPECT_TRUE(either->Eval(Strs({"z", "q"}), nullptr));
  EXPECT_FALSE(Predicate::Not(either)->Eval(Strs({"z", "q"}), nullptr));
}

TEST(PredicateTest, NullTests) {
  Tuple with_null({Value::String("a"), Value::Null()});
  EXPECT_TRUE(Predicate::IsNull(1)->Eval(with_null, nullptr));
  EXPECT_FALSE(Predicate::IsNull(0)->Eval(with_null, nullptr));
  EXPECT_TRUE(Predicate::IsNotNull(0)->Eval(with_null, nullptr));
  // ⊥ is not ∅: a marked column is "not null".
  Tuple with_mark({Value::Mark()});
  EXPECT_FALSE(Predicate::IsNull(0)->Eval(with_mark, nullptr));
}

TEST(PredicateTest, MaxColumn) {
  EXPECT_EQ(Predicate::True()->MaxColumn(), -1);
  EXPECT_EQ(Predicate::ColCol(CompareOp::kLt, 2, 5)->MaxColumn(), 5);
  PredicatePtr combo = Predicate::And(
      {Predicate::IsNull(3), Predicate::ColVal(CompareOp::kEq, 7,
                                               Value::Int(1))});
  EXPECT_EQ(combo->MaxColumn(), 7);
}

TEST(ExprArityTest, ScanAndLiteral) {
  Database db = MakeDb();
  EXPECT_EQ(*Expr::Scan("r")->Arity(db), 2u);
  EXPECT_EQ(*Expr::Literal(UnaryInts({1}))->Arity(db), 1u);
  EXPECT_FALSE(Expr::Scan("missing")->Arity(db).ok());
}

TEST(ExprArityTest, JoinsAndSets) {
  Database db = MakeDb();
  ExprPtr p = Expr::Scan("p");
  ExprPtr r = Expr::Scan("r");
  EXPECT_EQ(*Expr::Join(p, r, {{0, 0}})->Arity(db), 3u);
  EXPECT_EQ(*Expr::SemiJoin(p, r, {{0, 0}})->Arity(db), 1u);
  EXPECT_EQ(*Expr::AntiJoin(p, r, {{0, 0}})->Arity(db), 1u);
  EXPECT_EQ(*Expr::OuterJoin(p, r, {{0, 0}})->Arity(db), 3u);
  EXPECT_EQ(*Expr::MarkJoin(p, r, {{0, 0}})->Arity(db), 2u);
  EXPECT_EQ(*Expr::Division(r, p)->Arity(db), 1u);
  EXPECT_EQ(*Expr::Union(p, p)->Arity(db), 1u);
  EXPECT_FALSE(Expr::Union(p, r)->Arity(db).ok());  // arity mismatch
  EXPECT_FALSE(Expr::Join(p, r, {{3, 0}})->Arity(db).ok());  // bad key
}

TEST(ExprArityTest, BooleanShapes) {
  Database db = MakeDb();
  ExprPtr b = Expr::NonEmpty(Expr::Scan("p"));
  EXPECT_EQ(*b->Arity(db), 0u);
  EXPECT_EQ(*Expr::BoolAnd({b, Expr::BoolNot(b)})->Arity(db), 0u);
  // Boolean connectives demand arity-0 children.
  EXPECT_FALSE(Expr::BoolNot(Expr::Scan("p"))->Arity(db).ok());
}

TEST(ExprArityTest, ProjectValidation) {
  Database db = MakeDb();
  EXPECT_EQ(*Expr::Project(Expr::Scan("r"), {1, 0, 1})->Arity(db), 3u);
  EXPECT_FALSE(Expr::Project(Expr::Scan("r"), {2})->Arity(db).ok());
}

TEST(ExprToStringTest, ExplainTree) {
  ExprPtr e = Expr::Project(
      Expr::AntiJoin(Expr::Scan("member"),
                     Expr::Select(Expr::Scan("skill"),
                                  Predicate::ColVal(CompareOp::kEq, 1,
                                                    Value::String("db"))),
                     {{0, 0}}),
      {0});
  std::string s = e->ToString();
  EXPECT_NE(s.find("ComplementJoin"), std::string::npos);
  EXPECT_NE(s.find("$0=$0"), std::string::npos);
  EXPECT_NE(s.find("Scan member"), std::string::npos);
}

TEST(ExprToStringTest, SizeCountsOperators) {
  ExprPtr e = Expr::Union(Expr::Scan("p"), Expr::Scan("p"));
  EXPECT_EQ(e->Size(), 3u);
}

}  // namespace
}  // namespace bryql
