/// Seeded chaos harness for the fault-tolerant query service.
///
/// Many client threads drive a shared QueryService while probabilistic
/// failpoints inject transient faults and operator exceptions on a
/// seed-deterministic schedule. The invariant is differential: every
/// reply is either the fault-free oracle answer or a clean error of the
/// transient class — never a wrong answer, a crash, or a hang. A machine
/// that survives this under ASan/TSan has earned its robustness claims.
///
/// Per-site fire schedules are pure functions of (seed, site, hit index),
/// so a failing seed replays: BRYQL_CHAOS_SEED=<n> ctest -R chaos. The CI
/// chaos job sweeps a fixed seed list the same way.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoints.h"
#include "service/service.h"
#include "workload/university.h"

namespace bryql {
namespace {

using namespace std::chrono_literals;

struct ChaosQuery {
  const char* text;
  Strategy strategy;
};

/// A mixed workload: open and closed queries, quantifiers, negation and
/// disjunction, across the two main strategies — enough plan diversity
/// that the armed sites fire at different pipeline depths.
const ChaosQuery kWorkload[] = {
    {"{ x | student(x) & forall y: (lecture(y, db) -> attends(x, y)) }",
     Strategy::kBry},
    {"{ x | student(x) & ~forall y: (lecture(y, db) -> attends(x, y)) }",
     Strategy::kBry},
    {"exists x: student(x) & exists y: (lecture(y, db) & attends(x, y))",
     Strategy::kBry},
    {"{ x | professor(x) | student(x) & makes(x, phd) }", Strategy::kBry},
    {"{ x | student(x) & (speaks(x, french) | speaks(x, german)) }",
     Strategy::kClassical},
    {"exists x: professor(x) & forall y: (cs-lecture(y) -> ~attends(x, y))",
     Strategy::kBry},
};
constexpr size_t kWorkloadSize = sizeof(kWorkload) / sizeof(kWorkload[0]);

constexpr size_t kClientThreads = 8;
constexpr size_t kRequestsPerThread = 25;

std::vector<uint64_t> ChaosSeeds() {
  // One seed per run keeps the test fast; CI sweeps a list by invoking
  // the binary repeatedly with BRYQL_CHAOS_SEED set.
  if (const char* env = std::getenv("BRYQL_CHAOS_SEED")) {
    if (*env != '\0') return {std::strtoull(env, nullptr, 10)};
  }
  return {42, 1989};
}

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool AnswersEqual(const Answer& a, const Answer& b) {
  if (a.closed != b.closed) return false;
  if (a.closed) return a.truth == b.truth;
  return a.relation == b.relation;
}

class ChaosServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoints::enabled()) {
      GTEST_SKIP() << "built without BRYQL_FAILPOINTS; chaos needs injection";
    }
    failpoints::DisarmAll();
    failpoints::ResetStats();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(ChaosServiceTest, NoWrongAnswersUnderRandomizedFaults) {
  UniversityConfig config;
  config.students = 60;
  config.professors = 12;
  config.lectures = 24;
  config.seed = 7;
  Database db = MakeUniversity(config);
  QueryProcessor qp(&db);

  // Fault-free oracles, computed before anything is armed.
  Answer oracle[kWorkloadSize];
  for (size_t q = 0; q < kWorkloadSize; ++q) {
    auto r = qp.Run(kWorkload[q].text, kWorkload[q].strategy);
    ASSERT_TRUE(r.ok()) << kWorkload[q].text << ": " << r.status();
    oracle[q] = r->answer;
  }

  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    failpoints::DisarmAll();
    failpoints::ResetStats();

    // Transient faults across the execution layer plus an exception site
    // at the physical dispatch, each on its own seed-derived schedule.
    failpoints::ArmProbabilistic("exec.scan.open",
                                 Status::Transient("chaos: scan"), 0.03,
                                 Mix(seed ^ 1));
    failpoints::ArmProbabilistic("exec.hash.insert",
                                 Status::Transient("chaos: hash"), 0.002,
                                 Mix(seed ^ 2));
    failpoints::ArmProbabilistic("exec.materialize.insert",
                                 Status::Transient("chaos: materialize"),
                                 0.002, Mix(seed ^ 3));
    failpoints::ArmProbabilistic("exec.iterator.open",
                                 Status::Transient("chaos: open"), 0.02,
                                 Mix(seed ^ 4));
    failpoints::ArmProbabilistic("translate.plan",
                                 Status::Transient("chaos: translate"), 0.05,
                                 Mix(seed ^ 5));
    failpoints::ArmProbabilistic("exec.physical.throw",
                                 Status::Internal("chaos: operator throw"),
                                 0.01, Mix(seed ^ 6));

    ServiceOptions service_options;
    service_options.max_queue_depth = 32;
    service_options.retry.max_attempts = 6;
    service_options.retry.initial_backoff = 50us;
    service_options.retry.max_backoff = 2ms;
    service_options.seed = seed;
    QueryService service(&qp, service_options);

    std::atomic<size_t> wrong_answers{0};
    std::atomic<size_t> bad_codes{0};
    std::atomic<size_t> ok_replies{0};
    std::atomic<size_t> clean_errors{0};
    std::mutex diag_mutex;
    std::vector<std::string> diagnostics;

    std::vector<std::thread> clients;
    for (size_t t = 0; t < kClientThreads; ++t) {
      clients.emplace_back([&, t] {
        for (size_t i = 0; i < kRequestsPerThread; ++i) {
          const uint64_t draw = Mix(seed ^ (t * 1000003 + i));
          const size_t q = draw % kWorkloadSize;
          ServiceRequest request;
          request.text = kWorkload[q].text;
          request.strategy = kWorkload[q].strategy;
          request.priority = static_cast<Priority>(draw / 7 % 3);
          // A slice of requests carries a deadline so the deadline-aware
          // paths (shedding, queue timeout, bounded retries) see load.
          if (draw % 5 == 0) {
            request.options.deadline = 100ms;
          }
          // Another slice runs morsel-parallel, putting the worker-shard
          // budget reconciliation and the parallel operators under fire
          // too (the ladder serializes them on retry).
          if (draw % 3 == 0) {
            request.options.num_threads = 2;
          }
          auto reply = service.Submit(request);
          if (reply.ok()) {
            ok_replies.fetch_add(1);
            if (!AnswersEqual(oracle[q], reply->execution.answer)) {
              wrong_answers.fetch_add(1);
              std::lock_guard<std::mutex> lock(diag_mutex);
              diagnostics.push_back(std::string("wrong answer for: ") +
                                    kWorkload[q].text);
            }
          } else {
            const StatusCode code = reply.status().code();
            if (code == StatusCode::kTransient ||
                code == StatusCode::kResourceExhausted ||
                code == StatusCode::kDeadlineExceeded) {
              clean_errors.fetch_add(1);
            } else {
              bad_codes.fetch_add(1);
              std::lock_guard<std::mutex> lock(diag_mutex);
              diagnostics.push_back("unexpected error class: " +
                                    reply.status().ToString());
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    failpoints::DisarmAll();

    // The core invariant: oracle answer or clean transient error, nothing
    // else, ever.
    EXPECT_EQ(wrong_answers.load(), 0u);
    EXPECT_EQ(bad_codes.load(), 0u);
    for (const std::string& d : diagnostics) ADD_FAILURE() << d;

    constexpr size_t kTotal = kClientThreads * kRequestsPerThread;
    EXPECT_EQ(ok_replies.load() + clean_errors.load() + wrong_answers.load() +
                  bad_codes.load(),
              kTotal);
    // The schedule must have actually injected: a chaos run where nothing
    // fired tests nothing.
    size_t fires = 0;
    for (const auto& [site, stats] : failpoints::Stats()) {
      EXPECT_LE(stats.fires, stats.hits) << site;
      fires += stats.fires;
    }
    EXPECT_GT(fires, 0u) << "no failpoint fired — chaos schedule inert";
    EXPECT_GT(ok_replies.load(), 0u)
        << "every request failed — retries/degradation never rescued one";

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, kTotal);
    EXPECT_EQ(stats.completed + stats.failed, kTotal);
    EXPECT_EQ(stats.completed, ok_replies.load());
    EXPECT_LE(stats.peak_running, service.max_concurrency());

    // Post-chaos recovery: with the schedule disarmed the same service
    // answers every workload query correctly — no poisoned state, no
    // stuck slots, no lingering degradation.
    for (size_t q = 0; q < kWorkloadSize; ++q) {
      auto r = service.Run(kWorkload[q].text, kWorkload[q].strategy);
      ASSERT_TRUE(r.ok()) << kWorkload[q].text << ": " << r.status();
      EXPECT_TRUE(AnswersEqual(oracle[q], r->execution.answer))
          << kWorkload[q].text;
      EXPECT_EQ(r->attempts, 1u);
    }
  }
}

TEST_F(ChaosServiceTest, SaturationShedsButNeverLies) {
  // Overload chaos: a tiny service (1 slot, 2 queue seats) hammered by 8
  // threads. Most requests are shed; the ones that answer must answer
  // correctly, and every rejection must carry a usable retry-after hint.
  UniversityConfig config;
  config.students = 40;
  config.seed = 11;
  Database db = MakeUniversity(config);
  QueryProcessor qp(&db);
  const ChaosQuery& query = kWorkload[2];
  auto oracle = qp.Run(query.text, query.strategy);
  ASSERT_TRUE(oracle.ok());

  failpoints::ArmProbabilistic("exec.scan.open",
                               Status::Transient("chaos: scan"), 0.05, 99);

  ServiceOptions service_options;
  service_options.max_concurrency = 1;
  service_options.max_queue_depth = 2;
  service_options.retry.max_attempts = 3;
  service_options.retry.initial_backoff = 50us;
  QueryService service(&qp, service_options);

  std::atomic<size_t> wrong{0}, bad_rejections{0}, answered{0}, shed{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < 30; ++i) {
        auto reply = service.Run(query.text, query.strategy);
        if (reply.ok()) {
          answered.fetch_add(1);
          if (!AnswersEqual(oracle->answer, reply->execution.answer)) {
            wrong.fetch_add(1);
          }
        } else if (reply.status().code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
          if (RetryAfterMsHint(reply.status()) == 0) bad_rejections.fetch_add(1);
        } else if (!reply.status().IsTransient()) {
          bad_rejections.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(bad_rejections.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  ServiceStats stats = service.stats();
  EXPECT_LE(stats.peak_running, 1u);
  EXPECT_LE(stats.peak_waiting, 2u);
}

}  // namespace
}  // namespace bryql
