#include <gtest/gtest.h>

#include <fstream>

#include "storage/builder.h"
#include "storage/csv.h"
#include "storage/database.h"

namespace bryql {
namespace {

TEST(DatabaseTest, PutGetAndNames) {
  Database db;
  db.Put("p", UnaryStrings({"a", "b"}));
  db.Put("q", StringPairs({{"a", "b"}}));
  EXPECT_TRUE(db.Has("p"));
  EXPECT_FALSE(db.Has("r"));
  auto p = db.Get("p");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->size(), 2u);
  EXPECT_EQ(db.Names(), (std::vector<std::string>{"p", "q"}));
  EXPECT_EQ(db.TotalTuples(), 3u);
}

TEST(DatabaseTest, GetMissingIsNotFound) {
  Database db;
  auto r = db.Get("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, ArityOf) {
  Database db;
  db.Put("q", StringPairs({{"a", "b"}}));
  auto a = db.ArityOf("q");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 2u);
}

TEST(DatabaseTest, PutReplaces) {
  Database db;
  db.Put("p", UnaryStrings({"a"}));
  db.Put("p", UnaryStrings({"a", "b", "c"}));
  EXPECT_EQ((*db.Get("p"))->size(), 3u);
}

TEST(DatabaseTest, ActiveDomainCollectsAllValues) {
  // The "dom" view of §2.1 (Domain Closure Assumption).
  Database db;
  db.Put("p", StringPairs({{"a", "b"}, {"b", "c"}}));
  db.Put("q", UnaryStrings({"d"}));
  Relation dom = db.ActiveDomain();
  EXPECT_EQ(dom.arity(), 1u);
  EXPECT_EQ(dom.size(), 4u);  // a, b, c, d
  EXPECT_TRUE(dom.Contains(Strs({"c"})));
}

TEST(CsvTest, ParsesTypesPerCell) {
  auto r = RelationFromCsv("1, 2.5, hello, 'quoted, no'\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 1u);
  const Tuple& t = r->rows()[0];
  EXPECT_EQ(t.at(0), Value::Int(1));
  EXPECT_EQ(t.at(1), Value::Double(2.5));
  EXPECT_EQ(t.at(2), Value::String("hello"));
}

TEST(CsvTest, SkipsCommentsAndBlanks) {
  auto r = RelationFromCsv("# header\n\n a, 1 \n b, 2 \n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(CsvTest, RejectsMixedArity) {
  auto r = RelationFromCsv("a,b\nc\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RaggedRowRejectionNamesTheLine) {
  // Line 1 is a comment, line 2 blank, line 3 fixes the arity at 2; the
  // ragged row sits on physical line 5 and the error must say so.
  auto r = RelationFromCsv("# header\n\na,1\nb,2\nc,3,4\nd,5\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 5"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("got 3"), std::string::npos)
      << r.status().message();

  // Short rows are just as ragged as long ones.
  auto s = RelationFromCsv("a,1\nb\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.status().message().find("line 2"), std::string::npos)
      << s.status().message();
}

TEST(CsvTest, RoundTrip) {
  Relation in = StringPairs({{"a", "x"}, {"b", "y"}});
  auto text = RelationToCsv(in);
  ASSERT_TRUE(text.ok());
  auto back = RelationFromCsv(*text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, in);
}

TEST(CsvTest, RefusesInternalSymbols) {
  Relation r(1);
  r.Insert(Tuple({Value::Mark()}));
  EXPECT_FALSE(RelationToCsv(r).ok());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto r = RelationFromCsvFile("/nonexistent/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PersistenceTest, SaveAndLoadRoundTrip) {
  Database db;
  db.Put("p", UnaryStrings({"a", "b"}));
  db.Put("q", StringPairs({{"a", "x"}, {"b", "y"}}));
  db.Put("numbers", UnaryInts({1, 2, 3}));
  std::string dir =
      ::testing::TempDir() + "/bryql_persist_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Names(), db.Names());
  for (const std::string& name : db.Names()) {
    EXPECT_EQ(*(*loaded->Get(name)), *(*db.Get(name))) << name;
  }
}

TEST(PersistenceTest, EmptyRelationKeepsArity) {
  Database db;
  db.Put("empty3", Relation(3));
  std::string dir = ::testing::TempDir() + "/bryql_persist_empty";
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded->ArityOf("empty3"), 3u);
  EXPECT_TRUE((*loaded->Get("empty3"))->empty());
}

TEST(PersistenceTest, MissingManifestIsNotFound) {
  auto r = LoadDatabase("/nonexistent/dir");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PersistenceTest, ManifestMismatchRejected) {
  Database db;
  db.Put("p", UnaryStrings({"a", "b"}));
  std::string dir = ::testing::TempDir() + "/bryql_persist_bad";
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  // Corrupt the manifest's cardinality.
  {
    std::ofstream manifest(dir + "/MANIFEST");
    manifest << "p,1,99\n";
  }
  auto r = LoadDatabase(dir);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bryql
