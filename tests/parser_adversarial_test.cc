#include <gtest/gtest.h>

#include <string>

#include "calculus/parser.h"

namespace bryql {
namespace {

/// Adversarial inputs: the parser must return a clean Status on every one
/// of these — never crash, overflow the stack, or hang. The depth guard
/// (ParseLimits.max_depth, default 256) is what turns a 10k-deep
/// recursion bomb into a kInvalidArgument.

TEST(ParserAdversarialTest, DeeplyNestedParensRejectedCleanly) {
  std::string bomb;
  for (int i = 0; i < 10000; ++i) bomb += '(';
  bomb += "student(x)";
  for (int i = 0; i < 10000; ++i) bomb += ')';
  auto r = ParseFormula(bomb, {"x"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserAdversarialTest, DeeplyNestedNegationsRejectedCleanly) {
  std::string bomb = "exists x: ";
  for (int i = 0; i < 20000; ++i) bomb += '~';
  bomb += "student(x)";
  auto r = ParseQuery(bomb);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserAdversarialTest, DeeplyNestedQuantifiersRejectedCleanly) {
  std::string bomb;
  for (int i = 0; i < 10000; ++i) {
    bomb += "exists x" + std::to_string(i) + ": ";
  }
  bomb += "student(x0)";
  auto r = ParseQuery(bomb);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserAdversarialTest, DeepImplicationChainRejectedCleanly) {
  std::string bomb = "student(a)";
  for (int i = 0; i < 10000; ++i) bomb += " -> student(a)";
  auto r = ParseFormula(bomb);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserAdversarialTest, MixedNestingBombRejectedCleanly) {
  std::string bomb = "exists x: ";
  for (int i = 0; i < 5000; ++i) bomb += "~(";
  bomb += "student(x)";
  for (int i = 0; i < 5000; ++i) bomb += ')';
  auto r = ParseQuery(bomb);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserAdversarialTest, NestingUnderTheLimitStillParses) {
  std::string fine = "exists x: ";
  for (int i = 0; i < 100; ++i) fine += "~~";  // well under the default cap
  fine += "student(x)";
  auto r = ParseQuery(fine);
  ASSERT_TRUE(r.ok()) << r.status();
}

TEST(ParserAdversarialTest, CustomDepthLimitIsHonoured) {
  ParseLimits limits;
  limits.max_depth = 4;
  EXPECT_TRUE(ParseQuery("exists x: ~~(student(x))", limits).ok());
  EXPECT_FALSE(ParseQuery("exists x: ~~~~~~(student(x))", limits).ok());
}

TEST(ParserAdversarialTest, OversizedInputRejectedBeforeLexing) {
  // Default byte cap is 1 MiB; hand the lexer 2 MiB of one giant token.
  std::string huge(2 << 20, 'a');
  auto r = ParseQuery(huge);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserAdversarialTest, LongButLegalTokenWithinCapParses) {
  // A 100 KiB predicate name is obnoxious but legal: parse must succeed
  // (whether the relation exists is evaluation's problem, not parsing's).
  std::string long_name(100 << 10, 'p');
  auto r = ParseQuery("exists x: " + long_name + "(x)");
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(ParserAdversarialTest, TruncatedInputsReturnStatus) {
  const char* cases[] = {
      "",
      "{",
      "{ x",
      "{ x |",
      "{ x | student(x",
      "{ x | student(x) ",
      "exists",
      "exists x",
      "exists x:",
      "exists x: (",
      "exists x: student(x) &",
      "forall y: (lecture(y, db) ->",
      "~",
      "(",
  };
  for (const char* text : cases) {
    auto r = ParseQuery(text);
    EXPECT_FALSE(r.ok()) << "accepted truncated input: '" << text << "'";
  }
}

TEST(ParserAdversarialTest, GarbageBytesReturnStatus) {
  const std::string cases[] = {
      std::string("\xff\xfe\x00\x01\x02", 5),
      "exists x: student(\x01\x02)",
      "{ x | \xc3\x28 }",  // malformed UTF-8 sequence
      "}} | x { )(",
      "&&&&&&&&",
      "exists exists exists",
      ": : : :",
  };
  for (const std::string& text : cases) {
    auto r = ParseQuery(text);
    EXPECT_FALSE(r.ok()) << "accepted garbage input";
  }
}

TEST(ParserAdversarialTest, RepeatedParseIsDeterministic) {
  // Error paths must not leave the parser in a broken global state.
  std::string bomb = "exists x: ";
  for (int i = 0; i < 20000; ++i) bomb += '~';
  bomb += "student(x)";
  auto first = ParseQuery(bomb);
  auto second = ParseQuery(bomb);
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), second.status().code());
  EXPECT_EQ(first.status().message(), second.status().message());
  // And a good parse still works afterwards.
  EXPECT_TRUE(ParseQuery("exists x: student(x)").ok());
}

}  // namespace
}  // namespace bryql
