// Operator-level property tests on randomized relations: Proposition 3
// (the complement-join generalizes set difference and partitions its left
// operand), the mark-join/semi-join/complement-join consistency triangle,
// outer-join preservation, and division expressed through complement-joins
// — the identities §3 builds the translation on.

#include <gtest/gtest.h>

#include <random>

#include "exec/executor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

Relation RandomRelation(std::mt19937* rng, size_t arity, int domain,
                        int rows) {
  Relation rel(arity);
  for (int i = 0; i < rows; ++i) {
    std::vector<Value> values;
    for (size_t j = 0; j < arity; ++j) {
      values.push_back(Value::Int(static_cast<int64_t>((*rng)() % domain)));
    }
    rel.Insert(Tuple(std::move(values)));
  }
  return rel;
}

class AlgebraPropertyTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override {
    std::mt19937 rng(GetParam());
    db_.Put("P", RandomRelation(&rng, 2, 8, 30));
    db_.Put("Q", RandomRelation(&rng, 2, 8, 25));
    db_.Put("U1", RandomRelation(&rng, 1, 8, 10));
    db_.Put("D", RandomRelation(&rng, 2, 6, 40));
  }

  Relation Eval(const ExprPtr& e) {
    Executor exec(&db_);
    auto r = exec.Evaluate(e);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : Relation(0);
  }

  Database db_;
};

TEST_P(AlgebraPropertyTest, Proposition3Partition) {
  // P = π(P ⋈ Q) ∪ (P ⊼ Q) and ∅ = π(P ⋈ Q) ∩ (P ⊼ Q), on key $0=$0.
  ExprPtr p = Expr::Scan("P");
  ExprPtr q = Expr::Scan("Q");
  Relation semi = Eval(Expr::SemiJoin(p, q, {{0, 0}}));
  Relation anti = Eval(Expr::AntiJoin(p, q, {{0, 0}}));
  Relation both = Eval(Expr::Union(Expr::SemiJoin(p, q, {{0, 0}}),
                                   Expr::AntiJoin(p, q, {{0, 0}})));
  EXPECT_EQ(both, Eval(p));
  Relation overlap = Eval(Expr::Intersect(
      Expr::SemiJoin(p, q, {{0, 0}}), Expr::AntiJoin(p, q, {{0, 0}})));
  EXPECT_TRUE(overlap.empty());
  EXPECT_EQ(semi.size() + anti.size(), Eval(p).size());
}

TEST_P(AlgebraPropertyTest, Proposition3DifferenceIsFullKeyAntiJoin) {
  // p = q arities: P − Q = P ⊼_{1=1 ∧ ... ∧ p=q} Q.
  ExprPtr p = Expr::Scan("P");
  ExprPtr q = Expr::Scan("Q");
  Relation diff = Eval(Expr::Difference(p, q));
  Relation anti = Eval(Expr::AntiJoin(p, q, {{0, 0}, {1, 1}}));
  EXPECT_EQ(diff, anti);
}

TEST_P(AlgebraPropertyTest, SemiJoinIsProjectedJoin) {
  ExprPtr p = Expr::Scan("P");
  ExprPtr q = Expr::Scan("Q");
  Relation semi = Eval(Expr::SemiJoin(p, q, {{0, 0}}));
  Relation projected = Eval(Expr::Project(Expr::Join(p, q, {{0, 0}}),
                                          {0, 1}));
  EXPECT_EQ(semi, projected);
}

TEST_P(AlgebraPropertyTest, MarkJoinConsistentWithSemiAndAnti) {
  // σ_{mark≠∅} of the mark join = semi-join; σ_{mark=∅} = complement-join.
  ExprPtr p = Expr::Scan("P");
  ExprPtr q = Expr::Scan("Q");
  ExprPtr mark = Expr::MarkJoin(p, q, {{0, 0}});
  Relation found = Eval(Expr::Project(
      Expr::Select(mark, Predicate::IsNotNull(2)), {0, 1}));
  Relation missing = Eval(Expr::Project(
      Expr::Select(mark, Predicate::IsNull(2)), {0, 1}));
  EXPECT_EQ(found, Eval(Expr::SemiJoin(p, q, {{0, 0}})));
  EXPECT_EQ(missing, Eval(Expr::AntiJoin(p, q, {{0, 0}})));
}

TEST_P(AlgebraPropertyTest, OuterJoinPreservesLeft) {
  // "The outer-join preserves its left operand: P = π1(R1)."
  ExprPtr p = Expr::Scan("P");
  ExprPtr q = Expr::Scan("Q");
  Relation preserved =
      Eval(Expr::Project(Expr::OuterJoin(p, q, {{0, 0}}), {0, 1}));
  EXPECT_EQ(preserved, Eval(p));
}

TEST_P(AlgebraPropertyTest, ConstrainedMarkJoinOnlySkipsProbes) {
  // A constraint changes which tuples get probed, never which tuples
  // appear: the left side stays intact.
  ExprPtr p = Expr::Scan("P");
  ExprPtr q = Expr::Scan("Q");
  ExprPtr constrained = Expr::MarkJoin(
      p, q, {{0, 0}}, Predicate::ColVal(CompareOp::kLt, 1, Value::Int(4)));
  Relation rel = Eval(constrained);
  EXPECT_EQ(Eval(Expr::Project(Expr::Literal(rel), {0, 1})), Eval(p));
  // Rows failing the constraint always carry ∅.
  for (const Tuple& t : rel.rows()) {
    if (t.at(1) >= Value::Int(4)) {
      EXPECT_TRUE(t.at(2).is_null()) << t.ToString();
    }
  }
}

TEST_P(AlgebraPropertyTest, DivisionViaDoubleComplementJoin) {
  // D ÷ U1 = π0(D) ⊼ π0((π0(D) × U1) ⊼_{all} D)
  // — the "rewritten in terms of difference or complement-join" remark.
  ExprPtr d = Expr::Scan("D");
  ExprPtr u = Expr::Scan("U1");
  Relation divided = Eval(Expr::Division(d, u));
  ExprPtr candidates = Expr::Project(d, {0});
  ExprPtr all_pairs = Expr::Product(candidates, u);
  ExprPtr missing = Expr::AntiJoin(all_pairs, d, {{0, 0}, {1, 1}});
  Relation rewritten = Eval(
      Expr::AntiJoin(candidates, Expr::Project(missing, {0}), {{0, 0}}));
  EXPECT_EQ(divided, rewritten);
}

TEST_P(AlgebraPropertyTest, GroupDivisionMatchesReferenceLoop) {
  // Reference: per (keep, group), check all group values are covered.
  auto d_rel = db_.Get("D");
  auto q_rel = db_.Get("Q");
  ASSERT_TRUE(d_rel.ok());
  ASSERT_TRUE(q_rel.ok());
  // Dividend: D as [keep=$0, group=$0 of pairs...]; build D3 = P (2 cols)
  // extended: use Q as divisor [group, value], and build dividend rows
  // (k, g, v) from the product of U1 and Q.
  Relation dividend(3);
  for (const Tuple& k : (*db_.Get("U1"))->rows()) {
    for (const Tuple& gv : (*q_rel)->rows()) {
      // Keep roughly half of the combinations, deterministically.
      size_t h = HashCombine(k.Hash(), gv.Hash());
      if (h % 2 == 0) dividend.Insert(k.Concat(gv));
    }
  }
  db_.Put("D3", dividend);
  Relation got = Eval(Expr::GroupDivision(Expr::Scan("D3"),
                                          Expr::Scan("Q"), 1));
  // Reference computation.
  Relation expected(2);
  for (const Tuple& k : (*db_.Get("U1"))->rows()) {
    std::set<Value> groups;
    for (const Tuple& gv : (*q_rel)->rows()) groups.insert(gv.at(0));
    for (const Value& g : groups) {
      bool all = true;
      bool any = false;
      for (const Tuple& gv : (*q_rel)->rows()) {
        if (gv.at(0) != g) continue;
        any = true;
        Tuple needed = k.Concat(gv);
        if (!dividend.Contains(needed)) {
          all = false;
          break;
        }
      }
      if (any && all) expected.Insert(k.Concat(Tuple({g})));
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_P(AlgebraPropertyTest, SetAlgebraIdentities) {
  ExprPtr p = Expr::Scan("P");
  ExprPtr q = Expr::Scan("Q");
  // P ∖ (P ∖ Q) = P ∩ Q.
  EXPECT_EQ(Eval(Expr::Difference(p, Expr::Difference(p, q))),
            Eval(Expr::Intersect(p, q)));
  // (P ∪ Q) ∖ Q ⊆ P; P ∖ Q disjoint from Q.
  Relation diff = Eval(Expr::Difference(Expr::Union(p, q), q));
  Relation p_rel = Eval(p);
  for (const Tuple& t : diff.rows()) {
    EXPECT_TRUE(p_rel.Contains(t));
  }
  EXPECT_TRUE(Eval(Expr::Intersect(Expr::Difference(p, q), q)).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace bryql
