#include <gtest/gtest.h>

#include "storage/builder.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace bryql {
namespace {

TEST(TupleTest, ConcatAndProject) {
  Tuple a = Ints({1, 2});
  Tuple b = Ints({3});
  Tuple c = a.Concat(b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c.at(2), Value::Int(3));
  Tuple p = c.Project({2, 0, 0});
  EXPECT_EQ(p, Ints({3, 1, 1}));
}

TEST(TupleTest, EqualityAndOrdering) {
  EXPECT_EQ(Ints({1, 2}), Ints({1, 2}));
  EXPECT_NE(Ints({1, 2}), Ints({2, 1}));
  EXPECT_LT(Ints({1, 2}), Ints({1, 3}));
  EXPECT_LT(Ints({1}), Ints({1, 0}));  // shorter first
}

TEST(TupleTest, HashConsistency) {
  EXPECT_EQ(Ints({1, 2}).Hash(), Ints({1, 2}).Hash());
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(Strs({"a", "b"}).ToString(), "('a', 'b')");
  EXPECT_EQ(Tuple{}.ToString(), "()");
}

TEST(RelationTest, SetSemantics) {
  Relation r(1);
  EXPECT_TRUE(*r.Insert(Ints({1})));
  EXPECT_FALSE(*r.Insert(Ints({1})));  // duplicate collapses
  EXPECT_TRUE(*r.Insert(Ints({2})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Ints({1})));
  EXPECT_FALSE(r.Contains(Ints({3})));
}

TEST(RelationTest, InsertRejectsArityMismatch) {
  Relation r(2);
  auto bad = r.Insert(Ints({1}));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.size(), 0u);  // rejected tuple never lands in the row store
  auto also_bad = r.Insert(Ints({1, 2, 3}));
  EXPECT_FALSE(also_bad.ok());
  EXPECT_TRUE(*r.Insert(Ints({1, 2})));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, BuildIndexRejectsOutOfRangeColumn) {
  Relation r(2);
  EXPECT_TRUE(*r.Insert(Ints({1, 2})));
  EXPECT_TRUE(r.BuildIndex(1).ok());
  auto bad = r.BuildIndex(2);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, MatchesWithoutIndexIsEmptyNotUB) {
  Relation r(2);
  EXPECT_TRUE(*r.Insert(Ints({1, 2})));
  // No index on column 0: degrade to "no hits" instead of asserting.
  EXPECT_TRUE(r.Matches(0, Value::Int(1)).empty());
}

TEST(RelationTest, FromRowsRejectsMixedArity) {
  auto bad = Relation::FromRows({Ints({1}), Ints({1, 2})});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, FromRowsDeduplicates) {
  auto r = Relation::FromRows({Ints({1}), Ints({1}), Ints({2})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(RelationTest, EqualityIsOrderInsensitive) {
  auto a = Relation::FromRows({Ints({1}), Ints({2})});
  auto b = Relation::FromRows({Ints({2}), Ints({1})});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(RelationTest, InequalityBySizeAndContent) {
  auto a = Relation::FromRows({Ints({1})});
  auto b = Relation::FromRows({Ints({2})});
  auto c = Relation::FromRows({Ints({1}), Ints({2})});
  EXPECT_NE(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST(RelationTest, ArityZeroEncodesBooleans) {
  Relation fals(0);
  Relation tru(0);
  tru.Insert(Tuple{});
  EXPECT_TRUE(fals.empty());
  EXPECT_EQ(tru.size(), 1u);
  EXPECT_FALSE(*tru.Insert(Tuple{}));  // only one empty tuple exists
}

TEST(RelationTest, SortedRows) {
  auto r = Relation::FromRows({Ints({3}), Ints({1}), Ints({2})});
  std::vector<Tuple> sorted = r->SortedRows();
  EXPECT_EQ(sorted.front(), Ints({1}));
  EXPECT_EQ(sorted.back(), Ints({3}));
}

TEST(BuilderTest, Helpers) {
  Relation u = UnaryStrings({"a", "b", "a"});
  EXPECT_EQ(u.size(), 2u);
  Relation p = StringPairs({{"a", "x"}, {"b", "y"}});
  EXPECT_EQ(p.arity(), 2u);
  EXPECT_TRUE(p.Contains(Strs({"b", "y"})));
  EXPECT_EQ(UnaryInts({1, 2, 3}).size(), 3u);
}

}  // namespace
}  // namespace bryql
