#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoints.h"
#include "workload/university.h"

namespace bryql {
namespace {

using namespace std::chrono_literals;

UniversityConfig SmallConfig(uint64_t seed) {
  UniversityConfig config;
  config.students = 40;
  config.professors = 10;
  config.lectures = 18;
  config.seed = seed;
  return config;
}

const char kOpenQuery[] =
    "{ x | student(x) & ~forall y: (lecture(y, db) -> attends(x, y)) }";
const char kClosedQuery[] =
    "exists x: student(x) & exists y: (lecture(y, db) & attends(x, y))";

/// A witness-free closed query: the innermost contradiction forces the
/// nested-loop strategy through all |student|^5 candidate bindings. The
/// queue tests run it with a CancellationToken so a "slot holder" blocks
/// deterministically until the test releases it — no sleep calibration.
const char kHoldQuery[] =
    "exists v: exists w: exists x: exists y: exists z: (student(v) & "
    "student(w) & student(x) & student(y) & student(z) & ~student(v))";

void ExpectSameAnswer(const Answer& a, const Answer& b) {
  ASSERT_EQ(a.closed, b.closed);
  if (a.closed) {
    EXPECT_EQ(a.truth, b.truth);
  } else {
    EXPECT_EQ(a.relation, b.relation);
  }
}

/// Polls `predicate` for up to two seconds — the tests synchronize on
/// service counters instead of fixed-length sleeps.
template <typename Fn>
bool WaitFor(const Fn& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return predicate();
}

TEST(QueryServiceTest, FaultFreePathMatchesDirectRun) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  QueryService service(&qp);

  auto direct_open = qp.Run(kOpenQuery);
  auto direct_closed = qp.Run(kClosedQuery);
  ASSERT_TRUE(direct_open.ok());
  ASSERT_TRUE(direct_closed.ok());

  auto via_service_open = service.Run(kOpenQuery);
  auto via_service_closed = service.Run(kClosedQuery);
  ASSERT_TRUE(via_service_open.ok()) << via_service_open.status();
  ASSERT_TRUE(via_service_closed.ok()) << via_service_closed.status();
  ExpectSameAnswer(direct_open->answer, via_service_open->execution.answer);
  ExpectSameAnswer(direct_closed->answer,
                   via_service_closed->execution.answer);
  EXPECT_EQ(via_service_open->attempts, 1u);
  EXPECT_EQ(via_service_open->degradation_level, 0);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(QueryServiceTest, SemanticErrorsPassThroughWithoutRetries) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  QueryService service(&qp);

  auto bad_parse = service.Run("{ x | ");
  ASSERT_FALSE(bad_parse.ok());
  EXPECT_EQ(bad_parse.status().code(), StatusCode::kInvalidArgument);
  auto bad_name = service.Run("exists x: no_such_relation(x)");
  ASSERT_FALSE(bad_name.ok());
  EXPECT_NE(bad_name.status().code(), StatusCode::kTransient);
  EXPECT_EQ(service.stats().retries, 0u)
      << "semantic errors must not burn retry budget";
}

TEST(QueryServiceTest, ConcurrencyLimiterBoundsParallelExecution) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.max_concurrency = 2;
  options.max_queue_depth = 64;
  QueryService service(&qp, options);

  constexpr size_t kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<size_t> failures{0};
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      for (int j = 0; j < 4; ++j) {
        auto reply = service.Run(kOpenQuery);
        if (!reply.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kClients * 4);
  EXPECT_LE(stats.peak_running, 2u)
      << "more queries ran concurrently than the limiter allows";
}

TEST(QueryServiceTest, FullQueueRejectsWithRetryAfterHint) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.max_concurrency = 1;
  options.max_queue_depth = 1;
  QueryService service(&qp, options);

  CancellationToken token;
  QueryOptions held;
  held.cancellation = &token;

  // Thread A blocks in the single execution slot until cancelled; thread
  // B occupies the single queue seat. The third caller must be shed.
  std::thread a([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held);
  });
  const bool holder_running =
      WaitFor([&] { return service.stats().admitted >= 1; });
  std::thread b([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held);
  });
  const bool seat_taken = holder_running &&
      WaitFor([&] { return service.stats().peak_waiting >= 1; });

  auto shed = service.Run(kClosedQuery);
  token.Cancel();
  a.join();
  b.join();

  ASSERT_TRUE(holder_running);
  ASSERT_TRUE(seat_taken);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(RetryAfterMsHint(shed.status()), 0u) << shed.status();
  EXPECT_GE(service.stats().rejected_queue_full, 1u);
}

TEST(QueryServiceTest, DeadlineAwareRejectionShedsDoomedRequests) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.max_concurrency = 1;
  options.max_queue_depth = 16;
  QueryService service(&qp, options);

  CancellationToken token;
  QueryOptions held;
  held.cancellation = &token;

  std::thread a([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held);
  });
  const bool holder_running =
      WaitFor([&] { return service.stats().admitted >= 1; });
  std::thread b([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held);
  });
  const bool seat_taken = holder_running &&
      WaitFor([&] { return service.stats().peak_waiting >= 1; });

  // A queue wait is certainly ahead of this request, so a one-nanosecond
  // deadline cannot be met: the service must reject instantly instead of
  // letting the caller wait out a doomed timeout.
  QueryOptions doomed;
  doomed.deadline = std::chrono::nanoseconds(1);
  auto shed = service.Run(kClosedQuery, Strategy::kBry, doomed);
  token.Cancel();
  a.join();
  b.join();

  ASSERT_TRUE(holder_running);
  ASSERT_TRUE(seat_taken);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted)
      << shed.status();
  EXPECT_GT(RetryAfterMsHint(shed.status()), 0u);
  EXPECT_GE(service.stats().rejected_deadline, 1u);
}

TEST(QueryServiceTest, FastQueriesDoNotPoisonTheLatencyEstimator) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.max_concurrency = 1;
  options.max_queue_depth = 1;
  QueryService service(&qp, options);

  // Microsecond-scale queries pull the latency EWMA *down* from its
  // deliberately pessimistic 0.5ms initial estimate. A signed-arithmetic
  // bug here once wrapped the average to ~2^61 ns on the very first fast
  // sample, after which every deadlined request was shed regardless of
  // load and retry-after hints spanned decades.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.Run(kClosedQuery).ok());
  }

  CancellationToken token;
  QueryOptions held;
  held.cancellation = &token;
  std::thread holder([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held);
  });
  const bool holder_running =
      WaitFor([&] { return service.stats().admitted >= 9; });

  // The slot is busy but the queue is empty: with a healthy estimator a
  // ten-second deadline dwarfs the expected wait, so this request must
  // queue and eventually answer — not be shed as doomed.
  QueryOptions generous;
  generous.deadline = 10s;
  std::thread queued([&] {
    auto reply = service.Run(kClosedQuery, Strategy::kBry, generous);
    EXPECT_TRUE(reply.ok()) << reply.status();
  });
  const bool seat_taken = holder_running &&
      WaitFor([&] { return service.stats().peak_waiting >= 1; });

  // And a caller shed off the now-full queue must get a hint measured in
  // milliseconds, not millennia.
  auto shed = service.Run(kClosedQuery);
  token.Cancel();
  holder.join();
  queued.join();

  ASSERT_TRUE(holder_running);
  ASSERT_TRUE(seat_taken);
  ASSERT_FALSE(shed.ok());
  ASSERT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  const uint64_t hint_ms = RetryAfterMsHint(shed.status());
  EXPECT_GE(hint_ms, 1u);
  EXPECT_LT(hint_ms, 600000u) << shed.status();
  EXPECT_EQ(service.stats().rejected_deadline, 0u)
      << "a generously deadlined request was shed from an empty queue";
}

TEST(QueryServiceTest, PriorityOrdersTheAdmissionQueue) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.max_concurrency = 1;
  options.max_queue_depth = 8;
  QueryService service(&qp, options);

  CancellationToken token;
  QueryOptions held;
  held.cancellation = &token;

  std::thread holder([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held);
  });
  const bool holder_running =
      WaitFor([&] { return service.stats().admitted >= 1; });

  // Enqueue a batch request first, then an interactive one. When the
  // holder releases the slot, the interactive request must be seated
  // first despite arriving second. Both queued requests are hold queries
  // with their own tokens, so which one got the slot is observable
  // directly: cancelling only the interactive token releases exactly the
  // request that was seated, while a queued request ignores it (the
  // admission queue does not poll cancellation).
  CancellationToken batch_token, interactive_token;
  QueryOptions held_batch, held_interactive;
  held_batch.cancellation = &batch_token;
  held_interactive.cancellation = &interactive_token;
  std::atomic<int> order{0};
  std::atomic<int> batch_done{-1};
  std::atomic<int> interactive_done{-1};
  std::thread batch([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held_batch,
                      Priority::kBatch);
    batch_done.store(order.fetch_add(1));
  });
  const bool batch_queued = holder_running &&
      WaitFor([&] { return service.stats().peak_waiting >= 1; });
  std::thread interactive([&] {
    (void)service.Run(kHoldQuery, Strategy::kNestedLoop, held_interactive,
                      Priority::kInteractive);
    interactive_done.store(order.fetch_add(1));
  });
  const bool both_queued = batch_queued &&
      WaitFor([&] { return service.stats().peak_waiting >= 2; });

  token.Cancel();
  holder.join();
  // One of the two queued requests is now seated (and blocked in the
  // engine on its own token); the other is still queued. If priority
  // ordering works it is the interactive one that holds the slot, so
  // cancelling its token must complete it while the batch request has
  // not finished.
  const bool seated_second = WaitFor([&] {
    return service.stats().admitted >= 2;
  });
  interactive_token.Cancel();
  const bool interactive_first = WaitFor([&] {
    return interactive_done.load() != -1;
  });
  const int batch_stamp_then = batch_done.load();
  batch_token.Cancel();
  batch.join();
  interactive.join();

  ASSERT_TRUE(holder_running);
  ASSERT_TRUE(batch_queued);
  ASSERT_TRUE(both_queued);
  ASSERT_TRUE(seated_second);
  EXPECT_TRUE(interactive_first)
      << "the interactive request must be seated before the batch one";
  EXPECT_EQ(batch_stamp_then, -1)
      << "the batch request finished while the interactive one was queued";
  EXPECT_LT(interactive_done.load(), batch_done.load());
}

class ServiceFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoints::enabled()) {
      GTEST_SKIP() << "built without BRYQL_FAILPOINTS; nothing to inject";
    }
    failpoints::DisarmAll();
  }
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(ServiceFailpointTest, RetriesRideOutAProbabilisticFault) {
  // A flaky scan (10% per open, seed-fixed schedule) against a service
  // with a deep retry budget: every reply must be the fault-free answer
  // or a clean kTransient — the chaos invariant, in miniature and
  // deterministic because a single thread drives one hit sequence.
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  auto oracle = qp.Run(kClosedQuery);
  ASSERT_TRUE(oracle.ok());

  ServiceOptions options;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff = 100us;
  QueryService service(&qp, options);
  failpoints::ArmProbabilistic("exec.scan.open",
                               Status::Transient("flaky scan"), 0.1, 1234);
  size_t succeeded = 0;
  for (int i = 0; i < 20; ++i) {
    auto reply = service.Run(kClosedQuery);
    if (reply.ok()) {
      ++succeeded;
      ExpectSameAnswer(oracle->answer, reply->execution.answer);
    } else {
      EXPECT_EQ(reply.status().code(), StatusCode::kTransient)
          << reply.status();
    }
  }
  EXPECT_GT(succeeded, 0u);
  // At a 10% per-hit rate across 20 runs some attempt certainly failed;
  // the retry machinery must actually have engaged.
  ServiceStats stats = service.stats();
  EXPECT_GT(stats.transient_failures, 0u);
  EXPECT_GT(stats.retries, 0u);
}

TEST_F(ServiceFailpointTest, PersistentTransientFaultExhaustsAttempts) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 100us;
  options.enable_degradation = false;
  QueryService service(&qp, options);

  failpoints::Arm("exec.scan.open", Status::Transient("always down"));
  auto reply = service.Run(kClosedQuery);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kTransient);
  EXPECT_NE(reply.status().message().find("attempts exhausted"),
            std::string::npos)
      << reply.status();
  EXPECT_NE(reply.status().message().find("always down"), std::string::npos)
      << "the last underlying error must be carried in the message";
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.transient_failures, 3u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(ServiceFailpointTest, DegradationLadderEscapesThrowSite) {
  // exec.physical.throw fires on every batched-operator dispatch but is
  // structurally absent from the tuple-at-a-time engine: only a service
  // that walks the full ladder (serial → cache bypass → tuple engine)
  // can still answer. This is the ladder's reason to exist, in one test.
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  auto oracle = qp.Run(kOpenQuery);
  ASSERT_TRUE(oracle.ok());

  failpoints::Arm("exec.physical.throw", Status::Internal("operator bomb"));
  ServiceOptions options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = 100us;
  QueryService service(&qp, options);
  auto reply = service.Run(kOpenQuery);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ExpectSameAnswer(oracle->answer, reply->execution.answer);
  EXPECT_EQ(reply->attempts, 4u);
  EXPECT_EQ(reply->degradation_level, 3);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.degraded_tuple_engine, 1u);
  EXPECT_GE(stats.degraded_serial, 1u);
  EXPECT_GE(stats.degraded_cache_bypass, 1u);

  // Without the ladder the same fault is terminal.
  failpoints::DisarmAll();
  failpoints::Arm("exec.physical.throw", Status::Internal("operator bomb"));
  ServiceOptions rigid = options;
  rigid.enable_degradation = false;
  QueryService undegraded(&qp, rigid);
  auto stuck = undegraded.Run(kOpenQuery);
  ASSERT_FALSE(stuck.ok());
  EXPECT_EQ(stuck.status().code(), StatusCode::kTransient);
}

TEST_F(ServiceFailpointTest, PlainInternalFailureIsNeitherRetriedNorRelabelled) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = 100us;
  QueryService service(&qp, options);

  // A deterministic invariant breach — plain kInternal, not the tagged
  // barrier class — fails the same way on every attempt. The service
  // must return it verbatim after one try: retrying burns budget for
  // nothing, and a kTransient relabel ("try again later") would invite
  // clients to retry a permanent bug forever.
  failpoints::Arm("exec.scan.open", Status::Internal("broken invariant"));
  auto reply = service.Run(kClosedQuery);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(reply.status().IsContainedException());
  EXPECT_EQ(reply.status().message(), "broken invariant")
      << "a deterministic kInternal must pass through unwrapped";
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.transient_failures, 0u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(ServiceFailpointTest, DeadlineBoundsRetriesAndBackoff) {
  Database db = MakeUniversity(SmallConfig(3));
  QueryProcessor qp(&db);
  ServiceOptions options;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff = 20ms;
  options.retry.max_backoff = 200ms;
  QueryService service(&qp, options);

  // Every engine (volcano included) opens scans, so every ladder rung
  // fails: the request can only end by deadline or attempt exhaustion,
  // and the deadline must win long before ten 20ms+ backoffs elapse.
  failpoints::Arm("exec.scan.open", Status::Transient("always down"));
  QueryOptions bounded;
  bounded.deadline = 60ms;
  const auto start = std::chrono::steady_clock::now();
  auto reply = service.Run(kClosedQuery, Strategy::kBry, bounded);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsTransient() ||
              reply.status().code() == StatusCode::kDeadlineExceeded)
      << reply.status();
  EXPECT_LT(elapsed, 2s) << "the deadline must bound the retry loop";
}

}  // namespace
}  // namespace bryql
