#include "exec/stats.h"

#include <gtest/gtest.h>

#include "core/query_processor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

TEST(ExecStatsTest, DefaultsToZero) {
  ExecStats s;
  EXPECT_EQ(s.tuples_scanned, 0u);
  EXPECT_EQ(s.tuples_materialized, 0u);
  EXPECT_EQ(s.comparisons, 0u);
  EXPECT_EQ(s.hash_probes, 0u);
  EXPECT_EQ(s.operators, 0u);
}

TEST(ExecStatsTest, AddAccumulates) {
  ExecStats a, b;
  a.tuples_scanned = 3;
  a.comparisons = 5;
  b.tuples_scanned = 7;
  b.hash_probes = 11;
  a.Add(b);
  EXPECT_EQ(a.tuples_scanned, 10u);
  EXPECT_EQ(a.comparisons, 5u);
  EXPECT_EQ(a.hash_probes, 11u);
}

TEST(ExecStatsTest, ToStringNamesEveryCounter) {
  ExecStats s;
  s.tuples_scanned = 1;
  s.tuples_materialized = 2;
  s.comparisons = 3;
  s.hash_probes = 4;
  s.operators = 5;
  std::string text = s.ToString();
  EXPECT_NE(text.find("scanned=1"), std::string::npos);
  EXPECT_NE(text.find("materialized=2"), std::string::npos);
  EXPECT_NE(text.find("comparisons=3"), std::string::npos);
  EXPECT_NE(text.find("probes=4"), std::string::npos);
  EXPECT_NE(text.find("operators=5"), std::string::npos);
}

TEST(ExecStatsTest, ScanCountersMatchRelationSizes) {
  // Every base tuple read is accounted: a full scan of each relation in a
  // product reads exactly |L| + |R| (right side is materialized once).
  Database db;
  db.Put("L", UnaryInts({1, 2, 3}));
  db.Put("R", UnaryInts({4, 5}));
  QueryProcessor qp(&db);
  auto exec = qp.Run("{ x, y | L(x) & R(y) }");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->answer.relation.size(), 6u);
  EXPECT_EQ(exec->stats.tuples_scanned, 5u);
}

TEST(ExecStatsTest, RangeScannedOnceProperty) {
  // The paper's headline property of the improved translation: each range
  // relation is searched exactly once for the producer/filter shapes.
  Database db;
  db.Put("p", UnaryInts({1, 2, 3, 4}));
  db.Put("q", UnaryInts({2, 4}));
  db.Put("r", UnaryInts({4}));
  QueryProcessor qp(&db);
  auto exec = qp.Run("{ x | p(x) & (q(x) | r(x)) & ~q(x) }");
  ASSERT_TRUE(exec.ok()) << exec.status();
  // p scanned once (4), q twice — once for the filter chain and once for
  // the negated conjunct (2 + 2) — and r once (1).
  EXPECT_LE(exec->stats.tuples_scanned, 4u + 2u + 2u + 1u);
}

}  // namespace
}  // namespace bryql
