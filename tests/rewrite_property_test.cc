// Property tests for §2.4: the rewriting system is noetherian
// (Proposition 1) and confluent (Proposition 2), and every rule preserves
// logical equivalence — checked on randomly generated closed formulas by
// (a) applying redexes in randomized orders and comparing normal forms
// modulo ∧/∨ reordering, and (b) evaluating original vs canonical form
// with the independent nested-loop interpreter on random databases.

#include <gtest/gtest.h>

#include <random>

#include "calculus/analysis.h"
#include "nestedloop/nested_loop.h"
#include "rewrite/rewriter.h"
#include "storage/builder.h"

namespace bryql {
namespace {

/// Generates random closed formulas over unary p1/p2, binary r1/r2.
/// Quantifiers always introduce a range atom, so the results are formulas
/// with restricted quantifications (evaluable by the reference).
class FormulaGenerator {
 public:
  explicit FormulaGenerator(unsigned seed) : rng_(seed) {}

  FormulaPtr Closed() {
    var_counter_ = 0;
    return Quantified(3, {});
  }

 private:
  using Vars = std::vector<std::string>;

  size_t Pick(size_t n) { return rng_() % n; }
  bool Coin(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }

  std::string FreshVar() { return "v" + std::to_string(var_counter_++); }

  Term RandomTerm(const Vars& scope) {
    if (!scope.empty() && Coin(0.8)) {
      return Term::Var(scope[Pick(scope.size())]);
    }
    static const char* constants[] = {"a", "b", "c"};
    return Term::Const(Value::String(constants[Pick(3)]));
  }

  FormulaPtr RandomAtom(const Vars& scope) {
    if (Coin(0.5)) {
      const char* pred = Coin(0.5) ? "p1" : "p2";
      return Formula::Atom(pred, {RandomTerm(scope)});
    }
    const char* pred = Coin(0.5) ? "r1" : "r2";
    return Formula::Atom(pred, {RandomTerm(scope), RandomTerm(scope)});
  }

  /// A quantified subformula whose variable has a range.
  FormulaPtr Quantified(int depth, const Vars& scope) {
    std::string v = FreshVar();
    Vars inner = scope;
    inner.push_back(v);
    FormulaPtr range =
        Formula::Atom(Coin(0.5) ? "p1" : "p2", {Term::Var(v)});
    FormulaPtr body = Body(depth - 1, inner);
    if (Coin(0.5)) {
      return Formula::Exists({v}, Formula::And(range, body));
    }
    return Formula::Forall({v}, Formula::Implies(range, body));
  }

  /// A boolean body over the variables in scope.
  FormulaPtr Body(int depth, const Vars& scope) {
    if (depth <= 0 || Coin(0.3)) {
      FormulaPtr atom = RandomAtom(scope);
      return Coin(0.3) ? Formula::Not(atom) : atom;
    }
    switch (Pick(6)) {
      case 0:
        return Formula::And(Body(depth - 1, scope), Body(depth - 1, scope));
      case 1:
        return Formula::Or(Body(depth - 1, scope), Body(depth - 1, scope));
      case 2:
        return Formula::Not(Body(depth - 1, scope));
      case 3:
        return Quantified(depth, scope);
      case 4:
        return Formula::Iff(Body(depth - 1, scope), Body(depth - 1, scope));
      default:
        return Formula::Implies(Body(depth - 1, scope),
                                Body(depth - 1, scope));
    }
  }

  std::mt19937 rng_;
  size_t var_counter_ = 0;
};

Database RandomDb(unsigned seed) {
  std::mt19937 rng(seed);
  const char* domain[] = {"a", "b", "c", "d"};
  Database db;
  for (const char* name : {"p1", "p2"}) {
    Relation rel(1);
    for (int i = 0; i < 4; ++i) {
      if (rng() % 2) rel.Insert(Tuple({Value::String(domain[i])}));
    }
    db.Put(name, std::move(rel));
  }
  for (const char* name : {"r1", "r2"}) {
    Relation rel(2);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (rng() % 3 == 0) {
          rel.Insert(
              Tuple({Value::String(domain[i]), Value::String(domain[j])}));
        }
      }
    }
    db.Put(name, std::move(rel));
  }
  return db;
}

class RewritePropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RewritePropertyTest, NormalizationTerminates) {
  // Proposition 1: the system is noetherian. max_steps is a hard error.
  FormulaGenerator gen(GetParam());
  for (int i = 0; i < 20; ++i) {
    FormulaPtr f = gen.Closed();
    auto norm = Normalize(f);
    ASSERT_TRUE(norm.ok()) << f->ToString() << ": " << norm.status();
    // The result is a genuine normal form: no redex remains.
    EXPECT_TRUE(FindApplications(norm->formula).empty())
        << norm->formula->ToString();
  }
}

TEST_P(RewritePropertyTest, RandomOrdersConverge) {
  // Proposition 2 (Church-Rosser): any reduction order reaches the same
  // normal form, up to the ∧/∨ child order (associativity/commutativity),
  // which different distribution orders permute.
  FormulaGenerator gen(GetParam() + 1000);
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    FormulaPtr f = gen.Closed();
    auto deterministic = Normalize(f);
    ASSERT_TRUE(deterministic.ok());
    for (int attempt = 0; attempt < 3; ++attempt) {
      FormulaPtr g = f;
      size_t steps = 0;
      while (steps++ < 20000) {
        std::vector<RuleApplication> apps = FindApplications(g);
        if (apps.empty()) break;
        const RuleApplication& app = apps[rng() % apps.size()];
        auto next = ApplyRule(g, app);
        ASSERT_TRUE(next.ok()) << app.ToString() << " on " << g->ToString();
        g = *next;
      }
      ASSERT_LT(steps, 20000u) << "runaway reduction for " << f->ToString();
      EXPECT_TRUE(Formula::Equal(SortAC(g), SortAC(deterministic->formula)))
          << "orders diverge for: " << f->ToString() << "\n  got:  "
          << g->ToString() << "\n  want: "
          << deterministic->formula->ToString();
    }
  }
}

TEST_P(RewritePropertyTest, NormalizationPreservesSemantics) {
  // Every rule preserves logical equivalence: the canonical form answers
  // exactly as the original under the independent Figure 1 interpreter.
  FormulaGenerator gen(GetParam() + 2000);
  int evaluated = 0;
  for (int i = 0; i < 20; ++i) {
    FormulaPtr f = gen.Closed();
    auto norm = Normalize(f);
    ASSERT_TRUE(norm.ok());
    for (unsigned db_seed = 0; db_seed < 3; ++db_seed) {
      Database db = RandomDb(db_seed * 97 + GetParam());
      NestedLoopEvaluator eval(&db);
      auto original = eval.EvaluateClosed(f);
      auto canonical = eval.EvaluateClosed(norm->formula);
      if (!original.ok() || !canonical.ok()) continue;  // out-of-class
      ++evaluated;
      EXPECT_EQ(*original, *canonical)
          << "semantics changed for: " << f->ToString() << "\n  canonical: "
          << norm->formula->ToString();
    }
  }
  // The generator is designed so most samples are evaluable.
  EXPECT_GT(evaluated, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest,
                         ::testing::Range(0u, 16u));

}  // namespace
}  // namespace bryql
