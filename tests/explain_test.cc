// EXPLAIN surfaces: plan pretty-printing, canonical-form reporting and
// cost annotation, across strategies — what a user debugging a query sees.

#include <gtest/gtest.h>

#include "algebra/cost_model.h"
#include "core/query_processor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

Database MakeDb() {
  Database db;
  db.Put("student", UnaryStrings({"ann", "bob"}));
  db.Put("lecture", StringPairs({{"l1", "db"}, {"l2", "ai"}}));
  db.Put("attends", StringPairs({{"ann", "l1"}, {"bob", "l2"}}));
  db.Put("speaks", StringPairs({{"ann", "french"}}));
  return db;
}

TEST(ExplainTest, CanonicalFormReported) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto exec = qp.Explain(
      "exists x: student(x) & (forall y: lecture(y, db) -> attends(x, y))");
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_NE(exec->canonical, nullptr);
  // Rules 4/5 applied: the ∀ is gone.
  EXPECT_EQ(exec->canonical->ToString().find("forall"), std::string::npos);
  EXPECT_GE(exec->rewrite_steps, 1u);
}

TEST(ExplainTest, PlanTreeNamesOperators) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto exec = qp.Explain("{ x | student(x) & ~speaks(x, french) }");
  ASSERT_TRUE(exec.ok());
  std::string plan = exec->plan->ToString();
  EXPECT_NE(plan.find("ComplementJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan student"), std::string::npos) << plan;
}

TEST(ExplainTest, MarkJoinPlansShowConstraints) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto exec = qp.Explain(
      "{ x | student(x) & (speaks(x, french) | attends(x, l1)) }");
  ASSERT_TRUE(exec.ok());
  std::string plan = exec->plan->ToString();
  EXPECT_NE(plan.find("ConstrainedOuterJoin"), std::string::npos) << plan;
  // The second join is guarded by a "not yet accepted" constraint.
  EXPECT_NE(plan.find("if "), std::string::npos) << plan;
}

TEST(ExplainTest, NestedLoopStrategyHasNoPlan) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto exec = qp.Explain("exists x: student(x)", Strategy::kNestedLoop);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->plan, nullptr);
  EXPECT_NE(exec->canonical, nullptr);
}

TEST(ExplainTest, ClassicalStrategyHasNoCanonicalPhase) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto exec = qp.Explain("exists x: student(x)", Strategy::kClassical);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->canonical, nullptr);
  EXPECT_NE(exec->plan, nullptr);
}

TEST(ExplainTest, CostAnnotationCoversEveryNode) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto exec = qp.Explain(
      "{ x | student(x) & (exists y: attends(x, y)) }");
  ASSERT_TRUE(exec.ok());
  CostModel model(&db);
  auto annotated = model.Annotate(exec->plan);
  ASSERT_TRUE(annotated.ok()) << annotated.status();
  // One "rows~" annotation per operator node.
  size_t nodes = exec->plan->Size();
  size_t count = 0, pos = 0;
  while ((pos = annotated->find("rows~", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, nodes) << *annotated;
}

TEST(ExplainTest, AnswerToStringForms) {
  Database db = MakeDb();
  QueryProcessor qp(&db);
  auto closed = qp.Run("exists x: student(x)");
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->answer.ToString(), "true");
  auto open = qp.Run("{ x | student(x) }");
  ASSERT_TRUE(open.ok());
  EXPECT_NE(open->answer.ToString().find("'ann'"), std::string::npos);
}

}  // namespace
}  // namespace bryql
