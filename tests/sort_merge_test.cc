// The sort-merge join family (exec/sort_merge): identical results to the
// hash implementations on randomized inputs, for every variant, plus the
// Definition 6/7 semantics checks.

#include "exec/sort_merge.h"

#include <gtest/gtest.h>

#include <random>

#include "exec/executor.h"
#include "storage/builder.h"
#include "workload/university.h"
#include "core/query_processor.h"

namespace bryql {
namespace {

Relation RandomRelation(std::mt19937* rng, size_t arity, int domain,
                        int rows) {
  Relation rel(arity);
  for (int i = 0; i < rows; ++i) {
    std::vector<Value> values;
    for (size_t j = 0; j < arity; ++j) {
      values.push_back(Value::Int(static_cast<int64_t>((*rng)() % domain)));
    }
    rel.Insert(Tuple(std::move(values)));
  }
  return rel;
}

class SortMergeTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override {
    std::mt19937 rng(GetParam());
    db_.Put("L", RandomRelation(&rng, 2, 7, 40));
    db_.Put("R", RandomRelation(&rng, 2, 7, 30));
  }

  Relation EvalWith(ExecOptions::JoinAlgorithm algorithm,
                    const ExprPtr& plan) {
    ExecOptions options;
    options.join_algorithm = algorithm;
    Executor exec(&db_, options);
    auto r = exec.Evaluate(plan);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : Relation(0);
  }

  void ExpectAgreement(const ExprPtr& plan) {
    EXPECT_EQ(EvalWith(ExecOptions::JoinAlgorithm::kHash, plan),
              EvalWith(ExecOptions::JoinAlgorithm::kSortMerge, plan))
        << plan->ToString();
  }

  Database db_;
};

TEST_P(SortMergeTest, InnerJoinAgrees) {
  ExpectAgreement(Expr::Join(Expr::Scan("L"), Expr::Scan("R"), {{0, 0}}));
  ExpectAgreement(
      Expr::Join(Expr::Scan("L"), Expr::Scan("R"), {{0, 0}, {1, 1}}));
}

TEST_P(SortMergeTest, JoinWithResidualAgrees) {
  ExpectAgreement(Expr::Join(
      Expr::Scan("L"), Expr::Scan("R"), {{0, 0}},
      Predicate::ColCol(CompareOp::kLt, 1, 3)));
}

TEST_P(SortMergeTest, SemiAndComplementJoinAgree) {
  ExpectAgreement(Expr::SemiJoin(Expr::Scan("L"), Expr::Scan("R"),
                                 {{0, 0}}));
  ExpectAgreement(Expr::AntiJoin(Expr::Scan("L"), Expr::Scan("R"),
                                 {{0, 0}}));
}

TEST_P(SortMergeTest, OuterAndMarkJoinsAgree) {
  ExpectAgreement(Expr::OuterJoin(Expr::Scan("L"), Expr::Scan("R"),
                                  {{0, 0}}));
  ExpectAgreement(Expr::MarkJoin(Expr::Scan("L"), Expr::Scan("R"),
                                 {{0, 0}}));
  ExpectAgreement(Expr::MarkJoin(Expr::Scan("L"), Expr::Scan("R"), {{0, 0}},
                                 Predicate::ColVal(CompareOp::kLt, 1,
                                                   Value::Int(3))));
}

TEST_P(SortMergeTest, Proposition3HoldsUnderSortMerge) {
  ExecOptions options;
  options.join_algorithm = ExecOptions::JoinAlgorithm::kSortMerge;
  Executor exec(&db_, options);
  auto both = exec.Evaluate(
      Expr::Union(Expr::SemiJoin(Expr::Scan("L"), Expr::Scan("R"), {{0, 0}}),
                  Expr::AntiJoin(Expr::Scan("L"), Expr::Scan("R"),
                                 {{0, 0}})));
  auto base = exec.Evaluate(Expr::Scan("L"));
  ASSERT_TRUE(both.ok());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*both, *base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortMergeTest, ::testing::Range(0u, 8u));

TEST(SortMergeUnitTest, EmptySides) {
  Database db;
  db.Put("L", UnaryInts({1, 2}));
  db.Put("E", Relation(1));
  ExecOptions options;
  options.join_algorithm = ExecOptions::JoinAlgorithm::kSortMerge;
  Executor exec(&db, options);
  EXPECT_TRUE(
      exec.Evaluate(Expr::Join(Expr::Scan("L"), Expr::Scan("E"), {{0, 0}}))
          ->empty());
  EXPECT_EQ(exec.Evaluate(Expr::AntiJoin(Expr::Scan("L"), Expr::Scan("E"),
                                         {{0, 0}}))
                ->size(),
            2u);
  EXPECT_TRUE(exec.Evaluate(Expr::SemiJoin(Expr::Scan("E"), Expr::Scan("L"),
                                           {{0, 0}}))
                  ->empty());
}

TEST(SortMergeUnitTest, PaperFigure4UnderSortMerge) {
  // The Fig. 4 constrained chain gives identical tables under merge.
  Database db;
  db.Put("P", UnaryStrings({"a", "b", "c", "d"}));
  db.Put("T", UnaryStrings({"a", "b", "e"}));
  db.Put("U", UnaryStrings({"a", "c", "f"}));
  ExprPtr r3 = Expr::MarkJoin(
      Expr::MarkJoin(Expr::Scan("P"), Expr::Scan("T"), {{0, 0}}),
      Expr::Scan("U"), {{0, 0}}, Predicate::IsNotNull(1));
  ExecOptions options;
  options.join_algorithm = ExecOptions::JoinAlgorithm::kSortMerge;
  Executor exec(&db, options);
  auto rel = exec.Evaluate(r3);
  ASSERT_TRUE(rel.ok());
  Relation expected = *Relation::FromRows({
      Tuple({Value::String("a"), Value::Mark(), Value::Mark()}),
      Tuple({Value::String("b"), Value::Mark(), Value::Null()}),
      Tuple({Value::String("c"), Value::Null(), Value::Null()}),
      Tuple({Value::String("d"), Value::Null(), Value::Null()}),
  });
  EXPECT_EQ(*rel, expected);
}

TEST(SortMergeUnitTest, RejectsResidualOnSemiJoin) {
  Relation l = UnaryInts({1});
  Relation r = UnaryInts({1});
  ExecStats stats;
  auto result = SortMergeJoin(l, r, {{0, 0}}, JoinVariant::kSemi,
                              Predicate::True(), &stats);
  EXPECT_FALSE(result.ok());
}

TEST(SortMergeUnitTest, WholeSuiteAgreesUnderSortMerge) {
  UniversityConfig config;
  config.students = 40;
  config.lectures = 12;
  config.seed = 13;
  Database db = MakeUniversity(config);
  QueryProcessor qp(&db);
  ExecOptions merge;
  merge.join_algorithm = ExecOptions::JoinAlgorithm::kSortMerge;
  for (const NamedQuery& nq : PaperQuerySuite()) {
    auto exec = qp.Explain(nq.text, Strategy::kBry);
    ASSERT_TRUE(exec.ok()) << nq.name;
    Executor hash_exec(&db), merge_exec(&db, merge);
    if (nq.text[0] == '{') {
      auto a = hash_exec.Evaluate(exec->plan);
      auto b = merge_exec.Evaluate(exec->plan);
      ASSERT_TRUE(a.ok() && b.ok()) << nq.name;
      EXPECT_EQ(*a, *b) << nq.name;
    } else {
      auto a = hash_exec.EvaluateBool(exec->plan);
      auto b = merge_exec.EvaluateBool(exec->plan);
      ASSERT_TRUE(a.ok() && b.ok()) << nq.name;
      EXPECT_EQ(*a, *b) << nq.name;
    }
  }
}

}  // namespace
}  // namespace bryql
