// Proposition 4 (§3.2): the five nested-quantification patterns translate
// to semi-join / complement-join / division shapes, with the division
// needed in only one case. Each equivalence is verified semantically on
// randomized databases against the nested-loop reference, and the plan
// shape (which operators appear) is pinned structurally.

#include <gtest/gtest.h>

#include <random>

#include "core/query_processor.h"
#include "storage/builder.h"

namespace bryql {
namespace {

/// Random instances of the R(x,y), S(x,y,z), T(y,z), G(x,y,z) relations
/// that Proposition 4 is stated over.
Database RandomDb(unsigned seed, int domain, double density) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> value(0, domain - 1);
  std::bernoulli_distribution keep(density);
  Database db;
  auto fill = [&](const char* name, size_t arity, int rows) {
    Relation rel(arity);
    for (int i = 0; i < rows; ++i) {
      if (!keep(rng)) continue;
      std::vector<Value> values;
      for (size_t j = 0; j < arity; ++j) {
        values.push_back(Value::Int(value(rng)));
      }
      rel.Insert(Tuple(std::move(values)));
    }
    db.Put(name, std::move(rel));
  };
  fill("R", 2, 30);
  fill("S", 3, 40);
  fill("T", 2, 20);
  fill("T1", 1, 8);
  fill("G", 3, 40);
  return db;
}

// The five patterns of Proposition 4, as open queries in x.
const char* kCase1 =
    "{ x | exists y: R(x, y) & (exists z: S(x, y, z) & G(x, y, z)) }";
const char* kCase2a =
    "{ x | exists y: R(x, y) & (exists z: S(x, y, z) & ~G(x, y, z)) }";
const char* kCase2b =
    "{ x | exists y: R(x, y) & (exists z: T(y, z) & ~G(x, y, z)) }";
const char* kCase3 =
    "{ x | exists y: R(x, y) & ~(exists z: S(x, y, z) & G(x, y, z)) }";
const char* kCase4 =
    "{ x | exists y: R(x, y) & ~(exists z: S(x, y, z) & ~G(x, y, z)) }";
const char* kCase5 =
    "{ x | exists y: R(x, y) & ~(exists z: T(y, z) & ~G(x, y, z)) }";
// Case 5 with an inner range independent of the outer variables — the
// shape where the paper's literal division expression is exact.
const char* kCase5u =
    "{ x | exists y: R(x, y) & ~(exists z: T1(z) & ~G(x, y, z)) }";

class Proposition4Test : public ::testing::TestWithParam<unsigned> {};

TEST_P(Proposition4Test, AllCasesMatchNestedLoopReference) {
  Database db = RandomDb(GetParam(), /*domain=*/5, /*density=*/0.7);
  QueryProcessor qp(&db);
  for (const char* text :
       {kCase1, kCase2a, kCase2b, kCase3, kCase4, kCase5, kCase5u}) {
    auto reference = qp.Run(text, Strategy::kNestedLoop);
    ASSERT_TRUE(reference.ok()) << text << ": " << reference.status();
    for (Strategy s : {Strategy::kBry, Strategy::kBryDivision,
                       Strategy::kQuelCounting, Strategy::kClassical}) {
      auto got = qp.Run(text, s);
      ASSERT_TRUE(got.ok()) << StrategyName(s) << " " << text << ": "
                            << got.status();
      EXPECT_EQ(got->answer.relation, reference->answer.relation)
          << StrategyName(s) << " disagrees on " << text << " (seed "
          << GetParam() << ")\nplan:\n"
          << (got->plan ? got->plan->ToString() : "<none>");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition4Test,
                         ::testing::Range(0u, 12u));

bool PlanContains(const ExprPtr& e, ExprKind kind) {
  if (e->kind() == kind) return true;
  for (const ExprPtr& c : e->children()) {
    if (PlanContains(c, kind)) return true;
  }
  return false;
}

TEST(Proposition4Shapes, OnlyCase5MayDivide) {
  Database db = RandomDb(1, 5, 0.7);
  QueryProcessor qp(&db);
  for (const char* text :
       {kCase1, kCase2a, kCase2b, kCase3, kCase4, kCase5}) {
    auto exec = qp.Explain(text, Strategy::kBry);
    ASSERT_TRUE(exec.ok()) << text << ": " << exec.status();
    EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kDivision))
        << "default strategy must avoid division: " << text;
    EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kProduct))
        << "no initial cartesian product: " << text;
  }
  // With the division strategy, only case 5 produces a division — and
  // only in its exact-division shape (independent inner range); the
  // correlated shape falls back to the complement-join rewrite.
  for (const char* text : {kCase1, kCase2a, kCase2b, kCase3, kCase4,
                           kCase5}) {
    auto exec = qp.Explain(text, Strategy::kBryDivision);
    ASSERT_TRUE(exec.ok());
    EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kDivision)) << text;
  }
  auto case5 = qp.Explain(kCase5u, Strategy::kBryDivision);
  ASSERT_TRUE(case5.ok());
  EXPECT_TRUE(PlanContains(case5->plan, ExprKind::kDivision))
      << case5->plan->ToString();
  // The correlated shape uses the exact per-group division instead.
  auto case5g = qp.Explain(kCase5, Strategy::kBryDivision);
  ASSERT_TRUE(case5g.ok());
  EXPECT_TRUE(PlanContains(case5g->plan, ExprKind::kGroupDivision))
      << case5g->plan->ToString();
  EXPECT_FALSE(PlanContains(case5g->plan, ExprKind::kDivision));
}

TEST(Proposition4Shapes, NegatedCasesUseComplementJoin) {
  Database db = RandomDb(2, 5, 0.7);
  QueryProcessor qp(&db);
  for (const char* text : {kCase2a, kCase2b, kCase3, kCase4, kCase5}) {
    auto exec = qp.Explain(text, Strategy::kBry);
    ASSERT_TRUE(exec.ok());
    EXPECT_TRUE(PlanContains(exec->plan, ExprKind::kAntiJoin))
        << text << "\n"
        << exec->plan->ToString();
  }
}

TEST(Proposition4Shapes, PositiveCaseUsesSemiJoinOnly) {
  Database db = RandomDb(3, 5, 0.7);
  QueryProcessor qp(&db);
  auto exec = qp.Explain(kCase1, Strategy::kBry);
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(PlanContains(exec->plan, ExprKind::kSemiJoin) ||
              PlanContains(exec->plan, ExprKind::kJoin));
  EXPECT_FALSE(PlanContains(exec->plan, ExprKind::kAntiJoin));
}

TEST(Proposition4Shapes, ClassicalUsesProductAndDivision) {
  Database db = RandomDb(4, 5, 0.7);
  QueryProcessor qp(&db);
  auto exec = qp.Explain(kCase5, Strategy::kClassical);
  ASSERT_TRUE(exec.ok());
  EXPECT_TRUE(PlanContains(exec->plan, ExprKind::kProduct))
      << exec->plan->ToString();
  EXPECT_TRUE(PlanContains(exec->plan, ExprKind::kDivision))
      << exec->plan->ToString();
}

TEST(Proposition4Edge, EmptyRelations) {
  Database db;
  db.Put("R", Relation(2));
  db.Put("S", Relation(3));
  db.Put("T", Relation(2));
  db.Put("G", Relation(3));
  QueryProcessor qp(&db);
  for (const char* text :
       {kCase1, kCase2a, kCase2b, kCase3, kCase4, kCase5}) {
    for (Strategy s : {Strategy::kBry, Strategy::kNestedLoop}) {
      auto got = qp.Run(text, s);
      ASSERT_TRUE(got.ok()) << text << ": " << got.status();
      EXPECT_TRUE(got->answer.relation.empty()) << text;
    }
  }
}

TEST(Proposition4Edge, EmptyInnerRangeMakesUniversalTrue) {
  // ∀z over an empty T: vacuously true, so case 5 returns all of R's x.
  Database db;
  db.Put("R", *Relation::FromRows({Ints({1, 10}), Ints({2, 20})}));
  db.Put("T", Relation(2));
  db.Put("G", Relation(3));
  QueryProcessor qp(&db);
  for (Strategy s :
       {Strategy::kBry, Strategy::kBryDivision, Strategy::kNestedLoop}) {
    auto got = qp.Run(kCase5, s);
    ASSERT_TRUE(got.ok()) << StrategyName(s) << ": " << got.status();
    EXPECT_EQ(got->answer.relation.size(), 2u) << StrategyName(s);
  }
}

}  // namespace
}  // namespace bryql
